// Recursive-descent parser for the SQL subset (see ast.h).
#ifndef GSOPT_SQL_PARSER_H_
#define GSOPT_SQL_PARSER_H_

#include <string>

#include "base/status.h"
#include "sql/ast.h"

namespace gsopt::sql {

StatusOr<SqlQuery> Parse(const std::string& input);

}  // namespace gsopt::sql

#endif  // GSOPT_SQL_PARSER_H_
