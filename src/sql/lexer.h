// SQL lexer: case-insensitive keywords, identifiers, integer/decimal and
// string literals, comparison/arithmetic punctuation.
#ifndef GSOPT_SQL_LEXER_H_
#define GSOPT_SQL_LEXER_H_

#include <string>
#include <vector>

#include "base/status.h"

namespace gsopt::sql {

enum class TokenKind {
  kIdent,
  kKeyword,
  kNumber,
  kString,
  kParam,  // $1-style prepared-statement parameter; `number` is the index
  kPunct,  // one of ( ) , . + - * / = < > <= >= <>
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // uppercased for keywords
  double number = 0;
  bool is_integer = false;
  int position = 0;  // byte offset, for error messages
};

StatusOr<std::vector<Token>> Lex(const std::string& input);

}  // namespace gsopt::sql

#endif  // GSOPT_SQL_LEXER_H_
