#include "sql/binder.h"

#include <map>
#include <vector>

#include "sql/parser.h"

namespace gsopt::sql {

namespace {

// One visible column: how the query text may refer to it (exposed) and the
// attribute it actually is in the underlying tree (actual).
struct VisibleColumn {
  Attribute exposed;
  Attribute actual;
};

struct BoundTable {
  NodePtr tree;
  std::vector<VisibleColumn> columns;
};

class Binder {
 public:
  explicit Binder(const Catalog& catalog) : catalog_(catalog) {}

  // out_qualifier: qualifier given to aggregate outputs / the final
  // projection of this block (the view alias, or "q" at top level).
  StatusOr<BoundTable> BindQuery(const SqlQuery& q,
                                 const std::string& out_qualifier,
                                 bool top_level);

 private:
  StatusOr<BoundTable> BindTableRef(const SqlTableRef& ref);
  StatusOr<BoundTable> BindFromWhere(const SqlQuery& q);

  StatusOr<const VisibleColumn*> Resolve(const BoundTable& t,
                                         const std::string& qualifier,
                                         const std::string& column) const;

  // Binds a scalar expression (no aggregates allowed).
  StatusOr<ScalarPtr> BindScalar(const BoundTable& t, const SqlExpr& e) const;

  StatusOr<Predicate> BindPredicate(const BoundTable& t,
                                    const SqlPredicate& p) const;

  const Catalog& catalog_;
  int agg_counter_ = 0;
};

StatusOr<const VisibleColumn*> Binder::Resolve(const BoundTable& t,
                                               const std::string& qualifier,
                                               const std::string& column) const {
  const VisibleColumn* found = nullptr;
  for (const VisibleColumn& vc : t.columns) {
    if (vc.exposed.name != column) continue;
    if (!qualifier.empty() && vc.exposed.rel != qualifier) continue;
    if (found != nullptr && !(found->actual == vc.actual)) {
      return Status::InvalidArgument("ambiguous column " +
                                     (qualifier.empty()
                                          ? column
                                          : qualifier + "." + column));
    }
    found = &vc;
  }
  if (found == nullptr) {
    return Status::NotFound("unknown column " +
                            (qualifier.empty() ? column
                                               : qualifier + "." + column));
  }
  return found;
}

StatusOr<ScalarPtr> Binder::BindScalar(const BoundTable& t,
                                       const SqlExpr& e) const {
  switch (e.kind) {
    case SqlExpr::Kind::kLiteral:
      return Scalar::Const(e.literal);
    case SqlExpr::Kind::kParam:
      return Scalar::Param(e.param_slot);
    case SqlExpr::Kind::kColumn: {
      GSOPT_ASSIGN_OR_RETURN(const VisibleColumn* vc,
                             Resolve(t, e.qualifier, e.column));
      return Scalar::Column(vc->actual.rel, vc->actual.name);
    }
    case SqlExpr::Kind::kArith: {
      GSOPT_ASSIGN_OR_RETURN(ScalarPtr l, BindScalar(t, *e.lhs));
      GSOPT_ASSIGN_OR_RETURN(ScalarPtr r, BindScalar(t, *e.rhs));
      return Scalar::Arith(e.arith_op, std::move(l), std::move(r));
    }
    case SqlExpr::Kind::kAgg:
      return Status::InvalidArgument(
          "aggregate not allowed in this context");
    case SqlExpr::Kind::kStar:
      return Status::InvalidArgument("* not allowed in this context");
  }
  return Status::Internal("unhandled expression kind");
}

StatusOr<Predicate> Binder::BindPredicate(const BoundTable& t,
                                          const SqlPredicate& p) const {
  Predicate out;
  for (const SqlComparison& c : p) {
    Atom a;
    GSOPT_ASSIGN_OR_RETURN(a.lhs, BindScalar(t, *c.lhs));
    if (c.null_test != SqlComparison::NullTest::kNone) {
      a.kind = c.null_test == SqlComparison::NullTest::kIsNull
                   ? Atom::Kind::kIsNull
                   : Atom::Kind::kIsNotNull;
    } else {
      a.op = c.op;
      GSOPT_ASSIGN_OR_RETURN(a.rhs, BindScalar(t, *c.rhs));
    }
    out.AddAtom(std::move(a));
  }
  return out;
}

StatusOr<BoundTable> Binder::BindTableRef(const SqlTableRef& ref) {
  switch (ref.kind) {
    case SqlTableRef::Kind::kTable: {
      const Relation* rel = catalog_.Find(ref.table);
      if (rel == nullptr) return Status::NotFound("no table " + ref.table);
      BoundTable t;
      t.tree = Node::Leaf(ref.table);
      for (const Attribute& a : rel->schema().attrs()) {
        t.columns.push_back(VisibleColumn{a, a});
      }
      return t;
    }
    case SqlTableRef::Kind::kSubquery:
      return BindQuery(*ref.subquery, ref.alias, /*top_level=*/false);
    case SqlTableRef::Kind::kJoin: {
      GSOPT_ASSIGN_OR_RETURN(BoundTable l, BindTableRef(*ref.left));
      GSOPT_ASSIGN_OR_RETURN(BoundTable r, BindTableRef(*ref.right));
      BoundTable t;
      t.columns = l.columns;
      for (const VisibleColumn& vc : r.columns) {
        for (const VisibleColumn& existing : l.columns) {
          if (existing.actual == vc.actual) {
            return Status::InvalidArgument(
                "relation used twice (self joins need distinct copies): " +
                vc.actual.Qualified());
          }
        }
        t.columns.push_back(vc);
      }
      GSOPT_ASSIGN_OR_RETURN(Predicate on, BindPredicate(t, ref.on));
      OpKind k = OpKind::kInnerJoin;
      switch (ref.join_kind) {
        case SqlTableRef::JoinKind::kInner:
          k = OpKind::kInnerJoin;
          break;
        case SqlTableRef::JoinKind::kLeft:
          k = OpKind::kLeftOuterJoin;
          break;
        case SqlTableRef::JoinKind::kRight:
          k = OpKind::kRightOuterJoin;
          break;
        case SqlTableRef::JoinKind::kFull:
          k = OpKind::kFullOuterJoin;
          break;
      }
      t.tree = Node::Binary(k, l.tree, r.tree, std::move(on));
      return t;
    }
  }
  return Status::Internal("unhandled table ref kind");
}

StatusOr<BoundTable> Binder::BindFromWhere(const SqlQuery& q) {
  if (q.from.empty()) {
    return Status::InvalidArgument("FROM clause required");
  }
  std::vector<BoundTable> items;
  for (const auto& ref : q.from) {
    GSOPT_ASSIGN_OR_RETURN(BoundTable t, BindTableRef(*ref));
    items.push_back(std::move(t));
  }

  // Distribute the WHERE conjuncts: single-item atoms become selections on
  // that item; cross-item atoms become join predicates at the first
  // combination where both sides are available.
  std::vector<const SqlComparison*> pending;
  for (const SqlComparison& c : q.where) pending.push_back(&c);

  auto try_bind_all = [&](const BoundTable& t,
                          std::vector<const SqlComparison*>* from,
                          Predicate* into) -> Status {
    std::vector<const SqlComparison*> still;
    for (const SqlComparison* c : *from) {
      SqlPredicate one{*c};
      auto bound = BindPredicate(t, one);
      if (bound.ok()) {
        *into = Predicate::And(*into, *bound);
      } else {
        still.push_back(c);
      }
    }
    *from = std::move(still);
    return Status::OK();
  };

  // Per-item local filters first.
  for (BoundTable& item : items) {
    Predicate local;
    GSOPT_RETURN_IF_ERROR(try_bind_all(item, &pending, &local));
    if (!local.IsTrue()) item.tree = Node::Select(item.tree, local);
  }

  BoundTable acc = std::move(items[0]);
  for (size_t i = 1; i < items.size(); ++i) {
    BoundTable combined;
    combined.columns = acc.columns;
    for (const VisibleColumn& vc : items[i].columns) {
      combined.columns.push_back(vc);
    }
    Predicate join_pred;
    combined.tree = acc.tree;  // temporary for binding
    BoundTable probe = combined;
    probe.tree = Node::Join(acc.tree, items[i].tree, Predicate::True());
    GSOPT_RETURN_IF_ERROR(try_bind_all(probe, &pending, &join_pred));
    combined.tree = Node::Join(acc.tree, items[i].tree, join_pred);
    acc = std::move(combined);
  }
  if (!pending.empty()) {
    SqlPredicate rest;
    for (const SqlComparison* c : pending) rest.push_back(*c);
    GSOPT_ASSIGN_OR_RETURN(Predicate p, BindPredicate(acc, rest));
    acc.tree = Node::Select(acc.tree, p);
  }
  return acc;
}

StatusOr<BoundTable> Binder::BindQuery(const SqlQuery& q,
                                       const std::string& out_qualifier,
                                       bool top_level) {
  GSOPT_ASSIGN_OR_RETURN(BoundTable t, BindFromWhere(q));

  bool has_agg = !q.group_by.empty();
  for (const SqlSelectItem& item : q.select) {
    if (!item.star && item.expr->ContainsAggregate()) has_agg = true;
  }

  BoundTable result;
  if (has_agg) {
    exec::GroupBySpec spec;
    // Ordered select-list exports (what the view/query exposes) vs full
    // post-GROUP-BY visibility (what HAVING may reference).
    std::vector<VisibleColumn> out_columns;
    for (const SqlExprPtr& g : q.group_by) {
      GSOPT_ASSIGN_OR_RETURN(const VisibleColumn* vc,
                             Resolve(t, g->qualifier, g->column));
      spec.group_cols.push_back(vc->actual);
    }
    // Aggregates from SELECT items (each must be a bare aggregate call)
    // and from HAVING.
    auto add_agg = [&](const SqlExpr& e,
                       const std::string& alias) -> StatusOr<Attribute> {
      exec::AggSpec agg;
      agg.func = e.agg_func;
      agg.distinct = e.agg_distinct;
      if (e.agg_input != nullptr) {
        GSOPT_ASSIGN_OR_RETURN(agg.input, BindScalar(t, *e.agg_input));
      }
      agg.out_rel = out_qualifier;
      agg.out_name =
          alias.empty() ? "#agg" + std::to_string(agg_counter_++) : alias;
      Attribute out{agg.out_rel, agg.out_name};
      spec.aggs.push_back(std::move(agg));
      return out;
    };

    for (const SqlSelectItem& item : q.select) {
      if (item.star) {
        return Status::InvalidArgument("* not allowed with GROUP BY");
      }
      if (item.expr->kind == SqlExpr::Kind::kAgg) {
        GSOPT_ASSIGN_OR_RETURN(Attribute out, add_agg(*item.expr, item.alias));
        out_columns.push_back(VisibleColumn{out, out});
      } else if (item.expr->kind == SqlExpr::Kind::kColumn) {
        GSOPT_ASSIGN_OR_RETURN(
            const VisibleColumn* vc,
            Resolve(t, item.expr->qualifier, item.expr->column));
        bool is_group_col = false;
        for (const Attribute& g : spec.group_cols) {
          if (g == vc->actual) is_group_col = true;
        }
        if (!is_group_col) {
          return Status::InvalidArgument("column " + vc->exposed.Qualified() +
                                         " must appear in GROUP BY");
        }
        // Export under the alias (or column name) qualified by this
        // block's qualifier, so `v.a` resolves for a view aliased v.
        std::string exposed_name =
            item.alias.empty() ? vc->exposed.name : item.alias;
        out_columns.push_back(VisibleColumn{
            Attribute{out_qualifier, exposed_name}, vc->actual});
      } else {
        return Status::Unimplemented(
            "SELECT items with GROUP BY must be columns or aggregates");
      }
    }

    // HAVING: bare aggregate operands become hidden aggregate outputs.
    SqlPredicate having_rewritten;
    for (const SqlComparison& c : q.having) {
      SqlComparison nc = c;
      for (SqlExprPtr* side : {&nc.lhs, &nc.rhs}) {
        if ((*side)->kind == SqlExpr::Kind::kAgg) {
          GSOPT_ASSIGN_OR_RETURN(Attribute out, add_agg(**side, ""));
          auto col = std::make_shared<SqlExpr>();
          col->kind = SqlExpr::Kind::kColumn;
          col->qualifier = out.rel;
          col->column = out.name;
          *side = col;
        }
      }
      having_rewritten.push_back(std::move(nc));
    }

    result.tree = Node::GroupBy(t.tree, spec);
    // HAVING may reference group columns (original names) and every
    // aggregate output; the exported interface stays the select list.
    BoundTable having_scope;
    having_scope.tree = result.tree;
    having_scope.columns = out_columns;
    for (const Attribute& g : spec.group_cols) {
      having_scope.columns.push_back(VisibleColumn{g, g});
    }
    for (const exec::AggSpec& agg : spec.aggs) {
      Attribute out{agg.out_rel, agg.out_name};
      having_scope.columns.push_back(VisibleColumn{out, out});
    }
    result.columns = out_columns;

    if (!having_rewritten.empty()) {
      GSOPT_ASSIGN_OR_RETURN(Predicate having,
                             BindPredicate(having_scope, having_rewritten));
      result.tree = Node::Select(result.tree, having);
    }
  } else {
    // Plain select list (columns, possibly renamed).
    result.tree = t.tree;
    for (const SqlSelectItem& item : q.select) {
      if (item.star) {
        for (const VisibleColumn& vc : t.columns) {
          result.columns.push_back(vc);
        }
        continue;
      }
      if (item.expr->kind != SqlExpr::Kind::kColumn) {
        return Status::Unimplemented(
            "computed SELECT items are not supported (only columns and "
            "aggregates)");
      }
      GSOPT_ASSIGN_OR_RETURN(
          const VisibleColumn* vc,
          Resolve(t, item.expr->qualifier, item.expr->column));
      VisibleColumn out = *vc;
      if (!item.alias.empty()) {
        out.exposed = Attribute{out_qualifier, item.alias};
      }
      result.columns.push_back(out);
      if (item.alias.empty() && !top_level) {
        // Also reachable as <alias>.<name> when this block is a view.
        result.columns.push_back(VisibleColumn{
            Attribute{out_qualifier, vc->exposed.name}, vc->actual});
      }
    }
  }

  if (!q.order_by.empty()) {
    if (!top_level) {
      // SQL gives ORDER BY no semantics inside a view subquery; silently
      // dropping it would lie about the emitted order, so refuse.
      return Status::InvalidArgument(
          "ORDER BY is only supported on the outermost query");
    }
    // Keys resolve against the select list first (aliases included); for
    // non-aggregate queries an unselected underlying column also works --
    // the sort sits BELOW the final projection, where it is still visible.
    BoundTable scope;
    scope.columns = result.columns;
    exec::SortSpec spec;
    for (const SqlOrderItem& item : q.order_by) {
      auto vc = Resolve(scope, item.expr->qualifier, item.expr->column);
      if (!vc.ok() && !has_agg) {
        vc = Resolve(t, item.expr->qualifier, item.expr->column);
      }
      if (!vc.ok()) return vc.status();
      spec.push_back(exec::SortKey{(*vc)->actual, item.desc});
    }
    result.tree = Node::Sort(result.tree, std::move(spec));
  }

  if (top_level) {
    // Final output shape: project + rename to the exposed names.
    std::vector<Attribute> src, out;
    for (const VisibleColumn& vc : result.columns) {
      src.push_back(vc.actual);
      out.push_back(vc.exposed);
    }
    result.tree = Node::ProjectAs(result.tree, std::move(src),
                                  std::move(out));
  }
  return result;
}

}  // namespace

StatusOr<NodePtr> Bind(const SqlQuery& query, const Catalog& catalog) {
  Binder b(catalog);
  GSOPT_ASSIGN_OR_RETURN(BoundTable t,
                         b.BindQuery(query, "q", /*top_level=*/true));
  return t.tree;
}

StatusOr<NodePtr> ParseAndBind(const std::string& text,
                               const Catalog& catalog) {
  GSOPT_ASSIGN_OR_RETURN(SqlQuery q, Parse(text));
  return Bind(q, catalog);
}

}  // namespace gsopt::sql
