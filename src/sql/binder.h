// Binder: SQL AST -> logical algebra. Subqueries in FROM are merged at
// bind time (their visible columns are mapped back to underlying
// attributes; aggregate outputs are qualified by the view alias), so the
// optimizer sees one flat expression -- views only become opaque when the
// normalization rules genuinely cannot merge them.
#ifndef GSOPT_SQL_BINDER_H_
#define GSOPT_SQL_BINDER_H_

#include <string>

#include "algebra/node.h"
#include "base/status.h"
#include "relational/catalog.h"
#include "sql/ast.h"

namespace gsopt::sql {

StatusOr<NodePtr> Bind(const SqlQuery& query, const Catalog& catalog);

// Parse + bind in one step.
StatusOr<NodePtr> ParseAndBind(const std::string& text,
                               const Catalog& catalog);

}  // namespace gsopt::sql

#endif  // GSOPT_SQL_BINDER_H_
