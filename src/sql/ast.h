// SQL abstract syntax for the subset the paper works in: SELECT-FROM-WHERE
// with GROUP BY / HAVING / ORDER BY, inner and left/right/full outer joins
// with ON predicates, views as parenthesized subqueries with aliases,
// aggregate functions (COUNT/SUM/MIN/MAX/AVG, DISTINCT variants) and
// arithmetic.
#ifndef GSOPT_SQL_AST_H_
#define GSOPT_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "relational/value.h"

namespace gsopt::sql {

struct SqlExpr;
using SqlExprPtr = std::shared_ptr<SqlExpr>;

struct SqlExpr {
  enum class Kind { kColumn, kLiteral, kArith, kAgg, kStar, kParam };
  Kind kind = Kind::kLiteral;

  // kColumn
  std::string qualifier;  // may be empty
  std::string column;
  // kLiteral
  Value literal;
  // kParam: 0-based slot of a $1-style prepared-statement parameter.
  int param_slot = 0;
  // kArith
  ArithOp arith_op = ArithOp::kAdd;
  SqlExprPtr lhs, rhs;
  // kAgg
  exec::AggFunc agg_func = exec::AggFunc::kCountStar;
  bool agg_distinct = false;
  SqlExprPtr agg_input;  // null for COUNT(*)

  bool ContainsAggregate() const {
    if (kind == Kind::kAgg) return true;
    if (kind == Kind::kArith) {
      return (lhs && lhs->ContainsAggregate()) ||
             (rhs && rhs->ContainsAggregate());
    }
    return false;
  }
};

struct SqlComparison {
  enum class NullTest { kNone, kIsNull, kIsNotNull };
  SqlExprPtr lhs;
  CmpOp op = CmpOp::kEq;
  SqlExprPtr rhs;        // null when null_test != kNone
  NullTest null_test = NullTest::kNone;
};

using SqlPredicate = std::vector<SqlComparison>;

struct SqlSelectItem {
  bool star = false;
  SqlExprPtr expr;
  std::string alias;  // may be empty
};

struct SqlQuery;

struct SqlTableRef {
  enum class Kind { kTable, kSubquery, kJoin };
  Kind kind = Kind::kTable;

  // kTable
  std::string table;
  // kSubquery
  std::shared_ptr<SqlQuery> subquery;
  std::string alias;
  // kJoin
  std::shared_ptr<SqlTableRef> left, right;
  // kInnerJoin / kLeftOuterJoin / kRightOuterJoin / kFullOuterJoin encoded
  // as 0..3 to avoid depending on algebra here.
  enum class JoinKind { kInner, kLeft, kRight, kFull } join_kind =
      JoinKind::kInner;
  SqlPredicate on;
};

struct SqlOrderItem {
  SqlExprPtr expr;  // plain column (possibly an output alias)
  bool desc = false;
};

struct SqlQuery {
  std::vector<SqlSelectItem> select;
  std::vector<std::shared_ptr<SqlTableRef>> from;
  SqlPredicate where;
  std::vector<SqlExprPtr> group_by;  // plain columns
  SqlPredicate having;
  // ORDER BY; only meaningful on the outermost query (the binder rejects
  // it inside view subqueries, where SQL gives it no semantics).
  std::vector<SqlOrderItem> order_by;
};

}  // namespace gsopt::sql

#endif  // GSOPT_SQL_AST_H_
