#include "sql/lexer.h"

#include <cctype>
#include <set>

namespace gsopt::sql {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kw = new std::set<std::string>{
      "SELECT", "FROM",  "WHERE", "GROUP", "BY",    "HAVING", "AS",
      "JOIN",   "LEFT",  "RIGHT", "FULL",  "INNER", "OUTER",  "ON",
      "AND",    "COUNT", "SUM",   "MIN",   "MAX",   "AVG",    "DISTINCT",
      "IS",     "NOT",   "NULL",  "ORDER", "ASC",   "DESC",
  };
  return *kw;
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

}  // namespace

StatusOr<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.position = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '#') {
      size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) ||
              input[j] == '_' || input[j] == '#')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      std::string up = Upper(word);
      if (Keywords().count(up)) {
        t.kind = TokenKind::kKeyword;
        t.text = up;
      } else {
        t.kind = TokenKind::kIdent;
        t.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool has_dot = false;
      while (j < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[j])) ||
              (input[j] == '.' && !has_dot &&
               j + 1 < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[j + 1]))))) {
        if (input[j] == '.') has_dot = true;
        ++j;
      }
      t.kind = TokenKind::kNumber;
      t.text = input.substr(i, j - i);
      t.number = std::stod(t.text);
      t.is_integer = !has_dot;
      i = j;
    } else if (c == '$') {
      size_t j = i + 1;
      while (j < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[j]))) {
        ++j;
      }
      if (j == i + 1) {
        return Status::InvalidArgument("expected parameter index after '$' at " +
                                       std::to_string(i));
      }
      t.kind = TokenKind::kParam;
      t.text = input.substr(i, j - i);
      t.number = std::stod(input.substr(i + 1, j - i - 1));
      t.is_integer = true;
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      while (j < input.size() && input[j] != '\'') ++j;
      if (j >= input.size()) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(i));
      }
      t.kind = TokenKind::kString;
      t.text = input.substr(i + 1, j - i - 1);
      i = j + 1;
    } else {
      t.kind = TokenKind::kPunct;
      if ((c == '<' && i + 1 < input.size() &&
           (input[i + 1] == '=' || input[i + 1] == '>')) ||
          (c == '>' && i + 1 < input.size() && input[i + 1] == '=')) {
        t.text = input.substr(i, 2);
        i += 2;
      } else if (std::string("(),.+-*/=<>").find(c) != std::string::npos) {
        t.text = std::string(1, c);
        ++i;
      } else {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at " + std::to_string(i));
      }
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(input.size());
  out.push_back(end);
  return out;
}

}  // namespace gsopt::sql
