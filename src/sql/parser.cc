#include "sql/parser.h"

#include "sql/lexer.h"

namespace gsopt::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SqlQuery> ParseQuery() {
    GSOPT_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SqlQuery q;
    GSOPT_RETURN_IF_ERROR(ParseSelectList(&q));
    GSOPT_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    GSOPT_RETURN_IF_ERROR(ParseFrom(&q));
    if (AcceptKeyword("WHERE")) {
      GSOPT_ASSIGN_OR_RETURN(q.where, ParsePredicate());
    }
    if (AcceptKeyword("GROUP")) {
      GSOPT_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        GSOPT_ASSIGN_OR_RETURN(SqlExprPtr e, ParseExpr());
        if (e->kind != SqlExpr::Kind::kColumn) {
          return Status::InvalidArgument("GROUP BY expects plain columns");
        }
        q.group_by.push_back(std::move(e));
        if (!AcceptPunct(",")) break;
      }
    }
    if (AcceptKeyword("HAVING")) {
      GSOPT_ASSIGN_OR_RETURN(q.having, ParsePredicate());
    }
    if (AcceptKeyword("ORDER")) {
      GSOPT_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        SqlOrderItem item;
        GSOPT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (item.expr->kind != SqlExpr::Kind::kColumn) {
          return Status::InvalidArgument("ORDER BY expects plain columns");
        }
        if (AcceptKeyword("DESC")) {
          item.desc = true;
        } else {
          AcceptKeyword("ASC");
        }
        q.order_by.push_back(std::move(item));
        if (!AcceptPunct(",")) break;
      }
    }
    return q;
  }

  Status ExpectEnd() {
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing input at position " +
                                     std::to_string(Peek().position));
    }
    return Status::OK();
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_++]; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokenKind::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptPunct(const std::string& p) {
    if (Peek().kind == TokenKind::kPunct && Peek().text == p) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw + " at position " +
                                     std::to_string(Peek().position));
    }
    return Status::OK();
  }
  Status ExpectPunct(const std::string& p) {
    if (!AcceptPunct(p)) {
      return Status::InvalidArgument("expected '" + p + "' at position " +
                                     std::to_string(Peek().position));
    }
    return Status::OK();
  }

  Status ParseSelectList(SqlQuery* q) {
    while (true) {
      SqlSelectItem item;
      if (AcceptPunct("*")) {
        item.star = true;
      } else {
        GSOPT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          if (Peek().kind != TokenKind::kIdent) {
            return Status::InvalidArgument("expected alias after AS");
          }
          item.alias = Next().text;
        }
      }
      q->select.push_back(std::move(item));
      if (!AcceptPunct(",")) break;
    }
    return Status::OK();
  }

  Status ParseFrom(SqlQuery* q) {
    while (true) {
      GSOPT_ASSIGN_OR_RETURN(auto ref, ParseJoinExpr());
      q->from.push_back(std::move(ref));
      if (!AcceptPunct(",")) break;
    }
    return Status::OK();
  }

  StatusOr<std::shared_ptr<SqlTableRef>> ParseJoinExpr() {
    GSOPT_ASSIGN_OR_RETURN(auto left, ParsePrimaryRef());
    while (true) {
      SqlTableRef::JoinKind jk;
      if (AcceptKeyword("JOIN")) {
        jk = SqlTableRef::JoinKind::kInner;
      } else if (AcceptKeyword("INNER")) {
        GSOPT_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jk = SqlTableRef::JoinKind::kInner;
      } else if (AcceptKeyword("LEFT")) {
        AcceptKeyword("OUTER");
        GSOPT_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jk = SqlTableRef::JoinKind::kLeft;
      } else if (AcceptKeyword("RIGHT")) {
        AcceptKeyword("OUTER");
        GSOPT_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jk = SqlTableRef::JoinKind::kRight;
      } else if (AcceptKeyword("FULL")) {
        AcceptKeyword("OUTER");
        GSOPT_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jk = SqlTableRef::JoinKind::kFull;
      } else {
        break;
      }
      GSOPT_ASSIGN_OR_RETURN(auto right, ParsePrimaryRef());
      GSOPT_RETURN_IF_ERROR(ExpectKeyword("ON"));
      GSOPT_ASSIGN_OR_RETURN(SqlPredicate on, ParsePredicate());
      auto join = std::make_shared<SqlTableRef>();
      join->kind = SqlTableRef::Kind::kJoin;
      join->join_kind = jk;
      join->left = std::move(left);
      join->right = std::move(right);
      join->on = std::move(on);
      left = std::move(join);
    }
    return left;
  }

  StatusOr<std::shared_ptr<SqlTableRef>> ParsePrimaryRef() {
    auto ref = std::make_shared<SqlTableRef>();
    if (AcceptPunct("(")) {
      if (Peek().kind == TokenKind::kKeyword && Peek().text == "SELECT") {
        GSOPT_ASSIGN_OR_RETURN(SqlQuery sub, ParseQuery());
        GSOPT_RETURN_IF_ERROR(ExpectPunct(")"));
        AcceptKeyword("AS");
        if (Peek().kind != TokenKind::kIdent) {
          return Status::InvalidArgument("subquery needs an alias");
        }
        ref->kind = SqlTableRef::Kind::kSubquery;
        ref->subquery = std::make_shared<SqlQuery>(std::move(sub));
        ref->alias = Next().text;
        return ref;
      }
      GSOPT_ASSIGN_OR_RETURN(auto inner, ParseJoinExpr());
      GSOPT_RETURN_IF_ERROR(ExpectPunct(")"));
      return inner;
    }
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected table name at position " +
                                     std::to_string(Peek().position));
    }
    ref->kind = SqlTableRef::Kind::kTable;
    ref->table = Next().text;
    return ref;
  }

  StatusOr<SqlPredicate> ParsePredicate() {
    SqlPredicate pred;
    while (true) {
      GSOPT_ASSIGN_OR_RETURN(SqlComparison cmp, ParseComparison());
      pred.push_back(std::move(cmp));
      if (!AcceptKeyword("AND")) break;
    }
    return pred;
  }

  StatusOr<SqlComparison> ParseComparison() {
    SqlComparison cmp;
    GSOPT_ASSIGN_OR_RETURN(cmp.lhs, ParseExpr());
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      GSOPT_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      cmp.null_test = negated ? SqlComparison::NullTest::kIsNotNull
                              : SqlComparison::NullTest::kIsNull;
      return cmp;
    }
    const Token& t = Peek();
    if (t.kind != TokenKind::kPunct) {
      return Status::InvalidArgument("expected comparison operator");
    }
    if (t.text == "=") {
      cmp.op = CmpOp::kEq;
    } else if (t.text == "<>") {
      cmp.op = CmpOp::kNe;
    } else if (t.text == "<") {
      cmp.op = CmpOp::kLt;
    } else if (t.text == "<=") {
      cmp.op = CmpOp::kLe;
    } else if (t.text == ">") {
      cmp.op = CmpOp::kGt;
    } else if (t.text == ">=") {
      cmp.op = CmpOp::kGe;
    } else {
      return Status::InvalidArgument("expected comparison operator, got '" +
                                     t.text + "'");
    }
    ++pos_;
    GSOPT_ASSIGN_OR_RETURN(cmp.rhs, ParseExpr());
    return cmp;
  }

  StatusOr<SqlExprPtr> ParseExpr() {
    GSOPT_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseTerm());
    while (Peek().kind == TokenKind::kPunct &&
           (Peek().text == "+" || Peek().text == "-")) {
      ArithOp op = Next().text == "+" ? ArithOp::kAdd : ArithOp::kSub;
      GSOPT_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseTerm());
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kArith;
      e->arith_op = op;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  StatusOr<SqlExprPtr> ParseTerm() {
    GSOPT_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseFactor());
    while (Peek().kind == TokenKind::kPunct &&
           (Peek().text == "*" || Peek().text == "/")) {
      ArithOp op = Next().text == "*" ? ArithOp::kMul : ArithOp::kDiv;
      GSOPT_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseFactor());
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kArith;
      e->arith_op = op;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  StatusOr<SqlExprPtr> ParseFactor() {
    auto e = std::make_shared<SqlExpr>();
    const Token& t = Peek();
    if (t.kind == TokenKind::kNumber) {
      Next();
      e->kind = SqlExpr::Kind::kLiteral;
      e->literal = t.is_integer ? Value::Int(static_cast<int64_t>(t.number))
                                : Value::Double(t.number);
      return e;
    }
    if (t.kind == TokenKind::kString) {
      Next();
      e->kind = SqlExpr::Kind::kLiteral;
      e->literal = Value::String(t.text);
      return e;
    }
    if (t.kind == TokenKind::kParam) {
      Next();
      if (t.number < 1) {
        return Status::InvalidArgument("parameter indices start at $1 (got " +
                                       t.text + ")");
      }
      e->kind = SqlExpr::Kind::kParam;
      e->param_slot = static_cast<int>(t.number) - 1;
      return e;
    }
    if (t.kind == TokenKind::kPunct && t.text == "(") {
      Next();
      GSOPT_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
      GSOPT_RETURN_IF_ERROR(ExpectPunct(")"));
      return inner;
    }
    if (t.kind == TokenKind::kKeyword &&
        (t.text == "COUNT" || t.text == "SUM" || t.text == "MIN" ||
         t.text == "MAX" || t.text == "AVG")) {
      std::string fn = Next().text;
      GSOPT_RETURN_IF_ERROR(ExpectPunct("("));
      e->kind = SqlExpr::Kind::kAgg;
      e->agg_distinct = AcceptKeyword("DISTINCT");
      if (fn == "COUNT" && AcceptPunct("*")) {
        e->agg_func = exec::AggFunc::kCountStar;
      } else {
        GSOPT_ASSIGN_OR_RETURN(e->agg_input, ParseExpr());
        if (fn == "COUNT") {
          e->agg_func = exec::AggFunc::kCount;
        } else if (fn == "SUM") {
          e->agg_func = exec::AggFunc::kSum;
        } else if (fn == "MIN") {
          e->agg_func = exec::AggFunc::kMin;
        } else if (fn == "MAX") {
          e->agg_func = exec::AggFunc::kMax;
        } else {
          e->agg_func = exec::AggFunc::kAvg;
        }
      }
      GSOPT_RETURN_IF_ERROR(ExpectPunct(")"));
      return e;
    }
    if (t.kind == TokenKind::kIdent) {
      std::string first = Next().text;
      e->kind = SqlExpr::Kind::kColumn;
      if (AcceptPunct(".")) {
        if (Peek().kind != TokenKind::kIdent) {
          return Status::InvalidArgument("expected column after '.'");
        }
        e->qualifier = first;
        e->column = Next().text;
      } else {
        e->column = first;
      }
      return e;
    }
    return Status::InvalidArgument("unexpected token at position " +
                                   std::to_string(t.position));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<SqlQuery> Parse(const std::string& input) {
  GSOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser p(std::move(tokens));
  GSOPT_ASSIGN_OR_RETURN(SqlQuery q, p.ParseQuery());
  GSOPT_RETURN_IF_ERROR(p.ExpectEnd());
  return q;
}

}  // namespace gsopt::sql
