#include "base/spill_file.h"

#include <errno.h>
#include <fcntl.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <vector>

namespace gsopt {

namespace {

std::atomic<int64_t> g_live_spill_files{0};

std::string TempDirOr(const std::string& dir) {
  if (!dir.empty()) return dir;
  const char* env = getenv("TMPDIR");
  if (env != nullptr && env[0] != '\0') return env;
  return "/tmp";
}

Status ErrnoStatus(const char* op, int err) {
  std::string msg = std::string("spill: ") + op + ": " + strerror(err);
  // ENOSPC is the canonical persistent spill failure; everything else is
  // an environment problem the engine cannot reason about.
  if (err == ENOSPC) return Status::ResourceExhausted(msg);
  return Status::Internal(msg);
}

}  // namespace

StatusOr<SpillFile> SpillFile::Create(const std::string& dir,
                                      FaultInjector* fault) {
  if (fault != nullptr) {
    Status s = fault->MaybeFail(FaultSite::kSpillOpen, "spill: create");
    if (!s.ok()) return s;
  }
  std::string tmpl = TempDirOr(dir) + "/gsopt-spill-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  int fd = mkstemp(buf.data());
  if (fd < 0) return ErrnoStatus("mkstemp", errno);
  g_live_spill_files.fetch_add(1, std::memory_order_relaxed);
  return SpillFile(fd, std::string(buf.data()), fault);
}

SpillFile::SpillFile(int fd, std::string path, FaultInjector* fault)
    : fd_(fd), path_(std::move(path)), fault_(fault) {
  write_buf_.reserve(kBufferBytes);
}

SpillFile::SpillFile(SpillFile&& o) noexcept
    : fd_(o.fd_),
      path_(std::move(o.path_)),
      fault_(o.fault_),
      write_buf_(std::move(o.write_buf_)),
      bytes_written_(o.bytes_written_),
      bytes_read_(o.bytes_read_) {
  o.fd_ = -1;
}

SpillFile& SpillFile::operator=(SpillFile&& o) noexcept {
  if (this != &o) {
    Discard();
    fd_ = o.fd_;
    path_ = std::move(o.path_);
    fault_ = o.fault_;
    write_buf_ = std::move(o.write_buf_);
    bytes_written_ = o.bytes_written_;
    bytes_read_ = o.bytes_read_;
    o.fd_ = -1;
  }
  return *this;
}

SpillFile::~SpillFile() { Discard(); }

void SpillFile::Discard() {
  if (fd_ < 0) return;
  close(fd_);
  unlink(path_.c_str());
  fd_ = -1;
  g_live_spill_files.fetch_sub(1, std::memory_order_relaxed);
}

Status SpillFile::Append(const void* data, size_t len) {
  if (fd_ < 0) return Status::Internal("spill: append after discard");
  if (fault_ != nullptr) {
    GSOPT_RETURN_IF_ERROR(
        fault_->MaybeFail(FaultSite::kSpillWrite, "spill: append"));
  }
  write_buf_.append(static_cast<const char*>(data), len);
  // Account logical bytes at append time: the counter feeds the spill
  // statistics, which report what was spilled, not what has been synced.
  bytes_written_ += static_cast<uint64_t>(len);
  if (write_buf_.size() >= kBufferBytes) return Flush();
  return Status::OK();
}

Status SpillFile::Flush() {
  if (fd_ < 0) return Status::Internal("spill: flush after discard");
  const char* p = write_buf_.data();
  size_t left = write_buf_.size();
  while (left > 0) {
    ssize_t n = write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", errno);
    }
    // A zero/short write is retried: on a real filesystem it precedes
    // ENOSPC, which the next attempt reports.
    p += n;
    left -= static_cast<size_t>(n);
  }
  write_buf_.clear();
  return Status::OK();
}

Status SpillFile::Rewind() {
  GSOPT_RETURN_IF_ERROR(Flush());
  if (lseek(fd_, 0, SEEK_SET) != 0) return ErrnoStatus("lseek", errno);
  return Status::OK();
}

Status SpillFile::ReadExact(void* buf, size_t len) {
  if (fd_ < 0) return Status::Internal("spill: read after discard");
  if (fault_ != nullptr) {
    GSOPT_RETURN_IF_ERROR(
        fault_->MaybeFail(FaultSite::kSpillRead, "spill: read"));
  }
  char* p = static_cast<char*>(buf);
  size_t left = len;
  while (left > 0) {
    ssize_t n = read(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read", errno);
    }
    if (n == 0) {
      return Status::Internal("spill: truncated file (record promised " +
                              std::to_string(len) + " bytes, " +
                              std::to_string(len - left) + " available)");
    }
    p += n;
    left -= static_cast<size_t>(n);
    bytes_read_ += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

int64_t SpillFile::LiveCount() {
  return g_live_spill_files.load(std::memory_order_relaxed);
}

}  // namespace gsopt
