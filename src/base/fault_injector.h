// Deterministic seed-driven fault injection for the chaos harness.
//
// The executor threads a FaultInjector* through ExecContext and probes it
// at the points where a real deployment fails: allocation of operator
// state, spill-file open/write/read (short writes, ENOSPC), cooperative
// budget checks, and thread-pool dispatch. Each probe draws a pure
// function of (seed, site, ordinal) -- no wall clock, no global RNG -- so
// a given seed fires the same fault schedule on every run: probe #k at a
// site either always fires or never does. (Under the morsel-parallel
// executor the *assignment* of ordinals to lanes races, so which lane
// observes probe #k can vary, but the schedule of firing ordinals is
// fixed; chaos-oracle assertions are written to hold under any
// assignment.)
//
// Fired faults come back as ordinary typed Statuses with "injected" in the
// message: kResourceExhausted for persistent conditions (allocation
// failure, ENOSPC, budget exhaustion) and kUnavailable for transient ones
// (short write/read, dispatch failure), which is exactly the taxonomy the
// Session retry policy keys on. `max_faults` bounds total fires so a
// bounded-retry test can prove the second attempt succeeds.
#ifndef GSOPT_BASE_FAULT_INJECTOR_H_
#define GSOPT_BASE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "base/status.h"

namespace gsopt {

enum class FaultSite : uint32_t {
  kAlloc = 0,    // operator-state allocation (hash table, group map)
  kSpillOpen,    // temp-file creation (ENOSPC / EMFILE class)
  kSpillWrite,   // spill append (ENOSPC or transient short write)
  kSpillRead,    // spill read-back (transient short read)
  kBudgetCheck,  // cooperative budget probe in a kernel loop
  kDispatch,     // thread-pool fan-out
  kNumSites,
};

const char* FaultSiteName(FaultSite site);

class FaultInjector {
 public:
  static constexpr uint64_t kNoLimit = ~0ull;

  struct Options {
    uint64_t seed = 0;
    // Fire roughly once per `period` probes (per site); 0 disables all
    // injection. period=1 fires on every probe.
    uint64_t period = 0;
    // Bit mask of enabled sites (bit i = FaultSite(i)); default all.
    uint32_t site_mask = ~0u;
    // Stop firing after this many total faults.
    uint64_t max_faults = kNoLimit;
  };

  FaultInjector() = default;
  explicit FaultInjector(Options options) : options_(options) {}

  static uint32_t MaskOf(std::initializer_list<FaultSite> sites) {
    uint32_t m = 0;
    for (FaultSite s : sites) m |= 1u << static_cast<uint32_t>(s);
    return m;
  }

  // Probe: returns OK or the injected fault for this (site, ordinal).
  // `where` names the call site and lands in the Status message.
  Status MaybeFail(FaultSite site, const char* where);

  uint64_t probes(FaultSite site) const {
    return probe_counts_[static_cast<size_t>(site)].load(
        std::memory_order_relaxed);
  }
  uint64_t fired(FaultSite site) const {
    return fired_counts_[static_cast<size_t>(site)].load(
        std::memory_order_relaxed);
  }
  uint64_t probes_total() const;
  uint64_t fired_total() const {
    return fired_total_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  static constexpr size_t kNumSites = static_cast<size_t>(FaultSite::kNumSites);

  Options options_;
  std::atomic<uint64_t> probe_counts_[kNumSites] = {};
  std::atomic<uint64_t> fired_counts_[kNumSites] = {};
  std::atomic<uint64_t> fired_total_{0};
};

}  // namespace gsopt

#endif  // GSOPT_BASE_FAULT_INJECTOR_H_
