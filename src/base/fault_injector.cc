#include "base/fault_injector.h"

namespace gsopt {

namespace {

// SplitMix64 finalizer: the decision must be a pure function of
// (seed, site, ordinal) so fault schedules replay exactly from a seed.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kAlloc:
      return "alloc";
    case FaultSite::kSpillOpen:
      return "spill-open";
    case FaultSite::kSpillWrite:
      return "spill-write";
    case FaultSite::kSpillRead:
      return "spill-read";
    case FaultSite::kBudgetCheck:
      return "budget-check";
    case FaultSite::kDispatch:
      return "dispatch";
    case FaultSite::kNumSites:
      break;
  }
  return "unknown";
}

Status FaultInjector::MaybeFail(FaultSite site, const char* where) {
  size_t idx = static_cast<size_t>(site);
  // Probes are counted even when injection is disabled or masked off: the
  // counter doubles as a coverage oracle ("did execution reach this site"),
  // independent of whether a fault was drawn.
  uint64_t ordinal =
      probe_counts_[idx].fetch_add(1, std::memory_order_relaxed);
  if (options_.period == 0) return Status::OK();
  if ((options_.site_mask & (1u << static_cast<uint32_t>(idx))) == 0) {
    return Status::OK();
  }
  uint64_t draw = Mix(options_.seed ^ Mix(ordinal ^ (uint64_t{idx} << 56)));
  if (draw % options_.period != 0) return Status::OK();
  // Respect the total-fire cap; back out the provisional claim on overrun
  // so fired_total() never overshoots max_faults.
  if (fired_total_.fetch_add(1, std::memory_order_relaxed) >=
      options_.max_faults) {
    fired_total_.fetch_sub(1, std::memory_order_relaxed);
    return Status::OK();
  }
  fired_counts_[idx].fetch_add(1, std::memory_order_relaxed);

  std::string msg = std::string(where) + ": injected ";
  switch (site) {
    case FaultSite::kAlloc:
      return Status::ResourceExhausted(msg + "allocation failure");
    case FaultSite::kSpillOpen:
      return Status::ResourceExhausted(
          msg + "spill-open failure: no space left on device");
    case FaultSite::kSpillWrite:
      // Alternate flavors deterministically: persistent ENOSPC vs a
      // transient short write the Session retry policy may recover.
      if (draw & (1ull << 32)) {
        return Status::ResourceExhausted(
            msg + "spill-write failure: no space left on device");
      }
      return Status::Unavailable(msg + "short spill write");
    case FaultSite::kSpillRead:
      return Status::Unavailable(msg + "short spill read");
    case FaultSite::kBudgetCheck:
      return Status::ResourceExhausted(msg + "budget exhaustion");
    case FaultSite::kDispatch:
      return Status::Unavailable(msg + "thread-pool dispatch failure");
    case FaultSite::kNumSites:
      break;
  }
  return Status::Internal(msg + "fault at unknown site");
}

uint64_t FaultInjector::probes_total() const {
  uint64_t n = 0;
  for (size_t i = 0; i < kNumSites; ++i) {
    n += probe_counts_[i].load(std::memory_order_relaxed);
  }
  return n;
}

}  // namespace gsopt
