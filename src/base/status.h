// Minimal Status / StatusOr, modeled on absl::Status, for fallible paths
// (SQL parsing, binding, plan validation). Exceptions are not used.
#ifndef GSOPT_BASE_STATUS_H_
#define GSOPT_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "base/check.h"

namespace gsopt {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnimplemented,
  kInternal,
  kOutOfRange,
  // A cooperative resource budget (wall-clock deadline, plan cap, row cap,
  // memory cap) was exhausted. Recoverable: the optimizer's fallback ladder
  // retries a cheaper enumeration mode and ultimately the as-written plan,
  // and the executor's spill path degrades hash state out-of-core.
  kResourceExhausted,
  // A transient fault -- short spill write/read, thread-pool dispatch
  // failure, injected chaos -- where an identical retry may succeed.
  // Session honors this with its bounded retry-with-backoff policy;
  // persistent conditions (ENOSPC, caps) use kResourceExhausted instead.
  kUnavailable,
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  // True for statuses a caller may retry verbatim (Session's backoff loop).
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kUnimplemented:
        return "Unimplemented";
      case StatusCode::kInternal:
        return "Internal";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kResourceExhausted:
        return "ResourceExhausted";
      case StatusCode::kUnavailable:
        return "Unavailable";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

// Holds either a value or an error status. `value()` aborts on error; use
// `ok()` first on fallible paths.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    GSOPT_CHECK(!std::get<Status>(rep_).ok());
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    GSOPT_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T& value() & {
    GSOPT_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    GSOPT_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

#define GSOPT_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::gsopt::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define GSOPT_CONCAT_INNER_(a, b) a##b
#define GSOPT_CONCAT_(a, b) GSOPT_CONCAT_INNER_(a, b)

#define GSOPT_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  GSOPT_ASSIGN_OR_RETURN_IMPL_(GSOPT_CONCAT_(_sor_, __LINE__), lhs, rexpr)

#define GSOPT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

}  // namespace gsopt

#endif  // GSOPT_BASE_STATUS_H_
