// Minimal Status / StatusOr, modeled on absl::Status, for fallible paths
// (SQL parsing, binding, plan validation). Exceptions are not used.
#ifndef GSOPT_BASE_STATUS_H_
#define GSOPT_BASE_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "base/check.h"

namespace gsopt {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnimplemented,
  kInternal,
  kOutOfRange,
  // A cooperative resource budget (wall-clock deadline, plan cap, row cap,
  // memory cap) was exhausted. Recoverable: the optimizer's fallback ladder
  // retries a cheaper enumeration mode and ultimately the as-written plan,
  // and the executor's spill path degrades hash state out-of-core.
  kResourceExhausted,
  // A transient fault -- short spill write/read, thread-pool dispatch
  // failure, injected chaos -- where an identical retry may succeed.
  // Session honors this with its bounded retry-with-backoff policy;
  // persistent conditions (ENOSPC, caps) use kResourceExhausted instead.
  kUnavailable,
  // The serving layer refused to start the work at all: admission queue
  // full, per-tenant concurrency quota exceeded, or the server is
  // draining. Distinct from kResourceExhausted (which means admitted work
  // tripped a cap mid-flight): a shed request consumed no budget, so the
  // client may retry against a less-loaded server.
  kShed,
};

// The wire-stable error taxonomy. StatusCode is an internal enum -- it can
// grow or be reordered between releases -- while ErrorClass values are
// frozen: they travel in the server protocol's ERROR frame (one byte) and
// in BENCH/monitoring output, so clients built against any version decode
// them identically. Every StatusCode collapses onto exactly one class:
//
//   kInvalid            the request itself is wrong (malformed SQL,
//                       unknown table, parameter-count mismatch, bad
//                       frame). Retrying the identical request cannot
//                       succeed.
//   kResourceExhausted  admitted work tripped a cooperative cap (deadline
//                       / row / memory / plan). Retrying verbatim against
//                       the same budget fails again; a bigger budget or a
//                       cheaper query may succeed.
//   kTransient          an identical in-process retry may succeed (short
//                       I/O, dispatch hiccough). Session's bounded
//                       retry-with-backoff consumes these; ones that
//                       escape to the wire were retried to exhaustion.
//   kShed               the server refused admission (queue full, tenant
//                       quota, draining) without spending the request's
//                       budget. Retry later or elsewhere.
//   kInternal           a bug or an unclassified failure. Do not retry.
//
// Numeric values are part of the protocol. Append only; never renumber.
enum class ErrorClass : uint8_t {
  kOk = 0,
  kInvalid = 1,
  kResourceExhausted = 2,
  kTransient = 3,
  kShed = 4,
  kInternal = 5,
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Shed(std::string m) {
    return Status(StatusCode::kShed, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  // The retry contract, in two layers:
  //
  //   IsTransient(): an IDENTICAL in-process retry may succeed -- same
  //     plan, same budget, same server. This is what Session's bounded
  //     retry-with-backoff loop keys on. Only kUnavailable qualifies.
  //   IsRetryable(): the REQUEST is worth re-issuing, possibly later or
  //     against another server -- transient faults plus sheds (the server
  //     declined without spending any budget). Caps (kResourceExhausted)
  //     are deliberately NOT retryable: an identical attempt meets the
  //     identical cap.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }
  bool IsRetryable() const {
    return IsTransient() || code_ == StatusCode::kShed;
  }
  StatusCode code() const { return code_; }
  // The wire-stable class this status collapses onto (see ErrorClass).
  ErrorClass error_class() const {
    switch (code_) {
      case StatusCode::kOk:
        return ErrorClass::kOk;
      case StatusCode::kInvalidArgument:
      case StatusCode::kNotFound:
      case StatusCode::kUnimplemented:
      case StatusCode::kOutOfRange:
        return ErrorClass::kInvalid;
      case StatusCode::kResourceExhausted:
        return ErrorClass::kResourceExhausted;
      case StatusCode::kUnavailable:
        return ErrorClass::kTransient;
      case StatusCode::kShed:
        return ErrorClass::kShed;
      case StatusCode::kInternal:
        return ErrorClass::kInternal;
    }
    return ErrorClass::kInternal;
  }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kUnimplemented:
        return "Unimplemented";
      case StatusCode::kInternal:
        return "Internal";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kResourceExhausted:
        return "ResourceExhausted";
      case StatusCode::kUnavailable:
        return "Unavailable";
      case StatusCode::kShed:
        return "Shed";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

inline std::string ErrorClassName(ErrorClass c) {
  switch (c) {
    case ErrorClass::kOk:
      return "ok";
    case ErrorClass::kInvalid:
      return "invalid";
    case ErrorClass::kResourceExhausted:
      return "resource-exhausted";
    case ErrorClass::kTransient:
      return "transient";
    case ErrorClass::kShed:
      return "shed";
    case ErrorClass::kInternal:
      return "internal";
  }
  return "internal";
}

// Decodes a wire byte back to a class; out-of-range bytes (a newer server
// talking to an older client) collapse to kInternal rather than UB.
inline ErrorClass ErrorClassFromWire(uint8_t b) {
  return b <= static_cast<uint8_t>(ErrorClass::kInternal)
             ? static_cast<ErrorClass>(b)
             : ErrorClass::kInternal;
}

// Holds either a value or an error status. `value()` aborts on error; use
// `ok()` first on fallible paths.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    GSOPT_CHECK(!std::get<Status>(rep_).ok());
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    GSOPT_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T& value() & {
    GSOPT_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    GSOPT_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

#define GSOPT_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::gsopt::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define GSOPT_CONCAT_INNER_(a, b) a##b
#define GSOPT_CONCAT_(a, b) GSOPT_CONCAT_INNER_(a, b)

#define GSOPT_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  GSOPT_ASSIGN_OR_RETURN_IMPL_(GSOPT_CONCAT_(_sor_, __LINE__), lhs, rexpr)

#define GSOPT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

}  // namespace gsopt

#endif  // GSOPT_BASE_STATUS_H_
