// SpillFile: an RAII temporary file for out-of-core operator state.
//
// The spill path (exec/spill.cc) radix-partitions hash-join build/probe
// state and aggregation input into per-partition runs; each run is one
// SpillFile. The contract this class owns:
//
//   * the backing file is created with mkstemp under the configured
//     directory (default: the system temp dir) and unlinked in the
//     destructor, so no code path -- success, error, injected fault --
//     can leak a temp file. LiveCount() exposes the number of files
//     currently alive process-wide; the chaos oracle asserts it returns
//     to zero after every case, which is the leak test the error-path
//     hygiene satellite asks for;
//   * writes are buffered (kBufferBytes) and flushed with a full-write
//     loop, so a real short write is retried and only a true error (e.g.
//     ENOSPC -> kResourceExhausted) surfaces;
//   * every open/append/read probes the FaultInjector (if provided) at
//     the matching site, which is how the chaos harness exercises ENOSPC
//     and short-I/O recovery without filling a disk.
//
// Reading: Rewind() flushes and seeks to the start; ReadExact() then
// consumes sequentially. A SpillFile is single-threaded, like the serial
// spill kernels that use it.
#ifndef GSOPT_BASE_SPILL_FILE_H_
#define GSOPT_BASE_SPILL_FILE_H_

#include <cstdint>
#include <string>

#include "base/fault_injector.h"
#include "base/status.h"

namespace gsopt {

class SpillFile {
 public:
  static constexpr size_t kBufferBytes = 1u << 16;

  // Creates (open + mkstemp) a spill file under `dir`; empty uses the
  // system temp directory. `fault` may be null.
  static StatusOr<SpillFile> Create(const std::string& dir,
                                    FaultInjector* fault);

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  SpillFile(SpillFile&& o) noexcept;
  SpillFile& operator=(SpillFile&& o) noexcept;
  ~SpillFile();

  Status Append(const void* data, size_t len);
  Status Flush();
  // Flush + seek to offset 0 for read-back.
  Status Rewind();
  // Reads exactly `len` bytes; kInternal on a truncated file (a record
  // header promised more bytes than the file holds).
  Status ReadExact(void* buf, size_t len);
  // Close + unlink early (destructor-equivalent); idempotent.
  void Discard();

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }
  const std::string& path() const { return path_; }

  // Process-wide count of spill files currently open: the leak oracle.
  static int64_t LiveCount();

 private:
  SpillFile(int fd, std::string path, FaultInjector* fault);

  int fd_ = -1;
  std::string path_;
  FaultInjector* fault_ = nullptr;
  std::string write_buf_;
  uint64_t bytes_written_ = 0;
  uint64_t bytes_read_ = 0;
};

}  // namespace gsopt

#endif  // GSOPT_BASE_SPILL_FILE_H_
