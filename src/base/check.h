// Invariant-checking macros. The library does not use exceptions (fallible
// public paths return Status/StatusOr); internal invariant violations abort
// with a source location, which is the behaviour a database kernel wants for
// logic errors that would otherwise corrupt results silently.
#ifndef GSOPT_BASE_CHECK_H_
#define GSOPT_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define GSOPT_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "GSOPT_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define GSOPT_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "GSOPT_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define GSOPT_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define GSOPT_DCHECK(cond) GSOPT_CHECK(cond)
#endif

#endif  // GSOPT_BASE_CHECK_H_
