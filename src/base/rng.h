// Deterministic, seedable PRNG (splitmix64 + xoshiro-style mixing) so every
// test, data generator and benchmark is reproducible across platforms
// independent of libstdc++'s distribution implementations.
#ifndef GSOPT_BASE_RNG_H_
#define GSOPT_BASE_RNG_H_

#include <cstdint>

#include "base/check.h"

namespace gsopt {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {
    // Warm up so nearby seeds diverge immediately.
    Next64();
    Next64();
  }

  uint64_t Next64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    GSOPT_DCHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(Next64());  // full range
    return lo + static_cast<int64_t>(Next64() % span);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace gsopt

#endif  // GSOPT_BASE_RNG_H_
