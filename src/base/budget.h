// ResourceBudget: a cooperative resource governor threaded through every
// pipeline stage (normalize -> enumerate -> cost -> execute).
//
// The generalized enumeration (Definition 3.2 association trees + GS
// compensation) deliberately explores a much larger plan space than the
// [BHAR95a]/[GALI92a] baselines, so a production deployment must survive
// pathological queries without aborting or stalling. A budget carries up to
// three limits:
//
//   * a wall-clock deadline (steady_clock), checked cooperatively at loop
//     granularity with a strided clock probe so the hot paths pay one
//     counter increment per check and one clock read per kClockStride;
//   * a plan cap: total subplans the enumerator may emit before it stops
//     exploring alternatives and reports the space as truncated;
//   * a row cap: total tuples the executor kernels may materialize;
//   * a memory cap: bytes of operator working state (hash-join build
//     tables, aggregation group maps, spill read-back buffers) resident at
//     once. Inputs and outputs are exempt -- the interpreter materializes
//     relations eagerly and the row cap already governs output volume --
//     so the cap models the state a streaming engine would have to keep.
//     Unlike the other caps this one is usually survivable: kernels that
//     trip it switch to the out-of-core spill path (exec/spill.h) instead
//     of failing, and only report kResourceExhausted when spilling is
//     disabled or cannot help.
//
// Stages never kill each other preemptively: each checks the budget at its
// own safe points and returns Status(kResourceExhausted), which unwinds
// cleanly through StatusOr. The QueryOptimizer facade reacts by walking a
// fallback ladder (generalized -> baseline -> binary-only -> the syntactic
// as-written plan) with whatever budget remains, so callers always get a
// valid plan plus a DegradationReport instead of a crash or an unbounded
// run.
//
// A budget is shared by pointer across the stages of one
// optimize-and-execute attempt. Configuration (WithDeadline*/WithMax*/
// Reset*) is single-threaded -- it happens before a stage starts -- but
// the hot-path probes (ChargeRows, CheckDeadline, CheckDeadlineNow) are
// thread-safe: the morsel-parallel executor charges rows and ticks the
// deadline from every lane concurrently. Counters are relaxed-order
// atomics, so the fast path stays one uncontended fetch_add; expiry is a
// sticky atomic flag every lane observes, which is what makes cooperative
// kResourceExhausted cancellation work mid-morsel. The deadline is
// absolute, so it naturally carries across fallback rungs; plan and row
// counters can be reset per rung with ResetPlans()/ResetRows().
#ifndef GSOPT_BASE_BUDGET_H_
#define GSOPT_BASE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "base/status.h"

namespace gsopt {

class ResourceBudget {
 public:
  using Clock = std::chrono::steady_clock;
  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();
  // Clock reads are amortized: one real read per kClockStride deadline
  // checks (power of two; the hot-loop check is a mask and compare).
  static constexpr uint64_t kClockStride = 1024;

  ResourceBudget() = default;

  static ResourceBudget Unlimited() { return ResourceBudget(); }

  ResourceBudget& WithDeadlineAfter(std::chrono::microseconds d) {
    deadline_ = Clock::now() + d;
    has_deadline_ = true;
    expired_.store(false, std::memory_order_relaxed);
    return *this;
  }
  ResourceBudget& WithDeadline(Clock::time_point tp) {
    deadline_ = tp;
    has_deadline_ = true;
    expired_.store(false, std::memory_order_relaxed);
    return *this;
  }
  ResourceBudget& WithMaxPlans(uint64_t n) {
    max_plans_ = n;
    return *this;
  }
  ResourceBudget& WithMaxRows(uint64_t n) {
    max_rows_ = n;
    return *this;
  }
  ResourceBudget& WithMaxMemory(uint64_t bytes) {
    max_memory_ = bytes;
    return *this;
  }

  bool has_deadline() const { return has_deadline_; }
  uint64_t max_plans() const { return max_plans_; }
  uint64_t max_rows() const { return max_rows_; }
  uint64_t max_memory() const { return max_memory_; }
  uint64_t rows_charged() const {
    return rows_.load(std::memory_order_relaxed);
  }
  uint64_t plans_charged() const {
    return plans_.load(std::memory_order_relaxed);
  }
  // Operator-state bytes currently charged; zero once every kernel has
  // unwound (the chaos oracle asserts this to catch accounting leaks).
  uint64_t memory_charged() const {
    return memory_.load(std::memory_order_relaxed);
  }
  uint64_t memory_peak() const {
    return memory_peak_.load(std::memory_order_relaxed);
  }
  // Deadline probes observed so far (only counted while a deadline is
  // set). An observability counter: regression tests use it to prove hot
  // loops actually tick at the granularity they claim.
  uint64_t deadline_checks() const {
    return tick_.load(std::memory_order_relaxed);
  }

  // Time until the deadline; zero when expired, kUnlimited-ish large when
  // no deadline is set.
  std::chrono::microseconds RemainingTime() const {
    if (!has_deadline_) return std::chrono::microseconds::max();
    auto now = Clock::now();
    if (now >= deadline_) return std::chrono::microseconds(0);
    return std::chrono::duration_cast<std::chrono::microseconds>(deadline_ -
                                                                 now);
  }

  // Hot-loop deadline probe: cheap relaxed counter, real clock read once
  // per kClockStride calls across all lanes combined. Once expired the
  // result is sticky, so fallback rungs retried after exhaustion fail fast
  // instead of re-burning time, and every parallel lane observes the
  // expiry within one of its own probes.
  Status CheckDeadline(const char* stage) {
    if (expired_.load(std::memory_order_relaxed)) {
      return Exhausted(stage, "deadline cap exceeded");
    }
    if (!has_deadline_) return Status::OK();
    if ((tick_.fetch_add(1, std::memory_order_relaxed) &
         (kClockStride - 1)) != 0) {
      return Status::OK();
    }
    return CheckDeadlineNow(stage);
  }

  // Unstrided deadline probe for stage boundaries.
  Status CheckDeadlineNow(const char* stage) {
    if (expired_.load(std::memory_order_relaxed)) {
      return Exhausted(stage, "deadline cap exceeded");
    }
    if (!has_deadline_) return Status::OK();
    if (Clock::now() >= deadline_) {
      expired_.store(true, std::memory_order_relaxed);
      return Exhausted(stage, "deadline cap exceeded");
    }
    return Status::OK();
  }

  // Charges `n` materialized rows against the row cap and probes the
  // deadline. Executor kernels call this as they produce output, possibly
  // from many lanes at once: the single fetch_add makes every row count
  // exactly once, and exactly one charge observes the old->new transition
  // across the cap (later charges keep failing, which is what cancels the
  // remaining lanes).
  Status ChargeRows(uint64_t n, const char* stage) {
    uint64_t after = rows_.fetch_add(n, std::memory_order_relaxed) + n;
    if (after > max_rows_) {
      return Exhausted(stage, "row cap exceeded (" + std::to_string(after) +
                                  " > " + std::to_string(max_rows_) +
                                  " rows)");
    }
    return CheckDeadline(stage);
  }

  // Charges `n` bytes of operator working state. On over-cap the charge is
  // rolled back before returning, so a failed charge leaves the ledger
  // exactly as it found it -- callers that catch the error and degrade to
  // the spill path do not have to compensate. Thread-safe like ChargeRows;
  // the peak tracker is a relaxed CAS max (monotone, so races only ever
  // under-read a concurrent peak by a charge that also retries).
  Status ChargeMemory(uint64_t n, const char* stage) {
    uint64_t after = memory_.fetch_add(n, std::memory_order_relaxed) + n;
    if (after > max_memory_) {
      memory_.fetch_sub(n, std::memory_order_relaxed);
      return Exhausted(stage, "memory cap exceeded (" + std::to_string(after) +
                                  " > " + std::to_string(max_memory_) +
                                  " bytes of operator state)");
    }
    uint64_t peak = memory_peak_.load(std::memory_order_relaxed);
    while (after > peak && !memory_peak_.compare_exchange_weak(
                               peak, after, std::memory_order_relaxed)) {
    }
    return Status::OK();
  }
  void ReleaseMemory(uint64_t n) {
    memory_.fetch_sub(n, std::memory_order_relaxed);
  }

  // Plan accounting is advisory: the enumerator sizes its exploration to
  // PlansRemaining() and reports truncation instead of erroring, so a plan
  // cap degrades coverage rather than failing the query.
  void AddPlans(uint64_t n) { plans_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t PlansRemaining() const {
    if (max_plans_ == kUnlimited) return kUnlimited;
    uint64_t p = plans_charged();
    return p >= max_plans_ ? 0 : max_plans_ - p;
  }

  // Fresh per-rung counters for ladder retries (the deadline, being
  // absolute, intentionally persists). Configuration-phase only, like the
  // With* setters: not safe concurrently with hot-path probes.
  void ResetPlans() { plans_.store(0, std::memory_order_relaxed); }
  void ResetRows() { rows_.store(0, std::memory_order_relaxed); }

 private:
  static Status Exhausted(const char* stage, const std::string& what) {
    return Status::ResourceExhausted(std::string(stage) + ": " + what);
  }

  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<bool> expired_{false};
  uint64_t max_plans_ = kUnlimited;
  uint64_t max_rows_ = kUnlimited;
  uint64_t max_memory_ = kUnlimited;
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> plans_{0};
  std::atomic<uint64_t> tick_{0};
  std::atomic<uint64_t> memory_{0};
  std::atomic<uint64_t> memory_peak_{0};
};

// RAII ledger for one operator's working-state charges: Charge() forwards
// to the budget and remembers the amount, and the destructor releases
// whatever is still outstanding. This is the error-path hygiene primitive:
// a kernel that returns early -- over-cap, injected fault, cancelled lane
// -- unwinds its charges by construction, so a failed query never leaves
// phantom bytes pinned in a shared budget. Not thread-safe; parallel
// kernels keep one reservation per lane. A null budget makes every
// operation a no-op, keeping call sites unconditional.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  explicit MemoryReservation(ResourceBudget* budget) : budget_(budget) {}
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  MemoryReservation(MemoryReservation&& o) noexcept
      : budget_(o.budget_), bytes_(o.bytes_) {
    o.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& o) noexcept {
    if (this != &o) {
      Release();
      budget_ = o.budget_;
      bytes_ = o.bytes_;
      o.bytes_ = 0;
    }
    return *this;
  }
  ~MemoryReservation() { Release(); }

  Status Charge(uint64_t n, const char* stage) {
    if (budget_ == nullptr) return Status::OK();
    Status s = budget_->ChargeMemory(n, stage);
    if (s.ok()) bytes_ += n;
    return s;
  }
  void Release() {
    if (budget_ != nullptr && bytes_ > 0) budget_->ReleaseMemory(bytes_);
    bytes_ = 0;
  }
  uint64_t bytes() const { return bytes_; }

 private:
  ResourceBudget* budget_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace gsopt

#endif  // GSOPT_BASE_BUDGET_H_
