// RelSet: a value-type bitset over base-relation ids (max 64 relations per
// query block, far above practical join sizes). Used pervasively by the
// hypergraph, enumerator and optimizer DP tables.
#ifndef GSOPT_BASE_RELSET_H_
#define GSOPT_BASE_RELSET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/check.h"

namespace gsopt {

class RelSet {
 public:
  constexpr RelSet() : bits_(0) {}
  constexpr explicit RelSet(uint64_t bits) : bits_(bits) {}
  RelSet(std::initializer_list<int> ids) : bits_(0) {
    for (int id : ids) Add(id);
  }

  static constexpr int kMaxRelations = 64;

  static RelSet Single(int id) {
    RelSet s;
    s.Add(id);
    return s;
  }
  // {0, 1, ..., n-1}
  static RelSet FirstN(int n) {
    GSOPT_DCHECK(n >= 0 && n <= kMaxRelations);
    if (n == 64) return RelSet(~0ull);
    return RelSet((1ull << n) - 1);
  }

  void Add(int id) {
    GSOPT_DCHECK(id >= 0 && id < kMaxRelations);
    bits_ |= (1ull << id);
  }
  void Remove(int id) {
    GSOPT_DCHECK(id >= 0 && id < kMaxRelations);
    bits_ &= ~(1ull << id);
  }
  bool Contains(int id) const {
    GSOPT_DCHECK(id >= 0 && id < kMaxRelations);
    return (bits_ >> id) & 1;
  }
  bool ContainsAll(RelSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  bool Intersects(RelSet other) const { return (bits_ & other.bits_) != 0; }
  bool Empty() const { return bits_ == 0; }
  int Count() const { return __builtin_popcountll(bits_); }
  uint64_t bits() const { return bits_; }

  // Lowest set id; undefined on empty set.
  int First() const {
    GSOPT_DCHECK(!Empty());
    return __builtin_ctzll(bits_);
  }

  RelSet Union(RelSet o) const { return RelSet(bits_ | o.bits_); }
  RelSet Intersect(RelSet o) const { return RelSet(bits_ & o.bits_); }
  RelSet Minus(RelSet o) const { return RelSet(bits_ & ~o.bits_); }

  std::vector<int> ToVector() const {
    std::vector<int> out;
    uint64_t b = bits_;
    while (b) {
      out.push_back(__builtin_ctzll(b));
      b &= b - 1;
    }
    return out;
  }

  std::string ToString() const {
    std::string s = "{";
    bool first = true;
    for (int id : ToVector()) {
      if (!first) s += ",";
      s += std::to_string(id);
      first = false;
    }
    return s + "}";
  }

  friend bool operator==(RelSet a, RelSet b) { return a.bits_ == b.bits_; }
  friend bool operator!=(RelSet a, RelSet b) { return a.bits_ != b.bits_; }
  friend bool operator<(RelSet a, RelSet b) { return a.bits_ < b.bits_; }

 private:
  uint64_t bits_;
};

}  // namespace gsopt

#endif  // GSOPT_BASE_RELSET_H_
