// A small, work-stealing-free thread pool for morsel-driven parallel
// execution (Leis et al.'s morsel model, simplified): one shared atomic
// cursor hands out fixed-size row ranges ("morsels") to lanes, so load
// balancing falls out of claim order without deques or stealing.
//
// Shape:
//   * The pool owns `lanes - 1` worker threads; the thread that calls
//     ParallelFor participates as lane 0, so `lanes` is the true degree of
//     parallelism and a 1-lane pool spawns no threads at all.
//   * ParallelFor(n, morsel, body) invokes body(lane, begin, end) for
//     disjoint ranges covering [0, n) and returns once every range ran.
//     Completion is a full synchronization point: everything the lanes
//     wrote happens-before ParallelFor's return.
//   * One job runs at a time. Re-entrant calls (a body calling ParallelFor
//     on the same or another pool) and 1-lane pools execute inline on the
//     caller, so nesting degrades to serial instead of deadlocking.
//
// The pool itself never touches Status or budgets: kernels own
// cancellation by checking their shared flags inside `body`.
#ifndef GSOPT_BASE_THREAD_POOL_H_
#define GSOPT_BASE_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gsopt {

class ThreadPool {
 public:
  using Body = std::function<void(int lane, int64_t begin, int64_t end)>;

  explicit ThreadPool(int lanes) : lanes_(lanes < 1 ? 1 : lanes) {
    workers_.reserve(static_cast<size_t>(lanes_ - 1));
    for (int i = 1; i < lanes_; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  int lanes() const { return lanes_; }

  void ParallelFor(int64_t n, int64_t morsel, const Body& body) {
    if (n <= 0) return;
    if (morsel < 1) morsel = 1;
    // Inline when parallelism cannot help (single lane, one morsel) or
    // must not be attempted (called from inside a running body).
    if (lanes_ == 1 || n <= morsel || t_busy) {
      bool prev = t_busy;
      t_busy = true;
      body(0, 0, n);
      t_busy = prev;
      return;
    }
    std::lock_guard<std::mutex> job_lock(job_mu_);  // one job at a time
    {
      std::lock_guard<std::mutex> lock(mu_);
      body_ = &body;
      total_ = n;
      morsel_ = morsel;
      cursor_.store(0, std::memory_order_relaxed);
      active_workers_ = static_cast<int>(workers_.size());
      ++epoch_;
    }
    work_cv_.notify_all();
    RunMorsels(0, body, n, morsel);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return active_workers_ == 0; });
    body_ = nullptr;
  }

 private:
  void WorkerLoop(int lane) {
    uint64_t seen_epoch = 0;
    for (;;) {
      const Body* body;
      int64_t n, morsel;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock,
                      [&] { return shutdown_ || epoch_ != seen_epoch; });
        if (shutdown_) return;
        seen_epoch = epoch_;
        body = body_;
        n = total_;
        morsel = morsel_;
      }
      RunMorsels(lane, *body, n, morsel);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --active_workers_;
      }
      done_cv_.notify_one();
    }
  }

  void RunMorsels(int lane, const Body& body, int64_t n, int64_t morsel) {
    bool prev = t_busy;
    t_busy = true;
    for (;;) {
      int64_t begin = cursor_.fetch_add(morsel, std::memory_order_relaxed);
      if (begin >= n) break;
      body(lane, begin, std::min(begin + morsel, n));
    }
    t_busy = prev;
  }

  // True while this thread is executing a ParallelFor body (of any pool);
  // a nested ParallelFor then runs inline instead of deadlocking on
  // job_mu_ or oversubscribing lanes.
  static thread_local bool t_busy;

  const int lanes_;
  std::vector<std::thread> workers_;

  std::mutex job_mu_;  // serializes ParallelFor calls across threads

  std::mutex mu_;  // guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  uint64_t epoch_ = 0;
  int active_workers_ = 0;
  const Body* body_ = nullptr;
  int64_t total_ = 0;
  int64_t morsel_ = 1;

  std::atomic<int64_t> cursor_{0};
};

inline thread_local bool ThreadPool::t_busy = false;

}  // namespace gsopt

#endif  // GSOPT_BASE_THREAD_POOL_H_
