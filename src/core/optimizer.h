// Public facade: end-to-end query optimization.
//
//   QueryOptimizer opt(catalog);
//   auto result = opt.Optimize(query);
//   Relation answer = *Execute(result->best.expr, catalog);
//
// Pipeline (paper §4): simplify outer joins ([BHAR95c] precondition) ->
// normalize (pull aggregations to the root, defer aggregate-referencing
// conjuncts into generalized selections) -> build the query hypergraph ->
// enumerate association trees / assign operators (Definition 3.2 + GS +
// MGOJ, or the restricted baseline modes) -> cost and pick the best plan ->
// re-apply the wrapper stack above it.
#ifndef GSOPT_CORE_OPTIMIZER_H_
#define GSOPT_CORE_OPTIMIZER_H_

#include <vector>

#include "algebra/execute.h"
#include "algebra/node.h"
#include "algebra/normalize.h"
#include "algebra/simplify.h"
#include "base/status.h"
#include "enumerate/enumerator.h"
#include "optimizer/cost_model.h"
#include "relational/catalog.h"

namespace gsopt {

struct OptimizeOptions {
  EnumMode mode = EnumMode::kGeneralized;
  // Selinger-style DP pruning (cheapest subplan per compensation state).
  // Disable to enumerate the complete plan space.
  bool prune = true;
  bool simplify = true;
  size_t max_plans = 2000000;
};

struct PlanInfo {
  NodePtr expr;
  double cost = 0.0;
};

struct OptimizeResult {
  NodePtr original;
  NodePtr simplified;
  PlanInfo best;
  double original_cost = 0.0;
  size_t plans_considered = 0;
};

class QueryOptimizer {
 public:
  explicit QueryOptimizer(const Catalog& catalog)
      : catalog_(catalog), cost_model_(Statistics::Collect(catalog)) {}

  StatusOr<OptimizeResult> Optimize(const NodePtr& query,
                                    const OptimizeOptions& options = {}) const;

  // Every valid complete plan (wrappers applied), costed. With
  // options.prune the list is the DP frontier, not the full space.
  StatusOr<std::vector<PlanInfo>> EnumerateFullPlans(
      const NodePtr& query, const OptimizeOptions& options = {}) const;

  const CostModel& cost_model() const { return cost_model_; }
  const Catalog& catalog() const { return catalog_; }

 private:
  const Catalog& catalog_;
  CostModel cost_model_;
};

}  // namespace gsopt

#endif  // GSOPT_CORE_OPTIMIZER_H_
