// Public facade: end-to-end query optimization.
//
//   QueryOptimizer opt(catalog);
//   auto result = opt.Optimize(query);
//   Relation answer = *Execute(result->best.expr, catalog);
//
// Pipeline (paper §4): simplify outer joins ([BHAR95c] precondition) ->
// normalize (pull aggregations to the root, defer aggregate-referencing
// conjuncts into generalized selections) -> build the query hypergraph ->
// enumerate association trees / assign operators (Definition 3.2 + GS +
// MGOJ, or the restricted baseline modes) -> cost and pick the best plan ->
// re-apply the wrapper stack above it.
//
// Resource governance: OptimizeOptions may carry a ResourceBudget (deadline
// / plan cap). When a budget expires mid-enumeration the facade walks a
// fallback ladder of progressively cheaper plan spaces with whatever budget
// remains --
//   generalized -> baseline -> binary-only -> syntactic (as-written order)
// -- so a plan always comes back. The final rung never enumerates: it costs
// the simplified as-written expression and returns it. OptimizeResult's
// DegradationReport records the requested rung, the rung that produced the
// plan, whether the plan cap truncated the space, and the error from each
// abandoned rung.
#ifndef GSOPT_CORE_OPTIMIZER_H_
#define GSOPT_CORE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "algebra/execute.h"
#include "algebra/node.h"
#include "algebra/normalize.h"
#include "algebra/simplify.h"
#include "base/budget.h"
#include "base/status.h"
#include "enumerate/enumerator.h"
#include "optimizer/cost_model.h"
#include "relational/catalog.h"

namespace gsopt {

// Rungs of the fallback ladder, strongest (largest plan space) first.
// kSyntactic is not an enumeration mode: it returns the simplified
// as-written expression without searching, so it always succeeds.
enum class FallbackRung { kGeneralized = 0, kBaseline, kBinaryOnly,
                          kSyntactic };

std::string FallbackRungName(FallbackRung r);

// The ladder rung a caller-requested enumeration mode starts at.
FallbackRung RungOf(EnumMode m);

struct OptimizeOptions {
  EnumMode mode = EnumMode::kGeneralized;
  // Selinger-style DP pruning (cheapest subplan per compensation state).
  // Disable to enumerate the complete plan space.
  bool prune = true;
  bool simplify = true;
  size_t max_plans = 2000000;
  // Optional cooperative resource budget (not owned). Checked in the
  // normalizer, the enumerator's DP loop, and (when passed on to Execute)
  // the row-producing operators.
  ResourceBudget* budget = nullptr;
  // When the budget is exhausted mid-search, descend the fallback ladder
  // instead of failing. Disable to surface Status(kResourceExhausted).
  bool fallback = true;
  // The winning plan will execute serially with merge hints honored
  // (JoinStrategy kAuto or kMergeOnly), so the order-aware pass may remove
  // kSort enforcers whose order the subtree already delivers. MUST be
  // false when the plan may run on a parallel executor (morsel kernels do
  // not preserve row order) or with JoinStrategy::kHashOnly (the merge
  // hint is ignored and hash order comes out). Merge-hint stamping on
  // presorted inputs happens regardless of this flag.
  bool assume_ordered_exec = true;

  // Fluent builder (the serving API spells options this way; see
  // core/session.h). Aggregate initialization keeps working for old code.
  OptimizeOptions& WithMode(EnumMode m) { mode = m; return *this; }
  OptimizeOptions& WithPrune(bool b) { prune = b; return *this; }
  OptimizeOptions& WithSimplify(bool b) { simplify = b; return *this; }
  OptimizeOptions& WithMaxPlans(size_t n) { max_plans = n; return *this; }
  OptimizeOptions& WithBudget(ResourceBudget* b) { budget = b; return *this; }
  OptimizeOptions& WithFallback(bool b) { fallback = b; return *this; }
  OptimizeOptions& WithAssumeOrderedExec(bool b) {
    assume_ordered_exec = b;
    return *this;
  }
};

struct PlanInfo {
  NodePtr expr;
  double cost = 0.0;
};

// Work counters from the search that produced a plan: how much of the
// space was explored, how much DP pruning and the plan cap cut, and how
// close the deadline came. Summed across fallback rungs in Optimize().
struct OptimizerCounters {
  size_t subplans_enumerated = 0;  // DP subplans emitted
  size_t dp_cells = 0;             // DP table cells stored
  size_t dp_pruned = 0;            // subplans discarded by cost pruning
  size_t plans_considered = 0;     // complete candidate plans costed
  // Order-aware physical pass (optimizer/order.h) on the winning plan:
  // inner joins stamped for sort-merge execution, and ORDER BY enforcers
  // kept vs removed because an interesting order already delivered them.
  size_t merge_joins_chosen = 0;
  size_t sort_enforcers_placed = 0;
  size_t sort_enforcers_avoided = 0;
  // Slack left on the budget's deadline when optimization returned;
  // negative when no deadline was set.
  int64_t deadline_slack_us = -1;
  // Plan-cache traffic attributable to this result (filled by the Session
  // serving layer; always zero for direct QueryOptimizer::Optimize calls).
  // A hit means the search counters above describe the cached entry's
  // original optimization, not work done on this call.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_evictions = 0;
  size_t cache_invalidations = 0;

  std::string ToString() const;
};

// How (and whether) resource pressure degraded an optimization.
struct DegradationReport {
  FallbackRung requested = FallbackRung::kGeneralized;
  FallbackRung rung = FallbackRung::kGeneralized;  // produced the plan
  // The plan cap stopped the winning rung's enumeration early; the plan is
  // valid but possibly suboptimal.
  bool truncated = false;
  // One entry per abandoned rung: "<rung>: <status>".
  std::vector<std::string> attempts;

  bool degraded() const { return truncated || rung != requested; }
  std::string ToString() const;
};

struct OptimizeResult {
  NodePtr original;
  NodePtr simplified;
  PlanInfo best;
  double original_cost = 0.0;
  size_t plans_considered = 0;
  DegradationReport degradation;
  OptimizerCounters counters;
};

// A costed plan space plus whether enumeration was truncated by a cap.
struct PlanSpace {
  std::vector<PlanInfo> plans;
  bool truncated = false;
  OptimizerCounters counters;
};

class QueryOptimizer {
 public:
  explicit QueryOptimizer(const Catalog& catalog)
      : catalog_(catalog), cost_model_(Statistics::Collect(catalog)) {}

  StatusOr<OptimizeResult> Optimize(const NodePtr& query,
                                    const OptimizeOptions& options = {}) const;

  // Every valid complete plan (wrappers applied), costed, plus the
  // truncation flag. With options.prune the list is the DP frontier, not
  // the full space. Runs a single rung (options.mode) -- no ladder.
  StatusOr<PlanSpace> EnumeratePlanSpace(
      const NodePtr& query, const OptimizeOptions& options = {}) const;

  // Back-compat convenience: the plans of EnumeratePlanSpace().
  StatusOr<std::vector<PlanInfo>> EnumerateFullPlans(
      const NodePtr& query, const OptimizeOptions& options = {}) const;

  const CostModel& cost_model() const { return cost_model_; }
  const Catalog& catalog() const { return catalog_; }

 private:
  const Catalog& catalog_;
  CostModel cost_model_;
};

}  // namespace gsopt

#endif  // GSOPT_CORE_OPTIMIZER_H_
