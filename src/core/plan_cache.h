// Sharded LRU plan cache + query parameterization for the Session serving
// layer (core/session.h).
//
// The paper's whole analysis pipeline -- pres(h)/conf computation,
// association-tree enumeration, GS/MGOJ compensation assignment (PAPER.md
// paragraphs 3-4) -- depends only on the *shape* of the bound tree, never on
// the constant literals inside its predicates. ParameterizeQuery exploits
// that: every literal constant in a bound tree is lifted to a parameter
// slot ($n), producing a canonical parameterized tree whose serialization
// is fingerprinted with 64-bit FNV-1a (the same hash the executor's
// allocation-free join keys use, exec/keys.h). One optimization of the
// parameterized tree then serves every literal instantiation: executing is
// SubstituteParams + Execute, no lexer/parser/binder/normalize/enumerate.
//
// Cache structure: N independent shards (fingerprint-addressed), each a
// mutex-guarded LRU list + hash index, so concurrent serving threads only
// contend when they hash to the same shard. Entries are
// shared_ptr<const CachedPlan>: a lookup pins the entry for the duration
// of the caller's execution, so eviction under a concurrent hit can never
// free a plan mid-flight. Every entry carries the stats epoch it was
// optimized under; a lookup with a newer epoch drops the entry lazily
// (counted as an invalidation) instead of requiring a stop-the-world
// flush when statistics move.
//
// Collision safety: the full canonical serialization is stored in the
// entry and compared on every hit, so an FNV collision degrades to a miss
// rather than serving the wrong plan.
#ifndef GSOPT_CORE_PLAN_CACHE_H_
#define GSOPT_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/node.h"
#include "base/status.h"
#include "core/optimizer.h"
#include "relational/value.h"

namespace gsopt {

// FNV-1a 64-bit (offset basis seedable so callers can chain segments).
inline uint64_t Fnv1a64(const std::string& s,
                        uint64_t h = 1469598103934665603ull) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// A bound tree with its literal constants lifted to parameter slots.
// Explicit $n parameters (already present from a PREPARE) keep their
// slots [0, num_explicit); lifted literals are appended after them, in
// deterministic traversal order (a node's own scalars -- predicate atoms
// left-to-right, lhs before rhs, then aggregate inputs -- before its left
// subtree, before its right subtree). Two bound trees that differ only in
// literal values therefore produce identical `tree`/`canonical`/
// `fingerprint` and aligned `lifted` vectors, which is exactly what makes
// a cache hit across literals sound.
struct ParameterizedQuery {
  NodePtr tree;                // constants replaced by parameter slots
  std::vector<Value> lifted;   // lifted literals; slot num_explicit + i
  int num_explicit = 0;        // 1 + highest $n slot in the input (0 if none)
  int total_slots = 0;         // num_explicit + lifted.size()
  std::string canonical;       // normalized serialization of `tree`
  uint64_t fingerprint = 0;    // FNV-1a over `canonical`
};

ParameterizedQuery ParameterizeQuery(const NodePtr& tree);

// Replaces every parameter slot in `tree` with values[slot]. Fails with
// kInvalidArgument if any slot is >= values.size() (an unbound parameter).
StatusOr<NodePtr> SubstituteParams(const NodePtr& tree,
                                   const std::vector<Value>& values);

// One cached optimization result: the optimized plan still carries its
// parameter slots, so it is a template serving every literal binding.
struct CachedPlan {
  NodePtr plan;                // optimized, parameterized
  double cost = 0.0;
  int num_explicit = 0;
  int total_slots = 0;
  DegradationReport degradation;  // from the producing optimization
  OptimizerCounters counters;     // search work of the producing optimization
  std::string canonical;          // fingerprint preimage (collision guard)
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;       // LRU capacity evictions
  uint64_t invalidations = 0;   // stale-epoch entries dropped on lookup
  uint64_t inserts = 0;
  size_t entries = 0;           // currently resident

  std::string ToString() const;
};

class PlanCache {
 public:
  // `capacity` is the total entry budget, split evenly across
  // `num_shards` power-of-two-rounded shards (>= 1 entry each).
  explicit PlanCache(size_t capacity = 256, size_t num_shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Returns the pinned entry on a fresh-epoch hit, null on miss. A stale
  // entry (older epoch) is erased and counted as an invalidation (also
  // reported through `invalidated` when non-null, so callers can attribute
  // it to this lookup); a fingerprint collision (canonical mismatch) is a
  // plain miss.
  std::shared_ptr<const CachedPlan> Lookup(uint64_t fingerprint,
                                           const std::string& canonical,
                                           uint64_t epoch,
                                           bool* invalidated = nullptr);

  // Inserts (or replaces) the entry for `fingerprint`, evicting the
  // shard's LRU tail beyond capacity. In-flight executions holding the
  // evicted shared_ptr keep it alive until they finish. Returns the number
  // of entries evicted.
  size_t Insert(uint64_t fingerprint, uint64_t epoch,
                std::shared_ptr<const CachedPlan> plan);

  PlanCacheStats Stats() const;
  void Clear();

  size_t capacity() const { return shards_.size() * per_shard_capacity_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    uint64_t epoch = 0;
    std::shared_ptr<const CachedPlan> plan;
  };
  using LruList = std::list<Entry>;
  struct Shard {
    mutable std::mutex mu;
    LruList lru;  // front = most recently used
    std::unordered_map<uint64_t, LruList::iterator> index;
    uint64_t hits = 0, misses = 0, evictions = 0, invalidations = 0,
             inserts = 0;
  };

  Shard& ShardFor(uint64_t fingerprint) {
    // Shard count is a power of two; mix the high bits in so shard choice
    // is independent of the bits the per-shard hash map uses.
    return shards_[(fingerprint ^ (fingerprint >> 17)) &
                   (shards_.size() - 1)];
  }

  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace gsopt

#endif  // GSOPT_CORE_PLAN_CACHE_H_
