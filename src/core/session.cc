#include "core/session.h"

#include <thread>
#include <utility>

#include "base/check.h"
#include "sql/binder.h"

namespace gsopt {

StatusOr<QueryResult> PreparedStatement::Execute(const ExecOptions& exec) {
  return Execute(bound_, exec);
}

StatusOr<QueryResult> PreparedStatement::Execute(std::vector<Value> params,
                                                   const ExecOptions& exec) {
  GSOPT_CHECK(session_ != nullptr);
  if (static_cast<int>(params.size()) != pq_.num_explicit) {
    return Status::InvalidArgument(
        "statement expects " + std::to_string(pq_.num_explicit) +
        " parameter(s), " + std::to_string(params.size()) + " bound");
  }
  ExecOptions merged = session_->MergedExec(exec);
  // Statistics may have moved since Prepare (or the last Execute); the
  // epoch check re-acquires through the cache so a stale template is
  // re-optimized at most once per epoch, not per call. A fresh-epoch
  // execute is a template reuse: no plan search happens on this call.
  bool hit = true;
  bool deferred = false;
  OptimizerCounters traffic;
  if (epoch_ != session_->epoch()) {
    uint64_t epoch = 0;
    GSOPT_ASSIGN_OR_RETURN(
        plan_, session_->AcquirePlan(pq_, merged.budget, &epoch, &hit,
                                     &traffic, /*defer_install=*/true));
    epoch_ = epoch;
    cache_hit_ = hit;
    deferred = !hit;
  }
  // Full slot vector: explicit $n values first, then the literals lifted
  // at Prepare time.
  std::vector<Value> values = std::move(params);
  values.insert(values.end(), pq_.lifted.begin(), pq_.lifted.end());
  StatusOr<QueryResult> result =
      session_->ExecuteTemplate(plan_, values, hit, traffic, merged);
  if (result.ok() && deferred) {
    // The re-optimized template proved itself; publish it now. A failing
    // template is never published (plan-cache poisoning guard).
    result->counters.cache_evictions += session_->PublishPlan(plan_, epoch_);
  }
  return result;
}

StatusOr<NodePtr> PreparedStatement::ExecutablePlan(
    const std::vector<Value>& params) const {
  if (static_cast<int>(params.size()) != pq_.num_explicit) {
    return Status::InvalidArgument(
        "statement expects " + std::to_string(pq_.num_explicit) +
        " parameter(s), " + std::to_string(params.size()) + " bound");
  }
  std::vector<Value> values = params;
  values.insert(values.end(), pq_.lifted.begin(), pq_.lifted.end());
  return SubstituteParams(plan_->plan, values);
}

Session::Session(const Catalog& catalog, SessionOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      cache_(options_.plan_cache_capacity, options_.plan_cache_shards) {
  // The order-aware pass may only remove ORDER BY enforcers when the plans
  // this session serves will execute in row order with merge hints
  // honored: serial kernels (parallel morsels permute rows) and a join
  // strategy that takes the merge path (kHashOnly ignores the hint).
  if ((options_.exec.executor != nullptr && options_.exec.executor->lanes() > 1) ||
      options_.exec.join == exec::JoinStrategy::kHashOnly) {
    options_.optimize.assume_ordered_exec = false;
  }
}

uint64_t Session::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::shared_ptr<const QueryOptimizer> Session::RefreshOptimizer(
    uint64_t* epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (optimizer_ == nullptr || seen_version_ != catalog_.version()) {
    seen_version_ = catalog_.version();
    // Re-collects Statistics from the catalog; cached plans optimized
    // under the previous statistics die lazily via the epoch bump.
    optimizer_ = std::make_shared<const QueryOptimizer>(catalog_);
    ++epoch_;
  }
  if (epoch != nullptr) *epoch = epoch_;
  return optimizer_;
}

std::shared_ptr<const QueryOptimizer> Session::optimizer() {
  return RefreshOptimizer(nullptr);
}

ExecOptions Session::MergedExec(const ExecOptions& exec) const {
  ExecOptions merged;
  merged.policy() = MergeExecPolicy(options_.exec, exec.policy());
  merged.stats = exec.stats;
  return merged;
}

std::string Session::KeyCanonical(const std::string& tree_canonical) const {
  const OptimizeOptions& o = options_.optimize;
  return tree_canonical + "|mode=" +
         std::to_string(static_cast<int>(o.mode)) +
         " prune=" + std::to_string(o.prune ? 1 : 0) +
         " simplify=" + std::to_string(o.simplify ? 1 : 0) +
         " max_plans=" + std::to_string(o.max_plans) +
         " ordered=" + std::to_string(o.assume_ordered_exec ? 1 : 0);
}

uint64_t Session::PublishPlan(const std::shared_ptr<const CachedPlan>& plan,
                              uint64_t epoch) {
  if (!options_.use_plan_cache) return 0;
  return cache_.Insert(Fnv1a64(plan->canonical), epoch, plan);
}

StatusOr<std::shared_ptr<const CachedPlan>> Session::AcquirePlan(
    const ParameterizedQuery& pq, ResourceBudget* budget, uint64_t* epoch,
    bool* hit, OptimizerCounters* traffic, bool defer_install) {
  *hit = false;
  std::shared_ptr<const QueryOptimizer> opt = RefreshOptimizer(epoch);
  const std::string key = KeyCanonical(pq.canonical);
  const uint64_t fp = Fnv1a64(key);
  if (options_.use_plan_cache) {
    bool invalidated = false;
    if (auto cached = cache_.Lookup(fp, key, *epoch, &invalidated)) {
      *hit = true;
      traffic->cache_hits += 1;
      return cached;
    }
    traffic->cache_misses += 1;
    traffic->cache_invalidations += invalidated ? 1 : 0;
  }
  OptimizeOptions oo = options_.optimize;
  if (budget != nullptr) oo.budget = budget;
  GSOPT_ASSIGN_OR_RETURN(OptimizeResult result, opt->Optimize(pq.tree, oo));
  auto plan = std::make_shared<CachedPlan>();
  plan->plan = result.best.expr;
  plan->cost = result.best.cost;
  plan->num_explicit = pq.num_explicit;
  plan->total_slots = pq.total_slots;
  plan->degradation = result.degradation;
  plan->counters = result.counters;
  plan->canonical = key;
  if (options_.use_plan_cache && !defer_install) {
    // A budget-degraded plan is still worth caching: it is valid, and the
    // next caller's budget governs its EXECUTION; whoever wants a better
    // plan can clear the cache or run with a fresh session.
    traffic->cache_evictions += cache_.Insert(fp, *epoch, plan);
  }
  return std::shared_ptr<const CachedPlan>(std::move(plan));
}

StatusOr<QueryResult> Session::ExecuteTemplate(
    const std::shared_ptr<const CachedPlan>& plan,
    const std::vector<Value>& values, bool hit,
    const OptimizerCounters& traffic, const ExecOptions& exec) {
  GSOPT_ASSIGN_OR_RETURN(NodePtr executable,
                         SubstituteParams(plan->plan, values));
  // collect_stats: grow the stats tree inside the result instead of a
  // caller-supplied side channel (an explicit ExecOptions::stats pointer
  // -- the legacy channel -- wins when both are set).
  ExecOptions run = exec;
  std::shared_ptr<exec::OperatorStats> owned_stats;
  if (run.collect_stats && run.stats == nullptr) {
    owned_stats = std::make_shared<exec::OperatorStats>();
    run.stats = owned_stats.get();
  }
  // Transient failures (kUnavailable: short spill I/O, dispatch faults)
  // are retried with bounded exponential backoff; an identical attempt
  // may succeed. Persistent failures (caps, real ENOSPC) propagate
  // immediately.
  int retries = 0;
  StatusOr<Relation> rows = gsopt::Execute(executable, catalog_, run);
  while (!rows.ok() && rows.status().IsTransient() &&
         retries < options_.max_transient_retries) {
    // Reset the stats tree: the retry re-runs every operator from
    // scratch and must not double-count the failed attempt.
    if (run.stats != nullptr) *run.stats = exec::OperatorStats{};
    std::this_thread::sleep_for(options_.retry_backoff * (1LL << retries));
    ++retries;
    rows = gsopt::Execute(executable, catalog_, run);
  }
  GSOPT_RETURN_IF_ERROR(rows.status());
  QueryResult out;
  out.rows = std::move(rows).value();
  out.stats = std::move(owned_stats);
  out.transient_retries = retries;
  out.plan = std::move(executable);
  out.plan_cost = plan->cost;
  out.cache_hit = hit;
  out.degradation = plan->degradation;
  out.counters = plan->counters;
  out.counters.cache_hits = traffic.cache_hits;
  out.counters.cache_misses = traffic.cache_misses;
  out.counters.cache_evictions = traffic.cache_evictions;
  out.counters.cache_invalidations = traffic.cache_invalidations;
  return out;
}

StatusOr<ParameterizedQuery> Session::ParameterizedFor(
    const std::string& sql) {
  const uint64_t version = catalog_.version();
  if (options_.use_plan_cache) {
    std::lock_guard<std::mutex> lock(text_mu_);
    auto it = text_cache_.find(sql);
    if (it != text_cache_.end() && it->second.version == version) {
      return it->second.pq;
    }
  }
  GSOPT_ASSIGN_OR_RETURN(NodePtr tree, sql::ParseAndBind(sql, catalog_));
  ParameterizedQuery pq = ParameterizeQuery(tree);
  if (options_.use_plan_cache) {
    std::lock_guard<std::mutex> lock(text_mu_);
    // Wholesale reset at capacity: simpler than a second LRU, and the
    // memo repopulates at parse cost, not optimize cost.
    if (text_cache_.size() >= options_.text_cache_capacity) {
      text_cache_.clear();
    }
    text_cache_[sql] = TextEntry{pq, version};
  }
  return pq;
}

StatusOr<PreparedStatement> Session::Prepare(const std::string& sql,
                                             ResourceBudget* budget) {
  if (options_.optimize.max_plans == 0) {
    return Status::InvalidArgument(
        "SessionOptions: max_plans must be positive (a zero cap would "
        "enumerate no plans)");
  }
  PreparedStatement stmt;
  stmt.session_ = this;
  GSOPT_ASSIGN_OR_RETURN(stmt.pq_, ParameterizedFor(sql));
  OptimizerCounters traffic;
  GSOPT_ASSIGN_OR_RETURN(
      stmt.plan_,
      AcquirePlan(stmt.pq_,
                  budget != nullptr ? budget : options_.optimize.budget,
                  &stmt.epoch_, &stmt.cache_hit_, &traffic));
  return stmt;
}

StatusOr<QueryResult> Session::ServeParameterized(
    const ParameterizedQuery& pq, const ExecOptions& exec) {
  if (pq.num_explicit > 0) {
    return Status::InvalidArgument(
        "query has " + std::to_string(pq.num_explicit) +
        " unbound parameter(s); use Prepare()/Bind()/Execute()");
  }
  ExecOptions merged = MergedExec(exec);
  uint64_t epoch = 0;
  bool hit = false;
  OptimizerCounters traffic;
  GSOPT_ASSIGN_OR_RETURN(
      std::shared_ptr<const CachedPlan> plan,
      AcquirePlan(pq, merged.budget, &epoch, &hit, &traffic,
                  /*defer_install=*/true));
  StatusOr<QueryResult> result =
      ExecuteTemplate(plan, pq.lifted, hit, traffic, merged);
  if (result.ok() && !hit) {
    // Publish the freshly optimized template only once it has executed
    // successfully: a miss whose execution fails must never install a
    // template later callers would be served (plan-cache poisoning guard).
    result->counters.cache_evictions += PublishPlan(plan, epoch);
  }
  return result;
}

StatusOr<QueryResult> Session::Query(const std::string& sql,
                                       const ExecOptions& exec) {
  if (options_.optimize.max_plans == 0) {
    return Status::InvalidArgument(
        "SessionOptions: max_plans must be positive (a zero cap would "
        "enumerate no plans)");
  }
  // exec.budget threads into the miss-path optimization as well as the
  // execution; unbound $n parameters are rejected (those need the
  // Prepare/Bind lifecycle).
  GSOPT_ASSIGN_OR_RETURN(ParameterizedQuery pq, ParameterizedFor(sql));
  return ServeParameterized(pq, exec);
}

StatusOr<QueryResult> Session::Run(const NodePtr& tree,
                                     const ExecOptions& exec) {
  if (tree == nullptr) return Status::InvalidArgument("null query");
  if (options_.optimize.max_plans == 0) {
    return Status::InvalidArgument(
        "SessionOptions: max_plans must be positive (a zero cap would "
        "enumerate no plans)");
  }
  return ServeParameterized(ParameterizeQuery(tree), exec);
}

}  // namespace gsopt
