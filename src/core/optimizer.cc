#include "core/optimizer.h"

#include "hypergraph/querygraph.h"
#include "optimizer/order.h"

namespace gsopt {

std::string FallbackRungName(FallbackRung r) {
  switch (r) {
    case FallbackRung::kGeneralized:
      return "generalized";
    case FallbackRung::kBaseline:
      return "baseline";
    case FallbackRung::kBinaryOnly:
      return "binary-only";
    case FallbackRung::kSyntactic:
      return "syntactic";
  }
  return "?";
}

FallbackRung RungOf(EnumMode m) {
  switch (m) {
    case EnumMode::kGeneralized:
      return FallbackRung::kGeneralized;
    case EnumMode::kBaseline:
      return FallbackRung::kBaseline;
    case EnumMode::kBinaryOnly:
      return FallbackRung::kBinaryOnly;
  }
  return FallbackRung::kGeneralized;
}

std::string OptimizerCounters::ToString() const {
  std::string s = "subplans=" + std::to_string(subplans_enumerated) +
                  " dp_cells=" + std::to_string(dp_cells) +
                  " dp_pruned=" + std::to_string(dp_pruned) +
                  " plans_considered=" + std::to_string(plans_considered);
  if (merge_joins_chosen + sort_enforcers_placed + sort_enforcers_avoided >
      0) {
    s += " merge_joins=" + std::to_string(merge_joins_chosen) +
         " sorts_placed=" + std::to_string(sort_enforcers_placed) +
         " sorts_avoided=" + std::to_string(sort_enforcers_avoided);
  }
  if (deadline_slack_us >= 0) {
    s += " deadline_slack_us=" + std::to_string(deadline_slack_us);
  }
  if (cache_hits + cache_misses > 0) {
    s += " cache_hits=" + std::to_string(cache_hits) +
         " cache_misses=" + std::to_string(cache_misses);
    if (cache_evictions > 0) {
      s += " cache_evictions=" + std::to_string(cache_evictions);
    }
    if (cache_invalidations > 0) {
      s += " cache_invalidations=" + std::to_string(cache_invalidations);
    }
  }
  return s;
}

std::string DegradationReport::ToString() const {
  if (!degraded() && attempts.empty()) return "none";
  std::string s = "requested=" + FallbackRungName(requested) +
                  " produced=" + FallbackRungName(rung);
  if (truncated) s += " (plan space truncated)";
  for (const std::string& a : attempts) s += "; abandoned " + a;
  return s;
}

namespace {

// Enumeration mode of a non-syntactic rung.
EnumMode ModeOf(FallbackRung r) {
  switch (r) {
    case FallbackRung::kBaseline:
      return EnumMode::kBaseline;
    case FallbackRung::kBinaryOnly:
      return EnumMode::kBinaryOnly;
    default:
      return EnumMode::kGeneralized;
  }
}

}  // namespace

StatusOr<PlanSpace> QueryOptimizer::EnumeratePlanSpace(
    const NodePtr& query, const OptimizeOptions& options) const {
  if (query == nullptr) return Status::InvalidArgument("null query");
  if (options.budget != nullptr) {
    GSOPT_RETURN_IF_ERROR(options.budget->CheckDeadlineNow("optimize"));
  }
  // Reorder below a root ORDER BY (the binder emits Project(Sort(...));
  // the sort is an enforcer over whatever plan wins, so the plan space is
  // the child's with the enforcer re-applied).
  if (query->kind() == OpKind::kSort) {
    GSOPT_ASSIGN_OR_RETURN(PlanSpace inner,
                           EnumeratePlanSpace(query->left(), options));
    for (PlanInfo& p : inner.plans) {
      p.expr = Node::Sort(p.expr, query->sort_spec());
      p.cost = cost_model_.Cost(p.expr);
    }
    return inner;
  }
  // Reorder below a root projection (the SQL binder's output shape), then
  // re-apply it on every plan.
  if (query->kind() == OpKind::kProject) {
    GSOPT_ASSIGN_OR_RETURN(PlanSpace inner,
                           EnumeratePlanSpace(query->left(), options));
    for (PlanInfo& p : inner.plans) {
      p.expr = (query->projection_out() != query->projection())
                   ? Node::ProjectAs(p.expr, query->projection(),
                                     query->projection_out())
                   : Node::Project(p.expr, query->projection());
      p.cost = cost_model_.Cost(p.expr);
    }
    return inner;
  }
  NodePtr simplified =
      options.simplify ? SimplifyOuterJoins(query) : query;
  GSOPT_ASSIGN_OR_RETURN(
      NormalizedQuery nq,
      NormalizeForReordering(simplified, catalog_, options.budget));

  PlanSpace space;
  std::vector<NodePtr> trees;
  auto qg = BuildQueryGraph(nq.join_tree, catalog_);
  if (qg.ok() && qg->hypergraph.NumRelations() >= 1) {
    EnumOptions eo;
    eo.mode = options.mode;
    eo.max_plans = options.max_plans;
    eo.budget = options.budget;
    if (options.prune) {
      eo.cost_fn = [this](const NodePtr& n) { return cost_model_.Cost(n); };
    }
    Enumerator en(qg->hypergraph, eo);
    en.SetLeafExprs(qg->leaf_exprs);
    auto enumerated = en.Enumerate();
    if (enumerated.ok()) {
      space.truncated = enumerated->truncated;
      space.counters.subplans_enumerated = enumerated->subplans_emitted;
      space.counters.dp_cells = enumerated->dp_cells;
      space.counters.dp_pruned = enumerated->dp_pruned;
      for (const PlanCandidate& c : enumerated->plans) {
        trees.push_back(c.expr);
      }
    } else if (enumerated.status().code() == StatusCode::kResourceExhausted) {
      // Budget expiry is the caller's signal to descend the fallback
      // ladder; swallowing it here would burn the remaining budget on
      // wrapper application for a single-tree plan space.
      return enumerated.status();
    }
    // Other enumerator failures (e.g. opaque-only queries) keep the
    // single-tree fallback below.
  }
  if (trees.empty()) {
    // Fallback: the normalized tree as-is (e.g. a single opaque unit).
    trees.push_back(nq.join_tree);
  }

  space.plans.reserve(trees.size() + 1);
  for (const NodePtr& t : trees) {
    GSOPT_ASSIGN_OR_RETURN(NodePtr full, ApplyWrappers(nq, t, catalog_));
    space.plans.push_back(PlanInfo{full, cost_model_.Cost(full)});
  }
  // No-regression guarantee: normalization (e.g. aggregation pull-up into
  // cartesian outer joins) can make EVERY reordered plan worse than the
  // as-written form; the original always stays a candidate.
  space.plans.push_back(PlanInfo{simplified, cost_model_.Cost(simplified)});
  space.counters.plans_considered = space.plans.size();
  return space;
}

StatusOr<std::vector<PlanInfo>> QueryOptimizer::EnumerateFullPlans(
    const NodePtr& query, const OptimizeOptions& options) const {
  GSOPT_ASSIGN_OR_RETURN(PlanSpace space, EnumeratePlanSpace(query, options));
  return std::move(space.plans);
}

StatusOr<OptimizeResult> QueryOptimizer::Optimize(
    const NodePtr& query, const OptimizeOptions& options) const {
  if (query == nullptr) return Status::InvalidArgument("null query");
  OptimizeResult result;
  result.original = query;
  result.simplified = options.simplify ? SimplifyOuterJoins(query) : query;
  result.original_cost = cost_model_.Cost(query);
  DegradationReport& deg = result.degradation;
  deg.requested = RungOf(options.mode);
  deg.rung = deg.requested;
  // Runs once on the winning plan: the order-aware physical pass (merge
  // hints, redundant-enforcer removal), then the counter fill. Deadline
  // slack is whatever remains when the winning rung returns.
  auto finish_counters = [this, &result, &options]() {
    OrderPassCounters oc;
    NodePtr tuned = ApplyOrderAwarePass(result.best.expr, cost_model_.stats(),
                                        options.assume_ordered_exec, &oc);
    if (tuned != result.best.expr) {
      result.best.expr = tuned;
      result.best.cost = cost_model_.Cost(tuned);
    }
    result.counters.merge_joins_chosen = oc.merge_joins_chosen;
    result.counters.sort_enforcers_placed = oc.sort_enforcers_placed;
    result.counters.sort_enforcers_avoided = oc.sort_enforcers_avoided;
    result.counters.plans_considered = result.plans_considered;
    if (options.budget != nullptr && options.budget->has_deadline()) {
      result.counters.deadline_slack_us =
          options.budget->RemainingTime().count();
    }
  };

  for (int r = static_cast<int>(deg.requested);
       r <= static_cast<int>(FallbackRung::kSyntactic); ++r) {
    FallbackRung rung = static_cast<FallbackRung>(r);
    if (rung == FallbackRung::kSyntactic) {
      // Terminal rung: the simplified as-written expression, no search.
      // Always valid, so the ladder cannot come back empty-handed.
      deg.rung = rung;
      result.best =
          PlanInfo{result.simplified, cost_model_.Cost(result.simplified)};
      result.plans_considered += 1;
      finish_counters();
      return result;
    }
    OptimizeOptions rung_options = options;
    rung_options.mode = ModeOf(rung);
    auto space = EnumeratePlanSpace(query, rung_options);
    if (!space.ok()) {
      if (options.fallback &&
          space.status().code() == StatusCode::kResourceExhausted) {
        deg.attempts.push_back(FallbackRungName(rung) + ": " +
                               space.status().ToString());
        continue;
      }
      return space.status();
    }
    deg.rung = rung;
    deg.truncated = space->truncated;
    result.plans_considered += space->plans.size();
    // Search-work counters accumulate across abandoned rungs too, but only
    // the winning rung's space reaches this point; abandoned rungs died
    // before producing a space, so summing here is the whole story.
    result.counters.subplans_enumerated += space->counters.subplans_enumerated;
    result.counters.dp_cells += space->counters.dp_cells;
    result.counters.dp_pruned += space->counters.dp_pruned;
    const PlanInfo* best = &space->plans[0];
    for (const PlanInfo& p : space->plans) {
      if (p.cost < best->cost) best = &p;
    }
    result.best = *best;
    finish_counters();
    return result;
  }
  return Status::Internal("fallback ladder exhausted without a plan");
}

}  // namespace gsopt
