#include "core/optimizer.h"

#include "hypergraph/querygraph.h"

namespace gsopt {

StatusOr<std::vector<PlanInfo>> QueryOptimizer::EnumerateFullPlans(
    const NodePtr& query, const OptimizeOptions& options) const {
  if (query == nullptr) return Status::InvalidArgument("null query");
  // Reorder below a root projection (the SQL binder's output shape), then
  // re-apply it on every plan.
  if (query->kind() == OpKind::kProject) {
    GSOPT_ASSIGN_OR_RETURN(std::vector<PlanInfo> inner,
                           EnumerateFullPlans(query->left(), options));
    for (PlanInfo& p : inner) {
      p.expr = (query->projection_out() != query->projection())
                   ? Node::ProjectAs(p.expr, query->projection(),
                                     query->projection_out())
                   : Node::Project(p.expr, query->projection());
      p.cost = cost_model_.Cost(p.expr);
    }
    return inner;
  }
  NodePtr simplified =
      options.simplify ? SimplifyOuterJoins(query) : query;
  GSOPT_ASSIGN_OR_RETURN(NormalizedQuery nq,
                         NormalizeForReordering(simplified, catalog_));

  std::vector<NodePtr> trees;
  auto qg = BuildQueryGraph(nq.join_tree, catalog_);
  if (qg.ok() && qg->hypergraph.NumRelations() >= 1) {
    EnumOptions eo;
    eo.mode = options.mode;
    eo.max_plans = options.max_plans;
    if (options.prune) {
      eo.cost_fn = [this](const NodePtr& n) { return cost_model_.Cost(n); };
    }
    Enumerator en(qg->hypergraph, eo);
    en.SetLeafExprs(qg->leaf_exprs);
    auto plans = en.EnumerateAll();
    if (plans.ok()) {
      for (const PlanCandidate& c : *plans) trees.push_back(c.expr);
    }
  }
  if (trees.empty()) {
    // Fallback: the normalized tree as-is (e.g. a single opaque unit).
    trees.push_back(nq.join_tree);
  }

  std::vector<PlanInfo> out;
  out.reserve(trees.size() + 1);
  for (const NodePtr& t : trees) {
    GSOPT_ASSIGN_OR_RETURN(NodePtr full, ApplyWrappers(nq, t, catalog_));
    out.push_back(PlanInfo{full, cost_model_.Cost(full)});
  }
  // No-regression guarantee: normalization (e.g. aggregation pull-up into
  // cartesian outer joins) can make EVERY reordered plan worse than the
  // as-written form; the original always stays a candidate.
  out.push_back(PlanInfo{simplified, cost_model_.Cost(simplified)});
  return out;
}

StatusOr<OptimizeResult> QueryOptimizer::Optimize(
    const NodePtr& query, const OptimizeOptions& options) const {
  GSOPT_ASSIGN_OR_RETURN(std::vector<PlanInfo> plans,
                         EnumerateFullPlans(query, options));
  OptimizeResult result;
  result.original = query;
  result.simplified = options.simplify ? SimplifyOuterJoins(query) : query;
  result.original_cost = cost_model_.Cost(query);
  result.plans_considered = plans.size();
  const PlanInfo* best = &plans[0];
  for (const PlanInfo& p : plans) {
    if (p.cost < best->cost) best = &p;
  }
  result.best = *best;
  return result;
}

}  // namespace gsopt
