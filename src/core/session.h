// gsopt::Session -- the serving API. One object wraps the catalog, the
// QueryOptimizer, the executor and a sharded LRU plan cache behind three
// entry points:
//
//   Session session(catalog, SessionOptions{}
//                                .WithMode(EnumMode::kGeneralized)
//                                .WithExecutor(&parallel));
//   // One-shot:
//   auto result = session.Query("SELECT * FROM r1 WHERE r1.a = 7");
//   // Prepared, with $n parameters:
//   auto stmt = session.Prepare(
//       "SELECT * FROM r1 JOIN r2 ON r1.k = r2.k WHERE r1.a = $1");
//   auto rows = stmt->Bind({Value::Int(7)}).Execute();
//   // Already-bound algebra trees (tools, tests, fuzzers):
//   auto r2 = session.Run(tree);
//
// Every path funnels through the same plan acquisition step: the bound
// tree's literal constants are lifted to parameter slots
// (ParameterizeQuery, core/plan_cache.h), the parameterized shape is
// fingerprinted together with the optimizer-options signature, and the
// sharded cache is consulted. A hit skips
// simplify/normalize/enumerate/cost entirely -- the cached plan template
// is re-instantiated by substituting this call's values -- while a miss
// optimizes the parameterized tree once and publishes it for every later
// literal instantiation. Since the optimizer never inspects constant
// *values* (selectivity uses 1/distinct for any col=const atom, parameter
// or literal), the cached template is the same plan the literals would
// have produced.
//
// SQL entry points additionally memoize the statement TEXT: a repeated
// Prepare/Query of byte-identical SQL skips lexer/parser/binder and goes
// straight to plan acquisition with the memoized parameterized tree (the
// front-end layer every serving system puts before its plan cache).
// Entries are tagged with the catalog version and dropped when it moves,
// since binding resolves names against the catalog.
//
// Statistics staleness: Session remembers the Catalog::version() its
// QueryOptimizer's statistics were collected at. Any catalog mutation
// bumps that version; the next Session call notices, rebuilds the
// optimizer (re-collecting Statistics) and bumps the cache epoch, so
// stale templates die lazily on their next lookup (counted as
// invalidations) instead of requiring a synchronous flush.
//
// Concurrency: Prepare/Query/Run are safe to call from many threads of a
// morsel-parallel server (per-shard cache mutexes; the optimizer is
// rebuilt under a session mutex and handed out as shared_ptr; entries are
// pinned by shared_ptr so eviction cannot free a plan mid-execution) --
// PROVIDED the catalog is not mutated concurrently with serving, which
// the underlying Relation storage has never supported.
//
// Budgets: a ResourceBudget in SessionOptions (or per-call ExecOptions)
// governs a miss's optimization AND every execution; a hit skips the
// enumeration spend but still threads the budget into execution, so a
// cached plan cannot dodge row caps or deadlines.
#ifndef GSOPT_CORE_SESSION_H_
#define GSOPT_CORE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/execute.h"
#include "base/budget.h"
#include "base/status.h"
#include "core/optimizer.h"
#include "core/plan_cache.h"
#include "relational/catalog.h"
#include "relational/relation.h"

namespace gsopt {

struct SessionOptions : ExecPolicyBuilder<SessionOptions> {
  // Optimizer knobs for cache misses. The signature (mode, prune,
  // simplify, max_plans) is folded into every cache key, so two sessions
  // sharing a cache but differing in knobs never serve each other's plans.
  OptimizeOptions optimize;
  // Default execution policy applied to every call; per-call ExecOptions
  // override via MergeExecPolicy (pointers when non-null, mode enums when
  // not kAuto). The With* execution setters come from the shared
  // ExecPolicyBuilder mixin (algebra/execute.h), so SessionOptions and
  // ExecuteOptions no longer each re-declare the chain.
  ExecPolicy exec;

  ExecPolicy& policy() { return exec; }
  const ExecPolicy& policy() const { return exec; }
  // Disabling the plan cache also disables the statement-text memo:
  // every call re-parses and re-optimizes (the "cold" serving mode
  // benchmarks compare against).
  bool use_plan_cache = true;
  size_t plan_cache_capacity = 256;
  size_t plan_cache_shards = 8;
  // Distinct SQL texts memoized past the parser (reset wholesale when
  // full; texts are many-to-one onto plan-cache entries because literals
  // differ where fingerprints do not).
  size_t text_cache_capacity = 1024;
  // Bounded retry for TRANSIENT execution failures (Status::IsTransient(),
  // i.e. kUnavailable: short spill I/O, dispatch faults). Each retry
  // re-executes the already-acquired plan template -- no re-parse or plan
  // search -- after an exponential backoff starting at retry_backoff.
  // Persistent failures (kResourceExhausted caps, real ENOSPC) are never
  // retried: an identical attempt cannot succeed.
  int max_transient_retries = 2;
  std::chrono::microseconds retry_backoff{500};

  SessionOptions& WithMode(EnumMode m) { optimize.mode = m; return *this; }
  SessionOptions& WithPrune(bool b) { optimize.prune = b; return *this; }
  SessionOptions& WithSimplify(bool b) { optimize.simplify = b; return *this; }
  SessionOptions& WithMaxPlans(size_t n) { optimize.max_plans = n; return *this; }
  SessionOptions& WithFallback(bool b) { optimize.fallback = b; return *this; }
  // One budget for both halves: miss-path optimization and execution
  // (shadows the mixin setter, which only knows the execution half).
  SessionOptions& WithBudget(ResourceBudget* b) {
    optimize.budget = b;
    exec.budget = b;
    return *this;
  }
  SessionOptions& WithRetries(int n) { max_transient_retries = n; return *this; }
  SessionOptions& WithRetryBackoff(std::chrono::microseconds b) {
    retry_backoff = b;
    return *this;
  }
  SessionOptions& WithPlanCache(bool enabled) { use_plan_cache = enabled; return *this; }
  SessionOptions& WithPlanCacheCapacity(size_t n) { plan_cache_capacity = n; return *this; }
  SessionOptions& WithPlanCacheShards(size_t n) { plan_cache_shards = n; return *this; }
  SessionOptions& WithTextCacheCapacity(size_t n) { text_cache_capacity = n; return *this; }
};

// Everything one serving call produced: the rows, the runtime stats, the
// (instantiated) plan that computed them, and the dispositions a serving
// layer needs to report -- where the plan came from (cache hit vs fresh
// optimize), how resource pressure degraded it, and how many transient
// retries the execution burned. One value, no side channels: the server's
// wire frames, the shell's \analyze, and the bench drivers all read their
// fields off this struct instead of threading stats pointers and
// degradation plumbing through ExecOptions.
struct QueryResult {
  Relation rows;
  NodePtr plan;            // executed plan, parameters substituted
  double plan_cost = 0.0;  // cost-model estimate of the template
  // This call reused an existing template (a plan-cache hit, or a
  // prepared statement re-executing) instead of running the plan search.
  bool cache_hit = false;
  // On a hit these describe the cached entry's ORIGINAL optimization
  // (what the cache saved this call), plus this call's cache traffic.
  DegradationReport degradation;
  OptimizerCounters counters;
  // Transient-failure retries the execution needed before succeeding
  // (0 on a clean first attempt; see SessionOptions::max_transient_retries).
  int transient_retries = 0;
  // Per-operator runtime stats for the executed plan; non-null iff the
  // merged policy had collect_stats set. A caller that instead passes its
  // own ExecOptions::stats root keeps the legacy side channel and this
  // stays null. shared_ptr because OperatorStats owns its children;
  // copying a QueryResult shares the tree.
  std::shared_ptr<exec::OperatorStats> stats;

  // Pre-redesign spelling (`result->relation` was a field); kept as a thin
  // accessor so old call sites need only add parentheses.
  const Relation& relation() const { return rows; }
  Relation& relation() { return rows; }
};

// Pre-redesign name for QueryResult.
using SessionResult = QueryResult;

class Session;

// A parsed, parameterized, optimized query template. Cheap to copy
// (shared_ptr internals). Obtained from Session::Prepare; executing
// substitutes the bound values into the cached plan template -- no
// parsing or plan search on the hot path. Not thread-safe itself (Bind
// mutates); share the Session, not the statement.
class PreparedStatement {
 public:
  // Number of explicit $n parameters the statement expects.
  int num_params() const { return pq_.num_explicit; }
  // Whether Prepare found the template in the plan cache.
  bool cache_hit() const { return cache_hit_; }
  uint64_t fingerprint() const { return pq_.fingerprint; }
  // The optimized template (parameter slots intact).
  const NodePtr& plan_template() const { return plan_->plan; }
  double plan_cost() const { return plan_->cost; }
  const DegradationReport& degradation() const { return plan_->degradation; }
  // Search-work counters of the optimization that produced the template
  // (on a cache hit: the original producer's, i.e. the work this Prepare
  // skipped).
  const OptimizerCounters& counters() const { return plan_->counters; }

  // Replaces the bound values for slots $1..$n. Fluent:
  //   stmt.Bind({Value::Int(7)}).Execute()
  PreparedStatement& Bind(std::vector<Value> values) {
    bound_ = std::move(values);
    return *this;
  }

  // Executes with the values bound via Bind() (or none).
  StatusOr<QueryResult> Execute(const ExecOptions& exec = {});
  // Bind + Execute in one call; does not disturb values set via Bind().
  StatusOr<QueryResult> Execute(std::vector<Value> params,
                                  const ExecOptions& exec = {});

  // The fully substituted executable plan for the given explicit values
  // (for EXPLAIN-style inspection without executing). Fails with
  // kInvalidArgument on a parameter-count mismatch.
  StatusOr<NodePtr> ExecutablePlan(const std::vector<Value>& params) const;

 private:
  friend class Session;
  PreparedStatement() = default;

  Session* session_ = nullptr;
  ParameterizedQuery pq_;
  std::shared_ptr<const CachedPlan> plan_;
  uint64_t epoch_ = 0;  // stats epoch plan_ was acquired under
  bool cache_hit_ = false;
  std::vector<Value> bound_;
};

class Session {
 public:
  // The catalog is referenced, not copied; it must outlive the session.
  explicit Session(const Catalog& catalog, SessionOptions options = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Parse + bind + parameterize + optimize (through the cache). The
  // statement stays valid as long as the session; re-optimizes lazily if
  // catalog statistics move. kInvalidArgument on malformed SQL, unknown
  // tables/columns, or invalid options (max_plans == 0). `budget`, when
  // given, governs this call's miss-path optimization (overriding the
  // session default); a cache hit never spends it.
  StatusOr<PreparedStatement> Prepare(const std::string& sql,
                                      ResourceBudget* budget = nullptr);

  // One-shot convenience: Prepare + Execute with no parameters.
  // kInvalidArgument if the SQL contains $n parameters -- those need the
  // Prepare/Bind lifecycle.
  StatusOr<QueryResult> Query(const std::string& sql,
                                const ExecOptions& exec = {});

  // Tree-level entry for callers that already hold a bound algebra tree
  // (tools, fuzz oracles, tests). Same cache-backed pipeline as Query.
  StatusOr<QueryResult> Run(const NodePtr& tree,
                              const ExecOptions& exec = {});

  PlanCacheStats cache_stats() const { return cache_.Stats(); }
  void ClearPlanCache() {
    cache_.Clear();
    std::lock_guard<std::mutex> lock(text_mu_);
    text_cache_.clear();
  }
  const SessionOptions& options() const { return options_; }
  const Catalog& catalog() const { return catalog_; }
  // Stats epoch of the current optimizer (bumped when the catalog moves).
  uint64_t epoch() const;
  // The current optimizer snapshot (rebuilt when the catalog moves).
  // Mostly for introspection (cost model access in tools).
  std::shared_ptr<const QueryOptimizer> optimizer();

 private:
  friend class PreparedStatement;

  // Plan acquisition: cache lookup, else optimize (+ insert, unless the
  // caller defers). On success `hit`, `traffic` (this call's cache
  // counters) are filled. With defer_install, a freshly optimized miss is
  // NOT published to the cache -- the caller publishes via PublishPlan
  // after the template proves itself (first execution succeeds), so a
  // failing miss can never poison the cache for later callers.
  StatusOr<std::shared_ptr<const CachedPlan>> AcquirePlan(
      const ParameterizedQuery& pq, ResourceBudget* budget, uint64_t* epoch,
      bool* hit, OptimizerCounters* traffic, bool defer_install = false);

  // Publishes a deferred miss (no-op when the cache is disabled); returns
  // evictions caused.
  uint64_t PublishPlan(const std::shared_ptr<const CachedPlan>& plan,
                       uint64_t epoch);

  // SQL front end: the statement-text memo, else parse + bind +
  // parameterize (and memoize). Entries are dropped when the catalog
  // version moves, since binding resolves names against the catalog.
  StatusOr<ParameterizedQuery> ParameterizedFor(const std::string& sql);

  // Shared tail of Query / Run: acquire through the cache, substitute the
  // lifted literals, execute. Rejects unbound $n parameters.
  StatusOr<QueryResult> ServeParameterized(const ParameterizedQuery& pq,
                                             const ExecOptions& exec);

  // Shared tail of Run / PreparedStatement::Execute: substitute `values`
  // into the template and execute under merged options.
  StatusOr<QueryResult> ExecuteTemplate(
      const std::shared_ptr<const CachedPlan>& plan,
      const std::vector<Value>& values, bool hit,
      const OptimizerCounters& traffic, const ExecOptions& exec);

  // Rebuilds the optimizer if the catalog version moved; returns the
  // current snapshot and (via out-param) the stats epoch.
  std::shared_ptr<const QueryOptimizer> RefreshOptimizer(uint64_t* epoch);

  // Per-call ExecOptions override session defaults field-by-field.
  ExecOptions MergedExec(const ExecOptions& exec) const;

  // Cache key: canonical tree serialization + options signature.
  std::string KeyCanonical(const std::string& tree_canonical) const;

  const Catalog& catalog_;
  SessionOptions options_;
  PlanCache cache_;

  mutable std::mutex mu_;  // guards optimizer_ / seen_version_ / epoch_
  std::shared_ptr<const QueryOptimizer> optimizer_;
  uint64_t seen_version_ = 0;
  uint64_t epoch_ = 0;

  struct TextEntry {
    ParameterizedQuery pq;
    uint64_t version = 0;  // catalog version the text was bound against
  };
  mutable std::mutex text_mu_;  // guards text_cache_
  std::unordered_map<std::string, TextEntry> text_cache_;
};

}  // namespace gsopt

#endif  // GSOPT_CORE_SESSION_H_
