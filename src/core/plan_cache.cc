#include "core/plan_cache.h"

#include <functional>
#include <utility>

#include "base/check.h"
#include "relational/expr.h"

namespace gsopt {

namespace {

// Maps `fn` over every scalar in the tree in the deterministic order the
// ParameterizedQuery contract promises (a node's own scalars before its
// left subtree before its right subtree; within a node, predicate atoms
// left-to-right with lhs before rhs, then aggregate inputs). Unchanged
// subtrees are shared, not copied, so substituting into a cached plan
// template costs only the spine that actually holds parameters.
using ScalarFn = std::function<ScalarPtr(const ScalarPtr&)>;

ScalarPtr RewriteScalar(const ScalarPtr& s, const ScalarFn& fn,
                        bool* changed) {
  if (s == nullptr) return s;
  if (s->kind() == Scalar::Kind::kArith) {
    bool c = false;
    ScalarPtr l = RewriteScalar(s->lhs(), fn, &c);
    ScalarPtr r = RewriteScalar(s->rhs(), fn, &c);
    if (!c) return s;
    *changed = true;
    return Scalar::Arith(s->arith_op(), std::move(l), std::move(r));
  }
  ScalarPtr out = fn(s);
  if (out != s) *changed = true;
  return out;
}

Predicate RewritePredicate(const Predicate& p, const ScalarFn& fn,
                           bool* changed) {
  bool c = false;
  std::vector<Atom> atoms = p.atoms();
  for (Atom& a : atoms) {
    a.lhs = RewriteScalar(a.lhs, fn, &c);
    a.rhs = RewriteScalar(a.rhs, fn, &c);
  }
  if (!c) return p;
  *changed = true;
  return Predicate(std::move(atoms));
}

exec::GroupBySpec RewriteGroupBy(const exec::GroupBySpec& spec,
                                 const ScalarFn& fn, bool* changed) {
  bool c = false;
  exec::GroupBySpec out = spec;
  for (exec::AggSpec& a : out.aggs) {
    a.input = RewriteScalar(a.input, fn, &c);
  }
  if (!c) return spec;
  *changed = true;
  return out;
}

NodePtr RewriteNode(const NodePtr& n, const ScalarFn& fn) {
  if (n == nullptr) return n;
  bool changed = false;
  // Own scalars first (traversal-order contract), then children.
  Predicate pred = RewritePredicate(n->pred(), fn, &changed);
  exec::GroupBySpec spec = n->kind() == OpKind::kGroupBy
                               ? RewriteGroupBy(n->groupby(), fn, &changed)
                               : exec::GroupBySpec{};
  NodePtr left = RewriteNode(n->left(), fn);
  NodePtr right = RewriteNode(n->right(), fn);
  if (!changed && left == n->left() && right == n->right()) return n;
  switch (n->kind()) {
    case OpKind::kLeaf:
      return n;
    case OpKind::kSelect:
      return Node::Select(std::move(left), std::move(pred));
    case OpKind::kProject:
      return n->projection_out() != n->projection()
                 ? Node::ProjectAs(std::move(left), n->projection(),
                                   n->projection_out())
                 : Node::Project(std::move(left), n->projection());
    case OpKind::kGeneralizedSelection:
      return Node::GeneralizedSelection(std::move(left), std::move(pred),
                                        n->groups());
    case OpKind::kMgoj:
      return Node::Mgoj(std::move(left), std::move(right), std::move(pred),
                        n->groups());
    case OpKind::kGroupBy:
      return Node::GroupBy(std::move(left), std::move(spec));
    case OpKind::kSort:
      return Node::Sort(std::move(left), n->sort_spec());
    case OpKind::kInnerJoin:
    case OpKind::kLeftOuterJoin:
    case OpKind::kRightOuterJoin:
    case OpKind::kFullOuterJoin:
    case OpKind::kAntiJoin:
    case OpKind::kSemiJoin: {
      NodePtr out = Node::Binary(n->kind(), std::move(left), std::move(right),
                                 std::move(pred));
      // Cached plan templates are post-optimization trees: the physical
      // merge hint must survive parameter substitution, or a cache hit
      // would silently fall back to hash order (breaking any enforcer the
      // order-aware pass removed on the hint's strength).
      return n->merge_join() ? Node::WithMergeJoin(out) : out;
    }
  }
  GSOPT_CHECK(false);  // exhaustive switch
  return n;
}

// Highest explicit parameter slot in the tree, as 1 + slot (0 if none).
void MaxExplicitSlot(const ScalarPtr& s, int* num) {
  if (s == nullptr) return;
  if (s->kind() == Scalar::Kind::kParam && s->param_slot() + 1 > *num) {
    *num = s->param_slot() + 1;
  }
  MaxExplicitSlot(s->lhs(), num);
  MaxExplicitSlot(s->rhs(), num);
}

}  // namespace

ParameterizedQuery ParameterizeQuery(const NodePtr& tree) {
  ParameterizedQuery q;
  int num_explicit = 0;
  RewriteNode(tree, [&num_explicit](const ScalarPtr& s) {
    MaxExplicitSlot(s, &num_explicit);
    return s;
  });
  q.num_explicit = num_explicit;
  q.tree = RewriteNode(tree, [&q, num_explicit](const ScalarPtr& s) {
    if (s->kind() != Scalar::Kind::kConst) return s;
    int slot = num_explicit + static_cast<int>(q.lifted.size());
    q.lifted.push_back(s->constant());
    return Scalar::Param(slot);
  });
  q.total_slots = num_explicit + static_cast<int>(q.lifted.size());
  q.canonical = q.tree ? q.tree->ToString() : "";
  q.fingerprint = Fnv1a64(q.canonical);
  return q;
}

StatusOr<NodePtr> SubstituteParams(const NodePtr& tree,
                                   const std::vector<Value>& values) {
  Status bad = Status::OK();
  NodePtr out = RewriteNode(tree, [&values, &bad](const ScalarPtr& s) {
    if (s->kind() != Scalar::Kind::kParam) return s;
    size_t slot = static_cast<size_t>(s->param_slot());
    if (slot >= values.size()) {
      if (bad.ok()) {
        bad = Status::InvalidArgument(
            "unbound parameter $" + std::to_string(slot + 1) + " (" +
            std::to_string(values.size()) + " value(s) bound)");
      }
      return s;
    }
    return Scalar::Const(values[slot]);
  });
  if (!bad.ok()) return bad;
  return out;
}

std::string PlanCacheStats::ToString() const {
  return "entries=" + std::to_string(entries) +
         " hits=" + std::to_string(hits) +
         " misses=" + std::to_string(misses) +
         " inserts=" + std::to_string(inserts) +
         " evictions=" + std::to_string(evictions) +
         " invalidations=" + std::to_string(invalidations);
}

PlanCache::PlanCache(size_t capacity, size_t num_shards) {
  size_t shards = 1;
  while (shards * 2 <= num_shards) shards *= 2;
  // Never shard below one entry per shard; a tiny cache degrades to fewer
  // shards rather than to zero capacity.
  while (shards > 1 && capacity / shards == 0) shards /= 2;
  per_shard_capacity_ = capacity < shards ? 1 : capacity / shards;
  shards_ = std::vector<Shard>(shards);
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    uint64_t fingerprint, const std::string& canonical, uint64_t epoch,
    bool* invalidated) {
  if (invalidated != nullptr) *invalidated = false;
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fingerprint);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  if (it->second->epoch != epoch) {
    // Statistics moved under this entry: drop it lazily.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.invalidations;
    ++shard.misses;
    if (invalidated != nullptr) *invalidated = true;
    return nullptr;
  }
  if (it->second->plan->canonical != canonical) {
    // FNV collision: treat as a miss, keep the resident entry.
    ++shard.misses;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->plan;
}

size_t PlanCache::Insert(uint64_t fingerprint, uint64_t epoch,
                         std::shared_ptr<const CachedPlan> plan) {
  GSOPT_CHECK(plan != nullptr);
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fingerprint);
  if (it != shard.index.end()) {
    it->second->epoch = epoch;
    it->second->plan = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.inserts;
    return 0;
  }
  shard.lru.push_front(Entry{fingerprint, epoch, std::move(plan)});
  shard.index.emplace(fingerprint, shard.lru.begin());
  ++shard.inserts;
  size_t evicted = 0;
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().fingerprint);
    shard.lru.pop_back();
    ++shard.evictions;
    ++evicted;
  }
  return evicted;
}

PlanCacheStats PlanCache::Stats() const {
  PlanCacheStats s;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.evictions += shard.evictions;
    s.invalidations += shard.invalidations;
    s.inserts += shard.inserts;
    s.entries += shard.lru.size();
  }
  return s;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

}  // namespace gsopt
