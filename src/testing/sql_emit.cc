#include "testing/sql_emit.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "exec/aggregate.h"

namespace gsopt::testing {

namespace {

// Keywords the lexer uppercases; identifiers colliding with them (in any
// case) must not be emitted as aliases.
bool IsSqlKeyword(const std::string& s) {
  static const std::set<std::string>* kw = new std::set<std::string>{
      "SELECT", "FROM",  "WHERE", "GROUP", "BY",    "HAVING", "AS",
      "JOIN",   "LEFT",  "RIGHT", "FULL",  "INNER", "OUTER",  "ON",
      "AND",    "COUNT", "SUM",   "MIN",   "MAX",   "AVG",    "DISTINCT",
      "IS",     "NOT",   "NULL",  "ORDER", "ASC",   "DESC",
  };
  std::string up = s;
  for (char& c : up) c = static_cast<char>(std::toupper(c));
  return kw->count(up) > 0;
}

bool IsCleanIdent(const std::string& s) {
  if (s.empty() || IsSqlKeyword(s)) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

// How one visible column of a rendered subexpression is referred to in the
// emitted SQL, keyed by the attribute it is in the algebra tree.
struct Rendered {
  std::string sql;       // table-ref text usable after FROM / as join operand
  bool is_join = false;  // bare join expression; parenthesize as an operand
  std::vector<std::pair<Attribute, std::string>> cols;
};

StatusOr<std::string> RenderValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return Status::Unimplemented("NULL literal is not expressible in SQL");
    case ValueType::kInt: {
      int64_t i = v.AsInt();
      // The lexer routes numbers through double, so magnitudes beyond 2^53
      // would silently lose precision on the way back in.
      if (i > (int64_t{1} << 53) || i < -(int64_t{1} << 53)) {
        return Status::Unimplemented("integer literal exceeds 2^53");
      }
      if (i < 0) return "(0 - " + std::to_string(-i) + ")";
      return std::to_string(i);
    }
    case ValueType::kDouble: {
      double d = v.AsDouble();
      if (!std::isfinite(d)) {
        return Status::Unimplemented("non-finite literal");
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", std::fabs(d));
      std::string s(buf);
      // The lexer's number grammar is digits[.digits]; no exponents.
      if (s.find_first_of("eE") != std::string::npos) {
        return Status::Unimplemented("double literal needs an exponent");
      }
      if (s.find('.') == std::string::npos) s += ".0";
      if (d < 0) return "(0 - " + s + ")";
      return s;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      if (s.find('\'') != std::string::npos) {
        return Status::Unimplemented("string literal containing a quote");
      }
      return "'" + s + "'";
    }
  }
  return Status::Internal("unhandled value type");
}

std::string CmpText(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "<>";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "=";
}

std::string ArithText(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "+";
}

std::string AggText(exec::AggFunc f) {
  switch (f) {
    case exec::AggFunc::kCountStar:
    case exec::AggFunc::kCount: return "COUNT";
    case exec::AggFunc::kSum: return "SUM";
    case exec::AggFunc::kMin: return "MIN";
    case exec::AggFunc::kMax: return "MAX";
    case exec::AggFunc::kAvg: return "AVG";
    case exec::AggFunc::kCountPresence:
    case exec::AggFunc::kGroupFlag: return "";
  }
  return "";
}

class Emitter {
 public:
  explicit Emitter(const Catalog& catalog) : catalog_(catalog) {}

  StatusOr<Rendered> Render(const NodePtr& n);

 private:
  StatusOr<std::string> Lookup(const Rendered& scope, const std::string& rel,
                               const std::string& name) const {
    for (const auto& [attr, text] : scope.cols) {
      if (attr.rel == rel && attr.name == name) return text;
    }
    return Status::NotFound("column " + rel + "." + name +
                            " is not visible at this point in the tree");
  }

  StatusOr<std::string> RenderScalar(const ScalarPtr& s,
                                     const Rendered& scope) const {
    switch (s->kind()) {
      case Scalar::Kind::kColumn:
        return Lookup(scope, s->rel(), s->name());
      case Scalar::Kind::kConst:
        return RenderValue(s->constant());
      case Scalar::Kind::kArith: {
        GSOPT_ASSIGN_OR_RETURN(std::string l, RenderScalar(s->lhs(), scope));
        GSOPT_ASSIGN_OR_RETURN(std::string r, RenderScalar(s->rhs(), scope));
        return "(" + l + " " + ArithText(s->arith_op()) + " " + r + ")";
      }
      case Scalar::Kind::kParam:
        return "$" + std::to_string(s->param_slot() + 1);
    }
    return Status::Internal("unhandled scalar kind");
  }

  StatusOr<std::string> RenderPredicate(const Predicate& p,
                                        const Rendered& scope) const {
    if (p.IsTrue()) return std::string("1 = 1");
    std::string out;
    for (const Atom& a : p.atoms()) {
      if (!out.empty()) out += " AND ";
      GSOPT_ASSIGN_OR_RETURN(std::string lhs, RenderScalar(a.lhs, scope));
      switch (a.kind) {
        case Atom::Kind::kCompare: {
          GSOPT_ASSIGN_OR_RETURN(std::string rhs, RenderScalar(a.rhs, scope));
          out += lhs + " " + CmpText(a.op) + " " + rhs;
          break;
        }
        case Atom::Kind::kIsNull:
          out += lhs + " IS NULL";
          break;
        case Atom::Kind::kIsNotNull:
          out += lhs + " IS NOT NULL";
          break;
      }
    }
    return out;
  }

  std::string FreshAlias(const std::string& stem) {
    return stem + std::to_string(next_alias_++);
  }

  StatusOr<Rendered> RenderGroupBy(const NodePtr& n);
  StatusOr<Rendered> RenderProject(const NodePtr& n);

  const Catalog& catalog_;
  int next_alias_ = 0;
};

StatusOr<Rendered> Emitter::RenderGroupBy(const NodePtr& n) {
  GSOPT_ASSIGN_OR_RETURN(Rendered child, Render(n->left()));
  const exec::GroupBySpec& spec = n->groupby();
  if (!spec.group_vid_rels.empty() || !spec.synthetic_vid) {
    return Status::Unimplemented(
        "normalizer-internal GROUP BY (virtual group keys) has no SQL form");
  }

  // The subquery alias: the aggregates' output qualifier when usable (the
  // binder then reproduces the exact output attributes), else fresh.
  std::string alias;
  for (const exec::AggSpec& agg : spec.aggs) {
    if (alias.empty() && IsCleanIdent(agg.out_rel)) alias = agg.out_rel;
  }
  if (alias.empty()) alias = FreshAlias("dv");

  Rendered out;
  std::string items, group_clause;
  std::vector<std::string> group_refs;
  for (size_t i = 0; i < spec.group_cols.size(); ++i) {
    const Attribute& g = spec.group_cols[i];
    GSOPT_ASSIGN_OR_RETURN(std::string ref, Lookup(child, g.rel, g.name));
    std::string gname = "g" + std::to_string(i);
    if (!items.empty()) items += ", ";
    items += ref + " AS " + gname;
    if (!group_clause.empty()) group_clause += ", ";
    group_clause += ref;
    out.cols.push_back({g, alias + "." + gname});
  }
  std::set<std::string> used_names;
  for (size_t j = 0; j < spec.aggs.size(); ++j) {
    const exec::AggSpec& agg = spec.aggs[j];
    if (agg.func == exec::AggFunc::kCountPresence) {
      return Status::Unimplemented("COUNT_PRESENT has no SQL form");
    }
    std::string arg = "*";
    if (agg.input != nullptr) {
      GSOPT_ASSIGN_OR_RETURN(arg, RenderScalar(agg.input, child));
    } else if (agg.func != exec::AggFunc::kCountStar) {
      return Status::Unimplemented("aggregate without an input expression");
    }
    std::string name = IsCleanIdent(agg.out_name) ? agg.out_name
                                                  : "agg" + std::to_string(j);
    while (!used_names.insert(name).second) name += "_" + std::to_string(j);
    if (!items.empty()) items += ", ";
    items += AggText(agg.func) + "(" +
             (agg.distinct ? std::string("DISTINCT ") : std::string()) + arg +
             ") AS " + name;
    out.cols.push_back({Attribute{agg.out_rel, agg.out_name},
                        alias + "." + name});
  }
  if (items.empty()) {
    return Status::Unimplemented("GROUP BY with no outputs has no SQL form");
  }
  out.sql = "(SELECT " + items + " FROM " + child.sql;
  if (!group_clause.empty()) out.sql += " GROUP BY " + group_clause;
  out.sql += ") AS " + alias;
  return out;
}

StatusOr<Rendered> Emitter::RenderProject(const NodePtr& n) {
  GSOPT_ASSIGN_OR_RETURN(Rendered child, Render(n->left()));
  const std::vector<Attribute>& src = n->projection();
  const std::vector<Attribute>& dst = n->projection_out();
  std::string alias = FreshAlias("p");
  Rendered out;
  std::string items;
  for (size_t i = 0; i < src.size(); ++i) {
    GSOPT_ASSIGN_OR_RETURN(std::string ref,
                           Lookup(child, src[i].rel, src[i].name));
    std::string name = IsCleanIdent(dst[i].name) ? dst[i].name
                                                 : "c" + std::to_string(i);
    if (!items.empty()) items += ", ";
    items += ref + " AS " + name;
    out.cols.push_back({dst[i], alias + "." + name});
  }
  if (items.empty()) {
    return Status::Unimplemented("empty projection has no SQL form");
  }
  out.sql = "(SELECT " + items + " FROM " + child.sql + ") AS " + alias;
  return out;
}

StatusOr<Rendered> Emitter::Render(const NodePtr& n) {
  switch (n->kind()) {
    case OpKind::kLeaf: {
      const Relation* rel = catalog_.Find(n->table());
      if (rel == nullptr) return Status::NotFound("no table " + n->table());
      if (!IsCleanIdent(n->table())) {
        return Status::Unimplemented("table name is not a SQL identifier: " +
                                     n->table());
      }
      Rendered out;
      out.sql = n->table();
      for (const Attribute& a : rel->schema().attrs()) {
        if (!IsCleanIdent(a.name)) {
          return Status::Unimplemented("column name is not a SQL identifier: " +
                                       a.Qualified());
        }
        out.cols.push_back({a, a.Qualified()});
      }
      return out;
    }
    case OpKind::kSelect: {
      GSOPT_ASSIGN_OR_RETURN(Rendered child, Render(n->left()));
      GSOPT_ASSIGN_OR_RETURN(std::string pred,
                             RenderPredicate(n->pred(), child));
      Rendered out;
      out.sql = "(SELECT * FROM " + child.sql + " WHERE " + pred + ") AS " +
                FreshAlias("s");
      out.cols = std::move(child.cols);
      return out;
    }
    case OpKind::kProject:
      return RenderProject(n);
    case OpKind::kGroupBy:
      return RenderGroupBy(n);
    case OpKind::kInnerJoin:
    case OpKind::kLeftOuterJoin:
    case OpKind::kRightOuterJoin:
    case OpKind::kFullOuterJoin: {
      GSOPT_ASSIGN_OR_RETURN(Rendered l, Render(n->left()));
      GSOPT_ASSIGN_OR_RETURN(Rendered r, Render(n->right()));
      Rendered out;
      out.cols = l.cols;
      out.cols.insert(out.cols.end(), r.cols.begin(), r.cols.end());
      GSOPT_ASSIGN_OR_RETURN(std::string pred,
                             RenderPredicate(n->pred(), out));
      std::string op;
      switch (n->kind()) {
        case OpKind::kInnerJoin: op = " JOIN "; break;
        case OpKind::kLeftOuterJoin: op = " LEFT OUTER JOIN "; break;
        case OpKind::kRightOuterJoin: op = " RIGHT OUTER JOIN "; break;
        default: op = " FULL OUTER JOIN "; break;
      }
      out.sql = (l.is_join ? "(" + l.sql + ")" : l.sql) + op +
                (r.is_join ? "(" + r.sql + ")" : r.sql) + " ON " + pred;
      out.is_join = true;
      return out;
    }
    case OpKind::kAntiJoin:
    case OpKind::kSemiJoin:
    case OpKind::kGeneralizedSelection:
    case OpKind::kMgoj:
      return Status::Unimplemented(OpKindName(n->kind()) +
                                   " is not in the SQL surface");
    case OpKind::kSort:
      // ORDER BY only has defined semantics at the outermost SELECT (and
      // EmitSql peels a root sort off before rendering); a sort buried in
      // a subquery would be silently meaningless SQL.
      return Status::Unimplemented("mid-tree SORT is not in the SQL surface");
  }
  return Status::Internal("unhandled node kind");
}

}  // namespace

StatusOr<EmittedQuery> EmitSql(const NodePtr& tree, const Catalog& catalog) {
  GSOPT_CHECK(tree != nullptr);
  Emitter emitter(catalog);

  // A kProject root supplies the select list directly; any other root
  // exposes every visible column. Either way the text aliases output i as
  // `oi`, which the binder projects to {q, oi} at top level, and
  // `reference` applies the identical rename to the input tree. A root
  // kSort (optionally under the projection -- the binder's ORDER BY shape)
  // is peeled off here and re-rendered as the outermost ORDER BY clause.
  NodePtr proj = tree->kind() == OpKind::kProject ? tree : nullptr;
  NodePtr below = proj != nullptr ? proj->left() : tree;
  NodePtr sort = below->kind() == OpKind::kSort ? below : nullptr;
  NodePtr body = sort != nullptr ? sort->left() : below;
  GSOPT_ASSIGN_OR_RETURN(Rendered r, emitter.Render(body));

  std::vector<std::pair<Attribute, std::string>> selected;
  if (proj != nullptr) {
    const std::vector<Attribute>& src = proj->projection();
    const std::vector<Attribute>& dst = proj->projection_out();
    for (size_t i = 0; i < src.size(); ++i) {
      std::string text;
      for (const auto& [attr, t] : r.cols) {
        if (attr == src[i]) { text = t; break; }
      }
      if (text.empty()) {
        return Status::NotFound("projected column not visible: " +
                                src[i].Qualified());
      }
      selected.push_back({dst[i], text});
    }
  } else {
    for (const auto& [attr, text] : r.cols) {
      bool seen = false;
      for (const auto& [prev, unused] : selected) {
        if (prev == attr) { seen = true; break; }
      }
      if (!seen) selected.push_back({attr, text});
    }
  }
  if (selected.empty()) {
    return Status::Unimplemented("query with no output columns");
  }

  std::string items;
  std::vector<Attribute> src_attrs, out_attrs;
  for (size_t i = 0; i < selected.size(); ++i) {
    if (!items.empty()) items += ", ";
    items += selected[i].second + " AS o" + std::to_string(i);
    src_attrs.push_back(selected[i].first);
    out_attrs.push_back(Attribute{"q", "o" + std::to_string(i)});
  }

  EmittedQuery out;
  out.sql = "SELECT " + items + " FROM " + r.sql;
  if (sort != nullptr) {
    std::string clause;
    for (const exec::SortKey& k : sort->sort_spec()) {
      std::string text;
      for (const auto& [attr, t] : r.cols) {
        if (attr == k.attr) {
          text = t;
          break;
        }
      }
      if (text.empty()) {
        return Status::NotFound("sort key not visible: " + k.attr.Qualified());
      }
      if (!clause.empty()) clause += ", ";
      clause += text + (k.desc ? " DESC" : " ASC");
    }
    out.sql += " ORDER BY " + clause;
    out.has_order_by = true;
  }
  out.reference = Node::ProjectAs(tree, std::move(src_attrs),
                                  std::move(out_attrs));
  return out;
}

}  // namespace gsopt::testing
