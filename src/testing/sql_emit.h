// SQL-text emitter: renders a logical algebra tree back into the SQL
// subset understood by sql/lexer+parser+binder, so every generated query
// can round-trip through the whole front end. GROUP BY nodes become aliased
// view subqueries (the binder re-merges them), selections become
// `(SELECT * FROM ... WHERE p) AS sK` wrappers (the binder's star path
// preserves the underlying qualifiers), joins render structurally. The
// emitted text's top-level SELECT aliases every output column o0..oN under
// the binder's top-level qualifier `q`; `reference` wraps the input tree in
// the matching ProjectAs so EmitSql(t).reference and the re-bound SQL have
// identical visible schemas and can be compared with Relation::BagEquals.
#ifndef GSOPT_TESTING_SQL_EMIT_H_
#define GSOPT_TESTING_SQL_EMIT_H_

#include <string>

#include "algebra/node.h"
#include "base/status.h"
#include "relational/catalog.h"

namespace gsopt::testing {

struct EmittedQuery {
  std::string sql;
  // The input tree re-projected to the SQL text's output columns
  // ({q.o0, q.o1, ...}), for bag-equality against the re-bound tree.
  NodePtr reference;
  // The text carries a top-level ORDER BY (the tree root was kSort, under
  // at most one projection), so the round-trip comparison may additionally
  // check output ORDER, not just bag equality.
  bool has_order_by = false;
};

// Fails with kUnimplemented for trees outside the SQL surface (GS / MGOJ /
// anti / semi operators, COUNT_PRESENT aggregates, NULL or non-finite
// literals) and kNotFound for leaves missing from the catalog.
StatusOr<EmittedQuery> EmitSql(const NodePtr& tree, const Catalog& catalog);

}  // namespace gsopt::testing

#endif  // GSOPT_TESTING_SQL_EMIT_H_
