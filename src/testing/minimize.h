// Delta-debugging minimizer: given a query + catalog on which an oracle
// failed, greedily shrinks the failure to a minimal reproducer --
//  * tree reductions: drop base relations (rebuilding predicates, GROUP BY
//    specs and projections to only reference what remains) and strip
//    wrapper operators;
//  * predicate reductions: drop conjuncts one at a time;
//  * data reductions: ddmin-style row removal per base table, halving
//    chunk sizes down to single rows.
// A candidate counts as reproducing only if the SAME oracle kind fails on
// it (probed with fixed RNG seeds, so minimization is deterministic).
#ifndef GSOPT_TESTING_MINIMIZE_H_
#define GSOPT_TESTING_MINIMIZE_H_

#include "algebra/node.h"
#include "base/status.h"
#include "relational/catalog.h"
#include "testing/oracles.h"

namespace gsopt::testing {

struct MinimizeOptions {
  OracleOptions oracle;
  // Full reduction passes (each pass retries every reduction class).
  int max_rounds = 6;
};

struct MinimizedCase {
  NodePtr query;
  Catalog catalog;
  OracleFailure failure;  // as reproduced on the minimized case
  // False when the original failure did not reproduce under the probe
  // seeds (e.g. an RNG-position-dependent TLP pick); the original case is
  // returned unreduced so the artifact still captures it.
  bool reproduced = false;
  int reductions = 0;  // successful reduction steps across all classes
};

StatusOr<MinimizedCase> Minimize(const NodePtr& query, const Catalog& catalog,
                                 const OracleFailure& original,
                                 const MinimizeOptions& options);

}  // namespace gsopt::testing

#endif  // GSOPT_TESTING_MINIMIZE_H_
