#include "testing/artifact.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "relational/csv.h"
#include "sql/binder.h"
#include "testing/sql_emit.h"

namespace gsopt::testing {

namespace fs = std::filesystem;

namespace {

Status WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write " + path.string());
  out << content;
  out.close();
  if (!out) return Status::Internal("write failed for " + path.string());
  return Status::OK();
}

StatusOr<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Status WriteRepro(const std::string& dir, const NodePtr& query,
                  const Catalog& catalog, uint64_t seed,
                  const std::string& note) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create " + dir + ": " + ec.message());

  std::string sql_note;
  auto emitted = EmitSql(query, catalog);
  if (emitted.ok()) {
    GSOPT_RETURN_IF_ERROR(WriteFile(fs::path(dir) / "query.sql",
                                    emitted->sql + "\n"));
  } else {
    sql_note = "no SQL form: " + emitted.status().ToString();
    GSOPT_RETURN_IF_ERROR(WriteFile(fs::path(dir) / "query.algebra",
                                    query->ToString() + "\n"));
  }

  for (const std::string& table : catalog.TableNames()) {
    const Relation* rel = catalog.Find(table);
    GSOPT_CHECK(rel != nullptr);
    GSOPT_RETURN_IF_ERROR(
        WriteFile(fs::path(dir) / (table + ".csv"), ToCsv(*rel)));
  }

  std::ostringstream readme;
  readme << "seed: " << seed << "\n";
  readme << note << "\n";
  if (!sql_note.empty()) readme << sql_note << "\n";
  readme << "algebra: " << query->ToString() << "\n";
  return WriteFile(fs::path(dir) / "README.txt", readme.str());
}

StatusOr<LoadedRepro> LoadRepro(const std::string& dir) {
  fs::path root(dir);
  if (!fs::exists(root / "query.sql")) {
    if (fs::exists(root / "query.algebra")) {
      return Status::Unimplemented(dir + " has no SQL form (query.algebra "
                                         "only); cannot re-bind");
    }
    return Status::NotFound("no query.sql in " + dir);
  }
  LoadedRepro repro;
  GSOPT_ASSIGN_OR_RETURN(repro.sql, ReadFile(root / "query.sql"));
  // Strip trailing whitespace/newlines so the parser sees one statement.
  while (!repro.sql.empty() &&
         (repro.sql.back() == '\n' || repro.sql.back() == '\r' ||
          repro.sql.back() == ' ')) {
    repro.sql.pop_back();
  }

  std::vector<fs::path> csvs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.path().extension() == ".csv") csvs.push_back(entry.path());
  }
  if (ec) return Status::Internal("cannot list " + dir + ": " + ec.message());
  std::sort(csvs.begin(), csvs.end());
  for (const fs::path& csv : csvs) {
    GSOPT_RETURN_IF_ERROR(
        LoadCsvFile(csv.string(), csv.stem().string(), &repro.catalog));
  }

  GSOPT_ASSIGN_OR_RETURN(repro.query,
                         sql::ParseAndBind(repro.sql, repro.catalog));
  return repro;
}

StatusOr<std::vector<std::string>> ListReproDirs(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return out;  // empty corpus is fine
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_directory() && fs::exists(entry.path() / "query.sql")) {
      out.push_back(entry.path().string());
    }
  }
  if (ec) return Status::Internal("cannot list " + dir + ": " + ec.message());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gsopt::testing
