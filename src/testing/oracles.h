// Composable correctness oracles for the metamorphic fuzz harness. Each
// oracle compares some transformation of a query against its syntactic
// (as-written, serial) execution, which is the repo's ground truth:
//
//  * plan space   -- every enumerated association-tree plan bag-equals the
//                    syntactic result (the paper's Theorem 1 claim);
//  * executor     -- the morsel-parallel executor matches serial at every
//                    lane count;
//  * degradation  -- every fallback-ladder rung (generalized, baseline,
//                    binary-only, syntactic) still answers correctly;
//  * columnar     -- forcing the batch (columnar) kernel paths -- serial,
//                    parallel, spilling, faulted -- reproduces the
//                    tuple-at-a-time result;
//  * bloom        -- forcing the bloom-filter sideways-information-passing
//                    pass (BloomMode::kForce) on every hash-join path --
//                    serial, columnar, parallel, spilled, faulted --
//                    reproduces the filter-free result: a filter may only
//                    ever skip work, never change an answer;
//  * merge join   -- forcing every equi-join onto the sort-merge path and
//                    every aggregation onto sort-based grouping
//                    (JoinStrategy::kMergeOnly) -- serial, columnar,
//                    parallel, spilled, faulted -- reproduces the
//                    hash-path result (the baseline pins kHashOnly);
//  * order        -- for ORDER BY queries, the order-aware optimizer's
//                    output and the forced-merge execution both still
//                    satisfy the sort spec and bag-equal the baseline;
//  * TLP          -- partitioning any visible column c by `c <= k`,
//                    `c > k`, `c IS NULL` and unioning the three optimized
//                    partitions reproduces the unpartitioned result
//                    (ternary-logic partitioning: exactly one branch is
//                    TRUE per row under 3VL, so this stresses the
//                    null-padding semantics GS compensation depends on);
//  * round trip   -- emit SQL text, re-parse and re-bind it, and the bound
//                    tree bag-equals the original;
//  * plan cache   -- running the query through a Session (which lifts its
//                    literals to parameter slots, optimizes the
//                    parameterized template once and re-instantiates it
//                    from the sharded plan cache) matches literal
//                    re-optimization: two instantiations differing only in
//                    a constant must share a template (the second MUST be
//                    a cache hit) and each must bag-equal its own
//                    syntactic execution.
//
// Budget-exhausted plan executions are skipped (counted), not failed, so
// one pathological cross product cannot wedge a fuzz run.
#ifndef GSOPT_TESTING_ORACLES_H_
#define GSOPT_TESTING_ORACLES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "algebra/node.h"
#include "base/rng.h"
#include "base/status.h"
#include "relational/catalog.h"

namespace gsopt::testing {

enum class OracleKind {
  kPlanSpace,
  kExecutor,
  kDegradation,
  kTlp,
  kRoundTrip,
  kPlanCache,
  kColumnar,
  kBloom,
  kMergeJoin,
  kOrder,
  kChaos,
};

std::string OracleKindName(OracleKind k);

struct OracleOptions {
  bool run_plan_space = true;
  bool run_executor = true;
  bool run_degradation = true;
  bool run_tlp = true;
  bool run_round_trip = true;
  bool run_plan_cache = true;
  // Columnar-vs-tuple differential: re-executes the query with
  // BatchMode::kForce -- serial, morsel-parallel, memory-starved (the
  // batch kernels' spill degradation), and under seeded fault injection --
  // and holds every trial to the tuple-at-a-time baseline's bag (or, for
  // the faulted trials, to a clean typed failure). The baseline itself
  // pins BatchMode::kOff, so the two kernel families never silently
  // validate each other.
  bool run_columnar = true;
  // Bloom-on-vs-off differential: re-executes the query with
  // BloomMode::kForce on every hash-join execution path (serial
  // tuple-at-a-time, columnar, morsel-parallel, memory-starved/spilled,
  // and under seeded fault injection, where a failed filter allocation
  // must degrade to a filter-free join, never a wrong answer) and holds
  // every trial to the filter-free baseline's bag. The baseline itself
  // pins BloomMode::kOff, so a filter bug cannot validate itself.
  bool run_bloom = true;
  // Merge-vs-hash differential: re-executes the query with
  // JoinStrategy::kMergeOnly, forcing every equi-join onto the sort-merge
  // path (and every aggregation onto sort-based grouping) -- serial
  // tuple-at-a-time, columnar, morsel-parallel, memory-starved/spilled,
  // and under seeded fault injection -- and holds every trial to the
  // hash-path baseline's bag. The baseline itself pins
  // JoinStrategy::kHashOnly, so the two join families never silently
  // validate each other (identical NULL-key and key-class semantics are
  // exactly what this oracle exists to prove).
  bool run_merge = true;
  // Order-correctness oracle: for queries whose result carries an ORDER BY
  // (a root kSort, possibly under the final projection), re-runs the query
  // through the order-aware optimizer (interesting orders, merge-join
  // stamping, enforcer removal) and through forced-merge execution, and
  // asserts that each trial's output still satisfies the sort spec
  // (exec::CheckSorted) *and* bag-equals the baseline. This is the oracle
  // that catches an enforcer removed on the promise of an order nobody
  // actually delivered.
  bool run_order = true;
  // Chaos oracle (opt-in; see --chaos in tools/gsopt_fuzz): re-executes
  // the query under a starvation-level memory cap (forcing the spill
  // path), then under deterministic fault injection at every site, and
  // asserts the robustness contract -- every trial yields either a
  // bag-correct result or a clean typed Status (kResourceExhausted /
  // kUnavailable), never a crash, leaked temp file, leaked memory charge,
  // or a poisoned plan-cache template.
  bool run_chaos = false;

  // Chaos knobs: operator-state memory cap for the spill trials; fault
  // period (one probe in `period` fires); number of distinct-seed faulted
  // trials per query.
  uint64_t chaos_memory_bytes = 16 * 1024;
  uint64_t chaos_fault_period = 3;
  int chaos_trials = 4;

  // Plan-space cap per query (enumeration truncates, never fails).
  size_t max_plans = 64;
  // Per-execution row budget; exhausting it skips that candidate.
  uint64_t max_rows_per_exec = 500000;
  // Lane counts the executor oracle cross-checks against serial.
  std::vector<int> lane_counts = {2, 4};

  // Test-only fault injection: applied to every result produced through
  // the *checked* path (optimized plans, parallel runs, TLP partitions,
  // re-bound round trips) but never to the syntactic baseline. Lets the
  // harness's own failure -> minimize -> artifact path be exercised
  // deterministically without patching a kernel.
  std::function<void(Relation*)> mutate_checked_result;
};

// One oracle violation, with enough context to reproduce by hand.
struct OracleFailure {
  OracleKind kind = OracleKind::kPlanSpace;
  std::string detail;
};

struct OracleOutcome {
  // The whole case was abandoned: the syntactic baseline itself blew the
  // row budget (counted by the driver, never a failure).
  bool skipped = false;
  bool failed = false;
  OracleFailure failure;  // meaningful when `failed`

  // Work accounting for the driver's summary.
  size_t plans_checked = 0;
  size_t plans_skipped = 0;
  size_t oracles_run = 0;
  // Chaos-oracle accounting: trials executed, faults actually fired, and
  // trials that degraded to the out-of-core path.
  size_t chaos_trials = 0;
  size_t chaos_faults = 0;
  size_t chaos_spills = 0;

  std::string ToString() const;
};

// Runs every enabled oracle against `query` on `catalog`. `rng` drives the
// TLP oracle's column/pivot choice; determinism comes from the caller
// seeding it per case. Returns non-OK only for harness-level errors
// (oracle violations are reported in the outcome, not the status).
StatusOr<OracleOutcome> CheckQuery(const NodePtr& query,
                                   const Catalog& catalog,
                                   const OracleOptions& options, Rng* rng);

}  // namespace gsopt::testing

#endif  // GSOPT_TESTING_ORACLES_H_
