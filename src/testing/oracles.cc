#include "testing/oracles.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <utility>

#include "algebra/execute.h"
#include "base/budget.h"
#include "base/fault_injector.h"
#include "base/spill_file.h"
#include "core/optimizer.h"
#include "core/session.h"
#include "exec/executor.h"
#include "exec/sort.h"
#include "sql/binder.h"
#include "testing/sql_emit.h"

namespace gsopt::testing {

namespace {

std::string Truncate(std::string s, size_t cap = 400) {
  if (s.size() > cap) {
    s.resize(cap);
    s += "...";
  }
  return s;
}

// Canonical per-row keys over the visible extension only (columns in
// qualified-name order, virtual attributes ignored), so results from plans
// with different output column orders can be unioned and compared as
// multisets -- the same notion of equality as Relation::BagEquals.
std::vector<std::string> CanonicalRowKeys(const Relation& r) {
  std::vector<std::pair<std::string, int>> order;
  for (int i = 0; i < r.schema().size(); ++i) {
    order.push_back({r.schema().attr(i).Qualified(), i});
  }
  std::sort(order.begin(), order.end());
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(r.NumRows()));
  for (const Tuple& t : r.rows()) {
    std::string key;
    for (const auto& [name, idx] : order) {
      const Value& v = t.values[static_cast<size_t>(idx)];
      key += std::to_string(static_cast<int>(v.type()));
      key += ':';
      key += v.ToString();
      key += '|';
    }
    keys.push_back(std::move(key));
  }
  return keys;
}

// Locates a root ORDER BY contract -- a kSort at the root or directly
// under the final projection -- and maps its keys through the projection's
// rename so the spec resolves against the query's OUTPUT schema. Returns
// false when there is no root sort, or when the projection drops a sort
// key (the contract is then unverifiable from the outside).
bool RootSortContract(const NodePtr& q, exec::SortSpec* out) {
  if (q == nullptr) return false;
  const Node* proj = q->kind() == OpKind::kProject ? q.get() : nullptr;
  const NodePtr& below = proj != nullptr ? q->left() : q;
  if (below == nullptr || below->kind() != OpKind::kSort) return false;
  out->clear();
  for (const exec::SortKey& k : below->sort_spec()) {
    exec::SortKey mapped = k;
    if (proj != nullptr) {
      const auto& in = proj->projection();
      const auto& outs = proj->projection_out();
      bool found = false;
      for (size_t i = 0; i < in.size() && !found; ++i) {
        if (in[i] == k.attr) {
          mapped.attr = outs[i];
          found = true;
        }
      }
      if (!found) return false;
    }
    out->push_back(mapped);
  }
  return true;
}

bool AnySpilled(const exec::OperatorStats& s) {
  if (s.spilled) return true;
  for (const auto& c : s.children) {
    if (c != nullptr && AnySpilled(*c)) return true;
  }
  return false;
}

class OracleRunner {
 public:
  OracleRunner(const NodePtr& query, const Catalog& catalog,
               const OracleOptions& options, Rng* rng)
      : query_(query), catalog_(catalog), opt_(options), rng_(rng) {}

  StatusOr<OracleOutcome> Run();

 private:
  // Executes under a fresh row budget. kResourceExhausted surfaces to the
  // caller (which skips the candidate); other errors propagate. Batch mode
  // is pinned OFF: the reference tuple kernels are the ground truth every
  // oracle compares against, and the columnar oracle alone turns the batch
  // paths on (otherwise kAuto would let the two kernel families silently
  // validate each other on larger inputs). Bloom filtering is pinned OFF
  // for the same reason: the bloom oracle alone turns it on, against a
  // ground truth that never consulted a filter. The join strategy is
  // pinned to kHashOnly likewise: the merge oracle alone forces the
  // sort-merge paths, against a ground truth that never ran them.
  StatusOr<Relation> Exec(const NodePtr& n, exec::Executor* executor = nullptr) {
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    ExecuteOptions eo;
    eo.budget = &budget;
    eo.executor = executor;
    eo.batch = exec::BatchMode::kOff;
    eo.bloom = exec::BloomMode::kOff;
    eo.join = exec::JoinStrategy::kHashOnly;
    return Execute(n, catalog_, eo);
  }

  // Executes a candidate whose result flows into a comparison: applies the
  // fault-injection hook (when configured) so harness self-tests can fake
  // a wrong answer on every checked path.
  StatusOr<Relation> ExecChecked(const NodePtr& n,
                                 exec::Executor* executor = nullptr) {
    GSOPT_ASSIGN_OR_RETURN(Relation r, Exec(n, executor));
    if (opt_.mutate_checked_result) opt_.mutate_checked_result(&r);
    return r;
  }

  void Fail(OracleKind kind, std::string detail) {
    if (outcome_.failed) return;  // first failure wins
    outcome_.failed = true;
    outcome_.failure = OracleFailure{kind, Truncate(std::move(detail))};
  }

  // True if the status is a budget skip (counted); false propagates/fails.
  bool Skipped(const Status& s) {
    if (s.code() == StatusCode::kResourceExhausted) {
      ++outcome_.plans_skipped;
      return true;
    }
    return false;
  }

  void RunPlanSpace();
  void RunExecutor();
  void RunDegradation();
  void RunTlp();
  void RunRoundTrip();
  void RunPlanCache();
  void RunColumnar();
  void RunBloom();
  void RunMergeJoin();
  void RunOrder();
  void RunChaos();

  const NodePtr& query_;
  const Catalog& catalog_;
  const OracleOptions& opt_;
  Rng* rng_;
  Relation baseline_;
  OracleOutcome outcome_;
};

void OracleRunner::RunPlanSpace() {
  ++outcome_.oracles_run;
  QueryOptimizer optimizer(catalog_);
  OptimizeOptions oo;
  oo.mode = EnumMode::kGeneralized;
  oo.prune = false;  // the full space, not just the DP frontier
  oo.max_plans = opt_.max_plans;
  auto space = optimizer.EnumeratePlanSpace(query_, oo);
  if (!space.ok()) {
    Fail(OracleKind::kPlanSpace,
         "plan-space enumeration failed: " + space.status().ToString());
    return;
  }
  for (size_t i = 0; i < space->plans.size(); ++i) {
    auto got = ExecChecked(space->plans[i].expr);
    if (!got.ok()) {
      if (Skipped(got.status())) continue;
      Fail(OracleKind::kPlanSpace, "plan " + std::to_string(i) +
                                       " failed to execute: " +
                                       got.status().ToString() + " plan=" +
                                       space->plans[i].expr->ToString());
      return;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kPlanSpace,
           "plan " + std::to_string(i) + "/" +
               std::to_string(space->plans.size()) +
               " diverges from the syntactic result; plan=" +
               space->plans[i].expr->ToString());
      return;
    }
  }
}

void OracleRunner::RunExecutor() {
  ++outcome_.oracles_run;
  for (int lanes : opt_.lane_counts) {
    exec::Executor executor(lanes);
    // Force the parallel kernel paths onto small fuzz-sized inputs.
    executor.set_min_parallel_rows(1);
    executor.set_morsel_rows(7);
    auto got = ExecChecked(query_, &executor);
    if (!got.ok()) {
      if (Skipped(got.status())) continue;
      Fail(OracleKind::kExecutor,
           "parallel execution (" + std::to_string(lanes) +
               " lanes) failed: " + got.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kExecutor,
           "parallel result (" + std::to_string(lanes) +
               " lanes) diverges from serial");
      return;
    }
  }
}

void OracleRunner::RunDegradation() {
  ++outcome_.oracles_run;
  QueryOptimizer optimizer(catalog_);
  auto check_best = [&](const OptimizeOptions& oo, const std::string& label) {
    auto result = optimizer.Optimize(query_, oo);
    if (!result.ok()) {
      Fail(OracleKind::kDegradation,
           label + " rung failed to optimize: " + result.status().ToString());
      return false;
    }
    auto got = ExecChecked(result->best.expr);
    if (!got.ok()) {
      if (Skipped(got.status())) return true;
      Fail(OracleKind::kDegradation,
           label + " rung plan failed to execute: " + got.status().ToString() +
               " plan=" + result->best.expr->ToString());
      return false;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kDegradation,
           label + " rung plan diverges from the syntactic result; plan=" +
               result->best.expr->ToString());
      return false;
    }
    return true;
  };

  for (EnumMode mode :
       {EnumMode::kGeneralized, EnumMode::kBaseline, EnumMode::kBinaryOnly}) {
    OptimizeOptions oo;
    oo.mode = mode;
    oo.max_plans = std::max<size_t>(opt_.max_plans, 16);
    if (!check_best(oo, EnumModeName(mode))) return;
  }
  // The terminal rung, reached the way production reaches it: a budget
  // that expires immediately forces the ladder all the way down.
  ResourceBudget expired;
  expired.WithDeadlineAfter(std::chrono::microseconds(0));
  OptimizeOptions oo;
  oo.budget = &expired;
  oo.fallback = true;
  check_best(oo, "syntactic");
}

void OracleRunner::RunTlp() {
  ++outcome_.oracles_run;
  if (baseline_.schema().size() == 0) return;

  // Random visible column c and pivot k (drawn from c's actual values when
  // any are non-null). Under 3VL exactly one of `c <= k`, `c > k`,
  // `c IS NULL` holds per row, so the three partitions tile the result.
  int col = static_cast<int>(
      rng_->Uniform(0, static_cast<int64_t>(baseline_.schema().size()) - 1));
  const Attribute& attr = baseline_.schema().attr(col);
  std::vector<const Value*> non_null;
  for (const Tuple& t : baseline_.rows()) {
    const Value& v = t.values[static_cast<size_t>(col)];
    if (!v.is_null()) non_null.push_back(&v);
  }
  Value pivot = Value::Int(0);
  if (!non_null.empty()) {
    pivot = *non_null[static_cast<size_t>(
        rng_->Uniform(0, static_cast<int64_t>(non_null.size()) - 1))];
  }

  auto branch = [&](CmpOp op) {
    Atom a;
    a.lhs = Scalar::Column(attr.rel, attr.name);
    a.op = op;
    a.rhs = Scalar::Const(pivot);
    return Node::Select(query_, Predicate(a));
  };
  NodePtr parts[3] = {branch(CmpOp::kLe), branch(CmpOp::kGt),
                      Node::Select(query_, Predicate(MakeIsNullAtom(
                                               attr.rel, attr.name,
                                               /*negated=*/false)))};
  const char* part_names[3] = {"p", "NOT p", "p IS NULL"};

  // Each partition runs through the full optimizer (the added selection
  // perturbs normalization and enumeration), then the union of the three
  // must tile the unpartitioned baseline.
  QueryOptimizer optimizer(catalog_);
  std::vector<std::string> united;
  for (int i = 0; i < 3; ++i) {
    OptimizeOptions oo;
    oo.max_plans = std::max<size_t>(opt_.max_plans, 16);
    auto result = optimizer.Optimize(parts[i], oo);
    if (!result.ok()) {
      Fail(OracleKind::kTlp,
           std::string("partition ") + part_names[i] + " on " +
               attr.Qualified() + " failed to optimize: " +
               result.status().ToString());
      return;
    }
    auto got = ExecChecked(result->best.expr);
    if (!got.ok()) {
      if (Skipped(got.status())) return;  // cannot tile without all three
      Fail(OracleKind::kTlp, std::string("partition ") + part_names[i] +
                                 " failed to execute: " +
                                 got.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    std::vector<std::string> keys = CanonicalRowKeys(*got);
    united.insert(united.end(), keys.begin(), keys.end());
  }
  std::vector<std::string> expected = CanonicalRowKeys(baseline_);
  std::sort(united.begin(), united.end());
  std::sort(expected.begin(), expected.end());
  if (united != expected) {
    Fail(OracleKind::kTlp,
         "TLP partitions on " + attr.Qualified() + " (pivot " +
             pivot.ToString() + ") union to " +
             std::to_string(united.size()) + " rows, expected " +
             std::to_string(expected.size()) +
             " (or same count, different rows)");
  }
}

void OracleRunner::RunRoundTrip() {
  auto emitted = EmitSql(query_, catalog_);
  if (!emitted.ok()) {
    if (emitted.status().code() == StatusCode::kUnimplemented) {
      return;  // outside the SQL surface; not an error
    }
    Fail(OracleKind::kRoundTrip,
         "SQL emission failed: " + emitted.status().ToString());
    return;
  }
  ++outcome_.oracles_run;
  auto bound = sql::ParseAndBind(emitted->sql, catalog_);
  if (!bound.ok()) {
    Fail(OracleKind::kRoundTrip, "emitted SQL failed to re-bind: " +
                                     bound.status().ToString() + " sql=" +
                                     emitted->sql);
    return;
  }
  auto expected = Exec(emitted->reference);
  auto got = ExecChecked(*bound);
  if (!expected.ok() || !got.ok()) {
    const Status& bad = !expected.ok() ? expected.status() : got.status();
    if (Skipped(bad)) return;
    Fail(OracleKind::kRoundTrip,
         "round-trip execution failed: " + bad.ToString() + " sql=" +
             emitted->sql);
    return;
  }
  ++outcome_.plans_checked;
  if (!Relation::BagEquals(*expected, *got)) {
    Fail(OracleKind::kRoundTrip,
         "re-bound SQL diverges from the original tree; sql=" + emitted->sql);
    return;
  }
  // When the emitted SQL carried an ORDER BY, bag equality is not the whole
  // contract: the re-bound tree's execution must also deliver the order.
  exec::SortSpec spec;
  if (emitted->has_order_by && RootSortContract(*bound, &spec)) {
    Status s = exec::CheckSorted(*got, spec);
    if (!s.ok()) {
      Fail(OracleKind::kRoundTrip,
           "re-bound SQL violates its ORDER BY: " + s.ToString() +
               " sql=" + emitted->sql);
    }
  }
}

void OracleRunner::RunPlanCache() {
  ++outcome_.oracles_run;
  if (baseline_.schema().size() == 0) return;

  // Two instantiations of the same query shape, differing only in the
  // pivot constant of an added selection. The session lifts both pivots
  // to the same parameter slot, so they share a fingerprint: the first
  // Run optimizes and caches the template, the second MUST hit and
  // re-instantiate it -- and each must still bag-equal its own syntactic
  // (literal, un-cached) execution.
  int col = static_cast<int>(
      rng_->Uniform(0, static_cast<int64_t>(baseline_.schema().size()) - 1));
  const Attribute& attr = baseline_.schema().attr(col);
  std::vector<const Value*> non_null;
  for (const Tuple& t : baseline_.rows()) {
    const Value& v = t.values[static_cast<size_t>(col)];
    if (!v.is_null()) non_null.push_back(&v);
  }
  Value pivots[2] = {Value::Int(0), Value::Int(1)};
  for (int i = 0; i < 2 && !non_null.empty(); ++i) {
    pivots[i] = *non_null[static_cast<size_t>(
        rng_->Uniform(0, static_cast<int64_t>(non_null.size()) - 1))];
  }

  Session session(catalog_,
                  SessionOptions{}.WithMaxPlans(
                      std::max<size_t>(opt_.max_plans, 16)));
  for (int i = 0; i < 2; ++i) {
    Atom a;
    a.lhs = Scalar::Column(attr.rel, attr.name);
    a.op = CmpOp::kLe;
    a.rhs = Scalar::Const(pivots[i]);
    NodePtr wrapped = Node::Select(query_, Predicate(a));

    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    auto got = session.Run(wrapped, ExecOptions{}.WithBudget(&budget));
    if (!got.ok()) {
      if (Skipped(got.status())) return;
      Fail(OracleKind::kPlanCache,
           "session run " + std::to_string(i) + " (pivot " +
               pivots[i].ToString() +
               ") failed: " + got.status().ToString());
      return;
    }
    if (i == 1 && !got->cache_hit) {
      Fail(OracleKind::kPlanCache,
           "second literal instantiation (pivot " + pivots[1].ToString() +
               " after " + pivots[0].ToString() +
               ") missed the plan cache; fingerprinting is not "
               "literal-invariant for plan=" + got->plan->ToString());
      return;
    }
    Relation checked = std::move(got->rows);
    if (opt_.mutate_checked_result) opt_.mutate_checked_result(&checked);
    auto expected = Exec(wrapped);
    if (!expected.ok()) {
      if (Skipped(expected.status())) return;
      Fail(OracleKind::kPlanCache,
           "syntactic reference failed: " + expected.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(*expected, checked)) {
      Fail(OracleKind::kPlanCache,
           std::string(i == 0 ? "cached template (cold)"
                              : "cache-hit re-instantiation") +
               " diverges from literal execution; pivot " +
               pivots[i].ToString() + " plan=" + got->plan->ToString());
      return;
    }
  }
}

void OracleRunner::RunColumnar() {
  ++outcome_.oracles_run;

  // Forced-batch execution with optional executor / spill / fault wiring;
  // results flow into comparisons, so the self-test mutation hook applies.
  auto exec_forced = [&](exec::Executor* executor, ResourceBudget* budget,
                         const exec::SpillConfig* spill,
                         FaultInjector* fault) -> StatusOr<Relation> {
    ExecuteOptions eo;
    eo.budget = budget;
    eo.executor = executor;
    eo.spill = spill;
    eo.fault = fault;
    eo.batch = exec::BatchMode::kForce;
    // Filter-free, so a divergence is attributable to the batch kernels
    // alone (the bloom oracle owns the filtered trials).
    eo.bloom = exec::BloomMode::kOff;
    GSOPT_ASSIGN_OR_RETURN(Relation r, Execute(query_, catalog_, eo));
    if (opt_.mutate_checked_result) opt_.mutate_checked_result(&r);
    return r;
  };
  auto check_bag = [&](const StatusOr<Relation>& got,
                       const std::string& label) {
    if (!got.ok()) {
      if (Skipped(got.status())) return;
      Fail(OracleKind::kColumnar,
           label + " failed: " + got.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kColumnar,
           label + " diverges from the tuple-at-a-time result");
    }
  };

  // Trial 1: forced batch kernels, serial.
  {
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    check_bag(exec_forced(nullptr, &budget, nullptr, nullptr),
              "columnar (serial)");
    if (outcome_.failed) return;
  }

  // Trial 2: forced batch kernels on the morsel-parallel paths, with the
  // thresholds forced down so fuzz-sized inputs actually fan out.
  {
    exec::Executor executor(4);
    executor.set_min_parallel_rows(1);
    executor.set_morsel_rows(7);
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    check_bag(exec_forced(&executor, &budget, nullptr, nullptr),
              "columnar (parallel)");
    if (outcome_.failed) return;
  }

  // Trial 3: memory-starved forced batch with spilling enabled: the batch
  // kernels must take the same out-of-core degradation as the reference
  // path and still tile the baseline -- with the memory ledger unwound.
  {
    exec::SpillConfig spill;
    spill.enabled = true;
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    budget.WithMaxMemory(opt_.chaos_memory_bytes);
    auto got = exec_forced(nullptr, &budget, &spill, nullptr);
    if (budget.memory_charged() != 0) {
      Fail(OracleKind::kColumnar,
           "columnar (spilling) left " +
               std::to_string(budget.memory_charged()) +
               " byte(s) charged to the memory ledger");
      return;
    }
    if (!got.ok()) {
      // Same irreducible-state escape as the chaos oracle's spill trial.
      if (got.status().code() != StatusCode::kResourceExhausted ||
          got.status().message().find("memory cap") != std::string::npos) {
        Fail(OracleKind::kColumnar,
             "columnar (spilling) failed: " + got.status().ToString());
      } else {
        ++outcome_.plans_skipped;
      }
      if (outcome_.failed) return;
    } else {
      check_bag(got, "columnar (spilling)");
      if (outcome_.failed) return;
    }
  }

  // Faulted trials: forced batch under deterministic injection. Contract
  // as in chaos: a bag-correct success or a clean typed failure.
  for (int trial = 0; trial < 2; ++trial) {
    const uint64_t seed = static_cast<uint64_t>(
        rng_->Uniform(0, std::numeric_limits<int64_t>::max() - 1));
    FaultInjector::Options fo;
    fo.seed = seed;
    fo.period = opt_.chaos_fault_period;
    FaultInjector fault(fo);
    exec::SpillConfig spill;
    spill.enabled = true;
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    auto got = exec_forced(nullptr, &budget, &spill, &fault);
    if (budget.memory_charged() != 0) {
      Fail(OracleKind::kColumnar,
           "columnar fault seed " + std::to_string(seed) + " left " +
               std::to_string(budget.memory_charged()) +
               " byte(s) charged to the memory ledger");
      return;
    }
    if (!got.ok()) {
      const StatusCode code = got.status().code();
      if (code == StatusCode::kResourceExhausted ||
          code == StatusCode::kUnavailable) {
        continue;  // clean typed failure: the contract holds
      }
      Fail(OracleKind::kColumnar,
           "columnar fault seed " + std::to_string(seed) +
               " produced an unexpected error class: " +
               got.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kColumnar,
           "columnar fault seed " + std::to_string(seed) +
               " returned success with an incorrect bag");
      return;
    }
  }
}

void OracleRunner::RunBloom() {
  ++outcome_.oracles_run;

  // Forced-filter execution across every hash-join path. The baseline
  // pinned BloomMode::kOff, so any divergence here is the filter's fault:
  // a filter may only ever skip provably match-free work.
  auto exec_forced = [&](exec::BatchMode batch, exec::Executor* executor,
                         ResourceBudget* budget,
                         const exec::SpillConfig* spill,
                         FaultInjector* fault) -> StatusOr<Relation> {
    ExecuteOptions eo;
    eo.budget = budget;
    eo.executor = executor;
    eo.spill = spill;
    eo.fault = fault;
    eo.batch = batch;
    eo.bloom = exec::BloomMode::kForce;
    GSOPT_ASSIGN_OR_RETURN(Relation r, Execute(query_, catalog_, eo));
    if (opt_.mutate_checked_result) opt_.mutate_checked_result(&r);
    return r;
  };
  auto check_bag = [&](const StatusOr<Relation>& got,
                       const std::string& label) {
    if (!got.ok()) {
      if (Skipped(got.status())) return;
      Fail(OracleKind::kBloom, label + " failed: " + got.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kBloom,
           label + " diverges from the filter-free result");
    }
  };

  // Trial 1: forced filter on the serial tuple-at-a-time kernels.
  {
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    check_bag(exec_forced(exec::BatchMode::kOff, nullptr, &budget, nullptr,
                          nullptr),
              "bloom (serial)");
    if (outcome_.failed) return;
  }

  // Trial 2: forced filter on the columnar batch kernels (the streaming
  // probe-hash must agree byte-for-byte with the materialized encoding).
  {
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    check_bag(exec_forced(exec::BatchMode::kForce, nullptr, &budget, nullptr,
                          nullptr),
              "bloom (columnar)");
    if (outcome_.failed) return;
  }

  // Trial 3: forced filter on the morsel-parallel paths (per-lane filters
  // OR-merged between the build and probe passes).
  {
    exec::Executor executor(4);
    executor.set_min_parallel_rows(1);
    executor.set_morsel_rows(7);
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    check_bag(exec_forced(exec::BatchMode::kAuto, &executor, &budget, nullptr,
                          nullptr),
              "bloom (parallel)");
    if (outcome_.failed) return;
  }

  // Trial 4: memory-starved with spilling: the filter gates probe-side
  // partition writes, and its own allocation failing under the squeeze
  // must leave a correct (filter-free) out-of-core join.
  {
    exec::SpillConfig spill;
    spill.enabled = true;
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    budget.WithMaxMemory(opt_.chaos_memory_bytes);
    auto got = exec_forced(exec::BatchMode::kAuto, nullptr, &budget, &spill,
                           nullptr);
    if (budget.memory_charged() != 0) {
      Fail(OracleKind::kBloom,
           "bloom (spilling) left " + std::to_string(budget.memory_charged()) +
               " byte(s) charged to the memory ledger");
      return;
    }
    if (!got.ok()) {
      // Same irreducible-state escape as the columnar oracle's spill trial.
      if (got.status().code() != StatusCode::kResourceExhausted ||
          got.status().message().find("memory cap") != std::string::npos) {
        Fail(OracleKind::kBloom,
             "bloom (spilling) failed: " + got.status().ToString());
      } else {
        ++outcome_.plans_skipped;
      }
      if (outcome_.failed) return;
    } else {
      check_bag(got, "bloom (spilling)");
      if (outcome_.failed) return;
    }
  }

  // Faulted trials: a fault that lands on the filter's allocation charge
  // must degrade to a filter-free join -- success means a correct bag,
  // failure means a clean typed error. Never a wrong answer.
  for (int trial = 0; trial < 2; ++trial) {
    const uint64_t seed = static_cast<uint64_t>(
        rng_->Uniform(0, std::numeric_limits<int64_t>::max() - 1));
    FaultInjector::Options fo;
    fo.seed = seed;
    fo.period = opt_.chaos_fault_period;
    FaultInjector fault(fo);
    exec::SpillConfig spill;
    spill.enabled = true;
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    auto got = exec_forced(exec::BatchMode::kAuto, nullptr, &budget, &spill,
                           &fault);
    if (budget.memory_charged() != 0) {
      Fail(OracleKind::kBloom,
           "bloom fault seed " + std::to_string(seed) + " left " +
               std::to_string(budget.memory_charged()) +
               " byte(s) charged to the memory ledger");
      return;
    }
    if (!got.ok()) {
      const StatusCode code = got.status().code();
      if (code == StatusCode::kResourceExhausted ||
          code == StatusCode::kUnavailable) {
        continue;  // clean typed failure: the contract holds
      }
      Fail(OracleKind::kBloom,
           "bloom fault seed " + std::to_string(seed) +
               " produced an unexpected error class: " +
               got.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kBloom,
           "bloom fault seed " + std::to_string(seed) +
               " returned success with an incorrect bag");
      return;
    }
  }
}

void OracleRunner::RunMergeJoin() {
  ++outcome_.oracles_run;

  // Forced sort-merge execution across every path. The baseline pinned
  // JoinStrategy::kHashOnly, so any divergence here is the merge family's
  // fault: merge join and sorted aggregation must reproduce the hash
  // paths' NULL-key and key-class semantics exactly.
  auto exec_forced = [&](exec::BatchMode batch, exec::Executor* executor,
                         ResourceBudget* budget,
                         const exec::SpillConfig* spill,
                         FaultInjector* fault) -> StatusOr<Relation> {
    ExecuteOptions eo;
    eo.budget = budget;
    eo.executor = executor;
    eo.spill = spill;
    eo.fault = fault;
    eo.batch = batch;
    // Filter-free, so a divergence is attributable to the merge paths
    // alone (the bloom oracle owns the filtered trials).
    eo.bloom = exec::BloomMode::kOff;
    eo.join = exec::JoinStrategy::kMergeOnly;
    GSOPT_ASSIGN_OR_RETURN(Relation r, Execute(query_, catalog_, eo));
    if (opt_.mutate_checked_result) opt_.mutate_checked_result(&r);
    return r;
  };
  auto check_bag = [&](const StatusOr<Relation>& got,
                       const std::string& label) {
    if (!got.ok()) {
      if (Skipped(got.status())) return;
      Fail(OracleKind::kMergeJoin,
           label + " failed: " + got.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kMergeJoin,
           label + " diverges from the hash-path result");
    }
  };

  // Trial 1: forced merge on the serial tuple-at-a-time kernels.
  {
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    check_bag(exec_forced(exec::BatchMode::kOff, nullptr, &budget, nullptr,
                          nullptr),
              "merge (serial)");
    if (outcome_.failed) return;
  }

  // Trial 2: forced merge with the columnar batch kernels active for every
  // non-join operator (the join dispatch gives merge priority).
  {
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    check_bag(exec_forced(exec::BatchMode::kForce, nullptr, &budget, nullptr,
                          nullptr),
              "merge (columnar)");
    if (outcome_.failed) return;
  }

  // Trial 3: forced merge with the morsel-parallel executor attached (scan
  // and selection morsels fan out; each join still runs the merge core).
  {
    exec::Executor executor(4);
    executor.set_min_parallel_rows(1);
    executor.set_morsel_rows(7);
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    check_bag(exec_forced(exec::BatchMode::kAuto, &executor, &budget, nullptr,
                          nullptr),
              "merge (parallel)");
    if (outcome_.failed) return;
  }

  // Trial 4: memory-starved with spilling: the external sort underneath
  // the merge must degrade to run files and still tile the baseline --
  // with the memory ledger unwound.
  {
    exec::SpillConfig spill;
    spill.enabled = true;
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    budget.WithMaxMemory(opt_.chaos_memory_bytes);
    auto got = exec_forced(exec::BatchMode::kAuto, nullptr, &budget, &spill,
                           nullptr);
    if (budget.memory_charged() != 0) {
      Fail(OracleKind::kMergeJoin,
           "merge (spilling) left " + std::to_string(budget.memory_charged()) +
               " byte(s) charged to the memory ledger");
      return;
    }
    if (!got.ok()) {
      // Two legitimate outs. Row caps / deadlines (kResourceExhausted
      // without "memory cap") skip as everywhere else. And the merge
      // join's own block staging has no degradation below it by design:
      // a single key-equal block bigger than the whole cap reports
      // "merge-join: memory cap exceeded" -- the documented irreducible
      // case (intermediate joins concentrate duplicate keys well past the
      // base-table sizes), analogous to the chaos oracle's DISTINCT dedup
      // set. Any OTHER memory-cap report still fails: the external sort
      // underneath must spill, not trip.
      const bool typed_skip =
          got.status().code() == StatusCode::kResourceExhausted &&
          got.status().message().find("memory cap") == std::string::npos;
      const bool irreducible_block =
          got.status().code() == StatusCode::kResourceExhausted &&
          got.status().message().find("merge-join: memory cap") !=
              std::string::npos;
      if (typed_skip || irreducible_block) {
        ++outcome_.plans_skipped;
      } else {
        Fail(OracleKind::kMergeJoin,
             "merge (spilling) failed: " + got.status().ToString());
      }
      if (outcome_.failed) return;
    } else {
      check_bag(got, "merge (spilling)");
      if (outcome_.failed) return;
    }
  }

  // Faulted trials: injected run-file write failures and alloc faults must
  // surface as clean typed errors or a correct bag -- never a wrong answer
  // quietly sorted into plausibility.
  for (int trial = 0; trial < 2; ++trial) {
    const uint64_t seed = static_cast<uint64_t>(
        rng_->Uniform(0, std::numeric_limits<int64_t>::max() - 1));
    FaultInjector::Options fo;
    fo.seed = seed;
    fo.period = opt_.chaos_fault_period;
    FaultInjector fault(fo);
    exec::SpillConfig spill;
    spill.enabled = true;
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    auto got = exec_forced(exec::BatchMode::kAuto, nullptr, &budget, &spill,
                           &fault);
    if (budget.memory_charged() != 0) {
      Fail(OracleKind::kMergeJoin,
           "merge fault seed " + std::to_string(seed) + " left " +
               std::to_string(budget.memory_charged()) +
               " byte(s) charged to the memory ledger");
      return;
    }
    if (!got.ok()) {
      const StatusCode code = got.status().code();
      if (code == StatusCode::kResourceExhausted ||
          code == StatusCode::kUnavailable) {
        continue;  // clean typed failure: the contract holds
      }
      Fail(OracleKind::kMergeJoin,
           "merge fault seed " + std::to_string(seed) +
               " produced an unexpected error class: " +
               got.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kMergeJoin,
           "merge fault seed " + std::to_string(seed) +
               " returned success with an incorrect bag");
      return;
    }
  }
}

void OracleRunner::RunOrder() {
  // Queries without a root ORDER BY carry no order promise to check.
  exec::SortSpec spec;
  if (!RootSortContract(query_, &spec)) return;
  ++outcome_.oracles_run;

  auto exec_with = [&](const NodePtr& n,
                       exec::JoinStrategy join) -> StatusOr<Relation> {
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    ExecuteOptions eo;
    eo.budget = &budget;
    eo.batch = exec::BatchMode::kOff;
    eo.bloom = exec::BloomMode::kOff;
    eo.join = join;
    GSOPT_ASSIGN_OR_RETURN(Relation r, Execute(n, catalog_, eo));
    if (opt_.mutate_checked_result) opt_.mutate_checked_result(&r);
    return r;
  };
  auto check_ordered = [&](const StatusOr<Relation>& got,
                           const std::string& label) {
    if (!got.ok()) {
      if (Skipped(got.status())) return;
      Fail(OracleKind::kOrder, label + " failed: " + got.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    Status s = exec::CheckSorted(*got, spec);
    if (!s.ok()) {
      Fail(OracleKind::kOrder,
           label + " violates the ORDER BY contract: " + s.ToString());
      return;
    }
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kOrder, label + " diverges from the baseline bag");
    }
  };

  // Trial 0: the baseline itself (syntactic tree, hash joins, the sort
  // enforcer intact) must satisfy its own ORDER BY.
  {
    Status s = exec::CheckSorted(baseline_, spec);
    if (!s.ok()) {
      Fail(OracleKind::kOrder,
           "syntactic baseline violates its own ORDER BY: " + s.ToString());
      return;
    }
  }

  // Trial 1: the order-aware optimizer's winning plan, executed serially
  // with merge hints honored (the configuration its enforcer-removal
  // reasoning assumes). This is the trial that catches a kSort removed on
  // the promise of an order nobody actually delivered.
  {
    QueryOptimizer optimizer(catalog_);
    OptimizeOptions oo;
    oo.max_plans = std::max<size_t>(opt_.max_plans, 16);
    auto result = optimizer.Optimize(query_, oo);
    if (!result.ok()) {
      Fail(OracleKind::kOrder,
           "optimization failed: " + result.status().ToString());
      return;
    }
    check_ordered(exec_with(result->best.expr, exec::JoinStrategy::kAuto),
                  "optimized plan");
    if (outcome_.failed) return;
  }

  // Trial 2: the as-written tree under forced merge execution -- sorted
  // aggregation and merge joins below the intact enforcer must not
  // disturb the final order.
  check_ordered(exec_with(query_, exec::JoinStrategy::kMergeOnly),
                "forced-merge execution");
}

void OracleRunner::RunChaos() {
  ++outcome_.oracles_run;
  exec::SpillConfig spill;
  spill.enabled = true;

  // The leak oracles that every trial -- successful or failed -- must
  // satisfy: no spill temp file survives an execution, and every byte
  // charged to the memory ledger was released (RAII hygiene).
  auto ledger_clean = [&](ResourceBudget* budget, const std::string& label) {
    const uint64_t files = SpillFile::LiveCount();
    if (files != 0) {
      Fail(OracleKind::kChaos,
           label + " leaked " + std::to_string(files) + " spill temp file(s)");
      return false;
    }
    if (budget->memory_charged() != 0) {
      Fail(OracleKind::kChaos,
           label + " left " + std::to_string(budget->memory_charged()) +
               " byte(s) charged to the memory ledger");
      return false;
    }
    return true;
  };

  // Trial 0: memory starved, no faults. The out-of-core path must
  // silently absorb the squeeze: same bag as the unconstrained baseline.
  {
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    budget.WithMaxMemory(opt_.chaos_memory_bytes);
    exec::OperatorStats stats;
    ExecuteOptions eo;
    eo.budget = &budget;
    eo.stats = &stats;
    eo.spill = &spill;
    auto got = Execute(query_, catalog_, eo);
    ++outcome_.chaos_trials;
    if (!ledger_clean(&budget, "memory-starved trial")) return;
    if (AnySpilled(stats)) ++outcome_.chaos_spills;
    if (!got.ok()) {
      // Row caps and deadlines are legitimate skips. A memory-cap failure
      // with spilling enabled means degradation did not engage -- except
      // the documented irreducible case (a single DISTINCT group whose
      // dedup set alone exceeds the budget), which reports as such.
      if (got.status().code() == StatusCode::kResourceExhausted &&
          got.status().message().find("memory cap") == std::string::npos) {
        ++outcome_.plans_skipped;
        return;
      }
      Fail(OracleKind::kChaos,
           "memory-starved execution failed despite spilling: " +
               got.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kChaos,
           "out-of-core result diverges from the in-memory baseline");
      return;
    }
  }

  // Faulted trials: deterministic seeds, every site armed. The contract:
  // bag-correct success OR a clean typed failure (kResourceExhausted /
  // kUnavailable) -- and the leak oracles hold either way.
  for (int trial = 0; trial < opt_.chaos_trials && !outcome_.failed;
       ++trial) {
    const uint64_t seed = static_cast<uint64_t>(rng_->Uniform(
        0, std::numeric_limits<int64_t>::max() - 1));
    FaultInjector::Options fo;
    fo.seed = seed;
    fo.period = opt_.chaos_fault_period;
    FaultInjector fault(fo);
    ResourceBudget budget;
    budget.WithMaxRows(opt_.max_rows_per_exec);
    budget.WithMaxMemory(opt_.chaos_memory_bytes);
    exec::OperatorStats stats;
    ExecuteOptions eo;
    eo.budget = &budget;
    eo.stats = &stats;
    eo.spill = &spill;
    eo.fault = &fault;
    auto got = Execute(query_, catalog_, eo);
    ++outcome_.chaos_trials;
    outcome_.chaos_faults += fault.fired_total();
    if (!ledger_clean(&budget, "fault seed " + std::to_string(seed))) return;
    if (AnySpilled(stats)) ++outcome_.chaos_spills;
    if (!got.ok()) {
      const StatusCode code = got.status().code();
      if (code == StatusCode::kResourceExhausted ||
          code == StatusCode::kUnavailable) {
        continue;  // clean typed failure: the contract holds
      }
      Fail(OracleKind::kChaos,
           "fault seed " + std::to_string(seed) +
               " produced an unexpected error class: " +
               got.status().ToString());
      return;
    }
    ++outcome_.plans_checked;
    if (!Relation::BagEquals(baseline_, *got)) {
      Fail(OracleKind::kChaos,
           "fault seed " + std::to_string(seed) +
               " returned success with an incorrect bag (" +
               std::to_string(fault.fired_total()) + " fault(s) fired)");
      return;
    }
  }
  if (outcome_.failed) return;

  // Plan-cache poisoning: a session miss whose execution fails under
  // injection must never install its template; the clean run after it
  // re-optimizes from scratch and must still be correct.
  {
    FaultInjector::Options fo;
    fo.seed = 1;
    fo.period = 1;
    fo.site_mask = FaultInjector::MaskOf({FaultSite::kBudgetCheck});
    FaultInjector fault(fo);
    Session session(catalog_,
                    SessionOptions{}
                        .WithMaxPlans(std::max<size_t>(opt_.max_plans, 16))
                        .WithRetries(0));
    ResourceBudget b1;
    b1.WithMaxRows(opt_.max_rows_per_exec);
    auto poisoned =
        session.Run(query_, ExecOptions{}.WithBudget(&b1).WithFault(&fault));
    ++outcome_.chaos_trials;
    outcome_.chaos_faults += fault.fired_total();
    // A plan with no kernel work never probes the budget site and may
    // legitimately succeed; the guard only binds when the miss failed.
    if (!poisoned.ok()) {
      ResourceBudget b2;
      b2.WithMaxRows(opt_.max_rows_per_exec);
      auto clean = session.Run(query_, ExecOptions{}.WithBudget(&b2));
      if (!clean.ok()) {
        if (!Skipped(clean.status())) {
          Fail(OracleKind::kChaos,
               "clean run after a failed cache miss failed: " +
                   clean.status().ToString());
        }
        return;
      }
      ++outcome_.plans_checked;
      if (!Relation::BagEquals(baseline_, clean->rows)) {
        Fail(OracleKind::kChaos,
             "clean run after a failed cache miss diverges from the "
             "baseline (poisoned plan-cache template)");
        return;
      }
    }
  }
}

StatusOr<OracleOutcome> OracleRunner::Run() {
  auto baseline = Exec(query_);
  if (!baseline.ok()) {
    if (baseline.status().code() == StatusCode::kResourceExhausted) {
      outcome_.skipped = true;
      return outcome_;
    }
    return baseline.status();  // generator bug or harness problem: loud
  }
  baseline_ = std::move(*baseline);

  if (opt_.run_plan_space && !outcome_.failed) RunPlanSpace();
  if (opt_.run_executor && !outcome_.failed) RunExecutor();
  if (opt_.run_degradation && !outcome_.failed) RunDegradation();
  if (opt_.run_tlp && !outcome_.failed) RunTlp();
  if (opt_.run_round_trip && !outcome_.failed) RunRoundTrip();
  if (opt_.run_plan_cache && !outcome_.failed) RunPlanCache();
  if (opt_.run_columnar && !outcome_.failed) RunColumnar();
  if (opt_.run_bloom && !outcome_.failed) RunBloom();
  if (opt_.run_merge && !outcome_.failed) RunMergeJoin();
  if (opt_.run_order && !outcome_.failed) RunOrder();
  if (opt_.run_chaos && !outcome_.failed) RunChaos();
  return outcome_;
}

}  // namespace

std::string OracleKindName(OracleKind k) {
  switch (k) {
    case OracleKind::kPlanSpace: return "plan-space";
    case OracleKind::kExecutor: return "executor";
    case OracleKind::kDegradation: return "degradation";
    case OracleKind::kTlp: return "tlp";
    case OracleKind::kRoundTrip: return "round-trip";
    case OracleKind::kPlanCache: return "plan-cache";
    case OracleKind::kColumnar: return "columnar";
    case OracleKind::kBloom: return "bloom";
    case OracleKind::kMergeJoin: return "merge-join";
    case OracleKind::kOrder: return "order";
    case OracleKind::kChaos: return "chaos";
  }
  return "?";
}

std::string OracleOutcome::ToString() const {
  if (skipped) return "skipped (baseline over budget)";
  if (failed) {
    return "FAIL [" + OracleKindName(failure.kind) + "] " + failure.detail;
  }
  std::string s = "ok (" + std::to_string(oracles_run) + " oracles, " +
                  std::to_string(plans_checked) + " plans checked, " +
                  std::to_string(plans_skipped) + " skipped";
  if (chaos_trials > 0) {
    s += "; chaos: " + std::to_string(chaos_trials) + " trials, " +
         std::to_string(chaos_faults) + " faults, " +
         std::to_string(chaos_spills) + " spilled";
  }
  return s + ")";
}

StatusOr<OracleOutcome> CheckQuery(const NodePtr& query,
                                   const Catalog& catalog,
                                   const OracleOptions& options, Rng* rng) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  OracleRunner runner(query, catalog, options, rng);
  return runner.Run();
}

}  // namespace gsopt::testing
