// Self-contained failure reproducers and the seed corpus format. A repro
// directory holds:
//   query.sql      -- the query as SQL text (when expressible), OR
//   query.algebra  -- the algebra rendering for trees outside SQL
//   <table>.csv    -- one CSV per base table (header + rows)
//   README.txt     -- seed, oracle, human-readable detail
// tests/corpus/ checks these directories in as regression cases; the fuzz
// driver writes new ones for every minimized failure.
#ifndef GSOPT_TESTING_ARTIFACT_H_
#define GSOPT_TESTING_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/node.h"
#include "base/status.h"
#include "relational/catalog.h"

namespace gsopt::testing {

// Writes a reproducer under `dir` (created if needed, contents replaced).
Status WriteRepro(const std::string& dir, const NodePtr& query,
                  const Catalog& catalog, uint64_t seed,
                  const std::string& note);

struct LoadedRepro {
  std::string sql;
  NodePtr query;    // bound from query.sql against the loaded tables
  Catalog catalog;  // one table per CSV file in the directory
};

// Loads a repro directory written by WriteRepro (or hand-authored with the
// same layout). Directories holding only query.algebra (no SQL form) fail
// with kUnimplemented -- they document, but cannot re-bind.
StatusOr<LoadedRepro> LoadRepro(const std::string& dir);

// All subdirectories of `dir` containing a query.sql, sorted by name.
StatusOr<std::vector<std::string>> ListReproDirs(const std::string& dir);

}  // namespace gsopt::testing

#endif  // GSOPT_TESTING_ARTIFACT_H_
