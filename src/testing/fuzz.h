// The metamorphic fuzz harness: seeded generation of (query, data) cases
// over the paper's full query class, the oracle battery from oracles.h,
// and on failure delta-debugging + artifact emission. The gsopt_fuzz tool
// and the fuzz-labelled ctest smoke are thin wrappers around RunFuzz.
#ifndef GSOPT_TESTING_FUZZ_H_
#define GSOPT_TESTING_FUZZ_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "algebra/node.h"
#include "base/rng.h"
#include "base/status.h"
#include "enumerate/random_query.h"
#include "relational/catalog.h"
#include "testing/minimize.h"
#include "testing/oracles.h"

namespace gsopt::testing {

struct FuzzOptions {
  // Template for query generation; num_rels is drawn per case from
  // [min_rels, max_rels].
  RandomQueryOptions query;
  int min_rels = 2;
  int max_rels = 5;

  // Data generation: per-table row count in [min_rows, max_rows], value
  // domain [0, domain), per-table null fraction uniform in
  // [0, max_null_fraction].
  int min_rows = 0;
  int max_rows = 20;
  int64_t domain = 6;
  double max_null_fraction = 0.35;

  OracleOptions oracle;
  int minimize_rounds = 6;

  // Directory for minimized reproducers; empty disables artifacts.
  std::string artifact_dir;
  // Stop after this many distinct failing seeds.
  int max_failures = 5;
  // Stop early once this much wall time has elapsed (0 = no limit); the
  // nightly CI job uses this as its 10-minute budget.
  double time_budget_sec = 0.0;

  static FuzzOptions Default();  // general-class generation knobs
};

struct FuzzCase {
  uint64_t seed = 0;
  NodePtr query;
  Catalog catalog;
  RandomQueryFeatures features;
};

// Deterministic: the same seed and options always produce the same case.
FuzzCase MakeFuzzCase(uint64_t seed, const FuzzOptions& options);

struct FuzzStats {
  int cases = 0;
  int failures = 0;
  int skipped = 0;  // baseline over row budget
  size_t plans_checked = 0;
  size_t plans_skipped = 0;

  // Chaos-oracle accounting (zero unless oracle.run_chaos).
  size_t chaos_trials = 0;
  size_t chaos_faults = 0;
  size_t chaos_spills = 0;

  // Feature coverage (the acceptance gate: >=30% views, >=20% aggregated-
  // column predicates).
  int with_view = 0;
  int with_agg_pred = 0;
  int with_distinct = 0;
  int with_dup_pair = 0;
  int with_complex_pred = 0;
  int with_outer_join = 0;
  int with_order_by = 0;

  double seconds = 0.0;
  std::vector<std::string> failure_dirs;  // artifacts written this run

  double Pct(int n) const { return cases == 0 ? 0.0 : 100.0 * n / cases; }
  std::string Summary() const;
};

// Runs seeds [seed_start, seed_start + num_seeds). Per-case progress and
// failures go to `log` (may be null). Returns non-OK only on harness
// errors; oracle failures are counted, minimized and written as artifacts.
StatusOr<FuzzStats> RunFuzz(uint64_t seed_start, int num_seeds,
                            const FuzzOptions& options, std::ostream* log);

}  // namespace gsopt::testing

#endif  // GSOPT_TESTING_FUZZ_H_
