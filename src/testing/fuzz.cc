#include "testing/fuzz.h"

#include <chrono>
#include <cstdio>
#include <ostream>

#include "relational/datagen.h"
#include "testing/artifact.h"

namespace gsopt::testing {

FuzzOptions FuzzOptions::Default() {
  FuzzOptions opt;
  // General-class generation: roughly half the cases carry a GROUP BY
  // view, and ON atoms above a view reference its aggregate often enough
  // to keep aggregated-column predicates above the 20% coverage gate.
  opt.query.view_prob = 0.5;
  opt.query.agg_pred_prob = 0.65;
  opt.query.distinct_prob = 0.3;
  opt.query.agg_arith_prob = 0.3;
  opt.query.dup_pair_prob = 0.15;
  opt.query.extra_atom_prob = 0.5;
  opt.query.loj_prob = 0.35;
  opt.query.foj_prob = 0.08;
  // Roughly a third of the cases carry a root ORDER BY, so the order
  // oracle and the sort enforcer's interaction with every other oracle
  // (TLP wrapping, plan caching, round trips) get steady coverage.
  opt.query.order_by_prob = 0.35;
  return opt;
}

FuzzCase MakeFuzzCase(uint64_t seed, const FuzzOptions& options) {
  FuzzCase fc;
  fc.seed = seed;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  RandomQueryOptions qopt = options.query;
  qopt.num_rels = static_cast<int>(
      rng.Uniform(options.min_rels, options.max_rels));
  fc.query = MakeGeneralRandomQuery(qopt, &rng, &fc.features);

  std::vector<std::string> cols;
  for (int c = 0; c < qopt.num_cols; ++c) {
    cols.push_back(std::string(1, static_cast<char>('a' + c)));
  }
  for (int i = 1; i <= qopt.num_rels; ++i) {
    RandomRelationOptions ropt;
    ropt.num_rows =
        static_cast<int>(rng.Uniform(options.min_rows, options.max_rows));
    ropt.domain = options.domain;
    ropt.null_fraction = rng.NextDouble() * options.max_null_fraction;
    std::string name = "r" + std::to_string(i);
    Relation rel = MakeRandomRelation(name, cols, ropt, &rng);
    GSOPT_CHECK(fc.catalog.Register(name, std::move(rel)).ok());
  }
  return fc;
}

std::string FuzzStats::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "fuzz: %d cases, %d failures, %d skipped | coverage: view %.1f%%, "
      "agg-pred %.1f%%, distinct %.1f%%, dup-pair %.1f%%, complex-pred "
      "%.1f%%, outer-join %.1f%%, order-by %.1f%% | %zu plans checked, "
      "%zu skipped | %.1fs (%.1f cases/s)",
      cases, failures, skipped, Pct(with_view), Pct(with_agg_pred),
      Pct(with_distinct), Pct(with_dup_pair), Pct(with_complex_pred),
      Pct(with_outer_join), Pct(with_order_by), plans_checked, plans_skipped,
      seconds, seconds > 0 ? cases / seconds : 0.0);
  std::string out = buf;
  if (chaos_trials > 0) {
    std::snprintf(buf, sizeof(buf),
                  " | chaos: %zu trials, %zu faults fired, %zu spilled runs",
                  chaos_trials, chaos_faults, chaos_spills);
    out += buf;
  }
  return out;
}

StatusOr<FuzzStats> RunFuzz(uint64_t seed_start, int num_seeds,
                            const FuzzOptions& options, std::ostream* log) {
  FuzzStats stats;
  auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&t0]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  for (int i = 0; i < num_seeds; ++i) {
    if (options.time_budget_sec > 0 && elapsed() > options.time_budget_sec) {
      if (log != nullptr) {
        *log << "fuzz: time budget reached after " << stats.cases
             << " cases\n";
      }
      break;
    }
    uint64_t seed = seed_start + static_cast<uint64_t>(i);
    FuzzCase fc = MakeFuzzCase(seed, options);
    ++stats.cases;
    if (fc.features.has_view) ++stats.with_view;
    if (fc.features.has_agg_pred) ++stats.with_agg_pred;
    if (fc.features.has_distinct) ++stats.with_distinct;
    if (fc.features.has_dup_pair) ++stats.with_dup_pair;
    if (fc.features.has_complex_pred) ++stats.with_complex_pred;
    if (fc.features.has_outer_join) ++stats.with_outer_join;
    if (fc.features.has_order_by) ++stats.with_order_by;

    Rng oracle_rng(seed ^ 0xfeedface12345678ULL);
    GSOPT_ASSIGN_OR_RETURN(
        OracleOutcome outcome,
        CheckQuery(fc.query, fc.catalog, options.oracle, &oracle_rng));
    stats.plans_checked += outcome.plans_checked;
    stats.plans_skipped += outcome.plans_skipped;
    stats.chaos_trials += outcome.chaos_trials;
    stats.chaos_faults += outcome.chaos_faults;
    stats.chaos_spills += outcome.chaos_spills;
    if (outcome.skipped) {
      ++stats.skipped;
      continue;
    }
    if (!outcome.failed) continue;

    ++stats.failures;
    if (log != nullptr) {
      *log << "seed " << seed << ": " << outcome.ToString() << "\n";
    }

    MinimizeOptions mopt;
    mopt.oracle = options.oracle;
    mopt.max_rounds = options.minimize_rounds;
    GSOPT_ASSIGN_OR_RETURN(
        MinimizedCase minimized,
        Minimize(fc.query, fc.catalog, outcome.failure, mopt));
    if (log != nullptr) {
      *log << "  minimized: " << minimized.reductions << " reductions, "
           << minimized.query->BaseRels().size() << " relations"
           << (minimized.reproduced ? "" : " (NOT re-reproduced; unreduced)")
           << "\n";
    }

    if (!options.artifact_dir.empty()) {
      std::string dir =
          options.artifact_dir + "/seed" + std::to_string(seed);
      std::string note =
          "oracle: " + OracleKindName(minimized.failure.kind) + "\n" +
          "detail: " + minimized.failure.detail + "\n" + "reductions: " +
          std::to_string(minimized.reductions) +
          (minimized.reproduced ? "" : " (original failure did not reproduce "
                                       "under probe seeds; case unreduced)");
      GSOPT_RETURN_IF_ERROR(
          WriteRepro(dir, minimized.query, minimized.catalog, seed, note));
      stats.failure_dirs.push_back(dir);
      if (log != nullptr) *log << "  artifact: " << dir << "\n";
    }
    if (stats.failures >= options.max_failures) {
      if (log != nullptr) {
        *log << "fuzz: stopping after " << stats.failures << " failures\n";
      }
      break;
    }
  }
  stats.seconds = elapsed();
  return stats;
}

}  // namespace gsopt::testing
