#include "testing/minimize.h"

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gsopt::testing {

namespace {

// Drops every atom whose relations are not fully contained in `vis`.
Predicate FilterPredicate(const Predicate& p, const std::set<std::string>& vis) {
  Predicate out;
  for (const Atom& a : p.atoms()) {
    bool ok = true;
    for (const std::string& rel : a.RelNames()) {
      if (vis.count(rel) == 0) ok = false;
    }
    if (ok) out.AddAtom(a);
  }
  return out;
}

// Rebuilds `n` keeping only base relations in `keep`. Predicates, GROUP BY
// specs, preserved groups and projections are filtered down to columns that
// remain visible; operators left with nothing to do dissolve into their
// child. `vis` reports the relation qualifiers (including view aliases)
// visible above the returned node. Returns null when nothing survives.
NodePtr PruneToRels(const NodePtr& n, const std::set<std::string>& keep,
                    std::set<std::string>* vis) {
  switch (n->kind()) {
    case OpKind::kLeaf:
      if (keep.count(n->table()) == 0) return nullptr;
      vis->insert(n->table());
      return n;
    case OpKind::kSelect:
    case OpKind::kGeneralizedSelection: {
      NodePtr child = PruneToRels(n->left(), keep, vis);
      if (child == nullptr) return nullptr;
      Predicate p = FilterPredicate(n->pred(), *vis);
      if (p.IsTrue()) return child;
      if (n->kind() == OpKind::kSelect) return Node::Select(child, p);
      std::vector<exec::PreservedGroup> groups;
      for (const exec::PreservedGroup& g : n->groups()) {
        exec::PreservedGroup kept;
        for (const std::string& rel : g) {
          if (vis->count(rel)) kept.insert(rel);
        }
        if (!kept.empty()) groups.push_back(std::move(kept));
      }
      return Node::GeneralizedSelection(child, p, groups);
    }
    case OpKind::kProject: {
      NodePtr child = PruneToRels(n->left(), keep, vis);
      if (child == nullptr) return nullptr;
      std::vector<Attribute> src, dst;
      const std::vector<Attribute>& s = n->projection();
      const std::vector<Attribute>& d = n->projection_out();
      for (size_t i = 0; i < s.size(); ++i) {
        if (vis->count(s[i].rel)) {
          src.push_back(s[i]);
          dst.push_back(d[i]);
        }
      }
      if (src.empty()) return child;
      std::set<std::string> out_vis;
      for (const Attribute& a : dst) out_vis.insert(a.rel);
      *vis = std::move(out_vis);
      return Node::ProjectAs(child, std::move(src), std::move(dst));
    }
    case OpKind::kSort: {
      NodePtr child = PruneToRels(n->left(), keep, vis);
      if (child == nullptr) return nullptr;
      exec::SortSpec spec;
      for (const exec::SortKey& k : n->sort_spec()) {
        if (vis->count(k.attr.rel)) spec.push_back(k);
      }
      if (spec.empty()) return child;
      return Node::Sort(child, std::move(spec));
    }
    case OpKind::kGroupBy: {
      NodePtr child = PruneToRels(n->left(), keep, vis);
      if (child == nullptr) return nullptr;
      exec::GroupBySpec spec;
      spec.synthetic_vid = n->groupby().synthetic_vid;
      for (const Attribute& g : n->groupby().group_cols) {
        if (vis->count(g.rel)) spec.group_cols.push_back(g);
      }
      for (const std::string& rel : n->groupby().group_vid_rels) {
        if (vis->count(rel)) spec.group_vid_rels.push_back(rel);
      }
      for (const exec::AggSpec& agg : n->groupby().aggs) {
        bool ok = true;
        if (agg.input != nullptr) {
          std::vector<Attribute> cols;
          agg.input->CollectColumns(&cols);
          for (const Attribute& c : cols) {
            if (vis->count(c.rel) == 0) ok = false;
          }
        }
        if (agg.func == exec::AggFunc::kCountPresence &&
            vis->count(agg.presence_rel) == 0) {
          ok = false;
        }
        if (ok) spec.aggs.push_back(agg);
      }
      if (spec.group_cols.empty() && spec.aggs.empty()) return child;
      for (const exec::AggSpec& agg : spec.aggs) vis->insert(agg.out_rel);
      return Node::GroupBy(child, spec);
    }
    default: {  // binary operators
      std::set<std::string> lvis, rvis;
      NodePtr l = PruneToRels(n->left(), keep, &lvis);
      NodePtr r = PruneToRels(n->right(), keep, &rvis);
      if (l == nullptr && r == nullptr) return nullptr;
      if (l == nullptr || r == nullptr) {
        const NodePtr& survivor = l == nullptr ? r : l;
        vis->insert(l == nullptr ? rvis.begin() : lvis.begin(),
                    l == nullptr ? rvis.end() : lvis.end());
        return survivor;
      }
      vis->insert(lvis.begin(), lvis.end());
      vis->insert(rvis.begin(), rvis.end());
      Predicate p = FilterPredicate(n->pred(), *vis);
      if (n->kind() == OpKind::kMgoj) {
        std::vector<exec::PreservedGroup> groups;
        for (const exec::PreservedGroup& g : n->groups()) {
          exec::PreservedGroup kept;
          for (const std::string& rel : g) {
            if (vis->count(rel)) kept.insert(rel);
          }
          if (!kept.empty()) groups.push_back(std::move(kept));
        }
        return Node::Mgoj(l, r, p, groups);
      }
      return Node::Binary(n->kind(), l, r, p);
    }
  }
}

// Applies `edit` to the predicate of the `target`-th predicate-bearing
// node in preorder; all other nodes are rebuilt unchanged.
NodePtr EditPredicateAt(const NodePtr& n, int target, int* counter,
                        const std::function<Predicate(const Predicate&)>& edit) {
  bool has_pred = false;
  switch (n->kind()) {
    case OpKind::kSelect:
    case OpKind::kGeneralizedSelection:
    case OpKind::kInnerJoin:
    case OpKind::kLeftOuterJoin:
    case OpKind::kRightOuterJoin:
    case OpKind::kFullOuterJoin:
    case OpKind::kAntiJoin:
    case OpKind::kSemiJoin:
    case OpKind::kMgoj:
      has_pred = true;
      break;
    default:
      break;
  }
  Predicate p = n->pred();
  if (has_pred && (*counter)++ == target) p = edit(p);
  NodePtr l = n->left() ? EditPredicateAt(n->left(), target, counter, edit)
                        : nullptr;
  NodePtr r = n->right() ? EditPredicateAt(n->right(), target, counter, edit)
                         : nullptr;
  switch (n->kind()) {
    case OpKind::kLeaf:
      return n;
    case OpKind::kSelect:
      return Node::Select(l, p);
    case OpKind::kGeneralizedSelection:
      return Node::GeneralizedSelection(l, p, n->groups());
    case OpKind::kProject:
      return Node::ProjectAs(l, n->projection(), n->projection_out());
    case OpKind::kGroupBy:
      return Node::GroupBy(l, n->groupby());
    case OpKind::kSort:
      return Node::Sort(l, n->sort_spec());
    case OpKind::kMgoj:
      return Node::Mgoj(l, r, p, n->groups());
    default:
      return Node::Binary(n->kind(), l, r, p);
  }
}

int CountPredicateNodes(const NodePtr& n) {
  int count = 0;
  std::function<void(const NodePtr&)> walk = [&](const NodePtr& node) {
    if (node == nullptr) return;
    switch (node->kind()) {
      case OpKind::kLeaf:
      case OpKind::kProject:
      case OpKind::kGroupBy:
      case OpKind::kSort:
        break;
      default:
        ++count;
    }
    walk(node->left());
    walk(node->right());
  };
  walk(n);
  return count;
}

Predicate PredicateOfNode(const NodePtr& n, int target) {
  Predicate result;
  int counter = 0;
  EditPredicateAt(n, target, &counter, [&](const Predicate& p) {
    result = p;
    return p;
  });
  return result;
}

// Rebuilds the catalog with only the tables in `keep` (copies; base-table
// row ids survive).
Catalog CatalogForRels(const Catalog& catalog, const std::set<std::string>& keep) {
  Catalog out;
  for (const std::string& name : catalog.TableNames()) {
    if (keep.count(name) == 0) continue;
    const Relation* rel = catalog.Find(name);
    GSOPT_CHECK(rel != nullptr);
    GSOPT_CHECK(out.Register(name, *rel).ok());
  }
  return out;
}

// The catalog with `table` replaced by the subset of its rows for which
// keep_row is true.
Catalog CatalogWithRows(const Catalog& catalog, const std::string& table,
                        const std::vector<bool>& keep_row) {
  Catalog out;
  for (const std::string& name : catalog.TableNames()) {
    const Relation* rel = catalog.Find(name);
    GSOPT_CHECK(rel != nullptr);
    if (name != table) {
      GSOPT_CHECK(out.Register(name, *rel).ok());
      continue;
    }
    Relation reduced(rel->schema(), rel->vschema());
    for (int64_t i = 0; i < rel->NumRows(); ++i) {
      if (keep_row[static_cast<size_t>(i)]) reduced.Add(rel->row(i));
    }
    GSOPT_CHECK(out.Register(name, std::move(reduced)).ok());
  }
  return out;
}

class Minimizer {
 public:
  Minimizer(const OracleFailure& original, const MinimizeOptions& options)
      : original_(original) {
    // Probe with only the failing oracle enabled: reductions must keep the
    // same class of failure alive, and probing is much cheaper.
    probe_opt_ = options.oracle;
    probe_opt_.run_plan_space = original.kind == OracleKind::kPlanSpace;
    probe_opt_.run_executor = original.kind == OracleKind::kExecutor;
    probe_opt_.run_degradation = original.kind == OracleKind::kDegradation;
    probe_opt_.run_tlp = original.kind == OracleKind::kTlp;
    probe_opt_.run_round_trip = original.kind == OracleKind::kRoundTrip;
  }

  // Does the same oracle kind still fail on this candidate? The TLP oracle
  // draws a random column, so it gets several probe seeds; the others are
  // RNG-independent.
  bool Probe(const NodePtr& query, const Catalog& catalog,
             OracleFailure* failure) {
    int attempts = original_.kind == OracleKind::kTlp ? 4 : 1;
    for (int i = 0; i < attempts; ++i) {
      Rng rng(0x5eed0000 + static_cast<uint64_t>(i));
      auto outcome = CheckQuery(query, catalog, probe_opt_, &rng);
      if (!outcome.ok()) continue;  // broken candidate: not a reproducer
      if (outcome->failed && outcome->failure.kind == original_.kind) {
        if (failure != nullptr) *failure = outcome->failure;
        return true;
      }
    }
    return false;
  }

 private:
  OracleFailure original_;
  OracleOptions probe_opt_;
};

}  // namespace

StatusOr<MinimizedCase> Minimize(const NodePtr& query, const Catalog& catalog,
                                 const OracleFailure& original,
                                 const MinimizeOptions& options) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  Minimizer minimizer(original, options);

  MinimizedCase best;
  best.query = query;
  best.catalog = CatalogForRels(catalog, query->BaseRels());
  best.failure = original;
  if (!minimizer.Probe(best.query, best.catalog, &best.failure)) {
    return best;  // reproduced=false: hand back the original unreduced
  }
  best.reproduced = true;

  for (int round = 0; round < options.max_rounds; ++round) {
    int before = best.reductions;

    // 1. Drop one base relation at a time.
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      std::set<std::string> rels = best.query->BaseRels();
      if (rels.size() <= 1) break;
      for (const std::string& victim : rels) {
        std::set<std::string> keep = rels;
        keep.erase(victim);
        std::set<std::string> vis;
        NodePtr candidate = PruneToRels(best.query, keep, &vis);
        if (candidate == nullptr) continue;
        Catalog reduced = CatalogForRels(best.catalog, candidate->BaseRels());
        OracleFailure failure;
        if (minimizer.Probe(candidate, reduced, &failure)) {
          best.query = candidate;
          best.catalog = std::move(reduced);
          best.failure = failure;
          ++best.reductions;
          shrunk = true;
          break;
        }
      }
    }

    // 2. Strip root wrappers (projection / selection / sort / group-by).
    while (best.query->kind() == OpKind::kProject ||
           best.query->kind() == OpKind::kSelect ||
           best.query->kind() == OpKind::kSort ||
           best.query->kind() == OpKind::kGroupBy ||
           best.query->kind() == OpKind::kGeneralizedSelection) {
      NodePtr candidate = best.query->left();
      OracleFailure failure;
      if (!minimizer.Probe(candidate, best.catalog, &failure)) break;
      best.query = candidate;
      best.failure = failure;
      ++best.reductions;
    }

    // 3. Drop predicate conjuncts one at a time.
    shrunk = true;
    while (shrunk) {
      shrunk = false;
      int num_nodes = CountPredicateNodes(best.query);
      for (int node = 0; node < num_nodes && !shrunk; ++node) {
        int atoms = PredicateOfNode(best.query, node).NumAtoms();
        for (int drop = 0; drop < atoms; ++drop) {
          int counter = 0;
          NodePtr candidate =
              EditPredicateAt(best.query, node, &counter,
                              [drop](const Predicate& p) {
                                Predicate out;
                                for (int i = 0; i < p.NumAtoms(); ++i) {
                                  if (i != drop) out.AddAtom(p.atom(i));
                                }
                                return out;
                              });
          OracleFailure failure;
          if (minimizer.Probe(candidate, best.catalog, &failure)) {
            best.query = candidate;
            best.failure = failure;
            ++best.reductions;
            shrunk = true;
            break;
          }
        }
      }
    }

    // 4. ddmin over each table's rows: remove chunks, halving sizes.
    for (const std::string& table : best.query->BaseRels()) {
      const Relation* rel = best.catalog.Find(table);
      if (rel == nullptr) continue;
      int64_t n = rel->NumRows();
      for (int64_t chunk = n / 2; chunk >= 1; chunk /= 2) {
        int64_t i = 0;
        while (i < best.catalog.Find(table)->NumRows()) {
          int64_t rows = best.catalog.Find(table)->NumRows();
          std::vector<bool> keep(static_cast<size_t>(rows), true);
          for (int64_t j = i; j < std::min(rows, i + chunk); ++j) {
            keep[static_cast<size_t>(j)] = false;
          }
          Catalog candidate = CatalogWithRows(best.catalog, table, keep);
          OracleFailure failure;
          if (minimizer.Probe(best.query, candidate, &failure)) {
            best.catalog = std::move(candidate);
            best.failure = failure;
            ++best.reductions;
          } else {
            i += chunk;
          }
        }
      }
    }

    if (best.reductions == before) break;  // fixpoint
  }
  return best;
}

}  // namespace gsopt::testing
