// gsopt wire protocol: length-prefixed binary frames over TCP.
//
// Every frame is
//
//   [u32 length][u8 type][payload of `length - 1` bytes]
//
// with all integers little-endian and `length` covering the type byte plus
// the payload (so a frame occupies 4 + length bytes on the wire). The
// protocol is strictly request/response per connection: the client may
// pipeline frames, but the server answers them in order, one response
// frame per request frame. Concurrency comes from opening more
// connections, which is also how the load generator drives the admission
// machinery.
//
//   client                               server
//   ------                               ------
//   HELLO{version, tenant}        ->
//                                 <-     HELLO_OK{version, info}
//   QUERY{sql}                    ->
//                                 <-     ROWS{...} | ERROR{...}
//   PREPARE{sql}                  ->
//                                 <-     PREPARED{stmt_id, num_params}
//                                        | ERROR{...}
//   EXECUTE{stmt_id, values}      ->
//                                 <-     ROWS{...} | ERROR{...}
//
// The ROWS frame carries the serving disposition ahead of the data --
// cache-hit flag, degradation (did the optimizer's fallback ladder answer
// from a lower rung / was the plan space truncated), transient retries --
// so a client can observe *how* its query was served without a side
// channel. The ERROR frame leads with the wire-stable ErrorClass byte
// (base/status.h): `shed` means the admission controller refused the work
// before spending any budget (retry later / elsewhere), `resource-
// exhausted` means an admitted query tripped its tenant caps mid-flight
// (an identical retry meets the identical cap).
//
// Values travel as [u8 tag][body]: NULL (no body), INT64 (8 bytes),
// DOUBLE (8-byte IEEE bit pattern), STRING (u32 length + bytes) --
// exactly the engine's Value taxonomy (relational/value.h).
#ifndef GSOPT_SERVER_PROTOCOL_H_
#define GSOPT_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace gsopt::server {

// Protocol revision; bumped on any incompatible frame change. HELLO
// carries the client's revision and the server rejects mismatches, so a
// stale client fails its handshake with a typed error instead of
// misparsing frames.
inline constexpr uint32_t kProtocolVersion = 1;

// A frame longer than this is a protocol error (garbage length prefix or
// a hostile client), not a legitimate result: the server disconnects
// rather than allocating unbounded buffer space.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

// Frame type bytes. Wire-stable: append only, never renumber.
enum class FrameType : uint8_t {
  kHello = 1,     // client->server: u32 version, str tenant
  kHelloOk = 2,   // server->client: u32 version, str server_info
  kQuery = 3,     // client->server: str sql
  kPrepare = 4,   // client->server: str sql
  kPrepared = 5,  // server->client: u64 stmt_id, u32 num_params
  kExecute = 6,   // client->server: u64 stmt_id, u32 n, n values
  kRows = 7,      // server->client: disposition + schema + rows
  kError = 8,     // server->client: u8 class, u8 code, str message
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// ---------------------------------------------------------------------------
// Payload building blocks (append to / read from a std::string buffer).

void AppendU8(std::string* buf, uint8_t v);
void AppendU32(std::string* buf, uint32_t v);
void AppendU64(std::string* buf, uint64_t v);
void AppendString(std::string* buf, const std::string& s);
void AppendValue(std::string* buf, const Value& v);

// Sequential payload reader. Every Read* returns false past the end (or on
// a malformed value tag) and poisons the reader; callers check ok() once
// at the end of a fixed-shape decode or per-read when lengths are
// data-dependent.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& buf) : buf_(buf) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadString(std::string* v);
  bool ReadValue(Value* v);

  bool ok() const { return ok_; }
  // Every byte consumed: a well-formed frame has no trailing garbage.
  bool AtEnd() const { return ok_ && pos_ == buf_.size(); }

 private:
  bool Take(size_t n, const char** out);

  const std::string& buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Whole-payload encode/decode for the composite frames.

// The serving disposition + result data carried by a ROWS frame; also the
// client-side decoded form.
struct WireResult {
  bool cache_hit = false;
  bool degraded = false;    // fallback rung below requested, or truncated
  uint8_t rung = 0;         // FallbackRung that produced the plan
  uint32_t transient_retries = 0;
  std::vector<std::string> columns;  // qualified names, e.g. "r1.a"
  std::vector<std::vector<Value>> rows;
};

std::string EncodeHello(uint32_t version, const std::string& tenant);
Status DecodeHello(const std::string& payload, uint32_t* version,
                   std::string* tenant);

std::string EncodeHelloOk(uint32_t version, const std::string& info);
Status DecodeHelloOk(const std::string& payload, uint32_t* version,
                     std::string* info);

std::string EncodeSql(const std::string& sql);
Status DecodeSql(const std::string& payload, std::string* sql);

std::string EncodePrepared(uint64_t stmt_id, uint32_t num_params);
Status DecodePrepared(const std::string& payload, uint64_t* stmt_id,
                      uint32_t* num_params);

std::string EncodeExecute(uint64_t stmt_id, const std::vector<Value>& params);
Status DecodeExecute(const std::string& payload, uint64_t* stmt_id,
                     std::vector<Value>* params);

// Encodes disposition + the relation's real (visible) columns and rows.
// Virtual row-id attributes never travel: they are an engine-internal
// bookkeeping detail (relational/schema.h).
std::string EncodeRows(const WireResult& result, const Relation& relation);
Status DecodeRows(const std::string& payload, WireResult* out);

// ERROR frame: the wire-stable class byte first (what a client switches
// on), then the internal StatusCode byte and message (diagnostics only --
// clients must not dispatch on them).
std::string EncodeError(const Status& status);
// Reconstructs a Status whose error_class() round-trips; the returned
// class out-param is the authoritative wire value.
Status DecodeError(const std::string& payload, ErrorClass* cls,
                   std::string* message);

// ---------------------------------------------------------------------------
// Blocking framed I/O over a connected socket (client side and tests; the
// server's event loop does its own non-blocking buffering). Both loop over
// short reads/writes; ReadFrame fails with kUnavailable on EOF/IO errors
// and kInvalidArgument on an oversized length prefix.

Status WriteFrame(int fd, FrameType type, const std::string& payload);
StatusOr<Frame> ReadFrame(int fd);

// Extracts one complete frame from the front of `buf` (the server's
// per-connection read buffer), erasing the consumed bytes. Returns:
// 1 = frame extracted, 0 = need more bytes, -1 = protocol error (frame
// length exceeds kMaxFrameBytes).
int ExtractFrame(std::string* buf, Frame* out);

}  // namespace gsopt::server

#endif  // GSOPT_SERVER_PROTOCOL_H_
