// Minimal blocking client for the gsopt wire protocol (tests, loadgen,
// command-line poking). One Client is one TCP connection; the synchronous
// helpers (Query/Prepare/Execute) are strict request/response, while the
// split Send*/RecvResponse surface lets a load generator pipeline
// requests from one thread and drain responses from another (the two
// halves are independently thread-safe: one sender and one receiver may
// run concurrently, but not two senders).
#ifndef GSOPT_SERVER_CLIENT_H_
#define GSOPT_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace gsopt::server {

// A decoded server response: exactly one of rows / prepared / error per
// request.
struct Response {
  FrameType type = FrameType::kError;
  // ERROR fields
  ErrorClass error_class = ErrorClass::kOk;
  std::string error_message;
  // ROWS fields
  WireResult result;
  // PREPARED fields
  uint64_t stmt_id = 0;
  uint32_t num_params = 0;

  bool is_error() const { return type == FrameType::kError; }
  bool shed() const {
    return is_error() && error_class == ErrorClass::kShed;
  }
};

// Rebuilds a Status from a wire error class + message, preserving
// error_class() round-tripping (shed stays shed, transient stays
// transient) so client-side retry policy can key on the same contract.
Status StatusFromWire(ErrorClass cls, const std::string& message);

class Client {
 public:
  // Connects and runs the HELLO handshake under `tenant`.
  static StatusOr<Client> Connect(const std::string& host, uint16_t port,
                                  const std::string& tenant);

  Client() = default;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() { Close(); }

  void Close();
  bool connected() const { return fd_ >= 0; }

  // --- Synchronous request/response. An ERROR frame comes back as a
  // non-ok Status whose error_class() matches the wire class.

  StatusOr<WireResult> Query(const std::string& sql);
  // Returns the statement id; num_params (if non-null) gets the $n count.
  StatusOr<uint64_t> Prepare(const std::string& sql,
                             uint32_t* num_params = nullptr);
  StatusOr<WireResult> Execute(uint64_t stmt_id,
                               const std::vector<Value>& params);

  // --- Pipelined surface: send without waiting, receive in order.

  Status SendQuery(const std::string& sql);
  Status SendExecute(uint64_t stmt_id, const std::vector<Value>& params);
  // Blocks for the next response frame (ROWS/PREPARED/ERROR all decode
  // into Response).
  StatusOr<Response> RecvResponse();

 private:
  StatusOr<Response> RoundTrip(FrameType type, const std::string& payload);

  int fd_ = -1;
};

}  // namespace gsopt::server

#endif  // GSOPT_SERVER_CLIENT_H_
