#include "server/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gsopt::server {

namespace {

// Value tag bytes mirror ValueType but are independently frozen: the enum
// is internal, the wire is not.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

}  // namespace

void AppendU8(std::string* buf, uint8_t v) {
  buf->push_back(static_cast<char>(v));
}

void AppendU32(std::string* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendString(std::string* buf, const std::string& s) {
  AppendU32(buf, static_cast<uint32_t>(s.size()));
  buf->append(s);
}

void AppendValue(std::string* buf, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      AppendU8(buf, kTagNull);
      return;
    case ValueType::kInt:
      AppendU8(buf, kTagInt);
      AppendU64(buf, static_cast<uint64_t>(v.AsInt()));
      return;
    case ValueType::kDouble: {
      AppendU8(buf, kTagDouble);
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      AppendU64(buf, bits);
      return;
    }
    case ValueType::kString:
      AppendU8(buf, kTagString);
      AppendString(buf, v.AsString());
      return;
  }
}

bool PayloadReader::Take(size_t n, const char** out) {
  if (!ok_ || buf_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = buf_.data() + pos_;
  pos_ += n;
  return true;
}

bool PayloadReader::ReadU8(uint8_t* v) {
  const char* p;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool PayloadReader::ReadU32(uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = r;
  return true;
}

bool PayloadReader::ReadU64(uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = r;
  return true;
}

bool PayloadReader::ReadString(std::string* v) {
  uint32_t len;
  if (!ReadU32(&len)) return false;
  const char* p;
  if (!Take(len, &p)) return false;
  v->assign(p, len);
  return true;
}

bool PayloadReader::ReadValue(Value* v) {
  uint8_t tag;
  if (!ReadU8(&tag)) return false;
  switch (tag) {
    case kTagNull:
      *v = Value::Null();
      return true;
    case kTagInt: {
      uint64_t bits;
      if (!ReadU64(&bits)) return false;
      *v = Value::Int(static_cast<int64_t>(bits));
      return true;
    }
    case kTagDouble: {
      uint64_t bits;
      if (!ReadU64(&bits)) return false;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *v = Value::Double(d);
      return true;
    }
    case kTagString: {
      std::string s;
      if (!ReadString(&s)) return false;
      *v = Value::String(std::move(s));
      return true;
    }
    default:
      ok_ = false;
      return false;
  }
}

// ---------------------------------------------------------------------------

std::string EncodeHello(uint32_t version, const std::string& tenant) {
  std::string p;
  AppendU32(&p, version);
  AppendString(&p, tenant);
  return p;
}

Status DecodeHello(const std::string& payload, uint32_t* version,
                   std::string* tenant) {
  PayloadReader r(payload);
  if (!r.ReadU32(version) || !r.ReadString(tenant) || !r.AtEnd()) {
    return Status::InvalidArgument("malformed HELLO frame");
  }
  return Status::OK();
}

std::string EncodeHelloOk(uint32_t version, const std::string& info) {
  std::string p;
  AppendU32(&p, version);
  AppendString(&p, info);
  return p;
}

Status DecodeHelloOk(const std::string& payload, uint32_t* version,
                     std::string* info) {
  PayloadReader r(payload);
  if (!r.ReadU32(version) || !r.ReadString(info) || !r.AtEnd()) {
    return Status::InvalidArgument("malformed HELLO_OK frame");
  }
  return Status::OK();
}

std::string EncodeSql(const std::string& sql) {
  std::string p;
  AppendString(&p, sql);
  return p;
}

Status DecodeSql(const std::string& payload, std::string* sql) {
  PayloadReader r(payload);
  if (!r.ReadString(sql) || !r.AtEnd()) {
    return Status::InvalidArgument("malformed QUERY/PREPARE frame");
  }
  return Status::OK();
}

std::string EncodePrepared(uint64_t stmt_id, uint32_t num_params) {
  std::string p;
  AppendU64(&p, stmt_id);
  AppendU32(&p, num_params);
  return p;
}

Status DecodePrepared(const std::string& payload, uint64_t* stmt_id,
                      uint32_t* num_params) {
  PayloadReader r(payload);
  if (!r.ReadU64(stmt_id) || !r.ReadU32(num_params) || !r.AtEnd()) {
    return Status::InvalidArgument("malformed PREPARED frame");
  }
  return Status::OK();
}

std::string EncodeExecute(uint64_t stmt_id, const std::vector<Value>& params) {
  std::string p;
  AppendU64(&p, stmt_id);
  AppendU32(&p, static_cast<uint32_t>(params.size()));
  for (const Value& v : params) AppendValue(&p, v);
  return p;
}

Status DecodeExecute(const std::string& payload, uint64_t* stmt_id,
                     std::vector<Value>* params) {
  PayloadReader r(payload);
  uint32_t n = 0;
  if (!r.ReadU64(stmt_id) || !r.ReadU32(&n)) {
    return Status::InvalidArgument("malformed EXECUTE frame");
  }
  params->clear();
  params->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    if (!r.ReadValue(&v)) {
      return Status::InvalidArgument("malformed EXECUTE parameter");
    }
    params->push_back(std::move(v));
  }
  if (!r.AtEnd()) return Status::InvalidArgument("malformed EXECUTE frame");
  return Status::OK();
}

std::string EncodeRows(const WireResult& result, const Relation& relation) {
  std::string p;
  AppendU8(&p, result.cache_hit ? 1 : 0);
  AppendU8(&p, result.degraded ? 1 : 0);
  AppendU8(&p, result.rung);
  AppendU32(&p, result.transient_retries);
  const Schema& schema = relation.schema();
  AppendU32(&p, static_cast<uint32_t>(schema.size()));
  for (int c = 0; c < schema.size(); ++c) {
    AppendString(&p, schema.attr(c).Qualified());
  }
  AppendU64(&p, static_cast<uint64_t>(relation.NumRows()));
  for (const Tuple& t : relation.rows()) {
    for (int c = 0; c < schema.size(); ++c) {
      AppendValue(&p, t.values[static_cast<size_t>(c)]);
    }
  }
  return p;
}

Status DecodeRows(const std::string& payload, WireResult* out) {
  PayloadReader r(payload);
  uint8_t cache_hit = 0, degraded = 0;
  uint32_t ncols = 0;
  uint64_t nrows = 0;
  if (!r.ReadU8(&cache_hit) || !r.ReadU8(&degraded) || !r.ReadU8(&out->rung) ||
      !r.ReadU32(&out->transient_retries) || !r.ReadU32(&ncols)) {
    return Status::InvalidArgument("malformed ROWS frame");
  }
  out->cache_hit = cache_hit != 0;
  out->degraded = degraded != 0;
  out->columns.clear();
  out->columns.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string name;
    if (!r.ReadString(&name)) {
      return Status::InvalidArgument("malformed ROWS schema");
    }
    out->columns.push_back(std::move(name));
  }
  if (!r.ReadU64(&nrows)) return Status::InvalidArgument("malformed ROWS frame");
  out->rows.clear();
  out->rows.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    std::vector<Value> row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      Value v;
      if (!r.ReadValue(&v)) return Status::InvalidArgument("malformed ROWS row");
      row.push_back(std::move(v));
    }
    out->rows.push_back(std::move(row));
  }
  if (!r.AtEnd()) return Status::InvalidArgument("malformed ROWS frame");
  return Status::OK();
}

std::string EncodeError(const Status& status) {
  std::string p;
  AppendU8(&p, static_cast<uint8_t>(status.error_class()));
  AppendU8(&p, static_cast<uint8_t>(status.code()));
  AppendString(&p, status.message());
  return p;
}

Status DecodeError(const std::string& payload, ErrorClass* cls,
                   std::string* message) {
  PayloadReader r(payload);
  uint8_t cls_byte = 0, code_byte = 0;
  if (!r.ReadU8(&cls_byte) || !r.ReadU8(&code_byte) ||
      !r.ReadString(message) || !r.AtEnd()) {
    return Status::InvalidArgument("malformed ERROR frame");
  }
  *cls = ErrorClassFromWire(cls_byte);
  return Status::OK();
}

// ---------------------------------------------------------------------------

Status WriteFrame(int fd, FrameType type, const std::string& payload) {
  std::string wire;
  wire.reserve(5 + payload.size());
  AppendU32(&wire, static_cast<uint32_t>(1 + payload.size()));
  AppendU8(&wire, static_cast<uint8_t>(type));
  wire.append(payload);
  size_t sent = 0;
  while (sent < wire.size()) {
    // MSG_NOSIGNAL: a peer that hung up mid-response must surface as
    // EPIPE, not kill the server with SIGPIPE.
    ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR)) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full (a slow reader): wait for writability rather
      // than spinning; a peer that stays unwritable is treated as gone.
      struct pollfd pfd{fd, POLLOUT, 0};
      int pr = ::poll(&pfd, 1, /*timeout_ms=*/5000);
      if (pr > 0) continue;
      return Status::Unavailable("write stalled: peer not draining");
    }
    return Status::Unavailable(std::string("write failed: ") +
                               std::strerror(errno));
  }
  return Status::OK();
}

StatusOr<Frame> ReadFrame(int fd) {
  auto read_exact = [fd](char* dst, size_t n) -> Status {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::read(fd, dst + got, n - got);
      if (r > 0) {
        got += static_cast<size_t>(r);
        continue;
      }
      if (r == 0) return Status::Unavailable("connection closed by peer");
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        struct pollfd pfd{fd, POLLIN, 0};
        if (::poll(&pfd, 1, /*timeout_ms=*/30000) > 0) continue;
        return Status::Unavailable("read timed out");
      }
      return Status::Unavailable(std::string("read failed: ") +
                                 std::strerror(errno));
    }
    return Status::OK();
  };

  char len_bytes[4];
  GSOPT_RETURN_IF_ERROR(read_exact(len_bytes, 4));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(len_bytes[i])) << (8 * i);
  }
  if (len < 1 || len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length " + std::to_string(len) +
                                   " outside [1, " +
                                   std::to_string(kMaxFrameBytes) + "]");
  }
  Frame f;
  char type_byte;
  GSOPT_RETURN_IF_ERROR(read_exact(&type_byte, 1));
  f.type = static_cast<FrameType>(static_cast<uint8_t>(type_byte));
  f.payload.resize(len - 1);
  if (len > 1) GSOPT_RETURN_IF_ERROR(read_exact(f.payload.data(), len - 1));
  return f;
}

int ExtractFrame(std::string* buf, Frame* out) {
  if (buf->size() < 4) return 0;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>((*buf)[i])) << (8 * i);
  }
  if (len < 1 || len > kMaxFrameBytes) return -1;
  if (buf->size() < 4u + len) return 0;
  out->type = static_cast<FrameType>(static_cast<uint8_t>((*buf)[4]));
  out->payload.assign(buf->data() + 5, len - 1);
  buf->erase(0, 4u + len);
  return 1;
}

}  // namespace gsopt::server
