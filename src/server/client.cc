#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace gsopt::server {

Status StatusFromWire(ErrorClass cls, const std::string& message) {
  switch (cls) {
    case ErrorClass::kOk:
      return Status::OK();
    case ErrorClass::kInvalid:
      return Status::InvalidArgument(message);
    case ErrorClass::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case ErrorClass::kTransient:
      return Status::Unavailable(message);
    case ErrorClass::kShed:
      return Status::Shed(message);
    case ErrorClass::kInternal:
      break;
  }
  return Status::Internal(message);
}

StatusOr<Client> Client::Connect(const std::string& host, uint16_t port,
                                 const std::string& tenant) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable("socket: " + std::string(::strerror(errno)));
  }
  sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Unavailable("connect: " + std::string(::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Client client;
  client.fd_ = fd;
  Status s =
      WriteFrame(fd, FrameType::kHello, EncodeHello(kProtocolVersion, tenant));
  if (!s.ok()) return s;
  StatusOr<Frame> reply = ReadFrame(fd);
  if (!reply.ok()) return reply.status();
  if (reply.value().type == FrameType::kError) {
    ErrorClass cls;
    std::string message;
    Status ds = DecodeError(reply.value().payload, &cls, &message);
    return ds.ok() ? StatusFromWire(cls, message) : ds;
  }
  if (reply.value().type != FrameType::kHelloOk) {
    return Status::Internal("handshake: unexpected frame type");
  }
  uint32_t version = 0;
  std::string info;
  Status ds = DecodeHelloOk(reply.value().payload, &version, &info);
  if (!ds.ok()) return ds;
  return client;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Response> Client::RecvResponse() {
  StatusOr<Frame> frame = ReadFrame(fd_);
  if (!frame.ok()) return frame.status();
  Response resp;
  resp.type = frame.value().type;
  switch (frame.value().type) {
    case FrameType::kRows: {
      Status s = DecodeRows(frame.value().payload, &resp.result);
      if (!s.ok()) return s;
      return resp;
    }
    case FrameType::kPrepared: {
      Status s =
          DecodePrepared(frame.value().payload, &resp.stmt_id, &resp.num_params);
      if (!s.ok()) return s;
      return resp;
    }
    case FrameType::kError: {
      Status s = DecodeError(frame.value().payload, &resp.error_class,
                             &resp.error_message);
      if (!s.ok()) return s;
      return resp;
    }
    default:
      return Status::Internal("unexpected response frame type " +
                              std::to_string(
                                  static_cast<int>(frame.value().type)));
  }
}

StatusOr<Response> Client::RoundTrip(FrameType type,
                                     const std::string& payload) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  Status s = WriteFrame(fd_, type, payload);
  if (!s.ok()) return s;
  return RecvResponse();
}

StatusOr<WireResult> Client::Query(const std::string& sql) {
  StatusOr<Response> resp = RoundTrip(FrameType::kQuery, EncodeSql(sql));
  if (!resp.ok()) return resp.status();
  if (resp.value().is_error()) {
    return StatusFromWire(resp.value().error_class,
                          resp.value().error_message);
  }
  if (resp.value().type != FrameType::kRows) {
    return Status::Internal("QUERY answered with non-ROWS frame");
  }
  return std::move(resp).value().result;
}

StatusOr<uint64_t> Client::Prepare(const std::string& sql,
                                   uint32_t* num_params) {
  StatusOr<Response> resp = RoundTrip(FrameType::kPrepare, EncodeSql(sql));
  if (!resp.ok()) return resp.status();
  if (resp.value().is_error()) {
    return StatusFromWire(resp.value().error_class,
                          resp.value().error_message);
  }
  if (resp.value().type != FrameType::kPrepared) {
    return Status::Internal("PREPARE answered with non-PREPARED frame");
  }
  if (num_params != nullptr) *num_params = resp.value().num_params;
  return resp.value().stmt_id;
}

StatusOr<WireResult> Client::Execute(uint64_t stmt_id,
                                     const std::vector<Value>& params) {
  StatusOr<Response> resp =
      RoundTrip(FrameType::kExecute, EncodeExecute(stmt_id, params));
  if (!resp.ok()) return resp.status();
  if (resp.value().is_error()) {
    return StatusFromWire(resp.value().error_class,
                          resp.value().error_message);
  }
  if (resp.value().type != FrameType::kRows) {
    return Status::Internal("EXECUTE answered with non-ROWS frame");
  }
  return std::move(resp).value().result;
}

Status Client::SendQuery(const std::string& sql) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  return WriteFrame(fd_, FrameType::kQuery, EncodeSql(sql));
}

Status Client::SendExecute(uint64_t stmt_id,
                           const std::vector<Value>& params) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  return WriteFrame(fd_, FrameType::kExecute, EncodeExecute(stmt_id, params));
}

}  // namespace gsopt::server
