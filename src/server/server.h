// gsopt_server core: a TCP serving layer over gsopt::Session.
//
// Topology (DESIGN.md §13): one dispatcher thread owns the listen socket
// and every connection's read side behind a poll() loop; N worker threads
// drain a bounded admission queue and run queries through one shared
// Session (whose sharded plan cache and statement-text memo are what make
// warm traffic cheap). The protocol is request/response per connection
// (clients pipeline, the server answers in order), so scaling comes from
// many connections multiplexed over the fixed worker pool -- the
// "millions of users" shape, minus the millions.
//
// Admission control, per request frame, in order:
//
//   1. draining?            -> shed (typed ERROR, class `shed`)
//   2. tenant quota full?   -> shed (per-tenant in-flight cap, counting
//                              queued + executing; a noisy tenant cannot
//                              occupy the whole worker pool)
//   3. queue at max_queue?  -> shed (global backlog bound: past it the
//                              server is in overload and queueing deeper
//                              only converts latency into timeouts)
//   4. admit: charge the tenant, enqueue. Every admitted request executes
//      under a fresh ResourceBudget built from its tenant's quota
//      (deadline / row cap / memory cap), so a single hostile query
//      degrades or fails alone -- the optimizer's fallback ladder and the
//      executor's spill path do the graceful part, and the ROWS frame
//      reports the degraded disposition.
//
// Overload shedding is therefore two-layered: hard sheds refuse work
// before it costs anything (the client sees class `shed` and retries
// elsewhere/later), while soft pressure -- an admission queue above its
// watermark -- shrinks the optimization deadline of admitted work
// (pressure_deadline_factor), pushing the fallback ladder toward cheaper
// rungs so the backlog drains faster. No request is ever silently
// dropped: every admitted frame gets exactly one ROWS or ERROR frame,
// shutdown drains in-flight work before closing sockets, and sheds are
// counted per cause in ServerStats.
#ifndef GSOPT_SERVER_SERVER_H_
#define GSOPT_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "server/protocol.h"

namespace gsopt::server {

// Per-tenant admission limits; the defaults admit everything and cap
// nothing (a trusted single-tenant deployment).
struct TenantQuota {
  // Requests queued or executing for this tenant at once.
  int max_concurrent = 1 << 20;
  // Per-request budget caps; microseconds(0) / kUnlimited = uncapped.
  std::chrono::microseconds deadline{0};
  uint64_t max_rows = ResourceBudget::kUnlimited;
  uint64_t max_memory = ResourceBudget::kUnlimited;

  TenantQuota& WithMaxConcurrent(int n) { max_concurrent = n; return *this; }
  TenantQuota& WithDeadline(std::chrono::microseconds d) {
    deadline = d;
    return *this;
  }
  TenantQuota& WithMaxRows(uint64_t n) { max_rows = n; return *this; }
  TenantQuota& WithMaxMemory(uint64_t n) { max_memory = n; return *this; }
};

struct ServerOptions {
  // Listen address. Port 0 binds an ephemeral port; read the actual one
  // back with GsoptServer::port() (how tests and the loopback loadgen
  // avoid collisions).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int num_workers = 4;
  // Global admission-queue bound (requests queued, not yet executing).
  size_t max_queue = 256;
  // Queue depth at which admitted requests start running with a shrunken
  // optimization deadline (quota.deadline * pressure_deadline_factor):
  // the soft-shedding rung before hard sheds. 0 = max_queue / 2.
  size_t pressure_watermark = 0;
  double pressure_deadline_factor = 0.25;
  // Admission limits for tenants without an explicit entry.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;
  // How long Stop() waits for in-flight work before closing sockets.
  std::chrono::milliseconds drain_timeout{10000};
  // The shared serving Session's configuration (plan cache sizing,
  // execution policy defaults, retry budget).
  SessionOptions session;
};

// Monotonic counters, readable while serving (relaxed atomic snapshots).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t requests_admitted = 0;
  uint64_t responses_rows = 0;
  uint64_t responses_error = 0;   // admitted work that failed (non-shed)
  uint64_t sheds_queue_full = 0;
  uint64_t sheds_tenant_quota = 0;
  uint64_t sheds_draining = 0;
  uint64_t degraded_served = 0;   // ROWS frames with the degraded bit set
  uint64_t protocol_errors = 0;   // malformed frames / bad handshakes
  uint64_t queue_high_water = 0;

  uint64_t sheds_total() const {
    return sheds_queue_full + sheds_tenant_quota + sheds_draining;
  }
  std::string ToString() const;
};

class GsoptServer {
 public:
  // The catalog is referenced, not copied; it must outlive the server and
  // must not be mutated while requests are in flight (quiesce first: stop
  // sending, wait for in_flight() == 0 -- the Session's epoch machinery
  // then re-optimizes stale templates on the next lookup).
  GsoptServer(const Catalog& catalog, ServerOptions options = {});
  ~GsoptServer();

  GsoptServer(const GsoptServer&) = delete;
  GsoptServer& operator=(const GsoptServer&) = delete;

  // Binds, listens and starts the dispatcher + worker threads.
  Status Start();
  // Graceful drain: stop accepting, shed new frames, wait (bounded by
  // drain_timeout) for admitted work to finish, then tear down.
  // Idempotent.
  void Stop();

  // The bound port (after Start); useful with port 0.
  uint16_t port() const { return port_; }
  ServerStats stats() const;
  // Requests admitted but not yet answered. Tests use this to quiesce
  // before a catalog mutation.
  size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  Session& session() { return *session_; }

 private:
  struct TenantState {
    TenantQuota quota;
    std::atomic<int> in_flight{0};
  };

  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();

    const int fd;
    // Dispatcher-only state (no lock needed): framing buffer + handshake.
    std::string inbuf;
    bool hello_done = false;
    TenantState* tenant = nullptr;

    // Guarded by mu: the per-connection request pipeline.
    std::mutex mu;
    std::deque<Frame> pending;
    bool busy = false;   // a frame is queued or executing
    bool alive = true;   // false once the dispatcher dropped the socket
    Frame current;       // the admitted frame a worker is handling

    // Serializes socket writes (dispatcher sheds vs worker responses are
    // already ordered by the busy flag; this keeps it airtight).
    std::mutex write_mu;

    // Worker-only (requests on one connection never run concurrently).
    std::map<uint64_t, PreparedStatement> stmts;
    uint64_t next_stmt_id = 1;
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void DispatchLoop();
  void WorkerLoop();
  // Reads whatever the socket has; returns false when the connection
  // should be dropped (EOF, error, oversized frame).
  bool ReadReady(const ConnPtr& conn);
  // Handshake + admission for the connection's next pending frame(s).
  void TryDispatch(const ConnPtr& conn);
  // One admitted request end-to-end on a worker thread.
  void ServeRequest(const ConnPtr& conn);
  Status HandleHello(const ConnPtr& conn, const Frame& f);
  void WriteError(const ConnPtr& conn, const Status& status);
  void DropConnection(int fd);
  void Wake();

  const Catalog& catalog_;
  ServerOptions options_;
  std::unique_ptr<Session> session_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  std::thread dispatcher_;
  std::vector<std::thread> workers_;

  // Dispatcher-owned connection table; guarded by conns_mu_ because
  // Stop() walks it from another thread.
  std::mutex conns_mu_;
  std::map<int, ConnPtr> conns_;

  // Admission queue (admitted requests waiting for a worker).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<ConnPtr> queue_;
  bool workers_should_exit_ = false;

  // Connections whose worker finished and may have more pending frames;
  // the dispatcher re-runs TryDispatch on them after a Wake().
  std::mutex recheck_mu_;
  std::vector<ConnPtr> recheck_;

  std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;

  std::atomic<size_t> in_flight_{0};
  std::condition_variable drain_cv_;  // waits on queue_mu_

  // Stats counters (relaxed; exactness matters per-counter, not across).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_admitted_{0};
  std::atomic<uint64_t> responses_rows_{0};
  std::atomic<uint64_t> responses_error_{0};
  std::atomic<uint64_t> sheds_queue_full_{0};
  std::atomic<uint64_t> sheds_tenant_quota_{0};
  std::atomic<uint64_t> sheds_draining_{0};
  std::atomic<uint64_t> degraded_served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> queue_high_water_{0};
};

}  // namespace gsopt::server

#endif  // GSOPT_SERVER_SERVER_H_
