#include "server/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <sstream>
#include <utility>

namespace gsopt::server {

namespace {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal("fcntl(O_NONBLOCK): " +
                            std::string(::strerror(errno)));
  }
  return Status::OK();
}

void BumpHighWater(std::atomic<uint64_t>* hw, uint64_t depth) {
  uint64_t cur = hw->load(std::memory_order_relaxed);
  while (depth > cur &&
         !hw->compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string ServerStats::ToString() const {
  std::ostringstream os;
  os << "accepted=" << connections_accepted << " admitted=" << requests_admitted
     << " rows=" << responses_rows << " errors=" << responses_error
     << " shed{queue=" << sheds_queue_full << " tenant=" << sheds_tenant_quota
     << " drain=" << sheds_draining << "}"
     << " degraded=" << degraded_served << " proto_errors=" << protocol_errors
     << " queue_hw=" << queue_high_water;
  return os.str();
}

GsoptServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

GsoptServer::GsoptServer(const Catalog& catalog, ServerOptions options)
    : catalog_(catalog), options_(std::move(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_queue < 1) options_.max_queue = 1;
  if (options_.pressure_watermark == 0) {
    options_.pressure_watermark = std::max<size_t>(1, options_.max_queue / 2);
  }
  session_ = std::make_unique<Session>(catalog_, options_.session);
}

GsoptServer::~GsoptServer() { Stop(); }

Status GsoptServer::Start() {
  if (running_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket: " + std::string(::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal("bind: " + std::string(::strerror(errno)));
  }
  if (::listen(listen_fd_, 128) < 0) {
    return Status::Internal("listen: " + std::string(::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  Status nb = SetNonBlocking(listen_fd_);
  if (!nb.ok()) return nb;

  if (::pipe(wake_pipe_) < 0) {
    return Status::Internal("pipe: " + std::string(::strerror(errno)));
  }
  (void)SetNonBlocking(wake_pipe_[0]);
  (void)SetNonBlocking(wake_pipe_[1]);

  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  return Status::OK();
}

void GsoptServer::Stop() {
  if (!running_.load()) return;
  draining_.store(true);
  Wake();

  // Bounded wait for admitted work to complete (new frames are shed the
  // moment draining_ flipped, so in_flight_ can only fall).
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait_for(lock, options_.drain_timeout, [this] {
      return in_flight_.load(std::memory_order_relaxed) == 0;
    });
    workers_should_exit_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  running_.store(false);  // dispatcher exits its loop
  Wake();
  if (dispatcher_.joinable()) dispatcher_.join();

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();  // last refs close the sockets
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
}

ServerStats GsoptServer::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  s.requests_admitted = requests_admitted_.load(std::memory_order_relaxed);
  s.responses_rows = responses_rows_.load(std::memory_order_relaxed);
  s.responses_error = responses_error_.load(std::memory_order_relaxed);
  s.sheds_queue_full = sheds_queue_full_.load(std::memory_order_relaxed);
  s.sheds_tenant_quota = sheds_tenant_quota_.load(std::memory_order_relaxed);
  s.sheds_draining = sheds_draining_.load(std::memory_order_relaxed);
  s.degraded_served = degraded_served_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  return s;
}

void GsoptServer::Wake() {
  if (wake_pipe_[1] >= 0) {
    char b = 1;
    ssize_t r = ::write(wake_pipe_[1], &b, 1);
    (void)r;  // pipe full just means a wakeup is already pending
  }
}

void GsoptServer::DropConnection(int fd) {
  ConnPtr conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    conn = it->second;
    conns_.erase(it);
  }
  // A worker may still hold the connection; mark it dead so the response
  // write is skipped. The socket closes when the last shared_ptr drops.
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->alive = false;
}

void GsoptServer::DispatchLoop() {
  std::vector<pollfd> pfds;
  std::vector<int> fds;  // parallel to pfds[2..]
  while (true) {
    // Re-dispatch connections whose worker just finished a frame.
    std::vector<ConnPtr> recheck;
    {
      std::lock_guard<std::mutex> lock(recheck_mu_);
      recheck.swap(recheck_);
    }
    for (const auto& c : recheck) TryDispatch(c);

    if (!running_.load()) break;

    pfds.clear();
    fds.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    bool accepting = !draining_.load();
    pfds.push_back({accepting ? listen_fd_ : -1, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& [fd, conn] : conns_) {
        pfds.push_back({fd, POLLIN, 0});
        fds.push_back(fd);
      }
    }

    int n = ::poll(pfds.data(), pfds.size(), 100 /*ms*/);
    if (n < 0 && errno != EINTR) break;
    if (n <= 0) continue;

    if (pfds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }

    if (pfds[1].revents & POLLIN) {
      while (true) {
        int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) break;
        if (!SetNonBlocking(cfd).ok()) {
          ::close(cfd);
          continue;
        }
        int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.emplace(cfd, std::make_shared<Connection>(cfd));
      }
    }

    for (size_t i = 2; i < pfds.size(); ++i) {
      if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      ConnPtr conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(fds[i - 2]);
        if (it == conns_.end()) continue;
        conn = it->second;
      }
      if (!ReadReady(conn)) {
        DropConnection(conn->fd);
      } else {
        TryDispatch(conn);
      }
    }
  }
}

bool GsoptServer::ReadReady(const ConnPtr& conn) {
  char buf[64 * 1024];
  while (true) {
    ssize_t r = ::read(conn->fd, buf, sizeof(buf));
    if (r > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(r));
      if (conn->inbuf.size() > kMaxFrameBytes + 5) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      continue;
    }
    if (r == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  // Slice complete frames into the pending queue.
  while (true) {
    Frame f;
    int rc = ExtractFrame(&conn->inbuf, &f);
    if (rc < 0) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (rc == 0) break;
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->pending.push_back(std::move(f));
    // A client that pipelines unboundedly without reading responses is
    // hostile; cap the backlog we will hold for it.
    if (conn->pending.size() > 4096) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  return true;
}

Status GsoptServer::HandleHello(const ConnPtr& conn, const Frame& f) {
  if (f.type != FrameType::kHello) {
    return Status::InvalidArgument("first frame must be HELLO");
  }
  uint32_t version = 0;
  std::string tenant;
  Status s = DecodeHello(f.payload, &version, &tenant);
  if (!s.ok()) return s;
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: client " + std::to_string(version) +
        ", server " + std::to_string(kProtocolVersion));
  }
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      auto state = std::make_unique<TenantState>();
      auto qit = options_.tenant_quotas.find(tenant);
      state->quota = qit != options_.tenant_quotas.end()
                         ? qit->second
                         : options_.default_quota;
      it = tenants_.emplace(tenant, std::move(state)).first;
    }
    conn->tenant = it->second.get();
  }
  conn->hello_done = true;
  std::string payload = EncodeHelloOk(kProtocolVersion, "gsopt");
  std::lock_guard<std::mutex> wlock(conn->write_mu);
  return WriteFrame(conn->fd, FrameType::kHelloOk, payload);
}

void GsoptServer::WriteError(const ConnPtr& conn, const Status& status) {
  if (status.code() == StatusCode::kShed) {
    // attributed by the caller to the right shed counter
  } else {
    responses_error_.fetch_add(1, std::memory_order_relaxed);
  }
  std::string payload = EncodeError(status);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  (void)WriteFrame(conn->fd, FrameType::kError, payload);
}

void GsoptServer::TryDispatch(const ConnPtr& conn) {
  // Admit pending frames in order until the connection goes busy (one
  // request at a time preserves response ordering) or the queue empties.
  while (true) {
    Frame f;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->alive || conn->busy || conn->pending.empty()) return;
      f = std::move(conn->pending.front());
      conn->pending.pop_front();
    }

    if (!conn->hello_done) {
      Status s = HandleHello(conn, f);
      if (!s.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteError(conn, s);
        DropConnection(conn->fd);
        return;
      }
      continue;  // handshake answered inline; next pending frame
    }

    switch (f.type) {
      case FrameType::kQuery:
      case FrameType::kPrepare:
      case FrameType::kExecute:
        break;
      default:
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteError(conn, Status::InvalidArgument(
                             "unexpected frame type " +
                             std::to_string(static_cast<int>(f.type))));
        DropConnection(conn->fd);
        return;
    }

    // --- Admission control (header comment: drain, tenant, queue). ---
    if (draining_.load()) {
      sheds_draining_.fetch_add(1, std::memory_order_relaxed);
      WriteError(conn, Status::Shed("server draining"));
      continue;
    }
    TenantState* tenant = conn->tenant;
    int prev = tenant->in_flight.fetch_add(1, std::memory_order_relaxed);
    if (prev >= tenant->quota.max_concurrent) {
      tenant->in_flight.fetch_sub(1, std::memory_order_relaxed);
      sheds_tenant_quota_.fetch_add(1, std::memory_order_relaxed);
      WriteError(conn, Status::Shed("tenant concurrency quota exceeded (" +
                                    std::to_string(prev) + " in flight)"));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() >= options_.max_queue) {
        tenant->in_flight.fetch_sub(1, std::memory_order_relaxed);
        sheds_queue_full_.fetch_add(1, std::memory_order_relaxed);
        WriteError(conn,
                   Status::Shed("admission queue full (" +
                                std::to_string(queue_.size()) + " queued)"));
        continue;
      }
      {
        std::lock_guard<std::mutex> clock(conn->mu);
        conn->busy = true;
        conn->current = std::move(f);
      }
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      requests_admitted_.fetch_add(1, std::memory_order_relaxed);
      queue_.push_back(conn);
      BumpHighWater(&queue_high_water_, queue_.size());
    }
    queue_cv_.notify_one();
    return;  // busy now; the worker re-enqueues us for the next frame
  }
}

void GsoptServer::WorkerLoop() {
  while (true) {
    ConnPtr conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return workers_should_exit_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (workers_should_exit_) return;
        continue;
      }
      conn = std::move(queue_.front());
      queue_.pop_front();
    }
    ServeRequest(conn);
    conn->tenant->in_flight.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->busy = false;
    }
    // Hand the connection back to the dispatcher for its next frame.
    {
      std::lock_guard<std::mutex> lock(recheck_mu_);
      recheck_.push_back(std::move(conn));
    }
    if (in_flight_.fetch_sub(1, std::memory_order_relaxed) == 1) {
      // Lock pairs with Stop()'s predicate check so the last-request
      // notification cannot slip between its check and its sleep.
      std::lock_guard<std::mutex> lock(queue_mu_);
      drain_cv_.notify_all();
    }
    Wake();
  }
}

void GsoptServer::ServeRequest(const ConnPtr& conn) {
  Frame f;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->alive) return;
    f = std::move(conn->current);
  }

  // Per-request budget from the tenant quota, with the soft-pressure rung:
  // a deep admission queue shrinks the optimization/execution deadline so
  // the fallback ladder sheds plan-search work and the backlog drains.
  const TenantQuota& quota = conn->tenant->quota;
  ResourceBudget budget;
  auto deadline = quota.deadline;
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
  }
  if (deadline.count() > 0 && depth >= options_.pressure_watermark) {
    deadline = std::chrono::microseconds(static_cast<int64_t>(
        static_cast<double>(deadline.count()) *
        options_.pressure_deadline_factor));
    if (deadline.count() < 1000) deadline = std::chrono::microseconds(1000);
  }
  if (deadline.count() > 0) budget.WithDeadlineAfter(deadline);
  if (quota.max_rows != ResourceBudget::kUnlimited) {
    budget.WithMaxRows(quota.max_rows);
  }
  if (quota.max_memory != ResourceBudget::kUnlimited) {
    budget.WithMaxMemory(quota.max_memory);
  }
  ExecOptions xo;
  xo.WithBudget(&budget);

  StatusOr<QueryResult> result =
      Status::Internal("request fell through unhandled");
  switch (f.type) {
    case FrameType::kQuery: {
      std::string sql;
      Status s = DecodeSql(f.payload, &sql);
      result = s.ok() ? session_->Query(sql, xo) : StatusOr<QueryResult>(s);
      break;
    }
    case FrameType::kPrepare: {
      std::string sql;
      Status s = DecodeSql(f.payload, &sql);
      if (!s.ok()) {
        WriteError(conn, s);
        return;
      }
      auto stmt = session_->Prepare(sql, &budget);
      if (!stmt.ok()) {
        WriteError(conn, stmt.status());
        return;
      }
      uint64_t id = conn->next_stmt_id++;
      uint32_t num_params = static_cast<uint32_t>(stmt.value().num_params());
      conn->stmts.emplace(id, std::move(stmt).value());
      std::string payload = EncodePrepared(id, num_params);
      std::lock_guard<std::mutex> lock(conn->write_mu);
      (void)WriteFrame(conn->fd, FrameType::kPrepared, payload);
      return;
    }
    case FrameType::kExecute: {
      uint64_t id = 0;
      std::vector<Value> params;
      Status s = DecodeExecute(f.payload, &id, &params);
      if (!s.ok()) {
        WriteError(conn, s);
        return;
      }
      auto it = conn->stmts.find(id);
      if (it == conn->stmts.end()) {
        WriteError(conn, Status::InvalidArgument("unknown statement id " +
                                                 std::to_string(id)));
        return;
      }
      result = it->second.Execute(std::move(params), xo);
      break;
    }
    default:
      return;  // unreachable: TryDispatch filtered types
  }

  if (!result.ok()) {
    WriteError(conn, result.status());
    return;
  }
  const QueryResult& qr = result.value();
  WireResult wire;
  wire.cache_hit = qr.cache_hit;
  wire.degraded = qr.degradation.degraded();
  wire.rung = static_cast<uint8_t>(qr.degradation.rung);
  wire.transient_retries = static_cast<uint32_t>(qr.transient_retries);
  std::string payload = EncodeRows(wire, qr.rows);
  if (wire.degraded) {
    degraded_served_.fetch_add(1, std::memory_order_relaxed);
  }
  responses_rows_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  (void)WriteFrame(conn->fd, FrameType::kRows, payload);
}

}  // namespace gsopt::server
