#include "hypergraph/hypergraph.h"

#include "base/check.h"

namespace gsopt {

std::string EdgeKindName(EdgeKind k) {
  switch (k) {
    case EdgeKind::kUndirected:
      return "join";
    case EdgeKind::kDirected:
      return "outerjoin";
    case EdgeKind::kBidirected:
      return "fullouterjoin";
  }
  return "?";
}

int Hypergraph::AddRelation(const std::string& name) {
  return AddUnit(name, {name});
}

int Hypergraph::AddUnit(const std::string& name,
                        const std::vector<std::string>& qualifiers) {
  auto it = rel_ids_.find(name);
  if (it != rel_ids_.end()) return it->second;
  int id = NumRelations();
  GSOPT_CHECK_MSG(id < RelSet::kMaxRelations, "too many relations");
  rel_names_.push_back(name);
  qualifiers_.push_back(qualifiers);
  rel_ids_[name] = id;
  for (const std::string& q : qualifiers) rel_ids_[q] = id;
  return id;
}

int Hypergraph::RelId(const std::string& name) const {
  auto it = rel_ids_.find(name);
  return it == rel_ids_.end() ? -1 : it->second;
}

StatusOr<int> Hypergraph::AddEdge(EdgeKind kind, RelSet v1, RelSet v2,
                                  const Predicate& pred, RelSet below1,
                                  RelSet below2) {
  if (v1.Empty() || v2.Empty()) {
    return Status::InvalidArgument("hyperedge hypernodes must be non-empty");
  }
  if (v1.Intersects(v2)) {
    return Status::InvalidArgument("hypernodes must be disjoint");
  }
  if (below1.Empty()) below1 = v1;
  if (below2.Empty()) below2 = v2;
  if (!below1.ContainsAll(v1) || !below2.ContainsAll(v2)) {
    return Status::InvalidArgument(
        "operand subtree sets must cover their hypernodes");
  }
  Hyperedge e;
  e.id = NumEdges();
  e.kind = kind;
  e.v1 = v1;
  e.v2 = v2;
  e.below1 = below1;
  e.below2 = below2;
  RelSet endpoints = v1.Union(v2);
  for (const Atom& a : pred.atoms()) {
    EdgeAtom ea;
    ea.atom = a;
    for (const std::string& rel : a.RelNames()) {
      int id = RelId(rel);
      if (id < 0) {
        return Status::InvalidArgument("predicate references unknown relation " +
                                       rel);
      }
      ea.span.Add(id);
    }
    if (!endpoints.ContainsAll(ea.span)) {
      return Status::InvalidArgument(
          "atom span escapes hyperedge endpoints: " + a.ToString());
    }
    e.atoms.push_back(std::move(ea));
  }
  if (e.atoms.empty()) {
    // TRUE-predicate operator (e.g. a cartesian left outer join created by
    // deferring an aggregate-referencing conjunct, paper §1.1 Query 1):
    // synthesize a tautological atom spanning both hypernodes so
    // connectivity and operator placement treat the edge uniformly. The
    // whole-hypernode span makes the placement conservative (both
    // hypernodes must be assembled before the edge applies).
    EdgeAtom ea;
    ea.atom = MakeTautologyAtom();
    ea.span = endpoints;
    e.atoms.push_back(std::move(ea));
  }
  edges_.push_back(std::move(e));
  return edges_.back().id;
}

std::vector<std::string> Hypergraph::RelNamesOf(RelSet s) const {
  std::vector<std::string> out;
  for (int id : s.ToVector()) out.push_back(RelName(id));
  return out;
}

bool Hypergraph::Connected(RelSet rels, RelSet excluded_edges) const {
  if (rels.Empty()) return false;
  if (rels.Count() == 1) return true;
  RelSet reached = Component(rels.First(), rels, excluded_edges);
  return reached.ContainsAll(rels);
}

RelSet Hypergraph::Component(int seed, RelSet universe,
                             RelSet excluded_edges) const {
  RelSet reached;
  if (!universe.Contains(seed)) return reached;
  reached.Add(seed);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Hyperedge& e : edges_) {
      if (excluded_edges.Contains(e.id)) continue;
      for (const EdgeAtom& ea : e.atoms) {
        if (!universe.ContainsAll(ea.span)) continue;
        if (ea.span.Intersects(reached) && !reached.ContainsAll(ea.span)) {
          reached = reached.Union(ea.span);
          changed = true;
        }
      }
    }
  }
  return reached;
}

bool Hypergraph::IsAcyclic() const {
  // Union-find in edge-insertion order (bottom-up query order). An edge
  // closes a cycle iff its two HYPERNODES are already connected; relations
  // within one hypernode belong to the same operand side, so h2=<{r2},
  // {r4,r5}> atop the join r4-r5 is not a cycle (paper Example 3.2).
  std::vector<int> parent(NumRelations());
  for (int i = 0; i < NumRelations(); ++i) parent[i] = i;
  auto find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](int a, int b) { parent[find(a)] = find(b); };
  for (const Hyperedge& e : edges_) {
    // Connect each hypernode internally first (same operand side).
    std::vector<int> s1 = e.v1.ToVector();
    std::vector<int> s2 = e.v2.ToVector();
    for (size_t i = 1; i < s1.size(); ++i) unite(s1[0], s1[i]);
    for (size_t i = 1; i < s2.size(); ++i) unite(s2[0], s2[i]);
    if (find(s1[0]) == find(s2[0])) return false;
    unite(s1[0], s2[0]);
  }
  return true;
}

std::string Hypergraph::ToString() const {
  std::string s = "H(V={";
  for (int i = 0; i < NumRelations(); ++i) {
    if (i) s += ",";
    s += rel_names_[i];
  }
  s += "}, E={\n";
  for (const Hyperedge& e : edges_) {
    s += "  h" + std::to_string(e.id) + " " + EdgeKindName(e.kind) + " <";
    bool first = true;
    for (const std::string& n : RelNamesOf(e.v1)) {
      if (!first) s += " ";
      s += n;
      first = false;
    }
    s += "> -> <";
    first = true;
    for (const std::string& n : RelNamesOf(e.v2)) {
      if (!first) s += " ";
      s += n;
      first = false;
    }
    s += ">: " + e.FullPredicate().ToString() + "\n";
  }
  return s + "})";
}

}  // namespace gsopt
