#include "hypergraph/build.h"

namespace gsopt {

namespace {

// Registers leaves and returns the relation-id set of the subtree.
StatusOr<RelSet> CollectRels(const NodePtr& node, Hypergraph* h) {
  if (node->kind() == OpKind::kLeaf) {
    return RelSet::Single(h->AddRelation(node->table()));
  }
  if (!IsJoinLike(node->kind())) {
    return Status::InvalidArgument(
        "hypergraph construction expects a pure join/outer-join tree, got " +
        OpKindName(node->kind()));
  }
  GSOPT_ASSIGN_OR_RETURN(RelSet l, CollectRels(node->left(), h));
  GSOPT_ASSIGN_OR_RETURN(RelSet r, CollectRels(node->right(), h));
  return l.Union(r);
}

StatusOr<RelSet> AddEdges(const NodePtr& node, Hypergraph* h) {
  if (node->kind() == OpKind::kLeaf) {
    return RelSet::Single(h->RelId(node->table()));
  }
  GSOPT_ASSIGN_OR_RETURN(RelSet l, AddEdges(node->left(), h));
  GSOPT_ASSIGN_OR_RETURN(RelSet r, AddEdges(node->right(), h));

  if (!node->pred().IsNullIntolerant()) {
    // Paper footnote 2: reordering assumes null in-tolerant predicates.
    return Status::InvalidArgument(
        "null-tolerant join predicate is not reorderable: " +
        node->pred().ToString());
  }

  // The hypernodes contain exactly the relations the predicate references
  // on each operand side.
  RelSet refs;
  for (const std::string& rel : node->pred().RelNames()) {
    int id = h->RelId(rel);
    if (id < 0) {
      return Status::InvalidArgument("predicate references relation " + rel +
                                     " not in the query");
    }
    refs.Add(id);
  }
  RelSet refs_l = refs.Intersect(l);
  RelSet refs_r = refs.Intersect(r);
  if (refs_l.Empty() || refs_r.Empty()) {
    return Status::InvalidArgument(
        "join predicate must reference both operand sides: " +
        node->pred().ToString());
  }

  EdgeKind kind = EdgeKind::kUndirected;
  RelSet v1 = refs_l, v2 = refs_r;
  RelSet b1 = l, b2 = r;
  switch (node->kind()) {
    case OpKind::kInnerJoin:
      break;
    case OpKind::kLeftOuterJoin:
      kind = EdgeKind::kDirected;  // left side preserved: v1 = refs_l
      break;
    case OpKind::kRightOuterJoin:
      kind = EdgeKind::kDirected;  // normalize: preserved side first
      v1 = refs_r;
      v2 = refs_l;
      b1 = r;
      b2 = l;
      break;
    case OpKind::kFullOuterJoin:
      kind = EdgeKind::kBidirected;
      break;
    default:
      return Status::InvalidArgument("unsupported operator " +
                                     OpKindName(node->kind()));
  }
  GSOPT_ASSIGN_OR_RETURN(int edge_id,
                         h->AddEdge(kind, v1, v2, node->pred(), b1, b2));
  (void)edge_id;
  return l.Union(r);
}

}  // namespace

StatusOr<Hypergraph> BuildHypergraph(const NodePtr& query) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  Hypergraph h;
  GSOPT_ASSIGN_OR_RETURN(RelSet all, CollectRels(query, &h));
  (void)all;
  GSOPT_ASSIGN_OR_RETURN(RelSet all2, AddEdges(query, &h));
  (void)all2;
  return h;
}

}  // namespace gsopt
