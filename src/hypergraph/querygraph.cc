#include "hypergraph/querygraph.h"

#include <vector>

#include "algebra/schema_infer.h"

namespace gsopt {

namespace {

bool IsReorderableOp(OpKind k) {
  return k == OpKind::kInnerJoin || k == OpKind::kLeftOuterJoin ||
         k == OpKind::kRightOuterJoin || k == OpKind::kFullOuterJoin;
}

struct Builder {
  const Catalog& catalog;
  QueryGraph* out;
  int unit_counter = 0;

  StatusOr<RelSet> AddLeaf(const NodePtr& node) {
    if (node->kind() == OpKind::kLeaf) {
      int id = out->hypergraph.AddRelation(node->table());
      out->leaf_exprs[node->table()] = node;
      return RelSet::Single(id);
    }
    if (node->kind() == OpKind::kSelect &&
        node->left()->kind() == OpKind::kLeaf) {
      // Filtered base relation: single-qualifier unit carrying the filter.
      const std::string& table = node->left()->table();
      int id = out->hypergraph.AddRelation(table);
      out->leaf_exprs[table] = node;
      return RelSet::Single(id);
    }
    // Opaque unit: qualifiers = output column qualifiers.
    GSOPT_ASSIGN_OR_RETURN(Schema schema, InferSchema(node, catalog));
    std::vector<std::string> quals;
    for (const Attribute& a : schema.attrs()) {
      bool seen = false;
      for (const std::string& q : quals) {
        if (q == a.rel) seen = true;
      }
      if (!seen) quals.push_back(a.rel);
    }
    if (quals.empty()) {
      return Status::InvalidArgument("unit with no output qualifiers");
    }
    std::string name = "#unit" + std::to_string(unit_counter++);
    int id = out->hypergraph.AddUnit(name, quals);
    out->leaf_exprs[name] = node;
    return RelSet::Single(id);
  }

  // Single bottom-up pass: a node's predicate only references relations in
  // its subtree, which are registered before the edge is added.
  StatusOr<RelSet> AddEdges(const NodePtr& node) {
    if (!IsReorderableOp(node->kind())) return AddLeaf(node);
    GSOPT_ASSIGN_OR_RETURN(RelSet l, AddEdges(node->left()));
    GSOPT_ASSIGN_OR_RETURN(RelSet r, AddEdges(node->right()));

    if (!node->pred().IsNullIntolerant()) {
      // Paper footnote 2: reordering assumes null in-tolerant predicates.
      // A tolerant conjunct (IS NULL) pins the operator; the caller falls
      // back to the as-written plan.
      return Status::InvalidArgument(
          "null-tolerant join predicate is not reorderable: " +
          node->pred().ToString());
    }
    RelSet refs;
    for (const std::string& rel : node->pred().RelNames()) {
      int id = out->hypergraph.RelId(rel);
      if (id < 0) {
        return Status::InvalidArgument(
            "predicate references unknown relation/qualifier " + rel);
      }
      refs.Add(id);
    }
    RelSet refs_l = refs.Intersect(l);
    RelSet refs_r = refs.Intersect(r);
    if (node->pred().IsTrue()) {
      // Cartesian operator (e.g. deferred-conjunct outer join): the edge
      // spans the full operand sides.
      refs_l = l;
      refs_r = r;
    } else if (refs_l.Empty() || refs_r.Empty()) {
      return Status::InvalidArgument(
          "join predicate must reference both operand sides: " +
          node->pred().ToString());
    }
    EdgeKind kind = EdgeKind::kUndirected;
    RelSet v1 = refs_l, v2 = refs_r;
    RelSet b1 = l, b2 = r;
    switch (node->kind()) {
      case OpKind::kInnerJoin:
        break;
      case OpKind::kLeftOuterJoin:
        kind = EdgeKind::kDirected;
        break;
      case OpKind::kRightOuterJoin:
        kind = EdgeKind::kDirected;
        v1 = refs_r;
        v2 = refs_l;
        b1 = r;
        b2 = l;
        break;
      case OpKind::kFullOuterJoin:
        kind = EdgeKind::kBidirected;
        break;
      default:
        return Status::Internal("unexpected operator");
    }
    GSOPT_ASSIGN_OR_RETURN(
        int id, out->hypergraph.AddEdge(kind, v1, v2, node->pred(), b1, b2));
    (void)id;
    return l.Union(r);
  }
};

}  // namespace

StatusOr<QueryGraph> BuildQueryGraph(const NodePtr& join_tree,
                                     const Catalog& catalog) {
  if (join_tree == nullptr) return Status::InvalidArgument("null tree");
  QueryGraph qg;
  Builder b{catalog, &qg};
  GSOPT_ASSIGN_OR_RETURN(RelSet all, b.AddEdges(join_tree));
  (void)all;
  return qg;
}

}  // namespace gsopt
