// Hypergraph analysis: preserved sets pres(h) / pres_{h1}(h), closest
// conflicting outer joins ccoj(h0), conflict sets conf(h0) (Definition 3.3)
// and the Theorem-1 preserved-group computation for deferred predicate
// conjuncts. Everything is computed against the ORIGINAL query hypergraph,
// once, exactly as the paper prescribes.
//
// Reachability uses the paper's path notion ([BHAR95a], footnote 3): a path
// alternates relations and hyperedges, each step CROSSES an edge from one
// hypernode to the other (never moves within a hypernode) and no edge is
// used twice. This matters: in Q6's hyperedge <{r1},{r2,r4}>, r2 and r4 are
// in the same hypernode, so r1 reaching r2 must not implicitly connect r2
// to r4 "backwards" through the same edge.
#ifndef GSOPT_HYPERGRAPH_ANALYSIS_H_
#define GSOPT_HYPERGRAPH_ANALYSIS_H_

#include <vector>

#include "exec/eval.h"
#include "hypergraph/hypergraph.h"

namespace gsopt {

class HypergraphAnalysis {
 public:
  explicit HypergraphAnalysis(const Hypergraph& h) : h_(h) {}

  const Hypergraph& hypergraph() const { return h_; }

  // True if an edge-distinct, hypernode-crossing path exists from `from`
  // to any relation in `targets` avoiding edges in `banned_edges`.
  bool PathExists(int from, RelSet targets, RelSet banned_edges) const;

  // pres(h) for a directed edge: relations with a path into the edge's
  // preserved hypernode avoiding the edge itself ("to the left" of it).
  RelSet Pres(int edge) const;

  // For a bidirected edge: relations reaching its v1 / v2 hypernode.
  RelSet Pres1(int edge) const;
  RelSet Pres2(int edge) const;

  // pres_{away}(h): the side of bidirected h that does NOT contain edge
  // `away` (the relations h preserves "away from" that edge); equals
  // Pres(h) when h is directed.
  RelSet PresAway(int edge, int away_edge) const;

  // Closest conflicting outer joins of an undirected edge: directed edges
  // whose null-supplying hypernode touches the join-connected region of
  // the edge.
  std::vector<int> Ccoj(int edge) const;

  // Definition 3.3 conflict set.
  std::vector<int> Conf(int edge) const;

  // True if `outer`'s operator necessarily sits above `inner`'s in the
  // original query: `inner`'s endpoints lie entirely within one of
  // `outer`'s (null-supplied) side regions. Plans that invert the two need
  // `outer`'s preservation compensated at the inversion point.
  bool OperatorAbove(int outer, int inner) const;

  // Relations reachable from the edge's v1 / v2 hypernode without crossing
  // the edge: its operand-side region in the original query.
  RelSet SideRegion(int edge, bool side1) const;

  // Theorem 1: preserved groups for a generalized selection applying a
  // deferred conjunct of `edge` at the root. Groups subsumed by another
  // group are dropped (a composite group covers its sub-projections).
  std::vector<RelSet> DeferredGroups(int edge) const;

  // Converts relation-id groups to executor preserved groups.
  std::vector<exec::PreservedGroup> ToPreservedGroups(
      const std::vector<RelSet>& groups) const;

 private:
  // All relations with a path into `targets` avoiding `banned_edges`
  // (targets themselves included).
  RelSet ReachingSet(RelSet targets, RelSet banned_edges) const;

  // Shared implementation of Pres/Pres1/Pres2: the preserved reach of one
  // hypernode, excluding relations attached through edges whose predicate
  // touches the far side's region (such operators cannot match tuples the
  // edge padded, so those relations never ride with the preserved part).
  RelSet PresSide(int edge, bool side1) const;

  // BFS region over selected edge kinds with the hypernode-crossing rule
  // (approximate: edge reuse is not tracked; exact on simple edges).
  RelSet Region(RelSet start, bool allow_undirected, bool allow_directed,
                RelSet banned_edges) const;

  // Bidirected edges incident to the region reachable from `start` via
  // non-bidirected edges.
  std::vector<int> FojsReachable(RelSet start, RelSet banned_edges) const;

  const Hypergraph& h_;
};

}  // namespace gsopt

#endif  // GSOPT_HYPERGRAPH_ANALYSIS_H_
