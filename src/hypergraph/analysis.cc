#include "hypergraph/analysis.h"

#include <algorithm>

#include "base/check.h"

namespace gsopt {

namespace {

// DFS for an edge-distinct, hypernode-crossing path. Query hypergraphs are
// tiny (<= ~15 edges), so the exponential worst case is irrelevant.
bool PathDfs(const Hypergraph& h, int rel, RelSet targets, RelSet used_edges,
             RelSet banned_edges) {
  if (targets.Contains(rel)) return true;
  for (const Hyperedge& e : h.edges()) {
    if (banned_edges.Contains(e.id) || used_edges.Contains(e.id)) continue;
    RelSet next;
    if (e.v1.Contains(rel)) {
      next = e.v2;
    } else if (e.v2.Contains(rel)) {
      next = e.v1;
    } else {
      continue;
    }
    RelSet used2 = used_edges;
    used2.Add(e.id);
    for (int nr : next.ToVector()) {
      if (PathDfs(h, nr, targets, used2, banned_edges)) return true;
    }
  }
  return false;
}

}  // namespace

bool HypergraphAnalysis::PathExists(int from, RelSet targets,
                                    RelSet banned_edges) const {
  return PathDfs(h_, from, targets, RelSet(), banned_edges);
}

RelSet HypergraphAnalysis::ReachingSet(RelSet targets,
                                       RelSet banned_edges) const {
  RelSet out;
  for (int r = 0; r < h_.NumRelations(); ++r) {
    if (PathExists(r, targets, banned_edges)) out.Add(r);
  }
  return out;
}

RelSet HypergraphAnalysis::PresSide(int edge, bool side1) const {
  // Trace the fate of a tuple that this edge's operator pads: it keeps the
  // chosen side's columns REAL and null-pads the other operand, then climbs
  // the original operator tree. Each ancestor operator either
  //   - stays evaluable (its non-tautology atoms avoid every padded
  //     column): the padded tuple joins like a real one and the ancestor's
  //     other operand RIDES along -- its columns are real in the group;
  //   - goes UNKNOWN: a join filter KILLS the tuple (no group at all), a
  //     directed edge null-supplying our chain DROPS it likewise, and a
  //     directed edge preserving us (or a full outer join) pads the other
  //     operand too -- those columns stay out of the group.
  // Operand subtrees (below1/below2, recorded at build time) give the true
  // above/below order. Reachability floods cannot: sibling subtrees get
  // value-connected into far regions through ancestors above both (cf. Q5,
  // where r5-r6 is a sibling of the FOJ, not above it).
  const Hyperedge& e = h_.edge(edge);
  RelSet real = side1 ? e.below1 : e.below2;
  RelSet padded = side1 ? e.below2 : e.below1;
  RelSet mine = e.BelowAll();
  // Ancestors: edges whose combined operand subtrees strictly contain
  // this edge's. The subtrees form a laminar family, so sorting by size
  // walks the ancestor chain innermost-first.
  std::vector<int> anc;
  for (const Hyperedge& a : h_.edges()) {
    if (a.id == edge) continue;
    RelSet ab = a.BelowAll();
    if (ab.ContainsAll(mine) && ab != mine) anc.push_back(a.id);
  }
  std::sort(anc.begin(), anc.end(), [&](int x, int y) {
    return h_.edge(x).BelowAll().Count() < h_.edge(y).BelowAll().Count();
  });
  for (int aid : anc) {
    const Hyperedge& a = h_.edge(aid);
    // Which operand of the ancestor holds our chain? (Intersects as a
    // best-effort fallback for hand-built graphs with default below sets.)
    bool ours_is_b1 = a.below1.ContainsAll(mine) ||
                      (!a.below2.ContainsAll(mine) && a.below1.Intersects(mine));
    RelSet other = ours_is_b1 ? a.below2 : a.below1;
    bool unknown = false;
    for (const EdgeAtom& ea : a.atoms) {
      if (ea.atom.RelNames().empty()) continue;  // tautology: never UNKNOWN
      if (ea.span.Intersects(padded)) {
        unknown = true;
        break;
      }
    }
    if (!unknown) {
      real = real.Union(other);
    } else if (a.kind == EdgeKind::kUndirected) {
      return RelSet();  // filter kills the padded tuple: no group
    } else if (a.kind == EdgeKind::kDirected && !ours_is_b1) {
      return RelSet();  // null-supplied side fails to join: dropped
    } else {
      padded = padded.Union(other);  // survives, padded further
    }
    mine = a.BelowAll();
  }
  return real;
}

RelSet HypergraphAnalysis::Pres(int edge) const {
  const Hyperedge& e = h_.edge(edge);
  GSOPT_CHECK_MSG(e.kind != EdgeKind::kUndirected,
                  "Pres() needs a (bi)directed edge");
  return PresSide(edge, /*side1=*/true);
}

RelSet HypergraphAnalysis::Pres1(int edge) const {
  return PresSide(edge, /*side1=*/true);
}

RelSet HypergraphAnalysis::Pres2(int edge) const {
  return PresSide(edge, /*side1=*/false);
}

RelSet HypergraphAnalysis::PresAway(int edge, int away_edge) const {
  const Hyperedge& e = h_.edge(edge);
  if (e.kind == EdgeKind::kDirected) return Pres(edge);
  RelSet s1 = Pres1(edge);
  RelSet s2 = Pres2(edge);
  RelSet away = h_.edge(away_edge).Endpoints();
  // The away edge lies on one side of h (simple queries: h disconnects H);
  // h preserves the other side "away from" it.
  bool in_s1 = s1.Intersects(away);
  bool in_s2 = s2.Intersects(away);
  if (in_s1 && !in_s2) return s2;
  if (in_s2 && !in_s1) return s1;
  // Ambiguous (cyclic or the away edge touches both sides): be conservative
  // and preserve both sides separately is impossible here, so return the
  // union; DeferredGroups' subsumption handles duplicates.
  return s1.Union(s2);
}

RelSet HypergraphAnalysis::SideRegion(int edge, bool side1) const {
  const Hyperedge& e = h_.edge(edge);
  return ReachingSet(side1 ? e.v1 : e.v2, RelSet::Single(edge));
}

bool HypergraphAnalysis::OperatorAbove(int outer, int inner) const {
  if (outer == inner) return false;
  const Hyperedge& o = h_.edge(outer);
  RelSet inner_eps = h_.edge(inner).Endpoints();
  if (o.kind == EdgeKind::kDirected) {
    return ReachingSet(o.v2, RelSet::Single(outer)).ContainsAll(inner_eps);
  }
  if (o.kind == EdgeKind::kBidirected) {
    return ReachingSet(o.v1, RelSet::Single(outer)).ContainsAll(inner_eps) ||
           ReachingSet(o.v2, RelSet::Single(outer)).ContainsAll(inner_eps);
  }
  return false;
}

std::vector<int> HypergraphAnalysis::Ccoj(int edge) const {
  const Hyperedge& e = h_.edge(edge);
  GSOPT_CHECK_MSG(e.kind == EdgeKind::kUndirected,
                  "ccoj() is defined for join edges");
  RelSet region = Region(e.Endpoints(), /*undirected=*/true,
                         /*directed=*/false, RelSet::Single(edge));
  std::vector<int> out;
  for (const Hyperedge& cand : h_.edges()) {
    if (cand.kind != EdgeKind::kDirected) continue;
    if (cand.v2.Intersects(region)) out.push_back(cand.id);
  }
  return out;
}

RelSet HypergraphAnalysis::Region(RelSet start, bool allow_undirected,
                                  bool allow_directed,
                                  RelSet banned_edges) const {
  RelSet reached = start;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Hyperedge& e : h_.edges()) {
      if (banned_edges.Contains(e.id)) continue;
      bool ok = (e.kind == EdgeKind::kUndirected && allow_undirected) ||
                (e.kind == EdgeKind::kDirected && allow_directed);
      if (!ok) continue;
      RelSet add;
      if (e.v1.Intersects(reached)) add = add.Union(e.v2);
      if (e.v2.Intersects(reached)) add = add.Union(e.v1);
      if (!add.Empty() && !reached.ContainsAll(add)) {
        reached = reached.Union(add);
        changed = true;
      }
    }
  }
  return reached;
}

std::vector<int> HypergraphAnalysis::FojsReachable(RelSet start,
                                                   RelSet banned_edges) const {
  RelSet reached = Region(start, /*undirected=*/true, /*directed=*/true,
                          banned_edges);
  std::vector<int> out;
  for (const Hyperedge& cand : h_.edges()) {
    if (cand.kind != EdgeKind::kBidirected) continue;
    if (banned_edges.Contains(cand.id)) continue;
    if (cand.Endpoints().Intersects(reached)) out.push_back(cand.id);
  }
  return out;
}

std::vector<int> HypergraphAnalysis::Conf(int edge) const {
  const Hyperedge& e = h_.edge(edge);
  switch (e.kind) {
    case EdgeKind::kBidirected:
      // Definition 3.3 sets conf(bidirected) = {} because Theorem 1 places
      // the complex edge at the root (Lemma 1). Our enumerator defers
      // conjuncts of edges anywhere in the tree, so other full outer joins
      // around the edge conflict exactly as they do for directed edges;
      // their away-side groups are usually subsumed by pres1/pres2.
      return FojsReachable(e.Endpoints(), RelSet::Single(edge));
    case EdgeKind::kDirected:
      // Full outer joins reachable through join / one-sided outer join
      // edges (Definition 3.3 uses the null-supplying side; we start from
      // both hypernodes for the same at-root-vs-anywhere reason -- the
      // extra groups are subsumed when redundant).
      return FojsReachable(e.Endpoints(), RelSet::Single(edge));
    case EdgeKind::kUndirected: {
      std::vector<int> ccoj = Ccoj(edge);
      if (ccoj.empty()) {
        return FojsReachable(e.Endpoints(), RelSet::Single(edge));
      }
      std::vector<int> out;
      for (int h : ccoj) {
        out.push_back(h);
        for (int c : Conf(h)) out.push_back(c);
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
  }
  return {};
}

std::vector<RelSet> HypergraphAnalysis::DeferredGroups(int edge) const {
  const Hyperedge& e = h_.edge(edge);
  std::vector<RelSet> groups;
  switch (e.kind) {
    case EdgeKind::kBidirected:
      for (int hi : Conf(edge)) groups.push_back(PresAway(hi, edge));
      groups.push_back(Pres1(edge));
      groups.push_back(Pres2(edge));
      break;
    case EdgeKind::kDirected:
      for (int hi : Conf(edge)) groups.push_back(PresAway(hi, edge));
      groups.push_back(Pres(edge));
      break;
    case EdgeKind::kUndirected:
      for (int hi : Conf(edge)) groups.push_back(PresAway(hi, edge));
      break;
  }
  // A side whose padded tuples die above (PresSide returned empty) has
  // nothing to resurrect; drop it before subsumption.
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const RelSet& g) { return g.Empty(); }),
               groups.end());
  // Drop groups subsumed by another group (a composite preserved relation
  // covers every sub-projection of itself), then require disjointness.
  std::vector<RelSet> kept;
  for (size_t i = 0; i < groups.size(); ++i) {
    bool subsumed = false;
    for (size_t j = 0; j < groups.size(); ++j) {
      if (i == j) continue;
      if (groups[j].ContainsAll(groups[i]) &&
          (groups[j] != groups[i] || j < i)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(groups[i]);
  }
  // Overlapping groups stay separate: ride-along extension routinely puts
  // a relation joined above the edge by an always-evaluable predicate into
  // BOTH sides' groups (each side's resurrections pair with its rows), and
  // the executor resurrects every group independently.
  return kept;
}

std::vector<exec::PreservedGroup> HypergraphAnalysis::ToPreservedGroups(
    const std::vector<RelSet>& groups) const {
  std::vector<exec::PreservedGroup> out;
  for (const RelSet& g : groups) {
    exec::PreservedGroup pg;
    for (int id : g.ToVector()) {
      for (const std::string& q : h_.Qualifiers(id)) pg.insert(q);
    }
    out.push_back(std::move(pg));
  }
  return out;
}

}  // namespace gsopt
