#include "hypergraph/analysis.h"

#include <algorithm>

#include "base/check.h"

namespace gsopt {

namespace {

// DFS for an edge-distinct, hypernode-crossing path. Query hypergraphs are
// tiny (<= ~15 edges), so the exponential worst case is irrelevant.
bool PathDfs(const Hypergraph& h, int rel, RelSet targets, RelSet used_edges,
             RelSet banned_edges) {
  if (targets.Contains(rel)) return true;
  for (const Hyperedge& e : h.edges()) {
    if (banned_edges.Contains(e.id) || used_edges.Contains(e.id)) continue;
    RelSet next;
    if (e.v1.Contains(rel)) {
      next = e.v2;
    } else if (e.v2.Contains(rel)) {
      next = e.v1;
    } else {
      continue;
    }
    RelSet used2 = used_edges;
    used2.Add(e.id);
    for (int nr : next.ToVector()) {
      if (PathDfs(h, nr, targets, used2, banned_edges)) return true;
    }
  }
  return false;
}

}  // namespace

bool HypergraphAnalysis::PathExists(int from, RelSet targets,
                                    RelSet banned_edges) const {
  return PathDfs(h_, from, targets, RelSet(), banned_edges);
}

RelSet HypergraphAnalysis::ReachingSet(RelSet targets,
                                       RelSet banned_edges) const {
  RelSet out;
  for (int r = 0; r < h_.NumRelations(); ++r) {
    if (PathExists(r, targets, banned_edges)) out.Add(r);
  }
  return out;
}

RelSet HypergraphAnalysis::PresSide(int edge, bool side1) const {
  const Hyperedge& e = h_.edge(edge);
  RelSet side = side1 ? e.v1 : e.v2;
  RelSet other = side1 ? e.v2 : e.v1;
  // Relations on the far (null-supplied) side of the edge. A relation can
  // only "ride along" with the preserved side if the operator connecting it
  // stays evaluable on tuples padded over that far region; any edge whose
  // predicate touches the far region goes UNKNOWN on padded tuples, so the
  // relations behind it do not attach (cf. Q6: pres(h2) = {r1, r2} but the
  // compensation group for the deferred conjunct is {r2} with the conflict
  // side {r1} separate; cf. Q5: r1..r3 DO ride with r4 because no edge on
  // that side touches {r5, r6}).
  RelSet far_region = ReachingSet(other, RelSet::Single(edge));
  RelSet banned = RelSet::Single(edge);
  for (const Hyperedge& cand : h_.edges()) {
    if (cand.id == edge) continue;
    if (cand.Endpoints().Intersects(far_region)) banned.Add(cand.id);
  }
  return ReachingSet(side, banned);
}

RelSet HypergraphAnalysis::Pres(int edge) const {
  const Hyperedge& e = h_.edge(edge);
  GSOPT_CHECK_MSG(e.kind != EdgeKind::kUndirected,
                  "Pres() needs a (bi)directed edge");
  return PresSide(edge, /*side1=*/true);
}

RelSet HypergraphAnalysis::Pres1(int edge) const {
  return PresSide(edge, /*side1=*/true);
}

RelSet HypergraphAnalysis::Pres2(int edge) const {
  return PresSide(edge, /*side1=*/false);
}

RelSet HypergraphAnalysis::PresAway(int edge, int away_edge) const {
  const Hyperedge& e = h_.edge(edge);
  if (e.kind == EdgeKind::kDirected) return Pres(edge);
  RelSet s1 = Pres1(edge);
  RelSet s2 = Pres2(edge);
  RelSet away = h_.edge(away_edge).Endpoints();
  // The away edge lies on one side of h (simple queries: h disconnects H);
  // h preserves the other side "away from" it.
  bool in_s1 = s1.Intersects(away);
  bool in_s2 = s2.Intersects(away);
  if (in_s1 && !in_s2) return s2;
  if (in_s2 && !in_s1) return s1;
  // Ambiguous (cyclic or the away edge touches both sides): be conservative
  // and preserve both sides separately is impossible here, so return the
  // union; DeferredGroups' subsumption handles duplicates.
  return s1.Union(s2);
}

bool HypergraphAnalysis::OperatorAbove(int outer, int inner) const {
  if (outer == inner) return false;
  const Hyperedge& o = h_.edge(outer);
  RelSet inner_eps = h_.edge(inner).Endpoints();
  if (o.kind == EdgeKind::kDirected) {
    return ReachingSet(o.v2, RelSet::Single(outer)).ContainsAll(inner_eps);
  }
  if (o.kind == EdgeKind::kBidirected) {
    return ReachingSet(o.v1, RelSet::Single(outer)).ContainsAll(inner_eps) ||
           ReachingSet(o.v2, RelSet::Single(outer)).ContainsAll(inner_eps);
  }
  return false;
}

std::vector<int> HypergraphAnalysis::Ccoj(int edge) const {
  const Hyperedge& e = h_.edge(edge);
  GSOPT_CHECK_MSG(e.kind == EdgeKind::kUndirected,
                  "ccoj() is defined for join edges");
  RelSet region = Region(e.Endpoints(), /*undirected=*/true,
                         /*directed=*/false, RelSet::Single(edge));
  std::vector<int> out;
  for (const Hyperedge& cand : h_.edges()) {
    if (cand.kind != EdgeKind::kDirected) continue;
    if (cand.v2.Intersects(region)) out.push_back(cand.id);
  }
  return out;
}

RelSet HypergraphAnalysis::Region(RelSet start, bool allow_undirected,
                                  bool allow_directed,
                                  RelSet banned_edges) const {
  RelSet reached = start;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Hyperedge& e : h_.edges()) {
      if (banned_edges.Contains(e.id)) continue;
      bool ok = (e.kind == EdgeKind::kUndirected && allow_undirected) ||
                (e.kind == EdgeKind::kDirected && allow_directed);
      if (!ok) continue;
      RelSet add;
      if (e.v1.Intersects(reached)) add = add.Union(e.v2);
      if (e.v2.Intersects(reached)) add = add.Union(e.v1);
      if (!add.Empty() && !reached.ContainsAll(add)) {
        reached = reached.Union(add);
        changed = true;
      }
    }
  }
  return reached;
}

std::vector<int> HypergraphAnalysis::FojsReachable(RelSet start,
                                                   RelSet banned_edges) const {
  RelSet reached = Region(start, /*undirected=*/true, /*directed=*/true,
                          banned_edges);
  std::vector<int> out;
  for (const Hyperedge& cand : h_.edges()) {
    if (cand.kind != EdgeKind::kBidirected) continue;
    if (banned_edges.Contains(cand.id)) continue;
    if (cand.Endpoints().Intersects(reached)) out.push_back(cand.id);
  }
  return out;
}

std::vector<int> HypergraphAnalysis::Conf(int edge) const {
  const Hyperedge& e = h_.edge(edge);
  switch (e.kind) {
    case EdgeKind::kBidirected:
      // Definition 3.3 sets conf(bidirected) = {} because Theorem 1 places
      // the complex edge at the root (Lemma 1). Our enumerator defers
      // conjuncts of edges anywhere in the tree, so other full outer joins
      // around the edge conflict exactly as they do for directed edges;
      // their away-side groups are usually subsumed by pres1/pres2.
      return FojsReachable(e.Endpoints(), RelSet::Single(edge));
    case EdgeKind::kDirected:
      // Full outer joins reachable through join / one-sided outer join
      // edges (Definition 3.3 uses the null-supplying side; we start from
      // both hypernodes for the same at-root-vs-anywhere reason -- the
      // extra groups are subsumed when redundant).
      return FojsReachable(e.Endpoints(), RelSet::Single(edge));
    case EdgeKind::kUndirected: {
      std::vector<int> ccoj = Ccoj(edge);
      if (ccoj.empty()) {
        return FojsReachable(e.Endpoints(), RelSet::Single(edge));
      }
      std::vector<int> out;
      for (int h : ccoj) {
        out.push_back(h);
        for (int c : Conf(h)) out.push_back(c);
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
  }
  return {};
}

std::vector<RelSet> HypergraphAnalysis::DeferredGroups(int edge) const {
  const Hyperedge& e = h_.edge(edge);
  std::vector<RelSet> groups;
  switch (e.kind) {
    case EdgeKind::kBidirected:
      for (int hi : Conf(edge)) groups.push_back(PresAway(hi, edge));
      groups.push_back(Pres1(edge));
      groups.push_back(Pres2(edge));
      break;
    case EdgeKind::kDirected:
      for (int hi : Conf(edge)) groups.push_back(PresAway(hi, edge));
      groups.push_back(Pres(edge));
      break;
    case EdgeKind::kUndirected:
      for (int hi : Conf(edge)) groups.push_back(PresAway(hi, edge));
      break;
  }
  // Drop groups subsumed by another group (a composite preserved relation
  // covers every sub-projection of itself), then require disjointness.
  std::vector<RelSet> kept;
  for (size_t i = 0; i < groups.size(); ++i) {
    bool subsumed = false;
    for (size_t j = 0; j < groups.size(); ++j) {
      if (i == j) continue;
      if (groups[j].ContainsAll(groups[i]) &&
          (groups[j] != groups[i] || j < i)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(groups[i]);
  }
  // Union any remaining overlaps (GS preserved relations must be disjoint;
  // overlap beyond subsumption does not arise on acyclic query hypergraphs,
  // but the equivalence property suites guard semantics either way).
  bool merged = true;
  while (merged) {
    merged = false;
    for (size_t i = 0; i < kept.size() && !merged; ++i) {
      for (size_t j = i + 1; j < kept.size() && !merged; ++j) {
        if (kept[i].Intersects(kept[j])) {
          kept[i] = kept[i].Union(kept[j]);
          kept.erase(kept.begin() + static_cast<long>(j));
          merged = true;
        }
      }
    }
  }
  return kept;
}

std::vector<exec::PreservedGroup> HypergraphAnalysis::ToPreservedGroups(
    const std::vector<RelSet>& groups) const {
  std::vector<exec::PreservedGroup> out;
  for (const RelSet& g : groups) {
    exec::PreservedGroup pg;
    for (int id : g.ToVector()) {
      for (const std::string& q : h_.Qualifiers(id)) pg.insert(q);
    }
    out.push_back(std::move(pg));
  }
  return out;
}

}  // namespace gsopt
