// Query hypergraph (paper Definition 3.1): nodes are base relations;
// each hyperedge <V1, V2> represents one binary operator's conjunctive
// predicate, where the hypernodes are the relations the predicate
// references on each operand side. Directed hyperedges are outer joins
// (V1 = preserved-side references, V2 = null-supplying-side references);
// bi-directed hyperedges are full outer joins; undirected are inner joins.
//
// Every atom of an edge's predicate carries its own relation span, which is
// what predicate break-up (Definition 3.2's sub-edges) operates on.
#ifndef GSOPT_HYPERGRAPH_HYPERGRAPH_H_
#define GSOPT_HYPERGRAPH_HYPERGRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "base/relset.h"
#include "base/status.h"
#include "relational/expr.h"

namespace gsopt {

enum class EdgeKind { kUndirected, kDirected, kBidirected };

std::string EdgeKindName(EdgeKind k);

// One predicate atom with its relation span resolved to ids.
struct EdgeAtom {
  Atom atom;
  RelSet span;
};

struct Hyperedge {
  int id = -1;
  EdgeKind kind = EdgeKind::kUndirected;
  // For directed edges, v1 is the preserved-side hypernode and v2 the
  // null-supplying-side hypernode. For undirected/bidirected the order is
  // as written in the query.
  RelSet v1, v2;
  std::vector<EdgeAtom> atoms;
  // Operand subtree relation sets at the operator's node in the original
  // query (below1 holds v1, below2 holds v2). Default to the hypernodes
  // when the builder does not supply them (hand-built graphs). These give
  // the true above/below operator order, which reachability floods cannot
  // recover: a sibling subtree's relations can be value-connected to a
  // region without its operators ever meeting that region's tuples.
  RelSet below1, below2;

  RelSet BelowAll() const { return below1.Union(below2); }
  RelSet Endpoints() const { return v1.Union(v2); }
  bool IsComplex() const { return Endpoints().Count() > 2; }
  bool IsSimpleEdge() const { return v1.Count() == 1 && v2.Count() == 1; }

  Predicate FullPredicate() const {
    Predicate p;
    for (const EdgeAtom& ea : atoms) p.AddAtom(ea.atom);
    return p;
  }
};

class Hypergraph {
 public:
  Hypergraph() = default;

  // --- construction ---
  int AddRelation(const std::string& name);

  // Registers a composite "unit" node: an opaque subexpression (e.g. a
  // non-mergeable aggregation view) treated as one base relation whose
  // output columns carry several qualifiers. Predicates referencing any of
  // the qualifiers map to this node, and preserved groups expand to the
  // full qualifier set.
  int AddUnit(const std::string& name,
              const std::vector<std::string>& qualifiers);
  // Adds an edge; every atom's span is resolved against registered
  // relations. All atom spans must be subsets of v1 | v2. `below1` /
  // `below2` are the operand subtree relation sets (the v1-side operand
  // first); when empty they default to the hypernodes themselves.
  StatusOr<int> AddEdge(EdgeKind kind, RelSet v1, RelSet v2,
                        const Predicate& pred, RelSet below1 = RelSet(),
                        RelSet below2 = RelSet());

  // --- accessors ---
  int NumRelations() const { return static_cast<int>(rel_names_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }
  const std::string& RelName(int id) const { return rel_names_[id]; }
  // Lookup by relation name or by any covered qualifier.
  int RelId(const std::string& name) const;
  // Qualifiers covered by a node (just {name} for plain relations).
  const std::vector<std::string>& Qualifiers(int id) const {
    return qualifiers_[id];
  }
  const Hyperedge& edge(int id) const { return edges_[id]; }
  const std::vector<Hyperedge>& edges() const { return edges_; }
  RelSet AllRels() const { return RelSet::FirstN(NumRelations()); }

  std::vector<std::string> RelNamesOf(RelSet s) const;

  // --- connectivity ---
  // True if `rels` is connected in the sub-hypergraph induced per footnote
  // 6 of the paper: an atom (sub-edge) connects its span when the span lies
  // inside `rels`; edges in `excluded_edges` are ignored entirely.
  bool Connected(RelSet rels, RelSet excluded_edges = RelSet()) const;

  // Connected component containing `seed` within `universe`, ignoring
  // edges in `excluded_edges`.
  RelSet Component(int seed, RelSet universe,
                   RelSet excluded_edges = RelSet()) const;

  // True if the whole hypergraph has no cycle (treating each hyperedge as
  // connecting all its endpoint relations at once).
  bool IsAcyclic() const;

  std::string ToString() const;

 private:
  std::vector<std::string> rel_names_;
  std::vector<std::vector<std::string>> qualifiers_;
  std::map<std::string, int> rel_ids_;  // name AND qualifiers -> id
  std::vector<Hyperedge> edges_;
};

}  // namespace gsopt

#endif  // GSOPT_HYPERGRAPH_HYPERGRAPH_H_
