// Query graph: hypergraph plus the leaf expressions behind each node.
// Leaves may be base relations, filtered base relations (sigma over a
// leaf), or arbitrary opaque subexpressions ("units", e.g. a non-mergeable
// aggregation view); a unit covers every relation qualifier its output
// carries, and predicates referencing any covered qualifier attach to it.
#ifndef GSOPT_HYPERGRAPH_QUERYGRAPH_H_
#define GSOPT_HYPERGRAPH_QUERYGRAPH_H_

#include <map>
#include <string>

#include "algebra/node.h"
#include "base/status.h"
#include "hypergraph/hypergraph.h"
#include "relational/catalog.h"

namespace gsopt {

struct QueryGraph {
  Hypergraph hypergraph;
  // hypergraph relation name -> expression producing that leaf.
  std::map<std::string, NodePtr> leaf_exprs;
};

StatusOr<QueryGraph> BuildQueryGraph(const NodePtr& join_tree,
                                     const Catalog& catalog);

}  // namespace gsopt

#endif  // GSOPT_HYPERGRAPH_QUERYGRAPH_H_
