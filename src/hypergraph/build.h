// Builds the query hypergraph from a binary-operator expression tree
// (inner / left / right / full outer joins over base relations). The tree
// must be "simple" in the paper's sense (no redundant edges) and its
// predicates conjunctive and null in-tolerant; queries with selections,
// aggregations or GS must be normalized first (see algebra/agg_pullup.h).
#ifndef GSOPT_HYPERGRAPH_BUILD_H_
#define GSOPT_HYPERGRAPH_BUILD_H_

#include "algebra/node.h"
#include "base/status.h"
#include "hypergraph/hypergraph.h"

namespace gsopt {

StatusOr<Hypergraph> BuildHypergraph(const NodePtr& query);

}  // namespace gsopt

#endif  // GSOPT_HYPERGRAPH_BUILD_H_
