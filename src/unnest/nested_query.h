// Correlated join-aggregate ("COUNT") nested queries -- the class the
// paper's §1.1 motivates via [GANS87, MURA92]:
//
//   SELECT r1.a FROM r1
//   WHERE r1.b θ1 (SELECT COUNT(*) FROM r2
//                  WHERE r2.c = r1.c AND r2.d θ2
//                        (SELECT COUNT(*) FROM r3
//                         WHERE r2.e = r3.e AND r1.f = r3.f))
//
// Modeled as a chain of blocks: each block scans one relation, correlates
// with its ancestors, and may compare a scalar over (this level +
// ancestors) against COUNT(*) of the next block.
#ifndef GSOPT_UNNEST_NESTED_QUERY_H_
#define GSOPT_UNNEST_NESTED_QUERY_H_

#include <memory>
#include <optional>
#include <vector>

#include "algebra/node.h"
#include "base/status.h"
#include "relational/catalog.h"

namespace gsopt {

struct CountCondition {
  // Scalar over this block's and ancestors' columns, compared against
  // COUNT(*) of the nested block:  lhs cmp COUNT(*).
  ScalarPtr lhs;
  CmpOp cmp = CmpOp::kEq;
};

struct NestedBlock {
  std::string table;
  // Non-correlated filter on this block's relation (may be empty).
  Predicate local;
  // Correlation with ancestor blocks; empty for the outermost block.
  Predicate correlation;
  // Present iff `nested` is set.
  std::optional<CountCondition> condition;
  std::shared_ptr<NestedBlock> nested;
};

struct NestedQuery {
  NestedBlock outer;
  std::vector<Attribute> select_cols;
};

// Ground truth: literal tuple-iteration semantics (the "very inefficient
// nested-loops like processing strategy" commercial systems used).
StatusOr<Relation> ExecuteTis(const NestedQuery& q, const Catalog& catalog);

// Ganski/Muralikrishna-style unnesting into outer joins + generalized
// projections, COUNT-bug safe: qualification of each level is applied by a
// generalized selection that PRESERVES the ancestor levels, so outer
// tuples whose nested count is zero survive with count 0 (the very place
// the paper's GS operator earns its keep). The result is a normal algebra
// tree the optimizer can reorder -- including plans that combine the two
// inner relations first (the paper's motivation for Query 2).
StatusOr<NodePtr> UnnestToAlgebra(const NestedQuery& q,
                                  const Catalog& catalog);

}  // namespace gsopt

#endif  // GSOPT_UNNEST_NESTED_QUERY_H_
