#include "unnest/nested_query.h"

#include <string>
#include <vector>

#include "algebra/schema_infer.h"
#include "base/check.h"

namespace gsopt {

StatusOr<NodePtr> UnnestToAlgebra(const NestedQuery& q,
                                  const Catalog& catalog) {
  // Flatten the block chain.
  std::vector<const NestedBlock*> levels;
  levels.push_back(&q.outer);
  for (const NestedBlock* b = q.outer.nested.get(); b != nullptr;
       b = b->nested.get()) {
    levels.push_back(b);
  }
  for (size_t k = 0; k < levels.size(); ++k) {
    bool has_nested = k + 1 < levels.size();
    if (levels[k]->condition.has_value() != has_nested) {
      return Status::InvalidArgument(
          "every non-innermost block needs a COUNT condition");
    }
  }

  // Per-level column inventory (for grouping keys).
  std::vector<Schema> schemas;
  for (const NestedBlock* b : levels) {
    GSOPT_ASSIGN_OR_RETURN(Relation rel, catalog.Get(b->table));
    schemas.push_back(rel.schema());
  }

  // Join tree: left-deep chain of LEFT OUTER JOINs on the correlation
  // predicates (paper Query 2's shape; note the second correlation is a
  // complex predicate when it references two ancestor levels).
  auto leaf = [&](size_t k) -> NodePtr {
    NodePtr n = Node::Leaf(levels[k]->table);
    if (!levels[k]->local.IsTrue()) n = Node::Select(n, levels[k]->local);
    return n;
  };
  NodePtr tree = leaf(0);
  for (size_t k = 1; k < levels.size(); ++k) {
    tree = Node::LeftOuterJoin(tree, leaf(k), levels[k]->correlation);
  }

  // Deepest-first: per conditioned block, aggregate the nested level away
  // and apply the COUNT comparison; a generalized selection preserves the
  // ancestor levels so zero-count ancestors survive (COUNT-bug safety).
  for (int k = static_cast<int>(levels.size()) - 2; k >= 0; --k) {
    exec::GroupBySpec spec;
    for (int a = 0; a <= k; ++a) {
      for (const Attribute& attr : schemas[a].attrs()) {
        spec.group_cols.push_back(attr);
      }
      spec.group_vid_rels.push_back(levels[a]->table);
    }
    std::string cnt_name = "cnt" + std::to_string(k + 1);
    exec::AggSpec cnt;
    cnt.func = exec::AggFunc::kCountPresence;
    cnt.presence_rel = levels[k + 1]->table;
    cnt.out_rel = "#cnt";
    cnt.out_name = cnt_name;
    spec.aggs = {cnt};
    tree = Node::GroupBy(tree, spec);

    Atom cond;
    cond.lhs = levels[k]->condition->lhs;
    cond.op = levels[k]->condition->cmp;
    cond.rhs = Scalar::Column("#cnt", cnt_name);
    Predicate pred{cond};
    if (k > 0) {
      exec::PreservedGroup ancestors;
      for (int a = 0; a < k; ++a) ancestors.insert(levels[a]->table);
      tree = Node::GeneralizedSelection(tree, pred, {ancestors});
    } else {
      tree = Node::Select(tree, pred);  // outermost: plain WHERE
    }
  }

  return Node::Project(tree, q.select_cols);
}

}  // namespace gsopt
