#include "unnest/nested_query.h"

#include "base/check.h"

namespace gsopt {

namespace {

// Number of tuples of `block` qualifying under the environment `env`
// (concatenation of all ancestor tuples).
StatusOr<int64_t> CountQualified(const NestedBlock& block,
                                 const Catalog& catalog, const Tuple& env,
                                 const Schema& env_schema) {
  GSOPT_ASSIGN_OR_RETURN(Relation rel, catalog.Get(block.table));
  int64_t count = 0;
  for (const Tuple& t : rel.rows()) {
    Tuple extended = Tuple::Concat(env, t);
    Schema extended_schema = Schema::Concat(env_schema, rel.schema());
    if (!block.local.Satisfied(t, rel.schema())) continue;
    if (!block.correlation.Satisfied(extended, extended_schema)) continue;
    if (block.condition.has_value()) {
      GSOPT_CHECK(block.nested != nullptr);
      GSOPT_ASSIGN_OR_RETURN(
          int64_t inner,
          CountQualified(*block.nested, catalog, extended, extended_schema));
      Value lhs = block.condition->lhs->Eval(extended, extended_schema);
      if (EvalCmp(block.condition->cmp, lhs, Value::Int(inner)) !=
          Tri::kTrue) {
        continue;
      }
    }
    ++count;
  }
  return count;
}

}  // namespace

StatusOr<Relation> ExecuteTis(const NestedQuery& q, const Catalog& catalog) {
  const NestedBlock& outer = q.outer;
  GSOPT_ASSIGN_OR_RETURN(Relation rel, catalog.Get(outer.table));

  Schema out_schema;
  std::vector<int> proj;
  for (const Attribute& a : q.select_cols) {
    int i = rel.schema().Find(a.rel, a.name);
    if (i < 0) {
      return Status::NotFound("select column " + a.Qualified() +
                              " not in outer table");
    }
    out_schema.Append(a);
    proj.push_back(i);
  }
  Relation out(out_schema, VirtualSchema({outer.table}));

  for (const Tuple& t : rel.rows()) {
    if (!outer.local.Satisfied(t, rel.schema())) continue;
    if (outer.condition.has_value()) {
      GSOPT_CHECK(outer.nested != nullptr);
      GSOPT_ASSIGN_OR_RETURN(
          int64_t inner,
          CountQualified(*outer.nested, catalog, t, rel.schema()));
      Value lhs = outer.condition->lhs->Eval(t, rel.schema());
      if (EvalCmp(outer.condition->cmp, lhs, Value::Int(inner)) !=
          Tri::kTrue) {
        continue;
      }
    }
    Tuple nt;
    for (int i : proj) nt.values.push_back(t.values[i]);
    nt.vids = t.vids;
    out.Add(std::move(nt));
  }
  return out;
}

}  // namespace gsopt
