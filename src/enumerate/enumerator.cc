#include "enumerate/enumerator.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace gsopt {

std::string EnumModeName(EnumMode m) {
  switch (m) {
    case EnumMode::kBinaryOnly:
      return "binary-only";
    case EnumMode::kBaseline:
      return "baseline";
    case EnumMode::kGeneralized:
      return "generalized";
  }
  return "?";
}

Enumerator::Enumerator(const Hypergraph& h, EnumOptions options)
    : h_(h), analysis_(h), options_(options) {
  edge_atoms_.resize(h_.NumEdges());
  for (const Hyperedge& e : h_.edges()) {
    for (size_t i = 0; i < e.atoms.size(); ++i) {
      if (atoms_.size() >= RelSet::kMaxRelations) {
        // Atom ids share RelSet's 64-bit index space; a query exceeding it
        // is user input, so fail from Enumerate() instead of aborting.
        init_status_ = Status::InvalidArgument(
            "too many predicate atoms (limit " +
            std::to_string(RelSet::kMaxRelations) + ")");
        return;
      }
      edge_atoms_[e.id].push_back(static_cast<int>(atoms_.size()));
      atoms_.push_back(AtomInfo{e.id, static_cast<int>(i), e.atoms[i].span});
    }
  }
}

NodePtr Enumerator::LeafExpr(int rel_id) const {
  auto it = leaf_exprs_.find(h_.RelName(rel_id));
  if (it != leaf_exprs_.end()) return it->second;
  return Node::Leaf(h_.RelName(rel_id));
}

bool Enumerator::SubsetConnected(RelSet rels) const {
  if (options_.mode == EnumMode::kGeneralized) {
    return h_.Connected(rels);  // atom sub-edges allowed (Definition 3.2)
  }
  // Definition 2.3: only whole hyperedges (both hypernodes inside) connect.
  if (rels.Empty()) return false;
  if (rels.Count() == 1) return true;
  RelSet reached = RelSet::Single(rels.First());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Hyperedge& e : h_.edges()) {
      RelSet eps = e.Endpoints();
      if (!rels.ContainsAll(eps)) continue;
      if (eps.Intersects(reached) && !reached.ContainsAll(eps)) {
        reached = reached.Union(eps);
        changed = true;
      }
    }
  }
  return reached.ContainsAll(rels);
}

namespace {

// Preserved-group post-processing: union overlapping groups, drop subsumed.
std::vector<RelSet> NormalizeGroups(std::vector<RelSet> groups) {
  bool merged = true;
  while (merged) {
    merged = false;
    for (size_t i = 0; i < groups.size() && !merged; ++i) {
      for (size_t j = i + 1; j < groups.size() && !merged; ++j) {
        if (groups[i].Intersects(groups[j])) {
          groups[i] = groups[i].Union(groups[j]);
          groups.erase(groups.begin() + static_cast<long>(j));
          merged = true;
        }
      }
    }
  }
  std::sort(groups.begin(), groups.end());
  return groups;
}

}  // namespace

void Enumerator::EmitCombination(RelSet s1, const SubPlan& p1, RelSet s2,
                                 const SubPlan& p2, RelSet apply_atoms,
                                 std::vector<SubPlan>* out) const {
  // Which (bi)directed edges get their operator placed at this node?
  RelSet placing;
  for (int aid : apply_atoms.ToVector()) {
    const AtomInfo& ai = atoms_[aid];
    const Hyperedge& e = h_.edge(ai.edge_id);
    if (e.kind != EdgeKind::kUndirected) placing.Add(ai.edge_id);
  }

  // Determine operator kind and orientation.
  bool preserved_is_s1 = false;
  OpKind op = OpKind::kInnerJoin;
  if (!placing.Empty()) {
    bool first = true;
    for (int eid : placing.ToVector()) {
      const Hyperedge& e = h_.edge(eid);
      // Each applied atom of e must separate P-part into one side and
      // N-part into the other, consistently.
      bool this_pres_s1 = false, oriented = false;
      for (int aid : apply_atoms.ToVector()) {
        if (atoms_[aid].edge_id != eid) continue;
        RelSet pp = atoms_[aid].span.Intersect(e.v1);
        RelSet np = atoms_[aid].span.Intersect(e.v2);
        bool p_in_1 = s1.ContainsAll(pp), n_in_2 = s2.ContainsAll(np);
        bool p_in_2 = s2.ContainsAll(pp), n_in_1 = s1.ContainsAll(np);
        bool o1 = p_in_1 && n_in_2;
        bool o2 = p_in_2 && n_in_1;
        if (!o1 && !o2) return;  // atom straddles inconsistently
        if (oriented && this_pres_s1 != o1) return;
        this_pres_s1 = o1;
        oriented = true;
      }
      OpKind this_op = e.kind == EdgeKind::kBidirected
                           ? OpKind::kFullOuterJoin
                           : OpKind::kLeftOuterJoin;
      if (first) {
        op = this_op;
        preserved_is_s1 = this_pres_s1;
        first = false;
      } else if (op != this_op || preserved_is_s1 != this_pres_s1) {
        return;  // conflicting operator requirements
      }
    }
  }

  // A join conjunct the original query evaluates ABOVE a (bi)directed edge
  // (its edge was created later, id order follows the tree bottom-up) and
  // that references the edge's null-supplied region there FILTERS the
  // edge's padded tuples. Placing the edge's operator at this node when
  // such a conjunct is already applied below inverts that order: padding
  // created here escapes the filter, and no generalized-selection
  // compensation can DELETE rows. Reject the combination.
  if (!placing.Empty()) {
    RelSet below = p1.applied_atoms.Union(p2.applied_atoms);
    for (int eid : placing.ToVector()) {
      const Hyperedge& e = h_.edge(eid);
      auto padding_escapes = [&](RelSet null_region) {
        for (int aid : below.ToVector()) {
          const AtomInfo& ai = atoms_[aid];
          const Hyperedge& ae = h_.edge(ai.edge_id);
          if (ae.kind != EdgeKind::kUndirected) continue;
          if (ai.edge_id <= eid) continue;  // evaluated below the edge
          const Atom& atom = ae.atoms[ai.index_in_edge].atom;
          if (atom.RelNames().empty()) continue;  // tautology: never UNKNOWN
          if (ai.span.Intersects(null_region)) return true;
        }
        return false;
      };
      if (e.kind == EdgeKind::kDirected) {
        if (padding_escapes(analysis_.SideRegion(eid, /*side1=*/false))) {
          return;
        }
      } else if (e.kind == EdgeKind::kBidirected) {
        if (padding_escapes(analysis_.SideRegion(eid, /*side1=*/true)) ||
            padding_escapes(analysis_.SideRegion(eid, /*side1=*/false))) {
          return;
        }
      }
    }
  }

  // Compensation groups for outer-join promises made below this node.
  // Applying an edge X's atoms above an already-placed (bi)directed edge h
  // needs compensation only when h CONFLICTS with X (Definition 3.3 /
  // ccoj: the original query requires h's operator above X's). When the
  // original itself evaluates h below X, dropping h-padded tuples at this
  // node is exactly the original semantics and a plain operator is right.
  RelSet atom_rels;
  RelSet conflicting;  // edges conflicting with any applied atom's edge
  {
    RelSet applied_edges;
    for (int aid : apply_atoms.ToVector()) {
      atom_rels = atom_rels.Union(atoms_[aid].span);
      applied_edges.Add(atoms_[aid].edge_id);
    }
    for (int xid : applied_edges.ToVector()) {
      // Outer edges whose operator the original evaluates ABOVE x: a plan
      // applying x later than them inverts the order, so their
      // preservation promises need compensation here. Edges the original
      // evaluates below x need none -- conf/ccoj membership alone is NOT
      // conflict here (those sets answer the different question of which
      // promises a conjunct deferred PAST its edge's operator endangers;
      // see Finalize). Compensating a same-order placement resurrects rows
      // the original operator kills, e.g. (v FOJ r3) JOIN r4 with r4
      // empty: the original join emits nothing, an MGOJ would revive the
      // FOJ sides.
      for (const Hyperedge& h : h_.edges()) {
        if (h.kind != EdgeKind::kUndirected &&
            analysis_.OperatorAbove(h.id, xid)) {
          conflicting.Add(h.id);
        }
      }
    }
  }
  std::vector<RelSet> groups;
  auto check_side = [&](RelSet side, const SubPlan& p) {
    for (int eid : p.placed_edges.ToVector()) {
      if (!conflicting.Contains(eid)) continue;
      const Hyperedge& e = h_.edge(eid);
      auto consider = [&](RelSet pres_region) {
        RelSet padded = side.Minus(pres_region);
        if (atom_rels.Intersects(padded)) {
          RelSet g = pres_region.Intersect(side);
          if (!g.Empty() && g != side) groups.push_back(g);
        }
      };
      if (e.kind == EdgeKind::kDirected) {
        consider(analysis_.Pres(eid));
      } else if (e.kind == EdgeKind::kBidirected) {
        consider(analysis_.Pres1(eid));
        consider(analysis_.Pres2(eid));
      }
    }
  };
  // Endangered sides: both for inner join, the null-supplying side for
  // LOJ, none for FOJ (it preserves both operands wholesale).
  if (op == OpKind::kInnerJoin) {
    check_side(s1, p1);
    check_side(s2, p2);
  } else if (op == OpKind::kLeftOuterJoin) {
    if (preserved_is_s1) {
      check_side(s2, p2);
    } else {
      check_side(s1, p1);
    }
  }

  Predicate pred;
  for (int aid : apply_atoms.ToVector()) {
    pred.AddAtom(h_.edge(atoms_[aid].edge_id).atoms[atoms_[aid].index_in_edge]
                     .atom);
  }

  SubPlan np;
  np.applied_atoms = p1.applied_atoms.Union(p2.applied_atoms)
                         .Union(apply_atoms);
  np.placed_edges = p1.placed_edges.Union(p2.placed_edges).Union(placing);
  np.num_mgoj = p1.num_mgoj + p2.num_mgoj;

  if (groups.empty()) {
    switch (op) {
      case OpKind::kInnerJoin: {
        // Canonical orientation for dedup: smaller relation set left.
        if (s1 < s2) {
          np.expr = Node::Join(p1.expr, p2.expr, pred);
        } else {
          np.expr = Node::Join(p2.expr, p1.expr, pred);
        }
        break;
      }
      case OpKind::kLeftOuterJoin:
        np.expr = preserved_is_s1
                      ? Node::LeftOuterJoin(p1.expr, p2.expr, pred)
                      : Node::LeftOuterJoin(p2.expr, p1.expr, pred);
        break;
      case OpKind::kFullOuterJoin:
        if (s1 < s2) {
          np.expr = Node::FullOuterJoin(p1.expr, p2.expr, pred);
        } else {
          np.expr = Node::FullOuterJoin(p2.expr, p1.expr, pred);
        }
        break;
      default:
        return;
    }
  } else {
    if (options_.mode == EnumMode::kBinaryOnly) return;  // needs MGOJ
    // Operator with compensation: MGOJ preserving the endangered promises
    // plus (for outer placements) the preserved operand side.
    if (op == OpKind::kLeftOuterJoin) {
      groups.push_back(preserved_is_s1 ? s1 : s2);
    } else if (op == OpKind::kFullOuterJoin) {
      groups.push_back(s1);
      groups.push_back(s2);
    }
    groups = NormalizeGroups(std::move(groups));
    std::vector<exec::PreservedGroup> pgroups =
        analysis_.ToPreservedGroups(groups);
    if (s1 < s2) {
      np.expr = Node::Mgoj(p1.expr, p2.expr, pred, pgroups);
    } else {
      np.expr = Node::Mgoj(p2.expr, p1.expr, pred, pgroups);
    }
    np.num_mgoj += 1;
  }
  out->push_back(std::move(np));
}

void Enumerator::Combine(RelSet s1, const SubPlan& p1, RelSet s2,
                         const SubPlan& p2,
                         std::vector<SubPlan>* out) const {
  // A (bi)directed edge has exactly one operator; two parallel subtrees
  // that each placed it cannot be merged.
  if (p1.placed_edges.Intersects(p2.placed_edges)) return;
  RelSet s = s1.Union(s2);

  // Crossing edges and applicable atoms.
  RelSet applicable;                  // atom ids applicable here
  std::vector<int> placeable_edges;   // (bi)directed edges placeable here
  RelSet already = p1.applied_atoms.Union(p2.applied_atoms);
  RelSet placed_below = p1.placed_edges.Union(p2.placed_edges);

  for (const Hyperedge& e : h_.edges()) {
    // Atoms of e applicable at this combination.
    RelSet e_applicable;
    for (int aid : edge_atoms_[e.id]) {
      const RelSet span = atoms_[aid].span;
      if (already.Contains(aid)) continue;
      if (!s.ContainsAll(span)) continue;
      if (!span.Intersects(s1) || !span.Intersects(s2)) continue;
      e_applicable.Add(aid);
    }
    if (e_applicable.Empty()) continue;

    if (options_.mode != EnumMode::kGeneralized) {
      // Definition 2.3: the whole hyperedge must fit across the split.
      bool fits = (s1.ContainsAll(e.v1) && s2.ContainsAll(e.v2)) ||
                  (s2.ContainsAll(e.v1) && s1.ContainsAll(e.v2));
      if (!fits) return;  // combination invalid in this mode
      // All atoms of the edge apply at once.
      for (int aid : edge_atoms_[e.id]) {
        if (!already.Contains(aid)) e_applicable.Add(aid);
      }
    }

    if (e.kind != EdgeKind::kUndirected) {
      if (placed_below.Contains(e.id)) {
        // The edge's operator is below; its remaining atoms may only be
        // applied by the root compensation, never mid-tree.
        continue;
      }
      if (e.kind == EdgeKind::kBidirected) {
        // A full outer join preserves its operand sides wholesale; placing
        // it while a hypernode is only partially assembled would preserve
        // lone fragments (e.g. bare r4-rows) the original query never
        // emits, and no GS compensation can delete rows. Require both
        // hypernodes whole.
        bool fits = (s1.ContainsAll(e.v1) && s2.ContainsAll(e.v2)) ||
                    (s2.ContainsAll(e.v1) && s1.ContainsAll(e.v2));
        if (!fits) continue;  // atoms stay unapplied here
      }
      placeable_edges.push_back(e.id);
    }
    applicable = applicable.Union(e_applicable);
  }

  if (applicable.Empty()) return;  // no cartesian products

  // Split applicable atoms into outer-edge atoms and join atoms.
  RelSet outer_atoms, join_atoms;
  for (int aid : applicable.ToVector()) {
    if (h_.edge(atoms_[aid].edge_id).kind == EdgeKind::kUndirected) {
      join_atoms.Add(aid);
    } else {
      outer_atoms.Add(aid);
    }
  }

  if (!placeable_edges.empty()) {
    // Outer-join placement. Join atoms crossing the same node cannot be
    // folded into an outer predicate (they filter, the outer pads), so
    // they are deferred to the root (generalized mode only).
    if (options_.mode == EnumMode::kGeneralized && !join_atoms.Empty()) {
      // fallthrough with outer atoms only
    } else if (!join_atoms.Empty()) {
      return;  // not expressible in Definition 2.3 modes
    }
    EmitCombination(s1, p1, s2, p2, outer_atoms, out);
    if (options_.mode == EnumMode::kGeneralized &&
        options_.enumerate_partial_keeps && outer_atoms.Count() > 1) {
      // Voluntarily defer strict subsets of the applicable outer atoms
      // (each choice is a distinct Definition 3.2 break-up).
      std::vector<int> ids = outer_atoms.ToVector();
      int k = static_cast<int>(ids.size());
      for (uint64_t mask = 1; mask + 1 < (1ull << k); ++mask) {
        RelSet keep;
        for (int b = 0; b < k; ++b) {
          if ((mask >> b) & 1) keep.Add(ids[b]);
        }
        // Every placeable edge still needs >= 1 kept atom here.
        bool ok = true;
        for (int eid : placeable_edges) {
          bool any = false;
          for (int aid : keep.ToVector()) {
            if (atoms_[aid].edge_id == eid) any = true;
          }
          if (!any) ok = false;
        }
        if (!ok) continue;
        EmitCombination(s1, p1, s2, p2, keep, out);
      }
    }
  } else {
    // Pure join combination.
    EmitCombination(s1, p1, s2, p2, join_atoms, out);
  }
}

StatusOr<PlanCandidate> Enumerator::Finalize(const SubPlan& plan) const {
  // Every (bi)directed edge must have placed its operator somewhere.
  for (const Hyperedge& e : h_.edges()) {
    if (e.kind != EdgeKind::kUndirected && !plan.placed_edges.Contains(e.id)) {
      return Status::Internal("outer-join edge never placed");
    }
  }
  PlanCandidate cand;
  cand.num_mgoj = plan.num_mgoj;
  NodePtr expr = plan.expr;
  // Wrap deferred atoms, one generalized selection per edge, inner edges
  // first (edges are created bottom-up, so increasing id goes outward).
  for (const Hyperedge& e : h_.edges()) {
    Predicate deferred;
    for (int aid : edge_atoms_[e.id]) {
      if (!plan.applied_atoms.Contains(aid)) {
        deferred.AddAtom(e.atoms[atoms_[aid].index_in_edge].atom);
        ++cand.num_deferred;
      }
    }
    if (deferred.IsTrue()) continue;
    if (options_.mode != EnumMode::kGeneralized) {
      return Status::Internal("deferred atoms outside generalized mode");
    }
    std::vector<RelSet> groups = analysis_.DeferredGroups(e.id);
    expr = Node::GeneralizedSelection(expr, deferred,
                                      analysis_.ToPreservedGroups(groups));
  }
  cand.expr = expr;
  return cand;
}

StatusOr<EnumerationResult> Enumerator::Enumerate() {
  GSOPT_RETURN_IF_ERROR(init_status_);
  int n = h_.NumRelations();
  if (n == 0) return Status::InvalidArgument("empty hypergraph");
  if (!SubsetConnected(h_.AllRels())) {
    return Status::InvalidArgument("query hypergraph is not connected");
  }
  ResourceBudget* budget = options_.budget;
  if (budget != nullptr) {
    GSOPT_RETURN_IF_ERROR(budget->CheckDeadlineNow("enumerate"));
  }
  // Effective subplan cap: the per-call option tightened by whatever plan
  // allowance remains on the budget (which is shared across ladder rungs).
  size_t cap = options_.max_plans;
  if (budget != nullptr) {
    cap = std::min<uint64_t>(cap, budget->PlansRemaining());
  }

  std::unordered_map<uint64_t, std::vector<SubPlan>> table;
  // Singletons.
  for (int r = 0; r < n; ++r) {
    SubPlan sp;
    sp.expr = LeafExpr(r);
    table[RelSet::Single(r).bits()].push_back(std::move(sp));
  }

  uint64_t full = h_.AllRels().bits();
  size_t total_emitted = 0;
  size_t total_pruned = 0;
  bool truncated = false;
  // Subsets in increasing popcount order.
  std::vector<uint64_t> subsets;
  for (uint64_t s = 1; s <= full; ++s) {
    if ((s & full) == s && __builtin_popcountll(s) >= 2) subsets.push_back(s);
  }
  std::sort(subsets.begin(), subsets.end(), [](uint64_t a, uint64_t b) {
    int pa = __builtin_popcountll(a), pb = __builtin_popcountll(b);
    return pa != pb ? pa < pb : a < b;
  });

  for (uint64_t sbits : subsets) {
    RelSet s(sbits);
    if (!SubsetConnected(s)) continue;
    if (budget != nullptr) {
      GSOPT_RETURN_IF_ERROR(budget->CheckDeadlineNow("enumerate"));
    }
    std::vector<SubPlan> plans;
    std::unordered_set<std::string> seen;
    uint64_t low = sbits & (~sbits + 1);  // lowest bit stays in s1
    for (uint64_t sub = (sbits - 1) & sbits; sub; sub = (sub - 1) & sbits) {
      if (!(sub & low)) continue;
      // Past the cap the DP must stay connected but needn't explore: one
      // plan per subset keeps every larger subset (and the full set)
      // reachable while cutting the combinatorial fan-out.
      if (truncated && !plans.empty()) break;
      uint64_t other = sbits ^ sub;
      if (other == 0) continue;
      auto it1 = table.find(sub);
      auto it2 = table.find(other);
      if (it1 == table.end() || it2 == table.end()) continue;
      RelSet s1(sub), s2(other);
      for (const SubPlan& p1 : it1->second) {
        if (truncated && !plans.empty()) break;
        for (const SubPlan& p2 : it2->second) {
          if (budget != nullptr) {
            GSOPT_RETURN_IF_ERROR(budget->CheckDeadline("enumerate"));
          }
          if (truncated && !plans.empty()) break;
          std::vector<SubPlan> emitted;
          Combine(s1, p1, s2, p2, &emitted);
          for (SubPlan& np : emitted) {
            std::string key = np.expr->ToString();
            if (seen.insert(key).second) {
              plans.push_back(std::move(np));
              if (++total_emitted >= cap) truncated = true;
            }
            if (truncated) break;
          }
        }
      }
    }
    if (options_.cost_fn && !plans.empty()) {
      // Keep the cheapest plan per compensation state.
      std::map<std::pair<uint64_t, uint64_t>, SubPlan> best;
      for (SubPlan& sp : plans) {
        auto key = std::make_pair(sp.applied_atoms.bits(),
                                  sp.placed_edges.bits());
        auto it = best.find(key);
        if (it == best.end() ||
            options_.cost_fn(sp.expr) < options_.cost_fn(it->second.expr)) {
          best[key] = std::move(sp);
        }
      }
      total_pruned += plans.size() - best.size();
      plans.clear();
      for (auto& [key, sp] : best) plans.push_back(std::move(sp));
    }
    if (!plans.empty()) table[sbits] = std::move(plans);
  }

  if (budget != nullptr) budget->AddPlans(total_emitted);

  auto it = table.find(full);
  if (it == table.end()) {
    return Status::NotFound("no plan covers all relations");
  }
  EnumerationResult result;
  result.truncated = truncated;
  result.subplans_emitted = total_emitted;
  result.dp_cells = table.size();
  result.dp_pruned = total_pruned;
  std::unordered_set<std::string> seen;
  for (const SubPlan& sp : it->second) {
    auto cand = Finalize(sp);
    if (!cand.ok()) continue;
    std::string key = cand->expr->ToString();
    if (seen.insert(key).second) result.plans.push_back(std::move(*cand));
  }
  if (result.plans.empty()) {
    return Status::NotFound("no valid finalized plan");
  }
  return result;
}

StatusOr<std::vector<PlanCandidate>> Enumerator::EnumerateAll() {
  GSOPT_ASSIGN_OR_RETURN(EnumerationResult result, Enumerate());
  return std::move(result.plans);
}

StatusOr<long long> Enumerator::CountAssociationTrees() {
  GSOPT_RETURN_IF_ERROR(init_status_);
  int n = h_.NumRelations();
  if (n == 0) return Status::InvalidArgument("empty hypergraph");
  std::unordered_map<uint64_t, long long> cnt;
  for (int r = 0; r < n; ++r) cnt[RelSet::Single(r).bits()] = 1;

  uint64_t full = h_.AllRels().bits();
  std::vector<uint64_t> subsets;
  for (uint64_t s = 1; s <= full; ++s) {
    if ((s & full) == s && __builtin_popcountll(s) >= 2) subsets.push_back(s);
  }
  std::sort(subsets.begin(), subsets.end(), [](uint64_t a, uint64_t b) {
    int pa = __builtin_popcountll(a), pb = __builtin_popcountll(b);
    return pa != pb ? pa < pb : a < b;
  });

  for (uint64_t sbits : subsets) {
    RelSet s(sbits);
    if (!SubsetConnected(s)) continue;
    if (options_.budget != nullptr) {
      GSOPT_RETURN_IF_ERROR(options_.budget->CheckDeadlineNow("count-trees"));
    }
    long long total = 0;
    uint64_t low = sbits & (~sbits + 1);
    for (uint64_t sub = (sbits - 1) & sbits; sub; sub = (sub - 1) & sbits) {
      if (!(sub & low)) continue;
      uint64_t other = sbits ^ sub;
      auto i1 = cnt.find(sub);
      auto i2 = cnt.find(other);
      if (i1 == cnt.end() || i2 == cnt.end()) continue;
      RelSet s1(sub), s2(other);
      // Valid combination: at least one applicable crossing atom, and in
      // Definition 2.3 modes every crossing edge fits the split whole.
      bool any_atom = false;
      bool valid = true;
      for (const Hyperedge& e : h_.edges()) {
        bool usable = false;
        for (const AtomInfo& ai : atoms_) {
          if (ai.edge_id != e.id) continue;
          if (s.ContainsAll(ai.span) && ai.span.Intersects(s1) &&
              ai.span.Intersects(s2)) {
            usable = true;
          }
        }
        if (!usable) continue;
        if (options_.mode != EnumMode::kGeneralized) {
          // Definition 2.3: an edge used at a combination must fit whole.
          bool fits = (s1.ContainsAll(e.v1) && s2.ContainsAll(e.v2)) ||
                      (s2.ContainsAll(e.v1) && s1.ContainsAll(e.v2));
          if (!fits) {
            valid = false;
            continue;
          }
        }
        any_atom = true;
      }
      if (any_atom && valid) total += i1->second * i2->second;
    }
    if (total > 0) cnt[sbits] = total;
  }
  auto it = cnt.find(full);
  if (it == cnt.end()) return Status::NotFound("no association tree");
  return it->second;
}

}  // namespace gsopt
