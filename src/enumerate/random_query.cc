#include "enumerate/random_query.h"

#include <string>
#include <vector>

#include "base/check.h"

namespace gsopt {

namespace {

std::string ColName(int c) { return std::string(1, static_cast<char>('a' + c)); }

struct Builder {
  const RandomQueryOptions& opt;
  Rng* rng;

  std::string RandomRel(const std::vector<int>& rels) const {
    int i = static_cast<int>(rng->Uniform(0, rels.size() - 1));
    return "r" + std::to_string(rels[i]);
  }

  Atom RandomAtom(const std::vector<int>& left,
                  const std::vector<int>& right) const {
    CmpOp ops[] = {CmpOp::kEq, CmpOp::kEq, CmpOp::kEq,
                   CmpOp::kLe, CmpOp::kNe};
    CmpOp op = ops[rng->Uniform(0, 4)];
    return MakeAtom(RandomRel(left), ColName(static_cast<int>(
                                         rng->Uniform(0, opt.num_cols - 1))),
                    op, RandomRel(right),
                    ColName(static_cast<int>(rng->Uniform(0, opt.num_cols - 1))));
  }

  NodePtr Build(std::vector<int> rels) const {
    if (rels.size() == 1) {
      return Node::Leaf("r" + std::to_string(rels[0]));
    }
    // Random split.
    size_t k = 1 + static_cast<size_t>(rng->Uniform(0, rels.size() - 2));
    // Shuffle.
    for (size_t i = rels.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(rng->Uniform(0, i - 1));
      std::swap(rels[i - 1], rels[j]);
    }
    std::vector<int> left(rels.begin(), rels.begin() + static_cast<long>(k));
    std::vector<int> right(rels.begin() + static_cast<long>(k), rels.end());
    NodePtr l = Build(left);
    NodePtr r = Build(right);

    Predicate pred(RandomAtom(left, right));
    if (rng->Bernoulli(opt.extra_atom_prob)) {
      pred.AddAtom(RandomAtom(left, right));
    }

    double roll = rng->NextDouble();
    if (roll < opt.foj_prob) {
      return Node::FullOuterJoin(l, r, pred);
    }
    if (roll < opt.foj_prob + opt.loj_prob) {
      // Randomly orient as LOJ or ROJ.
      if (rng->Bernoulli(0.5)) return Node::LeftOuterJoin(l, r, pred);
      return Node::RightOuterJoin(l, r, pred);
    }
    return Node::Join(l, r, pred);
  }
};

}  // namespace

NodePtr MakeRandomQuery(const RandomQueryOptions& options, Rng* rng) {
  GSOPT_CHECK(options.num_rels >= 1);
  std::vector<int> rels;
  for (int i = 1; i <= options.num_rels; ++i) rels.push_back(i);
  Builder b{options, rng};
  return b.Build(std::move(rels));
}

}  // namespace gsopt
