#include "enumerate/random_query.h"

#include <string>
#include <utility>
#include <vector>

#include "base/check.h"

namespace gsopt {

namespace {

std::string ColName(int c) { return std::string(1, static_cast<char>('a' + c)); }

CmpOp RandomCmpOp(Rng* rng) {
  // Equality-heavy so hash paths and meaningful match rates dominate.
  CmpOp ops[] = {CmpOp::kEq, CmpOp::kEq, CmpOp::kEq, CmpOp::kLe, CmpOp::kNe};
  return ops[rng->Uniform(0, 4)];
}

struct Builder {
  const RandomQueryOptions& opt;
  Rng* rng;
  RandomQueryFeatures* features;  // may be null

  std::string RandomRel(const std::vector<int>& rels) const {
    int i = static_cast<int>(rng->Uniform(0, rels.size() - 1));
    return "r" + std::to_string(rels[i]);
  }

  std::string RandomCol() const {
    return ColName(static_cast<int>(rng->Uniform(0, opt.num_cols - 1)));
  }

  Atom RandomAtom(const std::vector<int>& left,
                  const std::vector<int>& right) const {
    return MakeAtom(RandomRel(left), RandomCol(), RandomCmpOp(rng),
                    RandomRel(right), RandomCol());
  }

  Predicate RandomPredicate(const std::vector<int>& left,
                            const std::vector<int>& right) const {
    Atom first = RandomAtom(left, right);
    Predicate pred(first);
    if (rng->Bernoulli(opt.extra_atom_prob)) {
      if (rng->Bernoulli(opt.dup_pair_prob)) {
        // Reuse the first atom's column pair with a fresh comparison; the
        // same operator may be drawn again, yielding an exact `p AND p`
        // duplicate conjunct.
        Atom dup = first;
        dup.op = RandomCmpOp(rng);
        pred.AddAtom(std::move(dup));
        if (features != nullptr) features->has_dup_pair = true;
      } else {
        pred.AddAtom(RandomAtom(left, right));
      }
    }
    if (features != nullptr && pred.IsComplex()) {
      features->has_complex_pred = true;
    }
    return pred;
  }

  NodePtr Build(std::vector<int> rels) const {
    if (rels.size() == 1) {
      return Node::Leaf("r" + std::to_string(rels[0]));
    }
    // Random split.
    size_t k = 1 + static_cast<size_t>(rng->Uniform(0, rels.size() - 2));
    // Shuffle.
    for (size_t i = rels.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(rng->Uniform(0, i - 1));
      std::swap(rels[i - 1], rels[j]);
    }
    std::vector<int> left(rels.begin(), rels.begin() + static_cast<long>(k));
    std::vector<int> right(rels.begin() + static_cast<long>(k), rels.end());
    NodePtr l = Build(left);
    NodePtr r = Build(right);

    Predicate pred = RandomPredicate(left, right);

    double roll = rng->NextDouble();
    if (roll < opt.foj_prob) {
      if (features != nullptr) features->has_outer_join = true;
      return Node::FullOuterJoin(l, r, pred);
    }
    if (roll < opt.foj_prob + opt.loj_prob) {
      if (features != nullptr) features->has_outer_join = true;
      // Randomly orient as LOJ or ROJ.
      if (rng->Bernoulli(0.5)) return Node::LeftOuterJoin(l, r, pred);
      return Node::RightOuterJoin(l, r, pred);
    }
    return Node::Join(l, r, pred);
  }
};

// One column the text of a predicate may reference, with the scalar term
// that reaches it in the algebra (group columns keep their base-relation
// qualifiers through a GROUP BY; aggregate outputs are view-qualified).
struct VisibleCol {
  Attribute attr;
  bool is_agg = false;
};

// With probability options.order_by_prob, wraps `root` in a root ORDER BY
// over one or two distinct columns drawn from `candidates`, each with an
// independently drawn direction. The enforcer goes at the very top so the
// generated tree matches the binder's shape for an outermost ORDER BY.
NodePtr MaybeOrderBy(NodePtr root, const std::vector<Attribute>& candidates,
                     const RandomQueryOptions& options, Rng* rng,
                     RandomQueryFeatures* features) {
  if (candidates.empty() || !rng->Bernoulli(options.order_by_prob)) {
    return root;
  }
  exec::SortSpec spec;
  const size_t want = rng->Bernoulli(0.35) ? 2 : 1;
  for (size_t k = 0; k < want; ++k) {
    exec::SortKey key;
    key.attr = candidates[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(candidates.size()) - 1))];
    key.desc = rng->Bernoulli(0.4);
    bool dup = false;
    for (const exec::SortKey& prev : spec) {
      if (prev.attr == key.attr) dup = true;
    }
    if (dup) continue;  // a repeated key adds nothing to the order
    if (features != nullptr && key.desc) features->has_desc_key = true;
    spec.push_back(std::move(key));
  }
  if (features != nullptr) features->has_order_by = true;
  return Node::Sort(std::move(root), std::move(spec));
}

}  // namespace

NodePtr MakeRandomQuery(const RandomQueryOptions& options, Rng* rng,
                        RandomQueryFeatures* features) {
  GSOPT_CHECK(options.num_rels >= 1);
  if (features != nullptr) {
    *features = RandomQueryFeatures{};
    features->num_rels = options.num_rels;
  }
  std::vector<int> rels;
  for (int i = 1; i <= options.num_rels; ++i) rels.push_back(i);
  Builder b{options, rng, features};
  NodePtr root = b.Build(std::move(rels));
  std::vector<Attribute> candidates;
  for (int i = 1; i <= options.num_rels; ++i) {
    for (int c = 0; c < options.num_cols; ++c) {
      candidates.push_back(Attribute{"r" + std::to_string(i), ColName(c)});
    }
  }
  return MaybeOrderBy(std::move(root), candidates, options, rng, features);
}

NodePtr MakeGeneralRandomQuery(const RandomQueryOptions& options, Rng* rng,
                               RandomQueryFeatures* features) {
  GSOPT_CHECK(options.num_rels >= 1);
  RandomQueryFeatures local;
  if (features == nullptr) features = &local;
  if (options.num_rels < 2 || !rng->Bernoulli(options.view_prob)) {
    return MakeRandomQuery(options, rng, features);
  }
  *features = RandomQueryFeatures{};
  features->num_rels = options.num_rels;
  features->has_view = true;

  // The view aggregates a join/outer-join tree over r1..r<view_rels>; at
  // least one relation stays outside so aggregated-column predicates are
  // possible. FOJ is kept out of the view body (mirroring the existing
  // full-pipeline property suite) so the aggregation stays pullable.
  int view_rels = static_cast<int>(rng->Uniform(1, options.num_rels - 1));
  RandomQueryOptions view_opt = options;
  view_opt.num_rels = view_rels;
  view_opt.foj_prob = 0.0;
  Builder vb{view_opt, rng, features};
  std::vector<int> vrels;
  for (int i = 1; i <= view_rels; ++i) vrels.push_back(i);
  NodePtr view_base = vb.Build(std::move(vrels));

  exec::GroupBySpec spec;
  spec.group_cols.push_back(Attribute{"r1", "b"});
  if (view_rels >= 2 && rng->Bernoulli(0.5)) {
    spec.group_cols.push_back(Attribute{"r2", "b"});
  }
  exec::AggSpec agg;
  exec::AggFunc funcs[] = {exec::AggFunc::kCountStar, exec::AggFunc::kCount,
                           exec::AggFunc::kSum,       exec::AggFunc::kMin,
                           exec::AggFunc::kMax,       exec::AggFunc::kAvg};
  agg.func = funcs[rng->Uniform(0, 5)];
  if (agg.func != exec::AggFunc::kCountStar) {
    agg.input = Scalar::Column(
        "r" + std::to_string(rng->Uniform(1, view_rels)),
        ColName(static_cast<int>(rng->Uniform(0, options.num_cols - 1))));
    if (rng->Bernoulli(options.distinct_prob)) {
      agg.distinct = true;
      features->has_distinct = true;
    }
  }
  agg.out_rel = "v";
  agg.out_name = "agg";
  spec.aggs.push_back(agg);

  NodePtr acc = Node::GroupBy(view_base, spec);
  std::vector<VisibleCol> visible;
  for (const Attribute& g : spec.group_cols) {
    visible.push_back(VisibleCol{g, false});
  }
  const size_t agg_index = visible.size();
  visible.push_back(VisibleCol{Attribute{"v", "agg"}, true});

  Builder ob{options, rng, features};

  // One side of an attach predicate: a column of the accumulated tree,
  // which is the aggregate output with probability agg_pred_prob.
  auto acc_scalar = [&]() -> ScalarPtr {
    size_t pick =
        rng->Bernoulli(options.agg_pred_prob)
            ? agg_index
            : static_cast<size_t>(rng->Uniform(
                  0, static_cast<int64_t>(visible.size()) - 1));
    const VisibleCol& vc = visible[pick];
    ScalarPtr s = Scalar::Column(vc.attr.rel, vc.attr.name);
    if (vc.is_agg) {
      features->has_agg_pred = true;
      if (rng->Bernoulli(options.agg_arith_prob)) {
        s = Scalar::Arith(ArithOp::kMul,
                          Scalar::Const(Value::Int(rng->Uniform(2, 3))), s);
      }
    }
    return s;
  };

  auto attach_atom = [&](const std::string& rel) {
    Atom a;
    a.lhs = Scalar::Column(rel, ob.RandomCol());
    a.op = RandomCmpOp(rng);
    a.rhs = acc_scalar();
    return a;
  };

  for (int i = view_rels + 1; i <= options.num_rels; ++i) {
    std::string rel = "r" + std::to_string(i);
    Atom first = attach_atom(rel);
    Predicate pred(first);
    if (rng->Bernoulli(options.extra_atom_prob)) {
      if (rng->Bernoulli(options.dup_pair_prob)) {
        Atom dup = first;
        dup.op = RandomCmpOp(rng);
        pred.AddAtom(std::move(dup));
        features->has_dup_pair = true;
      } else {
        pred.AddAtom(attach_atom(rel));
      }
    }
    if (pred.IsComplex()) features->has_complex_pred = true;

    NodePtr leaf = Node::Leaf(rel);
    double roll = rng->NextDouble();
    if (roll < options.foj_prob) {
      features->has_outer_join = true;
      acc = Node::FullOuterJoin(acc, leaf, pred);
    } else if (roll < options.foj_prob + options.loj_prob) {
      features->has_outer_join = true;
      if (rng->Bernoulli(0.5)) {
        acc = Node::LeftOuterJoin(acc, leaf, pred);
      } else {
        acc = Node::RightOuterJoin(leaf, acc, pred);
      }
    } else {
      acc = Node::Join(acc, leaf, pred);
    }
    for (int c = 0; c < options.num_cols; ++c) {
      visible.push_back(VisibleCol{Attribute{rel, ColName(c)}, false});
    }
  }
  std::vector<Attribute> candidates;
  for (const VisibleCol& vc : visible) candidates.push_back(vc.attr);
  return MaybeOrderBy(std::move(acc), candidates, options, rng, features);
}

}  // namespace gsopt
