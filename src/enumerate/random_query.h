// Seeded random query generation: random join/outer-join trees over base
// relations r1..rn with simple or complex conjunctive predicates. Used by
// the equivalence property suites (every enumerated plan must reproduce the
// as-written result on random data) and by the plan-space benchmarks.
#ifndef GSOPT_ENUMERATE_RANDOM_QUERY_H_
#define GSOPT_ENUMERATE_RANDOM_QUERY_H_

#include "algebra/node.h"
#include "base/rng.h"

namespace gsopt {

struct RandomQueryOptions {
  int num_rels = 4;
  // Probability a binary operator is LOJ / FOJ (remainder inner join).
  double loj_prob = 0.4;
  double foj_prob = 0.1;
  // Probability a predicate gets a second conjunct (making it complex when
  // the extra conjunct references a third relation).
  double extra_atom_prob = 0.4;
  // Columns available per relation (r_i.a, r_i.b, ...).
  int num_cols = 3;
};

// Builds a random query tree over leaves r1..r<num_rels>. Every operator's
// predicate references at least one relation from each side (so the
// hypergraph is connected and well-formed).
NodePtr MakeRandomQuery(const RandomQueryOptions& options, Rng* rng);

}  // namespace gsopt

#endif  // GSOPT_ENUMERATE_RANDOM_QUERY_H_
