// Seeded random query generation over the PAPER'S FULL QUERY CLASS: random
// join/outer-join trees over base relations r1..rn with simple or complex
// conjunctive predicates, optionally containing a GROUP BY view
// (SUM/COUNT/MIN/MAX/AVG, DISTINCT variants) whose aggregate output may be
// referenced by ON predicates above it -- the aggregation-pullup scenarios
// of paper §4. Used by the equivalence property suites (every enumerated
// plan must reproduce the as-written result on random data), by the
// metamorphic fuzz harness (src/testing/) and by the plan-space benchmarks.
#ifndef GSOPT_ENUMERATE_RANDOM_QUERY_H_
#define GSOPT_ENUMERATE_RANDOM_QUERY_H_

#include "algebra/node.h"
#include "base/rng.h"
#include "exec/aggregate.h"

namespace gsopt {

struct RandomQueryOptions {
  int num_rels = 4;
  // Probability a binary operator is LOJ / FOJ (remainder inner join).
  double loj_prob = 0.4;
  double foj_prob = 0.1;
  // Probability a predicate gets a second conjunct (making it complex when
  // the extra conjunct references a third relation).
  double extra_atom_prob = 0.4;
  // Columns available per relation (r_i.a, r_i.b, ...).
  int num_cols = 3;
  // When a second conjunct is generated, probability it reuses the first
  // atom's column pair (with an independently drawn comparison operator),
  // so predicates can repeat a column pair -- including the exact-duplicate
  // `p AND p` shape that exercises tautological-conjunct handling in
  // simplification and enumeration.
  double dup_pair_prob = 0.0;

  // --- general-class extensions (GROUP BY views, aggregated columns) ---
  // Probability the query contains a GROUP BY view over a subset of the
  // relations (only effective with num_rels >= 2; MakeGeneralRandomQuery).
  double view_prob = 0.0;
  // Probability an ON-predicate atom that touches the view references the
  // aggregate output column instead of a group column.
  double agg_pred_prob = 0.5;
  // Probability an aggregate with an input column is DISTINCT.
  double distinct_prob = 0.25;
  // Probability an aggregated-column reference is scaled by a constant
  // (`x < 2 * v.agg`, the paper's Example 2.1 / `V2.QTY < 2 * V3.CNT`
  // shape).
  double agg_arith_prob = 0.3;

  // --- ordering extensions (ORDER BY / the kSort enforcer) ---
  // Probability the query is wrapped in a root ORDER BY (Node::Sort) over
  // one or two visible columns with independently drawn ASC/DESC
  // directions; in the view case the aggregate output column is a
  // candidate key.
  double order_by_prob = 0.0;
};

// What one generated query actually contains; the fuzz driver aggregates
// these into its coverage summary.
struct RandomQueryFeatures {
  bool has_view = false;          // a GROUP BY view is present
  bool has_agg_pred = false;      // a predicate references the agg output
  bool has_distinct = false;      // the aggregate is DISTINCT
  bool has_dup_pair = false;      // a predicate repeats a column pair
  bool has_complex_pred = false;  // a predicate references > 2 relations
  bool has_outer_join = false;    // at least one LOJ/ROJ/FOJ
  bool has_order_by = false;      // a root ORDER BY (kSort) is present
  bool has_desc_key = false;      // ...with at least one DESC key
  int num_rels = 0;
};

// Builds a random join/outer-join tree over leaves r1..r<num_rels>. Every
// operator's predicate references at least one relation from each side (so
// the hypergraph is connected and well-formed). `features`, when non-null,
// reports what was generated.
NodePtr MakeRandomQuery(const RandomQueryOptions& options, Rng* rng,
                        RandomQueryFeatures* features = nullptr);

// Builds a random query from the paper's general class: with probability
// options.view_prob a prefix of the relations is wrapped in a GROUP BY view
// (aggregate output qualified as v.agg), and the remaining relations attach
// around it with join/outer-join operators whose predicates may reference
// the view's group columns or -- with options.agg_pred_prob -- its
// aggregate output, optionally through constant arithmetic. Falls back to
// MakeRandomQuery when no view is drawn.
NodePtr MakeGeneralRandomQuery(const RandomQueryOptions& options, Rng* rng,
                               RandomQueryFeatures* features = nullptr);

}  // namespace gsopt

#endif  // GSOPT_ENUMERATE_RANDOM_QUERY_H_
