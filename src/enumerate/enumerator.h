// Association-tree enumeration and operator assignment (paper §3-§4).
//
// The enumerator runs bottom-up dynamic programming over connected relation
// subsets of the query hypergraph, in one of three modes:
//
//  * kBinaryOnly  -- Definition 2.3 association trees ([BHAR95a]'s stricter
//    rule: a hyperedge may only combine subtrees that fully contain its
//    hypernodes) and plans restricted to the binary operators
//    {join, LOJ, ROJ, FOJ}. This models the [GALI92a/ROSE90] class.
//  * kBaseline    -- Definition 2.3 trees, but MGOJ is available for
//    combinations whose inner-join semantics would violate an outer join
//    applied below. This models the [BHAR95a] class.
//  * kGeneralized -- the paper's contribution: Definition 3.2 association
//    trees (hyperedges may be broken into atom sub-edges), MGOJ, and
//    deferred conjuncts compensated by a generalized selection at the root
//    whose preserved groups come from Theorem 1 (computed once from the
//    original hypergraph).
//
// Every combination's operator is chosen so the expression preserves what
// the original operators promised to preserve:
//  * inner joins over inputs that contain an already-applied (bi)directed
//    edge h whose padded tuples the new predicate touches become MGOJ with
//    preserved group pres(h) intersected with the side h lives in;
//  * atoms of a (bi)directed edge are applied together at one node (the
//    edge's operator placement); remaining atoms are deferred to the root.
#ifndef GSOPT_ENUMERATE_ENUMERATOR_H_
#define GSOPT_ENUMERATE_ENUMERATOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "algebra/node.h"
#include "base/budget.h"
#include "base/status.h"
#include "hypergraph/analysis.h"
#include "hypergraph/hypergraph.h"

namespace gsopt {

enum class EnumMode { kBinaryOnly, kBaseline, kGeneralized };

std::string EnumModeName(EnumMode m);

struct EnumOptions {
  EnumMode mode = EnumMode::kGeneralized;
  // In kGeneralized mode, also enumerate plans that voluntarily defer
  // applicable atoms of a complex edge (keeping a strict subset at the
  // operator); otherwise a placement applies every applicable atom.
  bool enumerate_partial_keeps = true;
  // Soft cap on total emitted subplans. Hitting it does NOT fail the
  // enumeration: exploration of alternatives stops (one plan per remaining
  // DP cell keeps the search connected) and the result carries
  // truncated=true so callers can report a possibly-suboptimal plan.
  size_t max_plans = 2000000;
  // Optional cooperative budget (not owned). The DP loop probes the
  // deadline at combination granularity and returns
  // Status(kResourceExhausted) when it expires; the budget's plan
  // allowance tightens max_plans.
  ResourceBudget* budget = nullptr;
  // Dynamic-programming pruning: when set, each DP cell keeps only the
  // cheapest subplan per (applied atoms, placed edges) state -- states
  // differ in which compensations remain, so they are not interchangeable
  // and are pruned independently (the classic Selinger argument extended
  // to deferred predicates).
  std::function<double(const NodePtr&)> cost_fn;
};

struct PlanCandidate {
  NodePtr expr;            // complete plan incl. root GS compensation
  int num_mgoj = 0;        // MGOJ operators used
  int num_deferred = 0;    // atoms compensated at the root
};

struct EnumerationResult {
  std::vector<PlanCandidate> plans;
  // The plan cap stopped exploration before the space was exhausted: the
  // plans are all valid, but a cheaper one may exist.
  bool truncated = false;
  // Total DP subplans emitted (a work metric, not |plans|).
  size_t subplans_emitted = 0;
  // DP table cells stored (connected subsets with >= 1 surviving subplan,
  // singletons included).
  size_t dp_cells = 0;
  // Subplans discarded by DP cost pruning (cheapest-per-state).
  size_t dp_pruned = 0;
};

class Enumerator {
 public:
  Enumerator(const Hypergraph& h, EnumOptions options);

  // Overrides the expression used for a hypergraph leaf (default: a base
  // relation scan). Used for filtered relations and opaque units.
  void SetLeafExprs(std::map<std::string, NodePtr> leaf_exprs) {
    leaf_exprs_ = std::move(leaf_exprs);
  }

  // All valid plans for the full relation set (deduplicated by structure),
  // plus whether the plan cap truncated the space. On deadline expiry
  // returns Status(kResourceExhausted) -- a partial DP table has no plan
  // covering every relation, so there is nothing valid to salvage.
  StatusOr<EnumerationResult> Enumerate();

  // Back-compat convenience: the plans of Enumerate() without the
  // truncation report.
  StatusOr<std::vector<PlanCandidate>> EnumerateAll();

  // Number of distinct association trees (bracketings, ignoring operator
  // choices) valid in this mode.
  StatusOr<long long> CountAssociationTrees();

 private:
  struct AtomInfo {
    int edge_id;
    int index_in_edge;
    RelSet span;
  };

  // One partial plan for a relation subset.
  struct SubPlan {
    NodePtr expr;
    RelSet applied_atoms;   // global atom ids applied inside expr
    RelSet placed_edges;    // (bi)directed edges whose operator is inside
    int num_mgoj = 0;
  };

  bool SubsetConnected(RelSet rels) const;

  // Combines two subplans over disjoint relation sets; appends resulting
  // plans to `out`. May emit several plans (partial-keep choices).
  void Combine(RelSet s1, const SubPlan& p1, RelSet s2, const SubPlan& p2,
               std::vector<SubPlan>* out) const;

  // Emits the plan for one concrete choice of applied atoms.
  void EmitCombination(RelSet s1, const SubPlan& p1, RelSet s2,
                       const SubPlan& p2, RelSet apply_atoms,
                       std::vector<SubPlan>* out) const;

  // Wraps root-level generalized selections for deferred atoms.
  StatusOr<PlanCandidate> Finalize(const SubPlan& plan) const;

  NodePtr LeafExpr(int rel_id) const;

  const Hypergraph& h_;
  HypergraphAnalysis analysis_;
  EnumOptions options_;
  // Construction problems (e.g. more predicate atoms than RelSet can
  // index) are deferred and reported from Enumerate(), not aborted on.
  Status init_status_;
  std::map<std::string, NodePtr> leaf_exprs_;
  std::vector<AtomInfo> atoms_;           // global atom table
  std::vector<std::vector<int>> edge_atoms_;  // edge id -> global atom ids
};

}  // namespace gsopt

#endif  // GSOPT_ENUMERATE_ENUMERATOR_H_
