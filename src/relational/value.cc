#include "relational/value.h"

#include <cmath>
#include <functional>

#include "base/check.h"

namespace gsopt {

std::optional<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  if (a.IsNumeric() && b.IsNumeric()) {
    if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
      int64_t x = a.AsInt(), y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    return CompareDoubles(a.AsDouble(), b.AsDouble());
  }
  if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
    int c = a.AsString().compare(b.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return std::nullopt;  // incomparable types behave like UNKNOWN
}

bool Value::IdentityEquals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.IsNumeric() != b.IsNumeric()) return false;
  auto c = Compare(a, b);
  return c.has_value() && *c == 0;
}

bool Value::IdentityLess(const Value& a, const Value& b) {
  // Order: NULL < numerics < strings; numerics by value, strings lexical.
  auto rank = [](const Value& v) {
    switch (v.type()) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // NULL == NULL
  auto c = Compare(a, b);
  GSOPT_DCHECK(c.has_value());
  return *c < 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kInt:
    case ValueType::kDouble: {
      // Hash numerics through their double value so 1 and 1.0 collide,
      // matching IdentityEquals' numeric coercion. ExactInt64 guards the
      // int64 cast: the old unconditional `static_cast<int64_t>(d)` was UB
      // for NaN and for magnitudes at or past 2^63 (an INT64_MAX value
      // rounds up to exactly 2^63 as a double, which does not fit back).
      double d = AsDouble();
      int64_t i = 0;
      if (ExactInt64(d, &i)) return std::hash<int64_t>()(i);
      if (std::isnan(d)) return 0x7FF8DEADu;  // one class for every NaN
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::string s = std::to_string(std::get<double>(rep_));
      return s;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

Tri EvalCmp(CmpOp op, const Value& a, const Value& b) {
  std::optional<int> c = Value::Compare(a, b);
  if (!c.has_value()) return Tri::kUnknown;
  bool r = false;
  switch (op) {
    case CmpOp::kEq:
      r = (*c == 0);
      break;
    case CmpOp::kNe:
      r = (*c != 0);
      break;
    case CmpOp::kLt:
      r = (*c < 0);
      break;
    case CmpOp::kLe:
      r = (*c <= 0);
      break;
    case CmpOp::kGt:
      r = (*c > 0);
      break;
    case CmpOp::kGe:
      r = (*c >= 0);
      break;
  }
  return r ? Tri::kTrue : Tri::kFalse;
}

std::string CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

Value EvalArith(ArithOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.IsNumeric() || !b.IsNumeric()) return Value::Null();
  bool both_int = a.type() == ValueType::kInt && b.type() == ValueType::kInt;
  if (both_int && op != ArithOp::kDiv) {
    int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case ArithOp::kAdd:
        return Value::Int(x + y);
      case ArithOp::kSub:
        return Value::Int(x - y);
      case ArithOp::kMul:
        return Value::Int(x * y);
      default:
        break;
    }
  }
  double x = a.AsDouble(), y = b.AsDouble();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Double(x + y);
    case ArithOp::kSub:
      return Value::Double(x - y);
    case ArithOp::kMul:
      return Value::Double(x * y);
    case ArithOp::kDiv:
      if (y == 0.0) return Value::Null();
      return Value::Double(x / y);
  }
  return Value::Null();
}

std::string ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

}  // namespace gsopt
