// Small-buffer vector for Tuple payloads. The first kInline elements live
// inside the object itself, so a Tuple's values and row ids sit in one
// contiguous allocation with the enclosing std::vector<Tuple> -- a row-major
// layout the columnar gathers scan without pointer chasing, and an output
// path (join concat, select copy) that performs zero heap allocations for
// the common shapes. Wider payloads fall back to a heap array
// transparently.
//
// Supports the std::vector subset the engine uses on Tuple members:
// size/empty/data/begin/end/operator[]/front/back, push_back/emplace_back,
// reserve, resize, assign, clear, and append-at-end insert. Elements must
// be nothrow-movable (Value and RowId are), which keeps the move
// constructor noexcept and lets std::vector<Tuple> relocate with moves.
#ifndef GSOPT_RELATIONAL_INLINE_VEC_H_
#define GSOPT_RELATIONAL_INLINE_VEC_H_

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace gsopt {

template <typename T, size_t kInline>
class InlineVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() = default;
  InlineVec(const InlineVec& o) {
    reserve(o.size_);
    AppendCopy(o.data(), o.size_);
  }
  InlineVec(InlineVec&& o) noexcept { StealFrom(std::move(o)); }
  // Converting constructors keep Tuple{values, vids} call sites that build
  // payloads in std::vector working unchanged.
  InlineVec(std::vector<T> v) {
    reserve(v.size());
    AppendMove(v.data(), v.size());
  }
  ~InlineVec() {
    DestroyElements();
    FreeHeap();
  }

  InlineVec& operator=(const InlineVec& o) {
    if (this == &o) return *this;
    clear();
    reserve(o.size_);
    AppendCopy(o.data(), o.size_);
    return *this;
  }
  InlineVec& operator=(InlineVec&& o) noexcept {
    if (this == &o) return *this;
    DestroyElements();
    FreeHeap();
    heap_ = nullptr;
    cap_ = kInline;
    StealFrom(std::move(o));
    return *this;
  }
  InlineVec& operator=(std::vector<T> v) {
    clear();
    reserve(v.size());
    AppendMove(v.data(), v.size());
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() { return heap_ != nullptr ? heap_ : InlineData(); }
  const T* data() const { return heap_ != nullptr ? heap_ : InlineData(); }
  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }
  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
  friend bool operator!=(const InlineVec& a, const InlineVec& b) {
    return !(a == b);
  }

  void clear() {
    DestroyElements();
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n > cap_) Grow(static_cast<uint32_t>(n));
  }

  void push_back(const T& v) {
    EnsureRoom();
    ::new (static_cast<void*>(data() + size_)) T(v);
    ++size_;
  }
  void push_back(T&& v) {
    EnsureRoom();
    ::new (static_cast<void*>(data() + size_)) T(std::move(v));
    ++size_;
  }
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    EnsureRoom();
    T* p = ::new (static_cast<void*>(data() + size_))
        T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void resize(size_t n) { resize(n, T()); }
  void resize(size_t n, const T& fill) {
    if (n < size_) {
      T* d = data();
      for (size_t i = n; i < size_; ++i) d[i].~T();
      size_ = static_cast<uint32_t>(n);
      return;
    }
    reserve(n);
    T* d = data();
    while (size_ < n) {
      ::new (static_cast<void*>(d + size_)) T(fill);
      ++size_;
    }
  }

  void assign(size_t n, const T& fill) {
    clear();
    reserve(n);
    T* d = data();
    for (; size_ < n; ++size_) ::new (static_cast<void*>(d + size_)) T(fill);
  }
  template <typename It>
  void assign(It first, It last) {
    clear();
    reserve(static_cast<size_t>(last - first));
    for (; first != last; ++first) push_back(*first);
  }

  // Append-at-end insert, the only form Tuple code uses (Concat, spill
  // reload, projection). Inserting in the middle is not supported.
  template <typename It>
  iterator insert(const_iterator pos, It first, It last) {
    assert(pos == end());
    (void)pos;
    size_t at = size_;
    reserve(size_ + static_cast<size_t>(last - first));
    for (; first != last; ++first) push_back(*first);
    return data() + at;
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_); }
  const T* InlineData() const { return reinterpret_cast<const T*>(inline_); }

  void EnsureRoom() {
    if (size_ == cap_) Grow(size_ + 1);
  }

  void Grow(uint32_t need) {
    uint32_t cap = cap_ * 2;
    if (cap < need) cap = need;
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    T* old = data();
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(old[i]));
      old[i].~T();
    }
    FreeHeap();
    heap_ = fresh;
    cap_ = cap;
  }

  void AppendCopy(const T* src, size_t n) {
    T* d = data();
    for (size_t i = 0; i < n; ++i) {
      ::new (static_cast<void*>(d + size_)) T(src[i]);
      ++size_;
    }
  }
  void AppendMove(T* src, size_t n) {
    T* d = data();
    for (size_t i = 0; i < n; ++i) {
      ::new (static_cast<void*>(d + size_)) T(std::move(src[i]));
      ++size_;
    }
  }

  // Precondition: *this is empty with inline capacity (fresh or just
  // destroyed). Heap buffers are stolen; inline payloads move per element.
  void StealFrom(InlineVec&& o) noexcept {
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.cap_ = kInline;
      o.size_ = 0;
      return;
    }
    T* src = o.InlineData();
    T* d = InlineData();
    size_ = o.size_;
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(d + i)) T(std::move(src[i]));
      src[i].~T();
    }
    o.size_ = 0;
  }

  void DestroyElements() {
    T* d = data();
    for (size_t i = 0; i < size_; ++i) d[i].~T();
  }
  void FreeHeap() {
    if (heap_ != nullptr) ::operator delete(heap_);
    heap_ = nullptr;
  }

  // 32-bit header keeps sizeof(InlineVec) tight; tuple payloads are
  // bounded far below 2^32 elements (spill framing caps them at 65535).
  uint32_t size_ = 0;
  uint32_t cap_ = kInline;
  T* heap_ = nullptr;
  alignas(T) unsigned char inline_[kInline * sizeof(T)];
};

}  // namespace gsopt

#endif  // GSOPT_RELATIONAL_INLINE_VEC_H_
