// Tuples carry real attribute values plus one (nullable) row id per base
// relation in the owning relation's virtual schema.
#ifndef GSOPT_RELATIONAL_TUPLE_H_
#define GSOPT_RELATIONAL_TUPLE_H_

#include <cstdint>
#include <vector>

#include "relational/inline_vec.h"
#include "relational/value.h"

namespace gsopt {

using RowId = int64_t;
inline constexpr RowId kNullRowId = -1;

struct Tuple {
  // Inline capacities cover the common shapes -- base-relation rows and
  // two-relation join rows -- so the hot output paths (join concat, select
  // copy) allocate nothing per tuple. Wider tuples fall back to the heap
  // inside InlineVec.
  static constexpr size_t kInlineValues = 4;
  static constexpr size_t kInlineVids = 2;

  InlineVec<Value, kInlineValues> values;
  InlineVec<RowId, kInlineVids> vids;

  Tuple() = default;
  Tuple(std::vector<Value> v, std::vector<RowId> ids)
      : values(std::move(v)), vids(std::move(ids)) {}

  // Concatenation of two tuples (cartesian product row).
  static Tuple Concat(const Tuple& a, const Tuple& b) {
    Tuple t;
    t.values.reserve(a.values.size() + b.values.size());
    t.values.insert(t.values.end(), a.values.begin(), a.values.end());
    t.values.insert(t.values.end(), b.values.begin(), b.values.end());
    t.vids.reserve(a.vids.size() + b.vids.size());
    t.vids.insert(t.vids.end(), a.vids.begin(), a.vids.end());
    t.vids.insert(t.vids.end(), b.vids.begin(), b.vids.end());
    return t;
  }
};

}  // namespace gsopt

#endif  // GSOPT_RELATIONAL_TUPLE_H_
