#include "relational/csv.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace gsopt {

namespace {

// Splits one CSV record honouring quotes; returns false on malformed input.
bool SplitRecord(const std::string& line, std::vector<std::string>* fields,
                 std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  std::string cur;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      fields->push_back(cur);
      quoted->push_back(was_quoted);
      cur.clear();
      was_quoted = false;
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  if (in_quotes) return false;
  fields->push_back(cur);
  quoted->push_back(was_quoted);
  return true;
}

Value InferValue(const std::string& field, bool was_quoted) {
  if (field.empty() && !was_quoted) return Value::Null();
  if (was_quoted) return Value::String(field);
  // Integer?
  size_t i = (field[0] == '-' || field[0] == '+') ? 1 : 0;
  bool all_digits = i < field.size();
  bool has_dot = false;
  for (size_t j = i; j < field.size(); ++j) {
    if (field[j] == '.' && !has_dot) {
      has_dot = true;
    } else if (!std::isdigit(static_cast<unsigned char>(field[j]))) {
      all_digits = false;
      break;
    }
  }
  if (all_digits && !has_dot) return Value::Int(std::stoll(field));
  if (all_digits && has_dot) return Value::Double(std::stod(field));
  return Value::String(field);
}

std::string EscapeField(const Value& v) {
  if (v.is_null()) return "";
  std::string s;
  switch (v.type()) {
    case ValueType::kInt:
      return std::to_string(v.AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", v.AsDouble());
      return buf;
    }
    case ValueType::kString:
      s = v.AsString();
      break;
    default:
      return "";
  }
  bool needs_quotes = s.find_first_of(",\"\n") != std::string::npos ||
                      s.empty();
  if (!needs_quotes) {
    // Quote strings that would otherwise re-parse as numbers or NULL.
    needs_quotes = true;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  return out + "\"";
}

}  // namespace

StatusOr<Relation> ParseCsv(const std::string& table,
                            const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV input");
  }
  std::vector<std::string> headers;
  std::vector<bool> hq;
  if (!SplitRecord(line, &headers, &hq) || headers.empty()) {
    return Status::InvalidArgument("malformed CSV header");
  }
  Schema schema;
  for (const std::string& h : headers) {
    if (h.empty()) return Status::InvalidArgument("empty column name");
    schema.Append(Attribute{table, h});
  }
  Relation rel(schema, VirtualSchema({table}));
  RowId id = 0;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::vector<bool> quoted;
    if (!SplitRecord(line, &fields, &quoted)) {
      return Status::InvalidArgument("malformed CSV at line " +
                                     std::to_string(lineno));
    }
    if (fields.size() != headers.size()) {
      return Status::InvalidArgument(
          "arity mismatch at line " + std::to_string(lineno) + ": expected " +
          std::to_string(headers.size()) + " fields, got " +
          std::to_string(fields.size()));
    }
    std::vector<Value> values;
    values.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      values.push_back(InferValue(fields[i], quoted[i]));
    }
    rel.AddBaseRow(std::move(values), id++);
  }
  return rel;
}

Status LoadCsvFile(const std::string& path, const std::string& table,
                   Catalog* catalog) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  GSOPT_ASSIGN_OR_RETURN(Relation rel, ParseCsv(table, buf.str()));
  return catalog->Register(table, std::move(rel));
}

std::string ToCsv(const Relation& relation) {
  std::string out;
  for (int i = 0; i < relation.schema().size(); ++i) {
    if (i) out += ",";
    out += relation.schema().attr(i).name;
  }
  out += "\n";
  for (const Tuple& t : relation.rows()) {
    for (size_t i = 0; i < t.values.size(); ++i) {
      if (i) out += ",";
      out += EscapeField(t.values[i]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace gsopt
