#include "relational/relation.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace gsopt {

void Relation::Add(const Tuple& t) {
  GSOPT_DCHECK(static_cast<int>(t.values.size()) == schema_.size());
  GSOPT_DCHECK(static_cast<int>(t.vids.size()) == vschema_.size());
  rows_.push_back(t);
}

void Relation::Add(Tuple&& t) {
  GSOPT_DCHECK(static_cast<int>(t.values.size()) == schema_.size());
  GSOPT_DCHECK(static_cast<int>(t.vids.size()) == vschema_.size());
  rows_.push_back(std::move(t));
}

void Relation::AddConcat(const Tuple& a, const Tuple& b) {
  GSOPT_DCHECK(static_cast<int>(a.values.size() + b.values.size()) ==
               schema_.size());
  GSOPT_DCHECK(static_cast<int>(a.vids.size() + b.vids.size()) ==
               vschema_.size());
  Tuple& t = rows_.emplace_back();
  t.values.reserve(a.values.size() + b.values.size());
  t.values.insert(t.values.end(), a.values.begin(), a.values.end());
  t.values.insert(t.values.end(), b.values.begin(), b.values.end());
  t.vids.reserve(a.vids.size() + b.vids.size());
  t.vids.insert(t.vids.end(), a.vids.begin(), a.vids.end());
  t.vids.insert(t.vids.end(), b.vids.begin(), b.vids.end());
}

void Relation::AddBaseRow(std::vector<Value> values, RowId id) {
  Tuple t;
  t.values = std::move(values);
  t.vids.assign(vschema_.size(), id);
  Add(std::move(t));
}

void Relation::AppendFrom(Relation&& other) {
  GSOPT_DCHECK(other.schema_.size() == schema_.size());
  GSOPT_DCHECK(other.vschema_.size() == vschema_.size());
  if (rows_.empty()) {
    rows_ = std::move(other.rows_);
  } else {
    rows_.reserve(rows_.size() + other.rows_.size());
    for (Tuple& t : other.rows_) rows_.push_back(std::move(t));
  }
  other.rows_.clear();
}

Tuple Relation::NullTuple() const {
  Tuple t;
  t.values.assign(schema_.size(), Value::Null());
  t.vids.assign(vschema_.size(), kNullRowId);
  return t;
}

namespace {

// Column permutation sorting attributes by qualified name; makes comparison
// independent of the column order a particular plan produced.
std::vector<int> NameSortedOrder(const Schema& s) {
  std::vector<int> order(s.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return s.attr(a).Qualified() < s.attr(b).Qualified();
  });
  return order;
}

bool RowLess(const Tuple& a, const Tuple& b, const std::vector<int>& oa,
             const std::vector<int>& ob) {
  for (size_t i = 0; i < oa.size(); ++i) {
    const Value& x = a.values[oa[i]];
    const Value& y = b.values[ob[i]];
    if (Value::IdentityLess(x, y)) return true;
    if (Value::IdentityLess(y, x)) return false;
  }
  return false;
}

bool RowEq(const Tuple& a, const Tuple& b, const std::vector<int>& oa,
           const std::vector<int>& ob) {
  for (size_t i = 0; i < oa.size(); ++i) {
    if (!Value::IdentityEquals(a.values[oa[i]], b.values[ob[i]])) return false;
  }
  return true;
}

}  // namespace

bool Relation::BagEquals(const Relation& a, const Relation& b) {
  if (a.NumRows() != b.NumRows()) return false;
  std::vector<int> oa = NameSortedOrder(a.schema());
  std::vector<int> ob = NameSortedOrder(b.schema());
  if (oa.size() != ob.size()) return false;
  for (size_t i = 0; i < oa.size(); ++i) {
    if (a.schema().attr(oa[i]).Qualified() !=
        b.schema().attr(ob[i]).Qualified()) {
      return false;
    }
  }
  std::vector<int64_t> ra(a.NumRows()), rb(b.NumRows());
  std::iota(ra.begin(), ra.end(), 0);
  std::iota(rb.begin(), rb.end(), 0);
  std::sort(ra.begin(), ra.end(), [&](int64_t x, int64_t y) {
    return RowLess(a.rows()[x], a.rows()[y], oa, oa);
  });
  std::sort(rb.begin(), rb.end(), [&](int64_t x, int64_t y) {
    return RowLess(b.rows()[x], b.rows()[y], ob, ob);
  });
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (!RowEq(a.rows()[ra[i]], b.rows()[rb[i]], oa, ob)) return false;
  }
  return true;
}

std::string Relation::ToString(int max_rows) const {
  std::string s = schema_.ToString() + "  [" + std::to_string(NumRows()) +
                  " rows]\n";
  int shown = 0;
  for (const Tuple& t : rows_) {
    if (shown++ >= max_rows) {
      s += "  ...\n";
      break;
    }
    s += "  (";
    for (size_t i = 0; i < t.values.size(); ++i) {
      if (i) s += ", ";
      s += t.values[i].ToString();
    }
    s += ")\n";
  }
  return s;
}

std::string Relation::CanonicalString() const {
  std::vector<int> order = NameSortedOrder(schema_);
  std::string header;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i) header += ",";
    header += schema_.attr(order[i]).Qualified();
  }
  std::vector<std::string> lines;
  lines.reserve(rows_.size());
  for (const Tuple& t : rows_) {
    std::string line;
    for (size_t i = 0; i < order.size(); ++i) {
      if (i) line += ",";
      line += t.values[order[i]].ToString();
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out = header + "\n";
  for (const std::string& l : lines) out += l + "\n";
  return out;
}

}  // namespace gsopt
