#include "relational/expr.h"

#include "base/check.h"

namespace gsopt {

ScalarPtr Scalar::Column(std::string rel, std::string name) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kColumn;
  s->rel_ = std::move(rel);
  s->name_ = std::move(name);
  return s;
}

ScalarPtr Scalar::Const(Value v) {
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kConst;
  s->constant_ = std::move(v);
  return s;
}

ScalarPtr Scalar::Arith(ArithOp op, ScalarPtr lhs, ScalarPtr rhs) {
  GSOPT_CHECK(lhs != nullptr && rhs != nullptr);
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kArith;
  s->arith_op_ = op;
  s->lhs_ = std::move(lhs);
  s->rhs_ = std::move(rhs);
  return s;
}

ScalarPtr Scalar::Param(int slot) {
  GSOPT_CHECK(slot >= 0);
  auto s = std::shared_ptr<Scalar>(new Scalar());
  s->kind_ = Kind::kParam;
  s->param_slot_ = slot;
  return s;
}

void Scalar::CollectColumns(std::vector<Attribute>* out) const {
  switch (kind_) {
    case Kind::kColumn:
      out->push_back(Attribute{rel_, name_});
      break;
    case Kind::kConst:
    case Kind::kParam:
      break;
    case Kind::kArith:
      lhs_->CollectColumns(out);
      rhs_->CollectColumns(out);
      break;
  }
}

Value Scalar::Eval(const Tuple& tuple, const Schema& schema) const {
  switch (kind_) {
    case Kind::kColumn: {
      int i = schema.Find(rel_, name_);
      if (i < 0) return Value::Null();
      return tuple.values[i];
    }
    case Kind::kConst:
      return constant_;
    case Kind::kArith:
      return EvalArith(arith_op_, lhs_->Eval(tuple, schema),
                       rhs_->Eval(tuple, schema));
    case Kind::kParam:
      // Unsubstituted slot: NULL (total evaluation). The Session boundary
      // guarantees executed plans carry no parameters.
      return Value::Null();
  }
  return Value::Null();
}

Status Scalar::Validate(const Schema& schema) const {
  switch (kind_) {
    case Kind::kColumn:
      if (schema.Find(rel_, name_) < 0) {
        return Status::NotFound("column " + rel_ + "." + name_ +
                                " not in schema " + schema.ToString());
      }
      return Status::OK();
    case Kind::kConst:
    case Kind::kParam:
      return Status::OK();
    case Kind::kArith:
      GSOPT_RETURN_IF_ERROR(lhs_->Validate(schema));
      return rhs_->Validate(schema);
  }
  return Status::OK();
}

std::string Scalar::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return rel_ + "." + name_;
    case Kind::kConst:
      return constant_.ToString();
    case Kind::kArith:
      return "(" + lhs_->ToString() + " " + ArithOpName(arith_op_) + " " +
             rhs_->ToString() + ")";
    case Kind::kParam:
      return "$" + std::to_string(param_slot_ + 1);
  }
  return "?";
}

std::set<std::string> Atom::RelNames() const {
  std::vector<Attribute> cols;
  lhs->CollectColumns(&cols);
  if (rhs) rhs->CollectColumns(&cols);
  std::set<std::string> rels;
  for (const Attribute& a : cols) rels.insert(a.rel);
  return rels;
}

Tri Atom::Eval(const Tuple& tuple, const Schema& schema) const {
  switch (kind) {
    case Kind::kCompare:
      return EvalCmp(op, lhs->Eval(tuple, schema), rhs->Eval(tuple, schema));
    case Kind::kIsNull:
      return lhs->Eval(tuple, schema).is_null() ? Tri::kTrue : Tri::kFalse;
    case Kind::kIsNotNull:
      return lhs->Eval(tuple, schema).is_null() ? Tri::kFalse : Tri::kTrue;
  }
  return Tri::kUnknown;
}

Status Atom::Validate(const Schema& schema) const {
  GSOPT_RETURN_IF_ERROR(lhs->Validate(schema));
  if (rhs) return rhs->Validate(schema);
  return Status::OK();
}

std::string Atom::ToString() const {
  switch (kind) {
    case Kind::kIsNull:
      return lhs->ToString() + " IS NULL";
    case Kind::kIsNotNull:
      return lhs->ToString() + " IS NOT NULL";
    case Kind::kCompare:
      break;
  }
  return lhs->ToString() + " " + CmpOpName(op) + " " + rhs->ToString();
}

Atom MakeAtom(const std::string& lrel, const std::string& lcol, CmpOp op,
              const std::string& rrel, const std::string& rcol) {
  Atom a;
  a.lhs = Scalar::Column(lrel, lcol);
  a.op = op;
  a.rhs = Scalar::Column(rrel, rcol);
  return a;
}

Atom MakeConstAtom(const std::string& lrel, const std::string& lcol, CmpOp op,
                   Value v) {
  Atom a;
  a.lhs = Scalar::Column(lrel, lcol);
  a.op = op;
  a.rhs = Scalar::Const(std::move(v));
  return a;
}

Atom MakeTautologyAtom() {
  Atom a;
  a.lhs = Scalar::Const(Value::Int(1));
  a.op = CmpOp::kEq;
  a.rhs = Scalar::Const(Value::Int(1));
  return a;
}

Atom MakeIsNullAtom(const std::string& rel, const std::string& col,
                    bool negated) {
  Atom a;
  a.kind = negated ? Atom::Kind::kIsNotNull : Atom::Kind::kIsNull;
  a.lhs = Scalar::Column(rel, col);
  return a;
}

Predicate Predicate::And(const Predicate& a, const Predicate& b) {
  std::vector<Atom> atoms = a.atoms_;
  atoms.insert(atoms.end(), b.atoms_.begin(), b.atoms_.end());
  return Predicate(std::move(atoms));
}

std::set<std::string> Predicate::RelNames() const {
  std::set<std::string> rels;
  for (const Atom& a : atoms_) {
    auto r = a.RelNames();
    rels.insert(r.begin(), r.end());
  }
  return rels;
}

Tri Predicate::Eval(const Tuple& tuple, const Schema& schema) const {
  Tri result = Tri::kTrue;
  for (const Atom& a : atoms_) {
    result = TriAnd(result, a.Eval(tuple, schema));
    if (result == Tri::kFalse) return Tri::kFalse;
  }
  return result;
}

Status Predicate::Validate(const Schema& schema) const {
  for (const Atom& a : atoms_) {
    GSOPT_RETURN_IF_ERROR(a.Validate(schema));
  }
  return Status::OK();
}

bool Predicate::IsNullIntolerant() const {
  for (const Atom& a : atoms_) {
    if (!a.IsNullIntolerant()) return false;
  }
  return true;
}

std::set<std::string> Predicate::NullRejectedRels() const {
  std::set<std::string> rels;
  for (const Atom& a : atoms_) {
    if (!a.IsNullIntolerant()) continue;
    auto r = a.RelNames();
    rels.insert(r.begin(), r.end());
  }
  return rels;
}

std::string Predicate::ToString() const {
  if (atoms_.empty()) return "TRUE";
  std::string s;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i) s += " AND ";
    s += atoms_[i].ToString();
  }
  return s;
}

}  // namespace gsopt
