#include "relational/datagen.h"

#include "base/check.h"

namespace gsopt {

Relation MakeRandomRelation(const std::string& name,
                            const std::vector<std::string>& columns,
                            const RandomRelationOptions& options, Rng* rng) {
  Schema schema;
  for (const std::string& c : columns) schema.Append(Attribute{name, c});
  Relation r(schema, VirtualSchema({name}));
  r.Reserve(options.num_rows);
  for (int64_t i = 0; i < options.num_rows; ++i) {
    std::vector<Value> values;
    values.reserve(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      if (options.null_fraction > 0 && rng->Bernoulli(options.null_fraction)) {
        values.push_back(Value::Null());
      } else {
        values.push_back(Value::Int(rng->Uniform(0, options.domain - 1)));
      }
    }
    r.AddBaseRow(std::move(values), i);
  }
  return r;
}

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& columns,
                      const std::vector<std::vector<Value>>& rows) {
  Schema schema;
  for (const std::string& c : columns) schema.Append(Attribute{name, c});
  Relation r(schema, VirtualSchema({name}));
  RowId id = 0;
  for (const auto& row : rows) {
    GSOPT_CHECK(row.size() == columns.size());
    r.AddBaseRow(row, id++);
  }
  return r;
}

void AddRandomTables(int n, const RandomRelationOptions& options, Rng* rng,
                     Catalog* catalog) {
  for (int i = 1; i <= n; ++i) {
    std::string name = "r" + std::to_string(i);
    Relation rel =
        MakeRandomRelation(name, {"a", "b", "c"}, options, rng);
    GSOPT_CHECK(catalog->Register(name, std::move(rel)).ok());
  }
}

}  // namespace gsopt
