#include "relational/column_batch.h"

#include <algorithm>

#include "base/check.h"

namespace gsopt {

Value ColumnValueAt(const Column& c, int64_t i) {
  if (c.IsNull(i)) return Value::Null();
  size_t k = static_cast<size_t>(i);
  switch (c.kind) {
    case ColumnKind::kInt64:
      return Value::Int(c.i64[k]);
    case ColumnKind::kDouble:
      return Value::Double(c.f64[k]);
    case ColumnKind::kString:
      return Value::String(*c.str[k]);
    case ColumnKind::kMixed:
      return *c.vals[k];
  }
  return Value::Null();
}

void GatherColumnInto(const Relation& r, int col, int64_t begin, int64_t end,
                      Column* out) {
  GSOPT_DCHECK(begin >= 0 && begin <= end && end <= r.NumRows());
  out->Clear();
  int64_t n = end - begin;
  out->nulls.assign(static_cast<size_t>(n), 0);
  size_t col_idx = static_cast<size_t>(col);

  // Fast path: single optimistic pass assuming the dominant case, a pure
  // int64 (or all-NULL) range. Each value is inspected exactly once; on the
  // first double/string value the partial fill is discarded and the general
  // two-pass gather below runs instead, so mixed ranges pay one extra
  // prefix scan and pure-int ranges pay half the variant inspections.
  out->i64.assign(static_cast<size_t>(n), 0);
  bool int_ok = true;
  for (int64_t i = 0; i < n; ++i) {
    const Value& v = r.row(begin + i).values[col_idx];
    ValueType t = v.type();
    if (t == ValueType::kInt) {
      out->i64[static_cast<size_t>(i)] = v.AsInt();
    } else if (t == ValueType::kNull) {
      out->nulls[static_cast<size_t>(i)] = 1;
      out->has_nulls = true;
    } else {
      int_ok = false;
      break;
    }
  }
  if (int_ok) {
    out->kind = ColumnKind::kInt64;
    return;
  }
  out->i64.clear();
  out->has_nulls = false;
  std::fill(out->nulls.begin(), out->nulls.end(), 0);

  // Pass 1: decide the batch-local kind from the values actually present.
  // A column that is pure int64 (or pure double / pure string) in this row
  // range gets a tight typed array even if other ranges of the relation mix
  // types; all-NULL ranges default to kInt64 with every null bit set.
  size_t c = static_cast<size_t>(col);
  bool any = false, all_int = true, all_dbl = true, all_str = true;
  for (int64_t i = begin; i < end; ++i) {
    const Value& v = r.row(i).values[c];
    switch (v.type()) {
      case ValueType::kNull:
        continue;
      case ValueType::kInt:
        all_dbl = all_str = false;
        break;
      case ValueType::kDouble:
        all_int = all_str = false;
        break;
      case ValueType::kString:
        all_int = all_dbl = false;
        break;
    }
    any = true;
    if (!all_int && !all_dbl && !all_str) break;
  }
  if (!any) all_int = true;  // all-NULL: empty typed int64 column
  out->kind = all_int   ? ColumnKind::kInt64
              : all_dbl ? ColumnKind::kDouble
              : all_str ? ColumnKind::kString
                        : ColumnKind::kMixed;

  // Pass 2: fill the typed array. NULL slots hold a zero / null pointer and
  // are only ever read through the null mask.
  switch (out->kind) {
    case ColumnKind::kInt64:
      out->i64.assign(static_cast<size_t>(n), 0);
      for (int64_t i = 0; i < n; ++i) {
        const Value& v = r.row(begin + i).values[c];
        if (v.is_null()) {
          out->nulls[static_cast<size_t>(i)] = 1;
          out->has_nulls = true;
        } else {
          out->i64[static_cast<size_t>(i)] = v.AsInt();
        }
      }
      break;
    case ColumnKind::kDouble:
      out->f64.assign(static_cast<size_t>(n), 0.0);
      for (int64_t i = 0; i < n; ++i) {
        const Value& v = r.row(begin + i).values[c];
        if (v.is_null()) {
          out->nulls[static_cast<size_t>(i)] = 1;
          out->has_nulls = true;
        } else {
          out->f64[static_cast<size_t>(i)] = v.AsDouble();
        }
      }
      break;
    case ColumnKind::kString:
      out->str.assign(static_cast<size_t>(n), nullptr);
      for (int64_t i = 0; i < n; ++i) {
        const Value& v = r.row(begin + i).values[c];
        if (v.is_null()) {
          out->nulls[static_cast<size_t>(i)] = 1;
          out->has_nulls = true;
        } else {
          out->str[static_cast<size_t>(i)] = &v.AsString();
        }
      }
      break;
    case ColumnKind::kMixed:
      out->vals.assign(static_cast<size_t>(n), nullptr);
      for (int64_t i = 0; i < n; ++i) {
        const Value& v = r.row(begin + i).values[c];
        out->vals[static_cast<size_t>(i)] = &v;
        if (v.is_null()) {
          out->nulls[static_cast<size_t>(i)] = 1;
          out->has_nulls = true;
        }
      }
      break;
  }
}

void GatherColumnsInto(const Relation& r, const std::vector<int>& cols,
                       int64_t begin, int64_t end, std::vector<Column>* out) {
  out->resize(cols.size());
  size_t ncols = cols.size();
  int64_t n = end - begin;

  // Fused fast path: one pass over the rows filling every requested column
  // at once, assuming the dominant all-int64 (or NULL) case. Each row is
  // touched exactly once, which matters now that tuples carry their
  // payloads inline (fat row stride); the per-column path would re-walk
  // the row array once per column. Any non-int value aborts into the
  // general per-column gather for all columns.
  if (ncols > 1) {
    for (size_t k = 0; k < ncols; ++k) {
      Column& c = (*out)[k];
      c.Clear();
      c.kind = ColumnKind::kInt64;
      c.nulls.assign(static_cast<size_t>(n), 0);
      c.i64.assign(static_cast<size_t>(n), 0);
    }
    bool int_ok = true;
    for (int64_t i = 0; i < n && int_ok; ++i) {
      const Tuple& t = r.row(begin + i);
      for (size_t k = 0; k < ncols; ++k) {
        const Value& v = t.values[static_cast<size_t>(cols[k])];
        ValueType ty = v.type();
        if (ty == ValueType::kInt) {
          (*out)[k].i64[static_cast<size_t>(i)] = v.AsInt();
        } else if (ty == ValueType::kNull) {
          (*out)[k].nulls[static_cast<size_t>(i)] = 1;
          (*out)[k].has_nulls = true;
        } else {
          int_ok = false;
          break;
        }
      }
    }
    if (int_ok) return;
  }

  for (size_t k = 0; k < ncols; ++k) {
    GatherColumnInto(r, cols[k], begin, end, &(*out)[k]);
  }
}

void GatherVidsInto(const Relation& r, const std::vector<int>& vid_idx,
                    int64_t begin, int64_t end,
                    std::vector<std::vector<RowId>>* out) {
  int64_t n = end - begin;
  out->resize(vid_idx.size());
  for (size_t k = 0; k < vid_idx.size(); ++k) {
    std::vector<RowId>& v = (*out)[k];
    v.resize(static_cast<size_t>(n));
    size_t vi = static_cast<size_t>(vid_idx[k]);
    for (int64_t i = 0; i < n; ++i) {
      v[static_cast<size_t>(i)] = r.row(begin + i).vids[vi];
    }
  }
}

ColumnBatch ColumnBatch::FromRows(const Relation& r, int64_t begin,
                                  int64_t end) {
  GSOPT_CHECK(begin >= 0 && begin <= end && end <= r.NumRows());
  ColumnBatch b;
  b.source = &r;
  b.begin = begin;
  b.end = end;
  int ncols = r.schema().size();
  b.columns.resize(static_cast<size_t>(ncols));
  for (int c = 0; c < ncols; ++c) {
    GatherColumnInto(r, c, begin, end, &b.columns[static_cast<size_t>(c)]);
  }
  std::vector<int> all_vids(r.vschema().size());
  for (size_t k = 0; k < all_vids.size(); ++k) all_vids[k] = static_cast<int>(k);
  GatherVidsInto(r, all_vids, begin, end, &b.vids);
  b.row_index.resize(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    b.row_index[static_cast<size_t>(i - begin)] = i;
  }
  return b;
}

Tuple ColumnBatch::MaterializeRow(int64_t i) const {
  GSOPT_DCHECK(i >= 0 && i < NumRows());
  Tuple t;
  t.values.reserve(columns.size());
  for (const Column& c : columns) t.values.push_back(ColumnValueAt(c, i));
  t.vids.reserve(vids.size());
  for (const std::vector<RowId>& v : vids) {
    t.vids.push_back(v[static_cast<size_t>(i)]);
  }
  return t;
}

void ColumnBatch::AppendTo(Relation* out) const {
  for (int64_t i = 0; i < NumRows(); ++i) out->Add(MaterializeRow(i));
}

}  // namespace gsopt
