// Schema model, following the paper's r = <R, V, E>:
//  * the real schema R is an ordered list of relation-qualified attributes;
//  * the virtual schema V lists the base relations whose row identifiers
//    ("virtual attributes") the tuples carry.
// Virtual attributes make the generalized-selection difference
// pi_{Ri,Vi}(r) - pi_{Ri,Vi}(sigma_p(r)) exact under duplicates.
#ifndef GSOPT_RELATIONAL_SCHEMA_H_
#define GSOPT_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "base/status.h"

namespace gsopt {

struct Attribute {
  std::string rel;   // base relation (or view) qualifier
  std::string name;  // column name

  std::string Qualified() const { return rel + "." + name; }

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.rel == b.rel && a.name == b.name;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {}

  int size() const { return static_cast<int>(attrs_.size()); }
  const Attribute& attr(int i) const { return attrs_[i]; }
  const std::vector<Attribute>& attrs() const { return attrs_; }

  void Append(Attribute a) { attrs_.push_back(std::move(a)); }

  // Index of rel.name, or -1.
  int Find(const std::string& rel, const std::string& name) const;

  // Index of the unique attribute called `name` regardless of qualifier;
  // -1 if absent, -2 if ambiguous.
  int FindUnqualified(const std::string& name) const;

  StatusOr<int> Resolve(const std::string& rel, const std::string& name) const;

  static Schema Concat(const Schema& a, const Schema& b);

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attrs_ == b.attrs_;
  }

 private:
  std::vector<Attribute> attrs_;
};

// Virtual schema: the ordered list of base relations whose row ids a
// composite tuple carries. (`V1 union V2` in the paper's outer union.)
class VirtualSchema {
 public:
  VirtualSchema() = default;
  explicit VirtualSchema(std::vector<std::string> rels)
      : rels_(std::move(rels)) {}

  int size() const { return static_cast<int>(rels_.size()); }
  const std::string& rel(int i) const { return rels_[i]; }
  const std::vector<std::string>& rels() const { return rels_; }

  void Append(std::string rel) { rels_.push_back(std::move(rel)); }

  int Find(const std::string& rel) const;

  static VirtualSchema Concat(const VirtualSchema& a, const VirtualSchema& b);

  friend bool operator==(const VirtualSchema& a, const VirtualSchema& b) {
    return a.rels_ == b.rels_;
  }

 private:
  std::vector<std::string> rels_;
};

}  // namespace gsopt

#endif  // GSOPT_RELATIONAL_SCHEMA_H_
