// Scalar expressions and conjunctive predicates.
//
// Following the paper (footnote 1), predicates attached to binary operators
// are conjunctions p = p1 ^ p2 ^ ... ^ pn of *atoms*; each atom compares two
// scalar terms (columns, constants, arithmetic over them). sch(p) is the set
// of relation qualifiers an atom references; an atom referencing exactly two
// relations is "simple", more is part of a "complex" predicate. Comparison
// atoms are null in-tolerant by construction (footnote 2): any NULL operand
// makes the atom UNKNOWN, which selection treats as FALSE.
#ifndef GSOPT_RELATIONAL_EXPR_H_
#define GSOPT_RELATIONAL_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace gsopt {

class Scalar;
using ScalarPtr = std::shared_ptr<const Scalar>;

class Scalar {
 public:
  // kParam is a parameter slot ($1-style): a constant whose value is
  // supplied at execution time. Structurally it behaves exactly like
  // kConst (no column references, "simple" for selectivity purposes), so
  // parameterized trees flow through simplify/normalize/enumerate
  // unchanged and one optimization serves every literal instantiation
  // (core/session.h). A slot evaluates to NULL if it ever reaches the
  // executor unsubstituted; the Session boundary validates that it never
  // does.
  enum class Kind { kColumn, kConst, kArith, kParam };

  static ScalarPtr Column(std::string rel, std::string name);
  static ScalarPtr Const(Value v);
  static ScalarPtr Arith(ArithOp op, ScalarPtr lhs, ScalarPtr rhs);
  static ScalarPtr Param(int slot);

  Kind kind() const { return kind_; }
  const std::string& rel() const { return rel_; }
  const std::string& name() const { return name_; }
  const Value& constant() const { return constant_; }
  ArithOp arith_op() const { return arith_op_; }
  const ScalarPtr& lhs() const { return lhs_; }
  const ScalarPtr& rhs() const { return rhs_; }
  int param_slot() const { return param_slot_; }

  // All column references in this term.
  void CollectColumns(std::vector<Attribute>* out) const;

  // Evaluates against a tuple, resolving columns by name in `schema`.
  // Unresolvable columns evaluate to NULL (callers that need strictness
  // validate resolvability up front via Validate()).
  Value Eval(const Tuple& tuple, const Schema& schema) const;

  // Verifies every referenced column resolves in `schema`.
  Status Validate(const Schema& schema) const;

  std::string ToString() const;

 private:
  Scalar() = default;

  Kind kind_ = Kind::kConst;
  std::string rel_, name_;   // kColumn
  Value constant_;           // kConst
  ArithOp arith_op_ = ArithOp::kAdd;  // kArith
  ScalarPtr lhs_, rhs_;
  int param_slot_ = 0;       // kParam
};

// One atom: a comparison `lhs op rhs`, or a null test `lhs IS [NOT] NULL`.
struct Atom {
  enum class Kind { kCompare, kIsNull, kIsNotNull };
  Kind kind = Kind::kCompare;
  ScalarPtr lhs;
  CmpOp op = CmpOp::kEq;
  ScalarPtr rhs;  // null for the IS [NOT] NULL kinds

  // Relation qualifiers referenced by either side.
  std::set<std::string> RelNames() const;

  Tri Eval(const Tuple& tuple, const Schema& schema) const;

  Status Validate(const Schema& schema) const;

  // Null in-tolerance (paper footnote 2): does the atom evaluate to
  // non-TRUE whenever a referenced attribute is NULL? Comparisons and
  // IS NOT NULL are intolerant; IS NULL is TOLERANT -- tolerant atoms
  // must not participate in reordering or outer-join simplification.
  bool IsNullIntolerant() const { return kind != Kind::kIsNull; }

  std::string ToString() const;

  // Structural equality (used to dedup predicates during enumeration).
  bool SameAs(const Atom& other) const {
    return ToString() == other.ToString();
  }
};

// Convenience atom builders.
Atom MakeAtom(const std::string& lrel, const std::string& lcol, CmpOp op,
              const std::string& rrel, const std::string& rcol);
Atom MakeConstAtom(const std::string& lrel, const std::string& lcol, CmpOp op,
                   Value v);
// `1 = 1`: always TRUE; represents a cartesian operator's predicate.
Atom MakeTautologyAtom();
// `rel.col IS NULL` / `rel.col IS NOT NULL`.
Atom MakeIsNullAtom(const std::string& rel, const std::string& col,
                    bool negated);

// A conjunction of atoms. The empty predicate is TRUE.
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Atom> atoms) : atoms_(std::move(atoms)) {}
  explicit Predicate(Atom atom) { atoms_.push_back(std::move(atom)); }

  static Predicate True() { return Predicate(); }
  static Predicate And(const Predicate& a, const Predicate& b);

  bool IsTrue() const { return atoms_.empty(); }
  int NumAtoms() const { return static_cast<int>(atoms_.size()); }
  const Atom& atom(int i) const { return atoms_[i]; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  void AddAtom(Atom a) { atoms_.push_back(std::move(a)); }

  std::set<std::string> RelNames() const;

  // True iff the conjunction references more than two relations — the
  // paper's "complex predicate".
  bool IsComplex() const { return RelNames().size() > 2; }

  // All atoms null in-tolerant (the paper's reordering precondition).
  bool IsNullIntolerant() const;

  // Relations referenced by null-INTOLERANT atoms only: padded rows over
  // these relations cannot satisfy the predicate (drives outer-join
  // simplification).
  std::set<std::string> NullRejectedRels() const;

  Tri Eval(const Tuple& tuple, const Schema& schema) const;

  // TRUE-under-3VL check used by selection and join kernels.
  bool Satisfied(const Tuple& tuple, const Schema& schema) const {
    return Eval(tuple, schema) == Tri::kTrue;
  }

  Status Validate(const Schema& schema) const;

  std::string ToString() const;

 private:
  std::vector<Atom> atoms_;
};

}  // namespace gsopt

#endif  // GSOPT_RELATIONAL_EXPR_H_
