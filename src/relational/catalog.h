// Catalog of named base relations. Base tables own monotonically assigned
// row ids (the paper's virtual attributes).
#ifndef GSOPT_RELATIONAL_CATALOG_H_
#define GSOPT_RELATIONAL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "relational/relation.h"

namespace gsopt {

class Catalog {
 public:
  Catalog() = default;

  // Creates table `name` with the given column names (qualified as
  // name.column). Fails if the table exists.
  Status CreateTable(const std::string& name,
                     const std::vector<std::string>& columns);

  // Appends a row; assigns the next row id.
  Status Insert(const std::string& name, std::vector<Value> values);

  // Registers an externally built relation as a table (it must be
  // single-base: vschema == {name}).
  Status Register(const std::string& name, Relation relation);

  bool Has(const std::string& name) const { return tables_.count(name) > 0; }
  const Relation* Find(const std::string& name) const;
  StatusOr<Relation> Get(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  // Monotonic data version, bumped by every successful mutation
  // (CreateTable / Insert / Register). Statistics collected at version v
  // are stale once version() != v: the Session serving layer compares this
  // against the version its stats were collected at and bumps its plan-
  // cache epoch, lazily invalidating cached plans (see core/session.h).
  // Mutation is not synchronized with concurrent readers -- like the table
  // data itself, catalog writes require external synchronization against
  // serving threads.
  uint64_t version() const { return version_; }

 private:
  std::map<std::string, Relation> tables_;
  std::map<std::string, RowId> next_row_id_;
  uint64_t version_ = 0;
};

}  // namespace gsopt

#endif  // GSOPT_RELATIONAL_CATALOG_H_
