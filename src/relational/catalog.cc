#include "relational/catalog.h"

namespace gsopt {

Status Catalog::CreateTable(const std::string& name,
                            const std::vector<std::string>& columns) {
  if (tables_.count(name)) {
    return Status::InvalidArgument("table exists: " + name);
  }
  Schema schema;
  for (const std::string& c : columns) schema.Append(Attribute{name, c});
  VirtualSchema vschema({name});
  tables_.emplace(name, Relation(std::move(schema), std::move(vschema)));
  next_row_id_[name] = 0;
  ++version_;
  return Status::OK();
}

Status Catalog::Insert(const std::string& name, std::vector<Value> values) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  if (static_cast<int>(values.size()) != it->second.schema().size()) {
    return Status::InvalidArgument("arity mismatch inserting into " + name);
  }
  it->second.AddBaseRow(std::move(values), next_row_id_[name]++);
  ++version_;
  return Status::OK();
}

Status Catalog::Register(const std::string& name, Relation relation) {
  if (tables_.count(name)) {
    return Status::InvalidArgument("table exists: " + name);
  }
  if (relation.vschema().size() != 1 || relation.vschema().rel(0) != name) {
    return Status::InvalidArgument(
        "registered relation must be single-base named " + name);
  }
  RowId max_id = 0;
  for (const Tuple& t : relation.rows()) {
    if (t.vids[0] >= max_id) max_id = t.vids[0] + 1;
  }
  next_row_id_[name] = max_id;
  tables_.emplace(name, std::move(relation));
  ++version_;
  return Status::OK();
}

const Relation* Catalog::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

StatusOr<Relation> Catalog::Get(const std::string& name) const {
  const Relation* r = Find(name);
  if (r == nullptr) return Status::NotFound("no table " + name);
  return *r;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, rel] : tables_) names.push_back(name);
  return names;
}

}  // namespace gsopt
