// CSV import/export so the library is usable on real data files. Values
// are inferred per cell: empty -> NULL, integer, decimal, else string.
#ifndef GSOPT_RELATIONAL_CSV_H_
#define GSOPT_RELATIONAL_CSV_H_

#include <string>

#include "base/status.h"
#include "relational/catalog.h"

namespace gsopt {

// Parses CSV text (first line = column names) into a base relation named
// `table`. Supports quoted fields ("a,b" and doubled "" escapes).
StatusOr<Relation> ParseCsv(const std::string& table,
                            const std::string& text);

// Reads a CSV file and registers it in the catalog under `table`.
Status LoadCsvFile(const std::string& path, const std::string& table,
                   Catalog* catalog);

// Serializes a relation back to CSV (header + rows; NULL -> empty field).
std::string ToCsv(const Relation& relation);

}  // namespace gsopt

#endif  // GSOPT_RELATIONAL_CSV_H_
