// Column-oriented batches over row-store Relations.
//
// The executor's hot kernels (exec/columnar.cc) process inputs in batches
// of kBatchRows rows, gathered column-by-column into typed arrays plus a
// null bitmap, instead of interpreting Value variants tuple-at-a-time.
// A Column is a *gather* of one schema column over a row range: the kind
// is decided per batch from the values actually present, so a column that
// is int64 in this batch gets a tight int64 array even if another batch of
// the same relation mixes types (outer-join padding, outer unions).
//
// Batches borrow from their source Relation (string and mixed-value slots
// hold pointers into the source tuples), so a batch must not outlive the
// relation it was gathered from, and the relation must not be mutated
// while batches over it are live. In exchange, gathering is one pass of
// trivially-copyable stores per column -- cheap enough to do per operator.
//
// Row identity is never lost at the row<->batch boundary: ColumnBatch
// keeps every virtual row-id column and the ORIGINAL row index of each
// batch row, so generalized-selection resurrection, MGOJ compensation and
// outer-join padding above a columnar kernel see exactly the globally-
// indexed vids and matched bitmaps the tuple-at-a-time kernels produce.
#ifndef GSOPT_RELATIONAL_COLUMN_BATCH_H_
#define GSOPT_RELATIONAL_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/relation.h"

namespace gsopt {

// Rows per batch: large enough to amortize per-batch dispatch (one budget
// tick, one stats update, one filter-compilation reuse per batch), small
// enough that gathered columns for a handful of predicate/key columns stay
// cache-resident.
inline constexpr int64_t kBatchRows = 2048;

enum class ColumnKind : uint8_t {
  kInt64,   // every non-null value is INT64
  kDouble,  // every non-null value is DOUBLE
  kString,  // every non-null value is STRING (borrowed pointers)
  kMixed,   // anything else; per-row Value pointers (borrowed)
};

// One schema column gathered over a row range. Exactly one of the typed
// arrays is populated (per `kind`); `nulls` always has one byte per row.
struct Column {
  ColumnKind kind = ColumnKind::kInt64;
  bool has_nulls = false;
  std::vector<uint8_t> nulls;           // 1 = NULL
  std::vector<int64_t> i64;             // kInt64
  std::vector<double> f64;              // kDouble
  std::vector<const std::string*> str;  // kString; nullptr in NULL slots
  std::vector<const Value*> vals;       // kMixed

  int64_t size() const { return static_cast<int64_t>(nulls.size()); }
  bool IsNull(int64_t i) const {
    return nulls[static_cast<size_t>(i)] != 0;
  }
  // Numeric value as double (kInt64 / kDouble columns only).
  double NumAt(int64_t i) const {
    return kind == ColumnKind::kInt64
               ? static_cast<double>(i64[static_cast<size_t>(i)])
               : f64[static_cast<size_t>(i)];
  }
  void Clear() {
    kind = ColumnKind::kInt64;
    has_nulls = false;
    nulls.clear();
    i64.clear();
    f64.clear();
    str.clear();
    vals.clear();
  }
};

// Materializes batch row `i` of `c` back into a Value (copying strings).
Value ColumnValueAt(const Column& c, int64_t i);

// Gathers column `col` of rows [begin, end). The output borrows string /
// mixed-value storage from `r`; reuses `out`'s buffers across batches.
void GatherColumnInto(const Relation& r, int col, int64_t begin, int64_t end,
                      Column* out);

inline Column GatherColumn(const Relation& r, int col, int64_t begin,
                           int64_t end) {
  Column c;
  GatherColumnInto(r, col, begin, end, &c);
  return c;
}

// Gathers several columns at once (reusing `out`'s slots across batches).
void GatherColumnsInto(const Relation& r, const std::vector<int>& cols,
                       int64_t begin, int64_t end, std::vector<Column>* out);

// Gathers the selected virtual row-id columns: out[k][i] is the vid of
// vschema entry vid_idx[k] for batch row i.
void GatherVidsInto(const Relation& r, const std::vector<int>& vid_idx,
                    int64_t begin, int64_t end,
                    std::vector<std::vector<RowId>>* out);

// A full batch: every value column, every vid column, and the original row
// index of each batch row. This is the row->batch converter the columnar
// kernels and tests share; kernels that only need a few columns gather
// those directly instead.
struct ColumnBatch {
  const Relation* source = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  std::vector<Column> columns;            // one per schema column
  std::vector<std::vector<RowId>> vids;   // one per vschema entry
  std::vector<int64_t> row_index;         // global row index per batch row

  int64_t NumRows() const { return end - begin; }

  static ColumnBatch FromRows(const Relation& r, int64_t begin, int64_t end);

  // Batch->row converters. MaterializeRow rebuilds batch row i (0-based
  // within the batch) with its values and vids; AppendTo appends every
  // batch row onto `out` (same schema as the source), round-tripping the
  // original row order.
  Tuple MaterializeRow(int64_t i) const;
  void AppendTo(Relation* out) const;
};

}  // namespace gsopt

#endif  // GSOPT_RELATIONAL_COLUMN_BATCH_H_
