// Seeded synthetic data generation. The paper's motivating workloads are
// proprietary IBM examples; these generators produce relations with
// controllable cardinality, domain size (hence join selectivity) and null
// fraction, exercising the same regimes (see DESIGN.md §3).
#ifndef GSOPT_RELATIONAL_DATAGEN_H_
#define GSOPT_RELATIONAL_DATAGEN_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "relational/catalog.h"
#include "relational/relation.h"

namespace gsopt {

struct RandomRelationOptions {
  int64_t num_rows = 16;
  // Values are uniform integers in [0, domain). Smaller domains => higher
  // join selectivity and more duplicates.
  int64_t domain = 8;
  // Probability that an individual value is NULL.
  double null_fraction = 0.0;
};

// Builds a base relation `name` with the given columns and random integer
// contents; row ids are 0..num_rows-1.
Relation MakeRandomRelation(const std::string& name,
                            const std::vector<std::string>& columns,
                            const RandomRelationOptions& options, Rng* rng);

// Builds a base relation from explicit rows of values.
Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& columns,
                      const std::vector<std::vector<Value>>& rows);

// Populates `catalog` with `n` relations named r1..rn, each with columns
// shared by the generators used in property tests (a, b, c).
void AddRandomTables(int n, const RandomRelationOptions& options, Rng* rng,
                     Catalog* catalog);

}  // namespace gsopt

#endif  // GSOPT_RELATIONAL_DATAGEN_H_
