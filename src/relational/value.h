// SQL value kernel: typed values (NULL / INT64 / DOUBLE / STRING) with
// three-valued-logic comparison semantics. Comparison between numerics
// coerces INT64 -> DOUBLE, mirroring SQL numeric comparison.
#ifndef GSOPT_RELATIONAL_VALUE_H_
#define GSOPT_RELATIONAL_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace gsopt {

enum class ValueType { kNull = 0, kInt = 1, kDouble = 2, kString = 3 };

// Result of a 3VL predicate: FALSE < UNKNOWN < TRUE.
enum class Tri { kFalse = 0, kUnknown = 1, kTrue = 2 };

inline Tri TriAnd(Tri a, Tri b) { return a < b ? a : b; }
inline Tri TriOr(Tri a, Tri b) { return a > b ? a : b; }
inline Tri TriNot(Tri a) {
  if (a == Tri::kUnknown) return Tri::kUnknown;
  return a == Tri::kTrue ? Tri::kFalse : Tri::kTrue;
}

class Value {
 public:
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const {
    if (type() == ValueType::kInt) return static_cast<double>(AsInt());
    return std::get<double>(rep_);
  }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  // SQL comparison: nullopt if either side is NULL or the types are
  // incomparable (string vs numeric); otherwise <0, 0, >0.
  static std::optional<int> Compare(const Value& a, const Value& b);

  // Deep equality treating NULL == NULL (used by grouping, duplicate
  // elimination and result comparison; NOT by predicates).
  static bool IdentityEquals(const Value& a, const Value& b);

  // Total order treating NULL as lowest (used to canonicalize relations in
  // tests and printing; NOT SQL semantics).
  static bool IdentityLess(const Value& a, const Value& b);

  // Stable hash consistent with IdentityEquals.
  size_t Hash() const;

  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

// 3VL comparison outcome of `a op b` for a comparison operator.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

Tri EvalCmp(CmpOp op, const Value& a, const Value& b);

std::string CmpOpName(CmpOp op);

// SQL arithmetic with NULL propagation. Division by zero yields NULL (we
// do not model SQL errors; this keeps evaluation total, which randomized
// property tests rely on).
enum class ArithOp { kAdd, kSub, kMul, kDiv };

Value EvalArith(ArithOp op, const Value& a, const Value& b);

std::string ArithOpName(ArithOp op);

}  // namespace gsopt

#endif  // GSOPT_RELATIONAL_VALUE_H_
