// SQL value kernel: typed values (NULL / INT64 / DOUBLE / STRING) with
// three-valued-logic comparison semantics. Comparison between numerics
// coerces INT64 -> DOUBLE, mirroring SQL numeric comparison.
#ifndef GSOPT_RELATIONAL_VALUE_H_
#define GSOPT_RELATIONAL_VALUE_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace gsopt {

// Total comparison of doubles under the engine's NaN convention: NaN
// compares equal to NaN and greater than every non-NaN (the Postgres float8
// rule). The naive `x < y ? -1 : (x > y ? 1 : 0)` formula silently reports
// "equal" for NaN against ANY number (all NaN comparisons are false), which
// made the nested-loop join accept NaN = 5.0 while the hash path keyed them
// apart. Every comparison path -- Value::Compare, the columnar filter
// loops, key canonicalization -- must route doubles through this one
// definition.
inline int CompareDoubles(double x, double y) {
  if (x < y) return -1;
  if (x > y) return 1;
  if (x == y) return 0;
  // At least one side is NaN.
  bool nx = std::isnan(x), ny = std::isnan(y);
  if (nx && ny) return 0;
  return nx ? 1 : -1;
}

// True (setting *out) iff `d` is finite, integral and exactly representable
// as an int64 within +/-2^53, the range where double<->int64 round-trips
// are exact. -0.0 normalizes to 0 here, which is what makes the key
// encodings collapse -0.0 and +0.0 into one equality class. Shared by
// Value::Hash, the canonical key encodings (exec/keys.h) and the columnar
// batch key encoder; the range guard also keeps the int64 cast defined
// (casting NaN or an out-of-range double is UB).
inline bool ExactInt64(double d, int64_t* out) {
  constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53
  if (!(d >= -kMaxExactInt && d <= kMaxExactInt)) return false;  // also NaN
  int64_t i = static_cast<int64_t>(d);
  if (static_cast<double>(i) != d) return false;
  *out = i;
  return true;
}

enum class ValueType { kNull = 0, kInt = 1, kDouble = 2, kString = 3 };

// Result of a 3VL predicate: FALSE < UNKNOWN < TRUE.
enum class Tri { kFalse = 0, kUnknown = 1, kTrue = 2 };

inline Tri TriAnd(Tri a, Tri b) { return a < b ? a : b; }
inline Tri TriOr(Tri a, Tri b) { return a > b ? a : b; }
inline Tri TriNot(Tri a) {
  if (a == Tri::kUnknown) return Tri::kUnknown;
  return a == Tri::kTrue ? Tri::kFalse : Tri::kTrue;
}

class Value {
 public:
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const {
    if (type() == ValueType::kInt) return static_cast<double>(AsInt());
    return std::get<double>(rep_);
  }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  // SQL comparison: nullopt if either side is NULL or the types are
  // incomparable (string vs numeric); otherwise <0, 0, >0.
  static std::optional<int> Compare(const Value& a, const Value& b);

  // Deep equality treating NULL == NULL (used by grouping, duplicate
  // elimination and result comparison; NOT by predicates).
  static bool IdentityEquals(const Value& a, const Value& b);

  // Total order treating NULL as lowest (used to canonicalize relations in
  // tests and printing; NOT SQL semantics).
  static bool IdentityLess(const Value& a, const Value& b);

  // Stable hash consistent with IdentityEquals.
  size_t Hash() const;

  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

// 3VL comparison outcome of `a op b` for a comparison operator.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

Tri EvalCmp(CmpOp op, const Value& a, const Value& b);

std::string CmpOpName(CmpOp op);

// SQL arithmetic with NULL propagation. Division by zero yields NULL (we
// do not model SQL errors; this keeps evaluation total, which randomized
// property tests rely on).
enum class ArithOp { kAdd, kSub, kMul, kDiv };

Value EvalArith(ArithOp op, const Value& a, const Value& b);

std::string ArithOpName(ArithOp op);

}  // namespace gsopt

#endif  // GSOPT_RELATIONAL_VALUE_H_
