#include "relational/schema.h"

namespace gsopt {

int Schema::Find(const std::string& rel, const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (attrs_[i].rel == rel && attrs_[i].name == name) return i;
  }
  return -1;
}

int Schema::FindUnqualified(const std::string& name) const {
  int found = -1;
  for (int i = 0; i < size(); ++i) {
    if (attrs_[i].name == name) {
      if (found >= 0) return -2;
      found = i;
    }
  }
  return found;
}

StatusOr<int> Schema::Resolve(const std::string& rel,
                              const std::string& name) const {
  if (!rel.empty()) {
    int i = Find(rel, name);
    if (i < 0) {
      return Status::NotFound("no column " + rel + "." + name + " in schema " +
                              ToString());
    }
    return i;
  }
  int i = FindUnqualified(name);
  if (i == -1) {
    return Status::NotFound("no column " + name + " in schema " + ToString());
  }
  if (i == -2) {
    return Status::InvalidArgument("ambiguous column " + name + " in schema " +
                                   ToString());
  }
  return i;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Attribute> attrs = a.attrs_;
  attrs.insert(attrs.end(), b.attrs_.begin(), b.attrs_.end());
  return Schema(std::move(attrs));
}

std::string Schema::ToString() const {
  std::string s = "(";
  for (int i = 0; i < size(); ++i) {
    if (i) s += ", ";
    s += attrs_[i].Qualified();
  }
  return s + ")";
}

int VirtualSchema::Find(const std::string& rel) const {
  for (int i = 0; i < size(); ++i) {
    if (rels_[i] == rel) return i;
  }
  return -1;
}

VirtualSchema VirtualSchema::Concat(const VirtualSchema& a,
                                    const VirtualSchema& b) {
  std::vector<std::string> rels = a.rels_;
  rels.insert(rels.end(), b.rels_.begin(), b.rels_.end());
  return VirtualSchema(std::move(rels));
}

}  // namespace gsopt
