// Materialized relation r = <R, V, E>: real schema, virtual schema and a
// bag of tuples. All executor kernels consume and produce Relations.
#ifndef GSOPT_RELATIONAL_RELATION_H_
#define GSOPT_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"

namespace gsopt {

class Relation {
 public:
  Relation() = default;
  Relation(Schema schema, VirtualSchema vschema)
      : schema_(std::move(schema)), vschema_(std::move(vschema)) {}

  const Schema& schema() const { return schema_; }
  const VirtualSchema& vschema() const { return vschema_; }

  // 64-bit row count: intermediate results (products, parallel joins) can
  // legitimately exceed 2^31 rows, and cost/budget arithmetic must not see
  // a negative count.
  int64_t NumRows() const { return static_cast<int64_t>(rows_.size()); }
  const Tuple& row(int64_t i) const {
    return rows_[static_cast<size_t>(i)];
  }
  const std::vector<Tuple>& rows() const { return rows_; }

  void Add(const Tuple& t);
  void Add(Tuple&& t);

  // Appends the concatenation of `a` and `b` constructed in place -- the
  // join probe's hot append, done without an intermediate Tuple move.
  void AddConcat(const Tuple& a, const Tuple& b);

  // Appends a row of real values, assigning the given row id to every
  // virtual attribute (for single-base-relation relations).
  void AddBaseRow(std::vector<Value> values, RowId id);

  // Moves all rows of `other` (same shape; checked) onto the end of this
  // relation. Used by the parallel kernels to splice per-lane outputs.
  void AppendFrom(Relation&& other);

  // A tuple of all-NULL values / all-null row ids shaped like this relation.
  Tuple NullTuple() const;

  void Reserve(int64_t n) {
    if (n > 0) rows_.reserve(static_cast<size_t>(n));
  }

  // Multiset equality over real attributes, matching columns by qualified
  // name (column order independent). Virtual attributes are ignored: two
  // plans are equivalent iff their visible extensions match.
  static bool BagEquals(const Relation& a, const Relation& b);

  // Human-readable table (used by examples and failure messages).
  std::string ToString(int max_rows = 50) const;

  // Canonical multiset fingerprint (sorted rows over name-sorted columns).
  std::string CanonicalString() const;

 private:
  Schema schema_;
  VirtualSchema vschema_;
  std::vector<Tuple> rows_;
};

}  // namespace gsopt

#endif  // GSOPT_RELATIONAL_RELATION_H_
