// Cost model over logical expression trees: System-R style cardinality
// estimation plus per-operator processing costs. Hash-joinable predicates
// (clean equi-conjuncts) cost |L| + |R| + |out|; everything else pays the
// nested-loop product. GS costs one extra pass over its input, mirroring
// the paper's remark that GS costs about as much as MGOJ/GOJ (§4).
#ifndef GSOPT_OPTIMIZER_COST_MODEL_H_
#define GSOPT_OPTIMIZER_COST_MODEL_H_

#include "algebra/node.h"
#include "optimizer/stats.h"

namespace gsopt {

struct CostEstimate {
  double rows = 0.0;   // output cardinality estimate
  double cost = 0.0;   // cumulative processing cost
};

class CostModel {
 public:
  explicit CostModel(Statistics stats) : stats_(std::move(stats)) {}

  CostEstimate Estimate(const NodePtr& node) const;

  double Cost(const NodePtr& node) const { return Estimate(node).cost; }

  // Selectivity of a conjunctive predicate (independence assumption).
  double Selectivity(const Predicate& p) const;

  // The base-table statistics backing this model (the order-aware pass
  // reads per-column sortedness from here).
  const Statistics& stats() const { return stats_; }

 private:
  double AtomSelectivity(const Atom& a) const;

  Statistics stats_;
};

}  // namespace gsopt

#endif  // GSOPT_OPTIMIZER_COST_MODEL_H_
