#include "optimizer/stats.h"

#include <unordered_set>

#include "exec/keys.h"
#include "exec/sort.h"

namespace gsopt {

Statistics Statistics::Collect(const Catalog& catalog) {
  Statistics stats;
  for (const std::string& name : catalog.TableNames()) {
    const Relation* r = catalog.Find(name);
    TableStats ts;
    ts.rows = static_cast<double>(r->NumRows());
    for (int c = 0; c < r->schema().size(); ++c) {
      std::unordered_set<std::string> distinct;
      int nulls = 0;
      bool sorted_asc = true;  // vacuously for 0/1 rows
      const Value* prev = nullptr;
      for (const Tuple& t : r->rows()) {
        if (prev != nullptr && sorted_asc &&
            exec::CompareValuesTotal(*prev, t.values[c]) > 0) {
          sorted_asc = false;
        }
        prev = &t.values[c];
        if (t.values[c].is_null()) {
          ++nulls;
          continue;
        }
        std::string key;
        exec::AppendValueKey(t.values[c], &key);
        distinct.insert(std::move(key));
      }
      ColumnStats cs;
      cs.distinct = std::max<double>(1.0, static_cast<double>(distinct.size()));
      cs.null_fraction =
          r->NumRows() == 0 ? 0.0
                            : static_cast<double>(nulls) / r->NumRows();
      cs.sorted_asc = sorted_asc;
      ts.columns[r->schema().attr(c).name] = cs;
    }
    stats.tables_[name] = std::move(ts);
  }
  return stats;
}

const TableStats* Statistics::Table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

double Statistics::Distinct(const std::string& rel,
                            const std::string& column) const {
  const TableStats* t = Table(rel);
  if (t == nullptr) return 1.0;
  auto it = t->columns.find(column);
  return it == t->columns.end() ? 1.0 : it->second.distinct;
}

bool Statistics::SortedAsc(const std::string& rel,
                           const std::string& column) const {
  const TableStats* t = Table(rel);
  if (t == nullptr) return false;
  auto it = t->columns.find(column);
  return it != t->columns.end() && it->second.sorted_asc;
}

double Statistics::Rows(const std::string& rel) const {
  const TableStats* t = Table(rel);
  return t == nullptr ? 1.0 : t->rows;
}

}  // namespace gsopt
