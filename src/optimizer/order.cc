#include "optimizer/order.h"

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gsopt {

namespace {

// Column = column equi-join conjuncts of a binary node, oriented so .first
// sits in the left input and .second in the right. The atom order matches
// the exec layer's plan extraction (both walk pred().atoms() in sequence),
// so keys[0].first is the primary key the merge join's output streams by.
std::vector<std::pair<Attribute, Attribute>> EquiKeys(const NodePtr& node) {
  std::set<std::string> lrels = node->left()->BaseRels();
  std::set<std::string> rrels = node->right()->BaseRels();
  std::vector<std::pair<Attribute, Attribute>> keys;
  for (const Atom& a : node->pred().atoms()) {
    if (a.kind != Atom::Kind::kCompare || a.op != CmpOp::kEq) continue;
    if (a.lhs->kind() != Scalar::Kind::kColumn ||
        a.rhs->kind() != Scalar::Kind::kColumn) {
      continue;
    }
    Attribute l{a.lhs->rel(), a.lhs->name()};
    Attribute r{a.rhs->rel(), a.rhs->name()};
    if (lrels.count(l.rel) && rrels.count(r.rel)) {
      keys.emplace_back(std::move(l), std::move(r));
    } else if (lrels.count(r.rel) && rrels.count(l.rel)) {
      keys.emplace_back(std::move(r), std::move(l));
    }
  }
  return keys;
}

// Does `req` match a prefix of the merge join's left-key ASC order?
bool ReqIsLeftKeyPrefix(const exec::SortSpec& req,
                        const std::vector<std::pair<Attribute, Attribute>>&
                            keys) {
  if (keys.empty() || req.size() > keys.size()) return false;
  for (size_t i = 0; i < req.size(); ++i) {
    if (req[i].desc || !(req[i].attr == keys[i].first)) return false;
  }
  return true;
}

// Rebuilds `node` over rewritten children; returns `node` itself when
// nothing changed so shared subtrees stay shared.
NodePtr WithChildren(const NodePtr& node, const NodePtr& l, const NodePtr& r) {
  if (l == node->left() && (node->right() == nullptr || r == node->right())) {
    return node;
  }
  switch (node->kind()) {
    case OpKind::kSelect:
      return Node::Select(l, node->pred());
    case OpKind::kGeneralizedSelection:
      return Node::GeneralizedSelection(l, node->pred(), node->groups());
    case OpKind::kProject:
      return node->projection_out() != node->projection()
                 ? Node::ProjectAs(l, node->projection(),
                                   node->projection_out())
                 : Node::Project(l, node->projection());
    case OpKind::kGroupBy:
      return Node::GroupBy(l, node->groupby());
    case OpKind::kSort:
      return Node::Sort(l, node->sort_spec());
    case OpKind::kMgoj:
      return Node::Mgoj(l, r, node->pred(), node->groups());
    default:
      if (node->right() != nullptr) {
        return Node::Binary(node->kind(), l, r, node->pred());
      }
      return node;
  }
}

NodePtr Rewrite(const NodePtr& node, const exec::SortSpec& req,
                const Statistics& stats, bool assume, OrderPassCounters* c) {
  switch (node->kind()) {
    case OpKind::kLeaf:
      return node;
    case OpKind::kSort: {
      // The enforcer's own spec overrides any requirement from above (a
      // sort re-establishes order wholesale).
      NodePtr child =
          Rewrite(node->left(), node->sort_spec(), stats, assume, c);
      if (assume && OutputSatisfiesOrder(child, node->sort_spec(), stats)) {
        ++c->sort_enforcers_avoided;
        return child;
      }
      ++c->sort_enforcers_placed;
      return WithChildren(node, child, nullptr);
    }
    case OpKind::kSelect:
    case OpKind::kProject: {
      // Row-order preserving: forward the requirement -- except through a
      // renaming projection, whose output attribute identities differ from
      // the child's.
      exec::SortSpec fwd = req;
      if (node->kind() == OpKind::kProject &&
          node->projection_out() != node->projection()) {
        fwd.clear();
      }
      return WithChildren(node, Rewrite(node->left(), fwd, stats, assume, c),
                          nullptr);
    }
    case OpKind::kGeneralizedSelection:
    case OpKind::kGroupBy: {
      // Hash-based re-grouping destroys order; no requirement survives.
      return WithChildren(node, Rewrite(node->left(), {}, stats, assume, c),
                          nullptr);
    }
    case OpKind::kInnerJoin: {
      NodePtr l = Rewrite(node->left(), {}, stats, assume, c);
      NodePtr r = Rewrite(node->right(), {}, stats, assume, c);
      NodePtr out = WithChildren(node, l, r);
      auto keys = EquiKeys(out);
      if (!keys.empty()) {
        // Merge pays when an input arrives presorted by its primary join
        // key (the sort phase short-circuits) or when, under ordered
        // execution, the merge's output order discharges the requirement
        // from above and saves an enforcer.
        bool left_sorted = OutputSatisfiesOrder(
            l, exec::SortSpec{{keys[0].first, false}}, stats);
        bool right_sorted = OutputSatisfiesOrder(
            r, exec::SortSpec{{keys[0].second, false}}, stats);
        bool serves_req =
            assume && !req.empty() && ReqIsLeftKeyPrefix(req, keys);
        if (left_sorted || right_sorted || serves_req) {
          out = Node::WithMergeJoin(out);
          ++c->merge_joins_chosen;
        }
      }
      return out;
    }
    default: {
      // Outer flavors pad unmatched rows after the matched stream, semi /
      // anti filter by hash, MGOJ compensates: none claims or forwards
      // order, so children see no requirement.
      if (node->right() == nullptr) {
        return WithChildren(node, Rewrite(node->left(), {}, stats, assume, c),
                            nullptr);
      }
      NodePtr l = Rewrite(node->left(), {}, stats, assume, c);
      NodePtr r = Rewrite(node->right(), {}, stats, assume, c);
      return WithChildren(node, l, r);
    }
  }
}

}  // namespace

bool OutputSatisfiesOrder(const NodePtr& node, const exec::SortSpec& req,
                          const Statistics& stats) {
  if (req.empty()) return true;
  switch (node->kind()) {
    case OpKind::kLeaf:
      // Only single-column sortedness is tracked; a multi-key requirement
      // would additionally need first-key uniqueness.
      return req.size() == 1 && !req[0].desc &&
             req[0].attr.rel == node->table() &&
             stats.SortedAsc(node->table(), req[0].attr.name);
    case OpKind::kSelect:
      return OutputSatisfiesOrder(node->left(), req, stats);
    case OpKind::kSort: {
      const exec::SortSpec& spec = node->sort_spec();
      if (req.size() > spec.size()) return false;
      for (size_t i = 0; i < req.size(); ++i) {
        if (!(req[i] == spec[i])) return false;
      }
      return true;
    }
    case OpKind::kProject: {
      if (node->projection_out() != node->projection()) return false;
      for (const exec::SortKey& k : req) {
        bool found = false;
        for (const Attribute& a : node->projection()) {
          if (a == k.attr) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return OutputSatisfiesOrder(node->left(), req, stats);
    }
    case OpKind::kInnerJoin: {
      // A merge-stamped INNER join streams non-decreasing by its left key
      // list (CompareValuesKeyClass refines the total order, so ASC
      // holds). Outer flavors pad unmatched rows at the end and claim
      // nothing.
      if (!node->merge_join()) return false;
      return ReqIsLeftKeyPrefix(req, EquiKeys(node));
    }
    default:
      return false;
  }
}

NodePtr ApplyOrderAwarePass(const NodePtr& root, const Statistics& stats,
                            bool assume_ordered_exec,
                            OrderPassCounters* counters) {
  if (root == nullptr) return root;
  OrderPassCounters local;
  NodePtr out =
      Rewrite(root, {}, stats, assume_ordered_exec,
              counters != nullptr ? counters : &local);
  return out;
}

}  // namespace gsopt
