// Statistics and cardinality estimation. Base-table statistics (row counts,
// per-column distinct counts) are computed exactly from the catalog (this
// library operates on materialized relations); derived cardinalities use
// textbook System-R style selectivity rules.
#ifndef GSOPT_OPTIMIZER_STATS_H_
#define GSOPT_OPTIMIZER_STATS_H_

#include <map>
#include <string>

#include "algebra/node.h"
#include "base/status.h"
#include "relational/catalog.h"

namespace gsopt {

struct ColumnStats {
  double distinct = 1.0;
  double null_fraction = 0.0;
  // The whole table is non-decreasing by this column alone under the
  // ordering contract of exec/sort.h (NULL lowest). Detected by scanning
  // at stats-build time, so it is always true of the actual data; it
  // feeds only costing / physical choices (interesting orders), never
  // correctness -- the merge join re-sorts internally with an is-sorted
  // short-circuit either way.
  bool sorted_asc = false;
};

struct TableStats {
  double rows = 0.0;
  std::map<std::string, ColumnStats> columns;  // by column name
};

class Statistics {
 public:
  // Scans every catalog table once and records exact statistics.
  static Statistics Collect(const Catalog& catalog);

  const TableStats* Table(const std::string& name) const;

  // Distinct-count estimate for a qualified column; 1 if unknown.
  double Distinct(const std::string& rel, const std::string& column) const;

  // True when the table's rows are known to be non-decreasing by this
  // column (see ColumnStats::sorted_asc); false if unknown.
  bool SortedAsc(const std::string& rel, const std::string& column) const;

  double Rows(const std::string& rel) const;

 private:
  std::map<std::string, TableStats> tables_;
};

}  // namespace gsopt

#endif  // GSOPT_OPTIMIZER_STATS_H_
