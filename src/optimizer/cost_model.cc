#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace gsopt {

namespace {

// True if the atom is `column = column` or `column = constant` (hash- or
// index-friendly); used both for selectivity and the hash-join cost path.
// Parameter slots count as constants: selectivity never depends on a
// constant's value, so a parameterized tree must cost exactly like every
// literal instantiation (that is what makes plan-cache reuse sound).
bool IsSimpleEquality(const Atom& a) {
  if (a.kind != Atom::Kind::kCompare || a.op != CmpOp::kEq) return false;
  auto simple = [](const ScalarPtr& s) {
    return s->kind() == Scalar::Kind::kColumn ||
           s->kind() == Scalar::Kind::kConst ||
           s->kind() == Scalar::Kind::kParam;
  };
  return simple(a.lhs) && simple(a.rhs);
}

bool HasEquiConjunct(const Predicate& p) {
  for (const Atom& a : p.atoms()) {
    if (a.kind == Atom::Kind::kCompare && a.op == CmpOp::kEq &&
        a.lhs->kind() == Scalar::Kind::kColumn &&
        a.rhs->kind() == Scalar::Kind::kColumn) {
      return true;
    }
  }
  return false;
}

}  // namespace

double CostModel::AtomSelectivity(const Atom& a) const {
  if (a.kind == Atom::Kind::kIsNull || a.kind == Atom::Kind::kIsNotNull) {
    if (a.lhs->kind() == Scalar::Kind::kColumn) {
      const TableStats* t = stats_.Table(a.lhs->rel());
      if (t != nullptr) {
        auto it = t->columns.find(a.lhs->name());
        if (it != t->columns.end()) {
          double nf = it->second.null_fraction;
          return a.kind == Atom::Kind::kIsNull ? nf : 1.0 - nf;
        }
      }
    }
    return a.kind == Atom::Kind::kIsNull ? 0.1 : 0.9;
  }
  const Scalar* l = a.lhs.get();
  const Scalar* r = a.rhs.get();
  double dl = 1.0, dr = 1.0;
  if (l->kind() == Scalar::Kind::kColumn) {
    dl = stats_.Distinct(l->rel(), l->name());
  }
  if (r->kind() == Scalar::Kind::kColumn) {
    dr = stats_.Distinct(r->rel(), r->name());
  }
  switch (a.op) {
    case CmpOp::kEq:
      if (IsSimpleEquality(a)) return 1.0 / std::max({dl, dr, 1.0});
      return 0.1;
    case CmpOp::kNe:
      return 1.0 - 1.0 / std::max({dl, dr, 1.0});
    default:
      return 1.0 / 3.0;  // range predicates
  }
}

double CostModel::Selectivity(const Predicate& p) const {
  double s = 1.0;
  for (const Atom& a : p.atoms()) s *= AtomSelectivity(a);
  return s;
}

CostEstimate CostModel::Estimate(const NodePtr& node) const {
  switch (node->kind()) {
    case OpKind::kLeaf: {
      CostEstimate e;
      e.rows = stats_.Rows(node->table());
      e.cost = e.rows;  // scan
      return e;
    }
    case OpKind::kSelect: {
      CostEstimate c = Estimate(node->left());
      CostEstimate e;
      e.rows = c.rows * Selectivity(node->pred());
      e.cost = c.cost + c.rows;
      return e;
    }
    case OpKind::kProject: {
      CostEstimate c = Estimate(node->left());
      c.cost += c.rows;
      return c;
    }
    case OpKind::kGeneralizedSelection: {
      CostEstimate c = Estimate(node->left());
      CostEstimate e;
      double kept = c.rows * Selectivity(node->pred());
      // Resurrections: at most one padded row per distinct preserved key;
      // assume a fraction of dropped rows come back.
      e.rows = kept + 0.5 * (c.rows - kept);
      // One hashing pass over input and over the selected part per group.
      e.cost = c.cost + c.rows * (1.0 + static_cast<double>(
                                            node->groups().size())) * 0.5 +
               c.rows;
      return e;
    }
    case OpKind::kGroupBy: {
      CostEstimate c = Estimate(node->left());
      CostEstimate e;
      double groups = c.rows;
      for (const Attribute& a : node->groupby().group_cols) {
        // Cap by product of distincts (crude but monotone).
        groups = std::min(groups, std::max(1.0, c.rows * 0.2) *
                                      std::max(1.0, std::log2(std::max(
                                                        2.0,
                                                        stats_.Distinct(
                                                            a.rel, a.name)))));
      }
      e.rows = std::max(1.0, std::min(c.rows, groups));
      e.cost = c.cost + c.rows;  // one hashing pass
      return e;
    }
    case OpKind::kSort: {
      // Order enforcer: rows pass through; pay the comparison-sort work.
      CostEstimate c = Estimate(node->left());
      double n = std::max(2.0, c.rows);
      c.cost += n * std::log2(n);
      return c;
    }
    case OpKind::kAntiJoin:
    case OpKind::kSemiJoin: {
      CostEstimate l = Estimate(node->left());
      CostEstimate r = Estimate(node->right());
      CostEstimate e;
      e.rows = std::max(1.0, l.rows * 0.5);
      e.cost = l.cost + r.cost + l.rows + r.rows;
      return e;
    }
    default:
      break;
  }

  // Binary join-like operators.
  CostEstimate l = Estimate(node->left());
  CostEstimate r = Estimate(node->right());
  double sel = Selectivity(node->pred());
  double join_rows = std::max(1.0, l.rows * r.rows * sel);
  double probe_cost = HasEquiConjunct(node->pred())
                          ? l.rows + r.rows + join_rows
                          : l.rows * r.rows;
  CostEstimate e;
  switch (node->kind()) {
    case OpKind::kInnerJoin:
      e.rows = join_rows;
      break;
    case OpKind::kLeftOuterJoin:
      e.rows = std::max(join_rows, l.rows);
      break;
    case OpKind::kRightOuterJoin:
      e.rows = std::max(join_rows, r.rows);
      break;
    case OpKind::kFullOuterJoin:
      e.rows = std::max(join_rows, l.rows + r.rows);
      break;
    case OpKind::kMgoj: {
      e.rows = join_rows + 0.3 * (l.rows + r.rows);
      probe_cost += 0.5 * (l.rows + r.rows);  // compensation hashing
      break;
    }
    default:
      e.rows = join_rows;
      break;
  }
  e.cost = l.cost + r.cost + probe_cost;
  return e;
}

}  // namespace gsopt
