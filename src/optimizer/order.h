// Order-aware physical pass: interesting orders over a chosen logical plan.
//
// Runs AFTER plan enumeration, on the winning expression. It never changes
// the logical shape of the tree -- only (a) stamps sort-merge execution
// hints onto inner joins (Node::WithMergeJoin) and (b) removes kSort
// enforcers whose requirement the subtree below provably already delivers.
// Claims flow bottom-up (a base table scanned in ascending order by a
// column, a merge inner join streaming non-decreasing by its join keys,
// order-preserving unary operators forwarding their child's claim);
// requirements flow top-down from kSort enforcers.
//
// Enforcer removal is sound only when the plan will actually execute in
// row order with merge hints honored: serial interpretation (parallel
// morsel kernels do not preserve row order) and a JoinStrategy of kAuto or
// kMergeOnly (kHashOnly ignores the hint and emits hash order). Callers
// gate this with OptimizeOptions::assume_ordered_exec.
#ifndef GSOPT_OPTIMIZER_ORDER_H_
#define GSOPT_OPTIMIZER_ORDER_H_

#include "algebra/node.h"
#include "optimizer/stats.h"

namespace gsopt {

struct OrderPassCounters {
  size_t merge_joins_chosen = 0;      // inner joins stamped WithMergeJoin
  size_t sort_enforcers_placed = 0;   // kSort nodes kept in the plan
  size_t sort_enforcers_avoided = 0;  // kSort nodes removed as redundant
};

// True when `node`'s output is provably ordered by `req` under serial
// execution with merge hints honored. Empty `req` is trivially satisfied.
bool OutputSatisfiesOrder(const NodePtr& node, const exec::SortSpec& req,
                          const Statistics& stats);

// Applies the pass and returns the (possibly identical) rewritten tree.
// `assume_ordered_exec` gates enforcer removal; merge stamping on already
// sorted inputs happens either way (it is a pure execution-strategy hint).
NodePtr ApplyOrderAwarePass(const NodePtr& root, const Statistics& stats,
                            bool assume_ordered_exec,
                            OrderPassCounters* counters);

}  // namespace gsopt

#endif  // GSOPT_OPTIMIZER_ORDER_H_
