// Outer-join simplification ([BHAR95c], the paper's stated precondition:
// "we assume that queries have been simplified ... so that they do not
// contain any redundant (full) outer join edges; that is, we assume queries
// are simple [GALI92a]").
//
// A null-intolerant predicate applied above an outer join rejects every row
// the outer join padded on the predicate's relations, which makes the
// padding unobservable: the outer join degenerates. Rules (driven top-down
// with the set NR of "null-rejected" relations):
//   LOJ with NR touching its null-supplying side      -> inner join
//   FOJ with NR touching one side                     -> LOJ / ROJ
//   FOJ with NR touching both sides                   -> inner join
#ifndef GSOPT_ALGEBRA_SIMPLIFY_H_
#define GSOPT_ALGEBRA_SIMPLIFY_H_

#include "algebra/node.h"

namespace gsopt {

// Returns the simplified equivalent of a join/outer-join expression tree.
// Non-join operators (GS, group-by, select, project) are left in place;
// simplification recurses through unary operators using their predicates'
// null rejection where sound.
NodePtr SimplifyOuterJoins(const NodePtr& query);

// True if SimplifyOuterJoins leaves the tree unchanged (the paper's
// "simple query" precondition for reordering).
bool IsSimpleQuery(const NodePtr& query);

}  // namespace gsopt

#endif  // GSOPT_ALGEBRA_SIMPLIFY_H_
