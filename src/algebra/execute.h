// Interpreter: evaluates a logical expression tree against a catalog by
// invoking the executor kernels. This is the ground-truth semantics used by
// every equivalence property test and by the benchmark harnesses.
//
// Execution is governable: pass ExecuteOptions with a ResourceBudget and
// every row-producing operator checks it cooperatively, returning
// Status(kResourceExhausted) instead of materializing unbounded
// intermediate results or overrunning a deadline.
#ifndef GSOPT_ALGEBRA_EXECUTE_H_
#define GSOPT_ALGEBRA_EXECUTE_H_

#include "algebra/node.h"
#include "base/budget.h"
#include "base/status.h"
#include "relational/catalog.h"

namespace gsopt {

struct ExecuteOptions {
  // Optional cooperative budget (deadline / row cap); not owned.
  ResourceBudget* budget = nullptr;
};

StatusOr<Relation> Execute(const NodePtr& node, const Catalog& catalog,
                           const ExecuteOptions& options = {});

// Executes both expressions and compares visible extensions (bag equality
// over qualified attribute names).
StatusOr<bool> ExecutionEquivalent(const NodePtr& a, const NodePtr& b,
                                   const Catalog& catalog);

}  // namespace gsopt

#endif  // GSOPT_ALGEBRA_EXECUTE_H_
