// Interpreter: evaluates a logical expression tree against a catalog by
// invoking the executor kernels. This is the ground-truth semantics used by
// every equivalence property test and by the benchmark harnesses.
//
// Execution is governable: pass ExecuteOptions with a ResourceBudget and
// every row-producing operator checks it cooperatively, returning
// Status(kResourceExhausted) instead of materializing unbounded
// intermediate results or overrunning a deadline.
//
// Execution is observable: pass ExecuteOptions with an OperatorStats root
// and the interpreter mirrors the plan tree with a stats tree -- one node
// per operator, recording rows in/out, wall time and the kernels' hash
// build/probe counters -- which EXPLAIN ANALYZE (algebra/explain.h) joins
// against the cost model's estimates.
#ifndef GSOPT_ALGEBRA_EXECUTE_H_
#define GSOPT_ALGEBRA_EXECUTE_H_

#include "algebra/node.h"
#include "base/budget.h"
#include "base/fault_injector.h"
#include "base/status.h"
#include "exec/eval.h"
#include "exec/executor.h"
#include "exec/stats.h"
#include "relational/catalog.h"

namespace gsopt {

// The execution policy shared by every layer that launches kernels: the
// low-level interpreter (ExecuteOptions below), the Session serving
// facade's per-session defaults (SessionOptions, core/session.h) and its
// per-call overrides. One struct, one merge function -- the per-layer
// option types embed or derive from this instead of re-declaring the
// fields and re-implementing field-by-field override logic.
struct ExecPolicy {
  // Optional cooperative budget (deadline / row / memory cap); not owned.
  ResourceBudget* budget = nullptr;
  // Optional morsel-parallel executor (not owned). Null -- the default --
  // runs every operator on the serial reference kernels. With more than
  // one lane, large inputs take the parallel kernel paths; results are
  // bag-equal to serial execution (row order may differ).
  exec::Executor* executor = nullptr;
  // Optional deterministic fault injector (not owned). When set, kernels
  // probe it at allocation, spill I/O, budget-check and dispatch points;
  // see base/fault_injector.h.
  FaultInjector* fault = nullptr;
  // Optional spill configuration (not owned). When set and enabled, hash
  // joins and aggregations that trip the memory cap degrade to the
  // out-of-core partitioned path instead of failing; see exec/eval.h.
  const exec::SpillConfig* spill = nullptr;
  // Columnar batch-execution policy (exec/eval.h BatchMode). kAuto -- the
  // default -- vectorizes large inputs; kOff pins the tuple-at-a-time
  // reference kernels; kForce vectorizes regardless of size. Results are
  // bag-equal across modes (the columnar-vs-tuple oracle enforces this);
  // only row order may differ.
  exec::BatchMode batch = exec::BatchMode::kAuto;
  // Bloom-filter sideways-information-passing policy (exec/bloom.h
  // BloomMode). kAuto -- the default -- builds a build-side filter for
  // joins whose build/probe cardinality ratio makes early probe rejection
  // profitable; kOff pins every join filter-free (the differential
  // baseline); kForce always filters. Results are bag-equal across modes
  // (the bloom-vs-off oracle enforces this).
  exec::BloomMode bloom = exec::BloomMode::kAuto;
  // Physical join-strategy policy (exec/eval.h JoinStrategy). kAuto -- the
  // default -- follows the per-node merge hints the order-aware optimizer
  // stamps (hash when unhinted); kHashOnly pins the hash/nested-loop paths
  // (the differential baseline); kMergeOnly forces sort-merge joins and
  // sort-based aggregation everywhere. Results are bag-equal across modes
  // (the merge-vs-hash oracle enforces this); only row order may differ.
  exec::JoinStrategy join = exec::JoinStrategy::kAuto;
  // Serving-layer knob: when true, Session allocates an OperatorStats tree
  // inside the QueryResult it returns, so callers get per-operator actuals
  // without threading a stats pointer side channel. The low-level
  // interpreter ignores this (it has the explicit stats pointer instead).
  bool collect_stats = false;
};

// The one place per-call overrides meet per-session defaults. Pointer
// fields override when non-null; mode enums override when not kAuto (kAuto
// means "defer to the layer below", so a call that leaves a mode at its
// default inherits the session's choice -- to force the automatic
// behaviour against a pinned session default, pass the pinned mode's
// opposite explicitly); collect_stats is sticky (either layer can turn it
// on). Replaces the ad-hoc field-by-field logic Session::MergedExec used
// to carry -- and which silently dropped per-call batch/bloom/join.
inline ExecPolicy MergeExecPolicy(ExecPolicy base, const ExecPolicy& call) {
  if (call.budget != nullptr) base.budget = call.budget;
  if (call.executor != nullptr) base.executor = call.executor;
  if (call.fault != nullptr) base.fault = call.fault;
  if (call.spill != nullptr) base.spill = call.spill;
  if (call.batch != exec::BatchMode::kAuto) base.batch = call.batch;
  if (call.bloom != exec::BloomMode::kAuto) base.bloom = call.bloom;
  if (call.join != exec::JoinStrategy::kAuto) base.join = call.join;
  base.collect_stats = base.collect_stats || call.collect_stats;
  return base;
}

// Fluent With* setters over an embedded ExecPolicy, written once and mixed
// into every option struct that carries one (ExecuteOptions here,
// SessionOptions in core/session.h). The derived type exposes the policy
// via `policy()` and gets builders that return its own type, so chains
// keep working: ExecuteOptions{}.WithBudget(&b).WithStats(&s).
template <typename Derived>
struct ExecPolicyBuilder {
  Derived& WithBudget(ResourceBudget* b) {
    self().policy().budget = b;
    return self();
  }
  Derived& WithExecutor(exec::Executor* e) {
    self().policy().executor = e;
    return self();
  }
  Derived& WithFault(FaultInjector* f) {
    self().policy().fault = f;
    return self();
  }
  Derived& WithSpill(const exec::SpillConfig* s) {
    self().policy().spill = s;
    return self();
  }
  Derived& WithBatchMode(exec::BatchMode m) {
    self().policy().batch = m;
    return self();
  }
  Derived& WithBloomMode(exec::BloomMode m) {
    self().policy().bloom = m;
    return self();
  }
  Derived& WithJoinStrategy(exec::JoinStrategy s) {
    self().policy().join = s;
    return self();
  }
  Derived& WithCollectStats(bool b = true) {
    self().policy().collect_stats = b;
    return self();
  }

 private:
  Derived& self() { return static_cast<Derived&>(*this); }
};

// Interpreter options: the shared execution policy (inherited, so
// `options.budget` etc. keep reading naturally at kernel call sites) plus
// the interpreter-only stats side channel.
struct ExecuteOptions : ExecPolicy, ExecPolicyBuilder<ExecuteOptions> {
  // Optional stats collection root (not owned). When set, Execute fills it
  // for the plan's root operator and appends one child per plan child.
  // Serving-layer callers should prefer ExecPolicy::collect_stats, which
  // returns an owned tree inside the QueryResult.
  exec::OperatorStats* stats = nullptr;

  ExecPolicy& policy() { return *this; }
  const ExecPolicy& policy() const { return *this; }

  ExecuteOptions& WithStats(exec::OperatorStats* s) {
    stats = s;
    return *this;
  }
};

// The serving API (core/session.h) spells this ExecOptions; both names
// refer to the same struct.
using ExecOptions = ExecuteOptions;

// Low-level entry point: executes an already-optimized (or hand-built)
// expression tree. Application code serving SQL should prefer
// gsopt::Session (core/session.h), which layers parsing, optimization and
// the plan cache on top of this and funnels back into it; Execute stays
// the ground-truth interpreter used by tests and kernels.
StatusOr<Relation> Execute(const NodePtr& node, const Catalog& catalog,
                           const ExecuteOptions& options = {});

// Executes both expressions and compares visible extensions (bag equality
// over qualified attribute names). Options (budget, stats) apply to both
// executions, so equivalence checks under a resource budget are governed
// rather than budget-blind.
StatusOr<bool> ExecutionEquivalent(const NodePtr& a, const NodePtr& b,
                                   const Catalog& catalog,
                                   const ExecuteOptions& options = {});

}  // namespace gsopt

#endif  // GSOPT_ALGEBRA_EXECUTE_H_
