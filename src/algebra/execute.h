// Interpreter: evaluates a logical expression tree against a catalog by
// invoking the executor kernels. This is the ground-truth semantics used by
// every equivalence property test and by the benchmark harnesses.
#ifndef GSOPT_ALGEBRA_EXECUTE_H_
#define GSOPT_ALGEBRA_EXECUTE_H_

#include "algebra/node.h"
#include "base/status.h"
#include "relational/catalog.h"

namespace gsopt {

StatusOr<Relation> Execute(const NodePtr& node, const Catalog& catalog);

// Executes both expressions and compares visible extensions (bag equality
// over qualified attribute names).
StatusOr<bool> ExecutionEquivalent(const NodePtr& a, const NodePtr& b,
                                   const Catalog& catalog);

}  // namespace gsopt

#endif  // GSOPT_ALGEBRA_EXECUTE_H_
