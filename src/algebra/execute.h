// Interpreter: evaluates a logical expression tree against a catalog by
// invoking the executor kernels. This is the ground-truth semantics used by
// every equivalence property test and by the benchmark harnesses.
//
// Execution is governable: pass ExecuteOptions with a ResourceBudget and
// every row-producing operator checks it cooperatively, returning
// Status(kResourceExhausted) instead of materializing unbounded
// intermediate results or overrunning a deadline.
//
// Execution is observable: pass ExecuteOptions with an OperatorStats root
// and the interpreter mirrors the plan tree with a stats tree -- one node
// per operator, recording rows in/out, wall time and the kernels' hash
// build/probe counters -- which EXPLAIN ANALYZE (algebra/explain.h) joins
// against the cost model's estimates.
#ifndef GSOPT_ALGEBRA_EXECUTE_H_
#define GSOPT_ALGEBRA_EXECUTE_H_

#include "algebra/node.h"
#include "base/budget.h"
#include "base/fault_injector.h"
#include "base/status.h"
#include "exec/eval.h"
#include "exec/executor.h"
#include "exec/stats.h"
#include "relational/catalog.h"

namespace gsopt {

struct ExecuteOptions {
  // Optional cooperative budget (deadline / row cap); not owned.
  ResourceBudget* budget = nullptr;
  // Optional stats collection root (not owned). When set, Execute fills it
  // for the plan's root operator and appends one child per plan child.
  exec::OperatorStats* stats = nullptr;
  // Optional morsel-parallel executor (not owned). Null -- the default --
  // runs every operator on the serial reference kernels. With more than
  // one lane, large inputs take the parallel kernel paths; results are
  // bag-equal to serial execution (row order may differ).
  exec::Executor* executor = nullptr;
  // Optional deterministic fault injector (not owned). When set, kernels
  // probe it at allocation, spill I/O, budget-check and dispatch points;
  // see base/fault_injector.h.
  FaultInjector* fault = nullptr;
  // Optional spill configuration (not owned). When set and enabled, hash
  // joins and aggregations that trip the memory cap degrade to the
  // out-of-core partitioned path instead of failing; see exec/eval.h.
  const exec::SpillConfig* spill = nullptr;
  // Columnar batch-execution policy (exec/eval.h BatchMode). kAuto -- the
  // default -- vectorizes large inputs; kOff pins the tuple-at-a-time
  // reference kernels; kForce vectorizes regardless of size. Results are
  // bag-equal across modes (the columnar-vs-tuple oracle enforces this);
  // only row order may differ.
  exec::BatchMode batch = exec::BatchMode::kAuto;
  // Bloom-filter sideways-information-passing policy (exec/bloom.h
  // BloomMode). kAuto -- the default -- builds a build-side filter for
  // joins whose build/probe cardinality ratio makes early probe rejection
  // profitable; kOff pins every join filter-free (the differential
  // baseline); kForce always filters. Results are bag-equal across modes
  // (the bloom-vs-off oracle enforces this).
  exec::BloomMode bloom = exec::BloomMode::kAuto;
  // Physical join-strategy policy (exec/eval.h JoinStrategy). kAuto -- the
  // default -- follows the per-node merge hints the order-aware optimizer
  // stamps (hash when unhinted); kHashOnly pins the hash/nested-loop paths
  // (the differential baseline); kMergeOnly forces sort-merge joins and
  // sort-based aggregation everywhere. Results are bag-equal across modes
  // (the merge-vs-hash oracle enforces this); only row order may differ.
  exec::JoinStrategy join = exec::JoinStrategy::kAuto;

  // Fluent builder, matching OptimizeOptions / SessionOptions idiom.
  ExecuteOptions& WithBudget(ResourceBudget* b) { budget = b; return *this; }
  ExecuteOptions& WithStats(exec::OperatorStats* s) { stats = s; return *this; }
  ExecuteOptions& WithExecutor(exec::Executor* e) { executor = e; return *this; }
  ExecuteOptions& WithFault(FaultInjector* f) { fault = f; return *this; }
  ExecuteOptions& WithSpill(const exec::SpillConfig* s) {
    spill = s;
    return *this;
  }
  ExecuteOptions& WithBatchMode(exec::BatchMode m) {
    batch = m;
    return *this;
  }
  ExecuteOptions& WithBloomMode(exec::BloomMode m) {
    bloom = m;
    return *this;
  }
  ExecuteOptions& WithJoinStrategy(exec::JoinStrategy s) {
    join = s;
    return *this;
  }
};

// The serving API (core/session.h) spells this ExecOptions; both names
// refer to the same struct.
using ExecOptions = ExecuteOptions;

// Low-level entry point: executes an already-optimized (or hand-built)
// expression tree. Application code serving SQL should prefer
// gsopt::Session (core/session.h), which layers parsing, optimization and
// the plan cache on top of this and funnels back into it; Execute stays
// the ground-truth interpreter used by tests and kernels.
StatusOr<Relation> Execute(const NodePtr& node, const Catalog& catalog,
                           const ExecuteOptions& options = {});

// Executes both expressions and compares visible extensions (bag equality
// over qualified attribute names). Options (budget, stats) apply to both
// executions, so equivalence checks under a resource budget are governed
// rather than budget-blind.
StatusOr<bool> ExecutionEquivalent(const NodePtr& a, const NodePtr& b,
                                   const Catalog& catalog,
                                   const ExecuteOptions& options = {});

}  // namespace gsopt

#endif  // GSOPT_ALGEBRA_EXECUTE_H_
