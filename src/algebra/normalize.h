// Normalization for reordering (paper §4 step (a)):
//   * aggregations (generalized projections) are pulled up to the root so
//     the binary operators underneath become adjacent and reorderable
//     (Example 3.1 / Query 1 / Example 1.1);
//   * predicates that reference aggregation outputs are split off the
//     binary operators and deferred into generalized selections above the
//     pulled-up aggregation;
//   * plain selections and previously created generalized selections are
//     hoisted with operator-specific preserved-group adjustments.
//
// The result is a pure join/outer-join tree (reorderable by the
// enumerator) plus an ordered stack of unary "wrappers" to re-apply above
// whichever reordering the optimizer picks. Subexpressions that cannot be
// normalized soundly are left intact and treated as opaque units by the
// query-graph builder -- exactly how a production optimizer handles a
// non-mergeable view.
#ifndef GSOPT_ALGEBRA_NORMALIZE_H_
#define GSOPT_ALGEBRA_NORMALIZE_H_

#include <string>
#include <vector>

#include "algebra/node.h"
#include "base/budget.h"
#include "base/status.h"
#include "relational/catalog.h"

namespace gsopt {

struct Wrapper {
  enum class Kind { kGeneralizedSelection, kGroupBy } kind =
      Kind::kGeneralizedSelection;
  // kGeneralizedSelection (a plain selection is the zero-group case):
  Predicate pred;
  std::vector<exec::PreservedGroup> groups;
  // kGroupBy:
  exec::GroupBySpec spec;

  std::string ToString() const;
};

struct NormalizedQuery {
  // Pure binary join/outer-join tree (leaves: base relations, filtered
  // base relations, or opaque subexpressions).
  NodePtr join_tree;
  // Unary operators to re-apply above the (re-ordered) tree, innermost
  // first.
  std::vector<Wrapper> wrappers;
  // Auxiliary columns introduced by null-side aggregation pull-up; the
  // caller projects them away after applying the wrappers.
  std::vector<Attribute> drop_cols;
};

// Normalizes `query`. Always succeeds structurally: parts that cannot be
// normalized remain embedded in join_tree as opaque subexpressions. An
// optional budget (not owned) is probed per visited node; an expired
// deadline returns Status(kResourceExhausted).
StatusOr<NormalizedQuery> NormalizeForReordering(
    const NodePtr& query, const Catalog& catalog,
    ResourceBudget* budget = nullptr);

// Re-applies the wrappers (and drops auxiliary columns) above `tree`.
StatusOr<NodePtr> ApplyWrappers(const NormalizedQuery& nq, NodePtr tree,
                                const Catalog& catalog);

}  // namespace gsopt

#endif  // GSOPT_ALGEBRA_NORMALIZE_H_
