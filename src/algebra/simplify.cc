#include "algebra/simplify.h"

#include <set>
#include <string>

namespace gsopt {

namespace {

using RelNameSet = std::set<std::string>;

bool IntersectsRels(const RelNameSet& nr, const NodePtr& node) {
  for (const std::string& rel : node->BaseRels()) {
    if (nr.count(rel)) return true;
  }
  return false;
}

RelNameSet Union(const RelNameSet& a, const RelNameSet& b) {
  RelNameSet out = a;
  out.insert(b.begin(), b.end());
  return out;
}

// nr: relations whose null-padded rows cannot reach the output because a
// null-intolerant predicate above references them.
NodePtr Simplify(const NodePtr& node, const RelNameSet& nr) {
  switch (node->kind()) {
    case OpKind::kLeaf:
      return node;
    case OpKind::kSelect: {
      RelNameSet child_nr = Union(nr, node->pred().NullRejectedRels());
      NodePtr c = Simplify(node->left(), child_nr);
      return c == node->left() ? node : Node::Select(c, node->pred());
    }
    case OpKind::kGeneralizedSelection: {
      // Preserved relations survive even when the GS predicate rejects
      // them, so only non-preserved referenced relations are null-rejected.
      RelNameSet preserved;
      for (const auto& g : node->groups()) preserved.insert(g.begin(), g.end());
      RelNameSet child_nr = nr;
      for (const std::string& rel : node->pred().NullRejectedRels()) {
        if (!preserved.count(rel)) child_nr.insert(rel);
      }
      NodePtr c = Simplify(node->left(), child_nr);
      return c == node->left()
                 ? node
                 : Node::GeneralizedSelection(c, node->pred(), node->groups());
    }
    case OpKind::kSort: {
      // Sorting preserves rows 1:1, so null-rejection from above transfers
      // straight through.
      NodePtr c = Simplify(node->left(), nr);
      return c == node->left() ? node : Node::Sort(c, node->sort_spec());
    }
    case OpKind::kProject:
    case OpKind::kGroupBy: {
      // These do not reject nulls; recurse with an empty rejection set
      // (aggregation re-shapes rows, so rejection above does not transfer
      // through soundly in general).
      NodePtr c = Simplify(node->left(), {});
      if (c == node->left()) return node;
      if (node->kind() == OpKind::kProject) {
        return Node::Project(c, node->projection());
      }
      return Node::GroupBy(c, node->groupby());
    }
    default:
      break;
  }

  // Binary operators.
  OpKind kind = node->kind();
  const NodePtr& l = node->left();
  const NodePtr& r = node->right();

  // Degeneration can cascade at one node (FOJ -> LOJ -> inner when the
  // rejection set covers both sides), so iterate to a fixpoint here.
  bool changed = true;
  while (changed) {
    changed = false;
    if (kind == OpKind::kLeftOuterJoin && IntersectsRels(nr, r)) {
      kind = OpKind::kInnerJoin;
      changed = true;
    } else if (kind == OpKind::kRightOuterJoin && IntersectsRels(nr, l)) {
      kind = OpKind::kInnerJoin;
      changed = true;
    } else if (kind == OpKind::kFullOuterJoin) {
      bool reject_l = IntersectsRels(nr, l);
      bool reject_r = IntersectsRels(nr, r);
      if (reject_l && reject_r) {
        kind = OpKind::kInnerJoin;
        changed = true;
      } else if (reject_r) {
        // Rows padded on the RIGHT side's columns (= left-only rows) die,
        // so preserving the left side is useless: keep right preserved.
        kind = OpKind::kRightOuterJoin;
        changed = true;
      } else if (reject_l) {
        kind = OpKind::kLeftOuterJoin;
        changed = true;
      }
    }
  }

  RelNameSet pred_rels = node->pred().NullRejectedRels();
  RelNameSet nr_l, nr_r;
  switch (kind) {
    case OpKind::kInnerJoin:
    case OpKind::kSemiJoin:
      nr_l = Union(nr, pred_rels);
      nr_r = Union(nr, pred_rels);
      break;
    case OpKind::kLeftOuterJoin:
      // Preserved (left) rows failing the predicate survive padded; only
      // the null-supplying side's unmatched rows are dropped.
      nr_l = nr;
      nr_r = Union(nr, pred_rels);
      break;
    case OpKind::kRightOuterJoin:
      nr_l = Union(nr, pred_rels);
      nr_r = nr;
      break;
    case OpKind::kFullOuterJoin:
    case OpKind::kMgoj:
      nr_l = nr;
      nr_r = nr;
      break;
    case OpKind::kAntiJoin:
      // Anti join keeps UNMATCHED left rows: padded left rows survive, and
      // right rows never surface; no extra rejection.
      nr_l = nr;
      nr_r = {};
      break;
    default:
      nr_l = nr;
      nr_r = nr;
      break;
  }

  NodePtr nl = Simplify(l, nr_l);
  NodePtr nr_child = Simplify(r, nr_r);
  if (kind == node->kind() && nl == l && nr_child == r) return node;
  if (kind == OpKind::kMgoj) {
    return Node::Mgoj(nl, nr_child, node->pred(), node->groups());
  }
  return Node::Binary(kind, nl, nr_child, node->pred());
}

}  // namespace

NodePtr SimplifyOuterJoins(const NodePtr& query) {
  if (query == nullptr) return query;
  return Simplify(query, {});
}

bool IsSimpleQuery(const NodePtr& query) {
  return SimplifyOuterJoins(query) == query;
}

}  // namespace gsopt
