#include "algebra/explain.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace gsopt {

namespace {

std::string OneLine(const Node& n) {
  switch (n.kind()) {
    case OpKind::kLeaf:
      return "scan " + n.table();
    case OpKind::kSelect:
      return "SELECT[" + n.pred().ToString() + "]";
    case OpKind::kProject: {
      std::string s = "PROJECT[";
      const auto& outs = n.projection_out();
      for (size_t i = 0; i < outs.size(); ++i) {
        if (i) s += ", ";
        s += outs[i].Qualified();
      }
      return s + "]";
    }
    case OpKind::kGroupBy:
      return n.groupby().ToString();
    case OpKind::kGeneralizedSelection: {
      std::string s = "GS[" + n.pred().ToString() + ";";
      for (const auto& g : n.groups()) {
        s += " {";
        bool first = true;
        for (const auto& rel : g) {
          if (!first) s += " ";
          s += rel;
          first = false;
        }
        s += "}";
      }
      return s + "]";
    }
    case OpKind::kMgoj: {
      std::string s = "MGOJ[" + n.pred().ToString() + "]";
      return s;
    }
    case OpKind::kSort:
      return "SORT[" + exec::SortSpecToString(n.sort_spec()) + "]";
    default: {
      std::string s = OpKindName(n.kind()) + "[" + n.pred().ToString() + "]";
      if (n.merge_join()) s += " (merge)";
      return s;
    }
  }
}

void Render(const NodePtr& n, const CostModel& model, int depth,
            std::string* out) {
  CostEstimate est = model.Estimate(n);
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += OneLine(*n);
  if (line.size() < 58) line.resize(58, ' ');
  char buf[64];
  std::snprintf(buf, sizeof(buf), " rows=%-10.0f cost=%.0f", est.rows,
                est.cost);
  line += buf;
  out->append(line);
  out->push_back('\n');
  if (n->left()) Render(n->left(), model, depth + 1, out);
  if (n->right()) Render(n->right(), model, depth + 1, out);
}

// Joins the cost model's row estimate onto the stats tree. The stats tree
// mirrors the plan tree by construction (one child per plan child, in
// order), so a parallel walk lines the two up; a shape mismatch (stats
// from a different plan) just stops annotating that subtree.
void AnnotateEstimates(const NodePtr& n, const CostModel& model,
                       exec::OperatorStats* stats) {
  stats->est_rows = model.Estimate(n).rows;
  size_t child = 0;
  for (const NodePtr* c : {&n->left(), &n->right()}) {
    if (*c == nullptr) continue;
    if (child >= stats->children.size()) return;
    AnnotateEstimates(*c, model, stats->children[child++].get());
  }
}

void RenderAnalyze(const NodePtr& n, const exec::OperatorStats& stats,
                   int depth, std::string* out) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += OneLine(*n);
  if (line.size() < 46) line.resize(46, ' ');
  char buf[192];
  std::snprintf(buf, sizeof(buf), " est=%-8.0f rows=%-8llu q=%-6.2f time=%.3fms",
                stats.est_rows,
                static_cast<unsigned long long>(stats.rows_out),
                stats.QError(),
                static_cast<double>(stats.wall.count()) / 1e6);
  line += buf;
  if (stats.hash_path) {
    std::snprintf(buf, sizeof(buf),
                  " hash{build=%llu probe=%llu maxbucket=%llu nullskip=%llu "
                  "residual=%llu}",
                  static_cast<unsigned long long>(stats.build_rows),
                  static_cast<unsigned long long>(stats.probe_rows),
                  static_cast<unsigned long long>(stats.max_bucket),
                  static_cast<unsigned long long>(stats.null_key_skips),
                  static_cast<unsigned long long>(stats.residual_evals));
    line += buf;
  }
  if (stats.bloom) {
    std::snprintf(buf, sizeof(buf),
                  " bloom{checks=%llu rejects=%llu fp=%llu}",
                  static_cast<unsigned long long>(stats.bloom_checks),
                  static_cast<unsigned long long>(stats.bloom_rejects),
                  static_cast<unsigned long long>(
                      stats.bloom_false_positives));
    line += buf;
  }
  if (stats.merge_path || stats.sort_rows > 0) {
    std::snprintf(buf, sizeof(buf),
                  " sort{%srows=%llu runs=%llu passes=%llu}",
                  stats.merge_path ? "merge " : "",
                  static_cast<unsigned long long>(stats.sort_rows),
                  static_cast<unsigned long long>(stats.sort_runs),
                  static_cast<unsigned long long>(stats.sort_merge_passes));
    line += buf;
  }
  if (stats.spilled) {
    std::snprintf(buf, sizeof(buf),
                  " spill{parts=%llu written=%llu read=%llu recurse=%llu "
                  "chunks=%llu}",
                  static_cast<unsigned long long>(stats.spill_partitions),
                  static_cast<unsigned long long>(stats.spill_bytes_written),
                  static_cast<unsigned long long>(stats.spill_bytes_read),
                  static_cast<unsigned long long>(stats.spill_recursions),
                  static_cast<unsigned long long>(stats.spill_chunks));
    line += buf;
  }
  out->append(line);
  out->push_back('\n');
  size_t child = 0;
  for (const NodePtr* c : {&n->left(), &n->right()}) {
    if (*c == nullptr) continue;
    if (child >= stats.children.size()) return;
    RenderAnalyze(*c, *stats.children[child++], depth + 1, out);
  }
}

}  // namespace

std::string Explain(const NodePtr& plan, const CostModel& model) {
  std::string out;
  if (plan == nullptr) return out;
  Render(plan, model, 0, &out);
  return out;
}

std::string AnalyzeText(const NodePtr& plan, const CostModel& model,
                        exec::OperatorStats* stats) {
  if (plan == nullptr || stats == nullptr) return "";
  AnnotateEstimates(plan, model, stats);
  std::string text;
  RenderAnalyze(plan, *stats, 0, &text);

  std::vector<double> qs;
  exec::CollectQErrors(*stats, &qs);
  if (!qs.empty()) {
    std::sort(qs.begin(), qs.end());
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "q-error over %zu operators: max=%.2f median=%.2f\n",
                  qs.size(), qs.back(), qs[qs.size() / 2]);
    text += buf;
  }
  return text;
}

StatusOr<AnalyzeResult> ExplainAnalyze(const NodePtr& plan,
                                       const Catalog& catalog,
                                       const CostModel& model,
                                       const ExecuteOptions& options) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  AnalyzeResult out;
  out.stats = std::make_unique<exec::OperatorStats>();
  ExecuteOptions xo = options;
  xo.stats = out.stats.get();
  GSOPT_ASSIGN_OR_RETURN(out.result, Execute(plan, catalog, xo));
  out.text = AnalyzeText(plan, model, out.stats.get());
  return out;
}

}  // namespace gsopt
