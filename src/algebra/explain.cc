#include "algebra/explain.h"

#include <cstdio>

namespace gsopt {

namespace {

std::string OneLine(const Node& n) {
  switch (n.kind()) {
    case OpKind::kLeaf:
      return "scan " + n.table();
    case OpKind::kSelect:
      return "SELECT[" + n.pred().ToString() + "]";
    case OpKind::kProject: {
      std::string s = "PROJECT[";
      const auto& outs = n.projection_out();
      for (size_t i = 0; i < outs.size(); ++i) {
        if (i) s += ", ";
        s += outs[i].Qualified();
      }
      return s + "]";
    }
    case OpKind::kGroupBy:
      return n.groupby().ToString();
    case OpKind::kGeneralizedSelection: {
      std::string s = "GS[" + n.pred().ToString() + ";";
      for (const auto& g : n.groups()) {
        s += " {";
        bool first = true;
        for (const auto& rel : g) {
          if (!first) s += " ";
          s += rel;
          first = false;
        }
        s += "}";
      }
      return s + "]";
    }
    case OpKind::kMgoj: {
      std::string s = "MGOJ[" + n.pred().ToString() + "]";
      return s;
    }
    default:
      return OpKindName(n.kind()) + "[" + n.pred().ToString() + "]";
  }
}

void Render(const NodePtr& n, const CostModel& model, int depth,
            std::string* out) {
  CostEstimate est = model.Estimate(n);
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += OneLine(*n);
  if (line.size() < 58) line.resize(58, ' ');
  char buf[64];
  std::snprintf(buf, sizeof(buf), " rows=%-10.0f cost=%.0f", est.rows,
                est.cost);
  line += buf;
  out->append(line);
  out->push_back('\n');
  if (n->left()) Render(n->left(), model, depth + 1, out);
  if (n->right()) Render(n->right(), model, depth + 1, out);
}

}  // namespace

std::string Explain(const NodePtr& plan, const CostModel& model) {
  std::string out;
  if (plan == nullptr) return out;
  Render(plan, model, 0, &out);
  return out;
}

}  // namespace gsopt
