// EXPLAIN-style plan rendering: an indented operator tree annotated with
// the cost model's per-node cardinality and cumulative cost estimates --
// plus EXPLAIN ANALYZE, which executes the plan collecting OperatorStats
// and joins the estimates against what actually happened.
#ifndef GSOPT_ALGEBRA_EXPLAIN_H_
#define GSOPT_ALGEBRA_EXPLAIN_H_

#include <memory>
#include <string>

#include "algebra/execute.h"
#include "algebra/node.h"
#include "optimizer/cost_model.h"

namespace gsopt {

// Multi-line rendering, e.g.
//   GS[p; {r1 r2}]                      rows=12    cost=340
//     LOJ[r2.e = r3.e]                  rows=15    cost=310
//       LOJ[r1.c = r2.c]                rows=9     cost=120
//         scan r1                       rows=6     cost=6
//         scan r2                       rows=4     cost=4
//       scan r3                         rows=5     cost=5
std::string Explain(const NodePtr& plan, const CostModel& model);

// EXPLAIN ANALYZE output: the query answer, the collected stats tree
// (estimates joined in) and the annotated rendering, e.g.
//   LOJ[r1.c = r2.c]    est=9 rows=7 q=1.29 time=0.041ms
//                       hash{build=4 probe=6 maxbucket=2 nullskip=1 ...}
// followed by a q-error summary line over all estimated operators.
struct AnalyzeResult {
  Relation result;
  std::unique_ptr<exec::OperatorStats> stats;
  std::string text;
};

// Serving-path EXPLAIN ANALYZE: annotates and renders the stats tree of an
// ALREADY-executed plan -- QueryResult::plan / QueryResult::stats from a
// Session call made with the collect_stats policy -- without re-executing.
// Joins the cost model's estimates into `stats` in place. Returns "" for a
// null plan or stats tree.
std::string AnalyzeText(const NodePtr& plan, const CostModel& model,
                        exec::OperatorStats* stats);

// Executes `plan` against `catalog` with stats collection (honouring
// options.budget), annotates each operator with the cost model's row
// estimate and renders the tree. Fails with the execution's status if the
// plan cannot run (budget exhausted, invalid plan, ...). Callers going
// through a Session should prefer WithCollectStats + AnalyzeText, which
// reuses the serving execution instead of running a second one.
StatusOr<AnalyzeResult> ExplainAnalyze(const NodePtr& plan,
                                       const Catalog& catalog,
                                       const CostModel& model,
                                       const ExecuteOptions& options = {});

}  // namespace gsopt

#endif  // GSOPT_ALGEBRA_EXPLAIN_H_
