// EXPLAIN-style plan rendering: an indented operator tree annotated with
// the cost model's per-node cardinality and cumulative cost estimates.
#ifndef GSOPT_ALGEBRA_EXPLAIN_H_
#define GSOPT_ALGEBRA_EXPLAIN_H_

#include <string>

#include "algebra/node.h"
#include "optimizer/cost_model.h"

namespace gsopt {

// Multi-line rendering, e.g.
//   GS[p; {r1 r2}]                      rows=12    cost=340
//     LOJ[r2.e = r3.e]                  rows=15    cost=310
//       LOJ[r1.c = r2.c]                rows=9     cost=120
//         scan r1                       rows=6     cost=6
//         scan r2                       rows=4     cost=4
//       scan r3                         rows=5     cost=5
std::string Explain(const NodePtr& plan, const CostModel& model);

}  // namespace gsopt

#endif  // GSOPT_ALGEBRA_EXPLAIN_H_
