#include "algebra/execute.h"

#include "exec/aggregate.h"
#include "exec/eval.h"

namespace gsopt {

StatusOr<Relation> Execute(const NodePtr& node, const Catalog& catalog) {
  if (node == nullptr) return Status::InvalidArgument("null plan node");
  switch (node->kind()) {
    case OpKind::kLeaf:
      return catalog.Get(node->table());
    case OpKind::kSelect: {
      GSOPT_ASSIGN_OR_RETURN(Relation child,
                             Execute(node->left(), catalog));
      return exec::Select(child, node->pred());
    }
    case OpKind::kProject: {
      GSOPT_ASSIGN_OR_RETURN(Relation child,
                             Execute(node->left(), catalog));
      if (node->projection_out() != node->projection()) {
        return exec::ProjectAs(child, node->projection(),
                               node->projection_out());
      }
      return exec::Project(child, node->projection());
    }
    case OpKind::kGeneralizedSelection: {
      GSOPT_ASSIGN_OR_RETURN(Relation child,
                             Execute(node->left(), catalog));
      return exec::GeneralizedSelection(child, node->pred(), node->groups());
    }
    case OpKind::kGroupBy: {
      GSOPT_ASSIGN_OR_RETURN(Relation child,
                             Execute(node->left(), catalog));
      return exec::GeneralizedProjection(child, node->groupby());
    }
    default:
      break;
  }
  GSOPT_ASSIGN_OR_RETURN(Relation l, Execute(node->left(), catalog));
  GSOPT_ASSIGN_OR_RETURN(Relation r, Execute(node->right(), catalog));
  switch (node->kind()) {
    case OpKind::kInnerJoin:
      return exec::InnerJoin(l, r, node->pred());
    case OpKind::kLeftOuterJoin:
      return exec::LeftOuterJoin(l, r, node->pred());
    case OpKind::kRightOuterJoin:
      return exec::RightOuterJoin(l, r, node->pred());
    case OpKind::kFullOuterJoin:
      return exec::FullOuterJoin(l, r, node->pred());
    case OpKind::kAntiJoin:
      return exec::AntiJoin(l, r, node->pred());
    case OpKind::kSemiJoin:
      return exec::SemiJoin(l, r, node->pred());
    case OpKind::kMgoj:
      return exec::Mgoj(l, r, node->pred(), node->groups());
    default:
      return Status::Internal("unhandled operator " +
                              OpKindName(node->kind()));
  }
}

StatusOr<bool> ExecutionEquivalent(const NodePtr& a, const NodePtr& b,
                                   const Catalog& catalog) {
  GSOPT_ASSIGN_OR_RETURN(Relation ra, Execute(a, catalog));
  GSOPT_ASSIGN_OR_RETURN(Relation rb, Execute(b, catalog));
  return Relation::BagEquals(ra, rb);
}

}  // namespace gsopt
