#include "algebra/execute.h"

#include "exec/aggregate.h"
#include "exec/eval.h"

namespace gsopt {

StatusOr<Relation> Execute(const NodePtr& node, const Catalog& catalog,
                           const ExecuteOptions& options) {
  if (node == nullptr) return Status::InvalidArgument("null plan node");
  exec::ExecContext ctx{options.budget};
  if (options.budget != nullptr) {
    GSOPT_RETURN_IF_ERROR(options.budget->CheckDeadlineNow("execute"));
  }
  switch (node->kind()) {
    case OpKind::kLeaf:
      return catalog.Get(node->table());
    case OpKind::kSelect: {
      GSOPT_ASSIGN_OR_RETURN(Relation child,
                             Execute(node->left(), catalog, options));
      return exec::Select(child, node->pred(), ctx);
    }
    case OpKind::kProject: {
      GSOPT_ASSIGN_OR_RETURN(Relation child,
                             Execute(node->left(), catalog, options));
      if (node->projection_out() != node->projection()) {
        return exec::ProjectAs(child, node->projection(),
                               node->projection_out(), ctx);
      }
      return exec::Project(child, node->projection(), ctx);
    }
    case OpKind::kGeneralizedSelection: {
      GSOPT_ASSIGN_OR_RETURN(Relation child,
                             Execute(node->left(), catalog, options));
      return exec::GeneralizedSelection(child, node->pred(), node->groups(),
                                        ctx);
    }
    case OpKind::kGroupBy: {
      GSOPT_ASSIGN_OR_RETURN(Relation child,
                             Execute(node->left(), catalog, options));
      return exec::GeneralizedProjection(child, node->groupby(), ctx);
    }
    default:
      break;
  }
  GSOPT_ASSIGN_OR_RETURN(Relation l, Execute(node->left(), catalog, options));
  GSOPT_ASSIGN_OR_RETURN(Relation r, Execute(node->right(), catalog, options));
  switch (node->kind()) {
    case OpKind::kInnerJoin:
      return exec::InnerJoin(l, r, node->pred(), ctx);
    case OpKind::kLeftOuterJoin:
      return exec::LeftOuterJoin(l, r, node->pred(), ctx);
    case OpKind::kRightOuterJoin:
      return exec::RightOuterJoin(l, r, node->pred(), ctx);
    case OpKind::kFullOuterJoin:
      return exec::FullOuterJoin(l, r, node->pred(), ctx);
    case OpKind::kAntiJoin:
      return exec::AntiJoin(l, r, node->pred(), ctx);
    case OpKind::kSemiJoin:
      return exec::SemiJoin(l, r, node->pred(), ctx);
    case OpKind::kMgoj:
      return exec::Mgoj(l, r, node->pred(), node->groups(), ctx);
    default:
      return Status::Internal("unhandled operator " +
                              OpKindName(node->kind()));
  }
}

StatusOr<bool> ExecutionEquivalent(const NodePtr& a, const NodePtr& b,
                                   const Catalog& catalog) {
  GSOPT_ASSIGN_OR_RETURN(Relation ra, Execute(a, catalog));
  GSOPT_ASSIGN_OR_RETURN(Relation rb, Execute(b, catalog));
  return Relation::BagEquals(ra, rb);
}

}  // namespace gsopt
