#include "algebra/execute.h"

#include <chrono>

#include "exec/aggregate.h"
#include "exec/eval.h"
#include "exec/sort.h"

namespace gsopt {

namespace {

using Clock = std::chrono::steady_clock;

std::string StatsLabel(const Node& n) {
  if (n.kind() == OpKind::kLeaf) return "scan " + n.table();
  // Surface the physical choice in EXPLAIN ANALYZE: a join the order-aware
  // optimizer hinted to sort-merge reads e.g. "JOIN (merge)".
  if (n.merge_join() && IsBinary(n.kind())) {
    return OpKindName(n.kind()) + " (merge)";
  }
  return OpKindName(n.kind());
}

StatusOr<Relation> ExecuteNode(const NodePtr& node, const Catalog& catalog,
                               const ExecuteOptions& options,
                               exec::OperatorStats* stats);

// Executes one child under its own stats node (appended in child order, so
// the stats tree mirrors the plan tree shape exactly).
StatusOr<Relation> ExecuteChild(const NodePtr& child, const Catalog& catalog,
                                const ExecuteOptions& options,
                                exec::OperatorStats* stats) {
  exec::OperatorStats* cs =
      stats == nullptr ? nullptr : stats->AddChild(std::string());
  return ExecuteNode(child, catalog, options, cs);
}

StatusOr<Relation> Dispatch(const NodePtr& node, const Catalog& catalog,
                            const ExecuteOptions& options,
                            const exec::ExecContext& ctx,
                            exec::OperatorStats* stats) {
  switch (node->kind()) {
    case OpKind::kLeaf:
      return catalog.Get(node->table());
    case OpKind::kSelect: {
      GSOPT_ASSIGN_OR_RETURN(
          Relation child, ExecuteChild(node->left(), catalog, options, stats));
      return exec::Select(child, node->pred(), ctx);
    }
    case OpKind::kProject: {
      GSOPT_ASSIGN_OR_RETURN(
          Relation child, ExecuteChild(node->left(), catalog, options, stats));
      if (node->projection_out() != node->projection()) {
        return exec::ProjectAs(child, node->projection(),
                               node->projection_out(), ctx);
      }
      return exec::Project(child, node->projection(), ctx);
    }
    case OpKind::kGeneralizedSelection: {
      GSOPT_ASSIGN_OR_RETURN(
          Relation child, ExecuteChild(node->left(), catalog, options, stats));
      return exec::GeneralizedSelection(child, node->pred(), node->groups(),
                                        ctx);
    }
    case OpKind::kGroupBy: {
      GSOPT_ASSIGN_OR_RETURN(
          Relation child, ExecuteChild(node->left(), catalog, options, stats));
      return exec::GeneralizedProjection(child, node->groupby(), ctx);
    }
    case OpKind::kSort: {
      GSOPT_ASSIGN_OR_RETURN(
          Relation child, ExecuteChild(node->left(), catalog, options, stats));
      return exec::Sort(child, node->sort_spec(), ctx);
    }
    default:
      break;
  }
  GSOPT_ASSIGN_OR_RETURN(Relation l,
                         ExecuteChild(node->left(), catalog, options, stats));
  GSOPT_ASSIGN_OR_RETURN(Relation r,
                         ExecuteChild(node->right(), catalog, options, stats));
  switch (node->kind()) {
    case OpKind::kInnerJoin:
      return exec::InnerJoin(l, r, node->pred(), ctx);
    case OpKind::kLeftOuterJoin:
      return exec::LeftOuterJoin(l, r, node->pred(), ctx);
    case OpKind::kRightOuterJoin:
      return exec::RightOuterJoin(l, r, node->pred(), ctx);
    case OpKind::kFullOuterJoin:
      return exec::FullOuterJoin(l, r, node->pred(), ctx);
    case OpKind::kAntiJoin:
      return exec::AntiJoin(l, r, node->pred(), ctx);
    case OpKind::kSemiJoin:
      return exec::SemiJoin(l, r, node->pred(), ctx);
    case OpKind::kMgoj:
      return exec::Mgoj(l, r, node->pred(), node->groups(), ctx);
    default:
      return Status::Internal("unhandled operator " +
                              OpKindName(node->kind()));
  }
}

StatusOr<Relation> ExecuteNode(const NodePtr& node, const Catalog& catalog,
                               const ExecuteOptions& options,
                               exec::OperatorStats* stats) {
  if (node == nullptr) return Status::InvalidArgument("null plan node");
  if (options.budget != nullptr) {
    GSOPT_RETURN_IF_ERROR(options.budget->CheckDeadlineNow("execute"));
  }
  exec::ExecContext ctx{options.budget,  stats,         options.executor,
                        options.fault,   options.spill, options.batch,
                        options.bloom,   options.join,  node->merge_join()};
  Clock::time_point start;
  if (stats != nullptr) {
    stats->op = StatsLabel(*node);
    start = Clock::now();
  }
  StatusOr<Relation> result = Dispatch(node, catalog, options, ctx, stats);
  if (stats != nullptr && result.ok()) {
    stats->wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - start);
    if (node->kind() == OpKind::kLeaf) {
      // Scans have no kernel to count for them.
      stats->rows_out = static_cast<uint64_t>(result->NumRows());
    }
  }
  return result;
}

}  // namespace

StatusOr<Relation> Execute(const NodePtr& node, const Catalog& catalog,
                           const ExecuteOptions& options) {
  return ExecuteNode(node, catalog, options, options.stats);
}

StatusOr<bool> ExecutionEquivalent(const NodePtr& a, const NodePtr& b,
                                   const Catalog& catalog,
                                   const ExecuteOptions& options) {
  GSOPT_ASSIGN_OR_RETURN(Relation ra, Execute(a, catalog, options));
  GSOPT_ASSIGN_OR_RETURN(Relation rb, Execute(b, catalog, options));
  return Relation::BagEquals(ra, rb);
}

}  // namespace gsopt
