#include "algebra/normalize.h"

#include <set>

#include "algebra/schema_infer.h"
#include "base/check.h"

namespace gsopt {

namespace {

int aux_counter_hint = 0;  // appended to aux column names for uniqueness

using QualSet = std::set<std::string>;

QualSet NodeQuals(const NodePtr& n, const Catalog& catalog) {
  QualSet out;
  auto schema = InferSchema(n, catalog);
  if (schema.ok()) {
    for (const Attribute& a : schema->attrs()) out.insert(a.rel);
  } else {
    for (const std::string& r : n->BaseRels()) out.insert(r);
  }
  return out;
}

// Qualifiers a wrapper's output adds (aggregation output relations).
void AddWrapperQuals(const Wrapper& w, QualSet* quals) {
  if (w.kind == Wrapper::Kind::kGroupBy) {
    QualSet kept;
    for (const Attribute& a : w.spec.group_cols) kept.insert(a.rel);
    for (const exec::AggSpec& agg : w.spec.aggs) kept.insert(agg.out_rel);
    *quals = kept;  // a group-by replaces the visible column set
  }
}

struct Side {
  NodePtr tree;
  std::vector<Wrapper> wrappers;
  std::vector<Attribute> drop_cols;
  QualSet tree_quals;  // qualifiers of tree's own output

  QualSet FinalQuals() const {
    QualSet q = tree_quals;
    for (const Wrapper& w : wrappers) AddWrapperQuals(w, &q);
    return q;
  }
};

// Base relations whose virtual attributes (row ids) survive the tree's
// output: group-bys keep only their grouping vids; renamed/opaque
// projections keep none. Grouping keys may only include surviving vids.
QualSet AvailableVids(const NodePtr& n) {
  switch (n->kind()) {
    case OpKind::kLeaf:
      return {n->table()};
    case OpKind::kSelect:
    case OpKind::kGeneralizedSelection:
      return AvailableVids(n->left());
    case OpKind::kGroupBy: {
      QualSet child = AvailableVids(n->left());
      QualSet out;
      for (const std::string& r : n->groupby().group_vid_rels) {
        if (child.count(r)) out.insert(r);
      }
      return out;
    }
    case OpKind::kProject: {
      if (n->projection_out() != n->projection()) return {};  // renamed
      QualSet child = AvailableVids(n->left());
      QualSet kept;
      for (const Attribute& a : n->projection()) {
        if (child.count(a.rel)) kept.insert(a.rel);
      }
      return kept;
    }
    default: {
      QualSet out;
      if (n->left()) {
        for (const std::string& r : AvailableVids(n->left())) out.insert(r);
      }
      if (n->right()) {
        for (const std::string& r : AvailableVids(n->right())) out.insert(r);
      }
      return out;
    }
  }
}

// Base relations that may appear null-padded in the tree's output (the
// null-supplied operand side of every outer join, both sides of a FOJ,
// and everything a generalized selection may pad).
QualSet NullableRels(const NodePtr& n) {
  QualSet out;
  switch (n->kind()) {
    case OpKind::kLeaf:
      return out;
    case OpKind::kLeftOuterJoin:
    case OpKind::kRightOuterJoin:
    case OpKind::kFullOuterJoin:
    case OpKind::kMgoj: {
      QualSet l = NullableRels(n->left());
      QualSet r = NullableRels(n->right());
      out.insert(l.begin(), l.end());
      out.insert(r.begin(), r.end());
      if (n->kind() != OpKind::kLeftOuterJoin) {
        for (const std::string& rel : n->left()->BaseRels()) out.insert(rel);
      }
      if (n->kind() != OpKind::kRightOuterJoin) {
        for (const std::string& rel : n->right()->BaseRels()) out.insert(rel);
      }
      return out;
    }
    case OpKind::kGeneralizedSelection:
      for (const std::string& rel : n->BaseRels()) out.insert(rel);
      return out;
    default: {
      if (n->left()) {
        QualSet l = NullableRels(n->left());
        out.insert(l.begin(), l.end());
      }
      if (n->right()) {
        QualSet r = NullableRels(n->right());
        out.insert(r.begin(), r.end());
      }
      return out;
    }
  }
}

// Relation qualifiers referenced by atom.
QualSet AtomQuals(const Atom& a) {
  QualSet q;
  for (const std::string& r : a.RelNames()) q.insert(r);
  return q;
}

bool Intersects(const QualSet& a, const QualSet& b) {
  for (const std::string& s : a) {
    if (b.count(s)) return true;
  }
  return false;
}

bool SubsetOf(const QualSet& a, const QualSet& b) {
  for (const std::string& s : a) {
    if (!b.count(s)) return false;
  }
  return true;
}

// Materializes a side back into a single opaque expression (fallback when
// its wrappers cannot cross the operator above).
StatusOr<NodePtr> Materialize(const Side& side, const Catalog& catalog) {
  NormalizedQuery nq;
  nq.join_tree = side.tree;
  nq.wrappers = side.wrappers;
  nq.drop_cols = side.drop_cols;
  return ApplyWrappers(nq, side.tree, catalog);
}

enum class SideRole { kPreserved, kNullSupplied, kBothPreserved };

SideRole RoleOf(OpKind k, bool is_left) {
  switch (k) {
    case OpKind::kInnerJoin:
      return SideRole::kNullSupplied;  // unmatched rows die on both sides
    case OpKind::kLeftOuterJoin:
      return is_left ? SideRole::kPreserved : SideRole::kNullSupplied;
    case OpKind::kRightOuterJoin:
      return is_left ? SideRole::kNullSupplied : SideRole::kPreserved;
    case OpKind::kFullOuterJoin:
      return SideRole::kBothPreserved;
    default:
      return SideRole::kNullSupplied;
  }
}

// Crosses one generalized-selection wrapper (zero groups = selection) over
// the operator. `p_side_refs` are the operator predicate's references into
// this side; `other_quals` the other side's qualifier set. Returns false
// if unsupported (caller falls back to materialization).
bool CrossGs(Wrapper* w, OpKind op, SideRole role, const QualSet& p_side_refs,
             const QualSet& other_quals) {
  // Does the operator predicate stay evaluable on a group's resurrections?
  // Yes iff every predicate reference into this side lies inside that
  // group (padding outside the group makes atoms UNKNOWN). No references
  // at all -- a TRUE / other-side-only predicate -- is trivially
  // evaluable: resurrections then match the other side's rows exactly as
  // real rows do, so the group must extend with the other side rather
  // than surviving with it padded.
  std::vector<exec::PreservedGroup> out;
  bool any_evaluable = false;
  for (const exec::PreservedGroup& g : w->groups) {
    QualSet gq(g.begin(), g.end());
    bool evaluable = SubsetOf(p_side_refs, gq);
    if (evaluable) {
      any_evaluable = true;
      exec::PreservedGroup g2 = g;
      g2.insert(other_quals.begin(), other_quals.end());
      out.push_back(std::move(g2));
      continue;
    }
    switch (role) {
      case SideRole::kPreserved:
      case SideRole::kBothPreserved:
        out.push_back(g);  // resurrections survive padded
        break;
      case SideRole::kNullSupplied:
        break;  // resurrections die in the join above: drop the group
    }
  }
  // The other side's rows matched only by killed tuples must survive when
  // the operator preserves them.
  if (!any_evaluable &&
      (role == SideRole::kNullSupplied ? op != OpKind::kInnerJoin : false)) {
    // ROJ seen from its null side: other side is preserved.
    out.push_back(exec::PreservedGroup(other_quals.begin(),
                                       other_quals.end()));
  }
  if (!any_evaluable && role == SideRole::kBothPreserved) {
    out.push_back(exec::PreservedGroup(other_quals.begin(),
                                       other_quals.end()));
  }
  w->groups = std::move(out);
  return true;
}

struct NormalizeContext {
  const Catalog& catalog;
  int next_aux = 0;
  ResourceBudget* budget = nullptr;  // optional, not owned
};

StatusOr<Side> Normalize(const NodePtr& node, NormalizeContext* ctx);

// Crosses all wrappers of `side` over operator `op`; on failure, falls
// back to materializing the side as an opaque expression. `pred` is the
// operator's predicate; atoms referencing a crossing group-by's aggregate
// outputs are split off into that group-by's deferred GS. `pred` is
// updated in place (deferred atoms removed).
StatusOr<Side> CrossSide(Side side, OpKind op, bool is_left, Predicate* pred,
                         const Side& other, NormalizeContext* ctx) {
  if (side.wrappers.empty()) return side;
  SideRole role = RoleOf(op, is_left);
  QualSet other_quals = other.FinalQuals();
  QualSet side_quals_now = side.tree_quals;

  std::vector<Wrapper> crossed;
  // Wrappers created AT this operator (deferred conjuncts of `pred`). They
  // represent work the original evaluates at `op`, i.e. ABOVE every wrapper
  // already in the list, so they append only after the whole list has
  // crossed -- inserting them mid-list would slide an upper operator's
  // filter below a lower operator's compensating GS, letting resurrected
  // rows escape a filter the original applies to them.
  std::vector<Wrapper> created_here;
  bool ok = true;
  for (size_t wi = 0; wi < side.wrappers.size() && ok; ++wi) {
    Wrapper w = side.wrappers[wi];
    switch (w.kind) {
      case Wrapper::Kind::kGeneralizedSelection: {
        QualSet p_side_refs;
        for (const Atom& a : pred->atoms()) {
          for (const std::string& q : AtomQuals(a)) {
            if (side.FinalQuals().count(q)) p_side_refs.insert(q);
          }
        }
        ok = CrossGs(&w, op, role, p_side_refs, other_quals);
        if (ok) crossed.push_back(std::move(w));
        break;
      }
      case Wrapper::Kind::kGroupBy: {
        if (role == SideRole::kBothPreserved) {
          ok = false;  // FOJ over an aggregation view: not mergeable
          break;
        }
        // Split the operator predicate into conjuncts referencing this
        // group-by's aggregate outputs (deferred) and the rest (kept).
        QualSet agg_quals;
        for (const exec::AggSpec& a : w.spec.aggs) agg_quals.insert(a.out_rel);
        std::vector<Atom> kept, deferred;
        for (const Atom& a : pred->atoms()) {
          if (Intersects(AtomQuals(a), agg_quals)) {
            deferred.push_back(a);
          } else {
            kept.push_back(a);
          }
        }
        // kept may be empty: the operator becomes a cartesian (TRUE-
        // predicate) join/outer join -- exactly what the paper's Query 1
        // requires when the outer join's only conjunct references COUNT.
        // Extend the grouping with the other side's columns and row ids.
        auto other_schema = InferSchema(other.tree, ctx->catalog);
        if (!other_schema.ok()) {
          ok = false;
          break;
        }
        for (const Attribute& a : other_schema->attrs()) {
          w.spec.group_cols.push_back(a);
        }
        for (const std::string& r : AvailableVids(other.tree)) {
          w.spec.group_vid_rels.push_back(r);
        }
        // Pulled group-by: rows are per (group, other-side) CELL; the
        // compensation above must deduplicate resurrections by group
        // VALUE, so the per-group synthetic row id must not leak in.
        w.spec.synthetic_vid = false;

        Wrapper gs;
        gs.kind = Wrapper::Kind::kGeneralizedSelection;
        gs.pred = Predicate(deferred);
        if (role == SideRole::kPreserved) {
          // The aggregate value rides with the preserved side. The pulled
          // group-by keeps no row id for this side (resurrections dedup by
          // value; synthetic_vid is off), so a REAL group that is all-NULL
          // on its group columns and aggregates would look exactly like
          // padding once an operator above null-supplies this side (a FOJ
          // placed over it by enumeration, or the GS's own compensation).
          // Witness real groups with a constant presence flag that rides
          // in the preserved group and is dropped at the root.
          std::string aux_rel = "#flag" + std::to_string(ctx->next_aux);
          std::string aux_name =
              "present" + std::to_string(ctx->next_aux++) +
              std::to_string(aux_counter_hint);
          exec::AggSpec aux;
          aux.func = exec::AggFunc::kGroupFlag;
          aux.out_rel = aux_rel;
          aux.out_name = aux_name;
          w.spec.aggs.push_back(aux);
          side.drop_cols.push_back(Attribute{aux_rel, aux_name});
          exec::PreservedGroup g(side_quals_now.begin(),
                                 side_quals_now.end());
          g.insert(agg_quals.begin(), agg_quals.end());
          g.insert(aux_rel);
          gs.groups.push_back(std::move(g));
        } else if (op != OpKind::kInnerJoin) {
          // Null-supplied side of an outer join: groups formed purely by
          // padding are phantoms; guard with a presence count and preserve
          // the other (outer-preserved) side.
          std::string aux_rel = "#aux";
          std::string aux_name =
              "present" + std::to_string(ctx->next_aux++) +
              std::to_string(aux_counter_hint);
          exec::AggSpec aux;
          aux.func = exec::AggFunc::kCountPresence;
          QualSet side_vids = AvailableVids(side.tree);
          if (side_vids.empty()) {
            ok = false;  // no surviving row id to witness presence
            break;
          }
          aux.presence_rel = *side_vids.begin();
          aux.out_rel = aux_rel;
          aux.out_name = aux_name;
          w.spec.aggs.push_back(aux);
          gs.pred.AddAtom(MakeConstAtom(aux_rel, aux_name, CmpOp::kGt,
                                        Value::Int(0)));
          gs.groups.push_back(exec::PreservedGroup(other_quals.begin(),
                                                   other_quals.end()));
          side.drop_cols.push_back(Attribute{aux_rel, aux_name});
        }
        // Inner join: a plain (zero-group) selection on the deferred
        // conjuncts suffices; skip the GS if there are none.
        *pred = Predicate(kept);
        crossed.push_back(std::move(w));
        if (!gs.pred.IsTrue()) created_here.push_back(std::move(gs));
        break;
      }
    }
  }

  if (!ok) {
    GSOPT_ASSIGN_OR_RETURN(NodePtr opaque, Materialize(side, ctx->catalog));
    Side s;
    s.tree = opaque;
    s.tree_quals = NodeQuals(opaque, ctx->catalog);
    return s;
  }
  for (Wrapper& w : created_here) crossed.push_back(std::move(w));
  side.wrappers = std::move(crossed);
  return side;
}

StatusOr<Side> Normalize(const NodePtr& node, NormalizeContext* ctx) {
  if (ctx->budget != nullptr) {
    GSOPT_RETURN_IF_ERROR(ctx->budget->CheckDeadline("normalize"));
  }
  Side out;
  switch (node->kind()) {
    case OpKind::kLeaf:
      out.tree = node;
      out.tree_quals = {node->table()};
      return out;
    case OpKind::kSelect: {
      // A filter directly on a base relation stays with the leaf (the
      // enumerator reorders the filtered unit); anything else hoists.
      if (node->left()->kind() == OpKind::kLeaf) {
        out.tree = node;
        out.tree_quals = {node->left()->table()};
        return out;
      }
      GSOPT_ASSIGN_OR_RETURN(Side child, Normalize(node->left(), ctx));
      Wrapper w;
      w.kind = Wrapper::Kind::kGeneralizedSelection;
      w.pred = node->pred();
      child.wrappers.push_back(std::move(w));
      return child;
    }
    case OpKind::kGeneralizedSelection: {
      GSOPT_ASSIGN_OR_RETURN(Side child, Normalize(node->left(), ctx));
      Wrapper w;
      w.kind = Wrapper::Kind::kGeneralizedSelection;
      w.pred = node->pred();
      w.groups = node->groups();
      child.wrappers.push_back(std::move(w));
      return child;
    }
    case OpKind::kGroupBy: {
      GSOPT_ASSIGN_OR_RETURN(Side child, Normalize(node->left(), ctx));
      // Pull-up is only sound when the aggregate inputs cannot be null-
      // padded inside the view: reordering compensations resurrect only
      // preserved parts, so values from a null-supplied side would vanish
      // from the aggregate's input (and distort COUNT/SUM). Otherwise the
      // view stays an opaque unit.
      QualSet nullable = NullableRels(child.tree);
      for (const exec::AggSpec& a : node->groupby().aggs) {
        if (a.input == nullptr) continue;
        std::vector<Attribute> cols;
        a.input->CollectColumns(&cols);
        for (const Attribute& col : cols) {
          if (nullable.count(col.rel)) {
            GSOPT_ASSIGN_OR_RETURN(NodePtr opaque_child,
                                   Materialize(child, ctx->catalog));
            out.tree = Node::GroupBy(opaque_child, node->groupby());
            out.tree_quals = NodeQuals(out.tree, ctx->catalog);
            return out;
          }
        }
      }
      Wrapper w;
      w.kind = Wrapper::Kind::kGroupBy;
      w.spec = node->groupby();
      child.wrappers.push_back(std::move(w));
      return child;
    }
    case OpKind::kProject: {
      // Projection mid-query: keep the subtree opaque (column pruning is a
      // physical concern; reordering below a projection is future work).
      out.tree = node;
      out.tree_quals = NodeQuals(node, ctx->catalog);
      return out;
    }
    case OpKind::kInnerJoin:
    case OpKind::kLeftOuterJoin:
    case OpKind::kRightOuterJoin:
    case OpKind::kFullOuterJoin: {
      GSOPT_ASSIGN_OR_RETURN(Side l, Normalize(node->left(), ctx));
      GSOPT_ASSIGN_OR_RETURN(Side r, Normalize(node->right(), ctx));
      // At most one side may cross a group-by at a node (the second would
      // need the first's not-yet-applied outputs in its group key).
      bool l_has_gp = false, r_has_gp = false;
      for (const Wrapper& w : l.wrappers) {
        if (w.kind == Wrapper::Kind::kGroupBy) l_has_gp = true;
      }
      for (const Wrapper& w : r.wrappers) {
        if (w.kind == Wrapper::Kind::kGroupBy) r_has_gp = true;
      }
      if (l_has_gp && r_has_gp) {
        GSOPT_ASSIGN_OR_RETURN(NodePtr opaque, Materialize(r, ctx->catalog));
        Side s;
        s.tree = opaque;
        s.tree_quals = NodeQuals(opaque, ctx->catalog);
        r = std::move(s);
      }
      Predicate pred = node->pred();
      GSOPT_ASSIGN_OR_RETURN(
          Side lc, CrossSide(std::move(l), node->kind(), true, &pred, r, ctx));
      GSOPT_ASSIGN_OR_RETURN(
          Side rc,
          CrossSide(std::move(r), node->kind(), false, &pred, lc, ctx));
      out.tree = Node::Binary(node->kind(), lc.tree, rc.tree, pred);
      out.tree_quals = lc.tree_quals;
      out.tree_quals.insert(rc.tree_quals.begin(), rc.tree_quals.end());
      out.wrappers = std::move(lc.wrappers);
      out.wrappers.insert(out.wrappers.end(), rc.wrappers.begin(),
                          rc.wrappers.end());
      out.drop_cols = std::move(lc.drop_cols);
      out.drop_cols.insert(out.drop_cols.end(), rc.drop_cols.begin(),
                           rc.drop_cols.end());
      return out;
    }
    default:
      // MGOJ / anti / semi joins arrive only from already-planned trees;
      // treat as opaque.
      out.tree = node;
      out.tree_quals = NodeQuals(node, ctx->catalog);
      return out;
  }
}

}  // namespace

std::string Wrapper::ToString() const {
  switch (kind) {
    case Kind::kGroupBy:
      return spec.ToString();
    case Kind::kGeneralizedSelection: {
      std::string s = "GS[" + pred.ToString() + ";";
      for (const auto& g : groups) {
        s += " {";
        bool first = true;
        for (const std::string& r : g) {
          if (!first) s += " ";
          s += r;
          first = false;
        }
        s += "}";
      }
      return s + "]";
    }
  }
  return "?";
}

StatusOr<NormalizedQuery> NormalizeForReordering(const NodePtr& query,
                                                 const Catalog& catalog,
                                                 ResourceBudget* budget) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  NormalizeContext ctx{catalog, 0, budget};
  ++aux_counter_hint;
  GSOPT_ASSIGN_OR_RETURN(Side side, Normalize(query, &ctx));
  NormalizedQuery nq;
  nq.join_tree = side.tree;
  nq.wrappers = std::move(side.wrappers);
  nq.drop_cols = std::move(side.drop_cols);
  return nq;
}

StatusOr<NodePtr> ApplyWrappers(const NormalizedQuery& nq, NodePtr tree,
                                const Catalog& catalog) {
  NodePtr out = std::move(tree);
  for (const Wrapper& w : nq.wrappers) {
    switch (w.kind) {
      case Wrapper::Kind::kGroupBy:
        out = Node::GroupBy(out, w.spec);
        break;
      case Wrapper::Kind::kGeneralizedSelection:
        if (w.groups.empty()) {
          out = Node::Select(out, w.pred);
        } else {
          out = Node::GeneralizedSelection(out, w.pred, w.groups);
        }
        break;
    }
  }
  if (!nq.drop_cols.empty()) {
    GSOPT_ASSIGN_OR_RETURN(Schema schema, InferSchema(out, catalog));
    std::vector<Attribute> keep;
    for (const Attribute& a : schema.attrs()) {
      bool dropped = false;
      for (const Attribute& d : nq.drop_cols) {
        if (a == d) dropped = true;
      }
      if (!dropped) keep.push_back(a);
    }
    out = Node::Project(out, std::move(keep));
  }
  return out;
}

}  // namespace gsopt
