// Logical algebra expression trees covering the paper's operator set:
// base relations, selection, inner / left / right / full outer join, anti
// and semi join, generalized selection (GS), MGOJ, generalized projection
// (GROUP BY) and projection. Nodes are immutable and shared; rewrites build
// new trees.
#ifndef GSOPT_ALGEBRA_NODE_H_
#define GSOPT_ALGEBRA_NODE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/eval.h"
#include "exec/sort.h"
#include "relational/expr.h"

namespace gsopt {

enum class OpKind {
  kLeaf,
  kSelect,
  kProject,
  kInnerJoin,
  kLeftOuterJoin,
  kRightOuterJoin,
  kFullOuterJoin,
  kAntiJoin,
  kSemiJoin,
  kGeneralizedSelection,
  kMgoj,
  kGroupBy,
  // Order enforcer (ORDER BY / interesting-order sorts): sorts the child
  // by a SortSpec under the contract of exec/sort.h. Its ToString renders
  // every key's direction, so sort direction is part of the canonical tree
  // string and therefore of plan-cache fingerprints.
  kSort,
};

bool IsBinary(OpKind k);
bool IsJoinLike(OpKind k);
std::string OpKindName(OpKind k);

class Node;
using NodePtr = std::shared_ptr<const Node>;

class Node {
 public:
  // --- factories ---
  static NodePtr Leaf(std::string table);
  static NodePtr Select(NodePtr child, Predicate p);
  static NodePtr Project(NodePtr child, std::vector<Attribute> attrs);
  // Projection with renaming: output column i is `out[i]`, sourced from
  // `src[i]` (used by the SQL binder for view aliases / SELECT ... AS).
  static NodePtr ProjectAs(NodePtr child, std::vector<Attribute> src,
                           std::vector<Attribute> out);
  static NodePtr Join(NodePtr l, NodePtr r, Predicate p);
  static NodePtr LeftOuterJoin(NodePtr l, NodePtr r, Predicate p);
  static NodePtr RightOuterJoin(NodePtr l, NodePtr r, Predicate p);
  static NodePtr FullOuterJoin(NodePtr l, NodePtr r, Predicate p);
  static NodePtr AntiJoin(NodePtr l, NodePtr r, Predicate p);
  static NodePtr SemiJoin(NodePtr l, NodePtr r, Predicate p);
  static NodePtr GeneralizedSelection(NodePtr child, Predicate p,
                                      std::vector<exec::PreservedGroup> gs);
  static NodePtr Mgoj(NodePtr l, NodePtr r, Predicate p,
                      std::vector<exec::PreservedGroup> gs);
  static NodePtr GroupBy(NodePtr child, exec::GroupBySpec spec);
  static NodePtr Sort(NodePtr child, exec::SortSpec spec);

  // Generic binary factory by kind (inner/outer joins).
  static NodePtr Binary(OpKind kind, NodePtr l, NodePtr r, Predicate p);

  // Copy of a binary join node with the sort-merge execution hint set (the
  // order-aware optimizer stamps joins whose merge execution pays for
  // itself; the interpreter forwards the hint to ExecContext::merge_hint).
  // The hint is physical-only: it does not appear in ToString, so logical
  // equivalence, enumeration dedup and plan-cache fingerprints are
  // unaffected.
  static NodePtr WithMergeJoin(const NodePtr& join);

  OpKind kind() const { return kind_; }
  const std::string& table() const { return table_; }
  const Predicate& pred() const { return pred_; }
  const std::vector<exec::PreservedGroup>& groups() const { return groups_; }
  const exec::GroupBySpec& groupby() const { return groupby_; }
  const exec::SortSpec& sort_spec() const { return sort_spec_; }
  bool merge_join() const { return merge_join_; }
  const std::vector<Attribute>& projection() const { return projection_; }
  // Output attributes for kProject; equals projection() unless renaming.
  const std::vector<Attribute>& projection_out() const {
    return projection_out_.empty() ? projection_ : projection_out_;
  }
  const NodePtr& left() const { return left_; }
  const NodePtr& right() const { return right_; }

  // Base relation names under this node.
  std::set<std::string> BaseRels() const;

  int NumOps() const;

  // Compact algebraic rendering, e.g.
  //   GS[r2.e=r3.e; {r1,r2}]((r1 LOJ[r1.c=r2.c] r2) LOJ[r1.f=r3.f] r3)
  std::string ToString() const;

 private:
  friend struct NodeBuilder;
  Node() = default;

  OpKind kind_ = OpKind::kLeaf;
  std::string table_;
  Predicate pred_;
  std::vector<exec::PreservedGroup> groups_;
  exec::GroupBySpec groupby_;
  exec::SortSpec sort_spec_;
  bool merge_join_ = false;
  std::vector<Attribute> projection_;
  std::vector<Attribute> projection_out_;
  NodePtr left_, right_;
};

}  // namespace gsopt

#endif  // GSOPT_ALGEBRA_NODE_H_
