#include "algebra/node.h"

#include "base/check.h"

namespace gsopt {

bool IsBinary(OpKind k) {
  switch (k) {
    case OpKind::kInnerJoin:
    case OpKind::kLeftOuterJoin:
    case OpKind::kRightOuterJoin:
    case OpKind::kFullOuterJoin:
    case OpKind::kAntiJoin:
    case OpKind::kSemiJoin:
    case OpKind::kMgoj:
      return true;
    default:
      return false;
  }
}

bool IsJoinLike(OpKind k) {
  switch (k) {
    case OpKind::kInnerJoin:
    case OpKind::kLeftOuterJoin:
    case OpKind::kRightOuterJoin:
    case OpKind::kFullOuterJoin:
      return true;
    default:
      return false;
  }
}

std::string OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kLeaf:
      return "LEAF";
    case OpKind::kSelect:
      return "SELECT";
    case OpKind::kProject:
      return "PROJECT";
    case OpKind::kInnerJoin:
      return "JOIN";
    case OpKind::kLeftOuterJoin:
      return "LOJ";
    case OpKind::kRightOuterJoin:
      return "ROJ";
    case OpKind::kFullOuterJoin:
      return "FOJ";
    case OpKind::kAntiJoin:
      return "ANTIJOIN";
    case OpKind::kSemiJoin:
      return "SEMIJOIN";
    case OpKind::kGeneralizedSelection:
      return "GS";
    case OpKind::kMgoj:
      return "MGOJ";
    case OpKind::kGroupBy:
      return "GP";
    case OpKind::kSort:
      return "SORT";
  }
  return "?";
}

// Private-constructor access helper (friend of Node).
struct NodeBuilder {
  static std::shared_ptr<Node> New() {
    return std::shared_ptr<Node>(new Node());
  }
  static Node* Mutable(const std::shared_ptr<Node>& n) { return n.get(); }
};

NodePtr Node::Leaf(std::string table) {
  auto n = NodeBuilder::New();
  n->kind_ = OpKind::kLeaf;
  n->table_ = std::move(table);
  return n;
}

NodePtr Node::Select(NodePtr child, Predicate p) {
  GSOPT_CHECK(child != nullptr);
  auto n = NodeBuilder::New();
  n->kind_ = OpKind::kSelect;
  n->pred_ = std::move(p);
  n->left_ = std::move(child);
  return n;
}

NodePtr Node::Project(NodePtr child, std::vector<Attribute> attrs) {
  GSOPT_CHECK(child != nullptr);
  auto n = NodeBuilder::New();
  n->kind_ = OpKind::kProject;
  n->projection_ = std::move(attrs);
  n->left_ = std::move(child);
  return n;
}

NodePtr Node::ProjectAs(NodePtr child, std::vector<Attribute> src,
                        std::vector<Attribute> out) {
  GSOPT_CHECK(child != nullptr);
  GSOPT_CHECK(src.size() == out.size());
  auto n = NodeBuilder::New();
  n->kind_ = OpKind::kProject;
  n->projection_ = std::move(src);
  n->projection_out_ = std::move(out);
  n->left_ = std::move(child);
  return n;
}

NodePtr Node::Binary(OpKind kind, NodePtr l, NodePtr r, Predicate p) {
  GSOPT_CHECK(IsBinary(kind));
  GSOPT_CHECK(l != nullptr && r != nullptr);
  auto n = NodeBuilder::New();
  n->kind_ = kind;
  n->pred_ = std::move(p);
  n->left_ = std::move(l);
  n->right_ = std::move(r);
  return n;
}

NodePtr Node::Join(NodePtr l, NodePtr r, Predicate p) {
  return Binary(OpKind::kInnerJoin, std::move(l), std::move(r), std::move(p));
}
NodePtr Node::LeftOuterJoin(NodePtr l, NodePtr r, Predicate p) {
  return Binary(OpKind::kLeftOuterJoin, std::move(l), std::move(r),
                std::move(p));
}
NodePtr Node::RightOuterJoin(NodePtr l, NodePtr r, Predicate p) {
  return Binary(OpKind::kRightOuterJoin, std::move(l), std::move(r),
                std::move(p));
}
NodePtr Node::FullOuterJoin(NodePtr l, NodePtr r, Predicate p) {
  return Binary(OpKind::kFullOuterJoin, std::move(l), std::move(r),
                std::move(p));
}
NodePtr Node::AntiJoin(NodePtr l, NodePtr r, Predicate p) {
  return Binary(OpKind::kAntiJoin, std::move(l), std::move(r), std::move(p));
}
NodePtr Node::SemiJoin(NodePtr l, NodePtr r, Predicate p) {
  return Binary(OpKind::kSemiJoin, std::move(l), std::move(r), std::move(p));
}

NodePtr Node::GeneralizedSelection(NodePtr child, Predicate p,
                                   std::vector<exec::PreservedGroup> gs) {
  GSOPT_CHECK(child != nullptr);
  auto n = NodeBuilder::New();
  n->kind_ = OpKind::kGeneralizedSelection;
  n->pred_ = std::move(p);
  n->groups_ = std::move(gs);
  n->left_ = std::move(child);
  return n;
}

NodePtr Node::Mgoj(NodePtr l, NodePtr r, Predicate p,
                   std::vector<exec::PreservedGroup> gs) {
  GSOPT_CHECK(l != nullptr && r != nullptr);
  auto n = NodeBuilder::New();
  n->kind_ = OpKind::kMgoj;
  n->pred_ = std::move(p);
  n->groups_ = std::move(gs);
  n->left_ = std::move(l);
  n->right_ = std::move(r);
  return n;
}

NodePtr Node::GroupBy(NodePtr child, exec::GroupBySpec spec) {
  GSOPT_CHECK(child != nullptr);
  auto n = NodeBuilder::New();
  n->kind_ = OpKind::kGroupBy;
  n->groupby_ = std::move(spec);
  n->left_ = std::move(child);
  return n;
}

NodePtr Node::Sort(NodePtr child, exec::SortSpec spec) {
  GSOPT_CHECK(child != nullptr);
  auto n = NodeBuilder::New();
  n->kind_ = OpKind::kSort;
  n->sort_spec_ = std::move(spec);
  n->left_ = std::move(child);
  return n;
}

NodePtr Node::WithMergeJoin(const NodePtr& join) {
  GSOPT_CHECK(join != nullptr && IsBinary(join->kind_));
  if (join->merge_join_) return join;
  auto n = NodeBuilder::New();
  *NodeBuilder::Mutable(n) = *join;
  NodeBuilder::Mutable(n)->merge_join_ = true;
  return n;
}

std::set<std::string> Node::BaseRels() const {
  std::set<std::string> out;
  if (kind_ == OpKind::kLeaf) {
    out.insert(table_);
    return out;
  }
  if (left_) {
    auto l = left_->BaseRels();
    out.insert(l.begin(), l.end());
  }
  if (right_) {
    auto r = right_->BaseRels();
    out.insert(r.begin(), r.end());
  }
  return out;
}

int Node::NumOps() const {
  int n = kind_ == OpKind::kLeaf ? 0 : 1;
  if (left_) n += left_->NumOps();
  if (right_) n += right_->NumOps();
  return n;
}

namespace {
std::string GroupsToString(const std::vector<exec::PreservedGroup>& groups) {
  std::string s;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (i) s += ", ";
    s += "{";
    bool first = true;
    for (const std::string& rel : groups[i]) {
      if (!first) s += " ";
      s += rel;
      first = false;
    }
    s += "}";
  }
  return s;
}
}  // namespace

std::string Node::ToString() const {
  switch (kind_) {
    case OpKind::kLeaf:
      return table_;
    case OpKind::kSelect:
      return "SELECT[" + pred_.ToString() + "](" + left_->ToString() + ")";
    case OpKind::kProject: {
      std::string s = "PROJECT[";
      for (size_t i = 0; i < projection_.size(); ++i) {
        if (i) s += ", ";
        s += projection_[i].Qualified();
      }
      return s + "](" + left_->ToString() + ")";
    }
    case OpKind::kGeneralizedSelection:
      return "GS[" + pred_.ToString() + "; " + GroupsToString(groups_) + "](" +
             left_->ToString() + ")";
    case OpKind::kGroupBy:
      return groupby_.ToString() + "(" + left_->ToString() + ")";
    case OpKind::kSort:
      return "SORT[" + exec::SortSpecToString(sort_spec_) + "](" +
             left_->ToString() + ")";
    case OpKind::kMgoj:
      return "(" + left_->ToString() + " MGOJ[" + pred_.ToString() + "; " +
             GroupsToString(groups_) + "] " + right_->ToString() + ")";
    default:
      return "(" + left_->ToString() + " " + OpKindName(kind_) + "[" +
             pred_.ToString() + "] " + right_->ToString() + ")";
  }
}

}  // namespace gsopt
