// Static output-schema inference for logical expression trees (no
// execution). Used by normalization (aggregation pull-up needs the column
// inventory of the non-aggregated side) and by the SQL binder.
#ifndef GSOPT_ALGEBRA_SCHEMA_INFER_H_
#define GSOPT_ALGEBRA_SCHEMA_INFER_H_

#include "algebra/node.h"
#include "base/status.h"
#include "relational/catalog.h"

namespace gsopt {

StatusOr<Schema> InferSchema(const NodePtr& node, const Catalog& catalog);

}  // namespace gsopt

#endif  // GSOPT_ALGEBRA_SCHEMA_INFER_H_
