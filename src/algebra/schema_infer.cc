#include "algebra/schema_infer.h"

namespace gsopt {

StatusOr<Schema> InferSchema(const NodePtr& node, const Catalog& catalog) {
  if (node == nullptr) return Status::InvalidArgument("null node");
  switch (node->kind()) {
    case OpKind::kLeaf: {
      const Relation* r = catalog.Find(node->table());
      if (r == nullptr) return Status::NotFound("no table " + node->table());
      return r->schema();
    }
    case OpKind::kSelect:
    case OpKind::kGeneralizedSelection:
    case OpKind::kSort:
      return InferSchema(node->left(), catalog);
    case OpKind::kProject: {
      GSOPT_ASSIGN_OR_RETURN(Schema child,
                             InferSchema(node->left(), catalog));
      Schema out;
      const auto& outs = node->projection_out();
      for (size_t i = 0; i < node->projection().size(); ++i) {
        const Attribute& a = node->projection()[i];
        if (child.Find(a.rel, a.name) < 0) {
          return Status::NotFound("projection column " + a.Qualified() +
                                  " not in " + child.ToString());
        }
        out.Append(outs[i]);
      }
      return out;
    }
    case OpKind::kGroupBy: {
      GSOPT_ASSIGN_OR_RETURN(Schema child,
                             InferSchema(node->left(), catalog));
      Schema out;
      for (const Attribute& a : node->groupby().group_cols) {
        if (child.Find(a.rel, a.name) < 0) {
          return Status::NotFound("group-by column " + a.Qualified() +
                                  " not in " + child.ToString());
        }
        out.Append(a);
      }
      for (const exec::AggSpec& agg : node->groupby().aggs) {
        out.Append(Attribute{agg.out_rel, agg.out_name});
      }
      return out;
    }
    case OpKind::kAntiJoin:
    case OpKind::kSemiJoin:
      return InferSchema(node->left(), catalog);
    default: {
      GSOPT_ASSIGN_OR_RETURN(Schema l, InferSchema(node->left(), catalog));
      GSOPT_ASSIGN_OR_RETURN(Schema r, InferSchema(node->right(), catalog));
      return Schema::Concat(l, r);
    }
  }
}

}  // namespace gsopt
