// Exec-internal shared pieces of the join / generalized-selection kernels:
// hash-join planning, canonical key encoding of tuples, the JoinCore result
// shape, and preserved-group indexing. Included by eval.cc (serial
// reference kernels) and parallel.cc (morsel-parallel kernels) so the two
// paths share one definition of the semantics-bearing helpers. Not part of
// the public exec/ API.
#ifndef GSOPT_EXEC_JOIN_INTERNAL_H_
#define GSOPT_EXEC_JOIN_INTERNAL_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "exec/eval.h"
#include "exec/keys.h"
#include "relational/relation.h"

namespace gsopt::exec::internal {

// ---------------------------------------------------------------------------
// Hash-join planning: split the conjunction into equi-atoms whose two sides
// separate across the inputs (the hash keys) and residual atoms.
// ---------------------------------------------------------------------------

inline bool ScalarBindsTo(const Scalar& s, const Schema& schema) {
  return s.Validate(schema).ok();
}

struct HashPlan {
  std::vector<ScalarPtr> a_keys;
  std::vector<ScalarPtr> b_keys;
  std::vector<Atom> residual;

  bool usable() const { return !a_keys.empty(); }
};

inline HashPlan MakeHashPlan(const Predicate& p, const Schema& sa,
                             const Schema& sb) {
  HashPlan plan;
  for (const Atom& atom : p.atoms()) {
    if (atom.kind == Atom::Kind::kCompare && atom.op == CmpOp::kEq) {
      bool l_in_a = ScalarBindsTo(*atom.lhs, sa);
      bool r_in_b = ScalarBindsTo(*atom.rhs, sb);
      bool l_in_b = ScalarBindsTo(*atom.lhs, sb);
      bool r_in_a = ScalarBindsTo(*atom.rhs, sa);
      if (l_in_a && r_in_b && !(l_in_b && r_in_a)) {
        plan.a_keys.push_back(atom.lhs);
        plan.b_keys.push_back(atom.rhs);
        continue;
      }
      if (l_in_b && r_in_a) {
        plan.a_keys.push_back(atom.rhs);
        plan.b_keys.push_back(atom.lhs);
        continue;
      }
    }
    plan.residual.push_back(atom);
  }
  return plan;
}

// Evaluates key scalars against one input tuple into `out`; returns false
// if any key value is NULL (NULL never equi-matches under 3VL, so such
// rows cannot join and are skipped by the hash path).
inline bool EncodeKeys(const std::vector<ScalarPtr>& keys, const Tuple& t,
                       const Schema& s, std::string* out) {
  out->clear();
  for (const ScalarPtr& k : keys) {
    Value v = k->Eval(t, s);
    if (v.is_null()) return false;
    AppendValueKey(v, out);
  }
  return true;
}

// Matched pairs plus per-side matched flags; the shared core of every join
// flavour.
struct JoinCoreResult {
  Relation out;
  std::vector<char> a_matched;
  std::vector<char> b_matched;
};

// Group column/vid indices for one preserved group within a schema.
struct GroupIndex {
  std::vector<int> value_idx;
  std::vector<int> vid_idx;
};

inline GroupIndex IndexGroup(const PreservedGroup& group, const Schema& schema,
                             const VirtualSchema& vschema) {
  GroupIndex gi;
  for (int i = 0; i < schema.size(); ++i) {
    if (group.count(schema.attr(i).rel)) gi.value_idx.push_back(i);
  }
  for (int i = 0; i < vschema.size(); ++i) {
    if (group.count(vschema.rel(i))) gi.vid_idx.push_back(i);
  }
  return gi;
}

// True if the tuple is entirely NULL on the group's columns and row ids.
// Such a projection means "no preserved tuple here" (the group's part was
// itself padding from an outer join below) and must not be resurrected.
inline bool GroupPartAllNull(const Tuple& t, const GroupIndex& gi) {
  for (int i : gi.value_idx) {
    if (!t.values[i].is_null()) return false;
  }
  for (int i : gi.vid_idx) {
    if (t.vids[i] != kNullRowId) return false;
  }
  return true;
}

// Builds the null-padded resurrection tuple for one preserved-group key.
inline Tuple PadGroupTuple(const Tuple& src, const GroupIndex& gi,
                           const Relation& shape) {
  Tuple t = shape.NullTuple();
  for (int i : gi.value_idx) t.values[i] = src.values[i];
  for (int i : gi.vid_idx) t.vids[i] = src.vids[i];
  return t;
}

// ---------------------------------------------------------------------------
// Morsel-parallel kernel paths (parallel.cc). Callers have already decided
// via ExecContext::Parallel(); these assume executor != nullptr.
// ---------------------------------------------------------------------------

StatusOr<Relation> ParallelSelect(const Relation& r, const Predicate& p,
                                  const ExecContext& ctx);

StatusOr<Relation> ParallelProduct(const Relation& a, const Relation& b,
                                   const ExecContext& ctx);

// Hash path when plan.usable(), parallel nested loops otherwise; either
// way bag-equal to the serial JoinCore.
StatusOr<JoinCoreResult> ParallelJoinCore(const Relation& a,
                                          const Relation& b,
                                          const HashPlan& plan,
                                          const Predicate& p,
                                          const ExecContext& ctx);

// The per-group difference of Definition 2.1, fanned out over r's rows:
// appends to `out` one null-padded resurrection tuple per distinct group
// key of r that does not appear in `surviving`, deduplicated across lanes.
Status ParallelGsResurrect(const Relation& r, const GroupIndex& gi,
                           const std::unordered_set<std::string>& surviving,
                           Relation* out, const ExecContext& ctx);

// Sort-merge twin of the hash JoinCore (exec/sort.cc): sorts both sides by
// their equi-key values (key-class comparator, so the equality partition
// is exactly the hash path's) and merges equal-key blocks, evaluating
// residual conjuncts per candidate pair. Rows whose key encodes NULL never
// match, like EncodeKeys' skip. Requires plan.usable(). Matched inner rows
// are emitted in ascending key order, which is what lets the order-aware
// optimizer claim the join's output order. Degrades to external key-sorted
// runs when the memory cap trips and spilling is enabled.
StatusOr<JoinCoreResult> MergeJoinCore(const Relation& a, const Relation& b,
                                       const HashPlan& plan,
                                       const ExecContext& ctx);

}  // namespace gsopt::exec::internal

#endif  // GSOPT_EXEC_JOIN_INTERNAL_H_
