// Executor: the parallelism knob for the operator kernels.
//
// An Executor owns a ThreadPool and the two policy numbers the kernels
// consult: the minimum input size worth fanning out (below it, morsel
// setup costs more than it saves) and the morsel size itself. Kernels
// receive it through ExecContext; a null executor -- the default
// everywhere -- means the serial reference kernels run, byte-identical to
// pre-parallel behaviour. Serial remains the ground truth: the parallel
// paths are proven bag-equal to it by tests/exec/parallel_exec_test.cc.
//
// One Executor serves one query execution at a time (the underlying pool
// serializes jobs); share it across sequential queries freely to amortize
// thread start-up.
#ifndef GSOPT_EXEC_EXECUTOR_H_
#define GSOPT_EXEC_EXECUTOR_H_

#include <cstdint>

#include "base/thread_pool.h"

namespace gsopt::exec {

class Executor {
 public:
  // `threads` is the total degree of parallelism (the calling thread
  // counts as one lane); 1 or less means no worker threads at all.
  explicit Executor(int threads) : pool_(threads) {}

  int lanes() const { return pool_.lanes(); }
  ThreadPool& pool() { return pool_; }

  // Inputs smaller than this run on the serial kernels even when an
  // executor is attached. Tests lower it to force the parallel paths onto
  // small randomized inputs.
  int64_t min_parallel_rows() const { return min_parallel_rows_; }
  void set_min_parallel_rows(int64_t n) {
    min_parallel_rows_ = n < 1 ? 1 : n;
  }

  int64_t morsel_rows() const { return morsel_rows_; }
  void set_morsel_rows(int64_t n) { morsel_rows_ = n < 1 ? 1 : n; }

 private:
  ThreadPool pool_;
  int64_t min_parallel_rows_ = 2048;
  int64_t morsel_rows_ = 1024;
};

}  // namespace gsopt::exec

#endif  // GSOPT_EXEC_EXECUTOR_H_
