#include "exec/columnar.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "exec/bloom.h"
#include "exec/hash_table.h"
#include "exec/spill.h"

namespace gsopt::exec::internal {

namespace {

using CAtom = CompiledFilter::CAtom;

// Best-effort read prefetch; a no-op on compilers without the builtin.
inline void Prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

int SlotFor(std::vector<int>* cols, int c) {
  for (size_t k = 0; k < cols->size(); ++k) {
    if ((*cols)[k] == c) return static_cast<int>(k);
  }
  cols->push_back(c);
  return static_cast<int>(cols->size() - 1);
}

// `k <op> col` rewritten as `col <mirror(op)> k`.
CmpOp MirrorOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

// Refines the selection vector by `keep`. The first refining atom runs
// "dense" over [0, n) and materializes the vector; later atoms compact it
// in place.
template <typename Keep>
void RefineSel(bool* dense, int64_t n, std::vector<int32_t>* sel, Keep keep) {
  // Branchless compaction: always store the candidate offset, advance the
  // write cursor by the predicate's 0/1. At mid selectivities a branchy
  // `if (keep) push_back` mispredicts on essentially every row.
  if (*dense) {
    sel->resize(static_cast<size_t>(n));
    int32_t* out = sel->data();
    size_t w = 0;
    for (int64_t i = 0; i < n; ++i) {
      out[w] = static_cast<int32_t>(i);
      w += keep(i) ? 1u : 0u;
    }
    sel->resize(w);
    *dense = false;
  } else {
    int32_t* out = sel->data();
    size_t w = 0;
    for (int32_t i : *sel) {
      out[w] = i;
      w += keep(static_cast<int64_t>(i)) ? 1u : 0u;
    }
    sel->resize(w);
  }
}

// Hoists the operator dispatch out of the row loop: one tight loop per
// (shape, op) pair, with only the null test and the three-way compare
// inside. `cmp3` is only called on non-null rows.
template <typename NullF, typename Cmp3>
void RefineCompare(CmpOp op, bool* dense, int64_t n, std::vector<int32_t>* sel,
                   NullF is_null, Cmp3 cmp3) {
  switch (op) {
    case CmpOp::kEq:
      RefineSel(dense, n, sel,
                [&](int64_t i) { return !is_null(i) && cmp3(i) == 0; });
      break;
    case CmpOp::kNe:
      RefineSel(dense, n, sel,
                [&](int64_t i) { return !is_null(i) && cmp3(i) != 0; });
      break;
    case CmpOp::kLt:
      RefineSel(dense, n, sel,
                [&](int64_t i) { return !is_null(i) && cmp3(i) < 0; });
      break;
    case CmpOp::kLe:
      RefineSel(dense, n, sel,
                [&](int64_t i) { return !is_null(i) && cmp3(i) <= 0; });
      break;
    case CmpOp::kGt:
      RefineSel(dense, n, sel,
                [&](int64_t i) { return !is_null(i) && cmp3(i) > 0; });
      break;
    case CmpOp::kGe:
      RefineSel(dense, n, sel,
                [&](int64_t i) { return !is_null(i) && cmp3(i) >= 0; });
      break;
  }
}

bool IsNumericKind(ColumnKind k) {
  return k == ColumnKind::kInt64 || k == ColumnKind::kDouble;
}

void ApplyColCol(const CAtom& ca, const std::vector<Column>& cols, bool* dense,
                 int64_t n, std::vector<int32_t>* sel) {
  const Column& a = cols[static_cast<size_t>(ca.lhs_slot)];
  const Column& b = cols[static_cast<size_t>(ca.rhs_slot)];
  auto is_null = [&](int64_t i) {
    return (a.nulls[static_cast<size_t>(i)] |
            b.nulls[static_cast<size_t>(i)]) != 0;
  };
  if (a.kind == ColumnKind::kInt64 && b.kind == ColumnKind::kInt64) {
    // Fully branchless int64 row test: non-short-circuit & lets the
    // compiler if-convert (and vectorize) the null mask and the compare
    // in one pass. NULL slots hold zeros, so the compare is safe to
    // evaluate unconditionally.
    const int64_t* xa = a.i64.data();
    const int64_t* xb = b.i64.data();
    const uint8_t* na = a.nulls.data();
    const uint8_t* nb = b.nulls.data();
    auto nn = [&](int64_t i) {
      return static_cast<unsigned>((na[i] | nb[i]) == 0);
    };
    switch (ca.op) {
      case CmpOp::kEq:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (xa[i] == xb[i]); });
        break;
      case CmpOp::kNe:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (xa[i] != xb[i]); });
        break;
      case CmpOp::kLt:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (xa[i] < xb[i]); });
        break;
      case CmpOp::kLe:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (xa[i] <= xb[i]); });
        break;
      case CmpOp::kGt:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (xa[i] > xb[i]); });
        break;
      case CmpOp::kGe:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (xa[i] >= xb[i]); });
        break;
    }
  } else if (IsNumericKind(a.kind) && IsNumericKind(b.kind)) {
    RefineCompare(ca.op, dense, n, sel, is_null, [&](int64_t i) {
      return CompareDoubles(a.NumAt(i), b.NumAt(i));
    });
  } else if (a.kind == ColumnKind::kString && b.kind == ColumnKind::kString) {
    RefineCompare(ca.op, dense, n, sel, is_null, [&](int64_t i) {
      int c = a.str[static_cast<size_t>(i)]->compare(
          *b.str[static_cast<size_t>(i)]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    });
  } else if (a.kind != ColumnKind::kMixed && b.kind != ColumnKind::kMixed) {
    // Typed but incomparable in every row (string vs numeric): the
    // comparison is UNKNOWN batch-wide, so nothing survives.
    sel->clear();
    *dense = false;
  } else {
    RefineSel(dense, n, sel, [&](int64_t i) {
      return EvalCmp(ca.op, ColumnValueAt(a, i), ColumnValueAt(b, i)) ==
             Tri::kTrue;
    });
  }
}

void ApplyColConst(const CAtom& ca, const std::vector<Column>& cols,
                   bool* dense, int64_t n, std::vector<int32_t>* sel) {
  const Column& c = cols[static_cast<size_t>(ca.lhs_slot)];
  const Value& k = ca.constant;  // never NULL (compiled to kNever instead)
  auto is_null = [&](int64_t i) {
    return c.nulls[static_cast<size_t>(i)] != 0;
  };
  if (c.kind == ColumnKind::kInt64 && k.type() == ValueType::kInt) {
    // Branchless int64-vs-constant row test; see ApplyColCol.
    const int64_t* x = c.i64.data();
    const uint8_t* nc = c.nulls.data();
    int64_t kv = k.AsInt();
    auto nn = [&](int64_t i) { return static_cast<unsigned>(nc[i] == 0); };
    switch (ca.op) {
      case CmpOp::kEq:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (x[i] == kv); });
        break;
      case CmpOp::kNe:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (x[i] != kv); });
        break;
      case CmpOp::kLt:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (x[i] < kv); });
        break;
      case CmpOp::kLe:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (x[i] <= kv); });
        break;
      case CmpOp::kGt:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (x[i] > kv); });
        break;
      case CmpOp::kGe:
        RefineSel(dense, n, sel,
                  [&](int64_t i) { return nn(i) & (x[i] >= kv); });
        break;
    }
  } else if (IsNumericKind(c.kind) && k.IsNumeric()) {
    double kv = k.AsDouble();
    RefineCompare(ca.op, dense, n, sel, is_null, [&](int64_t i) {
      return CompareDoubles(c.NumAt(i), kv);
    });
  } else if (c.kind == ColumnKind::kString && k.type() == ValueType::kString) {
    const std::string& ks = k.AsString();
    RefineCompare(ca.op, dense, n, sel, is_null, [&](int64_t i) {
      int r = c.str[static_cast<size_t>(i)]->compare(ks);
      return r < 0 ? -1 : (r > 0 ? 1 : 0);
    });
  } else if (c.kind != ColumnKind::kMixed) {
    sel->clear();
    *dense = false;
  } else {
    RefineSel(dense, n, sel, [&](int64_t i) {
      return EvalCmp(ca.op, *c.vals[static_cast<size_t>(i)], k) == Tri::kTrue;
    });
  }
}

// --- Binary key encoding helpers -----------------------------------------

inline void PutRaw(std::string* out, const void* p, size_t n) {
  out->append(static_cast<const char*>(p), n);
}

inline void PutI64(std::string* out, int64_t v) {
  out->push_back('i');
  PutRaw(out, &v, sizeof v);
}

inline void PutDoubleKey(std::string* out, double d) {
  int64_t i = 0;
  if (ExactInt64(d, &i)) {  // integral within 2^53: same class as the int
    PutI64(out, i);
    return;
  }
  if (std::isnan(d)) {  // one class for every NaN payload
    out->push_back('N');
    return;
  }
  out->push_back('d');
  PutRaw(out, &d, sizeof d);
}

inline void PutStringKey(std::string* out, const std::string& s) {
  out->push_back('s');
  uint32_t len = static_cast<uint32_t>(s.size());
  PutRaw(out, &len, sizeof len);
  out->append(s);
}

// False on NULL.
inline bool PutValueKey(std::string* out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      PutI64(out, v.AsInt());
      return true;
    case ValueType::kDouble:
      PutDoubleKey(out, v.AsDouble());
      return true;
    case ValueType::kString:
      PutStringKey(out, v.AsString());
      return true;
  }
  return false;
}

// Streaming FNV-1a over exactly the bytes AppendBatchKey would emit for a
// row, without materializing the key string. The bloom-filter probe pass
// uses this to reject rows before any key bytes are copied; the byte
// sequences below must stay in lockstep with PutI64/PutDoubleKey/
// PutStringKey/PutValueKey above.
struct KeyHash {
  uint64_t h = 1469598103934665603ull;
  void Byte(unsigned char c) {
    h ^= c;
    h *= 1099511628211ull;
  }
  void Bytes(const void* p, size_t n) {
    const unsigned char* s = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) Byte(s[i]);
  }
};

inline void HashI64(KeyHash* kh, int64_t v) {
  kh->Byte('i');
  kh->Bytes(&v, sizeof v);
}

inline void HashDoubleKey(KeyHash* kh, double d) {
  int64_t i = 0;
  if (ExactInt64(d, &i)) {
    HashI64(kh, i);
    return;
  }
  if (std::isnan(d)) {
    kh->Byte('N');
    return;
  }
  kh->Byte('d');
  kh->Bytes(&d, sizeof d);
}

inline void HashStringKey(KeyHash* kh, const std::string& s) {
  kh->Byte('s');
  uint32_t len = static_cast<uint32_t>(s.size());
  kh->Bytes(&len, sizeof len);
  kh->Bytes(s.data(), s.size());
}

// False on NULL.
inline bool HashValueKey(KeyHash* kh, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      HashI64(kh, v.AsInt());
      return true;
    case ValueType::kDouble:
      HashDoubleKey(kh, v.AsDouble());
      return true;
    case ValueType::kString:
      HashStringKey(kh, v.AsString());
      return true;
  }
  return false;
}

// HashKeyBytes of the exact AppendBatchKey encoding of row i, computed
// without building the string. False on a NULL key component.
bool HashBatchKeyRow(const std::vector<Column>& key_cols, int64_t i,
                     uint64_t* out) {
  KeyHash kh;
  for (const Column& c : key_cols) {
    if (c.IsNull(i)) return false;
    size_t k = static_cast<size_t>(i);
    switch (c.kind) {
      case ColumnKind::kInt64:
        HashI64(&kh, c.i64[k]);
        break;
      case ColumnKind::kDouble:
        HashDoubleKey(&kh, c.f64[k]);
        break;
      case ColumnKind::kString:
        HashStringKey(&kh, *c.str[k]);
        break;
      case ColumnKind::kMixed:
        if (!HashValueKey(&kh, *c.vals[k])) return false;
        break;
    }
  }
  *out = kh.h;
  return true;
}

}  // namespace

CompiledFilter CompileFilter(const Predicate& p, const Schema& s) {
  CompiledFilter f;
  for (const Atom& atom : p.atoms()) {
    CAtom ca;
    ca.atom = &atom;
    // Classify one side: a resolvable plain column becomes a slot; a
    // constant (or an unsubstituted parameter, which evaluates to NULL, or
    // an UNresolvable column, which Scalar::Eval also maps to NULL) becomes
    // a captured Value; arithmetic terms punt to the row fallback.
    enum class Side { kCol, kConst, kOther };
    auto classify = [&](const ScalarPtr& sc, int* col, Value* cv) {
      if (sc == nullptr) return Side::kOther;
      switch (sc->kind()) {
        case Scalar::Kind::kColumn:
          *col = s.Find(sc->rel(), sc->name());
          if (*col >= 0) return Side::kCol;
          *cv = Value::Null();
          return Side::kConst;
        case Scalar::Kind::kConst:
          *cv = sc->constant();
          return Side::kConst;
        case Scalar::Kind::kParam:
          *cv = Value::Null();
          return Side::kConst;
        case Scalar::Kind::kArith:
          return Side::kOther;
      }
      return Side::kOther;
    };

    if (atom.kind != Atom::Kind::kCompare) {
      int col = -1;
      Value cv;
      Side side = classify(atom.lhs, &col, &cv);
      if (side == Side::kCol) {
        ca.kind = atom.kind == Atom::Kind::kIsNull ? CAtom::Kind::kIsNull
                                                   : CAtom::Kind::kIsNotNull;
        ca.lhs_slot = SlotFor(&f.cols, col);
        f.atoms.push_back(ca);
      } else if (side == Side::kConst) {
        // Statically decidable: `k IS NULL` is TRUE iff k is NULL.
        bool truth = atom.kind == Atom::Kind::kIsNull ? cv.is_null()
                                                      : !cv.is_null();
        if (!truth) {
          ca.kind = CAtom::Kind::kNever;
          f.atoms.push_back(ca);
        }  // statically TRUE atoms drop out of the conjunction
      } else {
        ca.kind = CAtom::Kind::kFallback;
        f.has_fallback = true;
        f.atoms.push_back(ca);
      }
      continue;
    }

    int lcol = -1, rcol = -1;
    Value lval, rval;
    Side ls = classify(atom.lhs, &lcol, &lval);
    Side rs = classify(atom.rhs, &rcol, &rval);
    if (ls == Side::kOther || rs == Side::kOther) {
      ca.kind = CAtom::Kind::kFallback;
      f.has_fallback = true;
    } else if (ls == Side::kCol && rs == Side::kCol) {
      ca.kind = CAtom::Kind::kCmpColCol;
      ca.op = atom.op;
      ca.lhs_slot = SlotFor(&f.cols, lcol);
      ca.rhs_slot = SlotFor(&f.cols, rcol);
    } else if (ls == Side::kCol) {  // col <op> const
      if (rval.is_null()) {
        ca.kind = CAtom::Kind::kNever;  // cmp with NULL is never TRUE
      } else {
        ca.kind = CAtom::Kind::kCmpColConst;
        ca.op = atom.op;
        ca.lhs_slot = SlotFor(&f.cols, lcol);
        ca.constant = std::move(rval);
      }
    } else if (rs == Side::kCol) {  // const <op> col, mirrored
      if (lval.is_null()) {
        ca.kind = CAtom::Kind::kNever;
      } else {
        ca.kind = CAtom::Kind::kCmpColConst;
        ca.op = MirrorOp(atom.op);
        ca.lhs_slot = SlotFor(&f.cols, rcol);
        ca.constant = std::move(lval);
      }
    } else {  // const <op> const: decide now
      if (EvalCmp(atom.op, lval, rval) == Tri::kTrue) continue;  // drop
      ca.kind = CAtom::Kind::kNever;
    }
    f.atoms.push_back(ca);
  }
  return f;
}

void ApplyFilter(const CompiledFilter& f, const Relation& r, int64_t begin,
                 int64_t n, const std::vector<Column>& cols,
                 std::vector<int32_t>* sel) {
  // Selection offsets are batch-relative int32_t: callers pass one batch
  // (kBatchRows) or one morsel at a time, never a whole relation.
  assert(n <= std::numeric_limits<int32_t>::max());
  bool dense = true;
  sel->clear();
  for (const CAtom& ca : f.atoms) {
    if (!dense && sel->empty()) return;
    switch (ca.kind) {
      case CAtom::Kind::kNever:
        sel->clear();
        return;
      case CAtom::Kind::kIsNull: {
        const Column& c = cols[static_cast<size_t>(ca.lhs_slot)];
        RefineSel(&dense, n, sel, [&](int64_t i) { return c.IsNull(i); });
        break;
      }
      case CAtom::Kind::kIsNotNull: {
        const Column& c = cols[static_cast<size_t>(ca.lhs_slot)];
        RefineSel(&dense, n, sel, [&](int64_t i) { return !c.IsNull(i); });
        break;
      }
      case CAtom::Kind::kCmpColCol:
        ApplyColCol(ca, cols, &dense, n, sel);
        break;
      case CAtom::Kind::kCmpColConst:
        ApplyColConst(ca, cols, &dense, n, sel);
        break;
      case CAtom::Kind::kFallback: {
        const Atom* atom = ca.atom;
        const Schema& s = r.schema();
        RefineSel(&dense, n, sel, [&](int64_t i) {
          return atom->Eval(r.row(begin + i), s) == Tri::kTrue;
        });
        break;
      }
    }
  }
  if (dense) {
    // Every atom folded to statically TRUE (or the predicate is empty).
    sel->resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) (*sel)[static_cast<size_t>(i)] =
        static_cast<int32_t>(i);
  }
}

bool AppendBatchKey(const std::vector<Column>& key_cols, int64_t i,
                    std::string* out) {
  for (const Column& c : key_cols) {
    if (c.IsNull(i)) return false;
    size_t k = static_cast<size_t>(i);
    switch (c.kind) {
      case ColumnKind::kInt64:
        PutI64(out, c.i64[k]);
        break;
      case ColumnKind::kDouble:
        PutDoubleKey(out, c.f64[k]);
        break;
      case ColumnKind::kString:
        PutStringKey(out, *c.str[k]);
        break;
      case ColumnKind::kMixed:
        if (!PutValueKey(out, *c.vals[k])) return false;
        break;
    }
  }
  return true;
}

void AppendBatchGroupKey(const std::vector<Column>& key_cols,
                         const std::vector<std::vector<RowId>>& vids,
                         int64_t i, std::string* out) {
  size_t k = static_cast<size_t>(i);
  for (const Column& c : key_cols) {
    if (c.IsNull(i)) {  // NULL is a real group key under identity grouping
      out->push_back('n');
      continue;
    }
    switch (c.kind) {
      case ColumnKind::kInt64:
        PutI64(out, c.i64[k]);
        break;
      case ColumnKind::kDouble:
        PutDoubleKey(out, c.f64[k]);
        break;
      case ColumnKind::kString:
        PutStringKey(out, *c.str[k]);
        break;
      case ColumnKind::kMixed:
        if (!PutValueKey(out, *c.vals[k])) out->push_back('n');
        break;
    }
  }
  out->push_back('#');
  for (const std::vector<RowId>& v : vids) {
    RowId id = v[k];
    PutRaw(out, &id, sizeof id);
  }
}

StatusOr<Relation> ColumnarSelect(const Relation& r, const Predicate& p,
                                  const ExecContext& ctx) {
  CompiledFilter f = CompileFilter(p, r.schema());
  Relation out(r.schema(), r.vschema());
  OperatorStats* st = ctx.stats;
  if (st != nullptr) {
    st->columnar = true;
    st->rows_in += static_cast<uint64_t>(r.NumRows());
  }
  // One pass: gather + filter + copy per batch, while the batch's tuples
  // are still cache-hot. The output is reserved once at the input row
  // count (the tight upper bound): vector<Tuple> regrowth relocates fat
  // inline-payload tuples element-wise, and a deferred second copy pass
  // would re-stream the whole input from DRAM. Untouched reserve slack is
  // virtual address space only, the same worst case as push_back growth.
  out.Reserve(r.NumRows());
  std::vector<Column> cols;
  std::vector<int32_t> sel;
  for (int64_t begin = 0; begin < r.NumRows(); begin += kBatchRows) {
    int64_t end = std::min<int64_t>(begin + kBatchRows, r.NumRows());
    GSOPT_RETURN_IF_ERROR(ctx.Tick("select"));
    GatherColumnsInto(r, f.cols, begin, end, &cols);
    ApplyFilter(f, r, begin, end - begin, cols, &sel);
    if (st != nullptr) {
      ++st->batches;
      // The reference loop evaluates the predicate once per input row.
      st->residual_evals += static_cast<uint64_t>(end - begin);
    }
    for (int32_t i : sel) out.Add(r.row(begin + i));
    if (!sel.empty()) {
      GSOPT_RETURN_IF_ERROR(
          ctx.ChargeRows(static_cast<uint64_t>(sel.size()), "select"));
    }
  }
  if (st != nullptr) st->rows_out += static_cast<uint64_t>(out.NumRows());
  return out;
}

bool ColumnarJoinEligible(const HashPlan& plan, const Schema& sa,
                          const Schema& sb) {
  if (!plan.usable()) return false;
  for (const ScalarPtr& k : plan.a_keys) {
    if (k->kind() != Scalar::Kind::kColumn ||
        sa.Find(k->rel(), k->name()) < 0) {
      return false;
    }
  }
  for (const ScalarPtr& k : plan.b_keys) {
    if (k->kind() != Scalar::Kind::kColumn ||
        sb.Find(k->rel(), k->name()) < 0) {
      return false;
    }
  }
  return true;
}

StatusOr<JoinCoreResult> ColumnarJoinCore(const Relation& a, const Relation& b,
                                          const HashPlan& plan,
                                          const ExecContext& ctx) {
  JoinCoreResult res;
  Schema out_schema = Schema::Concat(a.schema(), b.schema());
  res.out =
      Relation(out_schema, VirtualSchema::Concat(a.vschema(), b.vschema()));
  res.a_matched.assign(static_cast<size_t>(a.NumRows()), 0);
  res.b_matched.assign(static_cast<size_t>(b.NumRows()), 0);
  OperatorStats* st = ctx.stats;
  if (st != nullptr) {
    st->hash_path = true;
    st->columnar = true;
  }

  std::vector<int> a_cols, b_cols;
  for (const ScalarPtr& k : plan.a_keys) {
    a_cols.push_back(a.schema().Find(k->rel(), k->name()));
  }
  for (const ScalarPtr& k : plan.b_keys) {
    b_cols.push_back(b.schema().Find(k->rel(), k->name()));
  }

  uint64_t null_skips_before = st != nullptr ? st->null_key_skips : 0;
  OpMemory mem(ctx);
  // Build-side bloom filter for sideways information passing: charged on
  // its own reservation so a failed charge (cap or injected alloc fault)
  // leaves it disabled without failing the join.
  BloomFilter bloom;
  OpMemory bloom_mem(ctx);
  if (ctx.Bloom(b.NumRows(), a.NumRows()) &&
      bloom_mem.Charge(BloomFilter::BytesFor(b.NumRows()), "join").ok()) {
    bloom.Init(b.NumRows());
  }
  std::vector<KeyArena> arenas(1);
  std::vector<JoinHashTable::Entry> entries;
  std::string key;
  std::vector<Column> kcols;

  // Build over b, one key-column gather and one memory charge per batch.
  // The charge total is byte-identical to the reference path's per-row
  // charges (same monotone sum), so the memory cap trips at the same
  // budget state; only the trip granularity is coarser.
  for (int64_t begin = 0; begin < b.NumRows(); begin += kBatchRows) {
    int64_t end = std::min<int64_t>(begin + kBatchRows, b.NumRows());
    GSOPT_RETURN_IF_ERROR(ctx.Tick("join"));
    GatherColumnsInto(b, b_cols, begin, end, &kcols);
    if (st != nullptr) ++st->batches;
    uint64_t batch_bytes = 0;
    for (int64_t i = 0; i < end - begin; ++i) {
      key.clear();
      if (!AppendBatchKey(kcols, i, &key)) {
        if (st != nullptr) ++st->null_key_skips;
        continue;
      }
      uint64_t h = HashKeyBytes(key);
      if (bloom.enabled()) bloom.Insert(h);
      uint64_t off = arenas[0].Append(key);
      entries.push_back(JoinHashTable::Entry{
          h, off, static_cast<uint32_t>(key.size()), 0, begin + i, -1});
      batch_bytes +=
          ApproxTupleBytes(b.row(begin + i)) + 64 + key.size();
    }
    Status cs = mem.Charge(batch_bytes, "join");
    if (!cs.ok()) {
      // Build state does not fit (or an alloc fault fired): degrade to the
      // out-of-core grace join exactly like the reference kernel.
      if (!ctx.SpillEnabled()) return cs;
      mem.Release();
      entries.clear();
      if (st != nullptr) st->null_key_skips = null_skips_before;
      auto spilled = SpillJoinCore(a, b, plan, ctx);
      if (spilled.ok() && st != nullptr) {
        st->rows_in += static_cast<uint64_t>(a.NumRows()) +
                       static_cast<uint64_t>(b.NumRows());
      }
      return spilled;
    }
  }

  uint64_t built = entries.size();
  JoinHashTable table;
  table.Build(std::move(entries), arenas);
  if (st != nullptr) {
    st->build_rows += built;
    st->max_bucket = std::max<uint64_t>(st->max_bucket, table.max_chain());
  }
  constexpr uint64_t kMaxReserve = 1u << 20;
  uint64_t mean_bucket =
      built == 0 ? 0
                 : std::max<uint64_t>(
                       1, built / std::max<uint64_t>(1, table.distinct_keys()));
  if (built > 0 && !bloom.enabled()) {
    // Same clamped mean-bucket output reservation as the reference path.
    // With the filter active this estimate over-sizes badly (most probes
    // are rejected before they can match), so the reservation moves into
    // the probe loop below and is scaled per batch by the filter pass
    // count.
    uint64_t expected = static_cast<uint64_t>(a.NumRows()) * mean_bucket;
    res.out.Reserve(static_cast<int64_t>(std::min(expected, kMaxReserve)));
  }

  Predicate residual(plan.residual);
  bool has_residual = !plan.residual.empty();
  // With no fault injector and no budget, Tick and ChargeRows are
  // statically no-ops; hoisting that check out of the duplicate-chain walk
  // keeps the per-pair loop free of dead policy probes.
  const bool idle = ctx.fault == nullptr && ctx.budget == nullptr;
  std::vector<Column> pcols;
  // Walks entry e's duplicate chain, emitting matches for probe row gi.
  auto walk_chain = [&](int64_t gi, int32_t e) -> Status {
    for (; e >= 0; e = table.entry(e).next) {
      // Tick inside the duplicate chain, like the reference path: a
      // skewed key must not run deadline-blind. (Skipped when no policy
      // is attached -- both calls are no-ops then.)
      if (!idle) GSOPT_RETURN_IF_ERROR(ctx.Tick("join"));
      int64_t j = table.entry(e).row;
      // Duplicate chains jump across the build side; start pulling the
      // next match's row while this one is being copied out.
      int32_t e_next = table.entry(e).next;
      if (e_next >= 0) Prefetch(&b.row(table.entry(e_next).row));
      if (st != nullptr) ++st->residual_evals;
      if (!has_residual) {
        // No residual: build the output row in place, skipping the
        // intermediate concat tuple entirely.
        res.a_matched[static_cast<size_t>(gi)] = 1;
        res.b_matched[static_cast<size_t>(j)] = 1;
        res.out.AddConcat(a.row(gi), b.row(j));
        if (!idle) GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "join"));
        continue;
      }
      Tuple t = Tuple::Concat(a.row(gi), b.row(j));
      if (residual.Satisfied(t, out_schema)) {
        res.a_matched[static_cast<size_t>(gi)] = 1;
        res.b_matched[static_cast<size_t>(j)] = 1;
        res.out.Add(std::move(t));
        GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "join"));
      }
    }
    return Status::OK();
  };
  std::vector<int32_t> bsel;    // batch rows surviving the filter pass
  std::vector<uint64_t> bhash;  // their key hashes, reused by Find
  uint64_t bchecks = 0, brejects = 0, bfp = 0;
  bool bloom_reserved = false;
  // Cleared at the first-batch calibration point when the observed reject
  // rate says the filter pass costs more than it saves (kAuto only).
  bool bloom_live = bloom.enabled();
  for (int64_t begin = 0; begin < a.NumRows(); begin += kBatchRows) {
    int64_t end = std::min<int64_t>(begin + kBatchRows, a.NumRows());
    GSOPT_RETURN_IF_ERROR(ctx.Tick("join"));
    GatherColumnsInto(a, a_cols, begin, end, &pcols);
    if (st != nullptr) ++st->batches;
    if (bloom_live) {
      // Filter pass: a streaming hash plus one filter probe per row
      // refines the batch's selection before any key bytes are
      // materialized -- rejected rows never build their key string.
      bsel.clear();
      bhash.clear();
      uint64_t batch_checks = 0;
      for (int64_t i = 0; i < end - begin; ++i) {
        uint64_t h = 0;
        if (!HashBatchKeyRow(pcols, i, &h)) {
          if (st != nullptr) ++st->null_key_skips;
          continue;
        }
        ++batch_checks;
        if (!bloom.MayContain(h)) {
          ++brejects;
          continue;
        }
        bsel.push_back(static_cast<int32_t>(i));
        bhash.push_back(h);
      }
      bchecks += batch_checks;
      if (st != nullptr) st->probe_rows += batch_checks;
      // Reserve once, from the first batch's observed pass rate
      // extrapolated over the whole probe side. Re-reserving per batch
      // would reallocate the fat-tuple vector every batch (reserve() to
      // an exact growing target defeats geometric growth); after this
      // one estimate, ordinary push_back growth takes over.
      // Calibration: once enough probes have been checked, disarm the
      // filter for the remaining batches when it is not rejecting enough
      // of them to pay for itself.
      if (ctx.bloom == BloomMode::kAuto &&
          bchecks >= kBloomCalibrateChecks &&
          !BloomStillWinning(bchecks, brejects)) {
        bloom_live = false;
      }
      if (!bloom_reserved && bchecks > 0 && mean_bucket > 0) {
        bloom_reserved = true;
        // Disarmed joins get the full off-path estimate; engaged ones
        // scale it by the observed pass rate plus a 1/8 pad (an
        // exact-fit reserve that undershoots by one row forces a
        // whole-vector regrowth at the very end).
        uint64_t pass =
            bloom_live ? bchecks - brejects + bchecks / 8 : bchecks;
        uint64_t expected = static_cast<uint64_t>(a.NumRows()) *
                            mean_bucket * std::min(pass, bchecks) / bchecks;
        res.out.Reserve(
            static_cast<int64_t>(std::min(expected, kMaxReserve)));
      } else if (bloom_reserved && !bloom_live && mean_bucket > 0) {
        // Just disarmed after the sized-while-engaged reserve: regrow
        // once to the off-path estimate instead of paying geometric
        // regrowth on the now-unfiltered output.
        uint64_t expected =
            static_cast<uint64_t>(a.NumRows()) * mean_bucket;
        res.out.Reserve(
            static_cast<int64_t>(std::min(expected, kMaxReserve)));
      }
      for (size_t k = 0; k < bsel.size(); ++k) {
        int64_t i = bsel[k];
        key.clear();
        AppendBatchKey(pcols, i, &key);  // non-NULL: hashed above
        int32_t e = table.Find(bhash[k], key.data(),
                               static_cast<uint32_t>(key.size()), arenas);
        if (e < 0) ++bfp;
        GSOPT_RETURN_IF_ERROR(walk_chain(begin + i, e));
      }
      continue;
    }
    for (int64_t i = 0; i < end - begin; ++i) {
      key.clear();
      if (!AppendBatchKey(pcols, i, &key)) {
        if (st != nullptr) ++st->null_key_skips;
        continue;
      }
      if (st != nullptr) ++st->probe_rows;
      int32_t e = table.Find(HashKeyBytes(key), key.data(),
                             static_cast<uint32_t>(key.size()), arenas);
      GSOPT_RETURN_IF_ERROR(walk_chain(begin + i, e));
    }
  }
  if (st != nullptr && bchecks > 0) {
    st->bloom = true;
    st->bloom_checks += bchecks;
    st->bloom_rejects += brejects;
    st->bloom_false_positives += bfp;
  }
  if (st != nullptr) {
    st->rows_in += static_cast<uint64_t>(a.NumRows()) +
                   static_cast<uint64_t>(b.NumRows());
  }
  return res;
}

}  // namespace gsopt::exec::internal
