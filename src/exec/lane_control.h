// Exec-internal: per-parallel-region error state shared by the
// morsel-parallel kernels (parallel.cc, aggregate.cc). The pool itself
// never sees Status; kernels own cancellation. A failing lane records its
// Status and raises the cancel flag; other lanes observe it at morsel
// granularity and drain their remaining ranges without work. After the
// fan-in, First() reports the lowest-lane error so the surfaced Status is
// deterministic for a given set of failures.
#ifndef GSOPT_EXEC_LANE_CONTROL_H_
#define GSOPT_EXEC_LANE_CONTROL_H_

#include <atomic>
#include <utility>
#include <vector>

#include "base/status.h"

namespace gsopt::exec::internal {

struct LaneControl {
  explicit LaneControl(int lanes) : status(static_cast<size_t>(lanes)) {}

  bool cancelled() const { return cancel.load(std::memory_order_relaxed); }
  void Fail(int lane, Status s) {
    status[static_cast<size_t>(lane)] = std::move(s);
    cancel.store(true, std::memory_order_relaxed);
  }
  Status First() const {
    for (const Status& s : status) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  std::vector<Status> status;
  std::atomic<bool> cancel{false};
};

}  // namespace gsopt::exec::internal

#endif  // GSOPT_EXEC_LANE_CONTROL_H_
