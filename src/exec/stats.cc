#include "exec/stats.h"

#include <algorithm>
#include <cstdio>

namespace gsopt::exec {

void OperatorStats::MergeCountersFrom(const OperatorStats& o) {
  rows_in += o.rows_in;
  rows_out += o.rows_out;
  columnar = columnar || o.columnar;
  batches += o.batches;
  hash_path = hash_path || o.hash_path;
  build_rows += o.build_rows;
  probe_rows += o.probe_rows;
  max_bucket = std::max(max_bucket, o.max_bucket);
  null_key_skips += o.null_key_skips;
  residual_evals += o.residual_evals;
  bloom = bloom || o.bloom;
  bloom_checks += o.bloom_checks;
  bloom_rejects += o.bloom_rejects;
  bloom_false_positives += o.bloom_false_positives;
  merge_path = merge_path || o.merge_path;
  sort_rows += o.sort_rows;
  sort_runs += o.sort_runs;
  sort_merge_passes += o.sort_merge_passes;
  spilled = spilled || o.spilled;
  spill_partitions += o.spill_partitions;
  spill_bytes_written += o.spill_bytes_written;
  spill_bytes_read += o.spill_bytes_read;
  spill_recursions += o.spill_recursions;
  spill_chunks += o.spill_chunks;
}

double OperatorStats::QError() const {
  if (est_rows < 0.0) return 0.0;
  double est = std::max(est_rows, 1.0);
  double act = std::max(static_cast<double>(rows_out), 1.0);
  return std::max(est / act, act / est);
}

std::string OperatorStats::ToString(int indent) const {
  std::string line(static_cast<size_t>(indent) * 2, ' ');
  line += op.empty() ? "op" : op;
  char buf[160];
  std::snprintf(buf, sizeof(buf), " in=%llu out=%llu time=%.3fms",
                static_cast<unsigned long long>(rows_in),
                static_cast<unsigned long long>(rows_out),
                static_cast<double>(wall.count()) / 1e6);
  line += buf;
  if (columnar) {
    std::snprintf(buf, sizeof(buf), " columnar{batches=%llu}",
                  static_cast<unsigned long long>(batches));
    line += buf;
  }
  if (hash_path) {
    std::snprintf(buf, sizeof(buf),
                  " hash{build=%llu probe=%llu maxbucket=%llu nullskip=%llu "
                  "residual=%llu}",
                  static_cast<unsigned long long>(build_rows),
                  static_cast<unsigned long long>(probe_rows),
                  static_cast<unsigned long long>(max_bucket),
                  static_cast<unsigned long long>(null_key_skips),
                  static_cast<unsigned long long>(residual_evals));
    line += buf;
  }
  if (bloom) {
    std::snprintf(buf, sizeof(buf),
                  " bloom{checks=%llu rejects=%llu fp=%llu}",
                  static_cast<unsigned long long>(bloom_checks),
                  static_cast<unsigned long long>(bloom_rejects),
                  static_cast<unsigned long long>(bloom_false_positives));
    line += buf;
  }
  if (merge_path || sort_rows > 0) {
    std::snprintf(buf, sizeof(buf),
                  " sort{%srows=%llu runs=%llu passes=%llu}",
                  merge_path ? "merge " : "",
                  static_cast<unsigned long long>(sort_rows),
                  static_cast<unsigned long long>(sort_runs),
                  static_cast<unsigned long long>(sort_merge_passes));
    line += buf;
  }
  if (spilled) {
    std::snprintf(buf, sizeof(buf),
                  " spill{parts=%llu written=%llu read=%llu recurse=%llu "
                  "chunks=%llu}",
                  static_cast<unsigned long long>(spill_partitions),
                  static_cast<unsigned long long>(spill_bytes_written),
                  static_cast<unsigned long long>(spill_bytes_read),
                  static_cast<unsigned long long>(spill_recursions),
                  static_cast<unsigned long long>(spill_chunks));
    line += buf;
  }
  line += '\n';
  for (const auto& c : children) line += c->ToString(indent + 1);
  return line;
}

void CollectQErrors(const OperatorStats& stats, std::vector<double>* out) {
  double q = stats.QError();
  if (q > 0.0) out->push_back(q);
  for (const auto& c : stats.children) CollectQErrors(*c, out);
}

}  // namespace gsopt::exec
