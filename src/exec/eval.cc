#include "exec/eval.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/check.h"
#include "exec/bloom.h"
#include "exec/columnar.h"
#include "exec/hash_table.h"
#include "exec/join_internal.h"
#include "exec/keys.h"
#include "exec/spill.h"

namespace gsopt::exec {

// Shared join/GS machinery lives in join_internal.h; the parallel kernel
// paths in parallel.cc.
using internal::EncodeKeys;
using internal::GroupIndex;
using internal::GroupPartAllNull;
using internal::HashPlan;
using internal::IndexGroup;
using internal::JoinCoreResult;
using internal::MakeHashPlan;
using internal::MergeJoinCore;
using internal::PadGroupTuple;

namespace {

StatusOr<JoinCoreResult> JoinCore(const Relation& a, const Relation& b,
                                  const Predicate& p, const ExecContext& ctx) {
  HashPlan plan = MakeHashPlan(p, a.schema(), b.schema());
  if (plan.usable() && ctx.MergeJoin()) {
    // Forced or hinted sort-merge path. Residual conjuncts are evaluated
    // per candidate pair exactly like the hash path; rows with NULL keys
    // never match. Without usable equi-keys there is nothing to merge on,
    // so the strategy falls through to the nested-loop path below (hash
    // cannot run either).
    auto merged = MergeJoinCore(a, b, plan, ctx);
    if (merged.ok() && ctx.stats != nullptr) {
      ctx.stats->rows_in += static_cast<uint64_t>(a.NumRows()) +
                            static_cast<uint64_t>(b.NumRows());
    }
    return merged;
  }
  if (ctx.Parallel(std::max(a.NumRows(), b.NumRows()))) {
    return internal::ParallelJoinCore(a, b, plan, p, ctx);
  }
  if (ctx.Columnar(std::max(a.NumRows(), b.NumRows())) &&
      internal::ColumnarJoinEligible(plan, a.schema(), b.schema())) {
    return internal::ColumnarJoinCore(a, b, plan, ctx);
  }

  JoinCoreResult res;
  Schema out_schema = Schema::Concat(a.schema(), b.schema());
  VirtualSchema out_vschema =
      VirtualSchema::Concat(a.vschema(), b.vschema());
  res.out = Relation(out_schema, out_vschema);
  res.a_matched.assign(static_cast<size_t>(a.NumRows()), 0);
  res.b_matched.assign(static_cast<size_t>(b.NumRows()), 0);
  OperatorStats* st = ctx.stats;

  if (plan.usable()) {
    if (st != nullptr) st->hash_path = true;
    // Snapshot counters the build loop below increments, so an aborted
    // build (memory-cap trip handing off to the spill path, which recounts
    // from scratch) does not double-book them.
    uint64_t build_rows_before = st != nullptr ? st->build_rows : 0;
    uint64_t null_skips_before = st != nullptr ? st->null_key_skips : 0;
    OpMemory mem(ctx);
    // Sideways information passing: a build-side bloom filter lets the
    // probe loop below reject non-matching rows without touching the hash
    // table. The filter is charged through its own reservation so a failed
    // charge (memory cap, injected alloc fault) just leaves it disabled --
    // the filter is an optimization, never a correctness dependency.
    BloomFilter bloom;
    OpMemory bloom_mem(ctx);
    if (ctx.Bloom(b.NumRows(), a.NumRows()) &&
        bloom_mem.Charge(BloomFilter::BytesFor(b.NumRows()), "join").ok()) {
      bloom.Init(b.NumRows());
    }
    std::unordered_map<std::string, std::vector<int64_t>> table;
    std::string key;
    uint64_t built = 0;
    for (int64_t j = 0; j < b.NumRows(); ++j) {
      if (EncodeKeys(plan.b_keys, b.row(j), b.schema(), &key)) {
        Status cs = mem.Charge(internal::ApproxTupleBytes(b.row(j)) + 64 +
                                   key.size(),
                               "join");
        if (!cs.ok()) {
          // The build state does not fit (or an alloc fault fired). With
          // spilling enabled, degrade to the out-of-core grace join; the
          // reservation and the partial table unwind right here.
          if (!ctx.SpillEnabled()) return cs;
          mem.Release();
          table.clear();
          if (st != nullptr) {
            st->build_rows = build_rows_before;
            st->null_key_skips = null_skips_before;
          }
          auto spilled = internal::SpillJoinCore(a, b, plan, ctx);
          if (spilled.ok() && st != nullptr) {
            st->rows_in += static_cast<uint64_t>(a.NumRows()) +
                           static_cast<uint64_t>(b.NumRows());
          }
          return spilled;
        }
        std::vector<int64_t>& bucket = table[key];
        bucket.push_back(j);
        ++built;
        if (bloom.enabled()) bloom.Insert(HashKeyBytes(key));
        if (st != nullptr) {
          ++st->build_rows;
          st->max_bucket = std::max<uint64_t>(st->max_bucket, bucket.size());
        }
      } else if (st != nullptr) {
        ++st->null_key_skips;
      }
    }
    // Pre-size the output from build-side bucket statistics: expect each
    // probe row to match the mean bucket (build rows / distinct keys).
    // Clamped like Product's reservation so a pathological estimate cannot
    // commit unbounded memory before the row cap or deadline fires. With
    // the bloom filter active the mean-bucket estimate over-sizes badly
    // (most probes are rejected before they can match), so the reservation
    // is deferred until enough probes have been checked to scale it by the
    // observed filter pass rate.
    constexpr uint64_t kMaxReserve = 1u << 20;
    uint64_t mean_bucket =
        table.empty() ? 0 : std::max<uint64_t>(1, built / table.size());
    if (!table.empty() && !bloom.enabled()) {
      uint64_t expected = static_cast<uint64_t>(a.NumRows()) * mean_bucket;
      res.out.Reserve(
          static_cast<int64_t>(std::min(expected, kMaxReserve)));
    }
    // Filter counters stay in locals through the hot loop (stats may be
    // disabled entirely) and flush to the stats node once at the end.
    // bloom_live starts with the filter and is cleared at the calibration
    // point when the observed reject rate says checking costs more than
    // it saves (kAuto only; kForce stays engaged for test coverage).
    uint64_t bchecks = 0, brejects = 0, bfp = 0;
    bool bloom_live = bloom.enabled();
    Predicate residual(plan.residual);
    for (int64_t i = 0; i < a.NumRows(); ++i) {
      GSOPT_RETURN_IF_ERROR(ctx.Tick("join"));
      if (!EncodeKeys(plan.a_keys, a.row(i), a.schema(), &key)) {
        if (st != nullptr) ++st->null_key_skips;
        continue;
      }
      if (st != nullptr) ++st->probe_rows;
      if (bloom_live && bchecks == kBloomCalibrateChecks) {
        // Calibration point: disarm when the filter is not rejecting
        // enough to win, then size the output. (Checked before this
        // row's filter probe, so a rejected row's `continue` cannot skip
        // past the == comparison.) Disarmed joins get the full off-path
        // estimate; engaged ones scale it by the observed pass rate plus
        // a 1/8 pad -- an exact-fit reserve that undershoots by even one
        // row forces a whole-vector regrowth at the very end, which
        // costs more than the slack.
        if (ctx.bloom == BloomMode::kAuto &&
            !BloomStillWinning(bchecks, brejects)) {
          bloom_live = false;
        }
        uint64_t pass =
            bloom_live ? bchecks - brejects + bchecks / 8 : bchecks;
        uint64_t expected = static_cast<uint64_t>(a.NumRows()) *
                            mean_bucket * std::min(pass, bchecks) / bchecks;
        res.out.Reserve(
            static_cast<int64_t>(std::min(expected, kMaxReserve)));
      }
      if (bloom_live) {
        ++bchecks;
        if (!bloom.MayContain(HashKeyBytes(key))) {
          ++brejects;
          continue;
        }
      }
      auto it = table.find(key);
      if (it == table.end()) {
        if (bloom_live) ++bfp;
        continue;
      }
      for (int64_t j : it->second) {
        // Tick inside the bucket-match loop: a skewed key whose bucket
        // holds most of the build side would otherwise run deadline-blind
        // between probe rows (the nested-loop path ticks per pair).
        GSOPT_RETURN_IF_ERROR(ctx.Tick("join"));
        Tuple t = Tuple::Concat(a.row(i), b.row(j));
        if (st != nullptr) ++st->residual_evals;
        if (residual.Satisfied(t, out_schema)) {
          res.a_matched[static_cast<size_t>(i)] = 1;
          res.b_matched[static_cast<size_t>(j)] = 1;
          res.out.Add(std::move(t));
          GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "join"));
        }
      }
    }
    if (st != nullptr && bchecks > 0) {
      st->bloom = true;
      st->bloom_checks += bchecks;
      st->bloom_rejects += brejects;
      st->bloom_false_positives += bfp;
    }
  } else {
    for (int64_t i = 0; i < a.NumRows(); ++i) {
      for (int64_t j = 0; j < b.NumRows(); ++j) {
        GSOPT_RETURN_IF_ERROR(ctx.Tick("join"));
        Tuple t = Tuple::Concat(a.row(i), b.row(j));
        if (st != nullptr) ++st->residual_evals;
        if (p.Satisfied(t, out_schema)) {
          res.a_matched[static_cast<size_t>(i)] = 1;
          res.b_matched[static_cast<size_t>(j)] = 1;
          res.out.Add(std::move(t));
          GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "join"));
        }
      }
    }
  }
  if (st != nullptr) {
    st->rows_in += static_cast<uint64_t>(a.NumRows()) +
                   static_cast<uint64_t>(b.NumRows());
  }
  return res;
}

// Stats helpers: no-ops (one pointer test) when collection is disabled.
void RecordIn(const ExecContext& ctx, uint64_t n) {
  if (ctx.stats != nullptr) ctx.stats->rows_in += n;
}
void RecordOut(const ExecContext& ctx, const Relation& out) {
  if (ctx.stats != nullptr) {
    ctx.stats->rows_out += static_cast<uint64_t>(out.NumRows());
  }
}

}  // namespace

StatusOr<Relation> Product(const Relation& a, const Relation& b,
                           const ExecContext& ctx) {
  if (ctx.Parallel(a.NumRows()) && b.NumRows() > 0) {
    return internal::ParallelProduct(a, b, ctx);
  }
  Relation out(Schema::Concat(a.schema(), b.schema()),
               VirtualSchema::Concat(a.vschema(), b.vschema()));
  // The exact cross-product cardinality as int*int is signed-overflow UB
  // past ~46k x 46k, and even a correct full-size reservation would commit
  // the whole product's memory before the row cap or deadline can fire.
  // Compute in 64 bits and clamp: past the cap the vector grows normally.
  constexpr uint64_t kMaxReserve = 1u << 20;
  uint64_t total = static_cast<uint64_t>(a.NumRows()) *
                   static_cast<uint64_t>(b.NumRows());
  out.Reserve(static_cast<int64_t>(std::min(total, kMaxReserve)));
  RecordIn(ctx, static_cast<uint64_t>(a.NumRows()) +
                    static_cast<uint64_t>(b.NumRows()));
  for (const Tuple& ta : a.rows()) {
    for (const Tuple& tb : b.rows()) {
      GSOPT_RETURN_IF_ERROR(ctx.Tick("product"));
      out.Add(Tuple::Concat(ta, tb));
      GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "product"));
    }
  }
  RecordOut(ctx, out);
  return out;
}

StatusOr<Relation> Select(const Relation& r, const Predicate& p,
                          const ExecContext& ctx) {
  if (ctx.Parallel(r.NumRows())) {
    return internal::ParallelSelect(r, p, ctx);
  }
  if (ctx.Columnar(r.NumRows())) {
    return internal::ColumnarSelect(r, p, ctx);
  }
  Relation out(r.schema(), r.vschema());
  RecordIn(ctx, static_cast<uint64_t>(r.NumRows()));
  for (const Tuple& t : r.rows()) {
    GSOPT_RETURN_IF_ERROR(ctx.Tick("select"));
    if (ctx.stats != nullptr) ++ctx.stats->residual_evals;
    if (p.Satisfied(t, r.schema())) {
      out.Add(t);
      GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "select"));
    }
  }
  RecordOut(ctx, out);
  return out;
}

StatusOr<Relation> Project(const Relation& r,
                           const std::vector<Attribute>& attrs,
                           const ExecContext& ctx) {
  Schema schema;
  std::vector<int> src_idx;
  for (const Attribute& a : attrs) {
    int i = r.schema().Find(a.rel, a.name);
    if (i < 0) {
      return Status::InvalidArgument("project: missing attribute " +
                                     a.Qualified());
    }
    schema.Append(a);
    src_idx.push_back(i);
  }
  // Keep virtual attributes only for base relations all of whose columns
  // survive the projection (otherwise row ids would claim more provenance
  // than the tuple carries).
  std::set<std::string> kept_rels;
  for (const Attribute& a : attrs) kept_rels.insert(a.rel);
  VirtualSchema vschema;
  std::vector<int> vid_idx;
  for (int i = 0; i < r.vschema().size(); ++i) {
    if (kept_rels.count(r.vschema().rel(i))) {
      vschema.Append(r.vschema().rel(i));
      vid_idx.push_back(i);
    }
  }
  Relation out(schema, vschema);
  out.Reserve(r.NumRows());
  RecordIn(ctx, r.NumRows());
  for (const Tuple& t : r.rows()) {
    Tuple nt;
    nt.values.reserve(src_idx.size());
    for (int i : src_idx) nt.values.push_back(t.values[i]);
    nt.vids.reserve(vid_idx.size());
    for (int i : vid_idx) nt.vids.push_back(t.vids[i]);
    out.Add(std::move(nt));
    GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "project"));
  }
  RecordOut(ctx, out);
  return out;
}

StatusOr<Relation> ProjectAs(const Relation& r,
                             const std::vector<Attribute>& src,
                             const std::vector<Attribute>& out,
                             const ExecContext& ctx) {
  if (src.size() != out.size()) {
    return Status::InvalidArgument(
        "project-as: source and output column counts differ");
  }
  Schema schema;
  std::vector<int> src_idx;
  for (size_t i = 0; i < src.size(); ++i) {
    int j = r.schema().Find(src[i].rel, src[i].name);
    if (j < 0) {
      return Status::InvalidArgument("project-as: missing attribute " +
                                     src[i].Qualified());
    }
    schema.Append(out[i]);
    src_idx.push_back(j);
  }
  Relation result(schema, VirtualSchema());
  result.Reserve(r.NumRows());
  RecordIn(ctx, r.NumRows());
  for (const Tuple& t : r.rows()) {
    Tuple nt;
    nt.values.reserve(src_idx.size());
    for (int j : src_idx) nt.values.push_back(t.values[j]);
    result.Add(std::move(nt));
    GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "project-as"));
  }
  RecordOut(ctx, result);
  return result;
}

StatusOr<Relation> InnerJoin(const Relation& a, const Relation& b,
                             const Predicate& p, const ExecContext& ctx) {
  GSOPT_ASSIGN_OR_RETURN(JoinCoreResult core, JoinCore(a, b, p, ctx));
  RecordOut(ctx, core.out);
  return std::move(core.out);
}

StatusOr<Relation> LeftOuterJoin(const Relation& a, const Relation& b,
                                 const Predicate& p, const ExecContext& ctx) {
  GSOPT_ASSIGN_OR_RETURN(JoinCoreResult core, JoinCore(a, b, p, ctx));
  Tuple b_null;
  b_null.values.assign(b.schema().size(), Value::Null());
  b_null.vids.assign(b.vschema().size(), kNullRowId);
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (!core.a_matched[static_cast<size_t>(i)]) {
      core.out.Add(Tuple::Concat(a.row(i), b_null));
      GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "left-outer-join"));
    }
  }
  RecordOut(ctx, core.out);
  return std::move(core.out);
}

StatusOr<Relation> RightOuterJoin(const Relation& a, const Relation& b,
                                  const Predicate& p, const ExecContext& ctx) {
  GSOPT_ASSIGN_OR_RETURN(JoinCoreResult core, JoinCore(a, b, p, ctx));
  Tuple a_null;
  a_null.values.assign(a.schema().size(), Value::Null());
  a_null.vids.assign(a.vschema().size(), kNullRowId);
  for (int64_t j = 0; j < b.NumRows(); ++j) {
    if (!core.b_matched[static_cast<size_t>(j)]) {
      core.out.Add(Tuple::Concat(a_null, b.row(j)));
      GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "right-outer-join"));
    }
  }
  RecordOut(ctx, core.out);
  return std::move(core.out);
}

StatusOr<Relation> FullOuterJoin(const Relation& a, const Relation& b,
                                 const Predicate& p, const ExecContext& ctx) {
  GSOPT_ASSIGN_OR_RETURN(JoinCoreResult core, JoinCore(a, b, p, ctx));
  Tuple b_null;
  b_null.values.assign(b.schema().size(), Value::Null());
  b_null.vids.assign(b.vschema().size(), kNullRowId);
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (!core.a_matched[static_cast<size_t>(i)]) {
      core.out.Add(Tuple::Concat(a.row(i), b_null));
      GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "full-outer-join"));
    }
  }
  Tuple a_null;
  a_null.values.assign(a.schema().size(), Value::Null());
  a_null.vids.assign(a.vschema().size(), kNullRowId);
  for (int64_t j = 0; j < b.NumRows(); ++j) {
    if (!core.b_matched[static_cast<size_t>(j)]) {
      core.out.Add(Tuple::Concat(a_null, b.row(j)));
      GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "full-outer-join"));
    }
  }
  RecordOut(ctx, core.out);
  return std::move(core.out);
}

StatusOr<Relation> AntiJoin(const Relation& a, const Relation& b,
                            const Predicate& p, const ExecContext& ctx) {
  GSOPT_ASSIGN_OR_RETURN(JoinCoreResult core, JoinCore(a, b, p, ctx));
  Relation out(a.schema(), a.vschema());
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (!core.a_matched[static_cast<size_t>(i)]) {
      out.Add(a.row(i));
      GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "anti-join"));
    }
  }
  RecordOut(ctx, out);
  return out;
}

StatusOr<Relation> SemiJoin(const Relation& a, const Relation& b,
                            const Predicate& p, const ExecContext& ctx) {
  GSOPT_ASSIGN_OR_RETURN(JoinCoreResult core, JoinCore(a, b, p, ctx));
  Relation out(a.schema(), a.vschema());
  for (int64_t i = 0; i < a.NumRows(); ++i) {
    if (core.a_matched[static_cast<size_t>(i)]) {
      out.Add(a.row(i));
      GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "semi-join"));
    }
  }
  RecordOut(ctx, out);
  return out;
}

StatusOr<Relation> OuterUnion(const Relation& a, const Relation& b,
                              const ExecContext& ctx) {
  Schema schema = a.schema();
  std::vector<int> b_value_map(b.schema().size(), -1);
  for (int i = 0; i < b.schema().size(); ++i) {
    const Attribute& attr = b.schema().attr(i);
    int j = schema.Find(attr.rel, attr.name);
    if (j < 0) {
      schema.Append(attr);
      j = schema.size() - 1;
    }
    b_value_map[i] = j;
  }
  VirtualSchema vschema = a.vschema();
  std::vector<int> b_vid_map(b.vschema().size(), -1);
  for (int i = 0; i < b.vschema().size(); ++i) {
    int j = vschema.Find(b.vschema().rel(i));
    if (j < 0) {
      vschema.Append(b.vschema().rel(i));
      j = vschema.size() - 1;
    }
    b_vid_map[i] = j;
  }
  Relation out(schema, vschema);
  out.Reserve(a.NumRows() + b.NumRows());
  RecordIn(ctx, static_cast<uint64_t>(a.NumRows()) +
                    static_cast<uint64_t>(b.NumRows()));
  for (const Tuple& t : a.rows()) {
    Tuple nt;
    nt.values = t.values;
    nt.values.resize(schema.size(), Value::Null());
    nt.vids = t.vids;
    nt.vids.resize(vschema.size(), kNullRowId);
    out.Add(std::move(nt));
    GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "outer-union"));
  }
  for (const Tuple& t : b.rows()) {
    Tuple nt;
    nt.values.assign(schema.size(), Value::Null());
    nt.vids.assign(vschema.size(), kNullRowId);
    for (size_t i = 0; i < t.values.size(); ++i) {
      nt.values[b_value_map[i]] = t.values[i];
    }
    for (size_t i = 0; i < t.vids.size(); ++i) {
      nt.vids[b_vid_map[i]] = t.vids[i];
    }
    out.Add(std::move(nt));
    GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "outer-union"));
  }
  RecordOut(ctx, out);
  return out;
}

StatusOr<Relation> GeneralizedSelection(
    const Relation& r, const Predicate& p,
    const std::vector<PreservedGroup>& groups, const ExecContext& ctx) {
  // Definition 2.1 states pairwise-disjoint preserved relations, but the
  // resurrection pass below handles every group independently, so
  // overlapping groups execute fine -- and the Theorem-1 ride-along
  // extension legitimately produces them (a relation joined above an edge
  // by an always-evaluable predicate rides with both sides).

  // The internal selection pass shares the budget and executor but not the
  // stats node: GS accounts for its own input/output exactly once and
  // counts the pass's predicate evaluations itself.
  ExecContext select_ctx{ctx.budget, nullptr,   ctx.executor, ctx.fault,
                         ctx.spill,  ctx.batch, ctx.bloom,    ctx.join};
  GSOPT_ASSIGN_OR_RETURN(Relation selected, Select(r, p, select_ctx));
  RecordIn(ctx, static_cast<uint64_t>(r.NumRows()));
  if (ctx.stats != nullptr) {
    ctx.stats->residual_evals += static_cast<uint64_t>(r.NumRows());
  }
  Relation out(r.schema(), r.vschema());
  for (const Tuple& t : selected.rows()) out.Add(t);

  for (const PreservedGroup& group : groups) {
    GroupIndex gi = IndexGroup(group, r.schema(), r.vschema());
    std::unordered_set<std::string> surviving;
    for (const Tuple& t : selected.rows()) {
      surviving.insert(EncodeTupleKey(t, gi.value_idx, gi.vid_idx));
    }
    if (ctx.Parallel(r.NumRows())) {
      GSOPT_RETURN_IF_ERROR(
          internal::ParallelGsResurrect(r, gi, surviving, &out, ctx));
      continue;
    }
    std::unordered_set<std::string> added;
    for (const Tuple& t : r.rows()) {
      GSOPT_RETURN_IF_ERROR(ctx.Tick("generalized-selection"));
      if (GroupPartAllNull(t, gi)) continue;
      std::string key = EncodeTupleKey(t, gi.value_idx, gi.vid_idx);
      if (surviving.count(key) || added.count(key)) continue;
      added.insert(std::move(key));
      out.Add(PadGroupTuple(t, gi, out));
      GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "generalized-selection"));
    }
  }
  RecordOut(ctx, out);
  return out;
}

StatusOr<Relation> Mgoj(const Relation& a, const Relation& b,
                        const Predicate& p,
                        const std::vector<PreservedGroup>& groups,
                        const ExecContext& ctx) {
  GSOPT_ASSIGN_OR_RETURN(JoinCoreResult core, JoinCore(a, b, p, ctx));
  Relation out(core.out.schema(), core.out.vschema());
  for (const Tuple& t : core.out.rows()) out.Add(t);

  // Compensation per group, computed from the operand sides directly:
  // pi_{G}(a x b) factors into pi_{G cap a}(a) x pi_{G cap b}(b).
  for (const PreservedGroup& group : groups) {
    GroupIndex ga = IndexGroup(group, a.schema(), a.vschema());
    GroupIndex gb = IndexGroup(group, b.schema(), b.vschema());
    GroupIndex gout = IndexGroup(group, out.schema(), out.vschema());

    std::unordered_set<std::string> surviving;
    for (const Tuple& t : core.out.rows()) {
      surviving.insert(EncodeTupleKey(t, gout.value_idx, gout.vid_idx));
    }
    std::unordered_set<std::string> added;

    Status charge_status = Status::OK();
    auto consider = [&](const Tuple& ta, const Tuple& tb) {
      if (!charge_status.ok()) return;
      Tuple t = Tuple::Concat(ta, tb);
      if (GroupPartAllNull(t, gout)) return;
      std::string key = EncodeTupleKey(t, gout.value_idx, gout.vid_idx);
      if (surviving.count(key) || added.count(key)) return;
      added.insert(std::move(key));
      out.Add(PadGroupTuple(t, gout, out));
      charge_status = ctx.ChargeRows(1, "mgoj");
    };

    bool group_in_a = !ga.value_idx.empty() || !ga.vid_idx.empty();
    bool group_in_b = !gb.value_idx.empty() || !gb.vid_idx.empty();
    Tuple null_a;
    null_a.values.assign(a.schema().size(), Value::Null());
    null_a.vids.assign(a.vschema().size(), kNullRowId);
    Tuple null_b;
    null_b.values.assign(b.schema().size(), Value::Null());
    null_b.vids.assign(b.vschema().size(), kNullRowId);

    if (group_in_a && group_in_b) {
      // Rare split group: enumerate distinct side projections.
      std::unordered_map<std::string, int64_t> da, db;
      for (int64_t i = 0; i < a.NumRows(); ++i) {
        da.emplace(EncodeTupleKey(a.row(i), ga.value_idx, ga.vid_idx), i);
      }
      for (int64_t j = 0; j < b.NumRows(); ++j) {
        db.emplace(EncodeTupleKey(b.row(j), gb.value_idx, gb.vid_idx), j);
      }
      for (const auto& [ka, i] : da) {
        for (const auto& [kb, j] : db) {
          consider(a.row(i), b.row(j));
        }
      }
    } else if (group_in_a) {
      // Unlike a literal sigma*[G](a x b), the binary operator preserves
      // G-tuples even when b is empty (matching left-outer-join semantics);
      // the padded side's contents never reach the key or the output.
      for (const Tuple& ta : a.rows()) consider(ta, null_b);
    } else if (group_in_b) {
      for (const Tuple& tb : b.rows()) consider(null_a, tb);
    }
    GSOPT_RETURN_IF_ERROR(charge_status);
  }
  RecordOut(ctx, out);
  return out;
}

}  // namespace gsopt::exec
