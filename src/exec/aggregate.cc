#include "exec/aggregate.h"

#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "base/check.h"
#include "exec/keys.h"
#include "exec/lane_control.h"

namespace gsopt::exec {

std::string AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kCountPresence:
      return "COUNT_PRESENT";
    case AggFunc::kGroupFlag:
      return "PRESENT";
  }
  return "?";
}

bool IsDuplicateInsensitive(AggFunc f, bool distinct) {
  if (f == AggFunc::kMin || f == AggFunc::kMax) return true;
  if (f == AggFunc::kGroupFlag) return true;
  return distinct;
}

std::string AggSpec::ToString() const {
  std::string s = out_rel + "." + out_name + "=";
  if (func == AggFunc::kCountStar) return s + "COUNT(*)";
  if (func == AggFunc::kCountPresence) {
    return s + "COUNT_PRESENT(" + presence_rel + ")";
  }
  if (func == AggFunc::kGroupFlag) return s + "PRESENT()";
  s += AggFuncName(func) + "(";
  if (distinct) s += "DISTINCT ";
  s += input ? input->ToString() : "*";
  return s + ")";
}

bool GroupBySpec::IsDuplicateInsensitive() const {
  for (const AggSpec& a : aggs) {
    if (!gsopt::exec::IsDuplicateInsensitive(a.func, a.distinct)) return false;
  }
  return true;
}

std::string GroupBySpec::ToString() const {
  std::string s = "GROUPBY[";
  for (size_t i = 0; i < group_cols.size(); ++i) {
    if (i) s += ", ";
    s += group_cols[i].Qualified();
  }
  for (const std::string& r : group_vid_rels) s += ", V(" + r + ")";
  s += "; ";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i) s += ", ";
    s += aggs[i].ToString();
  }
  return s + "]";
}

namespace {

struct Accumulator {
  int64_t count = 0;        // non-null inputs (or rows for COUNT(*))
  double sum = 0.0;
  bool sum_all_int = true;
  int64_t isum = 0;
  Value min_v, max_v;       // NULL until first non-null input
  std::unordered_set<std::string> distinct_keys;

  void Feed(const Value& v, const AggSpec& spec) {
    if (spec.func == AggFunc::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    if (spec.distinct) {
      std::string key;
      AppendValueKey(v, &key);
      if (!distinct_keys.insert(key).second) return;
    }
    ++count;
    switch (spec.func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == ValueType::kInt) {
          isum += v.AsInt();
        } else {
          sum_all_int = false;
        }
        sum += v.AsDouble();
        break;
      case AggFunc::kMin:
        if (min_v.is_null() || Value::IdentityLess(v, min_v)) min_v = v;
        break;
      case AggFunc::kMax:
        if (max_v.is_null() || Value::IdentityLess(max_v, v)) max_v = v;
        break;
      default:
        break;
    }
  }

  // Folds another lane's partial state for the same group into this one.
  // DISTINCT aggregates are excluded from the parallel path (per-lane
  // distinct sets cannot be combined without re-deduplicating the inputs),
  // so distinct_keys never needs merging.
  void MergeFrom(const Accumulator& o) {
    count += o.count;
    sum += o.sum;
    sum_all_int = sum_all_int && o.sum_all_int;
    isum += o.isum;
    if (!o.min_v.is_null() &&
        (min_v.is_null() || Value::IdentityLess(o.min_v, min_v))) {
      min_v = o.min_v;
    }
    if (!o.max_v.is_null() &&
        (max_v.is_null() || Value::IdentityLess(max_v, o.max_v))) {
      max_v = o.max_v;
    }
  }

  Value Result(const AggSpec& spec) const {
    switch (spec.func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
      case AggFunc::kCountPresence:
        return Value::Int(count);
      case AggFunc::kGroupFlag:
        return Value::Int(1);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return sum_all_int ? Value::Int(isum) : Value::Double(sum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(sum / static_cast<double>(count));
      case AggFunc::kMin:
        return min_v;
      case AggFunc::kMax:
        return max_v;
    }
    return Value::Null();
  }
};

}  // namespace

StatusOr<Relation> GeneralizedProjection(const Relation& r,
                                         const GroupBySpec& spec,
                                         const ExecContext& ctx) {
  // Resolve group columns and grouping virtual attributes. A spec naming
  // attributes the input does not carry is reachable from hand-built plans
  // and malformed SQL, so it is an input error, not an invariant.
  std::vector<int> gcol_idx;
  for (const Attribute& a : spec.group_cols) {
    int i = r.schema().Find(a.rel, a.name);
    if (i < 0) {
      return Status::InvalidArgument("group-by: missing attribute " +
                                     a.Qualified());
    }
    gcol_idx.push_back(i);
  }
  std::vector<int> gvid_idx;
  for (const std::string& rel : spec.group_vid_rels) {
    int i = r.vschema().Find(rel);
    if (i < 0) {
      return Status::InvalidArgument("group-by: no virtual attribute for " +
                                     rel);
    }
    gvid_idx.push_back(i);
  }
  // Validate COUNT_PRESENT targets up front, before the grouping loop.
  for (const AggSpec& a : spec.aggs) {
    if (a.func == AggFunc::kCountPresence &&
        r.vschema().Find(a.presence_rel) < 0) {
      return Status::InvalidArgument("COUNT_PRESENT: unknown relation " +
                                     a.presence_rel);
    }
  }

  Schema out_schema;
  for (const Attribute& a : spec.group_cols) out_schema.Append(a);
  for (const AggSpec& a : spec.aggs) {
    out_schema.Append(Attribute{a.out_rel, a.out_name});
  }
  VirtualSchema out_vschema(spec.group_vid_rels);
  // Synthetic virtual attribute (one row id per group) under the first
  // aggregate's qualifier: generalized selections above can then tell a
  // REAL group row that happens to be all-NULL on its values apart from
  // outer-join padding (padding has a null row id).
  bool synthetic_vid = false;
  if (spec.synthetic_vid && !spec.aggs.empty() &&
      out_vschema.Find(spec.aggs[0].out_rel) < 0) {
    out_vschema.Append(spec.aggs[0].out_rel);
    synthetic_vid = true;
  }

  struct Group {
    Tuple representative;
    std::vector<Accumulator> accs;
  };
  std::unordered_map<std::string, Group> groups;
  std::vector<std::string> order;  // first-seen order, for determinism

  if (ctx.stats != nullptr) {
    ctx.stats->rows_in += static_cast<uint64_t>(r.NumRows());
  }

  // Resolve COUNT_PRESENT vid indices once (validated above).
  std::vector<int> presence_idx(spec.aggs.size(), -1);
  for (size_t k = 0; k < spec.aggs.size(); ++k) {
    if (spec.aggs[k].func == AggFunc::kCountPresence) {
      presence_idx[k] = r.vschema().Find(spec.aggs[k].presence_rel);
    }
  }
  auto feed_row = [&](const Tuple& t, Group* g) {
    for (size_t k = 0; k < spec.aggs.size(); ++k) {
      const AggSpec& a = spec.aggs[k];
      Value v;
      if (a.func == AggFunc::kCountStar || a.func == AggFunc::kGroupFlag) {
        v = Value::Int(1);
      } else if (a.func == AggFunc::kCountPresence) {
        v = (t.vids[presence_idx[k]] == kNullRowId) ? Value::Null()
                                                    : Value::Int(1);
      } else {
        v = a.input->Eval(t, r.schema());
      }
      g->accs[k].Feed(v, a);
    }
  };

  // Parallel path: per-lane partial aggregation over row morsels, merged
  // lane-by-lane afterwards. DISTINCT aggregates stay serial -- per-lane
  // distinct sets cannot be combined without re-deduplicating -- and
  // MergeFrom handles everything else. Bag-equal to the serial path: only
  // which row represents a group (IdentityEquals-equal on the group key by
  // construction) and the synthetic group ordinals can differ.
  bool has_distinct = false;
  for (const AggSpec& a : spec.aggs) has_distinct = has_distinct || a.distinct;
  if (!has_distinct && ctx.Parallel(r.NumRows())) {
    Executor& ex = *ctx.executor;
    const int lanes = ex.lanes();
    struct LaneGroups {
      std::unordered_map<std::string, Group> groups;
      std::vector<std::string> order;
    };
    std::vector<LaneGroups> lane_groups(static_cast<size_t>(lanes));
    internal::LaneControl control(lanes);
    ex.pool().ParallelFor(
        r.NumRows(), ex.morsel_rows(),
        [&](int lane, int64_t begin, int64_t end) {
          if (control.cancelled()) return;
          LaneGroups& lg = lane_groups[static_cast<size_t>(lane)];
          std::string key;
          for (int64_t i = begin; i < end; ++i) {
            Status s = ctx.Tick("group-by");
            if (!s.ok()) return control.Fail(lane, std::move(s));
            const Tuple& t = r.row(i);
            EncodeTupleKeyInto(t, gcol_idx, gvid_idx, &key);
            auto it = lg.groups.find(key);
            if (it == lg.groups.end()) {
              Group g;
              g.representative = t;
              g.accs.resize(spec.aggs.size());
              it = lg.groups.emplace(key, std::move(g)).first;
              lg.order.push_back(key);
            }
            feed_row(t, &it->second);
          }
        });
    GSOPT_RETURN_IF_ERROR(control.First());
    for (LaneGroups& lg : lane_groups) {
      for (std::string& key : lg.order) {
        Group& g = lg.groups.at(key);
        auto it = groups.find(key);
        if (it == groups.end()) {
          order.push_back(key);
          groups.emplace(std::move(key), std::move(g));
          continue;
        }
        for (size_t k = 0; k < spec.aggs.size(); ++k) {
          it->second.accs[k].MergeFrom(g.accs[k]);
        }
      }
    }
  } else {
    for (const Tuple& t : r.rows()) {
      GSOPT_RETURN_IF_ERROR(ctx.Tick("group-by"));
      std::string key = EncodeTupleKey(t, gcol_idx, gvid_idx);
      auto it = groups.find(key);
      if (it == groups.end()) {
        Group g;
        g.representative = t;
        g.accs.resize(spec.aggs.size());
        it = groups.emplace(key, std::move(g)).first;
        order.push_back(key);
      }
      feed_row(t, &it->second);
    }
  }

  Relation out(out_schema, out_vschema);
  out.Reserve(static_cast<int64_t>(order.size()));
  RowId group_ordinal = 0;
  for (const std::string& key : order) {
    const Group& g = groups.at(key);
    Tuple t;
    t.values.reserve(out_schema.size());
    for (int i : gcol_idx) t.values.push_back(g.representative.values[i]);
    for (size_t k = 0; k < spec.aggs.size(); ++k) {
      t.values.push_back(g.accs[k].Result(spec.aggs[k]));
    }
    t.vids.reserve(out_vschema.size());
    for (int i : gvid_idx) t.vids.push_back(g.representative.vids[i]);
    if (synthetic_vid) t.vids.push_back(group_ordinal++);
    out.Add(std::move(t));
    GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "group-by"));
  }
  if (ctx.stats != nullptr) {
    ctx.stats->rows_out += static_cast<uint64_t>(out.NumRows());
  }
  return out;
}

}  // namespace gsopt::exec
