#include "exec/aggregate.h"

#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "base/check.h"
#include "exec/keys.h"

namespace gsopt::exec {

std::string AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kCountPresence:
      return "COUNT_PRESENT";
  }
  return "?";
}

bool IsDuplicateInsensitive(AggFunc f, bool distinct) {
  if (f == AggFunc::kMin || f == AggFunc::kMax) return true;
  return distinct;
}

std::string AggSpec::ToString() const {
  std::string s = out_rel + "." + out_name + "=";
  if (func == AggFunc::kCountStar) return s + "COUNT(*)";
  if (func == AggFunc::kCountPresence) {
    return s + "COUNT_PRESENT(" + presence_rel + ")";
  }
  s += AggFuncName(func) + "(";
  if (distinct) s += "DISTINCT ";
  s += input ? input->ToString() : "*";
  return s + ")";
}

bool GroupBySpec::IsDuplicateInsensitive() const {
  for (const AggSpec& a : aggs) {
    if (!gsopt::exec::IsDuplicateInsensitive(a.func, a.distinct)) return false;
  }
  return true;
}

std::string GroupBySpec::ToString() const {
  std::string s = "GROUPBY[";
  for (size_t i = 0; i < group_cols.size(); ++i) {
    if (i) s += ", ";
    s += group_cols[i].Qualified();
  }
  for (const std::string& r : group_vid_rels) s += ", V(" + r + ")";
  s += "; ";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i) s += ", ";
    s += aggs[i].ToString();
  }
  return s + "]";
}

namespace {

struct Accumulator {
  int64_t count = 0;        // non-null inputs (or rows for COUNT(*))
  double sum = 0.0;
  bool sum_all_int = true;
  int64_t isum = 0;
  Value min_v, max_v;       // NULL until first non-null input
  std::unordered_set<std::string> distinct_keys;

  void Feed(const Value& v, const AggSpec& spec) {
    if (spec.func == AggFunc::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    if (spec.distinct) {
      std::string key;
      AppendValueKey(v, &key);
      if (!distinct_keys.insert(key).second) return;
    }
    ++count;
    switch (spec.func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == ValueType::kInt) {
          isum += v.AsInt();
        } else {
          sum_all_int = false;
        }
        sum += v.AsDouble();
        break;
      case AggFunc::kMin:
        if (min_v.is_null() || Value::IdentityLess(v, min_v)) min_v = v;
        break;
      case AggFunc::kMax:
        if (max_v.is_null() || Value::IdentityLess(max_v, v)) max_v = v;
        break;
      default:
        break;
    }
  }

  Value Result(const AggSpec& spec) const {
    switch (spec.func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
      case AggFunc::kCountPresence:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return sum_all_int ? Value::Int(isum) : Value::Double(sum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(sum / static_cast<double>(count));
      case AggFunc::kMin:
        return min_v;
      case AggFunc::kMax:
        return max_v;
    }
    return Value::Null();
  }
};

}  // namespace

StatusOr<Relation> GeneralizedProjection(const Relation& r,
                                         const GroupBySpec& spec,
                                         const ExecContext& ctx) {
  // Resolve group columns and grouping virtual attributes. A spec naming
  // attributes the input does not carry is reachable from hand-built plans
  // and malformed SQL, so it is an input error, not an invariant.
  std::vector<int> gcol_idx;
  for (const Attribute& a : spec.group_cols) {
    int i = r.schema().Find(a.rel, a.name);
    if (i < 0) {
      return Status::InvalidArgument("group-by: missing attribute " +
                                     a.Qualified());
    }
    gcol_idx.push_back(i);
  }
  std::vector<int> gvid_idx;
  for (const std::string& rel : spec.group_vid_rels) {
    int i = r.vschema().Find(rel);
    if (i < 0) {
      return Status::InvalidArgument("group-by: no virtual attribute for " +
                                     rel);
    }
    gvid_idx.push_back(i);
  }
  // Validate COUNT_PRESENT targets up front, before the grouping loop.
  for (const AggSpec& a : spec.aggs) {
    if (a.func == AggFunc::kCountPresence &&
        r.vschema().Find(a.presence_rel) < 0) {
      return Status::InvalidArgument("COUNT_PRESENT: unknown relation " +
                                     a.presence_rel);
    }
  }

  Schema out_schema;
  for (const Attribute& a : spec.group_cols) out_schema.Append(a);
  for (const AggSpec& a : spec.aggs) {
    out_schema.Append(Attribute{a.out_rel, a.out_name});
  }
  VirtualSchema out_vschema(spec.group_vid_rels);
  // Synthetic virtual attribute (one row id per group) under the first
  // aggregate's qualifier: generalized selections above can then tell a
  // REAL group row that happens to be all-NULL on its values apart from
  // outer-join padding (padding has a null row id).
  bool synthetic_vid = false;
  if (spec.synthetic_vid && !spec.aggs.empty() &&
      out_vschema.Find(spec.aggs[0].out_rel) < 0) {
    out_vschema.Append(spec.aggs[0].out_rel);
    synthetic_vid = true;
  }

  struct Group {
    Tuple representative;
    std::vector<Accumulator> accs;
  };
  std::unordered_map<std::string, Group> groups;
  std::vector<std::string> order;  // first-seen order, for determinism

  if (ctx.stats != nullptr) {
    ctx.stats->rows_in += static_cast<uint64_t>(r.NumRows());
  }
  for (const Tuple& t : r.rows()) {
    GSOPT_RETURN_IF_ERROR(ctx.Tick("group-by"));
    std::string key = EncodeTupleKey(t, gcol_idx, gvid_idx);
    auto it = groups.find(key);
    if (it == groups.end()) {
      Group g;
      g.representative = t;
      g.accs.resize(spec.aggs.size());
      it = groups.emplace(key, std::move(g)).first;
      order.push_back(key);
    }
    for (size_t k = 0; k < spec.aggs.size(); ++k) {
      const AggSpec& a = spec.aggs[k];
      Value v;
      if (a.func == AggFunc::kCountStar) {
        v = Value::Int(1);
      } else if (a.func == AggFunc::kCountPresence) {
        int vi = r.vschema().Find(a.presence_rel);
        v = (t.vids[vi] == kNullRowId) ? Value::Null() : Value::Int(1);
      } else {
        v = a.input->Eval(t, r.schema());
      }
      it->second.accs[k].Feed(v, a);
    }
  }

  Relation out(out_schema, out_vschema);
  out.Reserve(static_cast<int>(order.size()));
  RowId group_ordinal = 0;
  for (const std::string& key : order) {
    const Group& g = groups.at(key);
    Tuple t;
    t.values.reserve(out_schema.size());
    for (int i : gcol_idx) t.values.push_back(g.representative.values[i]);
    for (size_t k = 0; k < spec.aggs.size(); ++k) {
      t.values.push_back(g.accs[k].Result(spec.aggs[k]));
    }
    t.vids.reserve(out_vschema.size());
    for (int i : gvid_idx) t.vids.push_back(g.representative.vids[i]);
    if (synthetic_vid) t.vids.push_back(group_ordinal++);
    out.Add(std::move(t));
    GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "group-by"));
  }
  if (ctx.stats != nullptr) {
    ctx.stats->rows_out += static_cast<uint64_t>(out.NumRows());
  }
  return out;
}

}  // namespace gsopt::exec
