#include "exec/aggregate.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "base/check.h"
#include "exec/columnar.h"
#include "exec/keys.h"
#include "exec/lane_control.h"
#include "exec/spill.h"
#include "relational/column_batch.h"

namespace gsopt::exec {

std::string AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kCountPresence:
      return "COUNT_PRESENT";
    case AggFunc::kGroupFlag:
      return "PRESENT";
  }
  return "?";
}

bool IsDuplicateInsensitive(AggFunc f, bool distinct) {
  if (f == AggFunc::kMin || f == AggFunc::kMax) return true;
  if (f == AggFunc::kGroupFlag) return true;
  return distinct;
}

std::string AggSpec::ToString() const {
  std::string s = out_rel + "." + out_name + "=";
  if (func == AggFunc::kCountStar) return s + "COUNT(*)";
  if (func == AggFunc::kCountPresence) {
    return s + "COUNT_PRESENT(" + presence_rel + ")";
  }
  if (func == AggFunc::kGroupFlag) return s + "PRESENT()";
  s += AggFuncName(func) + "(";
  if (distinct) s += "DISTINCT ";
  s += input ? input->ToString() : "*";
  return s + ")";
}

bool GroupBySpec::IsDuplicateInsensitive() const {
  for (const AggSpec& a : aggs) {
    if (!gsopt::exec::IsDuplicateInsensitive(a.func, a.distinct)) return false;
  }
  return true;
}

std::string GroupBySpec::ToString() const {
  std::string s = "GROUPBY[";
  for (size_t i = 0; i < group_cols.size(); ++i) {
    if (i) s += ", ";
    s += group_cols[i].Qualified();
  }
  for (const std::string& r : group_vid_rels) s += ", V(" + r + ")";
  s += "; ";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i) s += ", ";
    s += aggs[i].ToString();
  }
  return s + "]";
}

namespace {

struct Accumulator {
  int64_t count = 0;        // non-null inputs (or rows for COUNT(*))
  double sum = 0.0;
  bool sum_all_int = true;
  int64_t isum = 0;
  Value min_v, max_v;       // NULL until first non-null input
  std::unordered_set<std::string> distinct_keys;

  // Returns the bytes newly retained by this feed (a DISTINCT key entering
  // the dedup set), so the caller can charge them against the memory cap.
  uint64_t Feed(const Value& v, const AggSpec& spec) {
    if (spec.func == AggFunc::kCountStar) {
      ++count;
      return 0;
    }
    if (v.is_null()) return 0;
    uint64_t retained = 0;
    if (spec.distinct) {
      std::string key;
      AppendValueKey(v, &key);
      size_t key_size = key.size();
      if (!distinct_keys.insert(std::move(key)).second) return 0;
      retained = key_size + 48;
    }
    ++count;
    switch (spec.func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == ValueType::kInt) {
          isum += v.AsInt();
        } else {
          sum_all_int = false;
        }
        sum += v.AsDouble();
        break;
      case AggFunc::kMin:
        if (min_v.is_null() || Value::IdentityLess(v, min_v)) min_v = v;
        break;
      case AggFunc::kMax:
        if (max_v.is_null() || Value::IdentityLess(max_v, v)) max_v = v;
        break;
      default:
        break;
    }
    return retained;
  }

  // Folds another lane's partial state for the same group into this one.
  // DISTINCT aggregates are excluded from the parallel path (per-lane
  // distinct sets cannot be combined without re-deduplicating the inputs),
  // so distinct_keys never needs merging.
  void MergeFrom(const Accumulator& o) {
    count += o.count;
    sum += o.sum;
    sum_all_int = sum_all_int && o.sum_all_int;
    isum += o.isum;
    if (!o.min_v.is_null() &&
        (min_v.is_null() || Value::IdentityLess(o.min_v, min_v))) {
      min_v = o.min_v;
    }
    if (!o.max_v.is_null() &&
        (max_v.is_null() || Value::IdentityLess(max_v, o.max_v))) {
      max_v = o.max_v;
    }
  }

  Value Result(const AggSpec& spec) const {
    switch (spec.func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
      case AggFunc::kCountPresence:
        return Value::Int(count);
      case AggFunc::kGroupFlag:
        return Value::Int(1);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return sum_all_int ? Value::Int(isum) : Value::Double(sum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(sum / static_cast<double>(count));
      case AggFunc::kMin:
        return min_v;
      case AggFunc::kMax:
        return max_v;
    }
    return Value::Null();
  }
};

struct Group {
  Tuple representative;
  std::vector<Accumulator> accs;
};

struct GroupMap {
  std::unordered_map<std::string, Group> groups;
  std::vector<std::string> order;  // first-seen order, for determinism
};

// Everything GeneralizedProjection resolves once from (r, spec). Spilled
// partitions of r share its schemas, so one resolution serves the
// in-memory path and every out-of-core partition.
struct ResolvedGP {
  const GroupBySpec* spec = nullptr;
  std::vector<int> gcol_idx;
  std::vector<int> gvid_idx;
  std::vector<int> presence_idx;
  Schema out_schema;
  VirtualSchema out_vschema;
  bool synthetic_vid = false;
  bool has_distinct = false;
};

// Feeds one row into its group's accumulators; returns bytes newly
// retained (DISTINCT dedup-set growth) for the caller to charge.
uint64_t FeedRow(const ResolvedGP& rs, const Relation& r, const Tuple& t,
                 Group* g) {
  const GroupBySpec& spec = *rs.spec;
  uint64_t retained = 0;
  for (size_t k = 0; k < spec.aggs.size(); ++k) {
    const AggSpec& a = spec.aggs[k];
    Value v;
    if (a.func == AggFunc::kCountStar || a.func == AggFunc::kGroupFlag) {
      v = Value::Int(1);
    } else if (a.func == AggFunc::kCountPresence) {
      v = (t.vids[rs.presence_idx[k]] == kNullRowId) ? Value::Null()
                                                     : Value::Int(1);
    } else {
      v = a.input->Eval(t, r.schema());
    }
    retained += g->accs[k].Feed(v, a);
  }
  return retained;
}

// Serial grouping with memory-cap accounting. On failure *mem_trip tells
// the caller whether the failure was a memory charge (survivable by
// spilling) or something else (deadline, row cap, injected transient).
Status FeedRows(const Relation& r, const ResolvedGP& rs,
                const ExecContext& ctx, exec::OpMemory* mem, GroupMap* gm,
                bool* mem_trip) {
  const GroupBySpec& spec = *rs.spec;
  for (const Tuple& t : r.rows()) {
    GSOPT_RETURN_IF_ERROR(ctx.Tick("group-by"));
    std::string key = EncodeTupleKey(t, rs.gcol_idx, rs.gvid_idx);
    auto it = gm->groups.find(key);
    if (it == gm->groups.end()) {
      Status cs =
          mem->Charge(key.size() + internal::ApproxTupleBytes(t) +
                          spec.aggs.size() * sizeof(Accumulator) + 96,
                      "group-by");
      if (!cs.ok()) {
        if (mem_trip != nullptr) *mem_trip = true;
        return cs;
      }
      Group g;
      g.representative = t;
      g.accs.resize(spec.aggs.size());
      it = gm->groups.emplace(key, std::move(g)).first;
      gm->order.push_back(std::move(key));
    }
    uint64_t retained = FeedRow(rs, r, t, &it->second);
    if (retained > 0) {
      Status cs = mem->Charge(retained, "group-by");
      if (!cs.ok()) {
        if (mem_trip != nullptr) *mem_trip = true;
        return cs;
      }
    }
  }
  return Status::OK();
}

// Emits the output row of one finished group. `ordinal` threads the
// synthetic group row id across calls, so spilled partitions and the
// sorted feed emit globally unique ids exactly like a single in-memory
// map would.
Status EmitGroupRow(const ResolvedGP& rs, const Group& g,
                    const ExecContext& ctx, RowId* ordinal, Relation* out) {
  const GroupBySpec& spec = *rs.spec;
  Tuple t;
  t.values.reserve(static_cast<size_t>(rs.out_schema.size()));
  for (int i : rs.gcol_idx) t.values.push_back(g.representative.values[i]);
  for (size_t k = 0; k < spec.aggs.size(); ++k) {
    t.values.push_back(g.accs[k].Result(spec.aggs[k]));
  }
  t.vids.reserve(static_cast<size_t>(rs.out_vschema.size()));
  for (int i : rs.gvid_idx) t.vids.push_back(g.representative.vids[i]);
  if (rs.synthetic_vid) t.vids.push_back((*ordinal)++);
  out->Add(std::move(t));
  return ctx.ChargeRows(1, "group-by");
}

// Emits one output row per group in first-seen order.
Status EmitGroups(const ResolvedGP& rs, const GroupMap& gm,
                  const ExecContext& ctx, RowId* ordinal, Relation* out) {
  for (const std::string& key : gm.order) {
    GSOPT_RETURN_IF_ERROR(
        EmitGroupRow(rs, gm.groups.at(key), ctx, ordinal, out));
  }
  return Status::OK();
}

// Sort-based feed (ctx.SortedAggregation(), i.e. JoinStrategy::kMergeOnly):
// stable-sorts a row-index permutation by encoded group key and streams
// key-equal blocks, so only ONE group's accumulator state is live at a
// time instead of a whole hash map. The key bytes define the identical
// equality partition as the hash feed (EncodeTupleKeyInto), and stability
// makes each block's first row the group's first-seen row, so
// representatives agree with the hash path; only emit order and synthetic
// ordinals differ, which is bag-equal. A memory trip (the key buffer, or
// one group's DISTINCT dedup set) reports *mem_trip for the caller's
// out-of-core degradation.
Status SortedFeedEmit(const Relation& r, const ResolvedGP& rs,
                      const ExecContext& ctx, RowId* ordinal, Relation* out,
                      bool* mem_trip) {
  const GroupBySpec& spec = *rs.spec;
  exec::OpMemory key_mem(ctx);
  std::vector<std::string> keys(static_cast<size_t>(r.NumRows()));
  std::vector<int64_t> order;
  order.reserve(static_cast<size_t>(r.NumRows()));
  for (int64_t i = 0; i < r.NumRows(); ++i) {
    GSOPT_RETURN_IF_ERROR(ctx.Tick("group-by-sort"));
    EncodeTupleKeyInto(r.row(i), rs.gcol_idx, rs.gvid_idx,
                       &keys[static_cast<size_t>(i)]);
    Status cs = key_mem.Charge(keys[static_cast<size_t>(i)].size() + 40,
                               "group-by-sort");
    if (!cs.ok()) {
      *mem_trip = true;
      return cs;
    }
    order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&keys](int64_t a, int64_t b) {
                     return keys[static_cast<size_t>(a)] <
                            keys[static_cast<size_t>(b)];
                   });
  if (ctx.stats != nullptr) {
    ctx.stats->sort_rows += static_cast<uint64_t>(r.NumRows());
  }
  exec::OpMemory group_mem(ctx);
  Group g;
  bool open = false;
  const std::string* cur_key = nullptr;
  for (int64_t i : order) {
    GSOPT_RETURN_IF_ERROR(ctx.Tick("group-by-sort"));
    const std::string& key = keys[static_cast<size_t>(i)];
    const Tuple& t = r.row(i);
    if (!open || key != *cur_key) {
      if (open) {
        GSOPT_RETURN_IF_ERROR(EmitGroupRow(rs, g, ctx, ordinal, out));
        group_mem.Release();
      }
      Status cs = group_mem.Charge(
          internal::ApproxTupleBytes(t) +
              spec.aggs.size() * sizeof(Accumulator) + 96,
          "group-by-sort");
      if (!cs.ok()) {
        *mem_trip = true;
        return cs;
      }
      g = Group();
      g.representative = t;
      g.accs.resize(spec.aggs.size());
      cur_key = &key;
      open = true;
    }
    uint64_t retained = FeedRow(rs, r, t, &g);
    if (retained > 0) {
      Status cs = group_mem.Charge(retained, "group-by-sort");
      if (!cs.ok()) {
        *mem_trip = true;
        return cs;
      }
    }
  }
  if (open) GSOPT_RETURN_IF_ERROR(EmitGroupRow(rs, g, ctx, ordinal, out));
  return Status::OK();
}

// True when every aggregate input is either absent (COUNT(*), PRESENT,
// COUNT_PRESENT read no value column) or a plain resolvable column, the
// shape the batched feed gathers natively; fills agg_col with the schema
// column index per aggregate (-1 for the no-input functions). DISTINCT
// aggregates are excluded by the caller: their dedup sets want the
// row-at-a-time reference path.
bool ColumnarAggEligible(const GroupBySpec& spec, const Schema& s,
                         std::vector<int>* agg_col) {
  agg_col->assign(spec.aggs.size(), -1);
  for (size_t k = 0; k < spec.aggs.size(); ++k) {
    const AggSpec& a = spec.aggs[k];
    if (a.func == AggFunc::kCountStar || a.func == AggFunc::kGroupFlag ||
        a.func == AggFunc::kCountPresence) {
      continue;
    }
    if (a.input == nullptr || a.input->kind() != Scalar::Kind::kColumn) {
      return false;
    }
    int c = s.Find(a.input->rel(), a.input->name());
    if (c < 0) return false;
    (*agg_col)[k] = c;
  }
  return true;
}

// Batch-at-a-time twin of FeedRows: gathers the group-key columns, the
// grouping vids and the aggregate input columns once per batch, encodes
// binary group keys (same equality partition as EncodeTupleKeyInto) and
// feeds the shared Accumulators. Group discovery order is row order, like
// the reference path, so representatives and synthetic ordinals agree.
Status ColumnarFeedRows(const Relation& r, const ResolvedGP& rs,
                        const std::vector<int>& agg_col,
                        const ExecContext& ctx, exec::OpMemory* mem,
                        GroupMap* gm, bool* mem_trip) {
  const GroupBySpec& spec = *rs.spec;
  // Dedup the aggregate input columns into gather slots.
  std::vector<int> in_cols;
  std::vector<int> agg_slot(spec.aggs.size(), -1);
  for (size_t k = 0; k < agg_col.size(); ++k) {
    if (agg_col[k] < 0) continue;
    int slot = -1;
    for (size_t j = 0; j < in_cols.size(); ++j) {
      if (in_cols[j] == agg_col[k]) {
        slot = static_cast<int>(j);
        break;
      }
    }
    if (slot < 0) {
      in_cols.push_back(agg_col[k]);
      slot = static_cast<int>(in_cols.size() - 1);
    }
    agg_slot[k] = slot;
  }

  std::vector<Column> gcols, acols;
  std::vector<std::vector<RowId>> gvids;
  std::string key;
  for (int64_t begin = 0; begin < r.NumRows(); begin += kBatchRows) {
    int64_t end = std::min<int64_t>(begin + kBatchRows, r.NumRows());
    GSOPT_RETURN_IF_ERROR(ctx.Tick("group-by"));
    GatherColumnsInto(r, rs.gcol_idx, begin, end, &gcols);
    GatherVidsInto(r, rs.gvid_idx, begin, end, &gvids);
    GatherColumnsInto(r, in_cols, begin, end, &acols);
    if (ctx.stats != nullptr) ++ctx.stats->batches;
    for (int64_t i = 0; i < end - begin; ++i) {
      key.clear();
      internal::AppendBatchGroupKey(gcols, gvids, i, &key);
      auto it = gm->groups.find(key);
      if (it == gm->groups.end()) {
        const Tuple& t = r.row(begin + i);
        Status cs =
            mem->Charge(key.size() + internal::ApproxTupleBytes(t) +
                            spec.aggs.size() * sizeof(Accumulator) + 96,
                        "group-by");
        if (!cs.ok()) {
          if (mem_trip != nullptr) *mem_trip = true;
          return cs;
        }
        Group g;
        g.representative = t;
        g.accs.resize(spec.aggs.size());
        it = gm->groups.emplace(key, std::move(g)).first;
        gm->order.push_back(key);
      }
      Group& g = it->second;
      for (size_t k = 0; k < spec.aggs.size(); ++k) {
        const AggSpec& a = spec.aggs[k];
        if (a.func == AggFunc::kCountStar || a.func == AggFunc::kGroupFlag) {
          g.accs[k].Feed(Value::Int(1), a);
        } else if (a.func == AggFunc::kCountPresence) {
          RowId id = r.row(begin + i).vids[rs.presence_idx[k]];
          g.accs[k].Feed(id == kNullRowId ? Value::Null() : Value::Int(1), a);
        } else {
          g.accs[k].Feed(ColumnValueAt(acols[agg_slot[k]], i), a);
        }
      }
    }
  }
  return Status::OK();
}

// Out-of-core aggregation: partition input rows by group-key hash into
// SpillFile runs (each group lands wholly in one partition, so partition
// group maps are disjoint), aggregate each partition in memory, recurse on
// partitions whose maps still overflow. A partition irreducible at max
// recursion (a single group with an over-budget DISTINCT dedup set) keeps
// the memory-cap error: unlike the join there is no chunked fallback that
// preserves DISTINCT semantics with O(1) state.
Status SpillAggPartition(const Relation& r, const ResolvedGP& rs,
                         const ExecContext& ctx, int depth, RowId* ordinal,
                         Relation* out) {
  OperatorStats* st = ctx.stats;
  const SpillConfig& cfg = *ctx.spill;
  const int parts = cfg.partitions < 2 ? 2 : cfg.partitions;
  std::vector<SpillFile> files;
  files.reserve(static_cast<size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    GSOPT_ASSIGN_OR_RETURN(SpillFile f,
                           SpillFile::Create(cfg.dir, ctx.fault));
    files.push_back(std::move(f));
  }
  std::vector<int64_t> counts(static_cast<size_t>(parts), 0);
  std::string key, scratch;
  for (const Tuple& t : r.rows()) {
    GSOPT_RETURN_IF_ERROR(ctx.Tick("group-by-spill"));
    EncodeTupleKeyInto(t, rs.gcol_idx, rs.gvid_idx, &key);
    size_t p =
        internal::SpillPartitionHash(key, depth) % static_cast<size_t>(parts);
    GSOPT_RETURN_IF_ERROR(
        internal::WriteTupleRecord(&files[p], t, 0, &scratch));
    ++counts[p];
  }
  for (int p = 0; p < parts; ++p) {
    if (counts[p] == 0) continue;
    if (st != nullptr) ++st->spill_partitions;
    Relation part(r.schema(), r.vschema());
    GSOPT_RETURN_IF_ERROR(files[p].Rewind());
    for (int64_t k = 0; k < counts[p]; ++k) {
      Tuple t;
      int64_t orig = 0;
      GSOPT_RETURN_IF_ERROR(
          internal::ReadTupleRecord(&files[p], &t, &orig));
      part.Add(std::move(t));
    }
    if (st != nullptr) {
      st->spill_bytes_written += files[p].bytes_written();
      st->spill_bytes_read += files[p].bytes_read();
    }
    files[p].Discard();

    GroupMap gm;
    exec::OpMemory mem(ctx);
    bool trip = false;
    Status s = FeedRows(part, rs, ctx, &mem, &gm, &trip);
    if (s.ok()) {
      GSOPT_RETURN_IF_ERROR(EmitGroups(rs, gm, ctx, ordinal, out));
      continue;
    }
    if (!trip || depth >= cfg.max_recursion) return s;
    mem.Release();
    gm = GroupMap();
    if (st != nullptr) ++st->spill_recursions;
    GSOPT_RETURN_IF_ERROR(
        SpillAggPartition(part, rs, ctx, depth + 1, ordinal, out));
  }
  return Status::OK();
}

}  // namespace

StatusOr<Relation> GeneralizedProjection(const Relation& r,
                                         const GroupBySpec& spec,
                                         const ExecContext& ctx) {
  // Resolve group columns and grouping virtual attributes. A spec naming
  // attributes the input does not carry is reachable from hand-built plans
  // and malformed SQL, so it is an input error, not an invariant.
  std::vector<int> gcol_idx;
  for (const Attribute& a : spec.group_cols) {
    int i = r.schema().Find(a.rel, a.name);
    if (i < 0) {
      return Status::InvalidArgument("group-by: missing attribute " +
                                     a.Qualified());
    }
    gcol_idx.push_back(i);
  }
  std::vector<int> gvid_idx;
  for (const std::string& rel : spec.group_vid_rels) {
    int i = r.vschema().Find(rel);
    if (i < 0) {
      return Status::InvalidArgument("group-by: no virtual attribute for " +
                                     rel);
    }
    gvid_idx.push_back(i);
  }
  // Validate COUNT_PRESENT targets up front, before the grouping loop.
  for (const AggSpec& a : spec.aggs) {
    if (a.func == AggFunc::kCountPresence &&
        r.vschema().Find(a.presence_rel) < 0) {
      return Status::InvalidArgument("COUNT_PRESENT: unknown relation " +
                                     a.presence_rel);
    }
  }

  Schema out_schema;
  for (const Attribute& a : spec.group_cols) out_schema.Append(a);
  for (const AggSpec& a : spec.aggs) {
    out_schema.Append(Attribute{a.out_rel, a.out_name});
  }
  VirtualSchema out_vschema(spec.group_vid_rels);
  // Synthetic virtual attribute (one row id per group) under the first
  // aggregate's qualifier: generalized selections above can then tell a
  // REAL group row that happens to be all-NULL on its values apart from
  // outer-join padding (padding has a null row id).
  bool synthetic_vid = false;
  if (spec.synthetic_vid && !spec.aggs.empty() &&
      out_vschema.Find(spec.aggs[0].out_rel) < 0) {
    out_vschema.Append(spec.aggs[0].out_rel);
    synthetic_vid = true;
  }

  ResolvedGP rs;
  rs.spec = &spec;
  rs.gcol_idx = std::move(gcol_idx);
  rs.gvid_idx = std::move(gvid_idx);
  rs.out_schema = out_schema;
  rs.out_vschema = out_vschema;
  rs.synthetic_vid = synthetic_vid;
  // Resolve COUNT_PRESENT vid indices once (validated above).
  rs.presence_idx.assign(spec.aggs.size(), -1);
  for (size_t k = 0; k < spec.aggs.size(); ++k) {
    if (spec.aggs[k].func == AggFunc::kCountPresence) {
      rs.presence_idx[k] = r.vschema().Find(spec.aggs[k].presence_rel);
    }
  }
  for (const AggSpec& a : spec.aggs) {
    rs.has_distinct = rs.has_distinct || a.distinct;
  }

  if (ctx.stats != nullptr) {
    ctx.stats->rows_in += static_cast<uint64_t>(r.NumRows());
  }

  Relation out(out_schema, out_vschema);
  RowId ordinal = 0;

  auto spill_all = [&]() -> Status {
    if (ctx.stats != nullptr) ctx.stats->spilled = true;
    return SpillAggPartition(r, rs, ctx, 0, &ordinal, &out);
  };

  // Sort-based feed: kMergeOnly pins the whole sort-based stack for the
  // merge-vs-hash oracle, so aggregation streams key-sorted blocks instead
  // of building a hash map (even when the parallel path would be eligible;
  // this is a differential-testing mode, not a performance choice). A
  // memory trip degrades to the same out-of-core hash partitioning as the
  // other feeds -- output and ordinals restart from scratch, exactly like
  // spill_all after a FeedRows trip.
  if (ctx.SortedAggregation()) {
    bool trip = false;
    Status s = SortedFeedEmit(r, rs, ctx, &ordinal, &out, &trip);
    if (!s.ok()) {
      if (!trip || !ctx.SpillEnabled()) return s;
      out = Relation(out_schema, out_vschema);
      ordinal = 0;
      GSOPT_RETURN_IF_ERROR(spill_all());
    }
  } else
  // Parallel path: per-lane partial aggregation over row morsels, merged
  // lane-by-lane afterwards. DISTINCT aggregates stay serial -- per-lane
  // distinct sets cannot be combined without re-deduplicating -- and
  // MergeFrom handles everything else. Bag-equal to the serial path: only
  // which row represents a group (IdentityEquals-equal on the group key by
  // construction) and the synthetic group ordinals can differ.
  if (!rs.has_distinct && ctx.Parallel(r.NumRows())) {
    if (ctx.fault != nullptr) {
      GSOPT_RETURN_IF_ERROR(
          ctx.fault->MaybeFail(FaultSite::kDispatch, "parallel-group-by"));
    }
    Executor& ex = *ctx.executor;
    const int lanes = ex.lanes();
    const size_t nlanes = static_cast<size_t>(lanes);
    std::vector<GroupMap> lane_groups(nlanes);
    // Per-lane group-state ledgers; a memory trip in any lane degrades the
    // whole aggregation to the serial out-of-core path.
    std::vector<OpMemory> lane_mem;
    lane_mem.reserve(nlanes);
    for (size_t l = 0; l < nlanes; ++l) lane_mem.emplace_back(ctx);
    std::atomic<bool> mem_trip{false};
    internal::LaneControl control(lanes);
    ex.pool().ParallelFor(
        r.NumRows(), ex.morsel_rows(),
        [&](int lane, int64_t begin, int64_t end) {
          if (control.cancelled()) return;
          GroupMap& lg = lane_groups[static_cast<size_t>(lane)];
          OpMemory& mem = lane_mem[static_cast<size_t>(lane)];
          std::string key;
          for (int64_t i = begin; i < end; ++i) {
            Status s = ctx.Tick("group-by");
            if (!s.ok()) return control.Fail(lane, std::move(s));
            const Tuple& t = r.row(i);
            EncodeTupleKeyInto(t, rs.gcol_idx, rs.gvid_idx, &key);
            auto it = lg.groups.find(key);
            if (it == lg.groups.end()) {
              s = mem.Charge(key.size() + internal::ApproxTupleBytes(t) +
                                 spec.aggs.size() * sizeof(Accumulator) + 96,
                             "group-by");
              if (!s.ok()) {
                mem_trip.store(true, std::memory_order_relaxed);
                return control.Fail(lane, std::move(s));
              }
              Group g;
              g.representative = t;
              g.accs.resize(spec.aggs.size());
              it = lg.groups.emplace(key, std::move(g)).first;
              lg.order.push_back(key);
            }
            FeedRow(rs, r, t, &it->second);
          }
        });
    Status first = control.First();
    if (!first.ok()) {
      if (!mem_trip.load(std::memory_order_relaxed) || !ctx.SpillEnabled()) {
        return first;
      }
      for (OpMemory& m : lane_mem) m.Release();
      lane_groups.clear();
      GSOPT_RETURN_IF_ERROR(spill_all());
    } else {
      GroupMap gm;
      for (GroupMap& lg : lane_groups) {
        for (std::string& key : lg.order) {
          Group& g = lg.groups.at(key);
          auto it = gm.groups.find(key);
          if (it == gm.groups.end()) {
            gm.order.push_back(key);
            gm.groups.emplace(std::move(key), std::move(g));
            continue;
          }
          for (size_t k = 0; k < spec.aggs.size(); ++k) {
            it->second.accs[k].MergeFrom(g.accs[k]);
          }
        }
      }
      GSOPT_RETURN_IF_ERROR(EmitGroups(rs, gm, ctx, &ordinal, &out));
    }
  } else {
    // Serial path: columnar batch feed when the shape is vectorizable and
    // the input is large enough (or batching is forced); row-at-a-time
    // reference feed otherwise. Both discover groups in row order, so
    // representatives, emit order and synthetic ordinals agree; only the
    // internal key encoding differs. A memory trip degrades to the same
    // out-of-core path either way (spill_all re-aggregates from scratch).
    std::vector<int> agg_col;
    bool columnar = !rs.has_distinct && ctx.Columnar(r.NumRows()) &&
                    ColumnarAggEligible(spec, r.schema(), &agg_col);
    if (columnar && ctx.stats != nullptr) ctx.stats->columnar = true;
    GroupMap gm;
    OpMemory mem(ctx);
    bool trip = false;
    Status s = columnar
                   ? ColumnarFeedRows(r, rs, agg_col, ctx, &mem, &gm, &trip)
                   : FeedRows(r, rs, ctx, &mem, &gm, &trip);
    if (s.ok()) {
      GSOPT_RETURN_IF_ERROR(EmitGroups(rs, gm, ctx, &ordinal, &out));
    } else if (trip && ctx.SpillEnabled()) {
      mem.Release();
      gm = GroupMap();
      GSOPT_RETURN_IF_ERROR(spill_all());
    } else {
      return s;
    }
  }

  if (ctx.stats != nullptr) {
    ctx.stats->rows_out += static_cast<uint64_t>(out.NumRows());
  }
  return out;
}

}  // namespace gsopt::exec
