// Cache-line-blocked bloom filter for hash-join sideways information
// passing (SIP).
//
// The join's build side inserts every non-NULL key's 64-bit FNV-1a hash
// (exec/hash_table.h HashKeyBytes -- the hash every join path already
// computes or can compute from the canonical key bytes); the probe side
// then tests each key before paying for the table lookup, and -- on the
// out-of-core path -- before the row is even written to a spill partition.
// A negative answer is definitive (no false negatives), so a rejected
// probe row is a *known* non-match: inner sides simply skip it, preserved
// sides short-circuit straight to null-padding / GS resurrection, which
// the matched-bitmap machinery already does for any unmatched row.
//
// Layout: one 64-byte block (8 x u64 words, 512 bits) per key, chosen by
// hash bits 24..24+log2(blocks); the TWO probe bits inside the block come
// from hash bits 0..8 and 9..17. Every membership test touches exactly one
// cache line, and both probes derive from the single existing 64-bit hash
// (no second hash function). The block index deliberately avoids the top
// bits, which the morsel-parallel join uses for partition routing, so a
// partitioned build still spreads inserts across the whole filter.
//
// Sizing: kBitsPerKey bits per expected build key, rounded up to a
// power-of-two block count. At 16 bits/key each block averages 32 keys =
// 64 of 512 bits set, giving a ~(64/512)^2 ~ 1.6% false-positive target
// with the two derived probes.
//
// The filter is an optimization, never a correctness dependency: callers
// charge BytesFor() through OpMemory first and skip Init() when the charge
// fails (memory cap or injected alloc fault), degrading to filter-off.
#ifndef GSOPT_EXEC_BLOOM_H_
#define GSOPT_EXEC_BLOOM_H_

#include <cstdint>
#include <vector>

namespace gsopt::exec {

// Bloom-SIP policy knob, threaded through ExecContext / ExecuteOptions /
// SessionOptions exactly like BatchMode. kAuto activates per-join via
// BloomEligible below; kOff pins every join filter-free (the differential
// baseline); kForce builds a filter whenever the hash path runs, so tests
// exercise it on tiny inputs.
enum class BloomMode : uint8_t { kAuto = 0, kOff = 1, kForce = 2 };

// kAuto thresholds. The heuristic is planner-visible: it is a pure
// function of the build/probe cardinalities the cost model already
// estimates (optimizer/stats.h Rows), evaluated here on the actual
// runtime cardinalities. A filter pays off when the probe side is large
// enough to amortize the build-side inserts and the build side is not so
// much larger than the probe side that the filter's memory outweighs the
// probes it can save (a probe row costs at most one table lookup; a build
// row costs filter bits forever).
inline constexpr int64_t kMinBloomProbeRows = 1024;
inline constexpr int64_t kMaxBloomBuildProbeRatio = 4;

inline bool BloomEligible(BloomMode mode, int64_t build_rows,
                          int64_t probe_rows) {
  if (mode == BloomMode::kOff) return false;
  if (mode == BloomMode::kForce) return true;
  return probe_rows >= kMinBloomProbeRows && build_rows > 0 &&
         build_rows <= probe_rows * kMaxBloomBuildProbeRatio;
}

// Runtime calibration for kAuto: the eligibility heuristic cannot see the
// match rate, so the serial and columnar probe loops measure it. After
// kBloomCalibrateChecks probes, the filter stays engaged only while it is
// rejecting at least three quarters of them -- below that the per-probe
// check costs more than the table lookups it saves (measured: a 50%-match
// join runs 0.7x under a permanently-engaged filter, while ≥90% reject
// rates win 1.1-2.0x). kForce skips calibration so tests and the fuzz
// oracle keep exercising the filter path end-to-end on any data.
inline constexpr uint64_t kBloomCalibrateChecks = 2048;

inline bool BloomStillWinning(uint64_t checks, uint64_t rejects) {
  return rejects * 4 >= checks * 3;
}

// The morsel-parallel probe already hides table-lookup latency with many
// in-flight morsels and pays (lanes + 1) filter builds plus a block-wise
// merge, so the filter needs a larger probe side to pay off there
// (measured: 0.8-1.0x at 16K probe rows, 1.4-1.6x at 64K). kAuto only;
// kForce bypasses this like every other heuristic.
inline constexpr int64_t kMinBloomProbeRowsParallel = 32768;

class BloomFilter {
 public:
  static constexpr uint64_t kBitsPerKey = 16;
  static constexpr uint64_t kBitsPerBlock = 512;  // one cache line
  static constexpr uint64_t kWordsPerBlock = kBitsPerBlock / 64;
  // Block-count cap (64 MiB of filter); beyond this the false-positive
  // rate degrades gracefully instead of the allocation growing unbounded.
  static constexpr uint64_t kMaxBlocks = 1ull << 20;

  // Bytes Init(expected_keys) will allocate; callers charge this through
  // OpMemory before calling Init and leave the filter disabled when the
  // charge fails.
  static uint64_t BytesFor(int64_t expected_keys);

  // Allocates the zeroed block array. Idempotent per filter instance.
  void Init(int64_t expected_keys);

  // False until Init succeeds; every other member requires enabled().
  bool enabled() const { return !words_.empty(); }

  void Insert(uint64_t h) {
    uint64_t* block = &words_[BlockOf(h) * kWordsPerBlock];
    uint32_t b1 = static_cast<uint32_t>(h & (kBitsPerBlock - 1));
    uint32_t b2 = static_cast<uint32_t>((h >> 9) & (kBitsPerBlock - 1));
    block[b1 >> 6] |= 1ull << (b1 & 63);
    block[b2 >> 6] |= 1ull << (b2 & 63);
  }

  // True when the key MAY be present; false is definitive absence.
  bool MayContain(uint64_t h) const {
    const uint64_t* block = &words_[BlockOf(h) * kWordsPerBlock];
    uint32_t b1 = static_cast<uint32_t>(h & (kBitsPerBlock - 1));
    uint32_t b2 = static_cast<uint32_t>((h >> 9) & (kBitsPerBlock - 1));
    // Non-short-circuit &: both loads hit the same cache line, and the
    // single-branch form if-converts cleanly.
    return ((block[b1 >> 6] >> (b1 & 63)) & (block[b2 >> 6] >> (b2 & 63)) &
            1ull) != 0;
  }

  // ORs another filter of identical geometry into this one (the parallel
  // build's per-lane merge). Both filters must have been Init'ed with the
  // same expected_keys.
  void MergeFrom(const BloomFilter& other);

  uint64_t byte_size() const { return words_.size() * sizeof(uint64_t); }

 private:
  static uint64_t BlocksFor(int64_t expected_keys);
  uint64_t BlockOf(uint64_t h) const { return (h >> 24) & block_mask_; }

  std::vector<uint64_t> words_;  // kWordsPerBlock per block, contiguous
  uint64_t block_mask_ = 0;      // block count - 1 (power of two)
};

}  // namespace gsopt::exec

#endif  // GSOPT_EXEC_BLOOM_H_
