#include "exec/sort.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "base/spill_file.h"
#include "exec/join_internal.h"
#include "exec/keys.h"
#include "exec/spill.h"

namespace gsopt::exec {

namespace {

using internal::ApproxTupleBytes;
using internal::HashPlan;
using internal::JoinCoreResult;
using internal::ReadTupleRecord;
using internal::WriteTupleRecord;

// Maximum spilled runs merged at once. Past this the external sort takes
// an extra pass (merge kMergeFanIn runs into one, repeat), so the final
// streaming merge holds a bounded number of head tuples.
constexpr size_t kMergeFanIn = 8;

// Exact comparison of an int64 against a double. Routing the int through
// a double cast (as SQL comparison does) is fine for 3VL predicates but is
// NOT a strict weak ordering past 2^53: int(2^53+1) casts to 2^53, making
// it "equal" to double(2^53) while int-int comparison orders it after
// int(2^53) -- an intransitivity std::sort may turn into UB. The sort path
// therefore compares exactly: NaN stays greatest (CompareDoubles rule).
int CompareIntDouble(int64_t i, double d) {
  if (std::isnan(d)) return -1;
  constexpr double kTwo63 = 9223372036854775808.0;  // 2^63
  if (d >= kTwo63) return -1;
  if (d < -kTwo63) return 1;
  double fd = std::floor(d);
  int64_t di = static_cast<int64_t>(fd);  // |fd| <= 2^63 - 1 after guards
  if (i != di) return i < di ? -1 : 1;
  return d > fd ? -1 : 0;  // equal integer part: a fraction makes d larger
}

}  // namespace

std::string SortSpecToString(const SortSpec& spec) {
  std::string s;
  for (size_t i = 0; i < spec.size(); ++i) {
    if (i) s += ", ";
    s += spec[i].ToString();
  }
  return s;
}

int CompareValuesTotal(const Value& a, const Value& b) {
  auto rank = [](const Value& v) {
    switch (v.type()) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;  // NULL == NULL, lowest
  if (ra == 1) {
    bool ai = a.type() == ValueType::kInt, bi = b.type() == ValueType::kInt;
    if (ai && bi) {
      int64_t x = a.AsInt(), y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    if (ai) return CompareIntDouble(a.AsInt(), b.AsDouble());
    if (bi) return -CompareIntDouble(b.AsInt(), a.AsDouble());
    return CompareDoubles(a.AsDouble(), b.AsDouble());
  }
  int c = a.AsString().compare(b.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

int CompareValuesKeyClass(const Value& a, const Value& b) {
  int c = CompareValuesTotal(a, b);
  if (c != 0) return c;
  // Equal by value. The hash paths' key classes are finer in one corner:
  // an int64 and a double that agree numerically past the 2^53 exact range
  // encode to distinct keys. Order such pairs by their encodings so the
  // merge join's equality partition is exactly AppendValueKey's.
  std::string ka, kb;
  AppendValueKey(a, &ka);
  AppendValueKey(b, &kb);
  c = ka.compare(kb);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

namespace {

// One row staged for sorting: the tuple, its evaluated key values and its
// original index in the input relation (stability tie-break; the merge
// join's globally-indexed matched bitmaps).
struct Keyed {
  Tuple t;
  std::vector<Value> keys;
  int64_t orig = 0;
};

// Fills `keys` from a tuple; returning false drops the row from the
// stream (the merge join's NULL-key skip; the Sort operator keeps all).
using KeyFn = std::function<bool(const Tuple&, std::vector<Value>*)>;

struct KeyCmp {
  const std::vector<char>* desc = nullptr;  // null = all ascending
  bool key_class = false;

  int Compare(const std::vector<Value>& a, const std::vector<Value>& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t k = 0; k < n; ++k) {
      int c = key_class ? CompareValuesKeyClass(a[k], b[k])
                        : CompareValuesTotal(a[k], b[k]);
      if (desc != nullptr && (*desc)[k]) c = -c;
      if (c != 0) return c;
    }
    return 0;
  }
  // Strict weak ordering with input-order tie-break: stable no matter how
  // rows moved between spilled runs.
  bool Less(const Keyed& x, const Keyed& y) const {
    int c = Compare(x.keys, y.keys);
    if (c != 0) return c < 0;
    return x.orig < y.orig;
  }
};

uint64_t KeyedBytes(const Keyed& k) {
  return ApproxTupleBytes(k.t) + 24 * static_cast<uint64_t>(k.keys.size()) +
         48;
}

// Produces a relation's rows in sorted order. In-memory when the staged
// rows fit the budget; otherwise sorted SpillFile runs merged with bounded
// fan-in. Single-threaded, local to one operator invocation, so every run
// file is destroyed (LiveCount back to zero) before the operator returns.
class SortedStream {
 public:
  SortedStream(const Relation& src, KeyFn key_fn, KeyCmp cmp,
               const ExecContext& ctx, const char* stage)
      : src_(src),
        key_fn_(std::move(key_fn)),
        cmp_(cmp),
        ctx_(ctx),
        stage_(stage),
        mem_(ctx) {}

  Status Init() {
    std::vector<Keyed> buf;
    for (int64_t i = 0; i < src_.NumRows(); ++i) {
      GSOPT_RETURN_IF_ERROR(ctx_.Tick(stage_));
      Keyed k;
      if (!key_fn_(src_.row(i), &k.keys)) {
        ++skipped_;
        continue;
      }
      k.t = src_.row(i);
      k.orig = i;
      Status cs = mem_.Charge(KeyedBytes(k), stage_);
      if (!cs.ok()) {
        // The staged rows no longer fit (or an alloc fault fired). With
        // spilling enabled, flush what we have as a sorted run and keep
        // going with an empty buffer; otherwise surface the trip.
        if (!ctx_.SpillEnabled()) return cs;
        GSOPT_RETURN_IF_ERROR(FlushRun(&buf));
        GSOPT_RETURN_IF_ERROR(mem_.Charge(KeyedBytes(k), stage_));
      }
      buf.push_back(std::move(k));
      ++rows_;
    }
    if (runs_.empty()) {
      auto less = [this](const Keyed& x, const Keyed& y) {
        return cmp_.Less(x, y);
      };
      // Presorted-input short-circuit: one linear scan instead of the full
      // comparison sort. This is what makes a merge join over an already
      // ordered input cheap (the optimizer's interesting-order pass counts
      // on it).
      if (!std::is_sorted(buf.begin(), buf.end(), less)) {
        std::stable_sort(buf.begin(), buf.end(), less);
      }
      mem_entries_ = std::move(buf);
      return Status::OK();
    }
    if (!buf.empty()) GSOPT_RETURN_IF_ERROR(FlushRun(&buf));
    GSOPT_RETURN_IF_ERROR(MergeToFanIn());
    return LoadHeads();
  }

  // Moves the next row out of the stream. *ok = false when exhausted.
  Status Next(Keyed* row, bool* ok) {
    if (runs_.empty()) {
      if (pos_ >= mem_entries_.size()) {
        *ok = false;
        return Status::OK();
      }
      *row = std::move(mem_entries_[pos_++]);
      *ok = true;
      return Status::OK();
    }
    size_t best = heads_.size();
    for (size_t r = 0; r < heads_.size(); ++r) {
      if (!head_live_[r]) continue;
      if (best == heads_.size() || cmp_.Less(heads_[r], heads_[best])) {
        best = r;
      }
    }
    if (best == heads_.size()) {
      *ok = false;
      return Status::OK();
    }
    *row = std::move(heads_[best]);
    GSOPT_RETURN_IF_ERROR(Advance(best));
    *ok = true;
    return Status::OK();
  }

  // Collects the next maximal block of key-equal rows (in stable order).
  // Empty block = exhausted. Block bytes are charged against `block_mem`.
  Status NextBlock(std::vector<Keyed>* block, OpMemory* block_mem) {
    block->clear();
    if (!pending_valid_) {
      GSOPT_RETURN_IF_ERROR(Next(&pending_, &pending_valid_));
      if (!pending_valid_) return Status::OK();
    }
    GSOPT_RETURN_IF_ERROR(block_mem->Charge(KeyedBytes(pending_), stage_));
    block->push_back(std::move(pending_));
    pending_valid_ = false;
    for (;;) {
      GSOPT_RETURN_IF_ERROR(Next(&pending_, &pending_valid_));
      if (!pending_valid_) return Status::OK();
      if (cmp_.Compare(pending_.keys, block->front().keys) != 0) {
        return Status::OK();  // pending_ starts the next block
      }
      GSOPT_RETURN_IF_ERROR(block_mem->Charge(KeyedBytes(pending_), stage_));
      block->push_back(std::move(pending_));
      pending_valid_ = false;
    }
  }

  uint64_t rows() const { return rows_; }
  uint64_t skipped() const { return skipped_; }
  uint64_t total_runs() const { return total_runs_; }
  uint64_t merge_passes() const { return merge_passes_; }
  bool external() const { return total_runs_ > 0; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  struct Run {
    SpillFile file;
    int64_t count = 0;   // records in the file
    int64_t cursor = 0;  // records consumed
  };

  Status FlushRun(std::vector<Keyed>* buf) {
    std::stable_sort(buf->begin(), buf->end(),
                     [this](const Keyed& x, const Keyed& y) {
                       return cmp_.Less(x, y);
                     });
    GSOPT_ASSIGN_OR_RETURN(
        SpillFile f, SpillFile::Create(SpillDir(), ctx_.fault));
    Run run{std::move(f), 0, 0};
    std::string scratch;
    for (const Keyed& k : *buf) {
      GSOPT_RETURN_IF_ERROR(
          WriteTupleRecord(&run.file, k.t, k.orig, &scratch));
      ++run.count;
    }
    bytes_written_ += run.file.bytes_written();
    runs_.push_back(std::move(run));
    ++total_runs_;
    buf->clear();
    mem_.Release();
    return Status::OK();
  }

  std::string SpillDir() const {
    return ctx_.spill != nullptr ? ctx_.spill->dir : std::string();
  }

  // Reads the next record of run r into *k (keys re-evaluated; the key fn
  // is pure, and rows were filtered before being written).
  Status ReadOne(Run* r, Keyed* k) {
    GSOPT_RETURN_IF_ERROR(ReadTupleRecord(&r->file, &k->t, &k->orig));
    ++r->cursor;
    k->keys.clear();
    key_fn_(k->t, &k->keys);
    return Status::OK();
  }

  // Merges groups of kMergeFanIn runs into single runs until at most
  // kMergeFanIn remain for the final streaming merge.
  Status MergeToFanIn() {
    while (runs_.size() > kMergeFanIn) {
      ++merge_passes_;
      std::vector<Run> next;
      for (size_t base = 0; base < runs_.size(); base += kMergeFanIn) {
        size_t end = std::min(runs_.size(), base + kMergeFanIn);
        if (end - base == 1) {
          next.push_back(std::move(runs_[base]));
          continue;
        }
        std::vector<Keyed> heads(end - base);
        std::vector<char> live(end - base, 0);
        for (size_t r = base; r < end; ++r) {
          GSOPT_RETURN_IF_ERROR(runs_[r].file.Rewind());
          if (runs_[r].count > 0) {
            GSOPT_RETURN_IF_ERROR(ReadOne(&runs_[r], &heads[r - base]));
            live[r - base] = 1;
          }
        }
        GSOPT_ASSIGN_OR_RETURN(
            SpillFile f, SpillFile::Create(SpillDir(), ctx_.fault));
        Run merged{std::move(f), 0, 0};
        std::string scratch;
        for (;;) {
          GSOPT_RETURN_IF_ERROR(ctx_.Tick(stage_));
          size_t best = heads.size();
          for (size_t h = 0; h < heads.size(); ++h) {
            if (!live[h]) continue;
            if (best == heads.size() || cmp_.Less(heads[h], heads[best])) {
              best = h;
            }
          }
          if (best == heads.size()) break;
          GSOPT_RETURN_IF_ERROR(WriteTupleRecord(
              &merged.file, heads[best].t, heads[best].orig, &scratch));
          ++merged.count;
          Run& src = runs_[base + best];
          if (src.cursor < src.count) {
            GSOPT_RETURN_IF_ERROR(ReadOne(&src, &heads[best]));
          } else {
            live[best] = 0;
            bytes_read_ += src.file.bytes_read();
            src.file.Discard();
          }
        }
        bytes_written_ += merged.file.bytes_written();
        next.push_back(std::move(merged));
      }
      runs_ = std::move(next);
    }
    return Status::OK();
  }

  Status LoadHeads() {
    heads_.resize(runs_.size());
    head_live_.assign(runs_.size(), 0);
    for (size_t r = 0; r < runs_.size(); ++r) {
      GSOPT_RETURN_IF_ERROR(runs_[r].file.Rewind());
      runs_[r].cursor = 0;
      if (runs_[r].count > 0) {
        GSOPT_RETURN_IF_ERROR(ReadOne(&runs_[r], &heads_[r]));
        head_live_[r] = 1;
      }
    }
    return Status::OK();
  }

  Status Advance(size_t r) {
    Run& run = runs_[r];
    if (run.cursor < run.count) {
      return ReadOne(&run, &heads_[r]);
    }
    head_live_[r] = 0;
    bytes_read_ += run.file.bytes_read();
    run.file.Discard();
    return Status::OK();
  }

  const Relation& src_;
  KeyFn key_fn_;
  KeyCmp cmp_;
  const ExecContext& ctx_;
  const char* stage_;
  OpMemory mem_;

  std::vector<Keyed> mem_entries_;
  size_t pos_ = 0;

  std::vector<Run> runs_;
  std::vector<Keyed> heads_;
  std::vector<char> head_live_;

  Keyed pending_;
  bool pending_valid_ = false;

  uint64_t rows_ = 0;
  uint64_t skipped_ = 0;
  uint64_t total_runs_ = 0;
  uint64_t merge_passes_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t bytes_read_ = 0;
};

void FlushStreamStats(const SortedStream& s, OperatorStats* st) {
  if (st == nullptr) return;
  st->sort_runs += s.total_runs();
  st->sort_merge_passes += s.merge_passes();
  if (s.external()) {
    st->spilled = true;
    st->spill_bytes_written += s.bytes_written();
    st->spill_bytes_read += s.bytes_read();
  }
}

}  // namespace

StatusOr<Relation> Sort(const Relation& r, const SortSpec& spec,
                        const ExecContext& ctx) {
  std::vector<int> idx;
  std::vector<char> desc;
  for (const SortKey& k : spec) {
    int i = r.schema().Find(k.attr.rel, k.attr.name);
    if (i < 0) {
      return Status::InvalidArgument("sort: missing attribute " +
                                     k.attr.Qualified());
    }
    idx.push_back(i);
    desc.push_back(k.desc ? 1 : 0);
  }
  OperatorStats* st = ctx.stats;
  if (st != nullptr) {
    st->rows_in += static_cast<uint64_t>(r.NumRows());
    st->sort_rows += static_cast<uint64_t>(r.NumRows());
  }
  KeyFn key_fn = [&idx](const Tuple& t, std::vector<Value>* keys) {
    keys->reserve(idx.size());
    for (int i : idx) keys->push_back(t.values[i]);
    return true;
  };
  KeyCmp cmp{&desc, /*key_class=*/false};
  SortedStream stream(r, key_fn, cmp, ctx, "sort");
  GSOPT_RETURN_IF_ERROR(stream.Init());

  Relation out(r.schema(), r.vschema());
  out.Reserve(r.NumRows());
  for (;;) {
    Keyed k;
    bool ok = false;
    GSOPT_RETURN_IF_ERROR(stream.Next(&k, &ok));
    if (!ok) break;
    out.Add(std::move(k.t));
    GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "sort"));
  }
  FlushStreamStats(stream, st);
  if (st != nullptr) st->rows_out += static_cast<uint64_t>(out.NumRows());
  return out;
}

Status CheckSorted(const Relation& r, const SortSpec& spec) {
  std::vector<int> idx;
  std::vector<char> desc;
  for (const SortKey& k : spec) {
    int i = r.schema().Find(k.attr.rel, k.attr.name);
    if (i < 0) {
      return Status::InvalidArgument("check-sorted: missing attribute " +
                                     k.attr.Qualified());
    }
    idx.push_back(i);
    desc.push_back(k.desc ? 1 : 0);
  }
  for (int64_t i = 1; i < r.NumRows(); ++i) {
    const Tuple& prev = r.row(i - 1);
    const Tuple& cur = r.row(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      int c = CompareValuesTotal(prev.values[idx[k]], cur.values[idx[k]]);
      if (desc[k]) c = -c;
      if (c < 0) break;
      if (c > 0) {
        return Status::Internal(
            "rows " + std::to_string(i - 1) + ".." + std::to_string(i) +
            " violate ORDER BY " + SortSpecToString(spec) + ": " +
            prev.values[idx[k]].ToString() + " vs " +
            cur.values[idx[k]].ToString());
      }
    }
  }
  return Status::OK();
}

namespace internal {

StatusOr<JoinCoreResult> MergeJoinCore(const Relation& a, const Relation& b,
                                       const HashPlan& plan,
                                       const ExecContext& ctx) {
  JoinCoreResult res;
  Schema out_schema = Schema::Concat(a.schema(), b.schema());
  VirtualSchema out_vschema = VirtualSchema::Concat(a.vschema(), b.vschema());
  res.out = Relation(out_schema, out_vschema);
  res.a_matched.assign(static_cast<size_t>(a.NumRows()), 0);
  res.b_matched.assign(static_cast<size_t>(b.NumRows()), 0);
  OperatorStats* st = ctx.stats;
  if (st != nullptr) {
    st->merge_path = true;
    st->sort_rows += static_cast<uint64_t>(a.NumRows()) +
                     static_cast<uint64_t>(b.NumRows());
  }

  auto side_key_fn = [](const Relation& r, const std::vector<ScalarPtr>& ks) {
    return [&r, &ks](const Tuple& t, std::vector<Value>* keys) {
      keys->clear();
      keys->reserve(ks.size());
      for (const ScalarPtr& k : ks) {
        Value v = k->Eval(t, r.schema());
        // NULL never equi-matches under 3VL: drop the row from the merge
        // entirely, exactly like EncodeKeys' skip on the hash path.
        if (v.is_null()) return false;
        keys->push_back(std::move(v));
      }
      return true;
    };
  };
  KeyCmp cmp{nullptr, /*key_class=*/true};
  SortedStream sa(a, side_key_fn(a, plan.a_keys), cmp, ctx, "merge-join");
  SortedStream sb(b, side_key_fn(b, plan.b_keys), cmp, ctx, "merge-join");
  GSOPT_RETURN_IF_ERROR(sa.Init());
  GSOPT_RETURN_IF_ERROR(sb.Init());
  if (st != nullptr) st->null_key_skips += sa.skipped() + sb.skipped();

  Predicate residual(plan.residual);
  std::vector<Keyed> ba, bb;
  OpMemory mem_a(ctx), mem_b(ctx);
  GSOPT_RETURN_IF_ERROR(sa.NextBlock(&ba, &mem_a));
  GSOPT_RETURN_IF_ERROR(sb.NextBlock(&bb, &mem_b));
  while (!ba.empty() && !bb.empty()) {
    GSOPT_RETURN_IF_ERROR(ctx.Tick("merge-join"));
    int c = cmp.Compare(ba.front().keys, bb.front().keys);
    if (c < 0) {
      mem_a.Release();
      GSOPT_RETURN_IF_ERROR(sa.NextBlock(&ba, &mem_a));
      continue;
    }
    if (c > 0) {
      mem_b.Release();
      GSOPT_RETURN_IF_ERROR(sb.NextBlock(&bb, &mem_b));
      continue;
    }
    for (const Keyed& x : ba) {
      for (const Keyed& y : bb) {
        GSOPT_RETURN_IF_ERROR(ctx.Tick("merge-join"));
        Tuple t = Tuple::Concat(x.t, y.t);
        if (st != nullptr) ++st->residual_evals;
        if (residual.Satisfied(t, out_schema)) {
          res.a_matched[static_cast<size_t>(x.orig)] = 1;
          res.b_matched[static_cast<size_t>(y.orig)] = 1;
          res.out.Add(std::move(t));
          GSOPT_RETURN_IF_ERROR(ctx.ChargeRows(1, "merge-join"));
        }
      }
    }
    mem_a.Release();
    mem_b.Release();
    GSOPT_RETURN_IF_ERROR(sa.NextBlock(&ba, &mem_a));
    GSOPT_RETURN_IF_ERROR(sb.NextBlock(&bb, &mem_b));
  }
  FlushStreamStats(sa, st);
  FlushStreamStats(sb, st);
  return res;
}

}  // namespace internal

}  // namespace gsopt::exec
