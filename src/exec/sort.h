// External merge sort and the sorted-output contract.
//
// Sort() is the enforcer operator behind ORDER BY and the sort phase of
// the sort-merge join (MergeJoinCore, declared in join_internal.h). The
// in-memory path stable-sorts a row-index permutation; when the operator
// state trips the ResourceBudget memory cap and the ExecContext carries an
// enabled SpillConfig, rows degrade to sorted SpillFile runs merged with a
// bounded fan-in (multi-pass when the run count exceeds kMergeFanIn), so
// ENOSPC / short-write faults inject at the existing spill sites and
// SpillFile::LiveCount() returns to zero on every path.
//
// Ordering contract (documented here, asserted by CheckSorted and the
// order-correctness oracle):
//   * NULL is the LOWEST value: NULLs first under ASC, last under DESC.
//   * Numerics order by value with int/double unified (1 < 1.5 < 2 across
//     types); NaN equals NaN and is greater than every non-NaN number
//     (the CompareDoubles rule).
//   * Strings order bytewise; every number orders before every string.
//   * The sort is stable: rows equal on every key keep their input order.
#ifndef GSOPT_EXEC_SORT_H_
#define GSOPT_EXEC_SORT_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "exec/eval.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace gsopt::exec {

struct SortKey {
  Attribute attr;
  bool desc = false;

  std::string ToString() const {
    return attr.Qualified() + (desc ? " DESC" : " ASC");
  }
  friend bool operator==(const SortKey& a, const SortKey& b) {
    return a.attr == b.attr && a.desc == b.desc;
  }
};

using SortSpec = std::vector<SortKey>;

std::string SortSpecToString(const SortSpec& spec);

// Total order over values per the ordering contract above: <0, 0, >0.
int CompareValuesTotal(const Value& a, const Value& b);

// CompareValuesTotal refined so its equality classes are EXACTLY the hash
// paths' key classes (exec/keys.h AppendValueKey): values that compare
// equal by magnitude but encode to distinct keys (an int64 and a non-exact
// double past 2^53) are ordered by their encodings instead of merged. The
// merge join must group by this comparator to stay bag-equal to the hash
// join on every input.
int CompareValuesKeyClass(const Value& a, const Value& b);

// Stable external merge sort of `r` by `spec`. Fallible: a key naming an
// attribute the input does not carry returns kInvalidArgument; a memory
// trip without spilling enabled returns kResourceExhausted.
StatusOr<Relation> Sort(const Relation& r, const SortSpec& spec,
                        const ExecContext& ctx = {});

// Verifies `r` is ordered by `spec` under the contract above; kInternal
// naming the first offending row pair otherwise. The order-correctness
// oracle and sort tests run every checked output through this.
Status CheckSorted(const Relation& r, const SortSpec& spec);

}  // namespace gsopt::exec

#endif  // GSOPT_EXEC_SORT_H_
