// Out-of-core (grace-style) degradation for the hash kernels.
//
// When a hash join's build table or an aggregation's group map trips the
// ResourceBudget memory cap and the ExecContext carries an enabled
// SpillConfig, the kernel abandons its in-memory state and re-runs through
// the partitioned path here: rows are radix-partitioned by key hash into
// SpillFile runs (base/spill_file.h), each partition is processed in
// memory, and a partition that still does not fit is repartitioned with a
// depth-salted hash. At SpillConfig::max_recursion the join switches to a
// block-chunked build (build-side chunks sized to the budget, probe side
// rescanned per chunk), which terminates under identical-key skew that
// rehashing cannot split.
//
// Correctness subtleties this module owns:
//   * every spilled record carries the row's ORIGINAL index in its input
//     relation, so the matched bitmaps of JoinCoreResult are indexed
//     globally no matter how rows moved between partitions -- outer-join
//     padding and GS preserved-set resurrection above the join see exactly
//     the flags the in-memory kernel would have produced;
//   * rows whose equi-key encodes NULL never match under 3VL; they are
//     counted and dropped before partitioning, like the in-memory path;
//   * aggregation partitions by group key, so each group lands wholly in
//     one partition and per-partition group maps are disjoint; synthetic
//     group ordinals are threaded across partitions to stay unique.
//
// Tuple records are length-prefixed: u32 payload length, then i64 original
// row index, u16 value count, u16 vid count, tagged values (ValueType byte;
// i64 / double raw; strings u32-length-prefixed) and i64 vids.
#ifndef GSOPT_EXEC_SPILL_H_
#define GSOPT_EXEC_SPILL_H_

#include <cstdint>
#include <string>

#include "base/spill_file.h"
#include "base/status.h"
#include "exec/join_internal.h"
#include "relational/relation.h"

namespace gsopt::exec::internal {

// Rough per-tuple resident size used for memory-cap accounting: container
// headers plus string payloads. An estimate, not an audit -- consistency
// between charge and release is what matters, and OpMemory guarantees that.
uint64_t ApproxTupleBytes(const Tuple& t);

// Hash for partition routing at a given recursion depth. Depth salts the
// hash so a partition that overflows re-splits on fresh bits instead of
// collapsing into one child.
uint64_t SpillPartitionHash(const std::string& key, int depth);

// Serializes (tuple, original row index) onto `buf` in record format.
// Returns kResourceExhausted -- with `buf` unchanged -- when the tuple
// exceeds the framing limits (more than 65535 values or vids, a string or
// total payload past 4GB); the old unchecked casts silently truncated the
// counts and corrupted every record after.
Status AppendTupleRecord(const Tuple& t, int64_t orig, std::string* buf);

Status WriteTupleRecord(SpillFile* f, const Tuple& t, int64_t orig,
                        std::string* scratch);

// Reads one record; the tuple's value/vid counts come from the record.
Status ReadTupleRecord(SpillFile* f, Tuple* t, int64_t* orig);

// Out-of-core replacement for the in-memory JoinCore hash path. Requires
// plan.usable() and ctx.SpillEnabled(); returns the same result shape as
// JoinCore (output bag plus globally-indexed matched bitmaps). Builds over
// `b`, probes with `a`, like the serial kernel.
StatusOr<JoinCoreResult> SpillJoinCore(const Relation& a, const Relation& b,
                                       const HashPlan& plan,
                                       const ExecContext& ctx);

}  // namespace gsopt::exec::internal

#endif  // GSOPT_EXEC_SPILL_H_
