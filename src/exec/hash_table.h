// Allocation-free join-key machinery for the morsel-parallel executor.
//
// The serial kernels build chaining std::unordered_map tables keyed by
// per-row std::string encodings -- simple, and the reference semantics.
// That design pays one string construction plus one node allocation per
// build row and per probe, which caps the executor at allocator speed.
// The parallel path instead:
//
//   * encodes each key once into a per-lane append-only KeyArena (keys are
//     the same canonical bytes keys.h produces, so equality semantics are
//     byte equality and identical to the serial path),
//   * hashes the encoded bytes once to 64 bits (FNV-1a),
//   * radix-partitions build rows by the hash's high bits, and
//   * builds one open-addressing JoinHashTable per partition, with per-key
//     entry chains threaded through a flat entry vector (no per-row
//     allocation; the arrays are sized once up front).
//
// Partitions are disjoint by construction, so the build fans out across
// lanes without locks, and probes touch exactly one partition.
#ifndef GSOPT_EXEC_HASH_TABLE_H_
#define GSOPT_EXEC_HASH_TABLE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace gsopt::exec {

// FNV-1a over the canonical key bytes. Stable across lanes and runs,
// which keeps partition assignment deterministic for a given input.
inline uint64_t HashKeyBytes(const char* data, size_t len) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

inline uint64_t HashKeyBytes(const std::string& key) {
  return HashKeyBytes(key.data(), key.size());
}

// Append-only byte storage for encoded keys. One arena per lane: lanes
// append concurrently to their own arena during a build pass, after which
// the arenas are frozen and shared read-only.
class KeyArena {
 public:
  // Appends the bytes and returns their offset. Pointers into the arena
  // are only stable once appending stops; refer to keys by offset until
  // the build pass completes.
  uint64_t Append(const std::string& bytes) {
    uint64_t off = data_.size();
    data_.append(bytes);
    return off;
  }

  const char* At(uint64_t off) const { return data_.data() + off; }
  uint64_t size() const { return data_.size(); }

 private:
  std::string data_;
};

// One partition's hash index: open addressing with linear probing over
// power-of-two slots, one slot per distinct key, duplicate keys chained
// through `next`. Equality is hash-then-bytes against the frozen arenas.
class JoinHashTable {
 public:
  struct Entry {
    uint64_t hash;
    uint64_t off;   // key bytes: arenas[lane].At(off), `len` long
    uint32_t len;
    uint32_t lane;
    int64_t row;    // build-side row index
    int32_t next;   // next entry with the same key, -1 at chain end
  };

  // Takes the partition's entries and wires slots + duplicate chains.
  // `arenas` must outlive the table and stay frozen.
  void Build(std::vector<Entry> entries,
             const std::vector<KeyArena>& arenas) {
    // Slot wiring indexes entries with int32_t (`next`, slots_); a
    // partition past INT32_MAX entries would wrap. The memory governor
    // trips far earlier in practice, so this is a structural invariant.
    assert(entries.size() <=
           static_cast<size_t>(std::numeric_limits<int32_t>::max()));
    entries_ = std::move(entries);
    distinct_keys_ = 0;
    max_chain_ = 0;
    slots_.clear();
    if (entries_.empty()) {
      mask_ = 0;
      return;
    }
    uint64_t cap = 16;
    while (cap < 2 * entries_.size()) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, -1);
    // chain_len[e] = chain length counting from entry e to the tail; a new
    // head extends the old head's chain by one.
    std::vector<uint32_t> chain_len(entries_.size(), 1);
    for (size_t e = 0; e < entries_.size(); ++e) {
      Entry& ent = entries_[e];
      uint64_t slot = ent.hash & mask_;
      for (;;) {
        int32_t head = slots_[slot];
        if (head < 0) {
          ent.next = -1;
          slots_[slot] = static_cast<int32_t>(e);
          ++distinct_keys_;
          if (max_chain_ < 1) max_chain_ = 1;
          break;
        }
        const Entry& h = entries_[static_cast<size_t>(head)];
        if (h.hash == ent.hash && KeysEqual(h, ent, arenas)) {
          ent.next = head;
          slots_[slot] = static_cast<int32_t>(e);
          chain_len[e] = chain_len[static_cast<size_t>(head)] + 1;
          if (chain_len[e] > max_chain_) max_chain_ = chain_len[e];
          break;
        }
        slot = (slot + 1) & mask_;
      }
    }
  }

  // Head entry index for the key, or -1.
  int32_t Find(uint64_t hash, const char* key, uint32_t len,
               const std::vector<KeyArena>& arenas) const {
    if (slots_.empty()) return -1;
    uint64_t slot = hash & mask_;
    for (;;) {
      int32_t head = slots_[slot];
      if (head < 0) return -1;
      const Entry& h = entries_[static_cast<size_t>(head)];
      if (h.hash == hash && h.len == len &&
          std::memcmp(arenas[h.lane].At(h.off), key, len) == 0) {
        return head;
      }
      slot = (slot + 1) & mask_;
    }
  }

  const Entry& entry(int32_t i) const {
    return entries_[static_cast<size_t>(i)];
  }

  uint64_t num_entries() const { return entries_.size(); }
  uint64_t distinct_keys() const { return distinct_keys_; }
  // Longest duplicate chain (the parallel analogue of the serial path's
  // max_bucket stat).
  uint64_t max_chain() const { return max_chain_; }

 private:
  bool KeysEqual(const Entry& a, const Entry& b,
                 const std::vector<KeyArena>& arenas) const {
    return a.len == b.len &&
           std::memcmp(arenas[a.lane].At(a.off), arenas[b.lane].At(b.off),
                       a.len) == 0;
  }

  std::vector<Entry> entries_;
  std::vector<int32_t> slots_;
  uint64_t mask_ = 0;
  uint64_t distinct_keys_ = 0;
  uint32_t max_chain_ = 0;
};

}  // namespace gsopt::exec

#endif  // GSOPT_EXEC_HASH_TABLE_H_
