// Internal: canonical byte-string encodings of value/row-id vectors, used as
// hash keys by joins, grouping, duplicate elimination and the generalized
// selection difference. The encoding is consistent with
// Value::IdentityEquals (NULL == NULL; 1 == 1.0 across int/double).
#ifndef GSOPT_EXEC_KEYS_H_
#define GSOPT_EXEC_KEYS_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "relational/tuple.h"
#include "relational/value.h"

namespace gsopt::exec {

inline void AppendValueKey(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->push_back('n');
      break;
    case ValueType::kInt:
      // Exact int64 digits: never routed through double, so adjacent
      // int64s past 2^53 keep distinct keys (matching IdentityEquals'
      // exact int-int comparison).
      out->push_back('i');
      out->append(std::to_string(v.AsInt()));
      break;
    case ValueType::kDouble: {
      // Doubles that are exactly an int64 within the 2^53 exact range
      // share the int encoding, so 1 == 1.0 across types (IdentityEquals'
      // numeric coercion); ExactInt64 maps -0.0 to 0, so -0.0 and +0.0 --
      // SQL-equal but distinct under %.17g ("-0" vs "0") -- share one key.
      // NaN gets a fixed tag byte: it fails every range check, and %.17g
      // renders it platform-dependently ("nan", "-nan", "nan(...)"), which
      // would split or merge NaN keys depending on libc. One tag keeps the
      // hash path consistent with CompareDoubles (NaN = NaN is TRUE).
      // Everything else gets a round-trippable %.17g (max_digits10)
      // encoding: std::to_string's fixed 6 fractional digits collapsed
      // distinct doubles (1e-9 vs 2e-9 -> "0.000000").
      double d = v.AsDouble();
      int64_t i = 0;
      if (ExactInt64(d, &i)) {
        out->push_back('i');
        out->append(std::to_string(i));
      } else if (std::isnan(d)) {
        out->push_back('N');
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out->push_back('d');
        out->append(buf);
      }
      break;
    }
    case ValueType::kString:
      out->push_back('s');
      out->append(std::to_string(v.AsString().size()));
      out->push_back(':');
      out->append(v.AsString());
      break;
  }
  out->push_back('|');
}

inline std::string EncodeValues(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) AppendValueKey(v, &key);
  return key;
}

// Encodes selected value columns and selected row-id columns of a tuple
// into `key` (cleared first). The Into form lets hot loops reuse one
// scratch string per lane instead of allocating per row.
inline void EncodeTupleKeyInto(const Tuple& t,
                               const std::vector<int>& value_idx,
                               const std::vector<int>& vid_idx,
                               std::string* key) {
  key->clear();
  for (int i : value_idx) AppendValueKey(t.values[i], key);
  key->push_back('#');
  for (int i : vid_idx) {
    key->append(std::to_string(t.vids[i]));
    key->push_back('|');
  }
}

inline std::string EncodeTupleKey(const Tuple& t,
                                  const std::vector<int>& value_idx,
                                  const std::vector<int>& vid_idx) {
  std::string key;
  EncodeTupleKeyInto(t, value_idx, vid_idx, &key);
  return key;
}

}  // namespace gsopt::exec

#endif  // GSOPT_EXEC_KEYS_H_
