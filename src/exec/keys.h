// Internal: canonical byte-string encodings of value/row-id vectors, used as
// hash keys by joins, grouping, duplicate elimination and the generalized
// selection difference. The encoding is consistent with
// Value::IdentityEquals (NULL == NULL; 1 == 1.0 across int/double).
#ifndef GSOPT_EXEC_KEYS_H_
#define GSOPT_EXEC_KEYS_H_

#include <string>
#include <vector>

#include "relational/tuple.h"
#include "relational/value.h"

namespace gsopt::exec {

inline void AppendValueKey(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->push_back('n');
      break;
    case ValueType::kInt:
    case ValueType::kDouble: {
      double d = v.AsDouble();
      int64_t i = static_cast<int64_t>(d);
      if (d == static_cast<double>(i)) {
        out->push_back('i');
        out->append(std::to_string(i));
      } else {
        out->push_back('d');
        out->append(std::to_string(d));
      }
      break;
    }
    case ValueType::kString:
      out->push_back('s');
      out->append(std::to_string(v.AsString().size()));
      out->push_back(':');
      out->append(v.AsString());
      break;
  }
  out->push_back('|');
}

inline std::string EncodeValues(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) AppendValueKey(v, &key);
  return key;
}

// Encodes selected value columns and selected row-id columns of a tuple.
inline std::string EncodeTupleKey(const Tuple& t,
                                  const std::vector<int>& value_idx,
                                  const std::vector<int>& vid_idx) {
  std::string key;
  for (int i : value_idx) AppendValueKey(t.values[i], &key);
  key.push_back('#');
  for (int i : vid_idx) {
    key.append(std::to_string(t.vids[i]));
    key.push_back('|');
  }
  return key;
}

}  // namespace gsopt::exec

#endif  // GSOPT_EXEC_KEYS_H_
