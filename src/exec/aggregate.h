// Generalized projection (GP) pi_{X, f(Y)} from [GUPT95], the paper's model
// of SQL GROUP BY: group on real attributes X (optionally also on virtual
// attributes, as Example 3.1's pi_{V3 r3 r1' r2', c=count(r1)} does) and
// compute aggregates. A GP with no aggregates models SELECT DISTINCT; a GP
// whose aggregates are all duplicate-insensitive is the paper's delta.
#ifndef GSOPT_EXEC_AGGREGATE_H_
#define GSOPT_EXEC_AGGREGATE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "exec/eval.h"
#include "relational/expr.h"
#include "relational/relation.h"

namespace gsopt::exec {

enum class AggFunc {
  kCountStar,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  // Counts rows whose virtual attribute (row id) for `presence_rel` is
  // non-null, i.e. rows to which that base relation actually contributed.
  // Aggregation pull-up through the null-supplying side of an outer join
  // uses this to distinguish real groups from padding-phantoms.
  kCountPresence,
  // Constant 1 for every group (a group has at least one input row by
  // construction). A pulled group-by keeps no row id for the view side
  // (synthetic_vid is off so resurrections deduplicate by value), so a
  // REAL group that is all-NULL on its group columns and aggregates would
  // be indistinguishable from outer-join padding above it. This flag rides
  // in the compensation's preserved group as the witness: padding nulls
  // it, real rows carry 1. Unlike kCountPresence its value never varies
  // across the cells of one original group, so value-keyed resurrection
  // dedup is unaffected.
  kGroupFlag,
};

std::string AggFuncName(AggFunc f);

// True for aggregates unaffected by duplicate input rows.
bool IsDuplicateInsensitive(AggFunc f, bool distinct);

struct AggSpec {
  AggFunc func = AggFunc::kCountStar;
  bool distinct = false;
  ScalarPtr input;           // null for COUNT(*) / kCountPresence
  std::string presence_rel;  // kCountPresence only
  std::string out_rel;       // qualifier of the output column (e.g. view name)
  std::string out_name;      // output column name

  std::string ToString() const;
};

struct GroupBySpec {
  std::vector<Attribute> group_cols;
  // Base relations whose virtual attribute participates in the group key;
  // these relations' row ids survive into the output's virtual schema.
  std::vector<std::string> group_vid_rels;
  std::vector<AggSpec> aggs;
  // Emit a synthetic row id (one per group, under the first aggregate's
  // qualifier) so compensations above can distinguish a real all-NULL
  // group row from outer-join padding. Normalization turns this off for
  // PULLED group-bys, whose per-cell rows must instead deduplicate by
  // value when a compensation resurrects the original groups.
  bool synthetic_vid = true;

  // delta vs pi in the paper's notation.
  bool IsDuplicateInsensitive() const;

  std::string ToString() const;
};

// Fallible: a spec naming an attribute, virtual attribute, or
// COUNT_PRESENT relation the input does not carry returns
// Status(kInvalidArgument); a resource budget on `ctx` is checked
// cooperatively while grouping.
StatusOr<Relation> GeneralizedProjection(const Relation& r,
                                         const GroupBySpec& spec,
                                         const ExecContext& ctx = {});

}  // namespace gsopt::exec

#endif  // GSOPT_EXEC_AGGREGATE_H_
