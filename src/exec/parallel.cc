// Morsel-parallel kernel paths. Each function here is the parallel twin of
// a serial kernel in eval.cc and must stay bag-equal to it (the property
// suite in tests/exec/parallel_exec_test.cc enforces this on randomized
// null-heavy inputs); only row order may differ.
//
// Shared structure of every kernel:
//   * the input is split into row-range morsels handed to lanes by the
//     pool's atomic cursor;
//   * each lane writes to private state (output Relation, matched flags,
//     OperatorStats scratch, reusable key buffer) -- nothing contended but
//     the budget's relaxed atomics;
//   * errors cooperate: a failing lane records its Status, raises a shared
//     cancel flag, and the other lanes drain their morsels without work;
//   * after the fan-in (a full synchronization point in ThreadPool), lane
//     outputs are spliced in lane order and counters merged once.
//
// The hash join is the partitioned build/probe design from hash_table.h:
// encode + hash each key once, radix-partition by high hash bits, build
// disjoint open-addressing tables in parallel, probe in morsels.
#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "exec/bloom.h"
#include "exec/columnar.h"
#include "exec/hash_table.h"
#include "exec/join_internal.h"
#include "exec/lane_control.h"
#include "exec/spill.h"
#include "relational/column_batch.h"

namespace gsopt::exec::internal {

namespace {

// Splices per-lane outputs (lane order) onto `out`.
void SpliceLanes(std::vector<Relation>* lanes, Relation* out) {
  for (Relation& lane : *lanes) out->AppendFrom(std::move(lane));
}

void MergeLaneStats(const ExecContext& ctx,
                    const std::vector<OperatorStats>& lane_stats) {
  if (ctx.stats == nullptr) return;
  for (const OperatorStats& s : lane_stats) ctx.stats->MergeCountersFrom(s);
}

constexpr uint64_t kMaxReserve = 1u << 20;

int64_t ClampReserve(uint64_t want) {
  return static_cast<int64_t>(std::min<uint64_t>(want, kMaxReserve));
}

}  // namespace

StatusOr<Relation> ParallelSelect(const Relation& r, const Predicate& p,
                                  const ExecContext& ctx) {
  if (ctx.fault != nullptr) {
    GSOPT_RETURN_IF_ERROR(
        ctx.fault->MaybeFail(FaultSite::kDispatch, "parallel-select"));
  }
  Executor& ex = *ctx.executor;
  const int lanes = ex.lanes();
  const size_t nlanes = static_cast<size_t>(lanes);
  std::vector<Relation> lane_out(nlanes, Relation(r.schema(), r.vschema()));
  std::vector<OperatorStats> lane_stats(nlanes);
  LaneControl control(lanes);

  // Morsels ARE batch ranges: unless batching is off, each morsel is
  // gathered columnar and run through the compiled filter, with per-lane
  // scratch buffers reused across a lane's morsels. The filter is compiled
  // once here and shared read-only by every lane.
  const bool batch = ctx.batch != BatchMode::kOff;
  CompiledFilter filter;
  if (batch) filter = CompileFilter(p, r.schema());
  std::vector<std::vector<Column>> lane_cols(nlanes);
  std::vector<std::vector<int32_t>> lane_sel(nlanes);

  ex.pool().ParallelFor(
      r.NumRows(), ex.morsel_rows(),
      [&](int lane, int64_t begin, int64_t end) {
        if (control.cancelled()) return;
        Relation& out = lane_out[static_cast<size_t>(lane)];
        OperatorStats& st = lane_stats[static_cast<size_t>(lane)];
        if (batch) {
          Status s = ctx.Tick("select");
          if (!s.ok()) return control.Fail(lane, std::move(s));
          std::vector<Column>& cols = lane_cols[static_cast<size_t>(lane)];
          std::vector<int32_t>& sel = lane_sel[static_cast<size_t>(lane)];
          GatherColumnsInto(r, filter.cols, begin, end, &cols);
          ApplyFilter(filter, r, begin, end - begin, cols, &sel);
          st.columnar = true;
          ++st.batches;
          st.residual_evals += static_cast<uint64_t>(end - begin);
          for (int32_t i : sel) out.Add(r.row(begin + i));
          if (!sel.empty()) {
            s = ctx.ChargeRows(static_cast<uint64_t>(sel.size()), "select");
            if (!s.ok()) return control.Fail(lane, std::move(s));
          }
          return;
        }
        for (int64_t i = begin; i < end; ++i) {
          Status s = ctx.Tick("select");
          if (!s.ok()) return control.Fail(lane, std::move(s));
          ++st.residual_evals;
          if (p.Satisfied(r.row(i), r.schema())) {
            out.Add(r.row(i));
            s = ctx.ChargeRows(1, "select");
            if (!s.ok()) return control.Fail(lane, std::move(s));
          }
        }
      });
  GSOPT_RETURN_IF_ERROR(control.First());

  Relation out(r.schema(), r.vschema());
  SpliceLanes(&lane_out, &out);
  MergeLaneStats(ctx, lane_stats);
  if (ctx.stats != nullptr) {
    ctx.stats->rows_in += static_cast<uint64_t>(r.NumRows());
    ctx.stats->rows_out += static_cast<uint64_t>(out.NumRows());
  }
  return out;
}

StatusOr<Relation> ParallelProduct(const Relation& a, const Relation& b,
                                   const ExecContext& ctx) {
  if (ctx.fault != nullptr) {
    GSOPT_RETURN_IF_ERROR(
        ctx.fault->MaybeFail(FaultSite::kDispatch, "parallel-product"));
  }
  Executor& ex = *ctx.executor;
  const int lanes = ex.lanes();
  Schema out_schema = Schema::Concat(a.schema(), b.schema());
  VirtualSchema out_vschema = VirtualSchema::Concat(a.vschema(), b.vschema());
  std::vector<Relation> lane_out(static_cast<size_t>(lanes),
                                 Relation(out_schema, out_vschema));
  LaneControl control(lanes);
  // Same bounded reservation policy as the serial kernel, spread over
  // lanes: full-size reservations would commit the whole product's memory
  // before the row cap or deadline can fire.
  uint64_t total = static_cast<uint64_t>(a.NumRows()) *
                   static_cast<uint64_t>(b.NumRows());
  for (Relation& lane : lane_out) {
    lane.Reserve(ClampReserve(total / static_cast<uint64_t>(lanes) + 1));
  }

  ex.pool().ParallelFor(
      a.NumRows(), ex.morsel_rows(),
      [&](int lane, int64_t begin, int64_t end) {
        if (control.cancelled()) return;
        Relation& out = lane_out[static_cast<size_t>(lane)];
        for (int64_t i = begin; i < end; ++i) {
          for (const Tuple& tb : b.rows()) {
            Status s = ctx.Tick("product");
            if (!s.ok()) return control.Fail(lane, std::move(s));
            out.Add(Tuple::Concat(a.row(i), tb));
            s = ctx.ChargeRows(1, "product");
            if (!s.ok()) return control.Fail(lane, std::move(s));
          }
        }
      });
  GSOPT_RETURN_IF_ERROR(control.First());

  Relation out(out_schema, out_vschema);
  SpliceLanes(&lane_out, &out);
  if (ctx.stats != nullptr) {
    ctx.stats->rows_in +=
        static_cast<uint64_t>(a.NumRows()) + static_cast<uint64_t>(b.NumRows());
    ctx.stats->rows_out += static_cast<uint64_t>(out.NumRows());
  }
  return out;
}

namespace {

// Partitioned parallel hash join: pass 1 encodes/hashes/partitions the
// build side, pass 2 builds disjoint per-partition tables, pass 3 probes
// in morsels.
StatusOr<JoinCoreResult> ParallelHashJoin(const Relation& a,
                                          const Relation& b,
                                          const HashPlan& plan,
                                          const ExecContext& ctx,
                                          JoinCoreResult res) {
  Executor& ex = *ctx.executor;
  const int lanes = ex.lanes();
  const size_t nlanes = static_cast<size_t>(lanes);

  // Power-of-two partition count >= 2*lanes, so pass 2 load-balances even
  // when hash skew empties some partitions.
  int parts = 16;
  while (parts < 2 * lanes) parts <<= 1;
  int log2_parts = 0;
  while ((1 << log2_parts) < parts) ++log2_parts;
  const int shift = 64 - log2_parts;

  std::vector<KeyArena> arenas(nlanes);
  std::vector<std::vector<std::vector<JoinHashTable::Entry>>> lane_parts(
      nlanes,
      std::vector<std::vector<JoinHashTable::Entry>>(
          static_cast<size_t>(parts)));
  std::vector<OperatorStats> lane_stats(nlanes);

  // Batched key encoding: when the keys are plain columns (and batching is
  // not off), each morsel gathers its key columns once and encodes binary
  // keys from the typed arrays instead of evaluating scalars by name per
  // row. Build and probe share the decision, so both sides always use one
  // encoding; the spill fallback re-encodes internally and is unaffected.
  const bool batch = ctx.batch != BatchMode::kOff &&
                     ColumnarJoinEligible(plan, a.schema(), b.schema());
  std::vector<int> a_key_cols, b_key_cols;
  if (batch) {
    for (const ScalarPtr& k : plan.a_keys) {
      a_key_cols.push_back(a.schema().Find(k->rel(), k->name()));
    }
    for (const ScalarPtr& k : plan.b_keys) {
      b_key_cols.push_back(b.schema().Find(k->rel(), k->name()));
    }
  }
  std::vector<std::vector<Column>> lane_kcols(nlanes);
  // Per-lane ledgers for build-state bytes (arena keys + entries, then the
  // pass-2 table slots); released by destruction on every exit path. A
  // memory-cap trip in any lane raises mem_trip so the fan-in can tell a
  // survivable overflow (degrade to the serial out-of-core join) from a
  // deadline or row-cap failure (propagate).
  std::vector<OpMemory> lane_mem;
  lane_mem.reserve(nlanes);
  for (size_t l = 0; l < nlanes; ++l) lane_mem.emplace_back(ctx);
  std::atomic<bool> mem_trip{false};
  LaneControl control(lanes);

  // Bloom-filter sideways information passing: each lane fills a private
  // filter during pass 1 (same geometry, so blocks line up), the
  // coordinator ORs them into one after the build fan-in, and pass 3
  // consults the merged filter before any table probe. All nlanes+1
  // filters are charged up front on their own reservation; a failed
  // charge just runs the join filter-free. The parallel probe needs the
  // larger kAuto floor: in-flight morsels already hide lookup latency,
  // so a 16K probe side loses to the (lanes + 1) filter builds + merge.
  BloomFilter bloom;
  std::vector<BloomFilter> lane_bloom(nlanes);
  OpMemory bloom_mem(ctx);
  const bool bloom_on =
      ctx.Bloom(b.NumRows(), a.NumRows()) &&
      (ctx.bloom == BloomMode::kForce ||
       a.NumRows() >= kMinBloomProbeRowsParallel) &&
      bloom_mem
          .Charge(BloomFilter::BytesFor(b.NumRows()) * (nlanes + 1), "join")
          .ok();
  if (bloom_on) {
    for (BloomFilter& f : lane_bloom) f.Init(b.NumRows());
  }

  // Pass 1: build-side encode + hash + partition.
  ex.pool().ParallelFor(
      b.NumRows(), ex.morsel_rows(),
      [&](int lane, int64_t begin, int64_t end) {
        if (control.cancelled()) return;
        KeyArena& arena = arenas[static_cast<size_t>(lane)];
        auto& my_parts = lane_parts[static_cast<size_t>(lane)];
        OperatorStats& st = lane_stats[static_cast<size_t>(lane)];
        OpMemory& mem = lane_mem[static_cast<size_t>(lane)];
        std::vector<Column>* kc = nullptr;
        if (batch) {
          Status s = ctx.Tick("join");
          if (!s.ok()) return control.Fail(lane, std::move(s));
          kc = &lane_kcols[static_cast<size_t>(lane)];
          GatherColumnsInto(b, b_key_cols, begin, end, kc);
          st.columnar = true;
          ++st.batches;
        }
        std::string key;
        for (int64_t j = begin; j < end; ++j) {
          Status s;
          bool key_ok;
          if (batch) {
            key.clear();
            key_ok = AppendBatchKey(*kc, j - begin, &key);
          } else {
            s = ctx.Tick("join");
            if (!s.ok()) return control.Fail(lane, std::move(s));
            key_ok = EncodeKeys(plan.b_keys, b.row(j), b.schema(), &key);
          }
          if (!key_ok) {
            ++st.null_key_skips;
            continue;
          }
          s = mem.Charge(key.size() + sizeof(JoinHashTable::Entry), "join");
          if (!s.ok()) {
            mem_trip.store(true, std::memory_order_relaxed);
            return control.Fail(lane, std::move(s));
          }
          uint64_t h = HashKeyBytes(key);
          if (bloom_on) lane_bloom[static_cast<size_t>(lane)].Insert(h);
          uint64_t off = arena.Append(key);
          my_parts[h >> shift].push_back(JoinHashTable::Entry{
              h, off, static_cast<uint32_t>(key.size()),
              static_cast<uint32_t>(lane), j, -1});
          ++st.build_rows;
        }
      });
  Status pass1 = control.First();
  // Pass-2 table slots are charged up front from the coordinating thread
  // (per entry: its copy into the combined vector plus ~2 open-addressing
  // slots at the table's load factor).
  OpMemory pass2_mem(ctx);
  if (pass1.ok()) {
    uint64_t entries_total = 0;
    for (const auto& lp : lane_parts) {
      for (const auto& v : lp) entries_total += v.size();
    }
    Status s = pass2_mem.Charge(
        entries_total * (sizeof(JoinHashTable::Entry) + 16), "join");
    if (!s.ok()) {
      mem_trip.store(true, std::memory_order_relaxed);
      pass1 = std::move(s);
    }
  }
  if (!pass1.ok()) {
    if (!mem_trip.load(std::memory_order_relaxed) || !ctx.SpillEnabled()) {
      return pass1;
    }
    // Degrade out-of-core: drop the parallel build state (and its charges)
    // and hand the whole join to the serial grace path. rows_in was
    // already recorded by ParallelJoinCore; SpillJoinCore leaves it alone.
    for (OpMemory& m : lane_mem) m.Release();
    pass2_mem.Release();
    bloom_mem.Release();
    arenas.clear();
    lane_parts.clear();
    return SpillJoinCore(a, b, plan, ctx);
  }

  // OR the per-lane filters into one for the probe pass. Every lane filter
  // was sized from the same row count, so the geometries match.
  if (bloom_on) {
    bloom.Init(b.NumRows());
    for (const BloomFilter& f : lane_bloom) bloom.MergeFrom(f);
  }

  // Pass 2: build one open-addressing table per partition. Partitions are
  // disjoint, so this fans out with morsel size 1.
  std::vector<JoinHashTable> tables(static_cast<size_t>(parts));
  ex.pool().ParallelFor(
      parts, 1, [&](int /*lane*/, int64_t begin, int64_t end) {
        for (int64_t p = begin; p < end; ++p) {
          size_t total = 0;
          for (const auto& lp : lane_parts) {
            total += lp[static_cast<size_t>(p)].size();
          }
          std::vector<JoinHashTable::Entry> entries;
          entries.reserve(total);
          for (const auto& lp : lane_parts) {
            const auto& v = lp[static_cast<size_t>(p)];
            entries.insert(entries.end(), v.begin(), v.end());
          }
          tables[static_cast<size_t>(p)].Build(std::move(entries), arenas);
        }
      });

  // Build-side bucket statistics drive a bounded output reservation: the
  // expected match count is probe_rows * (build_rows / distinct_keys),
  // clamped like the Product reservation so a hot key cannot commit
  // unbounded memory up front.
  uint64_t build_total = 0, distinct_total = 0, max_chain = 0;
  for (const JoinHashTable& t : tables) {
    build_total += t.num_entries();
    distinct_total += t.distinct_keys();
    max_chain = std::max(max_chain, t.max_chain());
  }
  if (ctx.stats != nullptr) {
    ctx.stats->hash_path = true;
    ctx.stats->max_bucket = std::max(ctx.stats->max_bucket, max_chain);
    if (bloom_on) ctx.stats->bloom = true;
  }
  uint64_t expected = 0;
  if (distinct_total > 0) {
    expected = static_cast<uint64_t>(a.NumRows()) *
               std::max<uint64_t>(1, build_total / distinct_total);
  }

  Schema out_schema = res.out.schema();
  std::vector<Relation> lane_out(
      nlanes, Relation(res.out.schema(), res.out.vschema()));
  if (expected > 0) {
    for (Relation& lane : lane_out) {
      lane.Reserve(
          ClampReserve(expected / static_cast<uint64_t>(lanes) + 1));
    }
  }
  std::vector<std::vector<char>> lane_b_matched(
      nlanes, std::vector<char>(static_cast<size_t>(b.NumRows()), 0));
  Predicate residual(plan.residual);
  const bool has_residual = !plan.residual.empty();

  // Pass 3: probe in morsels. a_matched rows are owned by exactly one
  // lane; b_matched is per-lane and OR-merged after the fan-in.
  ex.pool().ParallelFor(
      a.NumRows(), ex.morsel_rows(),
      [&](int lane, int64_t begin, int64_t end) {
        if (control.cancelled()) return;
        Relation& out = lane_out[static_cast<size_t>(lane)];
        OperatorStats& st = lane_stats[static_cast<size_t>(lane)];
        std::vector<char>& bm = lane_b_matched[static_cast<size_t>(lane)];
        std::vector<Column>* kc = nullptr;
        if (batch) {
          Status s = ctx.Tick("join");
          if (!s.ok()) return control.Fail(lane, std::move(s));
          kc = &lane_kcols[static_cast<size_t>(lane)];
          GatherColumnsInto(a, a_key_cols, begin, end, kc);
          st.columnar = true;
          ++st.batches;
        }
        std::string key;
        for (int64_t i = begin; i < end; ++i) {
          Status s;
          bool key_ok;
          if (batch) {
            key.clear();
            key_ok = AppendBatchKey(*kc, i - begin, &key);
          } else {
            s = ctx.Tick("join");
            if (!s.ok()) return control.Fail(lane, std::move(s));
            key_ok = EncodeKeys(plan.a_keys, a.row(i), a.schema(), &key);
          }
          if (!key_ok) {
            ++st.null_key_skips;
            continue;
          }
          ++st.probe_rows;
          uint64_t h = HashKeyBytes(key);
          if (bloom_on) {
            ++st.bloom_checks;
            if (!bloom.MayContain(h)) {
              ++st.bloom_rejects;
              continue;
            }
          }
          const JoinHashTable& table = tables[h >> shift];
          int32_t e = table.Find(h, key.data(),
                                 static_cast<uint32_t>(key.size()), arenas);
          if (bloom_on && e < 0) ++st.bloom_false_positives;
          for (; e >= 0; e = table.entry(e).next) {
            s = ctx.Tick("join");
            if (!s.ok()) return control.Fail(lane, std::move(s));
            int64_t j = table.entry(e).row;
            ++st.residual_evals;
            if (!has_residual) {
              // No residual: build the output row in place (same fast
              // append as the serial columnar probe).
              res.a_matched[static_cast<size_t>(i)] = 1;
              bm[static_cast<size_t>(j)] = 1;
              out.AddConcat(a.row(i), b.row(j));
              s = ctx.ChargeRows(1, "join");
              if (!s.ok()) return control.Fail(lane, std::move(s));
              continue;
            }
            Tuple t = Tuple::Concat(a.row(i), b.row(j));
            if (residual.Satisfied(t, out_schema)) {
              res.a_matched[static_cast<size_t>(i)] = 1;
              bm[static_cast<size_t>(j)] = 1;
              out.Add(std::move(t));
              s = ctx.ChargeRows(1, "join");
              if (!s.ok()) return control.Fail(lane, std::move(s));
            }
          }
        }
      });
  GSOPT_RETURN_IF_ERROR(control.First());

  SpliceLanes(&lane_out, &res.out);
  for (const std::vector<char>& bm : lane_b_matched) {
    for (size_t j = 0; j < bm.size(); ++j) {
      if (bm[j]) res.b_matched[j] = 1;
    }
  }
  MergeLaneStats(ctx, lane_stats);
  return res;
}

// Parallel nested loops for predicates with no separable equi-conjunct:
// morsels over the outer side, full inner scan per row.
StatusOr<JoinCoreResult> ParallelNestedLoopJoin(const Relation& a,
                                                const Relation& b,
                                                const Predicate& p,
                                                const ExecContext& ctx,
                                                JoinCoreResult res) {
  Executor& ex = *ctx.executor;
  const int lanes = ex.lanes();
  const size_t nlanes = static_cast<size_t>(lanes);
  Schema out_schema = res.out.schema();
  std::vector<Relation> lane_out(
      nlanes, Relation(res.out.schema(), res.out.vschema()));
  std::vector<std::vector<char>> lane_b_matched(
      nlanes, std::vector<char>(static_cast<size_t>(b.NumRows()), 0));
  std::vector<OperatorStats> lane_stats(nlanes);
  LaneControl control(lanes);

  ex.pool().ParallelFor(
      a.NumRows(), ex.morsel_rows(),
      [&](int lane, int64_t begin, int64_t end) {
        if (control.cancelled()) return;
        Relation& out = lane_out[static_cast<size_t>(lane)];
        OperatorStats& st = lane_stats[static_cast<size_t>(lane)];
        std::vector<char>& bm = lane_b_matched[static_cast<size_t>(lane)];
        for (int64_t i = begin; i < end; ++i) {
          for (int64_t j = 0; j < b.NumRows(); ++j) {
            Status s = ctx.Tick("join");
            if (!s.ok()) return control.Fail(lane, std::move(s));
            Tuple t = Tuple::Concat(a.row(i), b.row(j));
            ++st.residual_evals;
            if (p.Satisfied(t, out_schema)) {
              res.a_matched[static_cast<size_t>(i)] = 1;
              bm[static_cast<size_t>(j)] = 1;
              out.Add(std::move(t));
              s = ctx.ChargeRows(1, "join");
              if (!s.ok()) return control.Fail(lane, std::move(s));
            }
          }
        }
      });
  GSOPT_RETURN_IF_ERROR(control.First());

  SpliceLanes(&lane_out, &res.out);
  for (const std::vector<char>& bm : lane_b_matched) {
    for (size_t j = 0; j < bm.size(); ++j) {
      if (bm[j]) res.b_matched[j] = 1;
    }
  }
  MergeLaneStats(ctx, lane_stats);
  return res;
}

}  // namespace

StatusOr<JoinCoreResult> ParallelJoinCore(const Relation& a,
                                          const Relation& b,
                                          const HashPlan& plan,
                                          const Predicate& p,
                                          const ExecContext& ctx) {
  if (ctx.fault != nullptr) {
    GSOPT_RETURN_IF_ERROR(
        ctx.fault->MaybeFail(FaultSite::kDispatch, "parallel-join"));
  }
  JoinCoreResult res;
  res.out = Relation(Schema::Concat(a.schema(), b.schema()),
                     VirtualSchema::Concat(a.vschema(), b.vschema()));
  res.a_matched.assign(static_cast<size_t>(a.NumRows()), 0);
  res.b_matched.assign(static_cast<size_t>(b.NumRows()), 0);
  if (ctx.stats != nullptr) {
    ctx.stats->rows_in +=
        static_cast<uint64_t>(a.NumRows()) + static_cast<uint64_t>(b.NumRows());
  }
  if (plan.usable()) {
    return ParallelHashJoin(a, b, plan, ctx, std::move(res));
  }
  return ParallelNestedLoopJoin(a, b, p, ctx, std::move(res));
}

Status ParallelGsResurrect(const Relation& r, const GroupIndex& gi,
                           const std::unordered_set<std::string>& surviving,
                           Relation* out, const ExecContext& ctx) {
  if (ctx.fault != nullptr) {
    GSOPT_RETURN_IF_ERROR(
        ctx.fault->MaybeFail(FaultSite::kDispatch, "parallel-gs"));
  }
  Executor& ex = *ctx.executor;
  const int lanes = ex.lanes();
  const size_t nlanes = static_cast<size_t>(lanes);

  // Candidate = first row (per lane) of a group key that survived nowhere.
  // Lanes dedupe locally; the serial fan-in dedupes across lanes, so each
  // missing key resurrects exactly one tuple -- same bag as the serial
  // difference, which also keys dedup on the encoded group projection.
  struct Candidate {
    std::string key;
    int64_t row;
  };
  std::vector<std::vector<Candidate>> lane_cands(nlanes);
  LaneControl control(lanes);

  ex.pool().ParallelFor(
      r.NumRows(), ex.morsel_rows(),
      [&](int lane, int64_t begin, int64_t end) {
        if (control.cancelled()) return;
        std::vector<Candidate>& cands =
            lane_cands[static_cast<size_t>(lane)];
        std::unordered_set<std::string> added;
        std::string key;
        for (int64_t i = begin; i < end; ++i) {
          Status s = ctx.Tick("generalized-selection");
          if (!s.ok()) return control.Fail(lane, std::move(s));
          const Tuple& t = r.row(i);
          if (GroupPartAllNull(t, gi)) continue;
          EncodeTupleKeyInto(t, gi.value_idx, gi.vid_idx, &key);
          if (surviving.count(key) || added.count(key)) continue;
          added.insert(key);
          cands.push_back(Candidate{key, i});
        }
      });
  GSOPT_RETURN_IF_ERROR(control.First());

  std::unordered_set<std::string> added;
  for (std::vector<Candidate>& cands : lane_cands) {
    for (Candidate& c : cands) {
      if (!added.insert(std::move(c.key)).second) continue;
      out->Add(PadGroupTuple(r.row(c.row), gi, *out));
      GSOPT_RETURN_IF_ERROR(
          ctx.ChargeRows(1, "generalized-selection"));
    }
  }
  return Status::OK();
}

}  // namespace gsopt::exec::internal
