// Executor kernels for every operator the paper uses:
// cartesian product, selection, projection, inner / left / right / full
// outer join, anti and semi join, outer union, generalized selection (GS,
// Definition 2.1), and MGOJ (implemented as GS over a product with a hash
// fast path, per the paper's remark that GS ~ MGOJ/GOJ operationally).
//
// Joins use a hash path on the equi-conjuncts of the predicate whose sides
// separate cleanly across the two inputs, with any residual conjuncts
// evaluated per candidate pair; otherwise they fall back to nested loops.
#ifndef GSOPT_EXEC_EVAL_H_
#define GSOPT_EXEC_EVAL_H_

#include <set>
#include <string>
#include <vector>

#include "relational/expr.h"
#include "relational/relation.h"

namespace gsopt::exec {

// A preserved-relation spec for generalized selection: the set of base
// relation names forming one r_i of sigma*_p[r_1,...,r_n](r).
using PreservedGroup = std::set<std::string>;

Relation Product(const Relation& a, const Relation& b);

Relation Select(const Relation& r, const Predicate& p);

// Duplicate-preserving projection onto the given real attributes. The
// virtual schema is restricted to base relations fully covered by `attrs`.
Relation Project(const Relation& r, const std::vector<Attribute>& attrs);

// Projection with renaming: output column i is named `out[i]`, sourced
// from `src[i]`. Virtual attributes are dropped (renamed outputs no longer
// correspond to base-relation provenance).
Relation ProjectAs(const Relation& r, const std::vector<Attribute>& src,
                   const std::vector<Attribute>& out);

Relation InnerJoin(const Relation& a, const Relation& b, const Predicate& p);
Relation LeftOuterJoin(const Relation& a, const Relation& b,
                       const Predicate& p);
Relation RightOuterJoin(const Relation& a, const Relation& b,
                        const Predicate& p);
Relation FullOuterJoin(const Relation& a, const Relation& b,
                       const Predicate& p);
// r_a |> r_b : tuples of a with no match in b (schema of a).
Relation AntiJoin(const Relation& a, const Relation& b, const Predicate& p);
// Tuples of a with at least one match in b (schema of a).
Relation SemiJoin(const Relation& a, const Relation& b, const Predicate& p);

// Outer union (paper §1.2): schema is the union of schemas (matched by
// qualified attribute name); rows padded with NULLs for missing attributes.
Relation OuterUnion(const Relation& a, const Relation& b);

// Generalized selection sigma*_p[groups](r), Definition 2.1:
//   E' = sigma_p(r)  (+)_i  ( pi_{Ri,Vi}(r) - pi_{Ri,Vi}(sigma_p(r)) )
// Each group names the base relations of one preserved r_i; groups must be
// pairwise disjoint. The result has r's schema; resurrected tuples keep the
// group's columns/row-ids and are NULL elsewhere.
Relation GeneralizedSelection(const Relation& r, const Predicate& p,
                              const std::vector<PreservedGroup>& groups);

// MGOJ[groups, p](a, b): binary modified generalized outer join; equal to
// GeneralizedSelection(Product(a, b), p, groups) but avoids materializing
// the product.
Relation Mgoj(const Relation& a, const Relation& b, const Predicate& p,
              const std::vector<PreservedGroup>& groups);

}  // namespace gsopt::exec

#endif  // GSOPT_EXEC_EVAL_H_
