// Executor kernels for every operator the paper uses:
// cartesian product, selection, projection, inner / left / right / full
// outer join, anti and semi join, outer union, generalized selection (GS,
// Definition 2.1), and MGOJ (implemented as GS over a product with a hash
// fast path, per the paper's remark that GS ~ MGOJ/GOJ operationally).
//
// Joins use a hash path on the equi-conjuncts of the predicate whose sides
// separate cleanly across the two inputs, with any residual conjuncts
// evaluated per candidate pair; otherwise they fall back to nested loops.
//
// Every kernel is fallible: user-reachable input mismatches (a projection
// or group-by naming an attribute the input does not carry, overlapping
// preserved groups, an unknown COUNT_PRESENT relation) return
// Status(kInvalidArgument) instead of aborting, and when an ExecContext
// carries a ResourceBudget the row-producing loops check it cooperatively
// and return Status(kResourceExhausted) mid-production rather than
// materializing an unbounded result. GSOPT_CHECK remains only for
// genuinely internal invariants.
#ifndef GSOPT_EXEC_EVAL_H_
#define GSOPT_EXEC_EVAL_H_

#include <set>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/fault_injector.h"
#include "base/status.h"
#include "exec/bloom.h"
#include "exec/executor.h"
#include "exec/stats.h"
#include "relational/expr.h"
#include "relational/relation.h"

namespace gsopt::exec {

// A preserved-relation spec for generalized selection: the set of base
// relation names forming one r_i of sigma*_p[r_1,...,r_n](r).
using PreservedGroup = std::set<std::string>;

// Out-of-core degradation policy. When enabled, a hash join or aggregation
// that trips the ResourceBudget memory cap radix-partitions its state into
// SpillFile runs and processes the partitions one at a time, recursing on
// partitions that still do not fit (exec/spill.cc). Disabled, a memory
// trip surfaces as kResourceExhausted naming the memory cap.
struct SpillConfig {
  bool enabled = false;
  // Directory for temp runs; empty uses the system temp dir.
  std::string dir;
  // Radix fan-out per partitioning level.
  int partitions = 8;
  // Levels of repartitioning before the join falls back to block-chunked
  // processing (identical-key skew cannot be split by rehashing).
  int max_recursion = 3;
};

// Batch-execution policy for the columnar kernel paths (exec/columnar.h).
// kAuto takes the columnar path for vectorizable shapes once the input is
// large enough to amortize the gather; kOff pins the tuple-at-a-time
// reference kernels (the differential-testing baseline); kForce takes the
// columnar path whenever the shape allows regardless of size (so tests can
// exercise it on tiny inputs).
enum class BatchMode : uint8_t { kAuto = 0, kOff = 1, kForce = 2 };

// kAuto threshold: below this many input rows the per-batch setup (filter
// compilation, column gathers) costs more than it saves, and small unit
// tests keep the reference kernels' row order.
inline constexpr int64_t kMinColumnarRows = 128;

// Physical join-strategy policy. kAuto follows the per-node hints the
// order-aware optimizer pass stamps on join nodes (hash when unhinted);
// kHashOnly pins every join to the hash/nested-loop paths (the
// differential-testing baseline); kMergeOnly forces the sort-merge path on
// every join with usable equi-keys -- and routes aggregation through the
// sort-based feed -- so the merge-vs-hash oracle can exercise the whole
// sort-based stack on any query.
enum class JoinStrategy : uint8_t { kAuto = 0, kHashOnly = 1, kMergeOnly = 2 };

// Per-invocation execution context threaded into every kernel. Default
// constructed it is a no-op (unlimited budget, no stats), so direct kernel
// calls in tests and benches stay terse.
struct ExecContext {
  ResourceBudget* budget = nullptr;
  // When non-null, the kernel records its runtime counters (rows in/out,
  // hash build/probe behaviour, NULL-key skips, residual evaluations)
  // here. Null costs one pointer test per update site.
  OperatorStats* stats = nullptr;
  // When non-null with more than one lane, large inputs take the
  // morsel-parallel kernel paths (partitioned hash join, parallel select /
  // product / GS-difference / aggregation). Null -- the default -- runs
  // the serial reference kernels. Results are bag-equal either way; only
  // row order may differ. The budget (if any) is charged from all lanes;
  // ResourceBudget's probes are thread-safe.
  Executor* executor = nullptr;
  // Chaos harness hook: when non-null, kernels probe it at allocation,
  // spill-I/O, budget-check and dispatch points (base/fault_injector.h).
  FaultInjector* fault = nullptr;
  // Out-of-core policy; null or !enabled means memory trips are fatal.
  const SpillConfig* spill = nullptr;
  // Columnar batch-execution policy (see BatchMode above).
  BatchMode batch = BatchMode::kAuto;
  // Bloom-filter sideways-information-passing policy for the hash-join
  // paths (exec/bloom.h). kAuto activates per join from the build/probe
  // cardinality ratio; kOff pins every join filter-free; kForce always
  // builds the filter when a hash path runs.
  BloomMode bloom = BloomMode::kAuto;
  // Physical join-strategy policy (see JoinStrategy above).
  JoinStrategy join = JoinStrategy::kAuto;
  // Per-node hint from the plan: the order-aware optimizer marks join
  // nodes whose sort-merge execution pays for itself (interesting orders);
  // the interpreter copies the mark here. Only consulted under kAuto.
  bool merge_hint = false;

  Status ChargeRows(uint64_t n, const char* stage) const {
    if (budget == nullptr) return Status::OK();
    return budget->ChargeRows(n, stage);
  }
  Status Tick(const char* stage) const {
    if (fault != nullptr) {
      GSOPT_RETURN_IF_ERROR(fault->MaybeFail(FaultSite::kBudgetCheck, stage));
    }
    if (budget == nullptr) return Status::OK();
    return budget->CheckDeadline(stage);
  }
  // Charges operator-state bytes, probing the alloc fault site first.
  // Kernels route every charge through a MemoryReservation so error paths
  // release by construction; this helper exists for the reservation and
  // for one-shot probes.
  Status ChargeMemory(uint64_t n, const char* stage) const {
    if (fault != nullptr) {
      GSOPT_RETURN_IF_ERROR(fault->MaybeFail(FaultSite::kAlloc, stage));
    }
    if (budget == nullptr) return Status::OK();
    return budget->ChargeMemory(n, stage);
  }
  bool SpillEnabled() const { return spill != nullptr && spill->enabled; }
  // True when `rows` input rows should take a parallel kernel path.
  bool Parallel(int64_t rows) const {
    return executor != nullptr && executor->lanes() > 1 &&
           rows >= executor->min_parallel_rows();
  }
  // True when `rows` input rows should take a columnar kernel path (the
  // kernel still verifies the operator shape is vectorizable).
  bool Columnar(int64_t rows) const {
    if (batch == BatchMode::kOff) return false;
    if (batch == BatchMode::kForce) return true;
    return rows >= kMinColumnarRows;
  }
  // True when a hash join with these build/probe cardinalities should
  // build a bloom filter on its build side (exec/bloom.h BloomEligible).
  // Callers must still charge the filter's memory and degrade to
  // filter-off when the charge fails.
  bool Bloom(int64_t build_rows, int64_t probe_rows) const {
    return BloomEligible(bloom, build_rows, probe_rows);
  }
  // True when a join with usable equi-keys should take the sort-merge
  // path (exec/sort.cc MergeJoinCore) instead of the hash paths.
  bool MergeJoin() const {
    if (join == JoinStrategy::kMergeOnly) return true;
    if (join == JoinStrategy::kHashOnly) return false;
    return merge_hint;
  }
  // True when aggregation should take the sort-based feed: kMergeOnly
  // pins the whole sort-based stack for differential testing.
  bool SortedAggregation() const { return join == JoinStrategy::kMergeOnly; }
};

// MemoryReservation bound to an ExecContext: charges probe the alloc fault
// site and the budget's memory cap, and the destructor releases whatever
// was charged. One per operator (or per lane in parallel kernels; not
// thread-safe across lanes).
class OpMemory {
 public:
  OpMemory() = default;
  explicit OpMemory(const ExecContext& ctx)
      : ctx_(&ctx), reservation_(ctx.budget) {}

  Status Charge(uint64_t n, const char* stage) {
    if (ctx_ != nullptr && ctx_->fault != nullptr) {
      GSOPT_RETURN_IF_ERROR(
          ctx_->fault->MaybeFail(FaultSite::kAlloc, stage));
    }
    return reservation_.Charge(n, stage);
  }
  void Release() { reservation_.Release(); }
  uint64_t bytes() const { return reservation_.bytes(); }

 private:
  const ExecContext* ctx_ = nullptr;
  MemoryReservation reservation_;
};

StatusOr<Relation> Product(const Relation& a, const Relation& b,
                           const ExecContext& ctx = {});

StatusOr<Relation> Select(const Relation& r, const Predicate& p,
                          const ExecContext& ctx = {});

// Duplicate-preserving projection onto the given real attributes. The
// virtual schema is restricted to base relations fully covered by `attrs`.
StatusOr<Relation> Project(const Relation& r,
                           const std::vector<Attribute>& attrs,
                           const ExecContext& ctx = {});

// Projection with renaming: output column i is named `out[i]`, sourced
// from `src[i]`. Virtual attributes are dropped (renamed outputs no longer
// correspond to base-relation provenance).
StatusOr<Relation> ProjectAs(const Relation& r,
                             const std::vector<Attribute>& src,
                             const std::vector<Attribute>& out,
                             const ExecContext& ctx = {});

StatusOr<Relation> InnerJoin(const Relation& a, const Relation& b,
                             const Predicate& p, const ExecContext& ctx = {});
StatusOr<Relation> LeftOuterJoin(const Relation& a, const Relation& b,
                                 const Predicate& p,
                                 const ExecContext& ctx = {});
StatusOr<Relation> RightOuterJoin(const Relation& a, const Relation& b,
                                  const Predicate& p,
                                  const ExecContext& ctx = {});
StatusOr<Relation> FullOuterJoin(const Relation& a, const Relation& b,
                                 const Predicate& p,
                                 const ExecContext& ctx = {});
// r_a |> r_b : tuples of a with no match in b (schema of a).
StatusOr<Relation> AntiJoin(const Relation& a, const Relation& b,
                            const Predicate& p, const ExecContext& ctx = {});
// Tuples of a with at least one match in b (schema of a).
StatusOr<Relation> SemiJoin(const Relation& a, const Relation& b,
                            const Predicate& p, const ExecContext& ctx = {});

// Outer union (paper §1.2): schema is the union of schemas (matched by
// qualified attribute name); rows padded with NULLs for missing attributes.
StatusOr<Relation> OuterUnion(const Relation& a, const Relation& b,
                              const ExecContext& ctx = {});

// Generalized selection sigma*_p[groups](r), Definition 2.1:
//   E' = sigma_p(r)  (+)_i  ( pi_{Ri,Vi}(r) - pi_{Ri,Vi}(sigma_p(r)) )
// Each group names the base relations of one preserved r_i; groups must be
// pairwise disjoint. The result has r's schema; resurrected tuples keep the
// group's columns/row-ids and are NULL elsewhere.
StatusOr<Relation> GeneralizedSelection(
    const Relation& r, const Predicate& p,
    const std::vector<PreservedGroup>& groups, const ExecContext& ctx = {});

// MGOJ[groups, p](a, b): binary modified generalized outer join; equal to
// GeneralizedSelection(Product(a, b), p, groups) but avoids materializing
// the product.
StatusOr<Relation> Mgoj(const Relation& a, const Relation& b,
                        const Predicate& p,
                        const std::vector<PreservedGroup>& groups,
                        const ExecContext& ctx = {});

}  // namespace gsopt::exec

#endif  // GSOPT_EXEC_EVAL_H_
