// OperatorStats: per-operator runtime observability for the executor.
//
// Every kernel in exec/ records what it actually did -- rows consumed and
// produced, hash-table build/probe behaviour, NULL-key skips under 3VL,
// residual-predicate evaluations -- into the OperatorStats node carried by
// its ExecContext. The interpreter (algebra/execute.cc) mirrors the plan
// tree with a stats tree and adds wall-clock time per operator, so an
// executed plan can be rendered as EXPLAIN ANALYZE (algebra/explain.h)
// with estimated-vs-actual cardinalities and a q-error summary.
//
// Collection is strictly opt-in: an ExecContext whose stats pointer is
// null costs the kernels one pointer test per (batch of) counter updates,
// so governed production execution pays nothing measurable (see
// bench_gs_cost's BM_InnerJoinWithStats / BM_InnerJoin pair).
#ifndef GSOPT_EXEC_STATS_H_
#define GSOPT_EXEC_STATS_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gsopt::exec {

struct OperatorStats {
  // Operator label, e.g. "LOJ" or "scan r1"; filled by whoever builds the
  // tree (the interpreter uses OpKindName, direct kernel callers may leave
  // it empty).
  std::string op;

  // Universal counters (every kernel).
  uint64_t rows_in = 0;    // input tuples consumed (both sides for binaries)
  uint64_t rows_out = 0;   // output tuples produced

  // Columnar-path counters (exec/columnar.cc): set when the operator ran
  // batch-at-a-time; `batches` counts kBatchRows-row batches processed
  // (build and probe batches both, for joins).
  bool columnar = false;
  uint64_t batches = 0;

  // Hash-path counters (join kernels; zero on the nested-loop path).
  bool hash_path = false;
  uint64_t build_rows = 0;      // tuples inserted into the hash table
  uint64_t probe_rows = 0;      // probe-side tuples hashed
  uint64_t max_bucket = 0;      // largest bucket chain seen during build
  uint64_t null_key_skips = 0;  // rows skipped because an equi-key was NULL
  uint64_t residual_evals = 0;  // residual-predicate evaluations

  // Bloom-SIP counters (exec/bloom.h): set when the join built a
  // build-side filter and consulted it before probe lookups (or, on the
  // spill path, before probe rows were partitioned to disk). A reject is a
  // definite non-match skipped without touching the table; a false
  // positive is a filter pass that then missed the table.
  bool bloom = false;
  uint64_t bloom_checks = 0;
  uint64_t bloom_rejects = 0;
  uint64_t bloom_false_positives = 0;

  // Sort / merge-join counters (exec/sort.cc). `merge_path` marks a join
  // that ran sort-merge instead of hash; `sort_rows` counts rows sorted
  // (by the Sort operator or a merge join's key-sort phase);
  // `sort_runs` counts spilled runs when the sort went external and
  // `sort_merge_passes` extra fan-in-limited merge rounds past the first.
  bool merge_path = false;
  uint64_t sort_rows = 0;
  uint64_t sort_runs = 0;
  uint64_t sort_merge_passes = 0;

  // Out-of-core degradation counters (exec/spill.cc): set when the memory
  // cap tripped and the operator fell back to temp-file partitioning.
  bool spilled = false;
  uint64_t spill_partitions = 0;     // partition runs written
  uint64_t spill_bytes_written = 0;  // bytes staged to temp files
  uint64_t spill_bytes_read = 0;     // bytes read back
  uint64_t spill_recursions = 0;     // repartitioning rounds past the first
  uint64_t spill_chunks = 0;         // block-chunk fallback rounds (skew)

  // Wall-clock time, inclusive of children (filled by the interpreter;
  // zero for direct kernel calls).
  std::chrono::nanoseconds wall{0};

  // Cost-model row estimate for this operator, joined in by EXPLAIN
  // ANALYZE; negative = not estimated.
  double est_rows = -1.0;

  std::vector<std::unique_ptr<OperatorStats>> children;

  OperatorStats* AddChild(std::string op_name) {
    children.push_back(std::make_unique<OperatorStats>());
    children.back()->op = std::move(op_name);
    return children.back().get();
  }

  // Adds another node's flat counters into this one: the parallel kernels
  // give each lane a private scratch node and merge after the fan-in, so
  // hot loops never contend on shared counters. Children, wall time and
  // estimates are not merged (lane scratches have none).
  void MergeCountersFrom(const OperatorStats& o);

  // Wall time minus the children's wall time (the operator's own work).
  std::chrono::nanoseconds SelfWall() const {
    std::chrono::nanoseconds kids{0};
    for (const auto& c : children) kids += c->wall;
    return wall > kids ? wall - kids : std::chrono::nanoseconds{0};
  }

  // q-error of the cardinality estimate: max(est/actual, actual/est) with
  // both sides clamped to >= 1 so empty results stay finite. Returns 0
  // when no estimate was joined in.
  double QError() const;

  // Indented one-node-per-line rendering of the stats tree (counters
  // only; EXPLAIN ANALYZE produces the plan-annotated form).
  std::string ToString(int indent = 0) const;
};

// Depth-first walk collecting the q-error of every estimated operator.
void CollectQErrors(const OperatorStats& stats, std::vector<double>* out);

}  // namespace gsopt::exec

#endif  // GSOPT_EXEC_STATS_H_
