#include "exec/bloom.h"

#include "base/check.h"

namespace gsopt::exec {

uint64_t BloomFilter::BlocksFor(int64_t expected_keys) {
  uint64_t keys = expected_keys > 0 ? static_cast<uint64_t>(expected_keys) : 1;
  uint64_t bits = keys * kBitsPerKey;
  uint64_t want = (bits + kBitsPerBlock - 1) / kBitsPerBlock;
  uint64_t blocks = 1;
  while (blocks < want && blocks < kMaxBlocks) blocks <<= 1;
  return blocks;
}

uint64_t BloomFilter::BytesFor(int64_t expected_keys) {
  return BlocksFor(expected_keys) * kWordsPerBlock * sizeof(uint64_t);
}

void BloomFilter::Init(int64_t expected_keys) {
  uint64_t blocks = BlocksFor(expected_keys);
  words_.assign(blocks * kWordsPerBlock, 0);
  block_mask_ = blocks - 1;
}

void BloomFilter::MergeFrom(const BloomFilter& other) {
  GSOPT_CHECK(words_.size() == other.words_.size());
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

}  // namespace gsopt::exec
