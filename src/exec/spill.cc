#include "exec/spill.h"

#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/check.h"
#include "exec/bloom.h"
#include "exec/hash_table.h"

namespace gsopt::exec::internal {

namespace {

// Per-entry overhead estimate for the partition-local build table
// (unordered_map node + bucket-vector slot), excluding the key bytes.
constexpr uint64_t kTableEntryBytes = 64;

void PutRaw(std::string* buf, const void* p, size_t n) {
  buf->append(static_cast<const char*>(p), n);
}

struct RecordCursor {
  const char* p;
  const char* end;

  bool Take(void* out, size_t n) {
    if (static_cast<size_t>(end - p) < n) return false;
    std::memcpy(out, p, n);
    p += n;
    return true;
  }
};

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t ApproxTupleBytes(const Tuple& t) {
  // Inline payloads (the common shapes) are already inside sizeof(Tuple);
  // only heap-spilled wide payloads and string contents add bytes.
  uint64_t n = sizeof(Tuple);
  if (t.values.size() > Tuple::kInlineValues) {
    n += t.values.size() * sizeof(Value);
  }
  if (t.vids.size() > Tuple::kInlineVids) {
    n += t.vids.size() * sizeof(RowId);
  }
  for (const Value& v : t.values) {
    if (v.type() == ValueType::kString) n += v.AsString().size();
  }
  return n;
}

uint64_t SpillPartitionHash(const std::string& key, int depth) {
  // The in-memory parallel join routes on the raw high bits of
  // HashKeyBytes; remixing with a depth salt gives every recursion level
  // (and the level-0 spill itself) an independent bit pattern.
  return Mix64(HashKeyBytes(key) ^
               (static_cast<uint64_t>(depth) * 0xd6e8feb86659fd93ull));
}

Status AppendTupleRecord(const Tuple& t, int64_t orig, std::string* buf) {
  // Record framing narrows to u16 counts and a u32 payload length. The
  // casts used to be unchecked: a 65536-column tuple wrapped its count to
  // 0 and a >4GB string wrapped its length, silently corrupting the run
  // and every record after it. Check the limits up front and mid-stream,
  // rolling the buffer back so a failed append leaves no partial record.
  constexpr size_t kMaxCount = UINT16_MAX;
  constexpr uint64_t kMaxPayload = UINT32_MAX;
  size_t len_pos = buf->size();
  if (t.values.size() > kMaxCount || t.vids.size() > kMaxCount) {
    return Status::ResourceExhausted(
        "spill: tuple arity exceeds record format (values=" +
        std::to_string(t.values.size()) +
        ", vids=" + std::to_string(t.vids.size()) + ", max=" +
        std::to_string(kMaxCount) + ")");
  }
  uint32_t payload_len = 0;
  PutRaw(buf, &payload_len, sizeof payload_len);  // patched below
  PutRaw(buf, &orig, sizeof orig);
  uint16_t nvalues = static_cast<uint16_t>(t.values.size());
  uint16_t nvids = static_cast<uint16_t>(t.vids.size());
  PutRaw(buf, &nvalues, sizeof nvalues);
  PutRaw(buf, &nvids, sizeof nvids);
  for (const Value& v : t.values) {
    uint8_t tag = static_cast<uint8_t>(v.type());
    PutRaw(buf, &tag, 1);
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt: {
        int64_t x = v.AsInt();
        PutRaw(buf, &x, sizeof x);
        break;
      }
      case ValueType::kDouble: {
        double x = v.AsDouble();
        PutRaw(buf, &x, sizeof x);
        break;
      }
      case ValueType::kString: {
        const std::string& s = v.AsString();
        if (s.size() > kMaxPayload) {
          buf->resize(len_pos);
          return Status::ResourceExhausted(
              "spill: string value of " + std::to_string(s.size()) +
              " bytes exceeds the u32 record length");
        }
        uint32_t n = static_cast<uint32_t>(s.size());
        PutRaw(buf, &n, sizeof n);
        buf->append(s);
        break;
      }
    }
  }
  for (RowId vid : t.vids) PutRaw(buf, &vid, sizeof vid);
  uint64_t payload = buf->size() - len_pos - sizeof payload_len;
  if (payload > kMaxPayload) {
    buf->resize(len_pos);
    return Status::ResourceExhausted(
        "spill: record payload of " + std::to_string(payload) +
        " bytes exceeds the u32 record length");
  }
  payload_len = static_cast<uint32_t>(payload);
  std::memcpy(buf->data() + len_pos, &payload_len, sizeof payload_len);
  return Status::OK();
}

Status WriteTupleRecord(SpillFile* f, const Tuple& t, int64_t orig,
                        std::string* scratch) {
  scratch->clear();
  GSOPT_RETURN_IF_ERROR(AppendTupleRecord(t, orig, scratch));
  return f->Append(scratch->data(), scratch->size());
}

Status ReadTupleRecord(SpillFile* f, Tuple* t, int64_t* orig) {
  uint32_t payload_len = 0;
  GSOPT_RETURN_IF_ERROR(f->ReadExact(&payload_len, sizeof payload_len));
  std::string payload(payload_len, '\0');
  GSOPT_RETURN_IF_ERROR(f->ReadExact(payload.data(), payload_len));
  RecordCursor c{payload.data(), payload.data() + payload.size()};
  uint16_t nvalues = 0, nvids = 0;
  if (!c.Take(orig, sizeof *orig) || !c.Take(&nvalues, sizeof nvalues) ||
      !c.Take(&nvids, sizeof nvids)) {
    return Status::Internal("spill: malformed record header");
  }
  t->values.clear();
  t->values.reserve(nvalues);
  t->vids.clear();
  t->vids.reserve(nvids);
  for (uint16_t k = 0; k < nvalues; ++k) {
    uint8_t tag = 0;
    if (!c.Take(&tag, 1)) return Status::Internal("spill: malformed value");
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kNull:
        t->values.push_back(Value::Null());
        break;
      case ValueType::kInt: {
        int64_t x = 0;
        if (!c.Take(&x, sizeof x)) {
          return Status::Internal("spill: malformed int value");
        }
        t->values.push_back(Value::Int(x));
        break;
      }
      case ValueType::kDouble: {
        double x = 0;
        if (!c.Take(&x, sizeof x)) {
          return Status::Internal("spill: malformed double value");
        }
        t->values.push_back(Value::Double(x));
        break;
      }
      case ValueType::kString: {
        uint32_t n = 0;
        if (!c.Take(&n, sizeof n) ||
            static_cast<size_t>(c.end - c.p) < n) {
          return Status::Internal("spill: malformed string value");
        }
        t->values.push_back(Value::String(std::string(c.p, n)));
        c.p += n;
        break;
      }
      default:
        return Status::Internal("spill: unknown value tag");
    }
  }
  for (uint16_t k = 0; k < nvids; ++k) {
    RowId vid = kNullRowId;
    if (!c.Take(&vid, sizeof vid)) {
      return Status::Internal("spill: malformed vid");
    }
    t->vids.push_back(vid);
  }
  return Status::OK();
}

namespace {

// One materialized partition side: rows plus each row's original index in
// the operator's input relation (what the matched bitmaps are keyed by).
struct SpillSide {
  Relation rows;
  std::vector<int64_t> orig;

  SpillSide(const Schema& s, const VirtualSchema& vs) : rows(s, vs) {}
};

struct JoinSpillState {
  const ExecContext& ctx;
  const SpillConfig& cfg;
  const HashPlan& plan;
  Predicate residual;
  JoinCoreResult* res;
  // Bloom-filter bookkeeping, kept here (not on ctx.stats, which may be
  // null) and flushed once by SpillJoinCore. bloom_active records that at
  // least one partitioning pass ran with a filter, so ProbePartition can
  // attribute its find-misses to filter false positives.
  bool bloom_active = false;
  uint64_t bloom_checks = 0;
  uint64_t bloom_rejects = 0;
  uint64_t bloom_false_positives = 0;
};

using BuildTable = std::unordered_map<std::string, std::vector<int64_t>>;

// Probes every probe-side row of the partition against `table` (local
// build indices into build.rows), emitting matches with globally-indexed
// matched flags.
// `full_table` says the table covers the partition's whole build side, so
// a find-miss under an active filter is attributable to a filter false
// positive; the block-chunked fallback passes false (a row can miss one
// chunk's table and match another).
Status ProbePartition(JoinSpillState& s, const BuildTable& table,
                      const SpillSide& build, const Relation& probe_rel,
                      const std::vector<int64_t>& probe_orig,
                      bool full_table) {
  OperatorStats* st = s.ctx.stats;
  const Schema& out_schema = s.res->out.schema();
  std::string key;
  for (int64_t i = 0; i < probe_rel.NumRows(); ++i) {
    GSOPT_RETURN_IF_ERROR(s.ctx.Tick("join-spill"));
    if (!EncodeKeys(s.plan.a_keys, probe_rel.row(i), probe_rel.schema(),
                    &key)) {
      continue;
    }
    if (st != nullptr) ++st->probe_rows;
    auto it = table.find(key);
    if (it == table.end()) {
      // With a partitioning-pass filter active, every certain non-match
      // was dropped before it reached disk; a miss here is a row the
      // filter waved through wrongly.
      if (s.bloom_active && full_table) ++s.bloom_false_positives;
      continue;
    }
    for (int64_t j : it->second) {
      GSOPT_RETURN_IF_ERROR(s.ctx.Tick("join-spill"));
      Tuple t = Tuple::Concat(probe_rel.row(i), build.rows.row(j));
      if (st != nullptr) ++st->residual_evals;
      if (s.residual.Satisfied(t, out_schema)) {
        s.res->a_matched[static_cast<size_t>(probe_orig[static_cast<size_t>(
            i)])] = 1;
        s.res->b_matched[static_cast<size_t>(
            build.orig[static_cast<size_t>(j)])] = 1;
        s.res->out.Add(std::move(t));
        GSOPT_RETURN_IF_ERROR(s.ctx.ChargeRows(1, "join-spill"));
      }
    }
  }
  return Status::OK();
}

// Terminal fallback for partitions that still overflow at max recursion
// (identical-key skew): build the table over budget-sized chunks of the
// build side, rescanning the probe side per chunk. Always terminates --
// a chunk holds at least one row even if that row alone overflows the cap
// (the engine's minimum working memory is one build row).
Status BlockChunkedJoin(JoinSpillState& s, const SpillSide& build,
                        const SpillSide& probe) {
  OperatorStats* st = s.ctx.stats;
  const int64_t n = build.rows.NumRows();
  int64_t start = 0;
  std::string key;
  while (start < n) {
    OpMemory mem(s.ctx);
    BuildTable table;
    int64_t j = start;
    for (; j < n; ++j) {
      GSOPT_RETURN_IF_ERROR(s.ctx.Tick("join-spill"));
      if (!EncodeKeys(s.plan.b_keys, build.rows.row(j),
                      build.rows.schema(), &key)) {
        continue;
      }
      Status cs = mem.Charge(ApproxTupleBytes(build.rows.row(j)) +
                                 kTableEntryBytes + key.size(),
                             "join-spill");
      if (!cs.ok() && !table.empty()) break;
      std::vector<int64_t>& bucket = table[key];
      bucket.push_back(j);
      if (st != nullptr) {
        ++st->build_rows;
        st->max_bucket = std::max<uint64_t>(st->max_bucket, bucket.size());
      }
    }
    if (!table.empty()) {
      GSOPT_RETURN_IF_ERROR(ProbePartition(s, table, build, probe.rows,
                                           probe.orig, /*full_table=*/false));
    }
    if (st != nullptr) ++st->spill_chunks;
    start = j > start ? j : start + 1;
  }
  return Status::OK();
}

Status PartitionAndProcess(JoinSpillState& s, const Relation& build_rel,
                           const int64_t* build_orig,
                           const Relation& probe_rel,
                           const int64_t* probe_orig, int depth);

// Tries the partition in memory; overflow recurses (fresh hash bits) or
// falls back to block chunking at max depth.
Status ProcessPartition(JoinSpillState& s, const SpillSide& build,
                        const SpillSide& probe, int depth) {
  OperatorStats* st = s.ctx.stats;
  OpMemory mem(s.ctx);
  BuildTable table;
  bool fits = true;
  uint64_t inserted = 0;
  std::string key;
  for (int64_t j = 0; j < build.rows.NumRows(); ++j) {
    GSOPT_RETURN_IF_ERROR(s.ctx.Tick("join-spill"));
    if (!EncodeKeys(s.plan.b_keys, build.rows.row(j), build.rows.schema(),
                    &key)) {
      continue;
    }
    Status cs = mem.Charge(ApproxTupleBytes(build.rows.row(j)) +
                               kTableEntryBytes + key.size(),
                           "join-spill");
    if (!cs.ok()) {
      fits = false;
      break;
    }
    std::vector<int64_t>& bucket = table[key];
    bucket.push_back(j);
    ++inserted;
    if (st != nullptr) {
      st->max_bucket = std::max<uint64_t>(st->max_bucket, bucket.size());
    }
  }
  if (fits) {
    if (st != nullptr) st->build_rows += inserted;
    return ProbePartition(s, table, build, probe.rows, probe.orig,
                          /*full_table=*/true);
  }
  mem.Release();
  table.clear();
  if (depth >= s.cfg.max_recursion) {
    return BlockChunkedJoin(s, build, probe);
  }
  if (st != nullptr) ++st->spill_recursions;
  return PartitionAndProcess(s, build.rows, build.orig.data(), probe.rows,
                             probe.orig.data(), depth);
}

Status PartitionAndProcess(JoinSpillState& s, const Relation& build_rel,
                           const int64_t* build_orig,
                           const Relation& probe_rel,
                           const int64_t* probe_orig, int depth) {
  OperatorStats* st = s.ctx.stats;
  const int parts = s.cfg.partitions < 2 ? 2 : s.cfg.partitions;
  std::vector<SpillFile> bfiles, pfiles;
  bfiles.reserve(static_cast<size_t>(parts));
  pfiles.reserve(static_cast<size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    GSOPT_ASSIGN_OR_RETURN(SpillFile bf,
                           SpillFile::Create(s.cfg.dir, s.ctx.fault));
    bfiles.push_back(std::move(bf));
    GSOPT_ASSIGN_OR_RETURN(SpillFile pf,
                           SpillFile::Create(s.cfg.dir, s.ctx.fault));
    pfiles.push_back(std::move(pf));
  }
  std::vector<int64_t> bcounts(static_cast<size_t>(parts), 0);
  std::vector<int64_t> pcounts(static_cast<size_t>(parts), 0);
  std::string key, scratch;

  // Build-side bloom filter, pushed into probe-side partitioning: a probe
  // row the filter rejects is a certain non-match and is never written to
  // disk at all (its matched flag stays 0, which is exactly what the
  // outer-join padding and GS resurrection passes need). Charged on its
  // own reservation -- under the memory starvation that got us here the
  // charge may fail, in which case this depth partitions filter-free.
  BloomFilter bloom;
  OpMemory bloom_mem(s.ctx);
  if (s.ctx.Bloom(build_rel.NumRows(), probe_rel.NumRows()) &&
      bloom_mem.Charge(BloomFilter::BytesFor(build_rel.NumRows()), "join-spill")
          .ok()) {
    bloom.Init(build_rel.NumRows());
    s.bloom_active = true;
  }

  for (int64_t j = 0; j < build_rel.NumRows(); ++j) {
    GSOPT_RETURN_IF_ERROR(s.ctx.Tick("join-spill"));
    if (!EncodeKeys(s.plan.b_keys, build_rel.row(j), build_rel.schema(),
                    &key)) {
      // NULL equi-keys never match under 3VL; dropping them here mirrors
      // the in-memory build (matched flags stay 0 for outer padding).
      if (st != nullptr && depth == 0) ++st->null_key_skips;
      continue;
    }
    if (bloom.enabled()) bloom.Insert(HashKeyBytes(key));
    size_t p = SpillPartitionHash(key, depth) % static_cast<size_t>(parts);
    GSOPT_RETURN_IF_ERROR(WriteTupleRecord(
        &bfiles[p], build_rel.row(j), build_orig ? build_orig[j] : j,
        &scratch));
    ++bcounts[p];
  }
  for (int64_t i = 0; i < probe_rel.NumRows(); ++i) {
    GSOPT_RETURN_IF_ERROR(s.ctx.Tick("join-spill"));
    if (!EncodeKeys(s.plan.a_keys, probe_rel.row(i), probe_rel.schema(),
                    &key)) {
      if (st != nullptr && depth == 0) ++st->null_key_skips;
      continue;
    }
    if (bloom.enabled()) {
      ++s.bloom_checks;
      if (!bloom.MayContain(HashKeyBytes(key))) {
        ++s.bloom_rejects;
        continue;
      }
    }
    size_t p = SpillPartitionHash(key, depth) % static_cast<size_t>(parts);
    GSOPT_RETURN_IF_ERROR(WriteTupleRecord(
        &pfiles[p], probe_rel.row(i), probe_orig ? probe_orig[i] : i,
        &scratch));
    ++pcounts[p];
  }
  // The filter's job ends with the partitioning pass; release its bytes
  // before the partitions are materialized and processed below.
  bloom = BloomFilter();
  bloom_mem.Release();

  for (int p = 0; p < parts; ++p) {
    // An empty side means no matches can come from this partition; the
    // files are unlinked by RAII either way.
    if (bcounts[p] == 0 || pcounts[p] == 0) continue;
    if (st != nullptr) ++st->spill_partitions;

    SpillSide build(build_rel.schema(), build_rel.vschema());
    GSOPT_RETURN_IF_ERROR(bfiles[p].Rewind());
    for (int64_t k = 0; k < bcounts[p]; ++k) {
      Tuple t;
      int64_t orig = 0;
      GSOPT_RETURN_IF_ERROR(ReadTupleRecord(&bfiles[p], &t, &orig));
      build.rows.Add(std::move(t));
      build.orig.push_back(orig);
    }
    SpillSide probe(probe_rel.schema(), probe_rel.vschema());
    GSOPT_RETURN_IF_ERROR(pfiles[p].Rewind());
    for (int64_t k = 0; k < pcounts[p]; ++k) {
      Tuple t;
      int64_t orig = 0;
      GSOPT_RETURN_IF_ERROR(ReadTupleRecord(&pfiles[p], &t, &orig));
      probe.rows.Add(std::move(t));
      probe.orig.push_back(orig);
    }
    if (st != nullptr) {
      st->spill_bytes_written +=
          bfiles[p].bytes_written() + pfiles[p].bytes_written();
      st->spill_bytes_read += bfiles[p].bytes_read() + pfiles[p].bytes_read();
    }
    // Release the partition's disk space before recursing: peak disk usage
    // stays one level's runs plus the partition being processed.
    bfiles[p].Discard();
    pfiles[p].Discard();

    GSOPT_RETURN_IF_ERROR(ProcessPartition(s, build, probe, depth + 1));
  }
  return Status::OK();
}

}  // namespace

StatusOr<JoinCoreResult> SpillJoinCore(const Relation& a, const Relation& b,
                                       const HashPlan& plan,
                                       const ExecContext& ctx) {
  GSOPT_CHECK(plan.usable());
  GSOPT_CHECK(ctx.SpillEnabled());
  JoinCoreResult res;
  res.out = Relation(Schema::Concat(a.schema(), b.schema()),
                     VirtualSchema::Concat(a.vschema(), b.vschema()));
  res.a_matched.assign(static_cast<size_t>(a.NumRows()), 0);
  res.b_matched.assign(static_cast<size_t>(b.NumRows()), 0);
  OperatorStats* st = ctx.stats;
  if (st != nullptr) {
    st->hash_path = true;
    st->spilled = true;
  }
  JoinSpillState state{ctx, *ctx.spill, plan, Predicate(plan.residual), &res};
  GSOPT_RETURN_IF_ERROR(
      PartitionAndProcess(state, b, nullptr, a, nullptr, 0));
  if (st != nullptr && state.bloom_active) {
    st->bloom = true;
    st->bloom_checks += state.bloom_checks;
    st->bloom_rejects += state.bloom_rejects;
    st->bloom_false_positives += state.bloom_false_positives;
  }
  return res;
}

}  // namespace gsopt::exec::internal
