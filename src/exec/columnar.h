// Columnar (batch-at-a-time) twins of the hot serial kernels.
//
// The tuple-at-a-time reference kernels in eval.cc resolve every column BY
// NAME per row (Scalar::Eval does a linear qualified-name scan of the
// schema for each column reference) and build join keys with one
// std::to_string-heavy std::string per row. These paths instead compile
// the predicate / key list ONCE against the schema, gather the referenced
// columns of each kBatchRows-row batch into typed arrays
// (relational/column_batch.h), and run tight per-kind filter loops that
// refine a selection vector -- the layout the issue calls SIMD-friendly:
// contiguous same-typed operands, data-dependent branches confined to the
// selection-vector append.
//
// Semantics contract: every kernel here is bag-equal to its reference twin
// under identical ExecContext policy (same NULL handling, same 3VL
// residuals, same globally-indexed matched bitmaps, same memory-cap spill
// degradation). ColumnarSelect additionally preserves the reference row
// ORDER exactly (it filters in input order); the columnar join emits
// duplicate build matches in newest-first chain order, so its output is
// bag-equal but may be permuted, like the parallel path. The
// columnar-vs-tuple oracle (testing/oracles.h) holds the pair to the
// bag-equality contract on every fuzzed query.
//
// Atoms a batch loop cannot evaluate natively (arithmetic terms,
// unresolved columns) compile to a per-row fallback on the source tuples,
// so every predicate is columnar-eligible -- the fallback only runs for
// rows still selected when its turn comes.
#ifndef GSOPT_EXEC_COLUMNAR_H_
#define GSOPT_EXEC_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/eval.h"
#include "exec/join_internal.h"
#include "relational/column_batch.h"
#include "relational/expr.h"

namespace gsopt::exec::internal {

// A predicate compiled once against a schema. Atom operands referencing
// columns become slots into a gathered column array; constants are
// captured by value. Compilation never fails: unsupported shapes become
// kFallback atoms.
struct CompiledFilter {
  struct CAtom {
    enum class Kind : uint8_t {
      kCmpColCol,    // column <op> column
      kCmpColConst,  // column <op> constant (constant always on the rhs)
      kIsNull,       // column IS NULL
      kIsNotNull,    // column IS NOT NULL
      kNever,        // statically never TRUE (e.g. const cmp NULL)
      kFallback,     // Atom::Eval per selected row
    };
    Kind kind = Kind::kFallback;
    CmpOp op = CmpOp::kEq;
    int lhs_slot = -1;           // slot into the gathered columns
    int rhs_slot = -1;           // kCmpColCol only
    Value constant;              // kCmpColConst only
    const Atom* atom = nullptr;  // kFallback: borrowed from the Predicate
  };
  std::vector<CAtom> atoms;   // statically-TRUE atoms are dropped
  std::vector<int> cols;      // schema column index per slot
  bool has_fallback = false;
};

// Compiles `p` against `s`. The returned filter borrows `p`'s atoms;
// `p` must outlive it.
CompiledFilter CompileFilter(const Predicate& p, const Schema& s);

// Applies `f` to rows [begin, begin+n) of `r`, whose gathered filter
// columns are `cols` (one per f.cols slot, gathered over the same range).
// Fills `sel` with the batch-relative offsets of rows where every atom is
// TRUE, in ascending order.
void ApplyFilter(const CompiledFilter& f, const Relation& r, int64_t begin,
                 int64_t n, const std::vector<Column>& cols,
                 std::vector<int32_t>* sel);

// Canonical binary join-key encoding over gathered key columns: appends
// batch row i's key bytes for every column of `key_cols` onto `out`.
// Returns false -- with `out` in an unspecified partial state the caller
// must clear -- when any key value is NULL (NULL never equi-matches under
// 3VL). The encoding induces the SAME equality partition as the row path's
// AppendValueKey (ints and integral doubles within +/-2^53 share a class,
// -0.0 == +0.0, one class for every NaN payload), in fixed-width binary:
// 'i' + 8B native-endian int64, 'N' (NaN), 'd' + 8B raw double bits,
// 's' + u32 length + bytes. Keys never leave one operator, so only the
// partition must match the row path, not the bytes.
bool AppendBatchKey(const std::vector<Column>& key_cols, int64_t i,
                    std::string* out);

// Group-key variant for aggregation: NULLs are a real group (tag 'n'
// instead of failure), and the selected vid columns are appended after a
// '#' separator, matching EncodeTupleKeyInto's partition.
void AppendBatchGroupKey(const std::vector<Column>& key_cols,
                         const std::vector<std::vector<RowId>>& vids,
                         int64_t i, std::string* out);

// Batch-at-a-time selection; same output (order included) as the serial
// Select loop. Caller has already decided via ExecContext::Columnar().
StatusOr<Relation> ColumnarSelect(const Relation& r, const Predicate& p,
                                  const ExecContext& ctx);

// True when the hash plan's keys are all plain column references, the
// shape the batched build/probe encodes natively. (Arithmetic key terms
// stay on the reference path.)
bool ColumnarJoinEligible(const HashPlan& plan, const Schema& sa,
                          const Schema& sb);

// Batch-at-a-time hash join core: arena + open-addressing JoinHashTable
// build over b, batched probe with a, per-pair 3VL residual, globally-
// indexed matched bitmaps, and the same spill degradation as the serial
// path on a memory-cap trip. Requires ColumnarJoinEligible(plan, ...).
StatusOr<JoinCoreResult> ColumnarJoinCore(const Relation& a,
                                          const Relation& b,
                                          const HashPlan& plan,
                                          const ExecContext& ctx);

}  // namespace gsopt::exec::internal

#endif  // GSOPT_EXEC_COLUMNAR_H_
