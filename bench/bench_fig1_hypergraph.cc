// Experiment F1 (DESIGN.md): hypergraph machinery. Construction, pres(),
// conf() and Theorem-1 DeferredGroups() on Figure-1-shaped queries scaled
// to larger relation counts. The paper: "the preserved sets and conflict
// sets are computed only once from the original hypergraph" -- this bench
// shows that one-time cost.
#include <benchmark/benchmark.h>

#include "report.h"

#include "algebra/execute.h"
#include "algebra/node.h"
#include "base/rng.h"
#include "hypergraph/analysis.h"
#include "hypergraph/build.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Predicate P(const std::string& r1, const std::string& c1,
            const std::string& r2, const std::string& c2) {
  return Predicate(MakeAtom(r1, c1, CmpOp::kEq, r2, c2));
}

std::string R(int i) { return "r" + std::to_string(i); }

// Fig-1 pattern scaled: r1 -> (r2 ->complex (join chain of k relations)).
NodePtr ScaledQ4(int k) {
  NodePtr chain = Node::Leaf(R(3));
  for (int i = 4; i < 3 + k; ++i) {
    chain = Node::Join(chain, Node::Leaf(R(i)), P(R(i - 1), "c", R(i), "c"));
  }
  Predicate complex = P(R(2), "a", R(3), "a");
  if (k >= 2) complex.AddAtom(MakeAtom(R(2), "b", CmpOp::kEq, R(4), "b"));
  NodePtr mid = Node::LeftOuterJoin(Node::Leaf(R(2)), chain, complex);
  return Node::LeftOuterJoin(Node::Leaf(R(1)), mid, P(R(1), "a", R(2), "a"));
}

void BM_BuildHypergraph(benchmark::State& state) {
  NodePtr q = ScaledQ4(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto hg = BuildHypergraph(q);
    benchmark::DoNotOptimize(hg);
  }
}

void BM_AnalysisPresConf(benchmark::State& state) {
  NodePtr q = ScaledQ4(static_cast<int>(state.range(0)));
  auto hg = BuildHypergraph(q);
  if (!hg.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  int edges = hg->NumEdges();
  for (auto _ : state) {
    HypergraphAnalysis an(*hg);
    int total = 0;
    for (const Hyperedge& e : *&hg->edges()) {
      total += static_cast<int>(an.Conf(e.id).size());
      if (e.kind != EdgeKind::kUndirected) {
        benchmark::DoNotOptimize(an.DeferredGroups(e.id));
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["edges"] = edges;
}

void BM_Acyclicity(benchmark::State& state) {
  NodePtr q = ScaledQ4(static_cast<int>(state.range(0)));
  auto hg = BuildHypergraph(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hg->IsAcyclic());
  }
}

// Serial-vs-parallel pair grounding the Fig-1 shape in execution: the
// k=2 ScaledQ4 query (four relations) over near-unique-key tables,
// without and with a 4-lane morsel executor.
void RunExecuteQ4(benchmark::State& state, bool parallel) {
  const int k = 2;
  NodePtr q = ScaledQ4(k);
  Catalog cat;
  Rng rng(577215);
  RandomRelationOptions ropt;
  ropt.num_rows = static_cast<int>(state.range(0));
  ropt.domain = ropt.num_rows;
  ropt.null_fraction = 0.1;
  AddRandomTables(2 + k, ropt, &rng, &cat);
  ExecuteOptions xo;
  if (parallel) xo.executor = &bench::BenchExecutor(4);
  int64_t rows = 0;
  for (auto _ : state) {
    auto r = Execute(q, cat, xo);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_ExecuteQ4Serial(benchmark::State& state) {
  RunExecuteQ4(state, false);
}
void BM_ExecuteQ4Parallel(benchmark::State& state) {
  RunExecuteQ4(state, true);
}

BENCHMARK(BM_BuildHypergraph)->DenseRange(2, 14, 4);
BENCHMARK(BM_AnalysisPresConf)->DenseRange(2, 14, 4);
BENCHMARK(BM_Acyclicity)->DenseRange(2, 14, 4);
BENCHMARK(BM_ExecuteQ4Serial)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecuteQ4Parallel)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_fig1_hypergraph);
