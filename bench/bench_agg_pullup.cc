// Experiment M2 (DESIGN.md): paper §1.1 Query 1 -- an outer-join predicate
// over an aggregation output blocks classical view merging; the paper's
// pull-up + generalized selection makes all four relations reorderable.
// Measured: as-written execution vs the optimizer's plan, as r4's filter
// selectivity varies ("if predicate r4.b = V1.b is highly filtering then
// it may be beneficial to perform this join first").
#include <benchmark/benchmark.h>

#include "report.h"

#include "algebra/execute.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

struct Scenario {
  Catalog cat;
  NodePtr query;
  NodePtr optimized;

  // r4_domain controls how filtering r4.b = r2.c is: a large domain for
  // r4.b makes matches rare.
  Scenario(int rows, int64_t r4_domain) {
    Rng rng(11);
    RandomRelationOptions opt;
    opt.num_rows = rows;
    opt.domain = 5;
    (void)cat.Register("r1",
                       MakeRandomRelation("r1", {"a", "b", "c"}, opt, &rng));
    (void)cat.Register("r2",
                       MakeRandomRelation("r2", {"a", "b", "c"}, opt, &rng));
    (void)cat.Register("r3",
                       MakeRandomRelation("r3", {"a", "b", "c"}, opt, &rng));
    opt.num_rows = 12;
    opt.domain = r4_domain;
    (void)cat.Register("r4",
                       MakeRandomRelation("r4", {"a", "b", "c"}, opt, &rng));

    NodePtr v1_join = Node::Join(
        Node::Leaf("r1"), Node::Leaf("r2"),
        Predicate(MakeAtom("r1", "b", CmpOp::kEq, "r2", "b")));
    exec::GroupBySpec spec;
    spec.group_cols = {Attribute{"r1", "c"}, Attribute{"r2", "c"}};
    exec::AggSpec cnt;
    cnt.func = exec::AggFunc::kCount;
    cnt.input = Scalar::Column("r1", "b");
    cnt.out_rel = "V1";
    cnt.out_name = "c";
    spec.aggs = {cnt};
    NodePtr v1 = Node::GroupBy(v1_join, spec);
    NodePtr loj = Node::LeftOuterJoin(
        v1, Node::Leaf("r3"),
        Predicate(MakeAtom("r3", "b", CmpOp::kLt, "V1", "c")));
    query = Node::Join(loj, Node::Leaf("r4"),
                       Predicate(MakeAtom("r4", "b", CmpOp::kEq, "r2", "c")));

    QueryOptimizer opt2(cat);
    auto best = opt2.Optimize(query);
    optimized = best.ok() ? best->best.expr : query;
  }
};

void BM_Query1AsWritten(benchmark::State& state) {
  Scenario sc(static_cast<int>(state.range(0)), state.range(1));
  int rows = 0;
  for (auto _ : state) {
    auto r = Execute(sc.query, sc.cat);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = rows;
}

void BM_Query1Optimized(benchmark::State& state) {
  Scenario sc(static_cast<int>(state.range(0)), state.range(1));
  int rows = 0;
  for (auto _ : state) {
    auto r = Execute(sc.optimized, sc.cat);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = rows;
}

// Parallel half of the serial-vs-parallel pair: the optimized plan
// executed with a 4-lane morsel executor (ExecuteOptions.executor). The
// intermediate join outputs are what cross the parallel threshold here,
// not the base tables.
void BM_Query1OptimizedParallel(benchmark::State& state) {
  Scenario sc(static_cast<int>(state.range(0)), state.range(1));
  ExecuteOptions xo;
  xo.executor = &bench::BenchExecutor(4);
  int64_t rows = 0;
  for (auto _ : state) {
    auto r = Execute(sc.optimized, sc.cat, xo);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void Grid(benchmark::internal::Benchmark* b) {
  for (int rows : {60, 180}) {
    for (int64_t dom : {5, 40}) {  // 40: r4 filter highly selective
      b->Args({rows, dom});
    }
  }
}

BENCHMARK(BM_Query1AsWritten)->Apply(Grid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query1Optimized)->Apply(Grid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query1OptimizedParallel)->Apply(Grid)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_agg_pullup);
