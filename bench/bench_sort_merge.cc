// Experiment O1 (EXPERIMENTS.md "Order-aware execution"): the external
// sort across input dispositions (random / presorted / reverse-sorted /
// memory-capped so it spills), the sort-merge join against the hash join
// on presorted inputs, and the headline order-aware plan comparison: an
// ORDER-BY-on-the-join-key query over presorted base tables executed as
// hash-join-plus-sort-enforcer vs the DP's merge-join plan whose output
// order discharges the ORDER BY for free (sort_enforcers_avoided > 0).
// Input shapes mirror bench_columnar: domain rows/4+1, ~4 matches/key.
#include <benchmark/benchmark.h>

#include "report.h"

#include "algebra/execute.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "exec/eval.h"
#include "exec/sort.h"
#include "exec/spill.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

exec::SortSpec KeySpec(bool desc = false) {
  return exec::SortSpec{{Attribute{"r1", "x"}, desc},
                        {Attribute{"r1", "y"}, false}};
}

struct SortInputs {
  Relation random_r, sorted_r, reverse_r;

  explicit SortInputs(int64_t rows) {
    Rng rng(417);
    RandomRelationOptions opt;
    opt.num_rows = rows;
    opt.domain = rows / 4 + 1;
    opt.null_fraction = 0.02;
    random_r = MakeRandomRelation("r1", {"x", "y"}, opt, &rng);
    sorted_r = *exec::Sort(random_r, KeySpec(false));
    reverse_r = *exec::Sort(random_r, KeySpec(true));
  }
};

void RunSort(benchmark::State& state, const Relation& input) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Sort(input, KeySpec()));
  }
  state.SetItemsProcessed(state.iterations() * input.NumRows());
}

void BM_SortRandom(benchmark::State& state) {
  SortInputs in(state.range(0));
  RunSort(state, in.random_r);
}

void BM_SortPresorted(benchmark::State& state) {
  SortInputs in(state.range(0));
  RunSort(state, in.sorted_r);
}

void BM_SortReverse(benchmark::State& state) {
  SortInputs in(state.range(0));
  RunSort(state, in.reverse_r);
}

void BM_SortSpilled(benchmark::State& state) {
  SortInputs in(state.range(0));
  ResourceBudget budget;
  budget.WithMaxMemory(256 * 1024);
  exec::SpillConfig cfg;
  cfg.enabled = true;
  exec::OperatorStats stats;
  exec::ExecContext ctx;
  ctx.budget = &budget;
  ctx.spill = &cfg;
  ctx.stats = &stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Sort(in.random_r, KeySpec(), ctx));
  }
  state.counters["sort_runs"] = static_cast<double>(stats.sort_runs);
  state.counters["merge_passes"] =
      static_cast<double>(stats.sort_merge_passes);
  state.SetItemsProcessed(state.iterations() * in.random_r.NumRows());
}

// --- joins over presorted inputs -------------------------------------

// Both base tables arrive presorted by the join key, so the merge join's
// sort phase degenerates to a verification-speed pass while the hash join
// still pays the full build.
struct JoinWorkload {
  Catalog cat;
  Predicate eq;
  NodePtr ordered_query;  // ORDER BY r1.x over the join

  explicit JoinWorkload(int64_t rows) {
    Rng rng(418);
    RandomRelationOptions opt;
    opt.num_rows = rows;
    opt.domain = rows / 4 + 1;
    opt.null_fraction = 0.02;
    for (const char* name : {"r1", "r2"}) {
      Relation r = MakeRandomRelation(name, {"x", "y"}, opt, &rng);
      exec::SortSpec by_key{{Attribute{name, "x"}, false}};
      GSOPT_CHECK(cat.Register(name, *exec::Sort(r, by_key)).ok());
    }
    eq = Predicate(MakeAtom("r1", "x", CmpOp::kEq, "r2", "x"));
    ordered_query =
        Node::Sort(Node::Join(Node::Leaf("r1"), Node::Leaf("r2"), eq),
                   exec::SortSpec{{Attribute{"r1", "x"}, false}});
  }

  const Relation& r1() const { return *cat.Find("r1"); }
  const Relation& r2() const { return *cat.Find("r2"); }
};

void RunJoin(benchmark::State& state, exec::JoinStrategy js) {
  JoinWorkload w(state.range(0));
  exec::ExecContext ctx;
  ctx.join = js;
  int64_t rows = 0;
  for (auto _ : state) {
    auto r = exec::InnerJoin(w.r1(), w.r2(), w.eq, ctx);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_HashJoinPresorted(benchmark::State& state) {
  RunJoin(state, exec::JoinStrategy::kHashOnly);
}

void BM_MergeJoinPresorted(benchmark::State& state) {
  RunJoin(state, exec::JoinStrategy::kMergeOnly);
}

// --- the headline: ORDER BY discharged by the merge join's order ------

// Hash side: the same ordered query executed with the merge hint ignored,
// so the kSort enforcer re-sorts the join output.
void BM_OrderByHashThenSort(benchmark::State& state) {
  JoinWorkload w(state.range(0));
  ExecuteOptions xo;
  xo.WithJoinStrategy(exec::JoinStrategy::kHashOnly);
  int64_t rows = 0;
  for (auto _ : state) {
    auto r = Execute(w.ordered_query, w.cat, xo);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// Merge side: the DP's order-aware pass stamps the join for sort-merge
// (presorted inputs make it cheap) and removes the enforcer its output
// order already delivers; counters prove both decisions happened.
void BM_OrderByMergeOrderFree(benchmark::State& state) {
  JoinWorkload w(state.range(0));
  QueryOptimizer opt(w.cat);
  auto result = opt.Optimize(w.ordered_query);
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  state.counters["merge_joins"] =
      static_cast<double>(result->counters.merge_joins_chosen);
  state.counters["sorts_avoided"] =
      static_cast<double>(result->counters.sort_enforcers_avoided);
  int64_t rows = 0;
  for (auto _ : state) {
    auto r = Execute(result->best.expr, w.cat);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

#define SIZES Arg(16384)->Arg(65536)->Unit(benchmark::kMicrosecond)
BENCHMARK(BM_SortRandom)->SIZES;
BENCHMARK(BM_SortPresorted)->SIZES;
BENCHMARK(BM_SortReverse)->SIZES;
BENCHMARK(BM_SortSpilled)->SIZES;
BENCHMARK(BM_HashJoinPresorted)->SIZES;
BENCHMARK(BM_MergeJoinPresorted)->SIZES;
BENCHMARK(BM_OrderByHashThenSort)->SIZES;
BENCHMARK(BM_OrderByMergeOrderFree)->SIZES;

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_sort_merge);
