// Bloom-filter sideways-information-passing sweep (EXPERIMENTS.md B1):
// the same build-heavy-probe join at match rates from 0.1% to 50%, once
// with BloomMode::kOff and once with BloomMode::kAuto, on each execution
// path -- serial tuple-at-a-time, columnar, morsel-parallel (4 lanes),
// and memory-starved/spilled. The probe side draws `match_permille` of
// its keys from the build domain and the rest from a disjoint domain, so
// the filter's reject rate tracks (1 - match rate) directly; the headline
// pair is the 16384-row / 1% columnar-auto comparison.
//
// Benchmark arguments: {rows, match_permille}.
#include <benchmark/benchmark.h>

#include "report.h"

#include "base/budget.h"
#include "base/rng.h"
#include "exec/eval.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

struct Inputs {
  Relation a, b;  // a = probe side, b = build side
  Predicate eq;

  Inputs(int64_t rows, int64_t match_permille) {
    Rng rng(99);
    // Build side: an eighth of the probe rows over a dense key domain
    // (~2 duplicates per key). Probe work dominates, which is the
    // asymmetry the filter exploits; a full-size build side would spend
    // the savings on filter inserts.
    const int64_t build_rows = std::max<int64_t>(1, rows / 8);
    const int64_t domain = std::max<int64_t>(1, rows / 16);
    std::vector<std::vector<Value>> brows;
    brows.reserve(static_cast<size_t>(build_rows));
    for (int64_t i = 0; i < build_rows; ++i) {
      brows.push_back({Value::Int(rng.Uniform(0, domain - 1)),
                       Value::Int(rng.Uniform(0, 1000))});
    }
    b = MakeRelation("b", {"x", "y"}, brows);
    // Probe side: match_permille/1000 of the rows draw from the build
    // domain; the rest from a disjoint range, which the filter rejects.
    std::vector<std::vector<Value>> arows;
    arows.reserve(static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) {
      const bool match = rng.Uniform(0, 999) < match_permille;
      const int64_t key = match ? rng.Uniform(0, domain - 1)
                                : domain + rng.Uniform(0, domain - 1);
      arows.push_back({Value::Int(key), Value::Int(rng.Uniform(0, 1000))});
    }
    a = MakeRelation("a", {"x", "y"}, arows);
    eq = Predicate(MakeAtom("a", "x", CmpOp::kEq, "b", "x"));
  }
};

void RunJoin(benchmark::State& state, exec::BloomMode bloom,
             exec::BatchMode batch, bool parallel, bool spilled) {
  Inputs in(state.range(0), state.range(1));
  for (auto _ : state) {
    exec::ExecContext ctx;
    ctx.bloom = bloom;
    ctx.batch = batch;
    if (parallel) ctx.executor = &bench::BenchExecutor(4);
    ResourceBudget budget;
    exec::SpillConfig cfg;
    if (spilled) {
      // Large enough for the ~32KB filter plus partition scratch, small
      // enough that the build side cannot stay resident.
      budget.WithMaxMemory(512 * 1024);
      cfg.enabled = true;
      ctx.budget = &budget;
      ctx.spill = &cfg;
    }
    benchmark::DoNotOptimize(exec::InnerJoin(in.a, in.b, in.eq, ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_JoinSerialOff(benchmark::State& state) {
  RunJoin(state, exec::BloomMode::kOff, exec::BatchMode::kOff, false, false);
}
void BM_JoinSerialBloom(benchmark::State& state) {
  RunJoin(state, exec::BloomMode::kAuto, exec::BatchMode::kOff, false, false);
}
void BM_JoinColumnarOff(benchmark::State& state) {
  RunJoin(state, exec::BloomMode::kOff, exec::BatchMode::kForce, false,
          false);
}
void BM_JoinColumnarBloom(benchmark::State& state) {
  RunJoin(state, exec::BloomMode::kAuto, exec::BatchMode::kForce, false,
          false);
}
void BM_JoinParallelOff(benchmark::State& state) {
  RunJoin(state, exec::BloomMode::kOff, exec::BatchMode::kAuto, true, false);
}
void BM_JoinParallelBloom(benchmark::State& state) {
  RunJoin(state, exec::BloomMode::kAuto, exec::BatchMode::kAuto, true, false);
}
void BM_JoinSpilledOff(benchmark::State& state) {
  RunJoin(state, exec::BloomMode::kOff, exec::BatchMode::kAuto, false, true);
}
void BM_JoinSpilledBloom(benchmark::State& state) {
  RunJoin(state, exec::BloomMode::kAuto, exec::BatchMode::kAuto, false, true);
}

// Match-rate sweep at the headline size, plus the 64K point at 1%.
#define MATCH_SWEEP                                               \
  Args({16384, 1})->Args({16384, 10})->Args({16384, 100})         \
      ->Args({16384, 500})->Args({65536, 10})                     \
      ->Unit(benchmark::kMicrosecond)

BENCHMARK(BM_JoinSerialOff)->MATCH_SWEEP;
BENCHMARK(BM_JoinSerialBloom)->MATCH_SWEEP;
BENCHMARK(BM_JoinColumnarOff)->MATCH_SWEEP;
BENCHMARK(BM_JoinColumnarBloom)->MATCH_SWEEP;
BENCHMARK(BM_JoinParallelOff)->MATCH_SWEEP;
BENCHMARK(BM_JoinParallelBloom)->MATCH_SWEEP;
BENCHMARK(BM_JoinSpilledOff)->MATCH_SWEEP;
BENCHMARK(BM_JoinSpilledBloom)->MATCH_SWEEP;

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_bloom_sip);
