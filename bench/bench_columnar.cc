// Columnar-vs-tuple kernel pairs (EXPERIMENTS.md "Columnar batch
// execution"): the same operator on the same input, once with
// BatchMode::kOff (the tuple-at-a-time reference kernels) and once with
// BatchMode::kForce (the batch paths in exec/columnar.cc). The input
// shapes mirror bench_gs_cost's Inputs -- domain rows/4+1, so joins have
// ~4 matches per key -- and the 16384-row rows are the issue's headline
// comparison. Aggregation groups on the join column with a SUM and a
// COUNT(*) per group.
#include <benchmark/benchmark.h>

#include "report.h"

#include "base/rng.h"
#include "exec/aggregate.h"
#include "exec/eval.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

struct Inputs {
  Relation a, b;
  Predicate eq;
  Predicate sel;

  explicit Inputs(int64_t rows) {
    Rng rng(99);
    RandomRelationOptions opt;
    opt.num_rows = rows;
    opt.domain = rows / 4 + 1;
    a = MakeRandomRelation("a", {"x", "y"}, opt, &rng);
    b = MakeRandomRelation("b", {"x", "y"}, opt, &rng);
    eq = Predicate(MakeAtom("a", "x", CmpOp::kEq, "b", "x"));
    sel = Predicate(MakeAtom("a", "y", CmpOp::kLe, "a", "x"));
  }
};

exec::ExecContext Ctx(exec::BatchMode mode) {
  exec::ExecContext ctx;
  ctx.batch = mode;
  return ctx;
}

exec::GroupBySpec AggSpecOnX() {
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"a", "x"}};
  exec::AggSpec n;
  n.func = exec::AggFunc::kCountStar;
  n.out_rel = "g";
  n.out_name = "n";
  exec::AggSpec s;
  s.func = exec::AggFunc::kSum;
  s.input = Scalar::Column("a", "y");
  s.out_rel = "g";
  s.out_name = "s";
  spec.aggs = {n, s};
  return spec;
}

void BM_SelectTuple(benchmark::State& state) {
  Inputs in(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::Select(in.a, in.sel, Ctx(exec::BatchMode::kOff)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SelectColumnar(benchmark::State& state) {
  Inputs in(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::Select(in.a, in.sel, Ctx(exec::BatchMode::kForce)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_InnerJoinTuple(benchmark::State& state) {
  Inputs in(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::InnerJoin(in.a, in.b, in.eq, Ctx(exec::BatchMode::kOff)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_InnerJoinColumnar(benchmark::State& state) {
  Inputs in(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::InnerJoin(in.a, in.b, in.eq, Ctx(exec::BatchMode::kForce)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_HashAggregateTuple(benchmark::State& state) {
  Inputs in(state.range(0));
  exec::GroupBySpec spec = AggSpecOnX();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::GeneralizedProjection(in.a, spec, Ctx(exec::BatchMode::kOff)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_HashAggregateColumnar(benchmark::State& state) {
  Inputs in(state.range(0));
  exec::GroupBySpec spec = AggSpecOnX();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::GeneralizedProjection(in.a, spec,
                                    Ctx(exec::BatchMode::kForce)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

#define SIZES Arg(1024)->Arg(4096)->Arg(16384)->Unit(benchmark::kMicrosecond)
BENCHMARK(BM_SelectTuple)->SIZES;
BENCHMARK(BM_SelectColumnar)->SIZES;
BENCHMARK(BM_InnerJoinTuple)->SIZES;
BENCHMARK(BM_InnerJoinColumnar)->SIZES;
BENCHMARK(BM_HashAggregateTuple)->SIZES;
BENCHMARK(BM_HashAggregateColumnar)->SIZES;

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_columnar);
