// Serving-layer experiment (DESIGN.md §8): what the sharded plan cache
// saves on the Example 2.1 workload. The paper's motivating query -- r1
// LOJ r2 LOJ_{p13^p23} r3, whose complex predicate makes enumeration
// explore the GS break-up family -- is served through a gsopt::Session
// three ways:
//
//   cold_optimize        every Prepare runs the full pipeline (parse ->
//                        bind -> parameterize -> simplify -> normalize ->
//                        hypergraph -> enumerate -> cost), cache disabled;
//   warm_hit_prepare     same Prepare against a warm cache: parse + bind +
//                        parameterize + fingerprint + sharded lookup, NO
//                        enumeration. The literal rotates every iteration
//                        to prove hits are literal-invariant;
//   warm_execute         PreparedStatement::Execute on the hot path:
//                        substitute $1 into the cached template + execute.
//
// The warm/cold Prepare ratio is the headline number EXPERIMENTS.md
// tracks (acceptance: warm-hit plan acquisition >= 10x faster than cold).
#include <benchmark/benchmark.h>

#include <string>

#include "report.h"

#include "base/check.h"
#include "base/rng.h"
#include "core/session.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

// Example 2.1's schema: p12 = r1.c=r2.c, p13 = r1.f=r3.f, p23 = r2.e=r3.e.
Catalog MakeExample21Catalog(int rows) {
  Catalog cat;
  Rng rng(2024);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = rows / 3 + 2;
  GSOPT_CHECK(
      cat.Register("r1", MakeRandomRelation("r1", {"a", "b", "c", "f"}, opt,
                                            &rng))
          .ok());
  opt.num_rows = rows / 2 + 1;
  GSOPT_CHECK(
      cat.Register("r2", MakeRandomRelation("r2", {"c", "d", "e"}, opt, &rng))
          .ok());
  GSOPT_CHECK(
      cat.Register("r3", MakeRandomRelation("r3", {"e", "f"}, opt, &rng))
          .ok());
  return cat;
}

std::string Example21Sql(int64_t pivot) {
  return "SELECT * FROM r1 LEFT JOIN r2 ON r1.c = r2.c "
         "LEFT JOIN r3 ON r1.f = r3.f AND r2.e = r3.e "
         "WHERE r1.a <= " +
         std::to_string(pivot);
}

// Both sessions enumerate unpruned (the paper's full plan space for
// Example 2.1, including the sigma*-compensated break-up family) so the
// cold loop measures a representative plan search, and both share one
// options signature so warm hits are genuine.
SessionOptions ServingOptions() { return SessionOptions{}.WithPrune(false); }

// Cold plan acquisition: the cache is off, so every Prepare pays the full
// optimization pipeline. The rotating literal matches the warm variant so
// the two loops differ only in cache traffic.
void BM_ColdOptimize(benchmark::State& state) {
  Catalog cat = MakeExample21Catalog(static_cast<int>(state.range(0)));
  Session session(cat, ServingOptions().WithPlanCache(false));
  int64_t pivot = 0;
  double cost = 0;
  for (auto _ : state) {
    auto stmt = session.Prepare(Example21Sql(pivot++ % 5));
    GSOPT_CHECK(stmt.ok());
    // Rvalue form only: DoNotOptimize on a double LVALUE miscompiles
    // under GCC ("+m,r" may place the double in an integer register).
    benchmark::DoNotOptimize(stmt->plan_cost());
    cost = stmt->plan_cost();
  }
  state.counters["plan_cost"] = cost;
}

// Warm plan acquisition: the first Prepare (outside the timed loop) fills
// the cache; every timed Prepare hits it despite the rotating literal.
void BM_WarmHitPrepare(benchmark::State& state) {
  Catalog cat = MakeExample21Catalog(static_cast<int>(state.range(0)));
  Session session(cat, ServingOptions());
  GSOPT_CHECK(session.Prepare(Example21Sql(0)).ok());
  int64_t pivot = 1;
  double cost = 0;
  for (auto _ : state) {
    auto stmt = session.Prepare(Example21Sql(pivot++ % 5));
    GSOPT_CHECK(stmt.ok());
    GSOPT_CHECK(stmt->cache_hit());
    benchmark::DoNotOptimize(stmt->plan_cost());
    cost = stmt->plan_cost();
  }
  state.counters["plan_cost"] = cost;
  state.counters["cache_hits"] =
      static_cast<double>(session.cache_stats().hits);
}

// The prepared-statement hot path: substitute $1 into the cached template
// and execute. This is what a serving loop pays per request once the
// template is resident.
void BM_WarmExecute(benchmark::State& state) {
  Catalog cat = MakeExample21Catalog(static_cast<int>(state.range(0)));
  Session session(cat, ServingOptions());
  auto stmt = session.Prepare(
      "SELECT * FROM r1 LEFT JOIN r2 ON r1.c = r2.c "
      "LEFT JOIN r3 ON r1.f = r3.f AND r2.e = r3.e "
      "WHERE r1.a <= $1");
  GSOPT_CHECK(stmt.ok());
  int64_t pivot = 0;
  int64_t rows = 0;
  for (auto _ : state) {
    auto got = stmt->Bind({Value::Int(pivot++ % 5)}).Execute();
    GSOPT_CHECK(got.ok());
    rows = got->rows.NumRows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

// Correctness guard executed under the bench harness: for each pivot, the
// cache-served result bag-equals a cache-disabled Session's.
void BM_WarmMatchesCold(benchmark::State& state) {
  Catalog cat = MakeExample21Catalog(static_cast<int>(state.range(0)));
  Session warm(cat, ServingOptions());
  Session cold(cat, ServingOptions().WithPlanCache(false));
  bool equal = false;
  for (auto _ : state) {
    equal = true;
    for (int64_t pivot = 0; pivot < 5; ++pivot) {
      auto a = warm.Query(Example21Sql(pivot));
      auto b = cold.Query(Example21Sql(pivot));
      GSOPT_CHECK(a.ok() && b.ok());
      equal = equal && Relation::BagEquals(a->rows, b->rows);
    }
    benchmark::DoNotOptimize(equal);
  }
  GSOPT_CHECK(equal);
  state.counters["equal"] = equal ? 1 : 0;
}

BENCHMARK(BM_ColdOptimize)->Arg(60)->Arg(240)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WarmHitPrepare)
    ->Arg(60)
    ->Arg(240)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WarmExecute)->Arg(60)->Arg(240)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WarmMatchesCold)
    ->Arg(60)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(plan_cache);
