// Shared bench entry point: every bench binary closes with
//
//   GSOPT_BENCH_MAIN(bench_gs_cost);
//
// instead of BENCHMARK_MAIN(), and thereby emits a machine-readable
// baseline next to its console output: BENCH_<name>.json in the working
// directory (Google Benchmark's JSON schema -- per-benchmark wall/cpu
// times, iterations and user counters such as rows -- plus a context
// block carrying the bench name and the git revision the binary was built
// from). Perf PRs diff these files against the committed trajectory to
// prove a win; see EXPERIMENTS.md "Machine-readable baselines".
//
// Explicit --benchmark_out= on the command line wins over the default
// destination, so CI can redirect without editing the binaries.
#ifndef GSOPT_BENCH_REPORT_H_
#define GSOPT_BENCH_REPORT_H_

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"

// Injected by bench/CMakeLists.txt from `git rev-parse`; "unknown" when
// built outside a checkout.
#ifndef GSOPT_GIT_REV
#define GSOPT_GIT_REV "unknown"
#endif

namespace gsopt::bench {

// Process-lifetime executor cache for the serial-vs-parallel bench pairs.
// One Executor per thread count, constructed lazily and reused across
// benchmark repetitions so the timed region measures morsel execution, not
// thread start-up. min_parallel_rows is lowered from its production
// default (2048) so bench-sized inputs actually take the parallel path;
// the pairing convention is that the serial variant of each pair passes no
// executor at all and therefore runs the reference kernels.
inline gsopt::exec::Executor& BenchExecutor(int threads) {
  static std::map<int, std::unique_ptr<gsopt::exec::Executor>> cache;
  std::unique_ptr<gsopt::exec::Executor>& slot = cache[threads];
  if (!slot) {
    slot = std::make_unique<gsopt::exec::Executor>(threads);
    slot->set_min_parallel_rows(64);
  }
  return *slot;
}

inline int RunBenchmarks(const char* name, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    out_flag = "--benchmark_out=BENCH_" + std::string(name) + ".json";
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  benchmark::AddCustomContext("bench_name", name);
  benchmark::AddCustomContext("git_rev", GSOPT_GIT_REV);
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace gsopt::bench

#define GSOPT_BENCH_MAIN(name)                             \
  int main(int argc, char** argv) {                        \
    return gsopt::bench::RunBenchmarks(#name, argc, argv); \
  }

#endif  // GSOPT_BENCH_REPORT_H_
