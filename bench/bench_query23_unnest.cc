// Experiment M3 (DESIGN.md): paper §1.1 join-aggregate queries. Scaling
// |r1| for the doubly-nested correlated COUNT query: tuple iteration
// semantics (commercial baseline) vs unnested (paper Query 2/3) vs
// unnested + reordered. Expectation: TIS grows superlinearly in |r1|;
// unnesting flattens it; reordering helps when r1 dominates.
#include <benchmark/benchmark.h>

#include "report.h"

#include "algebra/execute.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "relational/datagen.h"
#include "unnest/nested_query.h"

namespace gsopt {
namespace {

NestedQuery BuildNested() {
  NestedQuery q;
  q.outer.table = "r1";
  q.outer.condition = CountCondition{Scalar::Column("r1", "b"), CmpOp::kGe};
  auto mid = std::make_shared<NestedBlock>();
  mid->table = "r2";
  mid->correlation = Predicate(MakeAtom("r2", "c", CmpOp::kEq, "r1", "c"));
  mid->condition = CountCondition{Scalar::Column("r2", "a"), CmpOp::kLt};
  auto inner = std::make_shared<NestedBlock>();
  inner->table = "r3";
  inner->correlation =
      Predicate({MakeAtom("r2", "b", CmpOp::kEq, "r3", "b"),
                 MakeAtom("r1", "a", CmpOp::kEq, "r3", "a")});
  mid->nested = inner;
  q.outer.nested = mid;
  q.select_cols = {Attribute{"r1", "a"}};
  return q;
}

Catalog MakeData(int n1) {
  Catalog cat;
  Rng rng(7);
  RandomRelationOptions opt;
  opt.domain = 8;
  opt.null_fraction = 0.05;
  opt.num_rows = n1;
  (void)cat.Register("r1",
                     MakeRandomRelation("r1", {"a", "b", "c"}, opt, &rng));
  opt.num_rows = 48;
  (void)cat.Register("r2",
                     MakeRandomRelation("r2", {"a", "b", "c"}, opt, &rng));
  (void)cat.Register("r3",
                     MakeRandomRelation("r3", {"a", "b", "c"}, opt, &rng));
  return cat;
}

void BM_Tis(benchmark::State& state) {
  Catalog cat = MakeData(static_cast<int>(state.range(0)));
  NestedQuery q = BuildNested();
  int rows = 0;
  for (auto _ : state) {
    auto r = ExecuteTis(q, cat);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = rows;
}

void BM_Unnested(benchmark::State& state) {
  Catalog cat = MakeData(static_cast<int>(state.range(0)));
  NestedQuery q = BuildNested();
  auto tree = UnnestToAlgebra(q, cat);
  if (!tree.ok()) {
    state.SkipWithError("unnest failed");
    return;
  }
  int rows = 0;
  for (auto _ : state) {
    auto r = Execute(*tree, cat);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = rows;
}

void BM_UnnestedReordered(benchmark::State& state) {
  Catalog cat = MakeData(static_cast<int>(state.range(0)));
  NestedQuery q = BuildNested();
  auto tree = UnnestToAlgebra(q, cat);
  if (!tree.ok()) {
    state.SkipWithError("unnest failed");
    return;
  }
  QueryOptimizer opt(cat);
  auto best = opt.Optimize(*tree);
  NodePtr plan = best.ok() ? best->best.expr : *tree;
  int rows = 0;
  for (auto _ : state) {
    auto r = Execute(plan, cat);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = rows;
}

// Parallel half of the serial-vs-parallel pair: the unnested + reordered
// plan run with a 4-lane morsel executor. The unnested plan's joins
// produce the multi-thousand-row intermediates that cross the parallel
// threshold even though |r1| itself is small.
void BM_UnnestedReorderedParallel(benchmark::State& state) {
  Catalog cat = MakeData(static_cast<int>(state.range(0)));
  NestedQuery q = BuildNested();
  auto tree = UnnestToAlgebra(q, cat);
  if (!tree.ok()) {
    state.SkipWithError("unnest failed");
    return;
  }
  QueryOptimizer opt(cat);
  auto best = opt.Optimize(*tree);
  NodePtr plan = best.ok() ? best->best.expr : *tree;
  ExecuteOptions xo;
  xo.executor = &bench::BenchExecutor(4);
  int64_t rows = 0;
  for (auto _ : state) {
    auto r = Execute(plan, cat, xo);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

#define R1SIZES DenseRange(50, 250, 100)->Unit(benchmark::kMillisecond)
BENCHMARK(BM_Tis)->R1SIZES;
BENCHMARK(BM_Unnested)->R1SIZES;
BENCHMARK(BM_UnnestedReordered)->R1SIZES;
BENCHMARK(BM_UnnestedReorderedParallel)->R1SIZES;

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_query23_unnest);
