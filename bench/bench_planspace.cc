// Experiment C1 (DESIGN.md): plan-space completeness. For chain / star /
// mixed outer-join queries with complex predicates, measure association
// trees and valid plans per enumeration mode (binary-only [GALI92-class],
// baseline [BHAR95a-class], generalized = the paper), plus enumeration
// time. Counters: trees, plans.
#include <benchmark/benchmark.h>

#include "report.h"

#include "algebra/execute.h"
#include "algebra/node.h"
#include "base/rng.h"
#include "enumerate/enumerator.h"
#include "hypergraph/build.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Predicate P(const std::string& r1, const std::string& c1,
            const std::string& r2, const std::string& c2) {
  return Predicate(MakeAtom(r1, c1, CmpOp::kEq, r2, c2));
}

std::string R(int i) { return "r" + std::to_string(i); }

// Chain: r1 -> (r2 -> (r3 -> ...)), every second predicate complex
// (references the grandparent too).
NodePtr Chain(int n) {
  NodePtr t = Node::Leaf(R(n));
  for (int i = n - 1; i >= 1; --i) {
    Predicate p = P(R(i), "a", R(i + 1), "a");
    if (i % 2 == 1 && i + 2 <= n) {
      p.AddAtom(MakeAtom(R(i), "b", CmpOp::kLe, R(i + 2), "b"));
    }
    t = Node::LeftOuterJoin(Node::Leaf(R(i)), t, p);
  }
  return t;
}

// Star: r1 at the center, outer-joined with each spoke; one complex
// predicate tying two spokes through the center.
NodePtr Star(int n) {
  NodePtr t = Node::Leaf(R(1));
  for (int i = 2; i <= n; ++i) {
    Predicate p = P(R(1), "a", R(i), "a");
    if (i == n && n >= 3) {
      p.AddAtom(MakeAtom(R(2), "b", CmpOp::kLe, R(i), "b"));
    }
    t = Node::LeftOuterJoin(t, Node::Leaf(R(i)), p);
  }
  return t;
}

// Mixed: joins below, one complex LOJ, one simple LOJ on top (Q4-like,
// extended with extra join spokes).
NodePtr Mixed(int n) {
  // r3..rn joined in a chain, r2 complex-LOJ onto r3/r4, r1 LOJ onto r2.
  NodePtr t = Node::Leaf(R(3));
  for (int i = 4; i <= n; ++i) {
    t = Node::Join(t, Node::Leaf(R(i)), P(R(i - 1), "c", R(i), "c"));
  }
  Predicate complex = P(R(2), "a", R(3), "a");
  if (n >= 4) complex.AddAtom(MakeAtom(R(2), "b", CmpOp::kEq, R(4), "b"));
  t = Node::LeftOuterJoin(Node::Leaf(R(2)), t, complex);
  return Node::LeftOuterJoin(Node::Leaf(R(1)), t, P(R(1), "a", R(2), "a"));
}

void RunModes(benchmark::State& state, NodePtr (*builder)(int)) {
  int n = static_cast<int>(state.range(0));
  EnumMode mode = static_cast<EnumMode>(state.range(1));
  NodePtr query = builder(n);
  auto hg = BuildHypergraph(query);
  if (!hg.ok()) {
    state.SkipWithError("hypergraph build failed");
    return;
  }
  long long trees = 0;
  size_t plans = 0;
  for (auto _ : state) {
    EnumOptions opts;
    opts.mode = mode;
    Enumerator en(*hg, opts);
    auto t = en.CountAssociationTrees();
    auto p = en.EnumerateAll();
    trees = t.ok() ? *t : 0;
    plans = p.ok() ? p->size() : 0;
    benchmark::DoNotOptimize(plans);
  }
  state.counters["trees"] = static_cast<double>(trees);
  state.counters["plans"] = static_cast<double>(plans);
  state.SetLabel(EnumModeName(mode));
}

void BM_Chain(benchmark::State& state) { RunModes(state, Chain); }
void BM_Star(benchmark::State& state) { RunModes(state, Star); }
void BM_Mixed(benchmark::State& state) { RunModes(state, Mixed); }

// Serial-vs-parallel pair grounding the plan-space shapes in execution:
// the as-written Mixed query over near-unique-key tables (output stays
// linear in the table size), without and with a 4-lane morsel executor.
void RunExecuteMixed(benchmark::State& state, bool parallel) {
  const int n = 5;
  Catalog cat;
  Rng rng(161803);
  RandomRelationOptions ropt;
  ropt.num_rows = static_cast<int>(state.range(0));
  ropt.domain = ropt.num_rows;
  ropt.null_fraction = 0.1;
  AddRandomTables(n, ropt, &rng, &cat);
  NodePtr q = Mixed(n);
  ExecuteOptions xo;
  if (parallel) xo.executor = &bench::BenchExecutor(4);
  int64_t rows = 0;
  for (auto _ : state) {
    auto r = Execute(q, cat, xo);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_ExecuteMixedSerial(benchmark::State& state) {
  RunExecuteMixed(state, false);
}
void BM_ExecuteMixedParallel(benchmark::State& state) {
  RunExecuteMixed(state, true);
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (int n : {3, 4, 5, 6, 7}) {
    for (int mode : {0, 1, 2}) {
      b->Args({n, mode});
    }
  }
}

BENCHMARK(BM_Chain)->Apply(Sizes)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Star)->Apply(Sizes)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mixed)->Apply(Sizes)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecuteMixedSerial)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecuteMixedParallel)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_planspace);
