// Experiment M1 (DESIGN.md): paper Example 1.1. Execution time of the
// as-written plan (aggregate 95DETAIL first, then outer join) vs the
// optimizer's plan across the selectivity of the BANKRUPT filter. The
// paper's prediction: with few qualifying suppliers, joining before
// aggregating wins; the crossover moves with selectivity.
// Counters: rows (result size), speedup (as-written / optimized time is
// the ratio of the two benchmark entries).
#include <benchmark/benchmark.h>

#include "report.h"

#include "algebra/execute.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "relational/catalog.h"

namespace gsopt {
namespace {

struct Scenario {
  Catalog cat;
  NodePtr query;
  NodePtr optimized;

  Scenario(int bankrupt_permille, int n95) {
    Rng rng(4242);
    const int nsup = 50, n94 = 80;
    (void)cat.CreateTable("agg94", {"supkey", "partkey", "qty"});
    (void)cat.CreateTable("detail95", {"supkey", "partkey", "qty"});
    (void)cat.CreateTable("sup", {"supkey", "rating"});
    for (int i = 0; i < nsup; ++i) {
      bool bankrupt = rng.Uniform(0, 999) < bankrupt_permille;
      (void)cat.Insert("sup", {Value::Int(i), Value::Int(bankrupt ? 0 : 1)});
    }
    for (int i = 0; i < n94; ++i) {
      (void)cat.Insert("agg94", {Value::Int(rng.Uniform(0, nsup - 1)),
                                 Value::Int(rng.Uniform(0, 5)),
                                 Value::Int(rng.Uniform(1, 30))});
    }
    for (int i = 0; i < n95; ++i) {
      (void)cat.Insert("detail95", {Value::Int(rng.Uniform(0, nsup - 1)),
                                    Value::Int(rng.Uniform(0, 5)),
                                    Value::Int(rng.Uniform(1, 30))});
    }

    NodePtr v2 = Node::Join(
        Node::Leaf("agg94"),
        Node::Select(Node::Leaf("sup"),
                     Predicate(MakeConstAtom("sup", "rating", CmpOp::kEq,
                                             Value::Int(0)))),
        Predicate(MakeAtom("agg94", "supkey", CmpOp::kEq, "sup", "supkey")));
    exec::GroupBySpec spec;
    spec.group_cols = {Attribute{"detail95", "supkey"},
                       Attribute{"detail95", "partkey"}};
    exec::AggSpec cnt;
    cnt.func = exec::AggFunc::kCountStar;
    cnt.out_rel = "V3";
    cnt.out_name = "aggqty95";
    spec.aggs = {cnt};
    NodePtr v3 = Node::GroupBy(Node::Leaf("detail95"), spec);
    Predicate p;
    p.AddAtom(MakeAtom("agg94", "supkey", CmpOp::kEq, "detail95", "supkey"));
    p.AddAtom(
        MakeAtom("agg94", "partkey", CmpOp::kEq, "detail95", "partkey"));
    Atom agg_atom;
    agg_atom.lhs = Scalar::Column("agg94", "qty");
    agg_atom.op = CmpOp::kLt;
    agg_atom.rhs = Scalar::Arith(ArithOp::kMul, Scalar::Const(Value::Int(2)),
                                 Scalar::Column("V3", "aggqty95"));
    p.AddAtom(agg_atom);
    query = Node::LeftOuterJoin(v2, v3, p);

    QueryOptimizer opt(cat);
    auto result = opt.Optimize(query);
    optimized = result.ok() ? result->best.expr : query;
  }
};

void BM_AsWritten(benchmark::State& state) {
  Scenario sc(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)));
  int rows = 0;
  for (auto _ : state) {
    auto r = Execute(sc.query, sc.cat);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = rows;
}

void BM_Optimized(benchmark::State& state) {
  Scenario sc(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)));
  int rows = 0;
  for (auto _ : state) {
    auto r = Execute(sc.optimized, sc.cat);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = rows;
}

// Parallel half of the serial-vs-parallel pair: the optimizer's plan run
// with a 4-lane morsel executor. detail95 (up to 4000 rows) is the input
// that crosses the parallel threshold.
void BM_OptimizedParallel(benchmark::State& state) {
  Scenario sc(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)));
  ExecuteOptions xo;
  xo.executor = &bench::BenchExecutor(4);
  int64_t rows = 0;
  for (auto _ : state) {
    auto r = Execute(sc.optimized, sc.cat, xo);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void Grid(benchmark::internal::Benchmark* b) {
  for (int permille : {500, 200, 50}) {   // bankrupt fraction
    for (int n95 : {1000, 4000}) {        // detail table size
      b->Args({permille, n95});
    }
  }
}

BENCHMARK(BM_AsWritten)->Apply(Grid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Optimized)->Apply(Grid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OptimizedParallel)->Apply(Grid)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_example11_supplier);
