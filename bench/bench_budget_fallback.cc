// Resource governance overhead and fallback-ladder latency.
//
// Two questions a production deployment asks of a cooperative budget:
//  (1) What does carrying an (unexpired) budget cost on the happy path?
//      BM_Optimize vs BM_OptimizeGoverned on the same query.
//  (2) When a hostile query blows the deadline, how quickly does the
//      ladder land on a plan? BM_FallbackLadder measures the full descent
//      generalized -> ... -> syntactic on an exhaustive n-relation chain
//      with a deadline far below what the search needs.
#include <benchmark/benchmark.h>

#include "report.h"

#include <chrono>
#include <string>

#include "algebra/execute.h"
#include "base/budget.h"
#include "base/check.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Catalog MakeCatalog(int n) {
  Catalog cat;
  Rng rng(314);
  RandomRelationOptions opt;
  opt.num_rows = 10;
  opt.domain = 6;
  opt.null_fraction = 0.1;
  AddRandomTables(n, opt, &rng, &cat);
  return cat;
}

NodePtr ChainQuery(int n) {
  NodePtr q = Node::Leaf("r1");
  for (int i = 2; i <= n; ++i) {
    std::string prev = "r" + std::to_string(i - 1);
    std::string cur = "r" + std::to_string(i);
    q = Node::Join(q, Node::Leaf(cur),
                   Predicate(MakeAtom(prev, "a", CmpOp::kEq, cur, "a")));
  }
  return q;
}

void BM_Optimize(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Catalog cat = MakeCatalog(n);
  NodePtr q = ChainQuery(n);
  QueryOptimizer opt(cat);
  for (auto _ : state) {
    auto result = opt.Optimize(q);
    GSOPT_CHECK(result.ok());
    benchmark::DoNotOptimize(result->best.cost);
  }
}

void BM_OptimizeGoverned(benchmark::State& state) {
  // Same query, same pruned search, plus an hour-long deadline that never
  // fires: isolates the probe overhead of governance.
  int n = static_cast<int>(state.range(0));
  Catalog cat = MakeCatalog(n);
  NodePtr q = ChainQuery(n);
  QueryOptimizer opt(cat);
  for (auto _ : state) {
    ResourceBudget budget;
    budget.WithDeadlineAfter(std::chrono::hours(1));
    OptimizeOptions oo;
    oo.budget = &budget;
    auto result = opt.Optimize(q, oo);
    GSOPT_CHECK(result.ok());
    GSOPT_CHECK(!result->degradation.degraded());
    benchmark::DoNotOptimize(result->best.cost);
  }
}

void BM_FallbackLadder(benchmark::State& state) {
  // Exhaustive enumeration with a 5 ms deadline: far too little for the
  // unpruned chain, so every iteration rides the ladder down to a cheaper
  // rung. The measured time is the worst-case answer latency under
  // pressure (deadline + descent overhead), not the search itself.
  int n = static_cast<int>(state.range(0));
  Catalog cat = MakeCatalog(n);
  NodePtr q = ChainQuery(n);
  QueryOptimizer opt(cat);
  int degraded = 0;
  for (auto _ : state) {
    ResourceBudget budget;
    budget.WithDeadlineAfter(std::chrono::milliseconds(5));
    OptimizeOptions oo;
    oo.prune = false;
    oo.budget = &budget;
    auto result = opt.Optimize(q, oo);
    GSOPT_CHECK(result.ok());
    degraded += result->degradation.degraded() ? 1 : 0;
    benchmark::DoNotOptimize(result->best.cost);
  }
  state.counters["degraded"] = degraded;
}

// Serial-vs-parallel pair under governance: a 3-relation chain over large
// near-unique-key tables, executed with an hour-long deadline that never
// fires. Measures what the thread-safe budget probes cost when every lane
// charges rows concurrently, vs the same charges from the serial kernels.
void RunGovernedExecute(benchmark::State& state, bool parallel) {
  Catalog cat;
  Rng rng(271828);
  RandomRelationOptions ropt;
  ropt.num_rows = static_cast<int>(state.range(0));
  ropt.domain = ropt.num_rows;  // ~1 match per key: output stays linear
  ropt.null_fraction = 0.1;
  AddRandomTables(3, ropt, &rng, &cat);
  NodePtr q = ChainQuery(3);
  ExecuteOptions xo;
  if (parallel) xo.executor = &bench::BenchExecutor(4);
  int64_t rows = 0;
  for (auto _ : state) {
    ResourceBudget budget;
    budget.WithDeadlineAfter(std::chrono::hours(1));
    xo.budget = &budget;
    auto r = Execute(q, cat, xo);
    GSOPT_CHECK(r.ok());
    rows = r->NumRows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_GovernedExecuteSerial(benchmark::State& state) {
  RunGovernedExecute(state, false);
}
void BM_GovernedExecuteParallel(benchmark::State& state) {
  RunGovernedExecute(state, true);
}

BENCHMARK(BM_Optimize)->DenseRange(4, 8, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OptimizeGoverned)
    ->DenseRange(4, 8, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FallbackLadder)
    ->DenseRange(10, 14, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GovernedExecuteSerial)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GovernedExecuteParallel)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_budget_fallback);
