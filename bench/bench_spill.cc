// Out-of-core degradation cost: what does a hash join pay to complete
// under a memory cap far below its working state, versus running fully in
// memory?
//
//  * BM_JoinInMemory / BM_JoinSpilled: the same equi-join with an
//    unlimited budget vs. a cap at ~1/4 of the measured build state, so
//    the spilled variant radix-partitions both sides to temp files and
//    processes partitions one at a time. The spilled run's counters
//    (partitions, bytes written/read, recursion rounds) are exported so
//    EXPERIMENTS.md can cite the amplification alongside the slowdown.
//  * BM_AggSpilled: the same contrast for hash aggregation (GROUP BY with
//    COUNT/SUM over a wide key domain).
//  * BM_SpillCapSweep: one input size, caps descending from fits-in-memory
//    to 1/16 of the state -- the degradation curve a deployment consults
//    when sizing operator memory.
//
// The headline result for EXPERIMENTS.md "max joinable size": with the
// cap fixed, the in-memory join fails with kResourceExhausted beyond the
// cap-sized input, while the spilled join completes at every size
// measured here (>= 4x the cap). BM_JoinSpilled's `cap_ratio` counter
// records working-state-bytes / cap for the record.
#include <benchmark/benchmark.h>

#include "report.h"

#include <string>

#include "base/budget.h"
#include "base/check.h"
#include "base/rng.h"
#include "exec/aggregate.h"
#include "exec/eval.h"
#include "exec/spill.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Relation BenchTable(const std::string& name, uint64_t seed, int rows) {
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = rows / 2;  // ~2 matches per key
  opt.null_fraction = 0.05;
  return MakeRandomRelation(name, {"a", "b", "c"}, opt, &rng);
}

// Approximate the join's build-side working state the same way the kernel
// charges it, so cap choices are stated as a fraction of real state.
uint64_t BuildStateBytes(const Relation& b) {
  uint64_t total = 0;
  for (int64_t j = 0; j < b.NumRows(); ++j) {
    total += exec::internal::ApproxTupleBytes(b.row(j)) + 64 + 16;
  }
  return total;
}

void RunJoin(benchmark::State& state, bool spill, uint64_t cap_divisor) {
  int rows = static_cast<int>(state.range(0));
  Relation a = BenchTable("r1", 1001, rows);
  Relation b = BenchTable("r2", 1002, rows);
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")});
  uint64_t build_bytes = BuildStateBytes(b);
  uint64_t cap = cap_divisor == 0 ? 0 : build_bytes / cap_divisor;

  exec::SpillConfig cfg;
  cfg.enabled = spill;
  exec::OperatorStats stats;
  int64_t out_rows = 0;
  for (auto _ : state) {
    ResourceBudget budget;
    if (cap > 0) budget.WithMaxMemory(cap);
    stats = exec::OperatorStats{};
    exec::ExecContext ctx;
    ctx.budget = cap > 0 ? &budget : nullptr;
    ctx.stats = &stats;
    ctx.spill = spill ? &cfg : nullptr;
    auto r = exec::InnerJoin(a, b, p, ctx);
    GSOPT_CHECK(r.ok());
    out_rows = r->NumRows();
    benchmark::DoNotOptimize(out_rows);
  }
  state.counters["rows_out"] = static_cast<double>(out_rows);
  if (cap > 0) {
    state.counters["cap_ratio"] =
        static_cast<double>(build_bytes) / static_cast<double>(cap);
  }
  if (spill) {
    state.counters["spill_parts"] =
        static_cast<double>(stats.spill_partitions);
    state.counters["spill_mb_written"] =
        static_cast<double>(stats.spill_bytes_written) / (1024.0 * 1024.0);
    state.counters["spill_recursions"] =
        static_cast<double>(stats.spill_recursions);
  }
}

void BM_JoinInMemory(benchmark::State& state) {
  RunJoin(state, /*spill=*/false, /*cap_divisor=*/0);
}

void BM_JoinSpilled(benchmark::State& state) {
  // Cap at a quarter of the build state: the workload is 4x the budget.
  RunJoin(state, /*spill=*/true, /*cap_divisor=*/4);
}

void BM_SpillCapSweep(benchmark::State& state) {
  // Fixed input, cap = build_state / range: the degradation curve.
  benchmark::State& s = state;
  int divisor = static_cast<int>(s.range(0));
  Relation a = BenchTable("r1", 2001, 20000);
  Relation b = BenchTable("r2", 2002, 20000);
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")});
  uint64_t cap = BuildStateBytes(b) / static_cast<uint64_t>(divisor);
  exec::SpillConfig cfg;
  cfg.enabled = true;
  for (auto _ : s) {
    ResourceBudget budget;
    budget.WithMaxMemory(cap);
    exec::ExecContext ctx;
    ctx.budget = &budget;
    ctx.spill = &cfg;
    auto r = exec::InnerJoin(a, b, p, ctx);
    GSOPT_CHECK(r.ok());
    benchmark::DoNotOptimize(r->NumRows());
  }
}

void BM_AggSpilled(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  bool spill = state.range(1) != 0;
  Relation r = BenchTable("r1", 3001, rows);
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r1", "a"}};
  exec::AggSpec cnt;
  cnt.func = exec::AggFunc::kCountStar;
  cnt.out_rel = "v";
  cnt.out_name = "n";
  exec::AggSpec sum;
  sum.func = exec::AggFunc::kSum;
  sum.input = Scalar::Column("r1", "b");
  sum.out_rel = "v";
  sum.out_name = "s";
  spec.aggs = {cnt, sum};
  spec.synthetic_vid = false;

  // Cap at a quarter of what grouping the whole input retains.
  uint64_t cap = 0;
  {
    exec::ExecContext probe_ctx;
    ResourceBudget meter;
    probe_ctx.budget = &meter;
    auto full = exec::GeneralizedProjection(r, spec, probe_ctx);
    GSOPT_CHECK(full.ok());
    cap = meter.memory_peak() / 4;
    if (cap < 1024) cap = 1024;
  }
  exec::SpillConfig cfg;
  cfg.enabled = true;
  for (auto _ : state) {
    ResourceBudget budget;
    if (spill) budget.WithMaxMemory(cap);
    exec::ExecContext ctx;
    ctx.budget = spill ? &budget : nullptr;
    ctx.spill = spill ? &cfg : nullptr;
    auto out = exec::GeneralizedProjection(r, spec, ctx);
    GSOPT_CHECK(out.ok());
    benchmark::DoNotOptimize(out->NumRows());
  }
}

BENCHMARK(BM_JoinInMemory)
    ->RangeMultiplier(2)
    ->Range(8192, 32768)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinSpilled)
    ->RangeMultiplier(2)
    ->Range(8192, 32768)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpillCapSweep)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AggSpilled)
    ->Args({32768, 0})
    ->Args({32768, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_spill);
