// Experiment C2 (DESIGN.md): "The cost of the generalized selection
// operator is very similar to the cost of MGOJ ... or GOJ" (paper §4).
// Microbenchmark of the operator kernels at equal input sizes: inner join,
// left outer join, MGOJ with one preserved group, and GS applied to a
// materialized join result.
#include <benchmark/benchmark.h>

#include "report.h"

#include "base/rng.h"
#include "exec/eval.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

struct Inputs {
  Relation a, b;
  Predicate eq;
  Predicate extra;

  explicit Inputs(int rows) {
    Rng rng(99);
    RandomRelationOptions opt;
    opt.num_rows = rows;
    opt.domain = rows / 4 + 1;
    a = MakeRandomRelation("a", {"x", "y"}, opt, &rng);
    b = MakeRandomRelation("b", {"x", "y"}, opt, &rng);
    eq = Predicate(MakeAtom("a", "x", CmpOp::kEq, "b", "x"));
    extra = Predicate(MakeAtom("a", "y", CmpOp::kLe, "b", "y"));
  }
};

void BM_InnerJoin(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::InnerJoin(in.a, in.b, in.eq));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_LeftOuterJoin(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::LeftOuterJoin(in.a, in.b, in.eq));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Mgoj(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  std::vector<exec::PreservedGroup> groups{exec::PreservedGroup{"a"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Mgoj(in.a, in.b, in.eq, groups));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_GeneralizedSelection(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  Relation joined = *exec::LeftOuterJoin(in.a, in.b, in.eq);
  std::vector<exec::PreservedGroup> groups{exec::PreservedGroup{"a"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::GeneralizedSelection(joined, in.extra, groups));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_GsTwoGroups(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  Relation joined = *exec::FullOuterJoin(in.a, in.b, in.eq);
  std::vector<exec::PreservedGroup> groups{exec::PreservedGroup{"a"},
                                           exec::PreservedGroup{"b"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::GeneralizedSelection(joined, in.extra, groups));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PlainSelect(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  Relation joined = *exec::LeftOuterJoin(in.a, in.b, in.eq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Select(joined, in.extra));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// The observability overhead claim: BM_InnerJoin runs with stats disabled
// (the default ExecContext) and this variant collects OperatorStats.
// Their gap bounds what instrumented kernels cost; with a null stats
// pointer the kernels pay only dead branch tests, so BM_InnerJoin itself
// must stay within noise of its pre-instrumentation baseline.
void BM_InnerJoinWithStats(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  uint64_t probes = 0;
  for (auto _ : state) {
    exec::OperatorStats stats;
    exec::ExecContext ctx{nullptr, &stats};
    benchmark::DoNotOptimize(exec::InnerJoin(in.a, in.b, in.eq, ctx));
    probes = stats.probe_rows;
  }
  state.counters["probe_rows"] = static_cast<double>(probes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// Serial-vs-parallel pairs: the same kernels with a morsel-parallel
// Executor attached (second bench argument = thread count). A 1-thread
// executor has a single lane, so ExecContext::Parallel declines and the
// /1 rows measure the serial kernels inside the same grid -- the in-pair
// baseline. The serial benches above remain the reference;
// EXPERIMENTS.md tabulates the ratios.
exec::ExecContext ParallelCtx(benchmark::State& state) {
  return exec::ExecContext{nullptr, nullptr,
                           &bench::BenchExecutor(
                               static_cast<int>(state.range(1)))};
}

void BM_InnerJoinParallel(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  exec::ExecContext ctx = ParallelCtx(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::InnerJoin(in.a, in.b, in.eq, ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_MgojParallel(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  exec::ExecContext ctx = ParallelCtx(state);
  std::vector<exec::PreservedGroup> groups{exec::PreservedGroup{"a"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Mgoj(in.a, in.b, in.eq, groups, ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_GeneralizedSelectionParallel(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  Relation joined = *exec::LeftOuterJoin(in.a, in.b, in.eq);
  exec::ExecContext ctx = ParallelCtx(state);
  std::vector<exec::PreservedGroup> groups{exec::PreservedGroup{"a"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::GeneralizedSelection(joined, in.extra, groups, ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PlainSelectParallel(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  Relation joined = *exec::LeftOuterJoin(in.a, in.b, in.eq);
  exec::ExecContext ctx = ParallelCtx(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Select(joined, in.extra, ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// rows x threads grid: the large size backs the EXPERIMENTS.md speedup
// table; the mid size shows where fan-out overhead still pays off.
void ParallelGrid(benchmark::internal::Benchmark* b) {
  for (int rows : {1024, 16384}) {
    for (int threads : {1, 2, 4, 8}) {
      b->Args({rows, threads});
    }
  }
  b->Unit(benchmark::kMicrosecond);
}

#define SIZES RangeMultiplier(4)->Range(64, 16384)->Unit(benchmark::kMicrosecond)
BENCHMARK(BM_InnerJoin)->SIZES;
BENCHMARK(BM_LeftOuterJoin)->SIZES;
BENCHMARK(BM_Mgoj)->SIZES;
BENCHMARK(BM_GeneralizedSelection)->SIZES;
BENCHMARK(BM_GsTwoGroups)->SIZES;
BENCHMARK(BM_PlainSelect)->SIZES;
BENCHMARK(BM_InnerJoinWithStats)->SIZES;
BENCHMARK(BM_InnerJoinParallel)->Apply(ParallelGrid);
BENCHMARK(BM_MgojParallel)->Apply(ParallelGrid);
BENCHMARK(BM_GeneralizedSelectionParallel)->Apply(ParallelGrid);
BENCHMARK(BM_PlainSelectParallel)->Apply(ParallelGrid);

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_gs_cost);
