// Experiment C3 (DESIGN.md): integration into dynamic-programming
// enumeration (paper §4). Optimization wall-time and plan quality with the
// Selinger-style per-state pruning vs exhaustive enumeration, and across
// enumeration modes, on mixed outer-join queries of growing size.
// Counters: plans (frontier size), best_cost, aswritten_cost.
#include <benchmark/benchmark.h>

#include "report.h"

#include "algebra/execute.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "enumerate/random_query.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

struct Workload {
  Catalog cat;
  NodePtr query;

  explicit Workload(int n, uint64_t seed) {
    Rng rng(seed);
    RandomRelationOptions opt;
    opt.num_rows = 60;
    opt.domain = 12;
    opt.null_fraction = 0.05;
    AddRandomTables(n, opt, &rng, &cat);
    RandomQueryOptions qopt;
    qopt.num_rels = n;
    qopt.loj_prob = 0.4;
    qopt.foj_prob = 0.1;
    qopt.extra_atom_prob = 0.5;
    query = MakeRandomQuery(qopt, &rng);
  }
};

void Run(benchmark::State& state, bool prune, EnumMode mode) {
  Workload w(static_cast<int>(state.range(0)), 31337);
  QueryOptimizer opt(w.cat);
  OptimizeOptions oo;
  oo.prune = prune;
  oo.mode = mode;
  // Plan-quality counters measured once; the loop times Optimize() itself.
  {
    auto result = opt.Optimize(w.query, oo);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    state.counters["plans"] =
        static_cast<double>(result->plans_considered);
    state.counters["best_cost"] = result->best.cost;
    state.counters["aswritten_cost"] = result->original_cost;
  }
  for (auto _ : state) {
    auto result = opt.Optimize(w.query, oo);
    benchmark::DoNotOptimize(result);
  }
}

// Serial-vs-parallel pair on the plan the enumeration produces: the DP
// benches above time Optimize(); this pair times Execute() of the chosen
// plan, without and with a 4-lane morsel executor, so the optimizer bench
// also anchors what its plans cost to run.
void RunExecuteBest(benchmark::State& state, bool parallel) {
  Workload w(static_cast<int>(state.range(0)), 31337);
  QueryOptimizer opt(w.cat);
  auto result = opt.Optimize(w.query);
  NodePtr plan = result.ok() ? result->best.expr : w.query;
  ExecuteOptions xo;
  if (parallel) xo.executor = &bench::BenchExecutor(4);
  int64_t rows = 0;
  for (auto _ : state) {
    auto r = Execute(plan, w.cat, xo);
    rows = r.ok() ? r->NumRows() : -1;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_ExecuteBestSerial(benchmark::State& state) {
  RunExecuteBest(state, false);
}
void BM_ExecuteBestParallel(benchmark::State& state) {
  RunExecuteBest(state, true);
}

void BM_GeneralizedPruned(benchmark::State& state) {
  Run(state, true, EnumMode::kGeneralized);
}
void BM_GeneralizedExhaustive(benchmark::State& state) {
  Run(state, false, EnumMode::kGeneralized);
}
void BM_BaselinePruned(benchmark::State& state) {
  Run(state, true, EnumMode::kBaseline);
}
void BM_BinaryOnlyPruned(benchmark::State& state) {
  Run(state, true, EnumMode::kBinaryOnly);
}

BENCHMARK(BM_GeneralizedPruned)->DenseRange(3, 7, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GeneralizedExhaustive)->DenseRange(3, 6, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BaselinePruned)->DenseRange(3, 7, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BinaryOnlyPruned)->DenseRange(3, 7, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecuteBestSerial)->DenseRange(3, 6, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecuteBestParallel)->DenseRange(3, 6, 1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_optimizer_dp);
