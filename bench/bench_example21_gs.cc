// Experiment E1 (DESIGN.md): Example 2.1 at scale. The paper's T1/T2
// compensation -- sigma*_{p13}[r1r2](T2) == T1 -- run over growing
// relations: the cost of computing T2 (simple outer join) plus the GS
// compensation vs computing T1 directly (complex-predicate outer join
// forced to nested loops). This quantifies why the break-up widens the
// plan space at acceptable operator cost.
#include <benchmark/benchmark.h>

#include "report.h"

#include "base/check.h"
#include "base/rng.h"
#include "exec/eval.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

struct Inputs {
  Relation r1, r2, r3;
  Predicate p12, p13, p23, p13_and_p23;

  explicit Inputs(int rows) {
    Rng rng(2024);
    RandomRelationOptions opt;
    opt.num_rows = rows;
    opt.domain = rows / 3 + 2;
    r1 = MakeRandomRelation("r1", {"a", "b", "c", "f"}, opt, &rng);
    opt.num_rows = rows / 2 + 1;
    r2 = MakeRandomRelation("r2", {"c", "d", "e"}, opt, &rng);
    r3 = MakeRandomRelation("r3", {"e", "f"}, opt, &rng);
    p12 = Predicate(MakeAtom("r1", "c", CmpOp::kEq, "r2", "c"));
    p13 = Predicate(MakeAtom("r1", "f", CmpOp::kEq, "r3", "f"));
    p23 = Predicate(MakeAtom("r2", "e", CmpOp::kEq, "r3", "e"));
    p13_and_p23 = Predicate::And(p13, p23);
  }
};

// T1 as written: the complex predicate p13^p23 is applied at the outer
// join (no single-edge hash key covers it fully: p13 and p23 hash
// separately, the pair must still be verified).
void BM_T1AsWritten(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  int rows = 0;
  for (auto _ : state) {
    Relation t1 = *exec::LeftOuterJoin(
        *exec::LeftOuterJoin(in.r1, in.r2, in.p12), in.r3, in.p13_and_p23);
    rows = t1.NumRows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = rows;
}

// T2 + GS compensation: join on p23 only, then sigma*_{p13}[r1r2].
void BM_T2PlusCompensation(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  std::vector<exec::PreservedGroup> groups{exec::PreservedGroup{"r1", "r2"}};
  int rows = 0;
  for (auto _ : state) {
    Relation t2 = *exec::LeftOuterJoin(
        *exec::LeftOuterJoin(in.r1, in.r2, in.p12), in.r3, in.p23);
    Relation fixed = *exec::GeneralizedSelection(t2, in.p13, groups);
    rows = fixed.NumRows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = rows;
}

// Correctness guard executed once per size under the bench harness.
void BM_CompensationMatchesT1(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  std::vector<exec::PreservedGroup> groups{exec::PreservedGroup{"r1", "r2"}};
  bool equal = false;
  for (auto _ : state) {
    Relation t1 = *exec::LeftOuterJoin(
        *exec::LeftOuterJoin(in.r1, in.r2, in.p12), in.r3, in.p13_and_p23);
    Relation t2 = *exec::LeftOuterJoin(
        *exec::LeftOuterJoin(in.r1, in.r2, in.p12), in.r3, in.p23);
    Relation fixed = *exec::GeneralizedSelection(t2, in.p13, groups);
    equal = Relation::BagEquals(t1, fixed);
    GSOPT_CHECK_MSG(equal, "E1 compensation must reproduce T1");
    benchmark::DoNotOptimize(equal);
  }
  state.counters["equal"] = equal ? 1 : 0;
}

// Serial-vs-parallel pairs: the same two strategies with a morsel-parallel
// Executor attached (second argument = thread count). The serial variants
// above stay the reference; EXPERIMENTS.md tabulates the ratios.
void BM_T1AsWrittenParallel(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  exec::ExecContext ctx{nullptr, nullptr,
                        &bench::BenchExecutor(static_cast<int>(state.range(1)))};
  int64_t rows = 0;
  for (auto _ : state) {
    Relation t1 = *exec::LeftOuterJoin(
        *exec::LeftOuterJoin(in.r1, in.r2, in.p12, ctx), in.r3,
        in.p13_and_p23, ctx);
    rows = t1.NumRows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_T2PlusCompensationParallel(benchmark::State& state) {
  Inputs in(static_cast<int>(state.range(0)));
  exec::ExecContext ctx{nullptr, nullptr,
                        &bench::BenchExecutor(static_cast<int>(state.range(1)))};
  std::vector<exec::PreservedGroup> groups{exec::PreservedGroup{"r1", "r2"}};
  int64_t rows = 0;
  for (auto _ : state) {
    Relation t2 = *exec::LeftOuterJoin(
        *exec::LeftOuterJoin(in.r1, in.r2, in.p12, ctx), in.r3, in.p23, ctx);
    Relation fixed = *exec::GeneralizedSelection(t2, in.p13, groups, ctx);
    rows = fixed.NumRows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void ParallelGrid(benchmark::internal::Benchmark* b) {
  for (int rows : {512, 2048}) {
    for (int threads : {1, 2, 4, 8}) {
      b->Args({rows, threads});
    }
  }
  b->Unit(benchmark::kMicrosecond);
}

#define SIZES RangeMultiplier(4)->Range(32, 2048)->Unit(benchmark::kMicrosecond)
BENCHMARK(BM_T1AsWritten)->SIZES;
BENCHMARK(BM_T2PlusCompensation)->SIZES;
BENCHMARK(BM_CompensationMatchesT1)->SIZES;
BENCHMARK(BM_T1AsWrittenParallel)->Apply(ParallelGrid);
BENCHMARK(BM_T2PlusCompensationParallel)->Apply(ParallelGrid);

}  // namespace
}  // namespace gsopt

GSOPT_BENCH_MAIN(bench_example21_gs);
