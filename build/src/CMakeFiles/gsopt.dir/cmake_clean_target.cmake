file(REMOVE_RECURSE
  "libgsopt.a"
)
