
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/execute.cc" "src/CMakeFiles/gsopt.dir/algebra/execute.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/algebra/execute.cc.o.d"
  "/root/repo/src/algebra/explain.cc" "src/CMakeFiles/gsopt.dir/algebra/explain.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/algebra/explain.cc.o.d"
  "/root/repo/src/algebra/node.cc" "src/CMakeFiles/gsopt.dir/algebra/node.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/algebra/node.cc.o.d"
  "/root/repo/src/algebra/normalize.cc" "src/CMakeFiles/gsopt.dir/algebra/normalize.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/algebra/normalize.cc.o.d"
  "/root/repo/src/algebra/schema_infer.cc" "src/CMakeFiles/gsopt.dir/algebra/schema_infer.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/algebra/schema_infer.cc.o.d"
  "/root/repo/src/algebra/simplify.cc" "src/CMakeFiles/gsopt.dir/algebra/simplify.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/algebra/simplify.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/CMakeFiles/gsopt.dir/core/optimizer.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/core/optimizer.cc.o.d"
  "/root/repo/src/enumerate/enumerator.cc" "src/CMakeFiles/gsopt.dir/enumerate/enumerator.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/enumerate/enumerator.cc.o.d"
  "/root/repo/src/enumerate/random_query.cc" "src/CMakeFiles/gsopt.dir/enumerate/random_query.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/enumerate/random_query.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/gsopt.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/eval.cc" "src/CMakeFiles/gsopt.dir/exec/eval.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/exec/eval.cc.o.d"
  "/root/repo/src/hypergraph/analysis.cc" "src/CMakeFiles/gsopt.dir/hypergraph/analysis.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/hypergraph/analysis.cc.o.d"
  "/root/repo/src/hypergraph/build.cc" "src/CMakeFiles/gsopt.dir/hypergraph/build.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/hypergraph/build.cc.o.d"
  "/root/repo/src/hypergraph/hypergraph.cc" "src/CMakeFiles/gsopt.dir/hypergraph/hypergraph.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/hypergraph/hypergraph.cc.o.d"
  "/root/repo/src/hypergraph/querygraph.cc" "src/CMakeFiles/gsopt.dir/hypergraph/querygraph.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/hypergraph/querygraph.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/gsopt.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/stats.cc" "src/CMakeFiles/gsopt.dir/optimizer/stats.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/optimizer/stats.cc.o.d"
  "/root/repo/src/relational/catalog.cc" "src/CMakeFiles/gsopt.dir/relational/catalog.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/relational/catalog.cc.o.d"
  "/root/repo/src/relational/csv.cc" "src/CMakeFiles/gsopt.dir/relational/csv.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/relational/csv.cc.o.d"
  "/root/repo/src/relational/datagen.cc" "src/CMakeFiles/gsopt.dir/relational/datagen.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/relational/datagen.cc.o.d"
  "/root/repo/src/relational/expr.cc" "src/CMakeFiles/gsopt.dir/relational/expr.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/relational/expr.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/gsopt.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/gsopt.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/gsopt.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/relational/value.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/gsopt.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/gsopt.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/gsopt.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/sql/parser.cc.o.d"
  "/root/repo/src/unnest/tis.cc" "src/CMakeFiles/gsopt.dir/unnest/tis.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/unnest/tis.cc.o.d"
  "/root/repo/src/unnest/unnest.cc" "src/CMakeFiles/gsopt.dir/unnest/unnest.cc.o" "gcc" "src/CMakeFiles/gsopt.dir/unnest/unnest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
