# Empty compiler generated dependencies file for gsopt.
# This may be replaced when dependencies are built.
