file(REMOVE_RECURSE
  "CMakeFiles/supplier_analysis.dir/supplier_analysis.cc.o"
  "CMakeFiles/supplier_analysis.dir/supplier_analysis.cc.o.d"
  "supplier_analysis"
  "supplier_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplier_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
