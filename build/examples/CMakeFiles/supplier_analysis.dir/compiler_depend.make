# Empty compiler generated dependencies file for supplier_analysis.
# This may be replaced when dependencies are built.
