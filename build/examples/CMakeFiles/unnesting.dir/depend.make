# Empty dependencies file for unnesting.
# This may be replaced when dependencies are built.
