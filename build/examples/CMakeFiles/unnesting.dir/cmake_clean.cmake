file(REMOVE_RECURSE
  "CMakeFiles/unnesting.dir/unnesting.cc.o"
  "CMakeFiles/unnesting.dir/unnesting.cc.o.d"
  "unnesting"
  "unnesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unnesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
