file(REMOVE_RECURSE
  "CMakeFiles/full_pipeline_property_test.dir/core/full_pipeline_property_test.cc.o"
  "CMakeFiles/full_pipeline_property_test.dir/core/full_pipeline_property_test.cc.o.d"
  "full_pipeline_property_test"
  "full_pipeline_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_pipeline_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
