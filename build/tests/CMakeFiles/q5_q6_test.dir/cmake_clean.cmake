file(REMOVE_RECURSE
  "CMakeFiles/q5_q6_test.dir/enumerate/q5_q6_test.cc.o"
  "CMakeFiles/q5_q6_test.dir/enumerate/q5_q6_test.cc.o.d"
  "q5_q6_test"
  "q5_q6_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/q5_q6_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
