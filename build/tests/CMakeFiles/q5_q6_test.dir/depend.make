# Empty dependencies file for q5_q6_test.
# This may be replaced when dependencies are built.
