# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for q5_q6_test.
