# Empty compiler generated dependencies file for unnest_test.
# This may be replaced when dependencies are built.
