file(REMOVE_RECURSE
  "CMakeFiles/unnest_test.dir/unnest/unnest_test.cc.o"
  "CMakeFiles/unnest_test.dir/unnest/unnest_test.cc.o.d"
  "unnest_test"
  "unnest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unnest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
