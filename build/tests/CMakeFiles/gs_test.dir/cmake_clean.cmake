file(REMOVE_RECURSE
  "CMakeFiles/gs_test.dir/exec/gs_test.cc.o"
  "CMakeFiles/gs_test.dir/exec/gs_test.cc.o.d"
  "gs_test"
  "gs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
