file(REMOVE_RECURSE
  "CMakeFiles/agg_pullup_test.dir/algebra/agg_pullup_test.cc.o"
  "CMakeFiles/agg_pullup_test.dir/algebra/agg_pullup_test.cc.o.d"
  "agg_pullup_test"
  "agg_pullup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_pullup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
