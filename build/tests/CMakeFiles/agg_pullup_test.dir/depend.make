# Empty dependencies file for agg_pullup_test.
# This may be replaced when dependencies are built.
