file(REMOVE_RECURSE
  "CMakeFiles/optimizer_facade_test.dir/core/optimizer_facade_test.cc.o"
  "CMakeFiles/optimizer_facade_test.dir/core/optimizer_facade_test.cc.o.d"
  "optimizer_facade_test"
  "optimizer_facade_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
