# Empty dependencies file for optimizer_facade_test.
# This may be replaced when dependencies are built.
