file(REMOVE_RECURSE
  "CMakeFiles/theorem1_property_test.dir/enumerate/theorem1_property_test.cc.o"
  "CMakeFiles/theorem1_property_test.dir/enumerate/theorem1_property_test.cc.o.d"
  "theorem1_property_test"
  "theorem1_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
