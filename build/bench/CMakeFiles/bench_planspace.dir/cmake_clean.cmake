file(REMOVE_RECURSE
  "CMakeFiles/bench_planspace.dir/bench_planspace.cc.o"
  "CMakeFiles/bench_planspace.dir/bench_planspace.cc.o.d"
  "bench_planspace"
  "bench_planspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_planspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
