# Empty compiler generated dependencies file for bench_planspace.
# This may be replaced when dependencies are built.
