# Empty compiler generated dependencies file for bench_fig1_hypergraph.
# This may be replaced when dependencies are built.
