file(REMOVE_RECURSE
  "CMakeFiles/bench_query23_unnest.dir/bench_query23_unnest.cc.o"
  "CMakeFiles/bench_query23_unnest.dir/bench_query23_unnest.cc.o.d"
  "bench_query23_unnest"
  "bench_query23_unnest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query23_unnest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
