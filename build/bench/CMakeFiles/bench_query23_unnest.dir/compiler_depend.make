# Empty compiler generated dependencies file for bench_query23_unnest.
# This may be replaced when dependencies are built.
