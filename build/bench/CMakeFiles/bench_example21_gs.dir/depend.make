# Empty dependencies file for bench_example21_gs.
# This may be replaced when dependencies are built.
