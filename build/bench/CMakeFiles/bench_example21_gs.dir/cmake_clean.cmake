file(REMOVE_RECURSE
  "CMakeFiles/bench_example21_gs.dir/bench_example21_gs.cc.o"
  "CMakeFiles/bench_example21_gs.dir/bench_example21_gs.cc.o.d"
  "bench_example21_gs"
  "bench_example21_gs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example21_gs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
