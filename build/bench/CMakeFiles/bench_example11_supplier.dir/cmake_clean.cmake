file(REMOVE_RECURSE
  "CMakeFiles/bench_example11_supplier.dir/bench_example11_supplier.cc.o"
  "CMakeFiles/bench_example11_supplier.dir/bench_example11_supplier.cc.o.d"
  "bench_example11_supplier"
  "bench_example11_supplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example11_supplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
