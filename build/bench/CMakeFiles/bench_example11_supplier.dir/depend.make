# Empty dependencies file for bench_example11_supplier.
# This may be replaced when dependencies are built.
