file(REMOVE_RECURSE
  "CMakeFiles/bench_gs_cost.dir/bench_gs_cost.cc.o"
  "CMakeFiles/bench_gs_cost.dir/bench_gs_cost.cc.o.d"
  "bench_gs_cost"
  "bench_gs_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gs_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
