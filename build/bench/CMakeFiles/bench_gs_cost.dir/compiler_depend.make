# Empty compiler generated dependencies file for bench_gs_cost.
# This may be replaced when dependencies are built.
