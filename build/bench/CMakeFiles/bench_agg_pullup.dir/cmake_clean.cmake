file(REMOVE_RECURSE
  "CMakeFiles/bench_agg_pullup.dir/bench_agg_pullup.cc.o"
  "CMakeFiles/bench_agg_pullup.dir/bench_agg_pullup.cc.o.d"
  "bench_agg_pullup"
  "bench_agg_pullup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agg_pullup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
