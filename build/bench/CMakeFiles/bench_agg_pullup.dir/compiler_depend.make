# Empty compiler generated dependencies file for bench_agg_pullup.
# This may be replaced when dependencies are built.
