file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_dp.dir/bench_optimizer_dp.cc.o"
  "CMakeFiles/bench_optimizer_dp.dir/bench_optimizer_dp.cc.o.d"
  "bench_optimizer_dp"
  "bench_optimizer_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
