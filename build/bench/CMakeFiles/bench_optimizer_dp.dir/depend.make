# Empty dependencies file for bench_optimizer_dp.
# This may be replaced when dependencies are built.
