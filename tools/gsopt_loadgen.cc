// gsopt_loadgen: open-loop load generator for gsopt_server, emitting a
// machine-readable BENCH_server.json (latency percentiles, achieved QPS,
// shed rate) next to its console summary -- the serving-layer counterpart
// of the GSOPT_BENCH_MAIN baselines (bench/report.h, EXPERIMENTS.md §N1).
//
// Open loop means send times are scheduled on a fixed cadence (the
// aggregate --qps spread across --connections), NOT gated on responses:
// if the server slows down, requests pile up in flight and latency --
// not offered load -- absorbs the pressure, which is what exposes
// admission-control behaviour. A sender that falls behind its schedule
// fires immediately until it catches up.
//
// Each connection runs a sender thread and a receiver thread; responses
// arrive in request order (protocol.h), so a per-connection FIFO of send
// timestamps pairs every response with its request without tagging.
//
// Traffic mix: --warm-ratio of requests EXECUTE a prepared statement with
// a varying parameter (the plan-cache-hit hot path: no parse, no plan
// search); the remainder are one-shot QUERY texts drawn from a pool of
// structurally distinct shapes (distinct fingerprints -- the first
// arrival of each shape is a genuine optimize, repeats exercise the
// statement-text memo + plan cache). Tenants t0..tN-1 are assigned to
// connections round-robin.
//
//   gsopt_loadgen --self-serve --qps=6000 --duration-sec=5   # CI smoke
//   gsopt_loadgen --port=7433 --connections=16 --qps=20000
//
// Exit codes: 0 ok (assertions passed); 1 assertion failed; 2 bad usage;
// 3 setup failure (connect/prepare).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "relational/datagen.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using Clock = std::chrono::steady_clock;
using gsopt::Status;
using gsopt::Value;
using gsopt::server::Client;
using gsopt::server::Response;

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

int Usage() {
  std::cerr <<
      "usage: gsopt_loadgen [options]\n"
      "  --host=ADDR           server address (default 127.0.0.1)\n"
      "  --port=N              server port (required unless --self-serve)\n"
      "  --self-serve          run an in-process server on loopback\n"
      "  --connections=N       client connections (default 8)\n"
      "  --qps=N               aggregate offered load (default 6000)\n"
      "  --duration-sec=N      timed window (default 5)\n"
      "  --warm-ratio=P        fraction EXECUTE-prepared (default 0.9)\n"
      "  --tenants=N           distinct tenants, round-robin (default 2)\n"
      "  --out=FILE            JSON report (default BENCH_server.json)\n"
      "  --assert-min-qps=N    fail if achieved QPS below N\n"
      "  --assert-p99-ms=N     fail if p99 latency above N ms\n"
      "  --assert-no-errors    fail on any error/protocol error (sheds ok)\n"
      "  [self-serve shape] --workers=N --tables=N --rows=N --domain=N\n"
      "                     --max-queue=N --deadline-ms=N\n";
  return 2;
}

struct ConnStats {
  std::vector<double> latencies_ms;
  uint64_t sent = 0;
  uint64_t rows = 0;
  uint64_t sheds = 0;
  uint64_t errors = 0;
  uint64_t protocol_errors = 0;
  uint64_t cache_hits = 0;
  uint64_t degraded = 0;
  uint64_t send_failures = 0;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

// One connection's open-loop run: pace sends on the shared cadence,
// receive in order, pair latencies through the timestamp FIFO.
void RunConnection(const std::string& host, uint16_t port,
                   const std::string& tenant, int conn_index,
                   std::chrono::nanoseconds interval, Clock::time_point start,
                   Clock::time_point stop_at, double warm_ratio,
                   const std::vector<std::string>& cold_pool,
                   ConnStats* stats, std::atomic<bool>* setup_failed) {
  auto client = Client::Connect(host, port, tenant);
  if (!client.ok()) {
    std::cerr << "conn " << conn_index
              << ": connect failed: " << client.status().ToString() << "\n";
    setup_failed->store(true);
    return;
  }
  Client c = std::move(client).value();

  // The warm statement: a parameterized point lookup, EXECUTEd with a
  // varying value -- after the first round this is the pure cache-hit
  // serving path.
  auto stmt = c.Prepare("SELECT * FROM r1 WHERE r1.a = $1");
  if (!stmt.ok()) {
    std::cerr << "conn " << conn_index
              << ": prepare failed: " << stmt.status().ToString() << "\n";
    setup_failed->store(true);
    return;
  }
  uint64_t stmt_id = stmt.value();
  // Prime the template outside the timed window.
  (void)c.Execute(stmt_id, {Value::Int(0)});

  std::mutex fifo_mu;
  std::deque<Clock::time_point> fifo;
  std::atomic<uint64_t> sent{0};
  std::atomic<bool> sender_done{false};

  std::thread receiver([&] {
    uint64_t received = 0;
    while (true) {
      // Only block in a read when a response is actually outstanding
      // (received < sent): the socket is blocking, so a read with nothing
      // in flight would strand this thread forever.
      if (received >= sent.load(std::memory_order_acquire)) {
        if (sender_done.load(std::memory_order_acquire) &&
            received >= sent.load(std::memory_order_acquire)) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      auto resp = c.RecvResponse();
      Clock::time_point sent_at;
      {
        std::lock_guard<std::mutex> lock(fifo_mu);
        if (fifo.empty()) {
          // Response without a request: protocol desync; stop reading.
          if (resp.ok()) ++stats->protocol_errors;
          break;
        }
        sent_at = fifo.front();
        fifo.pop_front();
      }
      ++received;
      if (!resp.ok()) {
        // Read failure (EOF / timeout): the connection is gone; every
        // request still in the FIFO will never be answered.
        ++stats->protocol_errors;
        break;
      }
      double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            sent_at)
                      .count();
      const Response& r = resp.value();
      if (r.is_error()) {
        if (r.shed()) {
          ++stats->sheds;
          stats->latencies_ms.push_back(ms);  // sheds answer fast; count them
        } else {
          ++stats->errors;
        }
      } else {
        ++stats->rows;
        stats->latencies_ms.push_back(ms);
        if (r.result.cache_hit) ++stats->cache_hits;
        if (r.result.degraded) ++stats->degraded;
      }
    }
  });

  // Deterministic warm/cold interleave: request i is cold when
  // i * (1 - warm_ratio) crosses an integer (no RNG needed, exact ratio).
  gsopt::Rng rng(static_cast<uint64_t>(conn_index) * 7919 + 1);
  double cold_accum = 0.0;
  const double cold_per_req = 1.0 - warm_ratio;
  Clock::time_point next = start;  // caller staggers per-connection starts
  uint64_t i = 0;
  while (true) {
    Clock::time_point now = Clock::now();
    if (now >= stop_at) break;
    if (next > now) {
      std::this_thread::sleep_until(std::min(next, stop_at));
      if (Clock::now() >= stop_at) break;
    }
    next += interval;

    bool cold = false;
    cold_accum += cold_per_req;
    if (cold_accum >= 1.0) {
      cold_accum -= 1.0;
      cold = true;
    }

    {
      std::lock_guard<std::mutex> lock(fifo_mu);
      fifo.push_back(Clock::now());
    }
    Status s = cold ? c.SendQuery(cold_pool[i % cold_pool.size()])
                    : c.SendExecute(
                          stmt_id,
                          {Value::Int(static_cast<int64_t>(rng.Next64() % 64))});
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(fifo_mu);
      fifo.pop_back();
      ++stats->send_failures;
      break;
    }
    sent.fetch_add(1, std::memory_order_release);
    ++i;
  }
  stats->sent = sent.load();
  sender_done.store(true, std::memory_order_release);
  receiver.join();
}

// Structurally distinct one-shot shapes (distinct plan-cache
// fingerprints): scans, two-way and three-way joins over varying tables
// and columns. Literal values are irrelevant to shape identity -- the
// session parameterizes them away.
std::vector<std::string> BuildColdPool(int tables) {
  std::vector<std::string> pool;
  const char* cols[] = {"a", "b", "c"};
  for (int t = 1; t <= tables; ++t) {
    for (const char* col : cols) {
      pool.push_back("SELECT * FROM r" + std::to_string(t) + " WHERE r" +
                     std::to_string(t) + "." + col + " = 3");
    }
  }
  for (int t = 1; t + 1 <= tables; ++t) {
    std::string a = "r" + std::to_string(t);
    std::string b = "r" + std::to_string(t + 1);
    pool.push_back("SELECT * FROM " + a + " JOIN " + b + " ON " + a + ".a = " +
                   b + ".a WHERE " + a + ".b = 1");
  }
  return pool;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  bool self_serve = false;
  int connections = 8;
  double qps = 6000;
  int duration_sec = 5;
  double warm_ratio = 0.9;
  int tenants = 2;
  std::string out_path = "BENCH_server.json";
  double assert_min_qps = 0;
  double assert_p99_ms = 0;
  bool assert_no_errors = false;

  gsopt::server::ServerOptions sopt;
  int tables = 4;
  gsopt::RandomRelationOptions data;
  data.num_rows = 128;
  data.domain = 64;
  int deadline_ms = 0;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "host", &v)) {
      host = v;
    } else if (ParseFlag(argv[i], "port", &v)) {
      port = std::atoi(v.c_str());
    } else if (std::string(argv[i]) == "--self-serve") {
      self_serve = true;
    } else if (ParseFlag(argv[i], "connections", &v)) {
      connections = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "qps", &v)) {
      qps = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "duration-sec", &v)) {
      duration_sec = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "warm-ratio", &v)) {
      warm_ratio = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "tenants", &v)) {
      tenants = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "out", &v)) {
      out_path = v;
    } else if (ParseFlag(argv[i], "assert-min-qps", &v)) {
      assert_min_qps = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "assert-p99-ms", &v)) {
      assert_p99_ms = std::atof(v.c_str());
    } else if (std::string(argv[i]) == "--assert-no-errors") {
      assert_no_errors = true;
    } else if (ParseFlag(argv[i], "workers", &v)) {
      sopt.num_workers = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "tables", &v)) {
      tables = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "rows", &v)) {
      data.num_rows = std::atoll(v.c_str());
    } else if (ParseFlag(argv[i], "domain", &v)) {
      data.domain = std::atoll(v.c_str());
    } else if (ParseFlag(argv[i], "max-queue", &v)) {
      sopt.max_queue = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(argv[i], "deadline-ms", &v)) {
      deadline_ms = std::atoi(v.c_str());
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return Usage();
    }
  }
  if (connections < 1 || qps <= 0 || duration_sec < 1 || warm_ratio < 0 ||
      warm_ratio > 1 || tenants < 1) {
    return Usage();
  }
  if (!self_serve && port < 0) {
    std::cerr << "--port is required without --self-serve\n";
    return Usage();
  }

  // Optional in-process server (CI smoke: one binary, loopback, no port
  // coordination).
  gsopt::Catalog catalog;
  std::unique_ptr<gsopt::server::GsoptServer> server;
  if (self_serve) {
    gsopt::Rng rng(42);
    gsopt::AddRandomTables(tables, data, &rng, &catalog);
    if (deadline_ms > 0) {
      sopt.default_quota.deadline =
          std::chrono::microseconds(static_cast<int64_t>(deadline_ms) * 1000);
    }
    sopt.port = 0;
    server = std::make_unique<gsopt::server::GsoptServer>(catalog, sopt);
    gsopt::Status started = server->Start();
    if (!started.ok()) {
      std::cerr << "self-serve start failed: " << started.ToString() << "\n";
      return 3;
    }
    port = server->port();
  }

  std::vector<std::string> cold_pool = BuildColdPool(self_serve ? tables : 4);
  auto interval = std::chrono::nanoseconds(static_cast<int64_t>(
      1e9 * static_cast<double>(connections) / qps));

  std::vector<ConnStats> stats(static_cast<size_t>(connections));
  std::atomic<bool> setup_failed{false};
  Clock::time_point start = Clock::now() + std::chrono::milliseconds(50);
  Clock::time_point stop_at = start + std::chrono::seconds(duration_sec);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  for (int i = 0; i < connections; ++i) {
    std::string tenant = "t" + std::to_string(i % tenants);
    // Stagger connection starts across one cadence interval so sends
    // don't arrive in lockstep bursts.
    Clock::time_point conn_start = start + (interval * i) / connections;
    threads.emplace_back(RunConnection, host, static_cast<uint16_t>(port),
                         tenant, i, interval, conn_start, stop_at, warm_ratio,
                         std::cref(cold_pool), &stats[static_cast<size_t>(i)],
                         &setup_failed);
  }
  for (auto& t : threads) t.join();
  if (setup_failed.load()) return 3;

  // Aggregate.
  ConnStats total;
  for (const ConnStats& s : stats) {
    total.sent += s.sent;
    total.rows += s.rows;
    total.sheds += s.sheds;
    total.errors += s.errors;
    total.protocol_errors += s.protocol_errors;
    total.cache_hits += s.cache_hits;
    total.degraded += s.degraded;
    total.send_failures += s.send_failures;
    total.latencies_ms.insert(total.latencies_ms.end(), s.latencies_ms.begin(),
                              s.latencies_ms.end());
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  double p50 = Percentile(&total.latencies_ms, 0.50);
  double p95 = Percentile(&total.latencies_ms, 0.95);
  double p99 = Percentile(&total.latencies_ms, 0.99);
  double lat_max =
      total.latencies_ms.empty() ? 0.0 : total.latencies_ms.back();
  double mean = 0.0;
  for (double ms : total.latencies_ms) mean += ms;
  if (!total.latencies_ms.empty()) {
    mean /= static_cast<double>(total.latencies_ms.size());
  }
  uint64_t answered = total.rows + total.sheds + total.errors;
  double achieved_qps =
      static_cast<double>(total.rows) / static_cast<double>(duration_sec);
  double shed_rate =
      answered > 0
          ? static_cast<double>(total.sheds) / static_cast<double>(answered)
          : 0.0;
  double hit_rate = total.rows > 0 ? static_cast<double>(total.cache_hits) /
                                         static_cast<double>(total.rows)
                                   : 0.0;

  std::printf(
      "sent=%llu rows=%llu shed=%llu errors=%llu proto_errors=%llu\n"
      "achieved_qps=%.0f (target %.0f)  cache_hit_rate=%.3f  degraded=%llu\n"
      "latency_ms p50=%.3f p95=%.3f p99=%.3f mean=%.3f max=%.3f\n",
      static_cast<unsigned long long>(total.sent),
      static_cast<unsigned long long>(total.rows),
      static_cast<unsigned long long>(total.sheds),
      static_cast<unsigned long long>(total.errors),
      static_cast<unsigned long long>(total.protocol_errors), achieved_qps,
      qps, hit_rate, static_cast<unsigned long long>(total.degraded), p50,
      p95, p99, mean, lat_max);

  std::string server_stats;
  if (server) {
    server->Stop();
    server_stats = server->stats().ToString();
    std::printf("server %s\n", server_stats.c_str());
  }

  {
    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench_name\": \"server\",\n"
        << "  \"config\": {\n"
        << "    \"connections\": " << connections << ",\n"
        << "    \"target_qps\": " << qps << ",\n"
        << "    \"duration_sec\": " << duration_sec << ",\n"
        << "    \"warm_ratio\": " << warm_ratio << ",\n"
        << "    \"tenants\": " << tenants << ",\n"
        << "    \"self_serve\": " << (self_serve ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"results\": {\n"
        << "    \"requests_sent\": " << total.sent << ",\n"
        << "    \"responses_rows\": " << total.rows << ",\n"
        << "    \"responses_shed\": " << total.sheds << ",\n"
        << "    \"responses_error\": " << total.errors << ",\n"
        << "    \"protocol_errors\": " << total.protocol_errors << ",\n"
        << "    \"send_failures\": " << total.send_failures << ",\n"
        << "    \"achieved_qps\": " << achieved_qps << ",\n"
        << "    \"shed_rate\": " << shed_rate << ",\n"
        << "    \"cache_hit_rate\": " << hit_rate << ",\n"
        << "    \"degraded_served\": " << total.degraded << ",\n"
        << "    \"latency_ms\": {\n"
        << "      \"p50\": " << p50 << ",\n"
        << "      \"p95\": " << p95 << ",\n"
        << "      \"p99\": " << p99 << ",\n"
        << "      \"mean\": " << mean << ",\n"
        << "      \"max\": " << lat_max << "\n"
        << "    },\n"
        << "    \"server_stats\": \"" << JsonEscape(server_stats) << "\"\n"
        << "  }\n"
        << "}\n";
  }
  std::printf("wrote %s\n", out_path.c_str());

  int rc = 0;
  if (assert_min_qps > 0 && achieved_qps < assert_min_qps) {
    std::fprintf(stderr, "ASSERT FAILED: achieved_qps %.0f < %.0f\n",
                 achieved_qps, assert_min_qps);
    rc = 1;
  }
  if (assert_p99_ms > 0 && p99 > assert_p99_ms) {
    std::fprintf(stderr, "ASSERT FAILED: p99 %.3fms > %.3fms\n", p99,
                 assert_p99_ms);
    rc = 1;
  }
  if (assert_no_errors &&
      (total.errors > 0 || total.protocol_errors > 0 ||
       total.send_failures > 0)) {
    std::fprintf(stderr,
                 "ASSERT FAILED: errors=%llu proto=%llu send_failures=%llu\n",
                 static_cast<unsigned long long>(total.errors),
                 static_cast<unsigned long long>(total.protocol_errors),
                 static_cast<unsigned long long>(total.send_failures));
    rc = 1;
  }
  return rc;
}
