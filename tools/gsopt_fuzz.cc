// gsopt_fuzz: metamorphic differential-testing driver over the paper's
// full query class. Generates seeded random (query, data) cases -- GROUP
// BY views, aggregated-column predicates, outer joins, nulls -- and checks
// the plan-space / executor / degradation / TLP / SQL-round-trip /
// plan-cache / columnar oracles on each (the plan-cache oracle runs every
// case through a gsopt::Session, validating that cached parameterized
// templates re-instantiate to exactly what literal re-optimization
// produces; the columnar oracle forces the batch kernel paths -- serial,
// parallel, spilling, faulted -- against the tuple-at-a-time baseline; the
// merge oracle forces JoinStrategy::kMergeOnly across the same paths
// against a hash-pinned baseline; the order oracle re-checks ORDER BY
// queries through the order-aware optimizer and forced-merge execution);
// failures are delta-debugged to minimal reproducers and written as
// self-contained .sql + CSV artifacts.
//
//   gsopt_fuzz --seeds=500                      # CI gate
//   gsopt_fuzz --seeds=100000 --time-budget-sec=600 --artifacts=out/
//   gsopt_fuzz --seeds=30 --inject-fault        # harness self-test: every
//                                               # checked result is mutated,
//                                               # so every oracle must fire
//   gsopt_fuzz --seeds=500 --chaos              # chaos mode: re-run every
//                                               # case memory-starved (spill
//                                               # path) and under seeded
//                                               # fault injection
//
// Exit codes: 0 clean; 1 oracle failures or coverage gate missed; 2 bad
// usage; 3 harness error.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "testing/fuzz.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

int Usage() {
  std::cerr <<
      "usage: gsopt_fuzz [options]\n"
      "  --seeds=N             cases to run (default 500)\n"
      "  --seed-start=K        first seed (default 1)\n"
      "  --artifacts=DIR       write minimized reproducers under DIR\n"
      "  --time-budget-sec=S   stop early after S seconds of fuzzing\n"
      "  --max-failures=N      stop after N failing seeds (default 5)\n"
      "  --max-rels=N          relations per query upper bound (default 5)\n"
      "  --max-rows=N          rows per table upper bound (default 20)\n"
      "  --max-plans=N         plan-space cap per case (default 64)\n"
      "  --view-prob=P         GROUP BY view probability (default 0.5)\n"
      "  --inject-fault        mutate every checked result (self-test)\n"
      "  --no-columnar         skip the columnar-vs-tuple oracle\n"
      "  --no-bloom            skip the bloom-filter-on-vs-off oracle\n"
      "  --no-merge            skip the merge-vs-hash join oracle\n"
      "  --no-order            skip the ORDER BY correctness oracle\n"
      "  --order-by-prob=P     root ORDER BY probability (default 0.35)\n"
      "  --chaos               run the chaos oracle (spill + fault injection)\n"
      "  --chaos-period=N      fire one injected fault per N probes (default 3)\n"
      "  --chaos-memory=BYTES  operator-state cap for spill trials (default 16384)\n"
      "  --chaos-trials=N      faulted trials per case (default 4)\n"
      "  --no-enforce-coverage skip the view/agg-pred coverage gates\n"
      "  --quiet               suppress per-failure logging\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using gsopt::testing::FuzzOptions;
  FuzzOptions opt = FuzzOptions::Default();
  uint64_t seed_start = 1;
  int seeds = 500;
  bool inject_fault = false;
  bool enforce_coverage = true;
  bool quiet = false;
  double min_view_pct = 30.0, min_agg_pred_pct = 20.0;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "seeds", &v)) {
      seeds = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "seed-start", &v)) {
      seed_start = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "artifacts", &v)) {
      opt.artifact_dir = v;
    } else if (ParseFlag(argv[i], "time-budget-sec", &v)) {
      opt.time_budget_sec = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "max-failures", &v)) {
      opt.max_failures = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "max-rels", &v)) {
      opt.max_rels = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "max-rows", &v)) {
      opt.max_rows = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "max-plans", &v)) {
      opt.oracle.max_plans = static_cast<size_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "view-prob", &v)) {
      opt.query.view_prob = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "order-by-prob", &v)) {
      opt.query.order_by_prob = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "chaos-period", &v)) {
      opt.oracle.chaos_fault_period = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "chaos-memory", &v)) {
      opt.oracle.chaos_memory_bytes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "chaos-trials", &v)) {
      opt.oracle.chaos_trials = std::atoi(v.c_str());
    } else if (std::strcmp(argv[i], "--no-columnar") == 0) {
      opt.oracle.run_columnar = false;
    } else if (std::strcmp(argv[i], "--no-bloom") == 0) {
      opt.oracle.run_bloom = false;
    } else if (std::strcmp(argv[i], "--no-merge") == 0) {
      opt.oracle.run_merge = false;
    } else if (std::strcmp(argv[i], "--no-order") == 0) {
      opt.oracle.run_order = false;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      opt.oracle.run_chaos = true;
    } else if (std::strcmp(argv[i], "--inject-fault") == 0) {
      inject_fault = true;
    } else if (std::strcmp(argv[i], "--no-enforce-coverage") == 0) {
      enforce_coverage = false;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return Usage();
    }
  }
  if (seeds <= 0 || opt.max_rels < opt.min_rels) return Usage();

  if (inject_fault) {
    // Corrupt every result that flows through a checked path (never the
    // syntactic baseline): drop a row when possible, else add one. The
    // oracles must catch this on essentially every seed, which exercises
    // the whole failure -> minimize -> artifact pipeline.
    opt.oracle.mutate_checked_result = [](gsopt::Relation* r) {
      if (r->NumRows() > 0) {
        gsopt::Relation reduced(r->schema(), r->vschema());
        for (int64_t i = 0; i + 1 < r->NumRows(); ++i) reduced.Add(r->row(i));
        *r = std::move(reduced);
      } else {
        r->Add(r->NullTuple());
      }
    };
  }

  auto stats = gsopt::testing::RunFuzz(seed_start, seeds, opt,
                                       quiet ? nullptr : &std::cerr);
  if (!stats.ok()) {
    std::cerr << "harness error: " << stats.status().ToString() << "\n";
    return 3;
  }
  std::cout << stats->Summary() << "\n";

  int rc = 0;
  if (stats->failures > 0) {
    std::cerr << stats->failures << " failing seed(s)";
    if (!stats->failure_dirs.empty()) {
      std::cerr << "; artifacts under " << opt.artifact_dir;
    }
    std::cerr << "\n";
    rc = 1;
  }
  if (enforce_coverage && !inject_fault) {
    if (stats->Pct(stats->with_view) < min_view_pct) {
      std::cerr << "coverage gate: GROUP BY views " << stats->Pct(stats->with_view)
                << "% < " << min_view_pct << "%\n";
      rc = 1;
    }
    if (stats->Pct(stats->with_agg_pred) < min_agg_pred_pct) {
      std::cerr << "coverage gate: aggregated-column predicates "
                << stats->Pct(stats->with_agg_pred) << "% < "
                << min_agg_pred_pct << "%\n";
      rc = 1;
    }
  }
  return rc;
}
