// gsopt_server: serves the gsopt wire protocol (src/server/protocol.h)
// over TCP from a seeded demo catalog. The serving stack is the real one
// -- gsopt::Session with its sharded plan cache and statement-text memo,
// per-tenant admission control, the optimizer fallback ladder under
// per-request budgets -- only the data is synthetic (r1..rN with columns
// a, b, c; relational/datagen.h).
//
//   gsopt_server --port=7433 --workers=4
//   gsopt_server --port=0                 # ephemeral; the bound port is
//                                         # printed on stdout as "PORT n"
//
// Drive it with gsopt_loadgen, or by hand:
//   printf 'SELECT * FROM r1 WHERE r1.a = 3' | ...   (see client.h)
//
// SIGINT/SIGTERM (or --duration-sec) trigger a graceful drain: in-flight
// queries finish, new frames are shed with the wire-stable `shed` error
// class, then sockets close and the final ServerStats line is printed.
//
// Exit codes: 0 clean shutdown; 2 bad usage; 3 failed to start.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "base/rng.h"
#include "relational/datagen.h"
#include "server/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

int Usage() {
  std::cerr <<
      "usage: gsopt_server [options]\n"
      "  --host=ADDR           listen address (default 127.0.0.1)\n"
      "  --port=N              listen port; 0 = ephemeral (default 7433)\n"
      "  --workers=N           worker threads (default 4)\n"
      "  --max-queue=N         admission queue bound (default 256)\n"
      "  --deadline-ms=N       per-request deadline, 0 = none (default 0)\n"
      "  --max-rows=N          per-request row cap, 0 = none (default 0)\n"
      "  --tenant-concurrent=N per-tenant in-flight cap (default 1<<20)\n"
      "  --tables=N            demo catalog relations r1..rN (default 6)\n"
      "  --rows=N              rows per relation (default 1000)\n"
      "  --domain=N            value domain (default 64)\n"
      "  --seed=N              datagen seed (default 42)\n"
      "  --duration-sec=N      exit after N seconds, 0 = until signal\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using gsopt::server::GsoptServer;
  using gsopt::server::ServerOptions;

  ServerOptions options;
  options.port = 7433;
  int tables = 6;
  gsopt::RandomRelationOptions data;
  data.num_rows = 1000;
  data.domain = 64;
  uint64_t seed = 42;
  int duration_sec = 0;
  int deadline_ms = 0;
  int max_rows = 0;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "host", &v)) {
      options.host = v;
    } else if (ParseFlag(argv[i], "port", &v)) {
      options.port = static_cast<uint16_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "workers", &v)) {
      options.num_workers = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "max-queue", &v)) {
      options.max_queue = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(argv[i], "deadline-ms", &v)) {
      deadline_ms = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "max-rows", &v)) {
      max_rows = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "tenant-concurrent", &v)) {
      options.default_quota.max_concurrent = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "tables", &v)) {
      tables = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "rows", &v)) {
      data.num_rows = std::atoll(v.c_str());
    } else if (ParseFlag(argv[i], "domain", &v)) {
      data.domain = std::atoll(v.c_str());
    } else if (ParseFlag(argv[i], "seed", &v)) {
      seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(argv[i], "duration-sec", &v)) {
      duration_sec = std::atoi(v.c_str());
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return Usage();
    }
  }
  if (deadline_ms > 0) {
    options.default_quota.deadline =
        std::chrono::microseconds(static_cast<int64_t>(deadline_ms) * 1000);
  }
  if (max_rows > 0) {
    options.default_quota.max_rows = static_cast<uint64_t>(max_rows);
  }

  gsopt::Catalog catalog;
  gsopt::Rng rng(seed);
  gsopt::AddRandomTables(tables, data, &rng, &catalog);

  GsoptServer server(catalog, options);
  gsopt::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "start failed: " << started.ToString() << "\n";
    return 3;
  }
  std::printf("PORT %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  ::signal(SIGINT, HandleSignal);
  ::signal(SIGTERM, HandleSignal);

  auto begin = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (duration_sec > 0 &&
        std::chrono::steady_clock::now() - begin >=
            std::chrono::seconds(duration_sec)) {
      break;
    }
  }

  server.Stop();
  std::printf("STATS %s\n", server.stats().ToString().c_str());
  return 0;
}
