// Paper §1.1 join-aggregate queries: the doubly-nested correlated COUNT
// query executed three ways --
//   1. tuple iteration semantics (what commercial RDBMS of the era did),
//   2. Ganski/Muralikrishna-style unnesting (paper Query 2/3), and
//   3. the unnested form further reordered by the optimizer (only possible
//      because the complex correlation predicate can be broken with a
//      generalized selection).
//
//   $ ./unnesting
#include <chrono>
#include <cstdio>

#include "algebra/execute.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "relational/datagen.h"
#include "unnest/nested_query.h"

using namespace gsopt;  // NOLINT: example brevity

namespace {

NestedQuery BuildQuery() {
  // SELECT r1.a FROM r1 WHERE r1.b >= (SELECT COUNT(*) FROM r2
  //   WHERE r2.c = r1.c AND r2.a < (SELECT COUNT(*) FROM r3
  //     WHERE r2.b = r3.b AND r1.a = r3.a))
  NestedQuery q;
  q.outer.table = "r1";
  q.outer.condition = CountCondition{Scalar::Column("r1", "b"), CmpOp::kGe};
  auto mid = std::make_shared<NestedBlock>();
  mid->table = "r2";
  mid->correlation = Predicate(MakeAtom("r2", "c", CmpOp::kEq, "r1", "c"));
  mid->condition = CountCondition{Scalar::Column("r2", "a"), CmpOp::kLt};
  auto inner = std::make_shared<NestedBlock>();
  inner->table = "r3";
  inner->correlation =
      Predicate({MakeAtom("r2", "b", CmpOp::kEq, "r3", "b"),
                 MakeAtom("r1", "a", CmpOp::kEq, "r3", "a")});
  mid->nested = inner;
  q.outer.nested = mid;
  q.select_cols = {Attribute{"r1", "a"}};
  return q;
}

template <typename F>
double TimeMs(F&& f) {
  auto t0 = std::chrono::steady_clock::now();
  f();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  for (int n1 : {20, 60, 120}) {
    Catalog cat;
    Rng rng(7);
    RandomRelationOptions opt;
    opt.domain = 6;
    opt.null_fraction = 0.05;
    opt.num_rows = n1;
    (void)cat.Register("r1", MakeRandomRelation("r1", {"a", "b", "c"}, opt,
                                                &rng));
    opt.num_rows = 40;
    (void)cat.Register("r2", MakeRandomRelation("r2", {"a", "b", "c"}, opt,
                                                &rng));
    opt.num_rows = 40;
    (void)cat.Register("r3", MakeRandomRelation("r3", {"a", "b", "c"}, opt,
                                                &rng));

    NestedQuery q = BuildQuery();

    Relation tis_result;
    double t_tis = TimeMs([&] { tis_result = *ExecuteTis(q, cat); });

    auto unnested = UnnestToAlgebra(q, cat);
    if (!unnested.ok()) {
      std::printf("unnest error: %s\n", unnested.status().ToString().c_str());
      return 1;
    }
    Relation un_result;
    double t_un = TimeMs([&] { un_result = *Execute(*unnested, cat); });

    QueryOptimizer opt2(cat);
    auto best = opt2.Optimize(*unnested);
    Relation opt_result;
    double t_opt =
        TimeMs([&] { opt_result = *Execute(best->best.expr, cat); });

    std::printf("|r1| = %3d:  TIS %8.2f ms   unnested %7.2f ms   "
                "unnested+reordered %7.2f ms   (rows %lld, all match: %s)\n",
                n1, t_tis, t_un, t_opt,
                static_cast<long long>(tis_result.NumRows()),
                Relation::BagEquals(tis_result, un_result) &&
                        Relation::BagEquals(tis_result, opt_result)
                    ? "yes"
                    : "NO");
  }
  std::printf(
      "\nTIS re-scans the inner blocks per outer tuple (quadratic-plus);\n"
      "unnesting evaluates each join once; the generalized selection lets\n"
      "the optimizer also reorder across the complex correlation predicate.\n");
  return 0;
}
