// Paper Example 1.1 end to end: the supplier-review query over
// 94AGG / 95DETAIL / SUP_DETAIL, where an outer-join predicate references
// a COUNT produced by an aggregation view.
//
// The optimizer pulls the aggregation above the joins (deferring the
// COUNT-referencing conjunct into a generalized selection), which exposes
// the plan the paper advocates: filter 94AGG by the BANKRUPT suppliers
// first, join it with 95DETAIL, and only then aggregate.
//
//   $ ./supplier_analysis
#include <chrono>
#include <cstdio>

#include "algebra/execute.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "relational/catalog.h"

using namespace gsopt;  // NOLINT: example brevity

namespace {

Catalog MakeData(int nsup, int n94, int n95, double bankrupt_frac,
                 uint64_t seed) {
  Catalog cat;
  Rng rng(seed);
  (void)cat.CreateTable("agg94", {"supkey", "partkey", "qty"});
  (void)cat.CreateTable("detail95", {"supkey", "partkey", "qty"});
  (void)cat.CreateTable("sup", {"supkey", "rating"});
  for (int i = 0; i < nsup; ++i) {
    (void)cat.Insert("sup", {Value::Int(i),
                             Value::Int(rng.Bernoulli(bankrupt_frac) ? 0 : 1)});
  }
  for (int i = 0; i < n94; ++i) {
    (void)cat.Insert("agg94",
                     {Value::Int(rng.Uniform(0, nsup - 1)),
                      Value::Int(rng.Uniform(0, 5)),
                      Value::Int(rng.Uniform(1, 30))});
  }
  for (int i = 0; i < n95; ++i) {
    (void)cat.Insert("detail95",
                     {Value::Int(rng.Uniform(0, nsup - 1)),
                      Value::Int(rng.Uniform(0, 5)),
                      Value::Int(rng.Uniform(1, 30))});
  }
  return cat;
}

NodePtr BuildQuery(const Catalog&) {
  // V2 = 94AGG x SUP_DETAIL filtered to BANKRUPT suppliers.
  NodePtr v2 = Node::Join(
      Node::Leaf("agg94"),
      Node::Select(Node::Leaf("sup"),
                   Predicate(MakeConstAtom("sup", "rating", CmpOp::kEq,
                                           Value::Int(0)))),
      Predicate(MakeAtom("agg94", "supkey", CmpOp::kEq, "sup", "supkey")));
  // V3 = SELECT supkey, partkey, COUNT(*) AS aggqty95 FROM detail95 GROUP BY.
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"detail95", "supkey"},
                     Attribute{"detail95", "partkey"}};
  exec::AggSpec cnt;
  cnt.func = exec::AggFunc::kCountStar;
  cnt.out_rel = "V3";
  cnt.out_name = "aggqty95";
  spec.aggs = {cnt};
  NodePtr v3 = Node::GroupBy(Node::Leaf("detail95"), spec);

  // V2 LEFT OUTER JOIN V3 ON supkey =, partkey =, qty < 2 * aggqty95.
  Predicate p;
  p.AddAtom(MakeAtom("agg94", "supkey", CmpOp::kEq, "detail95", "supkey"));
  p.AddAtom(MakeAtom("agg94", "partkey", CmpOp::kEq, "detail95", "partkey"));
  Atom agg_atom;
  agg_atom.lhs = Scalar::Column("agg94", "qty");
  agg_atom.op = CmpOp::kLt;
  agg_atom.rhs = Scalar::Arith(ArithOp::kMul, Scalar::Const(Value::Int(2)),
                               Scalar::Column("V3", "aggqty95"));
  p.AddAtom(agg_atom);
  return Node::LeftOuterJoin(v2, v3, p);
}

double MeasureMs(const NodePtr& plan, const Catalog& cat) {
  auto t0 = std::chrono::steady_clock::now();
  auto r = Execute(plan, cat);
  auto t1 = std::chrono::steady_clock::now();
  if (!r.ok()) return -1;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  std::printf(
      "Example 1.1 (paper §1.1): suppliers to discontinue\n"
      "----------------------------------------------------\n\n");
  for (double frac : {0.5, 0.2, 0.05}) {
    Catalog cat = MakeData(/*nsup=*/40, /*n94=*/60, /*n95=*/1200, frac, 42);
    NodePtr query = BuildQuery(cat);
    QueryOptimizer opt(cat);
    auto result = opt.Optimize(query);
    if (!result.ok()) {
      std::printf("optimize error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    auto ref = Execute(query, cat);
    auto got = Execute(result->best.expr, cat);
    double t_as_written = MeasureMs(query, cat);
    double t_best = MeasureMs(result->best.expr, cat);
    std::printf("bankrupt fraction %.2f:\n", frac);
    std::printf("  plans considered:  %zu\n", result->plans_considered);
    std::printf("  est. cost: as-written %.0f, chosen %.0f (%.2fx)\n",
                result->original_cost, result->best.cost,
                result->original_cost / result->best.cost);
    std::printf("  measured: as-written %.2f ms, chosen %.2f ms\n",
                t_as_written, t_best);
    std::printf("  results match: %s, rows: %lld\n\n",
                Relation::BagEquals(*ref, *got) ? "yes" : "NO",
                static_cast<long long>(ref->NumRows()));
  }
  std::printf(
      "The more selective the BANKRUPT filter, the more the reordering\n"
      "(join 94AGG/SUP_DETAIL with 95DETAIL before aggregating) wins --\n"
      "the trade-off the paper describes.\n");
  return 0;
}
