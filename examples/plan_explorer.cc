// Plan explorer: the paper's Q4 (Example 3.2) dissected -- hypergraph,
// preserved/conflict sets, and the plan spaces of the three enumeration
// modes, including the sigma*-compensated break-up family.
//
//   $ ./plan_explorer
#include <cstdio>

#include "algebra/execute.h"
#include "algebra/explain.h"
#include "base/rng.h"
#include "core/session.h"
#include "enumerate/enumerator.h"
#include "hypergraph/analysis.h"
#include "hypergraph/build.h"
#include "relational/datagen.h"

using namespace gsopt;  // NOLINT: example brevity

namespace {

Predicate P(const std::string& r1, const std::string& c1,
            const std::string& r2, const std::string& c2) {
  return Predicate(MakeAtom(r1, c1, CmpOp::kEq, r2, c2));
}

// Q4 = r1 ->p12 (r2 ->p24^p25 ((r4 JOIN_p45 r5) JOIN_p35 r3))
NodePtr BuildQ4() {
  Predicate p24_25 =
      Predicate::And(P("r2", "a", "r4", "a"), P("r2", "b", "r5", "b"));
  NodePtr r45 = Node::Join(Node::Leaf("r4"), Node::Leaf("r5"),
                           P("r4", "c", "r5", "c"));
  NodePtr r453 = Node::Join(r45, Node::Leaf("r3"), P("r5", "a", "r3", "a"));
  NodePtr right = Node::LeftOuterJoin(Node::Leaf("r2"), r453, p24_25);
  return Node::LeftOuterJoin(Node::Leaf("r1"), right,
                             P("r1", "a", "r2", "a"));
}

}  // namespace

int main() {
  NodePtr q4 = BuildQ4();
  std::printf("Query Q4 (paper Example 3.2):\n  %s\n\n",
              q4->ToString().c_str());

  auto hg = BuildHypergraph(q4);
  if (!hg.ok()) {
    std::printf("%s\n", hg.status().ToString().c_str());
    return 1;
  }
  std::printf("Hypergraph (paper Figure 1):\n%s\n", hg->ToString().c_str());
  std::printf("acyclic: %s\n\n", hg->IsAcyclic() ? "yes" : "no");

  HypergraphAnalysis an(*hg);
  for (const Hyperedge& e : hg->edges()) {
    std::printf("edge h%d (%s):", e.id, EdgeKindName(e.kind).c_str());
    if (e.kind == EdgeKind::kDirected) {
      std::printf(" pres = {");
      for (const auto& n : hg->RelNamesOf(an.Pres(e.id))) {
        std::printf(" %s", n.c_str());
      }
      std::printf(" }");
    }
    std::printf(" conf = {");
    for (int c : an.Conf(e.id)) std::printf(" h%d", c);
    std::printf(" }\n");
  }
  std::printf("\n");

  for (EnumMode mode : {EnumMode::kBinaryOnly, EnumMode::kBaseline,
                        EnumMode::kGeneralized}) {
    EnumOptions opts;
    opts.mode = mode;
    Enumerator en(*hg, opts);
    auto trees = en.CountAssociationTrees();
    auto result = en.Enumerate();
    std::printf("%-12s association trees: %-6lld plans: %zu (%zu subplans%s)\n",
                EnumModeName(mode).c_str(), trees.ok() ? *trees : -1,
                result.ok() ? result->plans.size() : 0,
                result.ok() ? result->subplans_emitted : 0,
                result.ok() && result->truncated ? ", truncated" : "");
  }
  std::printf("\n");

  // The same enumeration under a tight plan budget: the space truncates
  // gracefully (valid plans, possibly suboptimal) instead of failing.
  {
    ResourceBudget tight;
    tight.WithMaxPlans(10);
    EnumOptions opts;
    opts.mode = EnumMode::kGeneralized;
    opts.budget = &tight;
    auto capped = Enumerator(*hg, opts).Enumerate();
    if (capped.ok()) {
      std::printf("with a 10-subplan budget: %zu plans, truncated: %s\n\n",
                  capped->plans.size(), capped->truncated ? "yes" : "no");
    }
  }

  // Show the paper's break-up family: plans whose root is a generalized
  // selection deferring one of the h2 conjuncts.
  EnumOptions gopts;
  gopts.mode = EnumMode::kGeneralized;
  auto plans = Enumerator(*hg, gopts).EnumerateAll();
  std::printf("GS-compensated plans (the paper's sigma*_p[r1r2] family):\n");
  int shown = 0;
  for (const PlanCandidate& c : *plans) {
    if (c.expr->kind() != OpKind::kGeneralizedSelection) continue;
    if (shown++ >= 4) break;
    std::printf("  %s\n", c.expr->ToString().c_str());
  }

  // Verify everything against the as-written result on random data.
  Catalog cat;
  Rng rng(5);
  RandomRelationOptions ropt;
  ropt.num_rows = 8;
  ropt.domain = 4;
  ropt.null_fraction = 0.1;
  AddRandomTables(5, ropt, &rng, &cat);
  auto ref = Execute(q4, cat);
  int ok = 0, bad = 0;
  for (const PlanCandidate& c : *plans) {
    auto got = Execute(c.expr, cat);
    (got.ok() && Relation::BagEquals(*ref, *got)) ? ++ok : ++bad;
  }
  std::printf("\nexecution check on random data: %d/%d plans equivalent\n",
              ok, ok + bad);

  // Serve Q4 through a Session on the same data: the first Run optimizes
  // (a plan-cache miss) and EXPLAIN ANALYZE joins per-operator actuals
  // against the cost model's estimates; the second Run re-instantiates
  // the cached parameterized template -- no enumeration at all.
  Session session(cat);
  auto best = session.Run(q4);
  if (best.ok()) {
    std::printf("\nEXPLAIN ANALYZE of the chosen plan (rung=%s; %s):\n",
                FallbackRungName(best->degradation.rung).c_str(),
                best->counters.ToString().c_str());
    auto analyzed = ExplainAnalyze(best->plan, cat,
                                   session.optimizer()->cost_model());
    if (analyzed.ok()) {
      std::printf("%s", analyzed->text.c_str());
    } else {
      std::printf("  %s\n", analyzed.status().ToString().c_str());
    }
    auto again = session.Run(q4);
    if (again.ok()) {
      std::printf("\nre-served from the plan cache: hit=%s, %lld rows, %s\n",
                  again->cache_hit ? "yes" : "NO (bug!)",
                  static_cast<long long>(again->rows.NumRows()),
                  session.cache_stats().ToString().c_str());
      if (!Relation::BagEquals(again->rows, best->rows)) {
        std::printf("cache-hit result DIVERGES from the cold run!\n");
        ++bad;
      }
    }
  }
  return bad == 0 ? 0 : 1;
}
