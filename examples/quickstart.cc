// Quickstart: create tables, run a SQL query with outer joins through the
// optimizer, and execute the chosen plan.
//
//   $ ./quickstart
#include <cstdio>

#include "algebra/execute.h"
#include "algebra/explain.h"
#include "core/optimizer.h"
#include "relational/catalog.h"
#include "sql/binder.h"

using namespace gsopt;  // NOLINT: example brevity

int main() {
  // 1. A small catalog: customers, orders, complaints.
  Catalog cat;
  (void)cat.CreateTable("customer", {"id", "region"});
  (void)cat.CreateTable("orders", {"cust_id", "amount"});
  (void)cat.CreateTable("complaint", {"cust_id", "severity"});
  for (int i = 0; i < 6; ++i) {
    (void)cat.Insert("customer", {Value::Int(i), Value::Int(i % 2)});
  }
  int orders[][2] = {{0, 10}, {0, 25}, {1, 5}, {3, 40}, {3, 7}, {4, 13}};
  for (auto& o : orders) {
    (void)cat.Insert("orders", {Value::Int(o[0]), Value::Int(o[1])});
  }
  int complaints[][2] = {{1, 2}, {3, 1}, {5, 3}};
  for (auto& c : complaints) {
    (void)cat.Insert("complaint", {Value::Int(c[0]), Value::Int(c[1])});
  }

  // 2. A query mixing an inner join with a left outer join.
  const char* kSql =
      "SELECT customer.id, orders.amount, complaint.severity "
      "FROM customer JOIN orders ON customer.id = orders.cust_id "
      "LEFT JOIN complaint ON customer.id = complaint.cust_id "
      "AND orders.amount < 20";
  auto tree = sql::ParseAndBind(kSql, cat);
  if (!tree.ok()) {
    std::printf("bind error: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("bound algebra:\n  %s\n\n", (*tree)->ToString().c_str());

  // 3. Optimize: the enumerator explores join/outer-join reorderings
  //    (including generalized-selection compensated ones) and picks the
  //    cheapest under the cost model.
  QueryOptimizer opt(cat);
  auto result = opt.Optimize(*tree);
  if (!result.ok()) {
    std::printf("optimize error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("plans considered: %zu\n", result->plans_considered);
  std::printf("as-written cost:  %.1f\n", result->original_cost);
  std::printf("chosen cost:      %.1f\n", result->best.cost);
  std::printf("chosen plan (EXPLAIN):\n%s\n",
              Explain(result->best.expr, opt.cost_model()).c_str());

  // 4. Execute and print.
  auto rel = Execute(result->best.expr, cat);
  if (!rel.ok()) {
    std::printf("exec error: %s\n", rel.status().ToString().c_str());
    return 1;
  }
  std::printf("result:\n%s\n", rel->ToString().c_str());

  // 5. Sanity: the chosen plan matches the as-written query.
  auto ref = Execute(*tree, cat);
  std::printf("equivalent to as-written: %s\n",
              Relation::BagEquals(*ref, *rel) ? "yes" : "NO (bug!)");
  return 0;
}
