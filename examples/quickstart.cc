// Quickstart: create tables, serve a SQL query with outer joins through a
// gsopt::Session, and re-run it as a prepared statement -- the second
// execution reuses the cached plan template instead of re-optimizing.
//
//   $ ./quickstart
#include <cstdio>

#include "algebra/explain.h"
#include "core/session.h"
#include "relational/catalog.h"
#include "sql/binder.h"

using namespace gsopt;  // NOLINT: example brevity

int main() {
  // 1. A small catalog: customers, orders, complaints.
  Catalog cat;
  (void)cat.CreateTable("customer", {"id", "region"});
  (void)cat.CreateTable("orders", {"cust_id", "amount"});
  (void)cat.CreateTable("complaint", {"cust_id", "severity"});
  for (int i = 0; i < 6; ++i) {
    (void)cat.Insert("customer", {Value::Int(i), Value::Int(i % 2)});
  }
  int orders[][2] = {{0, 10}, {0, 25}, {1, 5}, {3, 40}, {3, 7}, {4, 13}};
  for (auto& o : orders) {
    (void)cat.Insert("orders", {Value::Int(o[0]), Value::Int(o[1])});
  }
  int complaints[][2] = {{1, 2}, {3, 1}, {5, 3}};
  for (auto& c : complaints) {
    (void)cat.Insert("complaint", {Value::Int(c[0]), Value::Int(c[1])});
  }

  // 2. A query mixing an inner join with a left outer join.
  const char* kSql =
      "SELECT customer.id, orders.amount, complaint.severity "
      "FROM customer JOIN orders ON customer.id = orders.cust_id "
      "LEFT JOIN complaint ON customer.id = complaint.cust_id "
      "AND orders.amount < 20";
  auto tree = sql::ParseAndBind(kSql, cat);
  if (!tree.ok()) {
    std::printf("bind error: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("bound algebra:\n  %s\n\n", (*tree)->ToString().c_str());

  // 3. Serve it through a Session: parse + bind + optimize (the
  //    enumerator explores join/outer-join reorderings, including
  //    generalized-selection compensated ones) + execute, with the
  //    optimized template entering the session's plan cache.
  Session session(cat);
  auto result = session.Query(kSql);
  if (!result.ok()) {
    std::printf("query error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("chosen cost:      %.1f\n", result->plan_cost);
  std::printf("chosen plan (EXPLAIN):\n%s\n",
              Explain(result->plan, session.optimizer()->cost_model())
                  .c_str());
  std::printf("result:\n%s\n", result->rows.ToString().c_str());

  // 4. Sanity: the served result matches the as-written query.
  auto ref = Execute(*tree, cat);
  std::printf("equivalent to as-written: %s\n\n",
              Relation::BagEquals(*ref, result->rows) ? "yes"
                                                          : "NO (bug!)");

  // 5. Prepared statements: $1-style parameters optimize ONCE; each
  //    Execute substitutes values into the cached template. Literals are
  //    parameterized too, so re-running step 3's query with a different
  //    constant would also hit.
  auto stmt = session.Prepare(
      "SELECT customer.id, orders.amount FROM customer "
      "JOIN orders ON customer.id = orders.cust_id "
      "WHERE orders.amount > $1");
  if (!stmt.ok()) {
    std::printf("prepare error: %s\n", stmt.status().ToString().c_str());
    return 1;
  }
  for (int64_t threshold : {10, 20}) {
    auto rows = stmt->Bind({Value::Int(threshold)}).Execute();
    if (!rows.ok()) {
      std::printf("execute error: %s\n", rows.status().ToString().c_str());
      return 1;
    }
    std::printf("amount > %lld: %lld row(s)%s\n",
                static_cast<long long>(threshold),
                static_cast<long long>(rows->rows.NumRows()),
                rows->cache_hit ? " (cached template)" : "");
  }
  std::printf("plan cache: %s\n", session.cache_stats().ToString().c_str());
  return 0;
}
