// Interactive SQL shell over CSV files, served through gsopt::Session --
// every query goes through the sharded plan cache, so repeating a query
// shape (even with different literals) skips the plan search.
//
//   $ ./sql_shell data1.csv data2.csv ...
//   gsopt> SELECT * FROM data1 LEFT JOIN data2 ON data1.k = data2.k
//   gsopt> \explain SELECT ...
//   gsopt> \analyze SELECT ...       (EXPLAIN ANALYZE: execute + actuals)
//   gsopt> \plans  SELECT ...        (enumerate the full plan space)
//   gsopt> \prepare q1 SELECT * FROM data1 WHERE data1.k = $1
//   gsopt> EXECUTE q1 7              (bind $1..$n and run the template)
//   gsopt> \cache                    (plan-cache hit/miss/eviction stats)
//   gsopt> \timeout 250              (per-query budget in ms; 0 = off)
//   gsopt> \memory 65536             (operator-state cap in bytes; spills
//                                     to disk past it; 0 = uncapped)
//   gsopt> \tables
//   gsopt> \q
//
// Each CSV becomes a table named after its basename (without extension).
// Cache misses optimize (simplify -> normalize -> hypergraph -> enumerate
// -> cost) under a per-query resource budget: when the deadline trips
// mid-search the optimizer degrades down its fallback ladder and the
// shell reports which rung answered. Cache hits re-instantiate the cached
// template and spend the whole budget on execution.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "algebra/explain.h"
#include "base/budget.h"
#include "core/session.h"
#include "exec/eval.h"
#include "relational/csv.h"
#include "sql/binder.h"

using namespace gsopt;  // NOLINT: example brevity

namespace {

// Per-query wall-clock budget; generous default so only hostile queries
// degrade. 0 disables governance entirely.
long long g_timeout_ms = 10000;

// Operator-state memory cap (\memory N, bytes; 0 = uncapped). Capping also
// enables spill-to-disk, so a query that outgrows the cap degrades to the
// out-of-core path instead of failing -- \analyze shows its spill{...}
// counters.
long long g_memory_bytes = 0;
exec::SpillConfig g_spill;

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path
                                                : path.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name;
}

enum class QueryMode { kExecute, kExplain, kAnalyze, kPlans };

void PrintOptimizerLine(const PreparedStatement& stmt) {
  std::printf("optimizer: rung=%s cache=%s %s\n",
              FallbackRungName(stmt.degradation().rung).c_str(),
              stmt.cache_hit() ? "hit" : "miss",
              stmt.counters().ToString().c_str());
  if (stmt.degradation().degraded()) {
    std::printf("warning: degraded under budget (%s)\n",
                stmt.degradation().ToString().c_str());
  }
}

void RunQuery(const std::string& text, Session& session, QueryMode mode) {
  ResourceBudget budget;
  if (g_timeout_ms > 0) {
    budget.WithDeadlineAfter(std::chrono::milliseconds(g_timeout_ms));
  }
  ResourceBudget* bp = g_timeout_ms > 0 ? &budget : nullptr;
  const Catalog& cat = session.catalog();

  if (mode == QueryMode::kPlans) {
    // Plan-space dissection bypasses the cache on purpose: the point is
    // to see the search, not to skip it.
    auto tree = sql::ParseAndBind(text, cat);
    if (!tree.ok()) {
      std::printf("error: %s\n", tree.status().ToString().c_str());
      return;
    }
    auto opt = session.optimizer();
    auto space = opt->EnumeratePlanSpace(
        *tree, OptimizeOptions{}.WithPrune(false).WithBudget(bp));
    if (!space.ok()) {
      std::printf("error: %s\n", space.status().ToString().c_str());
      return;
    }
    std::printf("%zu plans%s:\n", space->plans.size(),
                space->truncated ? " (space truncated by budget)" : "");
    for (const PlanInfo& p : space->plans) {
      std::printf("  cost=%-12.0f %s\n", p.cost, p.expr->ToString().c_str());
    }
    return;
  }

  auto stmt = session.Prepare(text, bp);
  if (!stmt.ok()) {
    std::printf("error: %s\n", stmt.status().ToString().c_str());
    return;
  }
  if (stmt->num_params() > 0) {
    std::printf("error: query has %d parameter(s); use \\prepare + EXECUTE\n",
                stmt->num_params());
    return;
  }
  if (mode == QueryMode::kExplain) {
    PrintOptimizerLine(*stmt);
    auto plan = stmt->ExecutablePlan({});
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      return;
    }
    std::printf("chosen plan (cost %.0f):\n", stmt->plan_cost());
    std::printf("%s", Explain(*plan, session.optimizer()->cost_model())
                          .c_str());
    return;
  }
  // Execution gets its own allowance: a budget-starved optimization has
  // already spent the deadline degrading, and the point of the fallback
  // ladder is that the rung it landed on still answers.
  ResourceBudget exec_budget;
  ExecOptions xo;
  if (g_timeout_ms > 0) {
    exec_budget.WithDeadlineAfter(std::chrono::milliseconds(g_timeout_ms));
    xo.WithBudget(&exec_budget);
  }
  if (g_memory_bytes > 0) {
    exec_budget.WithMaxMemory(static_cast<uint64_t>(g_memory_bytes));
    g_spill.enabled = true;
    xo.WithBudget(&exec_budget).WithSpill(&g_spill);
  }
  if (mode == QueryMode::kAnalyze) {
    PrintOptimizerLine(*stmt);
    std::printf("plan cache: %s\n", session.cache_stats().ToString().c_str());
    // One serving execution with collect_stats: the QueryResult carries
    // the stats tree, so \analyze no longer re-executes through a
    // side-channel stats pointer.
    auto analyzed = stmt->Execute(xo.WithCollectStats());
    if (!analyzed.ok()) {
      std::printf("error: %s\n", analyzed.status().ToString().c_str());
      return;
    }
    std::printf("%s(%lld rows)\n",
                AnalyzeText(analyzed->plan, session.optimizer()->cost_model(),
                            analyzed->stats.get())
                    .c_str(),
                static_cast<long long>(analyzed->rows.NumRows()));
    return;
  }
  auto result = stmt->Execute(xo);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (result->degradation.degraded()) {
    std::printf("warning: degraded under budget (%s)\n",
                result->degradation.ToString().c_str());
  }
  std::printf("%s", ToCsv(result->rows).c_str());
  // Prepare-time hit: did this statement skip the plan search? (The
  // Execute result's cache_hit is template reuse, true by construction.)
  std::printf("(%lld rows%s)\n",
              static_cast<long long>(result->rows.NumRows()),
              stmt->cache_hit() ? ", plan cached" : "");
}

// Parses an EXECUTE argument list: comma-separated integers, doubles,
// 'quoted strings' or NULL.
bool ParseParams(const std::string& text, std::vector<Value>* out) {
  size_t i = 0;
  auto skip_ws = [&] { while (i < text.size() && text[i] == ' ') ++i; };
  skip_ws();
  while (i < text.size()) {
    if (text[i] == '\'') {
      size_t end = text.find('\'', i + 1);
      if (end == std::string::npos) return false;
      out->push_back(Value::String(text.substr(i + 1, end - i - 1)));
      i = end + 1;
    } else {
      size_t end = text.find(',', i);
      std::string tok = text.substr(i, end == std::string::npos
                                           ? std::string::npos
                                           : end - i);
      while (!tok.empty() && tok.back() == ' ') tok.pop_back();
      if (tok.empty()) return false;
      if (tok == "NULL" || tok == "null") {
        out->push_back(Value::Null());
      } else if (tok.find_first_of(".eE") != std::string::npos &&
                 tok.find_first_not_of("+-.0123456789eE") ==
                     std::string::npos) {
        out->push_back(Value::Double(std::atof(tok.c_str())));
      } else if (tok.find_first_not_of("+-0123456789") ==
                 std::string::npos) {
        out->push_back(Value::Int(std::atoll(tok.c_str())));
      } else {
        out->push_back(Value::String(tok));
      }
      i = end == std::string::npos ? text.size() : end;
    }
    skip_ws();
    if (i < text.size()) {
      if (text[i] != ',') return false;
      ++i;
      skip_ws();
    }
  }
  return true;
}

void RunExecute(const std::string& rest,
                std::map<std::string, PreparedStatement>& statements) {
  size_t sp = rest.find(' ');
  std::string name = rest.substr(0, sp);
  auto it = statements.find(name);
  if (it == statements.end()) {
    std::printf("error: no prepared statement '%s' (use \\prepare)\n",
                name.c_str());
    return;
  }
  std::vector<Value> params;
  if (sp != std::string::npos &&
      !ParseParams(rest.substr(sp + 1), &params)) {
    std::printf("error: could not parse parameter list\n");
    return;
  }
  ResourceBudget exec_budget;
  ExecOptions xo;
  if (g_timeout_ms > 0) {
    exec_budget.WithDeadlineAfter(std::chrono::milliseconds(g_timeout_ms));
    xo.WithBudget(&exec_budget);
  }
  if (g_memory_bytes > 0) {
    exec_budget.WithMaxMemory(static_cast<uint64_t>(g_memory_bytes));
    g_spill.enabled = true;
    xo.WithBudget(&exec_budget).WithSpill(&g_spill);
  }
  auto result = it->second.Execute(std::move(params), xo);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", ToCsv(result->rows).c_str());
  std::printf("(%lld rows%s)\n",
              static_cast<long long>(result->rows.NumRows()),
              result->cache_hit ? ", cached template" : "");
}

}  // namespace

int main(int argc, char** argv) {
  Catalog cat;
  for (int i = 1; i < argc; ++i) {
    std::string table = BaseName(argv[i]);
    Status st = LoadCsvFile(argv[i], table, &cat);
    if (!st.ok()) {
      std::printf("failed to load %s: %s\n", argv[i], st.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s as table '%s' (%lld rows)\n", argv[i],
                table.c_str(),
                static_cast<long long>(cat.Find(table)->NumRows()));
  }
  if (argc < 2) {
    std::printf("usage: sql_shell <file.csv> [more.csv ...]\n");
    return 1;
  }

  Session session(cat);
  std::map<std::string, PreparedStatement> statements;

  std::string line;
  std::printf("gsopt> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == "\\q" || line == "quit" || line == "exit") break;
    if (line == "\\tables") {
      for (const std::string& t : cat.TableNames()) {
        const Relation* r = cat.Find(t);
        std::printf("  %s %s (%lld rows)\n", t.c_str(),
                    r->schema().ToString().c_str(),
                    static_cast<long long>(r->NumRows()));
      }
    } else if (line == "\\cache") {
      std::printf("plan cache: %s\n",
                  session.cache_stats().ToString().c_str());
    } else if (line.rfind("\\timeout ", 0) == 0) {
      g_timeout_ms = std::atoll(line.substr(9).c_str());
      if (g_timeout_ms > 0) {
        std::printf("per-query budget: %lld ms\n", g_timeout_ms);
      } else {
        std::printf("per-query budget disabled\n");
      }
    } else if (line.rfind("\\memory ", 0) == 0) {
      g_memory_bytes = std::atoll(line.substr(8).c_str());
      if (g_memory_bytes > 0) {
        std::printf(
            "operator-state cap: %lld bytes (spill-to-disk enabled)\n",
            g_memory_bytes);
      } else {
        std::printf("operator-state cap disabled\n");
      }
    } else if (line.rfind("\\prepare ", 0) == 0) {
      std::string rest = line.substr(9);
      size_t sp = rest.find(' ');
      if (sp == std::string::npos) {
        std::printf("usage: \\prepare <name> <SELECT ...>\n");
      } else {
        std::string name = rest.substr(0, sp);
        auto stmt = session.Prepare(rest.substr(sp + 1));
        if (!stmt.ok()) {
          std::printf("error: %s\n", stmt.status().ToString().c_str());
        } else {
          std::printf("prepared '%s' (%d parameter(s), cache %s)\n",
                      name.c_str(), stmt->num_params(),
                      stmt->cache_hit() ? "hit" : "miss");
          statements.insert_or_assign(std::move(name), std::move(*stmt));
        }
      }
    } else if (line.rfind("EXECUTE ", 0) == 0) {
      RunExecute(line.substr(8), statements);
    } else if (line.rfind("execute ", 0) == 0) {
      RunExecute(line.substr(8), statements);
    } else if (line.rfind("\\explain ", 0) == 0) {
      RunQuery(line.substr(9), session, QueryMode::kExplain);
    } else if (line.rfind("\\analyze ", 0) == 0) {
      RunQuery(line.substr(9), session, QueryMode::kAnalyze);
    } else if (line.rfind("\\plans ", 0) == 0) {
      RunQuery(line.substr(7), session, QueryMode::kPlans);
    } else if (!line.empty()) {
      RunQuery(line, session, QueryMode::kExecute);
    }
    std::printf("gsopt> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
