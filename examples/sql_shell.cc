// Interactive SQL shell over CSV files.
//
//   $ ./sql_shell data1.csv data2.csv ...
//   gsopt> SELECT * FROM data1 LEFT JOIN data2 ON data1.k = data2.k
//   gsopt> \explain SELECT ...
//   gsopt> \analyze SELECT ...       (EXPLAIN ANALYZE: execute + actuals)
//   gsopt> \plans  SELECT ...        (enumerate the full plan space)
//   gsopt> \timeout 250              (per-query budget in ms; 0 = off)
//   gsopt> \tables
//   gsopt> \q
//
// Each CSV becomes a table named after its basename (without extension).
// Every query is optimized (simplify -> normalize -> hypergraph ->
// enumerate -> cost) before execution, under a per-query resource budget:
// when the deadline trips mid-search the optimizer degrades down its
// fallback ladder and the shell reports which rung answered.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "algebra/execute.h"
#include "algebra/explain.h"
#include "base/budget.h"
#include "core/optimizer.h"
#include "relational/csv.h"
#include "sql/binder.h"

using namespace gsopt;  // NOLINT: example brevity

namespace {

// Per-query wall-clock budget; generous default so only hostile queries
// degrade. 0 disables governance entirely.
long long g_timeout_ms = 10000;

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path
                                                : path.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name;
}

enum class QueryMode { kExecute, kExplain, kAnalyze, kPlans };

void RunQuery(const std::string& text, const Catalog& cat, QueryMode mode) {
  auto tree = sql::ParseAndBind(text, cat);
  if (!tree.ok()) {
    std::printf("error: %s\n", tree.status().ToString().c_str());
    return;
  }
  ResourceBudget budget;
  if (g_timeout_ms > 0) {
    budget.WithDeadlineAfter(std::chrono::milliseconds(g_timeout_ms));
  }
  QueryOptimizer opt(cat);
  if (mode == QueryMode::kPlans) {
    OptimizeOptions oo;
    oo.prune = false;
    if (g_timeout_ms > 0) oo.budget = &budget;
    auto space = opt.EnumeratePlanSpace(*tree, oo);
    if (!space.ok()) {
      std::printf("error: %s\n", space.status().ToString().c_str());
      return;
    }
    std::printf("%zu plans%s:\n", space->plans.size(),
                space->truncated ? " (space truncated by budget)" : "");
    for (const PlanInfo& p : space->plans) {
      std::printf("  cost=%-12.0f %s\n", p.cost, p.expr->ToString().c_str());
    }
    return;
  }
  OptimizeOptions oo;
  if (g_timeout_ms > 0) oo.budget = &budget;
  auto result = opt.Optimize(*tree, oo);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (result->degradation.degraded()) {
    std::printf("warning: degraded under budget (%s)\n",
                result->degradation.ToString().c_str());
  }
  if (mode == QueryMode::kExplain) {
    std::printf("%zu plans considered; chosen (cost %.0f, as-written %.0f):\n",
                result->plans_considered, result->best.cost,
                result->original_cost);
    std::printf("%s", Explain(result->best.expr, opt.cost_model()).c_str());
    return;
  }
  // Execution gets its own allowance: a budget-starved optimization has
  // already spent the deadline degrading, and the point of the fallback
  // ladder is that the rung it landed on still answers.
  ResourceBudget exec_budget;
  ExecuteOptions xo;
  if (g_timeout_ms > 0) {
    exec_budget.WithDeadlineAfter(std::chrono::milliseconds(g_timeout_ms));
    xo.budget = &exec_budget;
  }
  if (mode == QueryMode::kAnalyze) {
    std::printf("optimizer: rung=%s %s\n",
                FallbackRungName(result->degradation.rung).c_str(),
                result->counters.ToString().c_str());
    auto analyzed = ExplainAnalyze(result->best.expr, cat, opt.cost_model(),
                                   xo);
    if (!analyzed.ok()) {
      std::printf("error: %s\n", analyzed.status().ToString().c_str());
      return;
    }
    std::printf("%s(%lld rows)\n", analyzed->text.c_str(),
                static_cast<long long>(analyzed->result.NumRows()));
    return;
  }
  auto rel = Execute(result->best.expr, cat, xo);
  if (!rel.ok()) {
    std::printf("error: %s\n", rel.status().ToString().c_str());
    return;
  }
  std::printf("%s", ToCsv(*rel).c_str());
  std::printf("(%lld rows)\n", static_cast<long long>(rel->NumRows()));
}

}  // namespace

int main(int argc, char** argv) {
  Catalog cat;
  for (int i = 1; i < argc; ++i) {
    std::string table = BaseName(argv[i]);
    Status st = LoadCsvFile(argv[i], table, &cat);
    if (!st.ok()) {
      std::printf("failed to load %s: %s\n", argv[i], st.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s as table '%s' (%lld rows)\n", argv[i],
                table.c_str(),
                static_cast<long long>(cat.Find(table)->NumRows()));
  }
  if (argc < 2) {
    std::printf("usage: sql_shell <file.csv> [more.csv ...]\n");
    return 1;
  }

  std::string line;
  std::printf("gsopt> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == "\\q" || line == "quit" || line == "exit") break;
    if (line == "\\tables") {
      for (const std::string& t : cat.TableNames()) {
        const Relation* r = cat.Find(t);
        std::printf("  %s %s (%lld rows)\n", t.c_str(),
                    r->schema().ToString().c_str(),
                    static_cast<long long>(r->NumRows()));
      }
    } else if (line.rfind("\\timeout ", 0) == 0) {
      g_timeout_ms = std::atoll(line.substr(9).c_str());
      if (g_timeout_ms > 0) {
        std::printf("per-query budget: %lld ms\n", g_timeout_ms);
      } else {
        std::printf("per-query budget disabled\n");
      }
    } else if (line.rfind("\\explain ", 0) == 0) {
      RunQuery(line.substr(9), cat, QueryMode::kExplain);
    } else if (line.rfind("\\analyze ", 0) == 0) {
      RunQuery(line.substr(9), cat, QueryMode::kAnalyze);
    } else if (line.rfind("\\plans ", 0) == 0) {
      RunQuery(line.substr(7), cat, QueryMode::kPlans);
    } else if (!line.empty()) {
      RunQuery(line, cat, QueryMode::kExecute);
    }
    std::printf("gsopt> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
